// Package repro is a from-scratch Go reproduction of "LTAM: A
// Location-Temporal Authorization Model" (Hai Yu and Ee-Peng Lim, Secure
// Data Management — VLDB 2004 Workshop, LNCS 3178, pp. 172–186).
//
// The implementation lives under internal/: the time-interval algebra,
// (multilevel) location graphs, location-temporal authorizations,
// authorization rules with the paper's operator tuple, the continuous
// enforcement engine, the inaccessible-location query engine
// (Algorithm 1), a query language, durable storage, and a synthetic
// positioning substrate. Executables live under cmd/, runnable scenarios
// under examples/, and the benchmark harness regenerating every paper
// artifact in bench_test.go. See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
