// Quickstart: the smallest useful LTAM program. It builds a three-room
// site, grants one authorization with entry/exit windows and an entry
// cap (Definition 4), walks a user through it, and runs the two queries
// the paper centres on: the access decision (Definition 7) and the
// inaccessible-location analysis (Algorithm 1).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
)

func main() {
	// A lobby connected to a lab and a store room; the lobby is the
	// entry location.
	g := graph.New("office")
	for _, room := range []graph.ID{"lobby", "lab", "store"} {
		if err := g.AddLocation(room); err != nil {
			log.Fatal(err)
		}
	}
	check(g.AddEdge("lobby", "lab"))
	check(g.AddEdge("lobby", "store"))
	check(g.SetEntry("lobby"))

	sys, err := core.Open(core.Config{Graph: g})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Alice may enter the lobby any time in [1, 100] and must be gone by
	// 200; she may enter the lab once during [10, 50].
	mustGrant(sys, authz.New(interval.New(1, 100), interval.New(1, 200), "alice", "lobby", authz.Unlimited))
	mustGrant(sys, authz.New(interval.New(10, 50), interval.New(10, 120), "alice", "lab", 1))

	// Definition 7 in action.
	fmt.Println("-- access requests --")
	fmt.Printf("t=5  (alice, lab):   %s\n", sys.Request(5, "alice", "lab"))
	fmt.Printf("t=15 (alice, lab):   %s\n", sys.Request(15, "alice", "lab"))
	fmt.Printf("t=15 (alice, store): %s\n", sys.Request(15, "alice", "store"))

	// Movement monitoring: enter, move, leave — all checked.
	fmt.Println("-- movements --")
	d, err := sys.Enter(16, "alice", "lobby")
	check(err)
	fmt.Printf("t=16 alice enters lobby: %s\n", d)
	d, err = sys.Enter(18, "alice", "lab")
	check(err)
	fmt.Printf("t=18 alice enters lab:   %s\n", d)
	// The single lab entry is now consumed (Definition 7's count check).
	fmt.Printf("t=20 (alice, lab) again: %s\n", sys.Query(20, "alice", "lab"))
	check(sys.Leave(30, "alice"))
	fmt.Println("t=30 alice leaves")

	// Algorithm 1: the store has no authorization, so it is inaccessible;
	// everything else is reachable.
	fmt.Println("-- inaccessible locations (Algorithm 1) --")
	fmt.Printf("inaccessible to alice: %v\n", sys.Inaccessible("alice"))
	fmt.Printf("accessible to alice:   %v\n", sys.Accessible("alice"))

	// The alert log shows what the continuous monitor saw (the lab exit
	// at t=30 is fine; leaving the facility from the lab would not be —
	// the lab is not an entry location, so the monitor flagged the walk
	// end if it happened there; here alice left from the lab, which is
	// flagged).
	fmt.Println("-- alerts --")
	for _, a := range sys.Alerts().All() {
		fmt.Println(" ", a)
	}
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustGrant(sys *core.System, a authz.Authorization) {
	if _, err := sys.AddAuthorization(a); err != nil {
		log.Fatal(err)
	}
}
