// Office visitor: rule-driven visitor management. A visitor is badged in
// for a meeting; instead of hand-writing an authorization per corridor
// room (the "tedious and error-prone job" §4 warns about), one base
// authorization plus an all_route_from rule derives grants for exactly
// the rooms on the way to the meeting room. The host's supervisor gets
// mirrored access through Supervisor_Of, and when the visit is over a
// single revocation cascades through everything the rules derived.
// Finally the inaccessible-location query proves the visitor could never
// have reached the server room.
//
// Run with: go run ./examples/office-visitor
package main

import (
	"fmt"
	"log"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/rules"
)

func main() {
	// reception - corridorA - corridorB - meeting
	//                  \         \
	//                 office    server-room
	g := graph.New("office")
	for _, room := range []graph.ID{"reception", "corridorA", "corridorB", "meeting", "office", "server-room"} {
		check(g.AddLocation(room))
	}
	check(g.AddEdge("reception", "corridorA"))
	check(g.AddEdge("corridorA", "corridorB"))
	check(g.AddEdge("corridorB", "meeting"))
	check(g.AddEdge("corridorA", "office"))
	check(g.AddEdge("corridorB", "server-room"))
	check(g.SetEntry("reception"))

	sys, err := core.Open(core.Config{Graph: g, AutoDerive: true})
	check(err)
	defer sys.Close()

	check(sys.PutSubject(profile.Subject{ID: "visitor", Supervisor: ""}))
	check(sys.PutSubject(profile.Subject{ID: "host", Supervisor: "boss"}))
	check(sys.PutSubject(profile.Subject{ID: "boss"}))

	// The single hand-written authorization: the visitor may be in the
	// meeting room during [10, 60] and must leave it by 70, one entry.
	base, err := sys.AddAuthorization(authz.New(interval.New(10, 60), interval.New(10, 70), "visitor", "meeting", 1))
	check(err)
	fmt.Printf("base grant: a%d %s\n", base.ID, base)

	// Rule: every room on the way from reception gets the same windows.
	rep, err := sys.AddRule(rules.Spec{
		Name: "escort-route", ValidFrom: 5, Base: base.ID,
		Location: "all_route_from(reception)",
	})
	check(err)
	fmt.Printf("escort-route derived %d authorizations:\n", len(rep.Derived))
	for _, a := range rep.Derived {
		fmt.Printf("  a%d %s\n", a.ID, a)
	}

	// The host mirrors the visitor's grants; the host's supervisor
	// mirrors the host (re-derived automatically if the org chart
	// changes).
	hostBase, err := sys.AddAuthorization(authz.New(interval.New(10, 60), interval.New(10, 70), "host", "meeting", 1))
	check(err)
	_, err = sys.AddRule(rules.Spec{
		Name: "boss-mirror", ValidFrom: 5, Base: hostBase.ID, Subject: "Supervisor_Of",
	})
	check(err)
	fmt.Printf("boss now holds: %v\n\n", sys.AuthStore().BySubject("boss"))

	// The visit: reception -> corridorA -> corridorB -> meeting.
	fmt.Println("-- the visit --")
	for _, step := range []struct {
		t    interval.Time
		room graph.ID
	}{{12, "reception"}, {15, "corridorA"}, {20, "corridorB"}, {25, "meeting"}} {
		d, err := sys.Enter(step.t, "visitor", step.room)
		check(err)
		fmt.Printf("t=%-3s visitor -> %-10s %s\n", step.t, step.room, d)
	}

	// A detour into the server room is denied and alarmed.
	d, err := sys.Enter(30, "visitor", "server-room")
	check(err)
	fmt.Printf("t=30  visitor -> server-room %s\n", d)
	fmt.Printf("alerts so far: %d (last: %s)\n\n",
		sys.Alerts().Len(), sys.Alerts().All()[sys.Alerts().Len()-1])

	// Analysis: the server room was never reachable for the visitor —
	// Def. 8's point that one checks reachability, not just local grants.
	fmt.Printf("inaccessible to visitor: %v\n", sys.Inaccessible("visitor"))
	fmt.Printf("accessible to visitor:   %v\n\n", sys.Accessible("visitor"))

	// Visit over: one revocation cascades through the derived grants.
	removed, err := sys.RevokeAuthorization(base.ID)
	check(err)
	fmt.Printf("badge returned: revoked %d authorizations in one call\n", removed)
	fmt.Printf("visitor's remaining authorizations: %d\n", len(sys.AuthStore().BySubject("visitor")))
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
