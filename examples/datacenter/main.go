// Datacenter: one-way security flow and conflict resolution. A datacenter
// has a mantrap you may only ENTER through and a one-way egress you may
// only LEAVE through — the separate entry/exit treatment the paper flags
// as a straightforward extension of the model (§3.1). Contractors get
// badged with sloppy, overlapping authorizations; the conflict detector
// (§4) finds the mess and the resolver cleans it up with the paper's
// "combine" option. Finally the earliest-access query schedules a
// maintenance visit.
//
// Run with: go run ./examples/datacenter
package main

import (
	"fmt"
	"log"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

func main() {
	// mantrap -> corridor -> {cage-a, cage-b} -> egress
	g := graph.New("datacenter")
	for _, room := range []graph.ID{"mantrap", "corridor", "cage-a", "cage-b", "egress"} {
		check(g.AddLocation(room))
	}
	check(g.AddEdge("mantrap", "corridor"))
	check(g.AddEdge("corridor", "cage-a"))
	check(g.AddEdge("corridor", "cage-b"))
	check(g.AddEdge("corridor", "egress"))
	check(g.SetEntryOnly("mantrap")) // enter here, never leave here
	check(g.SetExitOnly("egress"))   // leave here, never enter here

	sys, err := core.Open(core.Config{Graph: g})
	check(err)
	defer sys.Close()
	check(sys.PutSubject(profile.Subject{ID: "contractor"}))

	// The badge office files three sloppy grants for the corridor:
	// overlapping and adjacent windows — exactly the conflicts §4 warns
	// rules and humans introduce.
	mustGrant(sys, authz.New(interval.New(10, 60), interval.New(10, 100), "contractor", "corridor", 2))
	mustGrant(sys, authz.New(interval.New(50, 120), interval.New(50, 180), "contractor", "corridor", 1))
	mustGrant(sys, authz.New(interval.New(121, 150), interval.New(121, 200), "contractor", "corridor", 1))
	mustGrant(sys, authz.New(interval.New(10, 150), interval.New(10, 210), "contractor", "mantrap", authz.Unlimited))
	mustGrant(sys, authz.New(interval.New(10, 150), interval.New(10, 220), "contractor", "egress", authz.Unlimited))
	mustGrant(sys, authz.New(interval.New(80, 140), interval.New(90, 200), "contractor", "cage-a", 1))

	fmt.Println("-- conflicts detected --")
	for _, c := range sys.Conflicts() {
		fmt.Printf("  %s: a%d %s  vs  a%d %s\n", c.Kind, c.A.ID, c.A, c.B.ID, c.B)
	}

	res, err := sys.ResolveConflicts(authz.Combine)
	check(err)
	fmt.Println("-- resolved (combine) --")
	for _, r := range res {
		fmt.Printf("  kept a%d %s (removed %v)\n", r.Kept.ID, r.Kept, r.Removed)
	}
	fmt.Printf("  conflicts remaining: %d\n\n", len(sys.Conflicts()))

	// Scheduling: when can the contractor first be inside cage-a?
	at, ok := sys.EarliestAccess("contractor", "cage-a")
	fmt.Printf("earliest cage-a access: t=%v (reachable=%v)\n", at, ok)
	fmt.Printf("who can reach cage-b: %v (no grant: nobody)\n\n", sys.WhoCanAccess("cage-b"))

	// The visit, with the one-way flow enforced.
	fmt.Println("-- the visit --")
	for _, step := range []struct {
		t    interval.Time
		room graph.ID
	}{{85, "mantrap"}, {90, "corridor"}, {95, "cage-a"}, {110, "corridor"}, {115, "egress"}} {
		d, err := sys.Enter(step.t, "contractor", step.room)
		check(err)
		fmt.Printf("t=%-4s contractor -> %-9s %s\n", step.t, step.room, d)
	}
	check(sys.Leave(120, "contractor"))
	fmt.Println("t=120  contractor leaves through the egress (legal)")

	// Trying to come back in through the egress trips the monitor.
	if _, err := sys.Enter(125, "contractor", "egress"); err != nil {
		log.Fatal(err)
	}
	last := sys.Alerts().All()[sys.Alerts().Len()-1]
	fmt.Printf("t=125  contractor re-enters via egress -> ALERT: %s\n", last)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustGrant(sys *core.System, a authz.Authorization) {
	if _, err := sys.AddAuthorization(a); err != nil {
		log.Fatal(err)
	}
}
