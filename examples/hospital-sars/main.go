// Hospital SARS: the paper's §1 motivation. Singapore used RFID to track
// hospital movements during the 2003 SARS outbreak, so that "users who
// were in contact with diagnosed SARS patients could be traced and placed
// in quarantine". This example builds a small hospital, drives it from a
// synthetic positioning feed (the tracking substrate standing in for the
// RFID hardware), and when a patient is diagnosed, runs the movement-
// database contact-tracing query to find everyone exposed — then locks
// the isolation ward down with a tight LTAM authorization and shows the
// monitor catching a nurse who overstays.
//
// Run with: go run ./examples/hospital-sars
package main

import (
	"fmt"
	"log"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/tracking"
)

func main() {
	// The hospital: lobby -> ward3 and canteen; isolation off ward3.
	g := graph.New("hospital")
	for _, room := range []graph.ID{"lobby", "ward3", "canteen", "isolation"} {
		check(g.AddLocation(room))
	}
	check(g.AddEdge("lobby", "ward3"))
	check(g.AddEdge("lobby", "canteen"))
	check(g.AddEdge("ward3", "isolation"))
	check(g.SetEntry("lobby"))

	// Physical boundaries for the positioning feed (contiguous, so a
	// walk between adjacent rooms never dips "outside").
	boundaries := []geometry.Boundary{
		{Location: "lobby", Shape: rect(0, 0, 10, 10)},
		{Location: "ward3", Shape: rect(10, 0, 20, 10)},
		{Location: "canteen", Shape: rect(0, 10, 10, 20)},
		{Location: "isolation", Shape: rect(20, 0, 30, 10)},
	}
	sys, err := core.Open(core.Config{Graph: g, Boundaries: boundaries})
	check(err)
	defer sys.Close()

	// Everyone on staff (and the patient) may move freely today.
	day := interval.New(1, 1000)
	for _, who := range []profile.SubjectID{"patient", "nurse-tan", "dr-lim", "visitor-ng"} {
		check(sys.PutSubject(profile.Subject{ID: who}))
		for _, room := range []graph.ID{"lobby", "ward3", "canteen"} {
			mustGrant(sys, authz.New(day, day, who, room, authz.Unlimited))
		}
	}

	// The RFID substitute: scripted walks sampled into readings.
	resolver, err := geometry.NewResolver(boundaries)
	check(err)
	walk := func(tag profile.SubjectID, start interval.Time, route ...graph.ID) tracking.Walk {
		w, err := tracking.RouteWalk(tag, start, 6, resolver, route)
		check(err)
		return w
	}
	sim := tracking.NewSimulator([]tracking.Walk{
		walk("patient", 1, "lobby", "ward3", "lobby", "canteen"),
		walk("nurse-tan", 2, "lobby", "ward3"),
		walk("dr-lim", 3, "lobby", "canteen"),
		walk("visitor-ng", 5, "lobby", "ward3", "lobby"),
	})
	fmt.Println("-- positioning feed --")
	for _, r := range sim.Readings() {
		if d, moved, err := sys.ObserveReading(r.Time, r.Tag, r.At); err != nil {
			log.Fatal(err)
		} else if moved {
			loc, inside := sys.WhereIs(r.Tag)
			if inside {
				fmt.Printf("t=%-3s %-10s -> %-8s %s\n", r.Time, r.Tag, loc, d)
			} else {
				fmt.Printf("t=%-3s %-10s -> outside\n", r.Time, r.Tag)
			}
		}
	}

	// Diagnosis: trace every contact of the patient.
	fmt.Println("\n-- t=40: patient diagnosed; tracing contacts --")
	for _, c := range sys.ContactsOf("patient", interval.From(0)) {
		fmt.Printf("  EXPOSED: %s shared %s during %s\n", c.Other, c.Location, c.Overlap)
	}
	fmt.Printf("  everyone who was in ward3: %v\n", sys.WhoWasIn("ward3", interval.From(0)))

	// Lockdown: the patient is moved to isolation; only nurse-tan may
	// enter, for one visit of at most 20 chronons.
	fmt.Println("\n-- lockdown: isolation ward --")
	mustGrant(sys, authz.New(interval.New(45, 1000), interval.New(45, 1000), "patient", "isolation", 1))
	mustGrant(sys, authz.New(interval.New(50, 100), interval.New(50, 120), "nurse-tan", "isolation", 1))
	// The patient is escorted canteen -> lobby -> ward3 -> isolation.
	for _, step := range []struct {
		t    interval.Time
		room graph.ID
	}{{45, "lobby"}, {46, "ward3"}, {47, "isolation"}} {
		if _, err := sys.Enter(step.t, "patient", step.room); err != nil {
			log.Fatal(err)
		}
	}
	// nurse-tan walks ward3 -> isolation on her grant.
	d, err := sys.Enter(60, "nurse-tan", "isolation")
	check(err)
	fmt.Printf("  t=60 nurse-tan enters isolation: %s\n", d)
	// dr-lim has no isolation authorization: the monitor flags the entry.
	for _, step := range []struct {
		t    interval.Time
		room graph.ID
	}{{63, "lobby"}, {64, "ward3"}} {
		if _, err := sys.Enter(step.t, "dr-lim", step.room); err != nil {
			log.Fatal(err)
		}
	}
	d, err = sys.Enter(65, "dr-lim", "isolation")
	check(err)
	fmt.Printf("  t=65 dr-lim enters isolation: %s\n", d)

	// The nurse stays too long; the continuous monitor raises the §3.2
	// warning signal.
	raised, err := sys.Tick(130)
	check(err)
	for _, a := range raised {
		fmt.Printf("  MONITOR: %s\n", a)
	}

	fmt.Println("\n-- full alert log --")
	for _, a := range sys.Alerts().All() {
		fmt.Println(" ", a)
	}

	// And the analysis query: with the lockdown authorizations, where can
	// visitor-ng still go?
	fmt.Printf("\ninaccessible to visitor-ng: %v\n", sys.Inaccessible("visitor-ng"))
}

func rect(x0, y0, x1, y1 float64) geometry.Polygon {
	return geometry.NewRect(geometry.Point{X: x0, Y: y0}, geometry.Point{X: x1, Y: y1}).Polygon()
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustGrant(sys *core.System, a authz.Authorization) {
	if _, err := sys.AddAuthorization(a); err != nil {
		log.Fatal(err)
	}
}
