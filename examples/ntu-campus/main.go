// NTU campus: the paper's running example end to end. It builds the
// Fig. 1/Fig. 2 multilevel location graph, defines the §4 authorizations
// and rules (r1–r3 with Supervisor_Of and all_route_from), replays the
// §5 enforcement trace, and reproduces the Table 1/Table 2
// inaccessible-location run on the Fig. 4 graph — everything the paper
// shows, as one runnable program.
//
// Run with: go run ./examples/ntu-campus
package main

import (
	"fmt"
	"log"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/rules"
)

func main() {
	ntu := graph.NTUCampus()
	fmt.Printf("Fig. 2 multilevel location graph: %s\n", ntu)
	fmt.Printf("  primitive locations: %d\n", len(ntu.Primitives()))
	fmt.Printf("  SCE entries: %v\n\n", ntu.Child(graph.SCE).Entries())

	sys, err := core.Open(core.Config{Graph: ntu, AutoDerive: true})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// §3.1 routes.
	simple := graph.Route{graph.SCEDean, graph.SCESectionA, graph.SCESectionB, graph.CAIS}
	complexR := graph.Route{graph.EEEDean, graph.EEESectionA, graph.EEEGO, graph.SCEGO, graph.SCESectionA, graph.SCEDean}
	fmt.Printf("simple route %s: valid=%v\n", simple, graph.IsSimpleRoute(ntu.Child(graph.SCE), simple))
	fmt.Printf("complex route %s: valid=%v\n\n", complexR, graph.IsComplexRoute(ntu, complexR))

	// §4: a1 and the three rules.
	check(sys.PutSubject(profile.Subject{ID: "Alice", Supervisor: "Bob"}))
	check(sys.PutSubject(profile.Subject{ID: "Bob"}))
	a1, err := sys.AddAuthorization(authz.New(interval.New(5, 20), interval.New(15, 50), "Alice", graph.CAIS, 2))
	check(err)
	fmt.Printf("a1: %s\n", a1)

	rep, err := sys.AddRule(rules.Spec{
		Name: "r1", ValidFrom: 7, Base: a1.ID,
		Entry: "WHENEVER", Exit: "WHENEVER", Subject: "Supervisor_Of", Location: "CAIS", Entries: "2",
	})
	check(err)
	fmt.Printf("r1 (Example 1) derived: %s\n", rep.Derived[0])

	rep, err = sys.AddRule(rules.Spec{
		Name: "r2", ValidFrom: 7, Base: a1.ID,
		Entry: "INTERSECTION([10, 30])", Subject: "Supervisor_Of", Location: "CAIS", Entries: "2",
	})
	check(err)
	fmt.Printf("r2 (Example 2) derived: %s\n", rep.Derived[0])

	rep, err = sys.AddRule(rules.Spec{
		Name: "r3", ValidFrom: 7, Base: a1.ID,
		Location: "all_route_from(SCE.GO)", Entries: "2",
	})
	check(err)
	fmt.Printf("r3 (Example 3) derived %d authorizations:\n", len(rep.Derived))
	for _, a := range rep.Derived {
		fmt.Printf("  %s\n", a)
	}

	// §5 enforcement trace with A1 and A2.
	fmt.Println("\n§5 enforcement trace:")
	a5a, err := sys.AddAuthorization(authz.New(interval.New(10, 20), interval.New(10, 50), "Alice5", graph.CAIS, 2))
	check(err)
	a5b, err := sys.AddAuthorization(authz.New(interval.New(5, 35), interval.New(20, 100), "Bob5", graph.CHIPES, 1))
	check(err)
	_ = a5a
	_ = a5b
	fmt.Printf("  t=10 (Alice5, CAIS):   %s\n", sys.Request(10, "Alice5", graph.CAIS))
	fmt.Printf("  t=15 (Bob5, CAIS):     %s\n", sys.Request(15, "Bob5", graph.CAIS))
	fmt.Printf("  t=16 (Bob5, CHIPES):   %s\n", sys.Request(16, "Bob5", graph.CHIPES))
	d, err := sys.Enter(16, "Bob5", graph.CHIPES)
	check(err)
	_ = d
	check(sys.Leave(20, "Bob5"))
	fmt.Println("  t=20 Bob5 leaves CHIPES")
	fmt.Printf("  t=30 (Bob5, CHIPES):   %s\n", sys.Request(30, "Bob5", graph.CHIPES))

	// §6: Table 1 / Table 2 on the Fig. 4 graph.
	fmt.Println("\n§6 FindInaccessible on Fig. 4 with Table 1 authorizations:")
	fig4 := graph.Fig4Graph()
	st := authz.NewStore()
	for _, row := range []struct {
		loc         graph.ID
		entry, exit interval.Interval
	}{
		{"A", interval.New(2, 35), interval.New(20, 50)},
		{"B", interval.New(40, 60), interval.New(55, 80)},
		{"C", interval.New(38, 45), interval.New(70, 90)},
		{"D", interval.New(5, 25), interval.New(10, 30)},
	} {
		if _, err := st.Add(authz.New(row.entry, row.exit, "Alice", row.loc, 1)); err != nil {
			log.Fatal(err)
		}
	}
	flat := graph.Expand(fig4)
	res := query.FindInaccessible(flat, st, "Alice", query.Options{Trace: true})
	fmt.Print(query.FormatTrace(flat, res))
	fmt.Printf("inaccessible: %v (the paper's answer: [C])\n", res.Inaccessible)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
