package repro

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program end to end and checks
// for the key lines each scenario must produce. This keeps the examples
// from rotting: they are part of the test suite, not just documentation.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples compile+run; skipped in -short")
	}
	cases := []struct {
		dir   string
		wants []string
	}{
		{"./examples/quickstart", []string{
			"granted (a2)",
			"alice has used all permitted entries to lab",
			"inaccessible to alice: [store]",
		}},
		{"./examples/ntu-campus", []string{
			"r1 (Example 1) derived: ([5, 20], [15, 50], (Bob, CAIS), 2)",
			"r2 (Example 2) derived: ([10, 20], [15, 50], (Bob, CAIS), 2)",
			"inaccessible: [C] (the paper's answer: [C])",
		}},
		{"./examples/hospital-sars", []string{
			"EXPOSED: nurse-tan shared",
			"overstay subject=nurse-tan location=isolation",
			"inaccessible to visitor-ng: [isolation]",
		}},
		{"./examples/office-visitor", []string{
			"escort-route derived",
			"inaccessible to visitor: [office server-room]",
			"revoked 5 authorizations in one call",
		}},
		{"./examples/datacenter", []string{
			"conflicts remaining: 0",
			"earliest cage-a access: t=80",
			"entered the facility at egress, which is not an entry location",
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.dir, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out, err := exec.Command("go", "run", tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("%s failed: %v\n%s", tc.dir, err, out)
			}
			for _, want := range tc.wants {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q", tc.dir, want)
				}
			}
		})
	}
}

// TestPaperScriptRuns drives the bundled query-language script through
// the ltamquery binary — the §4/§5 story in the administrator language.
func TestPaperScriptRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and runs ltamquery; skipped in -short")
	}
	out, err := exec.Command("go", "run", "./cmd/ltamquery", "examples/scripts/paper.ltam").CombinedOutput()
	if err != nil {
		t.Fatalf("ltamquery failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"rule r1 derived 1 authorization(s)",
		"(Bob, CAIS), 2)",
		"(10, Alice, CAIS): granted (a1)",
		"Alice can first be in CAIS at t=15",
		"can access CAIS: Alice",
		"itinerary feasible for Alice",
		"accessible to Alice: SCE.GO",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("script output missing %q", want)
		}
	}
}
