// Command benchjson converts `go test -bench -benchmem` output on stdin
// into machine-readable JSON on stdout, one object per benchmark result:
//
//	{"name": "BenchmarkParallelRequest/parallel-rwlock-8",
//	 "runs": 100, "ns_per_op": 812.5, "b_per_op": 48, "allocs_per_op": 1}
//
// CI pipes the Parallel* read-path benchmarks through it and uploads the
// result as BENCH_parallel.json, so the perf trajectory of the lock-free
// read path is tracked across PRs without scraping logs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// parseLine parses one `Benchmark...` output line. Format:
//
//	BenchmarkName-8  100  812.5 ns/op  48 B/op  1 allocs/op
//
// Extra metrics (e.g. records/fsync) are ignored.
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return result{}, false
	}
	runs, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r := result{Name: fields[0], Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, err = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BPerOp, err = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, err = strconv.ParseInt(val, 10, 64)
		default:
			err = nil // unknown metric: skip
		}
		if err != nil {
			return result{}, false
		}
	}
	return r, r.NsPerOp > 0
}

func main() {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
