// Command benchgate compares a fresh performance result against a
// committed baseline and fails (exit 1) on regression. It understands
// both artifact shapes this repo produces:
//
//   - a benchjson array (tools/benchjson): per-benchmark ns/op and
//     allocs/op, matched by benchmark name;
//   - an ltamsim -sustain SLO report: sustained-load throughput plus
//     per-stage pipeline latency quantiles.
//
// Usage:
//
//	benchgate -baseline bench/baselines/slo.json -current SLO_now.json [-threshold 1.25]
//
// A metric regresses when it is worse than threshold× the baseline
// (slower ns/op, lower throughput, higher stage p95/p99). Latency
// comparisons additionally require the absolute delta to exceed
// -floor-us, so microsecond-scale jitter on a fast stage cannot trip
// the gate. Alloc counts are gated strictly: a zero-alloc baseline must
// stay zero-alloc.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/wire"
)

// benchResult mirrors tools/benchjson's output object.
type benchResult struct {
	Name        string  `json:"name"`
	Runs        int64   `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// artifact is one loaded result file: exactly one of the two fields is
// set, keyed on the JSON's outer shape (array = benchjson, object =
// SLO report).
type artifact struct {
	benches []benchResult
	slo     *wire.SLOReport
}

func load(path string) (artifact, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return artifact{}, err
	}
	trimmed := strings.TrimSpace(string(raw))
	if strings.HasPrefix(trimmed, "[") {
		var a artifact
		if err := json.Unmarshal(raw, &a.benches); err != nil {
			return artifact{}, fmt.Errorf("%s: %v", path, err)
		}
		return a, nil
	}
	var rep wire.SLOReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return artifact{}, fmt.Errorf("%s: %v", path, err)
	}
	if rep.Kind != "slo" {
		return artifact{}, fmt.Errorf("%s: not a benchjson array and kind %q is not \"slo\"", path, rep.Kind)
	}
	return artifact{slo: &rep}, nil
}

// gateBench compares benchjson arrays by benchmark name. Baseline
// entries missing from the current run are violations — a silently
// dropped benchmark must not pass the gate.
func gateBench(base, cur []benchResult, threshold float64) []string {
	curBy := map[string]benchResult{}
	for _, r := range cur {
		curBy[r.Name] = r
	}
	var violations []string
	for _, b := range base {
		c, ok := curBy[b.Name]
		if !ok {
			violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from current run", b.Name))
			continue
		}
		if c.NsPerOp > b.NsPerOp*threshold {
			violations = append(violations, fmt.Sprintf("%s: %.1f ns/op vs baseline %.1f (%.2fx > %.2fx threshold)",
				b.Name, c.NsPerOp, b.NsPerOp, c.NsPerOp/b.NsPerOp, threshold))
		}
		if (b.AllocsPerOp == 0 && c.AllocsPerOp > 0) || float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*threshold {
			violations = append(violations, fmt.Sprintf("%s: %d allocs/op vs baseline %d",
				b.Name, c.AllocsPerOp, b.AllocsPerOp))
		}
	}
	return violations
}

// gateSLO compares SLO reports: throughput must not fall below
// baseline/threshold, and each baseline stage's p95/p99 must not exceed
// threshold× baseline (with the floorUs jitter allowance). Stages with
// too few samples on either side are skipped, not judged.
func gateSLO(base, cur *wire.SLOReport, threshold float64, floorUs, minCount int64) []string {
	var violations []string
	if cur.ThroughputFPS < base.ThroughputFPS/threshold {
		violations = append(violations, fmt.Sprintf("throughput: %.0f frames/sec vs baseline %.0f (worse than 1/%.2f)",
			cur.ThroughputFPS, base.ThroughputFPS, threshold))
	}
	curBy := map[string]wire.TraceStageStats{}
	for _, s := range cur.Stages {
		curBy[s.Stage] = s
	}
	for _, b := range base.Stages {
		if int64(b.Count) < minCount {
			continue
		}
		c, ok := curBy[b.Stage]
		if !ok {
			violations = append(violations, fmt.Sprintf("stage %s: present in baseline but missing from current run", b.Stage))
			continue
		}
		if int64(c.Count) < minCount {
			fmt.Printf("benchgate: stage %s: only %d samples in current run, skipping\n", b.Stage, c.Count)
			continue
		}
		for _, q := range []struct {
			name      string
			base, cur int64
		}{
			{"p95", b.P95Micro, c.P95Micro},
			{"p99", b.P99Micro, c.P99Micro},
		} {
			if float64(q.cur) > float64(q.base)*threshold && q.cur-q.base > floorUs {
				violations = append(violations, fmt.Sprintf("stage %s %s: %dµs vs baseline %dµs (%.2fx > %.2fx threshold)",
					b.Stage, q.name, q.cur, q.base, float64(q.cur)/float64(q.base), threshold))
			}
		}
	}
	return violations
}

// gate loads both artifacts and returns the violation list.
func gate(baselinePath, currentPath string, threshold float64, floorUs, minCount int64) ([]string, error) {
	base, err := load(baselinePath)
	if err != nil {
		return nil, err
	}
	cur, err := load(currentPath)
	if err != nil {
		return nil, err
	}
	switch {
	case base.slo != nil && cur.slo != nil:
		return gateSLO(base.slo, cur.slo, threshold, floorUs, minCount), nil
	case base.slo == nil && cur.slo == nil:
		return gateBench(base.benches, cur.benches, threshold), nil
	default:
		return nil, fmt.Errorf("artifact kind mismatch: %s and %s are not comparable", baselinePath, currentPath)
	}
}

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON (benchjson array or SLO report)")
	current := flag.String("current", "", "fresh result JSON of the same kind")
	threshold := flag.Float64("threshold", 1.25, "regression ratio that fails the gate")
	floorUs := flag.Int64("floor-us", 20, "SLO latency deltas below this many µs never fail (jitter allowance)")
	minCount := flag.Int64("min-count", 50, "SLO stages with fewer samples than this are skipped")
	flag.Parse()
	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -baseline and -current are required")
		os.Exit(2)
	}
	violations, err := gate(*baseline, *current, *threshold, *floorUs, *minCount)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if len(violations) == 0 {
		fmt.Printf("benchgate: %s within %.2fx of %s\n", *current, *threshold, *baseline)
		return
	}
	for _, v := range violations {
		fmt.Fprintln(os.Stderr, "benchgate: REGRESSION:", v)
	}
	os.Exit(1)
}
