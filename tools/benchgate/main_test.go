package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const benchBaseline = `[
  {"name": "BenchmarkObserveBatch-8", "runs": 1000, "ns_per_op": 800, "allocs_per_op": 0},
  {"name": "BenchmarkParallelRequest-8", "runs": 1000, "ns_per_op": 200, "allocs_per_op": 3}
]`

// TestBenchGatePasses: an identical run is not a regression.
func TestBenchGatePasses(t *testing.T) {
	base := writeFixture(t, "base.json", benchBaseline)
	cur := writeFixture(t, "cur.json", benchBaseline)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("identical run flagged: %v", violations)
	}
}

// TestBenchGateFailsOnDoubledLatency: the synthetic 2x regression the
// gate exists to catch.
func TestBenchGateFailsOnDoubledLatency(t *testing.T) {
	base := writeFixture(t, "base.json", benchBaseline)
	cur := writeFixture(t, "cur.json", `[
  {"name": "BenchmarkObserveBatch-8", "runs": 1000, "ns_per_op": 1600, "allocs_per_op": 0},
  {"name": "BenchmarkParallelRequest-8", "runs": 1000, "ns_per_op": 200, "allocs_per_op": 3}
]`)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "BenchmarkObserveBatch-8") {
		t.Fatalf("violations = %v, want one for BenchmarkObserveBatch-8", violations)
	}
}

// TestBenchGateFailsOnNewAllocs: a zero-alloc baseline must stay
// zero-alloc even when within the latency threshold.
func TestBenchGateFailsOnNewAllocs(t *testing.T) {
	base := writeFixture(t, "base.json", benchBaseline)
	cur := writeFixture(t, "cur.json", `[
  {"name": "BenchmarkObserveBatch-8", "runs": 1000, "ns_per_op": 810, "allocs_per_op": 1},
  {"name": "BenchmarkParallelRequest-8", "runs": 1000, "ns_per_op": 200, "allocs_per_op": 3}
]`)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "allocs/op") {
		t.Fatalf("violations = %v, want one allocs/op violation", violations)
	}
}

// TestBenchGateFailsOnMissingBenchmark: dropping a benchmark from the
// run must not silently pass.
func TestBenchGateFailsOnMissingBenchmark(t *testing.T) {
	base := writeFixture(t, "base.json", benchBaseline)
	cur := writeFixture(t, "cur.json", `[
  {"name": "BenchmarkObserveBatch-8", "runs": 1000, "ns_per_op": 800, "allocs_per_op": 0}
]`)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "missing") {
		t.Fatalf("violations = %v, want one missing-benchmark violation", violations)
	}
}

const sloBaseline = `{
  "kind": "slo", "wire": "binary", "side": 4, "users": 64,
  "duration_sec": 10, "frames": 100000, "throughput_fps": 10000,
  "stages": [
    {"stage": "apply",  "count": 100000, "mean_us": 12, "p50_us": 10, "p95_us": 40,  "p99_us": 90},
    {"stage": "fsync",  "count": 2000,   "mean_us": 600, "p50_us": 500, "p95_us": 900, "p99_us": 1500},
    {"stage": "deliver","count": 30,     "mean_us": 5,  "p50_us": 4,  "p95_us": 9,   "p99_us": 9}
  ]
}`

// TestSLOGatePasses: the same report, and small jitter under the floor,
// both pass.
func TestSLOGatePasses(t *testing.T) {
	base := writeFixture(t, "base.json", sloBaseline)
	cur := writeFixture(t, "cur.json", `{
  "kind": "slo", "wire": "binary", "side": 4, "users": 64,
  "duration_sec": 10, "frames": 99000, "throughput_fps": 9900,
  "stages": [
    {"stage": "apply",  "count": 99000, "mean_us": 13, "p50_us": 11, "p95_us": 55, "p99_us": 100},
    {"stage": "fsync",  "count": 1900,  "mean_us": 610, "p50_us": 510, "p95_us": 950, "p99_us": 1600}
  ]
}`)
	// apply p95 55 vs 40 is >1.25x but only 15µs over: under the floor.
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("healthy run flagged: %v", violations)
	}
}

// TestSLOGateFailsOnDoubledStage: a 2x p99 regression on a
// well-sampled stage fails the gate.
func TestSLOGateFailsOnDoubledStage(t *testing.T) {
	base := writeFixture(t, "base.json", sloBaseline)
	cur := writeFixture(t, "cur.json", `{
  "kind": "slo", "wire": "binary", "side": 4, "users": 64,
  "duration_sec": 10, "frames": 100000, "throughput_fps": 10000,
  "stages": [
    {"stage": "apply",  "count": 100000, "mean_us": 12, "p50_us": 10, "p95_us": 40, "p99_us": 90},
    {"stage": "fsync",  "count": 2000,   "mean_us": 1200, "p50_us": 1000, "p95_us": 1800, "p99_us": 3000}
  ]
}`)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(violations, "\n")
	if len(violations) != 2 || !strings.Contains(joined, "fsync p95") || !strings.Contains(joined, "fsync p99") {
		t.Fatalf("violations = %v, want fsync p95+p99", violations)
	}
}

// TestSLOGateFailsOnThroughputDrop: sustained throughput below
// baseline/threshold fails.
func TestSLOGateFailsOnThroughputDrop(t *testing.T) {
	base := writeFixture(t, "base.json", sloBaseline)
	cur := writeFixture(t, "cur.json", `{
  "kind": "slo", "wire": "binary", "side": 4, "users": 64,
  "duration_sec": 10, "frames": 50000, "throughput_fps": 5000,
  "stages": [
    {"stage": "apply", "count": 50000, "mean_us": 12, "p50_us": 10, "p95_us": 40, "p99_us": 90},
    {"stage": "fsync", "count": 1000,  "mean_us": 600, "p50_us": 500, "p95_us": 900, "p99_us": 1500}
  ]
}`)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 1 || !strings.Contains(violations[0], "throughput") {
		t.Fatalf("violations = %v, want one throughput violation", violations)
	}
}

// TestSLOGateSkipsThinStages: the deliver stage has 30 baseline samples
// (< min-count) — even a wild current value must not be judged.
func TestSLOGateSkipsThinStages(t *testing.T) {
	base := writeFixture(t, "base.json", sloBaseline)
	cur := writeFixture(t, "cur.json", `{
  "kind": "slo", "wire": "binary", "side": 4, "users": 64,
  "duration_sec": 10, "frames": 100000, "throughput_fps": 10000,
  "stages": [
    {"stage": "apply",   "count": 100000, "mean_us": 12, "p50_us": 10, "p95_us": 40, "p99_us": 90},
    {"stage": "fsync",   "count": 2000,   "mean_us": 600, "p50_us": 500, "p95_us": 900, "p99_us": 1500},
    {"stage": "deliver", "count": 30,     "mean_us": 5000, "p50_us": 4000, "p95_us": 9000, "p99_us": 9000}
  ]
}`)
	violations, err := gate(base, cur, 1.25, 20, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("thin stage judged: %v", violations)
	}
}

// TestGateKindMismatch: comparing an SLO report against a bench array
// is a usage error, not a pass.
func TestGateKindMismatch(t *testing.T) {
	base := writeFixture(t, "base.json", sloBaseline)
	cur := writeFixture(t, "cur.json", benchBaseline)
	if _, err := gate(base, cur, 1.25, 20, 50); err == nil {
		t.Fatal("kind mismatch must error")
	}
}

// TestLoadRejectsUnknownObject: an object without kind "slo" is not
// silently treated as an empty report.
func TestLoadRejectsUnknownObject(t *testing.T) {
	p := writeFixture(t, "x.json", `{"hello": "world"}`)
	if _, err := load(p); err == nil {
		t.Fatal("unknown object must error")
	}
}
