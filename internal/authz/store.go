package authz

import (
	"errors"
	"fmt"
	"hash/maphash"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/profile"
)

// ErrNotFound is returned for unknown authorization IDs.
var ErrNotFound = errors.New("authz: authorization not found")

// subjectLocation is the composite index key for Def.-7 lookups.
type subjectLocation struct {
	s profile.SubjectID
	l graph.ID
}

// shardData is one shard's immutable index state. A published shardData
// is never mutated: writers clone it, apply their change to the clone
// (replacing any slice they touch with a fresh one), and publish the
// clone through the shard's atomic pointer. Readers therefore navigate
// the maps without any lock — the RCU discipline behind the store's
// lock-free read path.
//
// byPair holds fully materialised authorizations (not IDs): because the
// published state is immutable, For can hand the interior slice straight
// to the caller — the Def.-7 decision path costs one map lookup and zero
// allocations. The subject and location indexes keep ID lists and
// materialise on read (they serve fan-out queries, not decisions).
type shardData struct {
	byID       map[ID]Authorization
	bySubject  map[profile.SubjectID][]ID
	byLocation map[graph.ID][]ID
	byPair     map[subjectLocation][]Authorization
}

func newShardData() *shardData {
	return &shardData{
		byID:       make(map[ID]Authorization),
		bySubject:  make(map[profile.SubjectID][]ID),
		byLocation: make(map[graph.ID][]ID),
		byPair:     make(map[subjectLocation][]Authorization),
	}
}

// clone shallow-copies the maps. Slice values are shared with the
// original and must be replaced — never appended to in place — by the
// writer (see appendID/removeID).
func (d *shardData) clone() *shardData {
	c := &shardData{
		byID:       make(map[ID]Authorization, len(d.byID)+1),
		bySubject:  make(map[profile.SubjectID][]ID, len(d.bySubject)+1),
		byLocation: make(map[graph.ID][]ID, len(d.byLocation)+1),
		byPair:     make(map[subjectLocation][]Authorization, len(d.byPair)+1),
	}
	for k, v := range d.byID {
		c.byID[k] = v
	}
	for k, v := range d.bySubject {
		c.bySubject[k] = v
	}
	for k, v := range d.byLocation {
		c.byLocation[k] = v
	}
	for k, v := range d.byPair {
		c.byPair[k] = v
	}
	return c
}

// appendID replaces m[k] with a fresh slice ending in id. IDs are
// assigned monotonically, so appending keeps every index list sorted.
func appendID[K comparable](m map[K][]ID, k K, id ID) {
	old := m[k]
	next := make([]ID, len(old)+1)
	copy(next, old)
	next[len(old)] = id
	m[k] = next
}

// removeID replaces m[k] with a fresh slice without id, deleting the key
// when the list empties.
func removeID[K comparable](m map[K][]ID, k K, id ID) {
	old := m[k]
	if len(old) == 1 && old[0] == id {
		delete(m, k)
		return
	}
	next := make([]ID, 0, len(old)-1)
	for _, v := range old {
		if v != id {
			next = append(next, v)
		}
	}
	m[k] = next
}

func (d *shardData) insert(a Authorization) {
	d.byID[a.ID] = a
	appendID(d.bySubject, a.Subject, a.ID)
	appendID(d.byLocation, a.Location, a.ID)
	key := subjectLocation{a.Subject, a.Location}
	old := d.byPair[key]
	next := make([]Authorization, len(old)+1)
	copy(next, old)
	next[len(old)] = a
	d.byPair[key] = next
}

func (d *shardData) remove(a Authorization) {
	delete(d.byID, a.ID)
	removeID(d.bySubject, a.Subject, a.ID)
	removeID(d.byLocation, a.Location, a.ID)
	key := subjectLocation{a.Subject, a.Location}
	old := d.byPair[key]
	if len(old) == 1 && old[0].ID == a.ID {
		delete(d.byPair, key)
		return
	}
	next := make([]Authorization, 0, len(old)-1)
	for _, v := range old {
		if v.ID != a.ID {
			next = append(next, v)
		}
	}
	d.byPair[key] = next
}

// insertAll inserts a batch (IDs ascending in input order) rebuilding
// each touched index slice exactly once, so a k-record batch into one
// key costs O(old+k), not O(k·old).
func (d *shardData) insertAll(batch []Authorization) {
	subjAdds := make(map[profile.SubjectID][]ID)
	locAdds := make(map[graph.ID][]ID)
	pairAdds := make(map[subjectLocation][]Authorization)
	for _, a := range batch {
		d.byID[a.ID] = a
		subjAdds[a.Subject] = append(subjAdds[a.Subject], a.ID)
		locAdds[a.Location] = append(locAdds[a.Location], a.ID)
		k := subjectLocation{a.Subject, a.Location}
		pairAdds[k] = append(pairAdds[k], a)
	}
	// A concurrent single Add may have assigned (and published) a higher
	// ID between this batch's ID assignment and its insert, so the
	// concatenation is not guaranteed sorted — re-sort any list the
	// guard catches (rare: only under racing writers).
	for k, add := range subjAdds {
		ids := concatFresh(d.bySubject[k], add)
		if !sortedIDs(ids) {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		d.bySubject[k] = ids
	}
	for k, add := range locAdds {
		ids := concatFresh(d.byLocation[k], add)
		if !sortedIDs(ids) {
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		}
		d.byLocation[k] = ids
	}
	for k, add := range pairAdds {
		auths := concatFresh(d.byPair[k], add)
		if !sortedAuthIDs(auths) {
			sortAuths(auths)
		}
		d.byPair[k] = auths
	}
}

func sortedIDs(ids []ID) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] > ids[i] {
			return false
		}
	}
	return true
}

func sortedAuthIDs(auths []Authorization) bool {
	for i := 1; i < len(auths); i++ {
		if auths[i-1].ID > auths[i].ID {
			return false
		}
	}
	return true
}

// concatFresh returns a fresh slice old++add — never appending in place,
// preserving the immutability of published slices.
func concatFresh[T any](old, add []T) []T {
	next := make([]T, 0, len(old)+len(add))
	next = append(next, old...)
	return append(next, add...)
}

// collect resolves an index list against this shard's byID, preserving
// the list's ID order (index lists are kept sorted, so no sort here —
// this is the Def.-7 fast path).
func (d *shardData) collect(ids []ID) []Authorization {
	if len(ids) == 0 {
		return nil
	}
	return d.appendCollect(make([]Authorization, 0, len(ids)), ids)
}

func (d *shardData) appendCollect(dst []Authorization, ids []ID) []Authorization {
	for _, id := range ids {
		if a, ok := d.byID[id]; ok {
			dst = append(dst, a)
		}
	}
	return dst
}

// shard is one lock stripe: the mutex serialises writers; readers only
// load the data pointer.
type shard struct {
	mu      sync.Mutex
	data    atomic.Pointer[shardData]
	version atomic.Uint64
}

// Store is the authorization database of Fig. 3: all authorizations
// defined by administrators plus those derived by rules, indexed for the
// three access paths the engine needs — by (subject, location) for access
// checks, by location for Algorithm 1, and by subject for per-user
// queries.
//
// The store is sharded by subject hash into a power-of-two number of
// stripes. Mutations lock only their subject's shard, clone that shard's
// index maps, and publish the new state through an atomic pointer;
// readers never take a lock — For/BySubject touch exactly one shard's
// published data, while ByLocation/All/Subjects/FindConflicts fan out
// over every shard. A View captures all shard pointers at once for
// callers that need a stable multi-read snapshot (the core read path).
//
// Store is safe for concurrent use.
type Store struct {
	shards []shard
	mask   uint64
	seed   maphash.Seed

	// wideMu serialises whole-store writers (AddAll, Restore) against
	// each other: AddAll assigns its batch's IDs before touching any
	// shard, and without this lock a concurrent Restore could reset the
	// ID watermark underneath the batch. Lock order: wideMu before any
	// shard mutex. Single-shard writers (Add, Revoke) take only their
	// shard's mutex — they assign under it, so they cannot straddle a
	// Restore, which holds every shard.
	wideMu sync.Mutex

	// lastID is the highest assigned authorization ID; Add allocates by
	// atomic increment, so IDs stay unique and monotonic across shards.
	lastID atomic.Uint64

	// version is the store's mutation epoch: the per-shard counters
	// aggregated at write time (every mutating operation bumps its
	// shard's counter and this total once). Query caches key memoized
	// results on it, so it must move for every path that changes the
	// stored set — including rule-engine derivations and conflict
	// resolution, which go through Add/Revoke.
	version atomic.Uint64
}

// DefaultShardCount returns the shard count NewStore picks: GOMAXPROCS
// rounded up to a power of two, clamped to [1, 64].
func DefaultShardCount() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 64 {
		n = 64
	}
	return 1 << bits.Len(uint(n-1))
}

// Version returns the store's mutation epoch: it increases on every
// change to the stored authorization set and is stable between changes.
func (st *Store) Version() uint64 { return st.version.Load() }

// NewStore returns an empty authorization database with
// DefaultShardCount shards.
func NewStore() *Store { return NewStoreWithShards(0) }

// NewStoreWithShards returns an empty store with the given shard count,
// rounded up to a power of two (n <= 0 selects DefaultShardCount).
func NewStoreWithShards(n int) *Store {
	if n <= 0 {
		n = DefaultShardCount()
	}
	n = 1 << bits.Len(uint(n-1))
	st := &Store{
		shards: make([]shard, n),
		mask:   uint64(n - 1),
		seed:   maphash.MakeSeed(),
	}
	for i := range st.shards {
		st.shards[i].data.Store(newShardData())
	}
	return st
}

// ShardCount returns the number of lock stripes.
func (st *Store) ShardCount() int { return len(st.shards) }

// shardFor maps a subject to its shard. Every index key embedding the
// subject (byPair, bySubject) lives wholly in that shard, so the Def.-7
// lookup For(s, l) touches exactly one stripe.
func (st *Store) shardFor(s profile.SubjectID) *shard {
	return &st.shards[maphash.String(st.seed, string(s))&st.mask]
}

// bump publishes next as sh's state and moves both the shard's and the
// store's version. Callers hold sh.mu.
func (st *Store) bump(sh *shard, next *shardData) {
	sh.data.Store(next)
	sh.version.Add(1)
	st.version.Add(1)
}

// Add normalizes, validates and inserts the authorization, returning the
// stored value with its assigned ID.
func (st *Store) Add(a Authorization) (Authorization, error) {
	a = a.Normalize()
	if err := a.Validate(); err != nil {
		return Authorization{}, err
	}
	sh := st.shardFor(a.Subject)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	a.ID = ID(st.lastID.Add(1))
	next := sh.data.Load().clone()
	next.insert(a)
	st.bump(sh, next)
	return a, nil
}

// AddAll normalizes, validates and inserts a batch of authorizations,
// returning the stored values with their assigned IDs in input order.
// Validation is all-or-nothing and happens before any insert. Each
// touched shard is cloned exactly once, so bulk writers (rule
// derivation, conflict resolution sweeps) pay O(shard) copy-on-write
// cost per batch instead of per record.
func (st *Store) AddAll(auths []Authorization) ([]Authorization, error) {
	if len(auths) == 0 {
		return nil, nil
	}
	st.wideMu.Lock()
	defer st.wideMu.Unlock()
	out := make([]Authorization, len(auths))
	for i, a := range auths {
		a = a.Normalize()
		if err := a.Validate(); err != nil {
			return nil, err
		}
		out[i] = a
	}
	// Assign IDs in input order, then group by shard so each stripe is
	// cloned and published once.
	byShard := make(map[*shard][]int)
	for i := range out {
		out[i].ID = ID(st.lastID.Add(1))
		sh := st.shardFor(out[i].Subject)
		byShard[sh] = append(byShard[sh], i)
	}
	for sh, idxs := range byShard {
		batch := make([]Authorization, len(idxs))
		for j, i := range idxs {
			batch[j] = out[i]
		}
		sh.mu.Lock()
		next := sh.data.Load().clone()
		next.insertAll(batch)
		st.bump(sh, next)
		sh.mu.Unlock()
	}
	return out, nil
}

// Get returns the authorization with the given ID. The ID alone does not
// identify a shard, so Get scans the published data of every stripe —
// lock-free, and off the Def.-7 hot path (decisions use For).
func (st *Store) Get(id ID) (Authorization, error) {
	for i := range st.shards {
		if a, ok := st.shards[i].data.Load().byID[id]; ok {
			return a, nil
		}
	}
	return Authorization{}, fmt.Errorf("%w: %d", ErrNotFound, id)
}

// Revoke removes the authorization with the given ID.
func (st *Store) Revoke(id ID) error {
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		cur := sh.data.Load()
		a, ok := cur.byID[id]
		if !ok {
			sh.mu.Unlock()
			continue
		}
		next := cur.clone()
		next.remove(a)
		st.bump(sh, next)
		sh.mu.Unlock()
		return nil
	}
	return fmt.Errorf("%w: %d", ErrNotFound, id)
}

// RevokeDerivedBy removes every authorization derived by the named rule
// and returns how many were removed. The rule engine calls this before
// re-deriving, implementing Example 1's automatic revocation when the
// underlying profile changes.
func (st *Store) RevokeDerivedBy(rule string) int {
	removed := 0
	for i := range st.shards {
		sh := &st.shards[i]
		sh.mu.Lock()
		cur := sh.data.Load()
		var victims []Authorization
		for _, a := range cur.byID {
			if a.DerivedBy == rule {
				victims = append(victims, a)
			}
		}
		if len(victims) > 0 {
			next := cur.clone()
			for _, a := range victims {
				next.remove(a)
			}
			st.bump(sh, next)
			removed += len(victims)
		}
		sh.mu.Unlock()
	}
	return removed
}

// For returns the authorizations for subject s at location l, sorted by
// ID — the lookup behind every access request (Def. 7 checks "there
// exists at least one location temporal authorization" for the pair).
// It reads one shard's published state without locking or allocating:
// the returned slice is the immutable published index itself and must be
// treated as read-only.
func (st *Store) For(s profile.SubjectID, l graph.ID) []Authorization {
	return st.shardFor(s).data.Load().byPair[subjectLocation{s, l}]
}

// AppendFor appends the authorizations for (s, l) to dst, in ID order —
// the batched form of For for callers that gather many lookups into one
// owned backing slice (Algorithm 1's per-location gather).
func (st *Store) AppendFor(dst []Authorization, s profile.SubjectID, l graph.ID) []Authorization {
	return append(dst, st.shardFor(s).data.Load().byPair[subjectLocation{s, l}]...)
}

// BySubject returns all authorizations for subject s, sorted by ID.
func (st *Store) BySubject(s profile.SubjectID) []Authorization {
	d := st.shardFor(s).data.Load()
	return d.collect(d.bySubject[s])
}

// ByLocation returns all authorizations on location l, sorted by ID —
// Algorithm 1 iterates "for each location-temporal authorization a of l".
// A location's holders hash to many shards, so this fans out and merges.
func (st *Store) ByLocation(l graph.ID) []Authorization {
	return st.View().ByLocation(l)
}

// Subjects returns every subject holding at least one authorization,
// sorted — the domain of per-subject analyses like "who can access l".
func (st *Store) Subjects() []profile.SubjectID {
	return st.View().Subjects()
}

// All returns every authorization sorted by ID.
func (st *Store) All() []Authorization {
	return st.View().All()
}

// Len returns the number of stored authorizations.
func (st *Store) Len() int {
	n := 0
	for i := range st.shards {
		n += len(st.shards[i].data.Load().byID)
	}
	return n
}

// Snapshot returns all authorizations plus the next-ID watermark for
// persistence.
func (st *Store) Snapshot() ([]Authorization, ID) {
	return st.All(), st.peekNextID()
}

func (st *Store) peekNextID() ID {
	return ID(st.lastID.Load() + 1)
}

// Restore replaces the store contents. Authorizations keep their IDs;
// nextID resumes above the largest restored ID (or the provided watermark
// if higher), so IDs are never reused after recovery.
func (st *Store) Restore(auths []Authorization, nextID ID) error {
	// Lock every stripe in order: restore is a whole-store mutation.
	st.wideMu.Lock()
	defer st.wideMu.Unlock()
	for i := range st.shards {
		st.shards[i].mu.Lock()
	}
	defer func() {
		for i := range st.shards {
			st.shards[i].mu.Unlock()
		}
	}()

	fresh := make([]*shardData, len(st.shards))
	for i := range fresh {
		fresh[i] = newShardData()
	}
	seen := make(map[ID]bool, len(auths))
	var last ID
	err := func() error {
		for _, a := range auths {
			if a.ID == 0 {
				return errors.New("authz: restore: authorization without ID")
			}
			if seen[a.ID] {
				return fmt.Errorf("authz: restore: duplicate ID %d", a.ID)
			}
			seen[a.ID] = true
			a = a.Normalize()
			if err := a.Validate(); err != nil {
				return fmt.Errorf("authz: restore %d: %w", a.ID, err)
			}
			fresh[maphash.String(st.seed, string(a.Subject))&st.mask].insert(a)
			if a.ID > last {
				last = a.ID
			}
		}
		return nil
	}()
	if err != nil {
		// Even a failed restore clears the store (the pre-shard code
		// mutated in place); publish the partial rebuild and bump the
		// epoch so caches never serve the old state.
		for i := range st.shards {
			st.shards[i].data.Store(newShardData())
			st.shards[i].version.Add(1)
		}
		st.version.Add(1)
		return err
	}
	// Restore input order is arbitrary — sort each index list by ID to
	// re-establish the sorted invariant insertion relies on.
	for _, d := range fresh {
		sortIDLists(d.bySubject)
		sortIDLists(d.byLocation)
		for _, auths := range d.byPair {
			sortAuths(auths)
		}
	}
	for i := range st.shards {
		st.shards[i].data.Store(fresh[i])
		st.shards[i].version.Add(1)
	}
	st.version.Add(1)
	if nextID > 0 && nextID-1 > last {
		last = nextID - 1
	}
	st.lastID.Store(uint64(last))
	return nil
}

func sortIDLists[K comparable](m map[K][]ID) {
	for _, ids := range m {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
}

// ShardStat describes one stripe for the stats endpoint.
type ShardStat struct {
	Auths   int    `json:"auths"`
	Version uint64 `json:"version"`
}

// StoreStats is a point-in-time snapshot of the sharded store's shape:
// size, epoch, and the per-stripe balance behind the lock-free read
// path's fan-out costs.
type StoreStats struct {
	Shards   int         `json:"shards"`
	Auths    int         `json:"auths"`
	Version  uint64      `json:"version"`
	PerShard []ShardStat `json:"per_shard,omitempty"`
}

// Stats reports shard count, total size, the aggregated version, and
// per-shard fill — the observability hook behind /v1/stats.
func (st *Store) Stats() StoreStats {
	out := StoreStats{
		Shards:   len(st.shards),
		Version:  st.version.Load(),
		PerShard: make([]ShardStat, len(st.shards)),
	}
	for i := range st.shards {
		n := len(st.shards[i].data.Load().byID)
		out.Auths += n
		out.PerShard[i] = ShardStat{Auths: n, Version: st.shards[i].version.Load()}
	}
	return out
}

// --- Views ---------------------------------------------------------------

// View is an immutable snapshot of the whole store: the published data of
// every shard, captured at one instant. All reads on a View are lock-free
// and stable — concurrent Store mutations publish new shard states but
// never touch the captured ones, so a View answers every query from
// exactly the state it captured (the property the core read path's
// RCU-style snapshots are built on).
//
// A View captured while mutations are in flight is consistent per shard;
// callers needing a cross-shard-consistent cut must serialise the capture
// against writers (core.System captures under its write lock).
type View struct {
	data    []*shardData
	seed    maphash.Seed
	mask    uint64
	version uint64
}

// View captures the current published state of every shard.
func (st *Store) View() *View {
	v := &View{
		data:    make([]*shardData, len(st.shards)),
		seed:    st.seed,
		mask:    st.mask,
		version: st.version.Load(),
	}
	for i := range st.shards {
		v.data[i] = st.shards[i].data.Load()
	}
	return v
}

// Version returns the store epoch observed at capture time.
func (v *View) Version() uint64 { return v.version }

func (v *View) shardFor(s profile.SubjectID) *shardData {
	return v.data[maphash.String(v.seed, string(s))&v.mask]
}

// For returns the authorizations for subject s at location l, in ID
// order, as of the capture. The returned slice is the view's immutable
// index itself — read-only, zero-allocation.
func (v *View) For(s profile.SubjectID, l graph.ID) []Authorization {
	return v.shardFor(s).byPair[subjectLocation{s, l}]
}

// AppendFor appends the authorizations for (s, l) to dst in ID order —
// see Store.AppendFor.
func (v *View) AppendFor(dst []Authorization, s profile.SubjectID, l graph.ID) []Authorization {
	return append(dst, v.shardFor(s).byPair[subjectLocation{s, l}]...)
}

// BySubject returns all authorizations for subject s, in ID order.
func (v *View) BySubject(s profile.SubjectID) []Authorization {
	d := v.shardFor(s)
	return d.collect(d.bySubject[s])
}

// ByLocation returns all authorizations on location l, in ID order,
// merged across shards.
func (v *View) ByLocation(l graph.ID) []Authorization {
	var out []Authorization
	for _, d := range v.data {
		out = d.appendCollect(out, d.byLocation[l])
	}
	sortAuths(out)
	return out
}

// Get returns the authorization with the given ID.
func (v *View) Get(id ID) (Authorization, error) {
	for _, d := range v.data {
		if a, ok := d.byID[id]; ok {
			return a, nil
		}
	}
	return Authorization{}, fmt.Errorf("%w: %d", ErrNotFound, id)
}

// All returns every authorization sorted by ID.
func (v *View) All() []Authorization {
	out := make([]Authorization, 0, v.Len())
	for _, d := range v.data {
		for _, a := range d.byID {
			out = append(out, a)
		}
	}
	sortAuths(out)
	return out
}

// Len returns the number of authorizations in the view.
func (v *View) Len() int {
	n := 0
	for _, d := range v.data {
		n += len(d.byID)
	}
	return n
}

// Subjects returns every subject holding at least one authorization,
// sorted.
func (v *View) Subjects() []profile.SubjectID {
	var out []profile.SubjectID
	for _, d := range v.data {
		for s, ids := range d.bySubject {
			if len(ids) > 0 {
				out = append(out, s)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortAuths(a []Authorization) {
	sort.Slice(a, func(i, j int) bool { return a[i].ID < a[j].ID })
}

// --- Conflicts -----------------------------------------------------------

// Conflict describes two authorizations for the same (subject, location)
// whose windows interact in a way the paper flags as needing resolution
// (§4: "the authorization rules may introduce conflicts ... This conflict
// should be resolved either by combining the two authorizations, or
// discarding one of them").
type Conflict struct {
	A, B Authorization
	// Kind is "duplicate" (identical privilege), "overlap" (entry
	// windows overlap) or "adjacent" (entry windows touch, the paper's
	// [5,10] vs [10,11] example is overlap at a point; [5,9] vs [10,11]
	// is adjacency that could be combined).
	Kind string
}

// FindConflicts scans the store for pairs of authorizations on the same
// (subject, location) with duplicate, overlapping, or adjacent entry
// durations. The paper leaves *resolution* to future work; detection makes
// human error visible (one of LTAM's stated goals).
func (st *Store) FindConflicts() []Conflict {
	return st.View().FindConflicts()
}

// FindConflicts scans the captured state — see Store.FindConflicts.
func (v *View) FindConflicts() []Conflict {
	var out []Conflict
	var keys []subjectLocation
	for _, d := range v.data {
		for k := range d.byPair {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].s != keys[j].s {
			return keys[i].s < keys[j].s
		}
		return keys[i].l < keys[j].l
	})
	for _, k := range keys {
		auths := v.shardFor(k.s).byPair[k]
		for i := 0; i < len(auths); i++ {
			for j := i + 1; j < len(auths); j++ {
				a, b := auths[i], auths[j]
				switch {
				case a.Equivalent(b):
					out = append(out, Conflict{A: a, B: b, Kind: "duplicate"})
				case a.Entry.Overlaps(b.Entry):
					out = append(out, Conflict{A: a, B: b, Kind: "overlap"})
				case a.Entry.Adjacent(b.Entry):
					out = append(out, Conflict{A: a, B: b, Kind: "adjacent"})
				}
			}
		}
	}
	return out
}
