package authz

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/profile"
)

// ErrNotFound is returned for unknown authorization IDs.
var ErrNotFound = errors.New("authz: authorization not found")

// subjectLocation is the composite index key for Def.-7 lookups.
type subjectLocation struct {
	s profile.SubjectID
	l graph.ID
}

// Store is the authorization database of Fig. 3: all authorizations
// defined by administrators plus those derived by rules, indexed for the
// three access paths the engine needs — by (subject, location) for access
// checks, by location for Algorithm 1, and by subject for per-user
// queries. Store is safe for concurrent use.
type Store struct {
	mu         sync.RWMutex
	nextID     ID
	byID       map[ID]Authorization
	bySubject  map[profile.SubjectID][]ID
	byLocation map[graph.ID][]ID
	byPair     map[subjectLocation][]ID

	// version counts mutations. Query caches key their memoized results
	// on it, so it must be bumped by every path that changes the stored
	// set — including rule-engine derivations and conflict resolution,
	// which go through Add/Revoke.
	version atomic.Uint64
}

// Version returns the store's mutation epoch: it increases on every
// change to the stored authorization set and is stable between changes.
func (st *Store) Version() uint64 { return st.version.Load() }

// NewStore returns an empty authorization database.
func NewStore() *Store {
	return &Store{
		nextID:     1,
		byID:       make(map[ID]Authorization),
		bySubject:  make(map[profile.SubjectID][]ID),
		byLocation: make(map[graph.ID][]ID),
		byPair:     make(map[subjectLocation][]ID),
	}
}

// Add normalizes, validates and inserts the authorization, returning the
// stored value with its assigned ID.
func (st *Store) Add(a Authorization) (Authorization, error) {
	a = a.Normalize()
	if err := a.Validate(); err != nil {
		return Authorization{}, err
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	a.ID = st.nextID
	st.nextID++
	st.insertLocked(a)
	st.version.Add(1)
	return a, nil
}

func (st *Store) insertLocked(a Authorization) {
	st.byID[a.ID] = a
	st.bySubject[a.Subject] = append(st.bySubject[a.Subject], a.ID)
	st.byLocation[a.Location] = append(st.byLocation[a.Location], a.ID)
	key := subjectLocation{a.Subject, a.Location}
	st.byPair[key] = append(st.byPair[key], a.ID)
}

// Get returns the authorization with the given ID.
func (st *Store) Get(id ID) (Authorization, error) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	a, ok := st.byID[id]
	if !ok {
		return Authorization{}, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return a, nil
}

// Revoke removes the authorization with the given ID.
func (st *Store) Revoke(id ID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	a, ok := st.byID[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	st.removeLocked(a)
	st.version.Add(1)
	return nil
}

func (st *Store) removeLocked(a Authorization) {
	delete(st.byID, a.ID)
	st.bySubject[a.Subject] = dropID(st.bySubject[a.Subject], a.ID)
	st.byLocation[a.Location] = dropID(st.byLocation[a.Location], a.ID)
	key := subjectLocation{a.Subject, a.Location}
	st.byPair[key] = dropID(st.byPair[key], a.ID)
}

func dropID(ids []ID, id ID) []ID {
	for i, v := range ids {
		if v == id {
			return append(ids[:i], ids[i+1:]...)
		}
	}
	return ids
}

// RevokeDerivedBy removes every authorization derived by the named rule
// and returns how many were removed. The rule engine calls this before
// re-deriving, implementing Example 1's automatic revocation when the
// underlying profile changes.
func (st *Store) RevokeDerivedBy(rule string) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	var victims []Authorization
	for _, a := range st.byID {
		if a.DerivedBy == rule {
			victims = append(victims, a)
		}
	}
	for _, a := range victims {
		st.removeLocked(a)
	}
	if len(victims) > 0 {
		st.version.Add(1)
	}
	return len(victims)
}

// For returns the authorizations for subject s at location l, sorted by
// ID — the lookup behind every access request (Def. 7 checks "there
// exists at least one location temporal authorization" for the pair).
func (st *Store) For(s profile.SubjectID, l graph.ID) []Authorization {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.collectLocked(st.byPair[subjectLocation{s, l}])
}

// BySubject returns all authorizations for subject s, sorted by ID.
func (st *Store) BySubject(s profile.SubjectID) []Authorization {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.collectLocked(st.bySubject[s])
}

// ByLocation returns all authorizations on location l, sorted by ID —
// Algorithm 1 iterates "for each location-temporal authorization a of l".
func (st *Store) ByLocation(l graph.ID) []Authorization {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.collectLocked(st.byLocation[l])
}

func (st *Store) collectLocked(ids []ID) []Authorization {
	if len(ids) == 0 {
		return nil
	}
	out := make([]Authorization, 0, len(ids))
	for _, id := range ids {
		if a, ok := st.byID[id]; ok {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Subjects returns every subject holding at least one authorization,
// sorted — the domain of per-subject analyses like "who can access l".
func (st *Store) Subjects() []profile.SubjectID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]profile.SubjectID, 0, len(st.bySubject))
	for s, ids := range st.bySubject {
		if len(ids) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns every authorization sorted by ID.
func (st *Store) All() []Authorization {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]Authorization, 0, len(st.byID))
	for _, a := range st.byID {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of stored authorizations.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.byID)
}

// Snapshot returns all authorizations plus the next-ID watermark for
// persistence.
func (st *Store) Snapshot() ([]Authorization, ID) {
	return st.All(), st.peekNextID()
}

func (st *Store) peekNextID() ID {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.nextID
}

// Restore replaces the store contents. Authorizations keep their IDs;
// nextID resumes above the largest restored ID (or the provided watermark
// if higher), so IDs are never reused after recovery.
func (st *Store) Restore(auths []Authorization, nextID ID) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.version.Add(1) // bump first: even a failed restore mutates the maps
	st.byID = make(map[ID]Authorization, len(auths))
	st.bySubject = make(map[profile.SubjectID][]ID)
	st.byLocation = make(map[graph.ID][]ID)
	st.byPair = make(map[subjectLocation][]ID)
	st.nextID = 1
	for _, a := range auths {
		if a.ID == 0 {
			return errors.New("authz: restore: authorization without ID")
		}
		if _, dup := st.byID[a.ID]; dup {
			return fmt.Errorf("authz: restore: duplicate ID %d", a.ID)
		}
		a = a.Normalize()
		if err := a.Validate(); err != nil {
			return fmt.Errorf("authz: restore %d: %w", a.ID, err)
		}
		st.insertLocked(a)
		if a.ID >= st.nextID {
			st.nextID = a.ID + 1
		}
	}
	if nextID > st.nextID {
		st.nextID = nextID
	}
	return nil
}

// Conflict describes two authorizations for the same (subject, location)
// whose windows interact in a way the paper flags as needing resolution
// (§4: "the authorization rules may introduce conflicts ... This conflict
// should be resolved either by combining the two authorizations, or
// discarding one of them").
type Conflict struct {
	A, B Authorization
	// Kind is "duplicate" (identical privilege), "overlap" (entry
	// windows overlap) or "adjacent" (entry windows touch, the paper's
	// [5,10] vs [10,11] example is overlap at a point; [5,9] vs [10,11]
	// is adjacency that could be combined).
	Kind string
}

// FindConflicts scans the store for pairs of authorizations on the same
// (subject, location) with duplicate, overlapping, or adjacent entry
// durations. The paper leaves *resolution* to future work; detection makes
// human error visible (one of LTAM's stated goals).
func (st *Store) FindConflicts() []Conflict {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []Conflict
	keys := make([]subjectLocation, 0, len(st.byPair))
	for k := range st.byPair {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].s != keys[j].s {
			return keys[i].s < keys[j].s
		}
		return keys[i].l < keys[j].l
	})
	for _, k := range keys {
		auths := st.collectLocked(st.byPair[k])
		for i := 0; i < len(auths); i++ {
			for j := i + 1; j < len(auths); j++ {
				a, b := auths[i], auths[j]
				switch {
				case a.Equivalent(b):
					out = append(out, Conflict{A: a, B: b, Kind: "duplicate"})
				case a.Entry.Overlaps(b.Entry):
					out = append(out, Conflict{A: a, B: b, Kind: "overlap"})
				case a.Entry.Adjacent(b.Entry):
					out = append(out, Conflict{A: a, B: b, Kind: "adjacent"})
				}
			}
		}
	}
	return out
}
