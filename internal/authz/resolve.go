package authz

import (
	"fmt"

	"repro/internal/interval"
)

// The paper (§4) notes that authorization rules may introduce conflicts —
// e.g. one authorization admitting Alice to CAIS during [5, 10] and
// another during [10, 11] — and defers resolution to future work,
// sketching the two options: "combining the two authorizations, or
// discarding one of them." This file implements both as pluggable
// strategies over the conflicts FindConflicts detects.

// Strategy selects how a detected conflict is resolved.
type Strategy int

// The resolution strategies.
const (
	// Combine merges the two authorizations into one covering both
	// entry windows (hull) and both exit windows, with the larger entry
	// count — the paper's "combining" option. Only applied when the
	// windows overlap or touch; disjoint windows are left alone (they
	// are not really in conflict, just adjacent grants).
	Combine Strategy = iota
	// KeepFirst discards the newer authorization (higher ID) — the
	// paper's "discarding one of them", biased to the earlier grant.
	KeepFirst
	// KeepLast discards the older authorization.
	KeepLast
)

func (s Strategy) String() string {
	switch s {
	case Combine:
		return "combine"
	case KeepFirst:
		return "keep-first"
	case KeepLast:
		return "keep-last"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Resolution records one applied fix.
type Resolution struct {
	Conflict Conflict
	Strategy Strategy
	// Kept is the surviving (possibly merged) authorization; Removed
	// the IDs revoked.
	Kept    Authorization
	Removed []ID
}

// ResolveConflicts detects conflicts and applies the strategy to each,
// returning what was done. Resolution iterates to a fixpoint: merging two
// authorizations can bring the survivor into conflict with a third, which
// is then resolved in a later pass. Derived authorizations are skipped —
// they are owned by their rule and would reappear at the next
// re-derivation; resolving them means fixing the rule, which is the
// administrator's decision (the paper's human-error analysis goal).
func (st *Store) ResolveConflicts(strategy Strategy) ([]Resolution, error) {
	var out []Resolution
	for pass := 0; pass < 64; pass++ {
		conflicts := st.FindConflicts()
		applied := false
		for _, c := range conflicts {
			if c.A.IsDerived() || c.B.IsDerived() {
				continue
			}
			res, ok, err := st.resolveOne(c, strategy)
			if err != nil {
				return out, err
			}
			if ok {
				out = append(out, res)
				applied = true
				break // indexes changed: re-detect
			}
		}
		if !applied {
			return out, nil
		}
	}
	return out, fmt.Errorf("authz: conflict resolution did not converge")
}

func (st *Store) resolveOne(c Conflict, strategy Strategy) (Resolution, bool, error) {
	res := Resolution{Conflict: c, Strategy: strategy}
	switch strategy {
	case Combine:
		merged, ok := combine(c.A, c.B)
		if !ok {
			return res, false, nil
		}
		if err := st.Revoke(c.A.ID); err != nil {
			return res, false, err
		}
		if err := st.Revoke(c.B.ID); err != nil {
			return res, false, err
		}
		stored, err := st.Add(merged)
		if err != nil {
			return res, false, fmt.Errorf("authz: merged authorization invalid: %w", err)
		}
		res.Kept = stored
		res.Removed = []ID{c.A.ID, c.B.ID}
		return res, true, nil
	case KeepFirst, KeepLast:
		keep, drop := c.A, c.B
		if keep.ID > drop.ID {
			keep, drop = drop, keep
		}
		if strategy == KeepLast {
			keep, drop = drop, keep
		}
		if err := st.Revoke(drop.ID); err != nil {
			return res, false, err
		}
		res.Kept = keep
		res.Removed = []ID{drop.ID}
		return res, true, nil
	default:
		return res, false, fmt.Errorf("authz: unknown strategy %d", strategy)
	}
}

// combine merges two authorizations on the same (subject, location) whose
// entry windows overlap or touch. The merged entry window is the union
// (a single interval, since they touch); the merged exit window likewise
// uses the hull, so neither original right-to-leave is lost; the entry
// count is the larger (Unlimited dominating).
func combine(a, b Authorization) (Authorization, bool) {
	if a.Subject != b.Subject || a.Location != b.Location {
		return Authorization{}, false
	}
	if !a.Entry.Overlaps(b.Entry) && !a.Entry.Adjacent(b.Entry) {
		return Authorization{}, false
	}
	merged := Authorization{
		Subject:   a.Subject,
		Location:  a.Location,
		Entry:     a.Entry.Hull(b.Entry),
		Exit:      a.Exit.Hull(b.Exit),
		CreatedAt: interval.Min(a.CreatedAt, b.CreatedAt),
	}
	switch {
	case a.MaxEntries == Unlimited || b.MaxEntries == Unlimited:
		merged.MaxEntries = Unlimited
	case a.MaxEntries > b.MaxEntries:
		merged.MaxEntries = a.MaxEntries
	default:
		merged.MaxEntries = b.MaxEntries
	}
	return merged, true
}
