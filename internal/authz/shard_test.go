package authz

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// shardFixture fills a 4-shard store with na authorizations per (subject,
// location) over nSubs subjects and nLocs locations, so every fan-out
// path has work spread across stripes.
func shardFixture(t *testing.T, nSubs, nLocs, na int) (*Store, []profile.SubjectID, []graph.ID) {
	t.Helper()
	st := NewStoreWithShards(4)
	var subs []profile.SubjectID
	var locs []graph.ID
	for i := 0; i < nSubs; i++ {
		subs = append(subs, profile.SubjectID(fmt.Sprintf("u%02d", i)))
	}
	for i := 0; i < nLocs; i++ {
		locs = append(locs, graph.ID(fmt.Sprintf("l%02d", i)))
	}
	for _, s := range subs {
		for _, l := range locs {
			for k := 0; k < na; k++ {
				lo := interval.Time(1 + k*10)
				if _, err := st.Add(New(interval.New(lo, lo+5), interval.New(lo, lo+9), s, l, 1)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return st, subs, locs
}

// TestShardedFanOut: the cross-shard reads (ByLocation, All, Subjects,
// Len, Get) agree with the per-shard reads (For, BySubject) and keep
// global ID order.
func TestShardedFanOut(t *testing.T) {
	st, subs, locs := shardFixture(t, 8, 6, 2)
	if st.ShardCount() != 4 {
		t.Fatalf("shards = %d, want 4", st.ShardCount())
	}
	wantTotal := len(subs) * len(locs) * 2
	if st.Len() != wantTotal {
		t.Fatalf("len = %d, want %d", st.Len(), wantTotal)
	}

	all := st.All()
	if len(all) != wantTotal {
		t.Fatalf("All = %d records", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID >= all[i].ID {
			t.Fatalf("All not sorted at %d: %d >= %d", i, all[i-1].ID, all[i].ID)
		}
	}

	for _, l := range locs {
		byLoc := st.ByLocation(l)
		if len(byLoc) != len(subs)*2 {
			t.Fatalf("ByLocation(%s) = %d, want %d", l, len(byLoc), len(subs)*2)
		}
		for i := 1; i < len(byLoc); i++ {
			if byLoc[i-1].ID >= byLoc[i].ID {
				t.Fatalf("ByLocation(%s) not sorted", l)
			}
		}
	}

	for _, s := range subs {
		if got := st.BySubject(s); len(got) != len(locs)*2 {
			t.Fatalf("BySubject(%s) = %d", s, len(got))
		}
		for _, l := range locs {
			got := st.For(s, l)
			if len(got) != 2 || got[0].ID >= got[1].ID {
				t.Fatalf("For(%s, %s) = %v", s, l, got)
			}
			if app := st.AppendFor(nil, s, l); fmt.Sprint(app) != fmt.Sprint(got) {
				t.Fatalf("AppendFor != For for (%s, %s)", s, l)
			}
		}
	}

	if got := st.Subjects(); fmt.Sprint(got) != fmt.Sprint(subs) {
		t.Fatalf("Subjects = %v", got)
	}
	for _, a := range all {
		got, err := st.Get(a.ID)
		if err != nil || got.ID != a.ID {
			t.Fatalf("Get(%d) = %v, %v", a.ID, got, err)
		}
	}
}

// TestViewStableUnderMutation: a captured View keeps answering from its
// snapshot while the live store moves on — the property the core read
// path's consistency rests on.
func TestViewStableUnderMutation(t *testing.T) {
	st, subs, locs := shardFixture(t, 4, 3, 1)
	v := st.View()
	wantLen := v.Len()
	wantFor := fmt.Sprint(v.For(subs[0], locs[0]))
	wantVer := v.Version()

	// Mutate the live store: add for an existing subject and revoke one.
	added, err := st.Add(New(interval.New(1, 5), interval.New(1, 9), subs[0], locs[0], 1))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Revoke(1); err != nil {
		t.Fatal(err)
	}

	if v.Len() != wantLen {
		t.Errorf("view len moved: %d -> %d", wantLen, v.Len())
	}
	if got := fmt.Sprint(v.For(subs[0], locs[0])); got != wantFor {
		t.Errorf("view For moved: %s -> %s", wantFor, got)
	}
	if _, err := v.Get(added.ID); err == nil {
		t.Error("view sees an authorization added after capture")
	}
	if _, err := v.Get(1); err != nil {
		t.Error("view lost an authorization revoked after capture")
	}
	if v.Version() != wantVer {
		t.Errorf("view version moved")
	}

	// A fresh capture sees the new state.
	v2 := st.View()
	if _, err := v2.Get(added.ID); err != nil {
		t.Error("fresh view misses the added authorization")
	}
	if _, err := v2.Get(1); err == nil {
		t.Error("fresh view still has the revoked authorization")
	}
	if v2.Version() <= wantVer {
		t.Errorf("fresh view version %d <= captured %d", v2.Version(), wantVer)
	}
}

// TestShardStats: totals match Len, per-shard sizes sum up, and the
// aggregate version moves with every mutation.
func TestShardStats(t *testing.T) {
	st, _, _ := shardFixture(t, 6, 2, 1)
	stats := st.Stats()
	if stats.Shards != 4 || len(stats.PerShard) != 4 {
		t.Fatalf("stats shards = %+v", stats)
	}
	sum := 0
	for _, sh := range stats.PerShard {
		sum += sh.Auths
	}
	if sum != stats.Auths || sum != st.Len() {
		t.Errorf("per-shard sum %d, total %d, len %d", sum, stats.Auths, st.Len())
	}
	before := st.Version()
	if _, err := st.Add(New(interval.New(1, 2), interval.New(1, 5), "extra", "l00", 1)); err != nil {
		t.Fatal(err)
	}
	if st.Version() != before+1 {
		t.Errorf("version %d after add, want %d", st.Version(), before+1)
	}
}

// TestAddAllSortedUnderRacingAdds: AddAll assigns its batch's IDs before
// locking shards, so a racing single Add can publish a higher ID first;
// the insert path must still leave every index list sorted by ID (the
// invariant For/BySubject rely on instead of sorting per read).
func TestAddAllSortedUnderRacingAdds(t *testing.T) {
	st := NewStoreWithShards(2)
	const subs = 4
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := profile.SubjectID(fmt.Sprintf("u%02d", i%subs))
				if w == 0 {
					batch := []Authorization{
						New(interval.New(1, 5), interval.New(1, 9), s, "a", 1),
						New(interval.New(1, 5), interval.New(1, 9), s, "b", 1),
					}
					if _, err := st.AddAll(batch); err != nil {
						t.Error(err)
						return
					}
				} else if _, err := st.Add(New(interval.New(1, 5), interval.New(1, 9), s, "a", 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	seen := map[ID]bool{}
	for i := 0; i < subs; i++ {
		s := profile.SubjectID(fmt.Sprintf("u%02d", i))
		for _, got := range [][]Authorization{st.BySubject(s), st.For(s, "a"), st.For(s, "b")} {
			for j := 1; j < len(got); j++ {
				if got[j-1].ID >= got[j].ID {
					t.Fatalf("%s: list not sorted: %d >= %d", s, got[j-1].ID, got[j].ID)
				}
			}
		}
	}
	for _, a := range st.All() {
		if seen[a.ID] {
			t.Fatalf("duplicate ID %d", a.ID)
		}
		seen[a.ID] = true
	}
}

// TestConcurrentLockFreeReads hammers every read path while writers churn
// adds and revokes — under -race this proves the copy-on-write publish
// discipline: readers never lock and never see a torn shard.
func TestConcurrentLockFreeReads(t *testing.T) {
	st, subs, locs := shardFixture(t, 8, 4, 1)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				a, err := st.Add(New(interval.New(1, 5), interval.New(1, 9),
					subs[(i+w)%len(subs)], locs[i%len(locs)], 1))
				if err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := st.Revoke(a.ID); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				s, l := subs[i%len(subs)], locs[(i+r)%len(locs)]
				for _, a := range st.For(s, l) {
					if a.Subject != s || a.Location != l {
						t.Errorf("For(%s, %s) returned %v", s, l, a)
						return
					}
				}
				_ = st.BySubject(s)
				_ = st.ByLocation(l)
				_, _ = st.Get(ID(1 + i%64))
				if i%20 == 0 {
					_ = st.All()
					_ = st.Subjects()
					_ = st.FindConflicts()
					_ = st.View().Len()
				}
			}
		}(r)
	}
	close(stop)
	_ = stop
	wg.Wait()

	// Quiesced: indexes agree with a full snapshot-restore round trip.
	auths, next := st.Snapshot()
	fresh := NewStoreWithShards(4)
	if err := fresh.Restore(auths, next); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != st.Len() {
		t.Errorf("restore len %d != %d", fresh.Len(), st.Len())
	}
	for _, s := range subs {
		for _, l := range locs {
			if fmt.Sprint(fresh.For(s, l)) != fmt.Sprint(st.For(s, l)) {
				t.Errorf("restore disagrees on For(%s, %s)", s, l)
			}
		}
	}
}
