package authz

import (
	"errors"
	"testing"

	"repro/internal/interval"
)

func addOK(t *testing.T, st *Store, a Authorization) Authorization {
	t.Helper()
	got, err := st.Add(a)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestStoreAddAssignsIDs(t *testing.T) {
	st := NewStore()
	a1 := addOK(t, st, New(iv("[10, 20]"), iv("[10, 50]"), "Alice", "CAIS", 2))
	a2 := addOK(t, st, New(iv("[5, 35]"), iv("[20, 100]"), "Bob", "CHIPES", 1))
	if a1.ID != 1 || a2.ID != 2 {
		t.Errorf("ids = %d, %d", a1.ID, a2.ID)
	}
	if st.Len() != 2 {
		t.Errorf("len = %d", st.Len())
	}
	got, err := st.Get(a1.ID)
	if err != nil || got.Subject != "Alice" {
		t.Errorf("Get = %v, %v", got, err)
	}
	if _, err := st.Get(999); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing get: %v", err)
	}
}

func TestStoreAddValidates(t *testing.T) {
	st := NewStore()
	if _, err := st.Add(New(iv("[5, 40]"), iv("[2, 100]"), "Alice", "CAIS", 1)); err == nil {
		t.Error("invalid auth must be rejected")
	}
	// Unspecified durations are normalised, not rejected.
	a := addOK(t, st, Authorization{Subject: "Alice", Location: "CAIS", CreatedAt: 3})
	if !a.Entry.Equal(interval.From(3)) {
		t.Errorf("entry = %v", a.Entry)
	}
}

func TestStoreIndexes(t *testing.T) {
	st := NewStore()
	addOK(t, st, New(iv("[10, 20]"), iv("[10, 50]"), "Alice", "CAIS", 2))
	addOK(t, st, New(iv("[5, 35]"), iv("[20, 100]"), "Bob", "CHIPES", 1))
	addOK(t, st, New(iv("[1, 2]"), iv("[1, 9]"), "Alice", "CHIPES", 1))

	if got := st.For("Alice", "CAIS"); len(got) != 1 || got[0].Subject != "Alice" {
		t.Errorf("For = %v", got)
	}
	if got := st.For("Bob", "CAIS"); got != nil {
		t.Errorf("no auth for (Bob, CAIS), got %v", got)
	}
	if got := st.BySubject("Alice"); len(got) != 2 {
		t.Errorf("BySubject = %v", got)
	}
	if got := st.ByLocation("CHIPES"); len(got) != 2 {
		t.Errorf("ByLocation = %v", got)
	}
	all := st.All()
	if len(all) != 3 || all[0].ID > all[1].ID || all[1].ID > all[2].ID {
		t.Errorf("All = %v", all)
	}
}

func TestStoreRevoke(t *testing.T) {
	st := NewStore()
	a := addOK(t, st, New(iv("[10, 20]"), iv("[10, 50]"), "Alice", "CAIS", 2))
	if err := st.Revoke(a.ID); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 0 || st.For("Alice", "CAIS") != nil || st.BySubject("Alice") != nil || st.ByLocation("CAIS") != nil {
		t.Error("revoke must clear all indexes")
	}
	if err := st.Revoke(a.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("double revoke: %v", err)
	}
}

func TestStoreRevokeDerivedBy(t *testing.T) {
	st := NewStore()
	base := addOK(t, st, New(iv("[5, 20]"), iv("[15, 50]"), "Alice", "CAIS", 2))
	d1 := New(iv("[5, 20]"), iv("[15, 50]"), "Bob", "CAIS", 2)
	d1.DerivedBy, d1.BaseID = "r1", base.ID
	addOK(t, st, d1)
	d2 := New(iv("[10, 20]"), iv("[15, 50]"), "Bob", "CAIS", 2)
	d2.DerivedBy, d2.BaseID = "r2", base.ID
	addOK(t, st, d2)

	if n := st.RevokeDerivedBy("r1"); n != 1 {
		t.Errorf("revoked %d, want 1", n)
	}
	if st.Len() != 2 {
		t.Errorf("len = %d, want 2", st.Len())
	}
	if n := st.RevokeDerivedBy("r1"); n != 0 {
		t.Errorf("second revoke removed %d", n)
	}
	// Base and r2-derived authorizations survive.
	if _, err := st.Get(base.ID); err != nil {
		t.Error("base must survive")
	}
	if got := st.For("Bob", "CAIS"); len(got) != 1 || got[0].DerivedBy != "r2" {
		t.Errorf("survivors = %v", got)
	}
}

func TestStoreSnapshotRestore(t *testing.T) {
	st := NewStore()
	addOK(t, st, New(iv("[10, 20]"), iv("[10, 50]"), "Alice", "CAIS", 2))
	b := addOK(t, st, New(iv("[5, 35]"), iv("[20, 100]"), "Bob", "CHIPES", 1))
	_ = st.Revoke(b.ID)
	auths, next := st.Snapshot()
	if len(auths) != 1 || next != 3 {
		t.Fatalf("snapshot = %v, next = %d", auths, next)
	}
	fresh := NewStore()
	if err := fresh.Restore(auths, next); err != nil {
		t.Fatal(err)
	}
	// IDs never reused after restore.
	c, _ := fresh.Add(New(iv("[1, 2]"), iv("[1, 5]"), "Carol", "Lab1", 1))
	if c.ID != 3 {
		t.Errorf("post-restore id = %d, want 3", c.ID)
	}
	// Restore rejects bad input.
	if err := fresh.Restore([]Authorization{{Subject: "x", Location: "l"}}, 1); err == nil {
		t.Error("restore without ID should fail")
	}
	bad := New(iv("[1, 2]"), iv("[1, 5]"), "x", "l", 1)
	bad.ID = 7
	if err := fresh.Restore([]Authorization{bad, bad}, 1); err == nil {
		t.Error("duplicate IDs should fail")
	}
	inv := New(iv("[5, 40]"), iv("[2, 100]"), "x", "l", 1)
	inv.ID = 9
	if err := fresh.Restore([]Authorization{inv}, 1); err == nil {
		t.Error("invalid auth in restore should fail")
	}
}

func TestFindConflicts(t *testing.T) {
	st := NewStore()
	// The paper's example: Alice may enter CAIS during [5, 10], and
	// another authorization states [10, 11] — these interact.
	addOK(t, st, New(iv("[5, 10]"), iv("[5, 20]"), "Alice", "CAIS", 1))
	addOK(t, st, New(iv("[10, 11]"), iv("[10, 30]"), "Alice", "CAIS", 1))
	// A duplicate pair on another location.
	dup := New(iv("[0, 5]"), iv("[0, 9]"), "Bob", "Lab1", 1)
	addOK(t, st, dup)
	addOK(t, st, dup)
	// Adjacent windows.
	addOK(t, st, New(iv("[0, 4]"), iv("[0, 9]"), "Carol", "Lab2", 1))
	addOK(t, st, New(iv("[5, 8]"), iv("[5, 9]"), "Carol", "Lab2", 1))
	// Unrelated pair: same window, different locations — no conflict.
	addOK(t, st, New(iv("[0, 9]"), iv("[0, 9]"), "Dave", "X", 1))
	addOK(t, st, New(iv("[0, 9]"), iv("[0, 9]"), "Dave", "Y", 1))

	got := st.FindConflicts()
	if len(got) != 3 {
		t.Fatalf("conflicts = %d (%v), want 3", len(got), got)
	}
	kinds := map[string]int{}
	for _, c := range got {
		kinds[c.Kind]++
	}
	if kinds["overlap"] != 1 || kinds["duplicate"] != 1 || kinds["adjacent"] != 1 {
		t.Errorf("kinds = %v", kinds)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	st := NewStore()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			_, _ = st.Add(New(iv("[0, 10]"), iv("[0, 20]"), "Alice", "CAIS", 1))
		}
	}()
	for i := 0; i < 200; i++ {
		st.For("Alice", "CAIS")
		st.All()
		st.Len()
	}
	<-done
	if st.Len() != 200 {
		t.Errorf("len = %d", st.Len())
	}
}
