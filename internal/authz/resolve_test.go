package authz

import "testing"

func TestResolveCombinePaperExample(t *testing.T) {
	// The paper's §4 example: [5, 10] and [10, 11] on (Alice, CAIS).
	st := NewStore()
	addOK(t, st, New(iv("[5, 10]"), iv("[5, 20]"), "Alice", "CAIS", 1))
	addOK(t, st, New(iv("[10, 11]"), iv("[10, 30]"), "Alice", "CAIS", 2))
	res, err := st.ResolveConflicts(Combine)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 {
		t.Fatalf("resolutions = %v", res)
	}
	kept := res[0].Kept
	if !kept.Entry.Equal(iv("[5, 11]")) {
		t.Errorf("merged entry = %v", kept.Entry)
	}
	if !kept.Exit.Equal(iv("[5, 30]")) {
		t.Errorf("merged exit = %v", kept.Exit)
	}
	if kept.MaxEntries != 2 {
		t.Errorf("merged count = %d", kept.MaxEntries)
	}
	if st.Len() != 1 {
		t.Errorf("store len = %d", st.Len())
	}
	if len(st.FindConflicts()) != 0 {
		t.Error("conflicts remain after resolution")
	}
}

func TestResolveCombineChain(t *testing.T) {
	// Three pairwise-touching windows collapse to one via the fixpoint.
	st := NewStore()
	addOK(t, st, New(iv("[1, 5]"), iv("[1, 9]"), "u", "l", 1))
	addOK(t, st, New(iv("[6, 10]"), iv("[6, 19]"), "u", "l", 1))
	addOK(t, st, New(iv("[11, 15]"), iv("[11, 29]"), "u", "l", 1))
	res, err := st.ResolveConflicts(Combine)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || st.Len() != 1 {
		t.Fatalf("resolutions = %d, len = %d", len(res), st.Len())
	}
	final := st.All()[0]
	if !final.Entry.Equal(iv("[1, 15]")) || !final.Exit.Equal(iv("[1, 29]")) {
		t.Errorf("final = %s", final)
	}
}

func TestResolveCombineUnlimitedDominates(t *testing.T) {
	st := NewStore()
	addOK(t, st, New(iv("[1, 5]"), iv("[1, 9]"), "u", "l", 3))
	addOK(t, st, New(iv("[4, 8]"), iv("[4, 19]"), "u", "l", Unlimited))
	res, _ := st.ResolveConflicts(Combine)
	if len(res) != 1 || res[0].Kept.MaxEntries != Unlimited {
		t.Errorf("res = %+v", res)
	}
}

func TestResolveKeepFirstAndLast(t *testing.T) {
	mk := func() *Store {
		st := NewStore()
		addOK(t, st, New(iv("[5, 10]"), iv("[5, 20]"), "Alice", "CAIS", 1))
		addOK(t, st, New(iv("[8, 12]"), iv("[8, 30]"), "Alice", "CAIS", 1))
		return st
	}
	st := mk()
	res, err := st.ResolveConflicts(KeepFirst)
	if err != nil || len(res) != 1 {
		t.Fatalf("res = %v, %v", res, err)
	}
	if res[0].Kept.ID != 1 || st.Len() != 1 || st.All()[0].ID != 1 {
		t.Errorf("keep-first kept %d", res[0].Kept.ID)
	}
	st = mk()
	res, _ = st.ResolveConflicts(KeepLast)
	if res[0].Kept.ID != 2 || st.All()[0].ID != 2 {
		t.Errorf("keep-last kept %d", res[0].Kept.ID)
	}
}

func TestResolveSkipsDerived(t *testing.T) {
	st := NewStore()
	addOK(t, st, New(iv("[5, 10]"), iv("[5, 20]"), "Alice", "CAIS", 1))
	d := New(iv("[8, 12]"), iv("[8, 30]"), "Alice", "CAIS", 1)
	d.DerivedBy = "r1"
	addOK(t, st, d)
	res, err := st.ResolveConflicts(Combine)
	if err != nil || len(res) != 0 {
		t.Errorf("derived conflicts must be left for the rule owner: %v %v", res, err)
	}
	if st.Len() != 2 {
		t.Error("nothing should be revoked")
	}
}

func TestResolveNoConflictsNoop(t *testing.T) {
	st := NewStore()
	addOK(t, st, New(iv("[1, 5]"), iv("[1, 9]"), "u", "l", 1))
	addOK(t, st, New(iv("[20, 25]"), iv("[20, 29]"), "u", "l", 1))
	res, err := st.ResolveConflicts(Combine)
	if err != nil || len(res) != 0 || st.Len() != 2 {
		t.Errorf("res = %v, %v, len = %d", res, err, st.Len())
	}
}

func TestResolveOverlapKeepsExitHull(t *testing.T) {
	// Merging must not lose either right-to-leave: hull of exits.
	st := NewStore()
	addOK(t, st, New(iv("[1, 10]"), iv("[5, 15]"), "u", "l", 1))
	addOK(t, st, New(iv("[5, 12]"), iv("[20, 40]"), "u", "l", 1))
	res, err := st.ResolveConflicts(Combine)
	if err != nil || len(res) != 1 {
		t.Fatalf("res = %v, %v", res, err)
	}
	if !res[0].Kept.Exit.Equal(iv("[5, 40]")) {
		t.Errorf("exit hull = %v", res[0].Kept.Exit)
	}
}

func TestStrategyString(t *testing.T) {
	if Combine.String() != "combine" || KeepFirst.String() != "keep-first" || KeepLast.String() != "keep-last" {
		t.Error("strategy strings broken")
	}
	if Strategy(9).String() != "Strategy(9)" {
		t.Error("unknown strategy string broken")
	}
}
