package authz

import (
	"strings"
	"testing"

	"repro/internal/interval"
)

func iv(s string) interval.Interval { return interval.MustParse(s) }

func TestNormalizeDefaults(t *testing.T) {
	// "If the entry duration is not specified ... the subject can enter a
	// location at any time after the creation of the authorization."
	a := Authorization{Subject: "alice", Location: "CAIS", CreatedAt: 7}
	n := a.Normalize()
	if !n.Entry.Equal(interval.From(7)) {
		t.Errorf("default entry = %v, want [7, inf]", n.Entry)
	}
	// "If the exit duration is not specified, the default value will be
	// [ti1, ∞]."
	if !n.Exit.Equal(interval.From(7)) {
		t.Errorf("default exit = %v, want [7, inf]", n.Exit)
	}
	// "The default entry value is ∞."
	if n.MaxEntries != Unlimited {
		t.Errorf("default max entries = %d", n.MaxEntries)
	}
	// Exit default anchors at the *entry* start, not CreatedAt.
	a = Authorization{Subject: "a", Location: "l", Entry: iv("[10, 20]"), CreatedAt: 7}
	n = a.Normalize()
	if !n.Exit.Equal(interval.From(10)) {
		t.Errorf("exit default = %v, want [10, inf]", n.Exit)
	}
	// Negative counts normalise to unlimited.
	a = Authorization{Subject: "a", Location: "l", MaxEntries: -3}
	if a.Normalize().MaxEntries != Unlimited {
		t.Error("negative count should normalise to Unlimited")
	}
}

func TestValidate(t *testing.T) {
	good := New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "CAIS", 1).Normalize()
	if err := good.Validate(); err != nil {
		t.Errorf("paper's example authorization should validate: %v", err)
	}
	cases := []struct {
		name string
		a    Authorization
		want string
	}{
		{"no subject", New(iv("[5, 40]"), iv("[20, 100]"), "", "CAIS", 1), "subject"},
		{"no location", New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "", 1), "location"},
		{"exit starts before entry", New(iv("[5, 40]"), iv("[2, 100]"), "Alice", "CAIS", 1), "tos >= tis"},
		{"exit ends before entry ends", New(iv("[5, 40]"), iv("[20, 30]"), "Alice", "CAIS", 1), "toe >= tie"},
		{"negative count", Authorization{Subject: "a", Location: "l", Entry: iv("[0, 1]"), Exit: iv("[0, 1]"), MaxEntries: -1}, "negative"},
	}
	for _, tc := range cases {
		if err := tc.a.Validate(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.want)
		}
	}
	// Un-normalized (empty) durations are rejected with a hint.
	if err := (Authorization{Subject: "a", Location: "l"}).Validate(); err == nil {
		t.Error("empty durations should fail validation")
	}
}

func TestPermits(t *testing.T) {
	a := New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "CAIS", 1)
	if !a.PermitsEntryAt(5) || !a.PermitsEntryAt(40) || a.PermitsEntryAt(4) || a.PermitsEntryAt(41) {
		t.Error("entry window broken")
	}
	if !a.PermitsExitAt(20) || !a.PermitsExitAt(100) || a.PermitsExitAt(19) || a.PermitsExitAt(101) {
		t.Error("exit window broken")
	}
}

func TestGrantAndDepartureDurations(t *testing.T) {
	// §6: grant = [max(tp, tis), min(tq, tie)], departure = [max(tp, tos), toe].
	a := New(iv("[40, 60]"), iv("[55, 80]"), "Alice", "B", 1)
	// From Table 2's Update B step: window = A's departure [20, 50].
	win := iv("[20, 50]")
	if got := a.GrantDuring(win); !got.Equal(iv("[40, 50]")) {
		t.Errorf("grant = %v, want [40, 50]", got)
	}
	if got := a.DepartureDuring(win); !got.Equal(iv("[55, 80]")) {
		t.Errorf("departure = %v, want [55, 80]", got)
	}
	// Disjoint window: null grant.
	c := New(iv("[38, 45]"), iv("[70, 90]"), "Alice", "C", 1)
	if got := c.GrantDuring(iv("[55, 80]")); !got.IsEmpty() {
		t.Errorf("C grant from B's departure = %v, want null", got)
	}
	if got := c.GrantDuring(iv("[20, 30]")); !got.IsEmpty() {
		t.Errorf("C grant from D's departure = %v, want null", got)
	}
	// Empty windows propagate.
	if !a.GrantDuring(interval.Empty).IsEmpty() || !a.DepartureDuring(interval.Empty).IsEmpty() {
		t.Error("empty request duration must yield null durations")
	}
}

func TestString(t *testing.T) {
	a := New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "CAIS", 1)
	want := "([5, 40], [20, 100], (Alice, CAIS), 1)"
	if a.String() != want {
		t.Errorf("String = %s, want %s", a, want)
	}
	u := New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "CAIS", Unlimited)
	if !strings.Contains(u.String(), "∞") {
		t.Errorf("unlimited should render ∞: %s", u)
	}
}

func TestEquivalent(t *testing.T) {
	a := New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "CAIS", 1)
	b := a
	b.ID = 99
	b.DerivedBy = "r1"
	if !a.Equivalent(b) {
		t.Error("identity/provenance must not affect equivalence")
	}
	c := a
	c.MaxEntries = 2
	if a.Equivalent(c) {
		t.Error("different counts are not equivalent")
	}
	d := a
	d.Entry = iv("[5, 41]")
	if a.Equivalent(d) {
		t.Error("different entry windows are not equivalent")
	}
}

func TestIsDerived(t *testing.T) {
	a := New(iv("[5, 40]"), iv("[20, 100]"), "Alice", "CAIS", 1)
	if a.IsDerived() {
		t.Error("base auth is not derived")
	}
	a.DerivedBy = "r1"
	if !a.IsDerived() {
		t.Error("derived auth should report so")
	}
}
