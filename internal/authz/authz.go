// Package authz implements LTAM's location-temporal authorizations
// (Definitions 3 and 4) and the authorization database of the system
// architecture (Fig. 3).
//
// A location authorization (s, l) says subject s may enter primitive
// location l. A location-temporal authorization augments it with an entry
// duration (when s may enter), an exit duration (when s may leave), and a
// maximum number of entries within the entry duration.
package authz

import (
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// ID identifies an authorization within a store. IDs are assigned by the
// store and never reused.
type ID uint64

// Unlimited is the MaxEntries value standing for the paper's default of ∞
// accesses.
const Unlimited int64 = 0

// Authorization is a location-temporal authorization
// ([tis, tie], [tos, toe], (s, l), n) — Definition 4.
type Authorization struct {
	// ID is the store-assigned identity; zero before insertion.
	ID ID

	// Subject and Location form the Def.-3 location authorization (s, l).
	Subject  profile.SubjectID
	Location graph.ID

	// Entry is the entry duration [tis, tie] during which the subject
	// may enter the location. The zero (empty) interval means
	// "unspecified": the subject may enter at any time after the
	// creation of the authorization (the paper's default), which
	// Normalize resolves to [CreatedAt, ∞].
	Entry interval.Interval

	// Exit is the exit duration [tos, toe] during which the subject may
	// leave. Empty means unspecified, which Normalize resolves to the
	// paper's default [tis, ∞].
	Exit interval.Interval

	// MaxEntries is the paper's "entry" component: the number of
	// accesses the subject can exercise within the entry duration, range
	// [1, ∞). Unlimited (0) encodes the default ∞.
	MaxEntries int64

	// CreatedAt is the time the authorization was created; it anchors
	// the default entry duration.
	CreatedAt interval.Time

	// DerivedBy names the rule that derived this authorization; empty
	// for administrator-defined (base) authorizations. BaseID is the
	// authorization the rule was applied to.
	DerivedBy string
	BaseID    ID
}

// New builds an administrator-defined authorization in the paper's
// positional notation: ([entry], [exit], (subject, location), n).
func New(entry, exit interval.Interval, subject profile.SubjectID, location graph.ID, n int64) Authorization {
	return Authorization{
		Subject:    subject,
		Location:   location,
		Entry:      entry,
		Exit:       exit,
		MaxEntries: n,
	}
}

// IsDerived reports whether the authorization was produced by a rule.
func (a Authorization) IsDerived() bool { return a.DerivedBy != "" }

// Normalize fills in the paper's defaults (missing entry duration, missing
// exit duration, missing entry count) and returns the completed value.
//
// A duration is "unspecified" when it is the empty interval or the zero
// value Interval{} — the latter so that zero-struct literals and JSON
// payloads with omitted fields get the defaults. (The zero value denotes
// the point interval [0, 0] in pure interval algebra; an authorization
// window of exactly chronon zero is not expressible, which matches the
// paper, whose timelines start at positive chronons.)
func (a Authorization) Normalize() Authorization {
	if isUnspecified(a.Entry) {
		a.Entry = interval.From(a.CreatedAt)
	}
	if isUnspecified(a.Exit) {
		a.Exit = interval.From(a.Entry.Start)
	}
	if a.MaxEntries < 0 {
		a.MaxEntries = Unlimited
	}
	return a
}

func isUnspecified(iv interval.Interval) bool {
	return iv == interval.Interval{} || iv.IsEmpty()
}

// Validate checks Definition 4's constraints on a normalized
// authorization: non-empty subject and location, tos >= tis and toe >= tie
// (one cannot be required to leave before one may arrive, nor lose the
// right to leave before the right to enter ends).
func (a Authorization) Validate() error {
	if a.Subject == "" {
		return errors.New("authz: empty subject")
	}
	if a.Location == "" {
		return errors.New("authz: empty location")
	}
	if isUnspecified(a.Entry) {
		return errors.New("authz: empty entry duration (call Normalize first)")
	}
	if isUnspecified(a.Exit) {
		return errors.New("authz: empty exit duration (call Normalize first)")
	}
	if a.Exit.Start < a.Entry.Start {
		return fmt.Errorf("authz: exit start %s before entry start %s (need tos >= tis)", a.Exit.Start, a.Entry.Start)
	}
	if a.Exit.End < a.Entry.End {
		return fmt.Errorf("authz: exit end %s before entry end %s (need toe >= tie)", a.Exit.End, a.Entry.End)
	}
	if a.MaxEntries < 0 {
		return fmt.Errorf("authz: negative entry count %d", a.MaxEntries)
	}
	return nil
}

// PermitsEntryAt reports whether the entry duration covers time t (the
// temporal half of Definition 7; the count half needs the movement
// database and lives in the enforcement engine).
func (a Authorization) PermitsEntryAt(t interval.Time) bool {
	return a.Entry.Contains(t)
}

// PermitsExitAt reports whether the exit duration covers time t.
func (a Authorization) PermitsExitAt(t interval.Time) bool {
	return a.Exit.Contains(t)
}

// GrantDuring returns the grant duration of the authorization within the
// access request duration [tp, tq]: [max(tp, tis), min(tq, tie)] (§6).
func (a Authorization) GrantDuring(window interval.Interval) interval.Interval {
	if window.IsEmpty() {
		return interval.Empty
	}
	return interval.New(
		interval.Max(window.Start, a.Entry.Start),
		interval.Min(window.End, a.Entry.End),
	)
}

// DepartureDuring returns the departure duration within the access request
// duration [tp, tq]: [max(tp, tos), toe] (§6).
func (a Authorization) DepartureDuring(window interval.Interval) interval.Interval {
	if window.IsEmpty() {
		return interval.Empty
	}
	return interval.New(
		interval.Max(window.Start, a.Exit.Start),
		a.Exit.End,
	)
}

// String renders the authorization in the paper's notation, e.g.
// "([5, 40], [20, 100], (Alice, CAIS), 1)"; unlimited entry counts render
// as ∞.
func (a Authorization) String() string {
	n := "∞"
	if a.MaxEntries != Unlimited {
		n = fmt.Sprintf("%d", a.MaxEntries)
	}
	return fmt.Sprintf("(%s, %s, (%s, %s), %s)", a.Entry, a.Exit, a.Subject, a.Location, n)
}

// Equivalent reports whether two authorizations grant exactly the same
// privilege (ignoring identity and provenance). The conflict detector uses
// it to spot exact duplicates.
func (a Authorization) Equivalent(b Authorization) bool {
	return a.Subject == b.Subject &&
		a.Location == b.Location &&
		a.Entry.Equal(b.Entry) &&
		a.Exit.Equal(b.Exit) &&
		a.MaxEntries == b.MaxEntries
}
