// Package fault is the deterministic fault-injection layer: the failure
// analogue of a test fixture. It provides two seams —
//
//   - File: a wrapper for the WAL's backing file that fails a chosen
//     write or sync (EIO, ENOSPC, short write) at an exact operation
//     index, so the crash matrix can prove acked-prefix durability under
//     a fault injected at EVERY write and sync site, not just the ones a
//     hand-written test thought of; and
//   - Proxy (see proxy.go): a chaos TCP forwarder that kills, delays or
//     blackholes live connections, so streaming clients' resume protocol
//     is exercised against real connection loss.
//
// Determinism is the point: a Plan names the Nth operation to fail, the
// run is replayable, and a failing seed is a bug report. Nothing in this
// package sleeps or rolls dice.
package fault

import (
	"errors"
	"io"
	"sync"
)

// Injected errors. Distinct named values so tests can assert the exact
// fault they planted is the one that surfaced (errors.Is through every
// wrapping layer).
var (
	// ErrIO models EIO: the device rejected the operation.
	ErrIO = errors.New("fault: injected I/O error (EIO)")
	// ErrNoSpace models ENOSPC: the device is full.
	ErrNoSpace = errors.New("fault: injected no-space error (ENOSPC)")
)

// Op selects which file operation a rule arms.
type Op int

const (
	// OpWrite counts Write calls on the wrapped file. Note the WAL
	// buffers appends through a bufio.Writer, so one WAL write site may
	// surface as a later flush — the matrix enumerates the file-level
	// operations that actually hit the device.
	OpWrite Op = iota
	// OpSync counts Sync (fsync) calls.
	OpSync
)

func (o Op) String() string {
	if o == OpSync {
		return "sync"
	}
	return "write"
}

// Rule arms one deterministic fault: the Nth operation of kind Op
// (1-based) fails with Err. For OpWrite, Short >= 0 additionally makes
// the failing call a SHORT write — Short bytes reach the file before the
// error — modelling a torn page. Short < 0 fails before writing
// anything.
type Rule struct {
	Op    Op
	Nth   uint64
	Err   error
	Short int
}

// File wraps a backing file (anything with the WAL's file surface) and
// applies Rules deterministically. It also counts operations, so a
// counting pass with no rules discovers how many injection sites a
// workload has. Safe for concurrent use.
type File struct {
	mu     sync.Mutex
	f      backing
	rules  []Rule
	writes uint64
	syncs  uint64
	// sticky holds the first injected error; once a fault fires, every
	// later write and sync fails with it too. A real disk that returned
	// EIO does not come back healthy for the next append, and the
	// committer must not be able to "write past" the hole.
	sticky error
}

// backing is the file surface File wraps — structurally identical to
// storage.File, declared locally so this package does not import
// storage (the dependency points the other way in tests).
type backing interface {
	io.Reader
	io.Writer
	io.Seeker
	Sync() error
	Truncate(size int64) error
	Close() error
}

// NewFile wraps f. Rules with Nth=0 never fire.
func NewFile(f backing, rules ...Rule) *File {
	return &File{f: f, rules: rules}
}

// Counts reports how many writes and syncs the file has seen — the size
// of the injection matrix for the workload that just ran.
func (f *File) Counts() (writes, syncs uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes, f.syncs
}

// ruleFor returns the armed rule for the n-th op of kind o, if any.
func (f *File) ruleFor(o Op, n uint64) *Rule {
	for i := range f.rules {
		r := &f.rules[i]
		if r.Op == o && r.Nth == n {
			return r
		}
	}
	return nil
}

func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writes++
	if f.sticky != nil {
		return 0, f.sticky
	}
	if r := f.ruleFor(OpWrite, f.writes); r != nil {
		f.sticky = r.Err
		n := 0
		if r.Short > 0 {
			short := r.Short
			if short > len(p) {
				short = len(p)
			}
			n, _ = f.f.Write(p[:short])
		}
		return n, r.Err
	}
	return f.f.Write(p)
}

func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncs++
	if f.sticky != nil {
		return f.sticky
	}
	if r := f.ruleFor(OpSync, f.syncs); r != nil {
		f.sticky = r.Err
		return r.Err
	}
	return f.f.Sync()
}

func (f *File) Read(p []byte) (int, error) { return f.f.Read(p) }

func (f *File) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *File) Truncate(size int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.sticky != nil {
		return f.sticky
	}
	return f.f.Truncate(size)
}

// Close closes the backing file. Recovery scans reopen the path fresh,
// so Close itself is not a fault site.
func (f *File) Close() error { return f.f.Close() }
