package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func openTemp(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(t.TempDir(), "f"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFileCountsAndPassthrough: with no rules the wrapper is transparent
// and counts every operation — the discovery pass of the crash matrix.
func TestFileCountsAndPassthrough(t *testing.T) {
	f := NewFile(openTemp(t))
	for i := 0; i < 3; i++ {
		if _, err := f.Write([]byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	w, s := f.Counts()
	if w != 3 || s != 1 {
		t.Fatalf("counts = (%d writes, %d syncs), want (3, 1)", w, s)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(f)
	if err != nil || !bytes.Equal(got, []byte("abcabcabc")) {
		t.Fatalf("read back %q, err %v", got, err)
	}
}

// TestFileFailsNthWriteShort: the armed write persists exactly Short
// bytes, fails with the planted error, and every later operation fails
// with the same sticky error — the disk does not come back.
func TestFileFailsNthWriteShort(t *testing.T) {
	osf := openTemp(t)
	f := NewFile(osf, Rule{Op: OpWrite, Nth: 2, Err: ErrIO, Short: 2})
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatal(err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, ErrIO) || n != 2 {
		t.Fatalf("2nd write = (%d, %v), want (2, ErrIO)", n, err)
	}
	if _, err := f.Write([]byte("cccc")); !errors.Is(err, ErrIO) {
		t.Fatalf("write after fault = %v, want sticky ErrIO", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrIO) {
		t.Fatalf("sync after fault = %v, want sticky ErrIO", err)
	}
	data, err := os.ReadFile(osf.Name())
	if err != nil || string(data) != "aaaabb" {
		t.Fatalf("on disk %q, err %v; want the short prefix \"aaaabb\"", data, err)
	}
}

// TestFileFailsNthSync: ENOSPC on the 2nd fsync, first one clean.
func TestFileFailsNthSync(t *testing.T) {
	f := NewFile(openTemp(t), Rule{Op: OpSync, Nth: 2, Err: ErrNoSpace})
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("2nd sync = %v, want ErrNoSpace", err)
	}
}

// TestProxyForwardAndKill: bytes round-trip through the proxy; KillAll
// severs the live connection (the client sees an error or EOF), and a
// NEW connection through the same proxy works — reset, not shutdown.
func TestProxyForwardAndKill(t *testing.T) {
	// Upstream echo server.
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	p, err := NewProxy("127.0.0.1:0", up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	echo := func(c net.Conn, msg string) error {
		if _, err := c.Write([]byte(msg)); err != nil {
			return err
		}
		buf := make([]byte, len(msg))
		c.SetReadDeadline(time.Now().Add(5 * time.Second))
		if _, err := io.ReadFull(c, buf); err != nil {
			return err
		}
		if string(buf) != msg {
			t.Fatalf("echo = %q, want %q", buf, msg)
		}
		return nil
	}

	c1 := dial()
	defer c1.Close()
	if err := echo(c1, "hello"); err != nil {
		t.Fatal(err)
	}
	if n := p.KillAll(); n != 1 {
		t.Fatalf("KillAll cut %d pairs, want 1", n)
	}
	// The severed connection must fail — first use may still succeed on
	// a race, but it cannot keep echoing forever.
	dead := false
	for i := 0; i < 10 && !dead; i++ {
		dead = echo(c1, "after-kill") != nil
	}
	if !dead {
		t.Fatal("connection survived KillAll")
	}
	c2 := dial()
	defer c2.Close()
	if err := echo(c2, "fresh"); err != nil {
		t.Fatalf("fresh connection after KillAll: %v", err)
	}
	if p.Accepted() < 2 || p.Killed() != 1 {
		t.Fatalf("accepted=%d killed=%d", p.Accepted(), p.Killed())
	}
}

// TestProxyBlackhole: with the blackhole on, writes vanish — the reader
// times out instead of erroring; turning it off restores flow for new
// data.
func TestProxyBlackhole(t *testing.T) {
	up, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer up.Close()
	go func() {
		for {
			c, err := up.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()
	p, err := NewProxy("127.0.0.1:0", up.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	p.SetBlackhole(true)
	if _, err := c.Write([]byte("swallowed")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read succeeded through a blackhole")
	} else if ne, ok := err.(net.Error); !ok || !ne.Timeout() {
		t.Fatalf("blackhole read error = %v, want timeout", err)
	}
	p.SetBlackhole(false)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Write([]byte("visible!!")); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("read after blackhole off: %v", err)
	}
}
