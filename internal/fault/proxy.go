// The chaos TCP proxy: a transparent forwarder with levers for the
// failures a network actually produces — connections reset mid-stream,
// packets delayed, bytes silently swallowed. Streaming clients point at
// the proxy instead of the server; tests and `ltamsim -chaos` pull the
// levers and assert the resume protocol holds.
package fault

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy forwards TCP connections to a target address. Safe for
// concurrent use.
type Proxy struct {
	lis    net.Listener
	target string

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	delay     atomic.Int64 // per-chunk forwarding delay, nanoseconds
	blackhole atomic.Bool  // accept and read, forward nothing
	closed    atomic.Bool

	accepted atomic.Uint64
	killed   atomic.Uint64
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards every
// connection to target.
func NewProxy(listenAddr, target string) (*Proxy, error) {
	lis, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{lis: lis, target: target, conns: make(map[net.Conn]struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listening address, for building client URLs.
func (p *Proxy) Addr() string { return p.lis.Addr().String() }

// Accepted reports connections accepted; Killed reports connections
// severed by KillAll.
func (p *Proxy) Accepted() uint64 { return p.accepted.Load() }
func (p *Proxy) Killed() uint64   { return p.killed.Load() }

// SetDelay inserts d before every forwarded chunk (both directions).
func (p *Proxy) SetDelay(d time.Duration) { p.delay.Store(int64(d)) }

// SetBlackhole toggles blackhole mode: established and new connections
// stay open and readable, but nothing is forwarded in either direction —
// the peer sees a stall, not an error.
func (p *Proxy) SetBlackhole(on bool) { p.blackhole.Store(on) }

// KillAll severs every live connection (client and upstream sides),
// returning how many pairs were cut. New connections are still accepted
// afterwards — this is a reset, not a shutdown.
func (p *Proxy) KillAll() int {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	p.killed.Add(uint64(len(conns) / 2))
	return len(conns) / 2
}

// Close stops accepting and severs everything.
func (p *Proxy) Close() error {
	p.closed.Store(true)
	err := p.lis.Close()
	p.KillAll()
	return err
}

func (p *Proxy) acceptLoop() {
	for {
		c, err := p.lis.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		go p.serve(c)
	}
}

// trackPair registers both sides of a forwarding pair atomically, so a
// racing Close/KillAll either sees the whole pair or none of it — never
// a tracked-but-closed half that would linger in p.conns forever.
func (p *Proxy) trackPair(client, upstream net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed.Load() {
		return false
	}
	p.conns[client] = struct{}{}
	p.conns[upstream] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) serve(client net.Conn) {
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	if !p.trackPair(client, upstream) {
		client.Close()
		upstream.Close()
		return
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); p.pump(upstream, client) }()
	go func() { defer wg.Done(); p.pump(client, upstream) }()
	wg.Wait()
	p.untrack(client)
	p.untrack(upstream)
	client.Close()
	upstream.Close()
}

// pump copies src→dst chunk by chunk, honouring the chaos levers between
// chunks. Small buffer on purpose: more lever checkpoints per byte.
func (p *Proxy) pump(dst, src net.Conn) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := time.Duration(p.delay.Load()); d > 0 {
				time.Sleep(d)
			}
			if !p.blackhole.Load() {
				if _, werr := dst.Write(buf[:n]); werr != nil {
					// Half-close so the peer's reader sees EOF while any
					// in-flight opposite-direction copy finishes.
					closeRead(src)
					return
				}
			}
		}
		if err != nil {
			closeWrite(dst)
			return
		}
	}
}

func closeWrite(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseWrite()
		return
	}
	c.Close()
}

func closeRead(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.CloseRead()
		return
	}
	c.Close()
}
