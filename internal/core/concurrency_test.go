package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/authz"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/query"
)

// stressGrid builds a small grid System with a handful of subjects, each
// holding authorizations over part of the grid so that Algorithm 1 has
// real work to do and real answers to change.
func stressGrid(t *testing.T, side, subjects int) (*System, []profile.SubjectID, []graph.ID) {
	t.Helper()
	g := graph.New("grid")
	id := func(r, c int) graph.ID { return graph.ID(fmt.Sprintf("r%02d_%02d", r, c)) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if err := g.AddLocation(id(r, c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				_ = g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < side {
				_ = g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	_ = g.SetEntry(id(0, 0))

	sys, err := Open(Config{Graph: g})
	if err != nil {
		t.Fatal(err)
	}
	rooms := sys.Flat().Nodes
	var subs []profile.SubjectID
	for u := 0; u < subjects; u++ {
		sub := profile.SubjectID(fmt.Sprintf("u%02d", u))
		subs = append(subs, sub)
		if err := sys.PutSubject(profile.Subject{ID: sub}); err != nil {
			t.Fatal(err)
		}
		// Every subject can reach the first half of the grid.
		for _, room := range rooms[:len(rooms)/2] {
			if _, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), sub, room, authz.Unlimited)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys, subs, rooms
}

// freshInaccessible recomputes Algorithm 1 from scratch, bypassing the
// System's epoch cache — the ground truth cached answers must match.
func freshInaccessible(sys *System, sub profile.SubjectID) []graph.ID {
	return query.FindInaccessible(sys.Flat(), sys.AuthStore(), sub, query.Options{}).Inaccessible
}

// TestConcurrentReadersAndWriters hammers the read path (Inaccessible,
// Accessible, Request, EarliestAccess, WhoCanAccess, Conflicts) while
// writers mutate authorizations, profiles, and movements. Run under
// -race this exercises the RWMutex split; afterwards every cached
// answer must equal a fresh recomputation.
func TestConcurrentReadersAndWriters(t *testing.T) {
	sys, subs, rooms := stressGrid(t, 6, 4)
	defer sys.Close()

	const iters = 150
	var wg sync.WaitGroup

	// Readers: one goroutine per subject, cycling through every query.
	for _, sub := range subs {
		wg.Add(1)
		go func(sub profile.SubjectID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = sys.Inaccessible(sub)
				_ = sys.Accessible(sub)
				_, _ = sys.EarliestAccess(sub, rooms[len(rooms)-1])
				_ = sys.Request(interval.Time(2), sub, rooms[0])
				_ = sys.Query(interval.Time(2), sub, rooms[1])
				if i%10 == 0 {
					_ = sys.WhoCanAccess(rooms[2])
					_ = sys.Conflicts()
					_ = sys.Subjects()
				}
			}
		}(sub)
	}

	// Writer 1: churn authorizations on the second half of the grid.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			room := rooms[len(rooms)/2+i%(len(rooms)/2)]
			a, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), subs[i%len(subs)], room, authz.Unlimited))
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if _, err := sys.RevokeAuthorization(a.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Writer 2: profile churn (bumps the profile epoch, re-derives).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			id := profile.SubjectID(fmt.Sprintf("guest%02d", i%8))
			if err := sys.PutSubject(profile.Subject{ID: id}); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	// Writer 3: movements and clock ticks (do not touch the epoch).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := sys.Enter(interval.Time(2), subs[0], rooms[0]); err != nil {
				t.Error(err)
				return
			}
			if err := sys.Leave(interval.Time(2), subs[0]); err != nil {
				t.Error(err)
				return
			}
			if _, err := sys.Tick(interval.Time(2)); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()

	// Quiesced: every cached answer equals a from-scratch run.
	for _, sub := range subs {
		got := sys.Inaccessible(sub)
		want := freshInaccessible(sys, sub)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: cached %v != fresh %v", sub, got, want)
		}
	}
}

// TestSnapshotViewMatchesFreshAtEveryEpoch is the lock-free read path's
// core invariant, checked mid-flight rather than only at quiescence:
// whatever view a reader loads, the memoized Algorithm-1 answer served
// from that view equals a from-scratch fixpoint over the very same
// immutable snapshot — at every epoch, while AddAuthorization,
// RevokeAuthorization, and ObserveBatch churn underneath. Run with
// -race this also proves the view capture and the sync.Map memo are
// properly published.
func TestSnapshotViewMatchesFreshAtEveryEpoch(t *testing.T) {
	const side = 4
	g := graph.New("grid")
	id := func(r, c int) graph.ID { return graph.ID(fmt.Sprintf("r%03d_%03d", r, c)) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if err := g.AddLocation(id(r, c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				_ = g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < side {
				_ = g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	_ = g.SetEntry(id(0, 0))
	bounds, centers := geometry.UnitGrid(side, func(r, c int) string {
		return fmt.Sprintf("r%03d_%03d", r, c)
	})
	sys, err := Open(Config{Graph: g, Boundaries: bounds})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	rooms := sys.Flat().Nodes
	subs := []profile.SubjectID{"u00", "u01", "u02"}
	for _, sub := range subs {
		for _, room := range rooms[:len(rooms)/2] {
			if _, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), sub, room, authz.Unlimited)); err != nil {
				t.Fatal(err)
			}
		}
	}

	const iters = 200
	var wg sync.WaitGroup

	// Readers: at every loaded view, the cached answer must equal a fresh
	// fixpoint over the same snapshot — exact equality, no racing epoch.
	for _, sub := range subs {
		wg.Add(1)
		go func(sub profile.SubjectID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := sys.currentView()
				got := v.result(sub, query.Options{}).Inaccessible
				fresh := query.FindInaccessible(v.flat, v.auths, sub, query.Options{}).Inaccessible
				if fmt.Sprint(got) != fmt.Sprint(fresh) {
					t.Errorf("%s epoch %d: view-cached %v != view-fresh %v", sub, v.epoch, got, fresh)
					return
				}
				// A second load at the same epoch must share the memo.
				if v2 := sys.currentView(); v2.epoch == v.epoch {
					if again := v2.result(sub, query.Options{}).Inaccessible; fmt.Sprint(again) != fmt.Sprint(got) {
						t.Errorf("%s epoch %d: re-read changed: %v != %v", sub, v.epoch, again, got)
						return
					}
				}
			}
		}(sub)
	}

	// Writer 1: authorization churn on the far half of the grid — every
	// op moves the epoch and publishes a new view.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			room := rooms[len(rooms)/2+i%(len(rooms)/2)]
			a, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), subs[i%len(subs)], room, authz.Unlimited))
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if _, err := sys.RevokeAuthorization(a.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Writer 2: positioning batches bounce a dedicated subject between
	// two rooms — movement churn that must NOT move the epoch or flush
	// the memo, while exercising the batched write path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			readings := []Reading{
				{Time: 2, Subject: "walker", At: centers[i%2]},
				{Time: 2, Subject: "walker", At: centers[(i+1)%2]},
			}
			if _, err := sys.ObserveBatch(readings); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()

	// Quiesced: the published view agrees with the live store.
	for _, sub := range subs {
		got := sys.Inaccessible(sub)
		want := freshInaccessible(sys, sub)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: view %v != live %v", sub, got, want)
		}
	}
	if vs := sys.ViewStats(); vs.Publishes == 0 || vs.Epoch == 0 || vs.AuthShards < 1 {
		t.Errorf("view stats = %+v", vs)
	}
}

// TestRelaxedDurabilityRecovers: with Config.RelaxedDurability mutations
// ack at enqueue; after a clean Close (which drains the committer) a
// reopened System recovers every acknowledged mutation — the relaxed
// mode narrows the durability window, it never reorders the WAL.
func TestRelaxedDurabilityRecovers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir, RelaxedDurability: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutSubject(profile.Subject{ID: "Alice"}); err != nil {
		t.Fatal(err)
	}
	var last authz.Authorization
	for i := 0; i < 10; i++ {
		if last, err = s.AddAuthorization(authz.New(
			interval.New(1, 40), interval.New(2, 60), "Alice", graph.CAIS, authz.Unlimited)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.CommitStats(); !st.Relaxed {
		t.Errorf("commit stats not relaxed: %+v", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.AuthorizationsFor("Alice", graph.CAIS)); got != 10 {
		t.Errorf("recovered %d authorizations, want 10", got)
	}
	if _, err := r.AuthStore().Get(last.ID); err != nil {
		t.Errorf("last acked authorization lost: %v", err)
	}
}

// TestCacheInvalidation proves the epoch cache returns exactly what a
// fresh computation returns across every mutation class that can change
// an Algorithm-1 answer: grant, revoke, rule derivation (via profile
// change with AutoDerive), and conflict resolution.
func TestCacheInvalidation(t *testing.T) {
	sys := openMem(t)
	defer sys.Close()

	assertFresh := func(step string, sub profile.SubjectID) {
		t.Helper()
		got := sys.Inaccessible(sub)
		want := freshInaccessible(sys, sub)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: cached %v != fresh %v", step, got, want)
		}
		// And again: the second read must hit the cache, same answer.
		if again := sys.Inaccessible(sub); fmt.Sprint(again) != fmt.Sprint(want) {
			t.Fatalf("%s (cached re-read): %v != %v", step, again, want)
		}
	}

	assertFresh("empty store", "Alice")

	// Grant a corridor: SCE.GO -> SectionA -> SectionB -> CAIS.
	var ids []authz.ID
	for _, l := range []graph.ID{graph.SCEGO, graph.SCESectionA, graph.SCESectionB, graph.CAIS} {
		a, err := sys.AddAuthorization(authz.New(iv("[1, 40]"), iv("[2, 60]"), "Alice", l, authz.Unlimited))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, a.ID)
	}
	assertFresh("after grants", "Alice")
	if n := len(sys.Accessible("Alice")); n != 4 {
		t.Fatalf("accessible = %d locations, want 4", n)
	}

	// Revoking the corridor's first hop must flip the answer back.
	if _, err := sys.RevokeAuthorization(ids[0]); err != nil {
		t.Fatal(err)
	}
	assertFresh("after revoke", "Alice")
	if n := len(sys.Accessible("Alice")); n != 0 {
		t.Fatalf("accessible after revoke = %d locations, want 0", n)
	}

	// A profile change with AutoDerive can add derived authorizations;
	// the cache must see them (profile epoch bump).
	if err := sys.PutSubject(profile.Subject{ID: "Alice", Supervisor: "Bob"}); err != nil {
		t.Fatal(err)
	}
	assertFresh("after profile change", "Bob")

	stats := sys.QueryCacheStats()
	if stats.Hits == 0 || stats.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", stats)
	}
}
