package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/query"
)

// stressReplicaSite is stressGrid plus durability and boundaries — the
// follower stress fixture.
func stressReplicaSite(t *testing.T, side int) (*System, []profile.SubjectID, []graph.ID, []geometry.Point) {
	t.Helper()
	g := graph.New("grid")
	id := func(r, c int) graph.ID { return graph.ID(fmt.Sprintf("r%03d_%03d", r, c)) }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if err := g.AddLocation(id(r, c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				_ = g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < side {
				_ = g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	_ = g.SetEntry(id(0, 0))
	bounds, centers := geometry.UnitGrid(side, func(r, c int) string {
		return fmt.Sprintf("r%03d_%03d", r, c)
	})
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rooms := sys.Flat().Nodes
	subs := []profile.SubjectID{"u00", "u01", "u02"}
	for _, sub := range subs {
		if err := sys.PutSubject(profile.Subject{ID: sub}); err != nil {
			t.Fatal(err)
		}
		for _, room := range rooms[:len(rooms)/2] {
			if _, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), sub, room, authz.Unlimited)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys, subs, rooms, centers
}

// TestReplicaViewMatchesFreshAtEveryEpoch mirrors
// TestSnapshotViewMatchesFreshAtEveryEpoch on the FOLLOWER: while the
// asynchronous apply loop ingests authorization churn and ObserveBatch
// movement churn shipped from the primary, concurrent replica readers
// must see, at every view they load, a memoized Algorithm-1 answer equal
// to a fresh fixpoint over the very same immutable snapshot — and
// concurrent public mutators must keep bouncing off ErrReadOnly. Run
// with -race this proves the follower's apply/publish pipeline is
// properly synchronized with its lock-free query paths.
func TestReplicaViewMatchesFreshAtEveryEpoch(t *testing.T) {
	sys, subs, rooms, centers := stressReplicaSite(t, 4)
	defer sys.Close()

	rep, err := NewReplica(&LocalSource{Primary: sys, Poll: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan error, 1)
	go func() {
		runDone <- rep.Run(ctx, RunConfig{RetryMin: time.Millisecond, RetryMax: 5 * time.Millisecond})
	}()

	const iters = 150
	var wg sync.WaitGroup

	// Replica readers: cached == fresh over the same loaded view.
	repSys := rep.System()
	for _, sub := range subs {
		wg.Add(1)
		go func(sub profile.SubjectID) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				v := repSys.currentView()
				got := v.result(sub, query.Options{}).Inaccessible
				fresh := query.FindInaccessible(v.flat, v.auths, sub, query.Options{}).Inaccessible
				if fmt.Sprint(got) != fmt.Sprint(fresh) {
					t.Errorf("%s epoch %d: view-cached %v != view-fresh %v", sub, v.epoch, got, fresh)
					return
				}
				if i%16 == 0 {
					_ = repSys.WhoCanAccess(rooms[2])
					_ = repSys.Request(interval.Time(2), sub, rooms[0])
				}
			}
		}(sub)
	}

	// Replica writer (must fail): the read-only gate under concurrency.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := repSys.AddAuthorization(authz.New(
				interval.New(1, 2), interval.New(1, 2), "x", rooms[0], authz.Unlimited)); err != ErrReadOnly {
				t.Errorf("replica AddAuthorization: %v", err)
				return
			}
			if err := repSys.PutSubject(profile.Subject{ID: "x"}); err != ErrReadOnly {
				t.Errorf("replica PutSubject: %v", err)
				return
			}
		}
	}()

	// Primary writer 1: authorization churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			room := rooms[len(rooms)/2+i%(len(rooms)/2)]
			a, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), subs[i%len(subs)], room, authz.Unlimited))
			if err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if _, err := sys.RevokeAuthorization(a.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	// Primary writer 2: ObserveBatch churn (movement records on the
	// stream; must not disturb follower epochs beyond publication).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			readings := []Reading{
				{Time: 2, Subject: "walker", At: centers[i%2]},
				{Time: 2, Subject: "walker", At: centers[(i+1)%2]},
			}
			if _, err := sys.ObserveBatch(readings); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()

	// Quiesced: the follower catches all the way up and agrees with a
	// fresh primary-side recomputation.
	target := sys.ReplicationInfo().TotalSeq
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedSeq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("apply loop stalled at %d of %d", rep.AppliedSeq(), target)
		}
		time.Sleep(time.Millisecond)
	}
	for _, sub := range subs {
		got := repSys.Inaccessible(sub)
		want := query.FindInaccessible(sys.Flat(), sys.AuthStore(), sub, query.Options{}).Inaccessible
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: replica %v != primary fresh %v", sub, got, want)
		}
	}
	if st := rep.Status(context.Background()); st.Lag != 0 {
		t.Errorf("settled lag = %+v", st)
	}
	cancel()
	if err := <-runDone; err != nil {
		t.Fatalf("Run returned %v", err)
	}
}

// TestSnapshotSeqMonotonicAcrossCompactions is the regression test for
// the snapshot numbering fix: snapshots used to be numbered by the
// CURRENT WAL length, which resets on every compaction, so a second
// snapshot could get a smaller number than the first — Latest() would
// then recover from the stale one and silently lose the mutations in
// between. Cumulative sequence numbering keeps recovery exact and gives
// the replication stream its coordinate system.
func TestSnapshotSeqMonotonicAcrossCompactions(t *testing.T) {
	dir := t.TempDir()
	sys, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.PutSubject(profile.Subject{ID: "Alice"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := sys.AddAuthorization(authz.New(
			interval.New(1, 40), interval.New(2, 60), "Alice", graph.CAIS, authz.Unlimited)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Snapshot(); err != nil { // base 5
		t.Fatal(err)
	}
	// Fewer records than the first snapshot covered: the second
	// snapshot's naive number (2) would sort BELOW the first (5).
	for i := 0; i < 2; i++ {
		if _, err := sys.AddAuthorization(authz.New(
			interval.New(1, 40), interval.New(2, 60), "Alice", graph.SCESectionA, authz.Unlimited)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Snapshot(); err != nil { // base 7
		t.Fatal(err)
	}
	info := sys.ReplicationInfo()
	if info.BaseSeq != 7 || info.TotalSeq != 7 {
		t.Fatalf("replication info after compactions = %+v, want base=total=7", info)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := len(r.AuthorizationsFor("Alice", graph.SCESectionA)); got != 2 {
		t.Fatalf("recovered %d SectionA authorizations, want 2 (stale snapshot recovered?)", got)
	}
	if got := len(r.AuthorizationsFor("Alice", graph.CAIS)); got != 4 {
		t.Fatalf("recovered %d CAIS authorizations, want 4", got)
	}
	if info := r.ReplicationInfo(); info.BaseSeq != 7 {
		t.Fatalf("recovered base = %+v, want 7", info)
	}
}
