// Package core assembles the LTAM central control station of Fig. 3: the
// authorization database, the location & movements database, the user
// profile database, the access control engine and the query engine behind
// one System facade, with optional durability (write-ahead logging plus
// snapshots) and an optional positioning front-end.
//
// The privacy stance of §1 is enforced structurally: raw coordinates
// entering through ObserveReading are resolved to primitive locations
// inside the System and discarded; only movement events are stored or
// exposed.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/enforce"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/movement"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/storage"
)

// Config configures a System.
type Config struct {
	// Graph is the site's (multilevel) location graph. It may be nil
	// when DataDir holds a snapshot to recover it from.
	Graph *graph.Graph
	// Boundaries optionally enables the coordinate front-end
	// (ObserveReading); each primitive location used in readings needs a
	// boundary.
	Boundaries []geometry.Boundary
	// DataDir enables durability when non-empty: a WAL and snapshots
	// are kept there and recovered from on Open.
	DataDir string
	// SyncEvery is the WAL fsync cadence (1 = every mutation; 0 uses 1).
	// Group commit engages only at SyncEvery=1 (its acks are durable by
	// contract, so every batch fsyncs); a relaxed cadence keeps inline
	// appends with one fsync per N records.
	SyncEvery int
	// AlertLimit bounds the in-memory alert log (0 = default).
	AlertLimit int
	// AutoDerive re-runs all rules after profile changes (Example 1's
	// automatic re-derivation). Defaults to true via Open.
	AutoDerive bool
	// DisableGroupCommit forces WAL appends back onto the caller's
	// goroutine (the pre-group-commit semantics: the mutation holds the
	// write lock across its fsync). By default, when DataDir is set,
	// mutations enqueue their records onto an asynchronous group
	// committer and wait for a shared fsync barrier after releasing the
	// write lock — concurrent mutations share one fsync, and readers are
	// never blocked behind disk.
	DisableGroupCommit bool
	// CommitMaxBatch caps the records one group-commit fsync may cover
	// (0 = storage.DefaultMaxBatch).
	CommitMaxBatch int
	// CommitMaxDelay makes the committer linger for stragglers before
	// fsyncing a non-full batch (0 = commit as soon as the queue drains;
	// batching then comes from arrivals during the previous fsync).
	CommitMaxDelay time.Duration
	// RelaxedDurability acknowledges mutations as soon as their WAL
	// records are accepted by the group committer's queue instead of
	// after the shared fsync. The loss window on a crash is bounded by
	// the committer queue plus one in-flight batch; what survives is
	// always a prefix of the acknowledged mutations (WAL order still
	// equals apply order). Snapshot and Close still flush durably.
	// Effective only when group commit is engaged (SyncEvery <= 1 and
	// group commit not disabled); background write failures surface in
	// CommitStats.SyncFailures and from Close, and once one batch is
	// lost the committer stops writing later (already-acknowledged)
	// batches so the surviving WAL stays a prefix.
	RelaxedDurability bool
	// DisableCacheWarm turns off the background warmer that re-derives
	// Algorithm-1 results for recently-queried subjects after an
	// epoch-changing mutation, so the first post-mutation query pays the
	// fixpoint inline instead. Warming is on by default.
	DisableCacheWarm bool
	// WarmSubjects caps how many recently-queried subjects the warmer
	// re-derives per mutation (0 = DefaultWarmSubjects).
	WarmSubjects int
	// WALWrap, when non-nil, wraps the WAL's backing file before any I/O
	// — the fault-injection seam (see internal/fault). Production leaves
	// it nil.
	WALWrap func(storage.File) storage.File
}

// DefaultWarmSubjects is the default size of the post-mutation warm set.
const DefaultWarmSubjects = 8

// System is the central control station.
//
// Concurrency: mutations take the write lock, which serialises them so
// that WAL order equals apply order. The write lock covers the in-memory
// apply, the enqueue of the WAL record, and the publication of a fresh
// read view; the fsync happens on the group committer's goroutine, and
// the mutation waits on its commit barrier after releasing the lock — so
// concurrent mutations share fsyncs and readers never queue behind disk.
// A mutation is acknowledged (its method returns nil) only after its
// records are durably on disk (or, with Config.RelaxedDurability, once
// they are queued for the shared fsync).
//
// Pure queries acquire no lock at all: each loads the current readView —
// an immutable capture of the sharded authorization store plus the
// epoch-pinned Algorithm-1 memo table — and runs entirely against that
// snapshot (see view.go). Per-subject Algorithm-1 results are memoized
// per view; the epoch is derived from the authorization store's and
// profile database's mutation versions, so any change — including rule
// re-derivations triggered by profile watchers — retires exactly the
// stale generation with its view.
type System struct {
	mu sync.RWMutex

	// view is the published snapshot all pure queries run against;
	// publishes counts publications (ViewStats).
	view      atomic.Pointer[readView]
	publishes atomic.Uint64

	root     *graph.Graph
	flat     *graph.Flat
	profiles *profile.DB
	store    *authz.Store
	moves    *movement.DB
	alerts   *audit.Log
	engine   *enforce.Engine
	ruleEng  *rules.Engine
	resolver *geometry.Resolver
	bounds   []geometry.Boundary
	cache    *query.Cache

	wal       *storage.WAL
	committer *storage.Committer
	snaps     *storage.SnapshotStore
	replaying bool
	walPath   string
	// commitCh is the durability wakeup: a token is dropped (non-blocking)
	// whenever records may have become durable (a commit barrier resolved,
	// an inline append returned, a snapshot moved the base). Consumers —
	// the event bus pump, same-process tailers — use it to chase the WAL
	// without polling; it is a hint, not a count.
	commitCh chan struct{}
	// baseSeq is the global sequence number of the first record in the
	// current WAL: the count of records compacted into the latest
	// snapshot. Global seq = baseSeq + position in the WAL; it is the
	// coordinate system of the replication stream. Written only under
	// the write lock (Snapshot) or during Open.
	baseSeq atomic.Uint64
	// stagedSeq is the global sequence number of the last record staged
	// for durability (enqueued to the committer or appended inline) —
	// the trace coordinate assigned under the write lock, ahead of the
	// durable frontier by whatever the committer still holds. Guarded
	// by mu.
	stagedSeq uint64
	// trace is the end-to-end pipeline trace every stage stamps into
	// (see internal/obs). Always non-nil on a System built by Open or
	// the replica bootstrap.
	trace *obs.PipelineTrace

	// readOnly marks a follower System: every public mutator returns
	// ErrReadOnly, and the only mutation path is the replication apply
	// loop (Replica.ApplyRecord), which dispatches to the unexported
	// mutators directly. Set at construction; cleared exactly once by
	// promotion (Replica.Promote), which is why it is atomic — the
	// mutation gate reads it without the write lock.
	readOnly atomic.Bool
	// term is the promotion epoch this System writes at: 1 for a
	// primary that has never failed over, bumped by every promotion.
	// It is persisted in snapshots and stamped on the replication
	// control plane; followers use it to fence stale primaries.
	term atomic.Uint64
	// fencedBy latches the higher term this primary has learned of
	// (via replication-plane gossip), 0 while unfenced. A fenced
	// primary refuses every mutation with ErrFenced: some follower has
	// been promoted past it, and writing here would split the brain.
	fencedBy atomic.Uint64
	// autoDerive mirrors Config.AutoDerive so a replica can be built
	// with the exact derivation behavior of its primary (derived
	// authorizations are not logged — both sides must re-derive them
	// identically from profile.put/rule.add records).
	autoDerive bool

	// Cache warming: mutations that move the epoch poke warmCh; a
	// background goroutine re-derives Algorithm-1 for the hottest
	// subjects so the first post-mutation query hits the cache.
	warmK    int
	warmCh   chan struct{}
	warmStop chan struct{}
	warmWG   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// epoch is the cache generation: the sum of the two version counters.
// Each mutation bumps at least one of them, and both only grow, so the
// sum strictly increases across any state change that can alter an
// Algorithm-1 result.
func (s *System) epoch() uint64 {
	return s.store.Version() + s.profiles.Version()
}

// record payloads.
type (
	idPayload   struct{ ID authz.ID }
	namePayload struct{ Name string }
	subjPayload struct{ ID profile.SubjectID }
	movePayload struct {
		T interval.Time
		S profile.SubjectID
		L graph.ID
	}
	tickPayload     struct{ T interval.Time }
	strategyPayload struct{ Strategy int }
)

// snapshotState is the persisted full state.
type snapshotState struct {
	// Seq is the global sequence number of the first WAL record NOT
	// covered by this snapshot — the cumulative count of records
	// compacted into it. It keeps snapshot numbering monotonic across
	// compactions (the WAL's own counter resets on Truncate) and anchors
	// the replication stream's coordinate system.
	Seq uint64 `json:"seq"`
	// Term is the promotion epoch the state was written under. Absent
	// (0) in pre-failover snapshots; Open normalizes that to 1.
	Term       uint64                `json:"term,omitempty"`
	Graph      graph.Spec            `json:"graph"`
	Profiles   []profile.Subject     `json:"profiles"`
	Auths      []authz.Authorization `json:"auths"`
	NextAuthID authz.ID              `json:"next_auth_id"`
	Rules      []rules.Spec          `json:"rules"`
	Events     []movement.Event      `json:"events"`
	Clock      interval.Time         `json:"clock"`
	// Boundaries carries the coordinate front-end's geometry so a
	// follower bootstrapped from this state can resolve raw readings
	// after a promotion. Absent for systems without boundaries.
	Boundaries []geometry.Boundary `json:"boundaries,omitempty"`
}

// newBareSystem allocates the empty databases every System starts from.
func newBareSystem() *System {
	return &System{
		profiles: profile.NewDB(),
		store:    authz.NewStore(),
		moves:    movement.NewDB(),
		alerts:   audit.NewLog(0),
		cache:    query.NewCache(0),
		commitCh: make(chan struct{}, 1),
		trace:    obs.NewPipelineTrace(0),
	}
}

// Trace returns the system's pipeline trace (always non-nil).
func (s *System) Trace() *obs.PipelineTrace { return s.trace }

// CommitNotify returns the durability wakeup channel: a receive means
// the durable frontier (ReplicationInfo().TotalSeq) may have advanced
// since the last receive. Sends are collapsed (capacity 1), so consumers
// must re-check the frontier after every wakeup rather than count them.
func (s *System) CommitNotify() <-chan struct{} { return s.commitCh }

// notifyCommit drops a wakeup token; never blocks.
func (s *System) notifyCommit() {
	select {
	case s.commitCh <- struct{}{}:
	default:
	}
}

// Open builds a System from cfg, recovering from DataDir when set.
func Open(cfg Config) (*System, error) {
	s := newBareSystem()
	s.alerts = audit.NewLog(cfg.AlertLimit)
	s.term.Store(1)

	var snap snapshotState
	haveSnap := false
	if cfg.DataDir != "" {
		var err error
		s.snaps, err = storage.NewSnapshotStore(filepath.Join(cfg.DataDir, "snapshots"))
		if err != nil {
			return nil, err
		}
		if _, ok, err := s.snaps.Latest(&snap); err != nil {
			return nil, err
		} else if ok {
			haveSnap = true
		}
	}

	// Resolve the graph: explicit config wins; otherwise the snapshot.
	switch {
	case cfg.Graph != nil:
		s.root = cfg.Graph
	case haveSnap:
		g, err := graph.FromSpec(snap.Graph)
		if err != nil {
			return nil, fmt.Errorf("core: recover graph: %w", err)
		}
		s.root = g
	default:
		return nil, errors.New("core: no location graph (set Config.Graph or recover from a snapshot)")
	}
	if err := s.root.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.flat = graph.Expand(s.root)

	if len(cfg.Boundaries) > 0 {
		r, err := geometry.NewResolver(cfg.Boundaries)
		if err != nil {
			return nil, err
		}
		s.resolver = r
		s.bounds = cfg.Boundaries
	}

	if err := s.initEngines(cfg.AutoDerive); err != nil {
		return nil, err
	}

	// Restore the snapshot state.
	if haveSnap {
		if err := s.restoreSnapshot(snap); err != nil {
			return nil, err
		}
		s.baseSeq.Store(snap.Seq)
		if snap.Term > 0 {
			s.term.Store(snap.Term)
		}
	}

	// Replay the WAL suffix, then open it for appending.
	if cfg.DataDir != "" {
		walPath := filepath.Join(cfg.DataDir, "wal.log")
		s.walPath = walPath
		s.replaying = true
		_, err := storage.Replay(walPath, s.apply)
		s.replaying = false
		if err != nil {
			return nil, fmt.Errorf("core: replay: %w", err)
		}
		sync := cfg.SyncEvery
		if sync <= 0 {
			sync = 1
		}
		s.wal, err = storage.OpenWALWith(walPath, sync, cfg.WALWrap)
		if err != nil {
			return nil, err
		}
		// Group commit amortizes *full-durability* fsyncs: every
		// committer batch is fsynced before its waiters are released, so
		// it engages only at SyncEvery=1. A relaxed cadence (SyncEvery >
		// 1) keeps the pre-group-commit inline appends and its
		// one-fsync-per-N semantics — turning the committer on there
		// would silently fsync every batch and defeat the setting.
		if !cfg.DisableGroupCommit && sync == 1 {
			s.committer = storage.NewCommitter(s.wal, storage.CommitterConfig{
				MaxBatch:     cfg.CommitMaxBatch,
				MaxDelay:     cfg.CommitMaxDelay,
				AckOnEnqueue: cfg.RelaxedDurability,
				Trace:        s.trace,
			})
		}
		// The trace coordinate starts at the durable frontier: staged ==
		// durable while nothing is queued.
		s.stagedSeq = s.baseSeq.Load() + s.wal.Len()
	}

	// Publish the initial read view: from here on every pure query runs
	// against a published snapshot.
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()

	s.startWarm(cfg.DisableCacheWarm, cfg.WarmSubjects)
	return s, nil
}

// initEngines wires the access control and rule engines over the graph
// and databases, recording the derivation mode for replication.
func (s *System) initEngines(autoDerive bool) error {
	eng, err := enforce.New(s.root, s.store, s.moves, s.alerts)
	if err != nil {
		return err
	}
	s.engine = eng
	s.autoDerive = autoDerive
	s.ruleEng = rules.NewEngine(s.store, s.profiles, s.root, autoDerive)
	return nil
}

// restoreSnapshot loads a persisted (or replication-bootstrap) state
// into the empty databases.
func (s *System) restoreSnapshot(snap snapshotState) error {
	if err := s.profiles.Restore(snap.Profiles); err != nil {
		return fmt.Errorf("core: recover profiles: %w", err)
	}
	if err := s.store.Restore(snap.Auths, snap.NextAuthID); err != nil {
		return fmt.Errorf("core: recover auths: %w", err)
	}
	for _, spec := range snap.Rules {
		r, err := spec.Compile()
		if err != nil {
			return fmt.Errorf("core: recover rule %q: %w", spec.Name, err)
		}
		if err := s.ruleEng.RestoreRule(r); err != nil {
			return err
		}
	}
	if err := s.moves.Restore(snap.Events); err != nil {
		return fmt.Errorf("core: recover movements: %w", err)
	}
	// Config.Boundaries wins; otherwise adopt the geometry the snapshot
	// carries so a follower (or a restart without the geometry file) can
	// still resolve raw readings.
	if s.resolver == nil && len(snap.Boundaries) > 0 {
		r, err := geometry.NewResolver(snap.Boundaries)
		if err != nil {
			return fmt.Errorf("core: recover boundaries: %w", err)
		}
		s.resolver = r
		s.bounds = snap.Boundaries
	}
	return s.engine.SetClock(snap.Clock)
}

// startWarm boots the background cache warmer unless disabled.
func (s *System) startWarm(disabled bool, k int) {
	if disabled {
		return
	}
	s.warmK = k
	if s.warmK <= 0 {
		s.warmK = DefaultWarmSubjects
	}
	s.warmCh = make(chan struct{}, 1)
	s.warmStop = make(chan struct{})
	s.warmWG.Add(1)
	go s.warmLoop()
}

// Close stops the cache warmer, drains the group committer, and closes
// the WAL. It is idempotent.
func (s *System) Close() error {
	s.closeOnce.Do(func() {
		if s.warmStop != nil {
			close(s.warmStop)
			s.warmWG.Wait()
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.committer != nil {
			s.closeErr = s.committer.Close()
		}
		if s.wal != nil {
			if err := s.wal.Close(); s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// apply dispatches one WAL record: during recovery (replaying the local
// log suffix) and on a replica (applying the shipped stream). It calls
// the unexported mutators so the dispatch works on read-only followers,
// whose public mutators are gated by ErrReadOnly.
func (s *System) apply(rec storage.Record) error {
	switch rec.Type {
	case "profile.put":
		var sub profile.Subject
		if err := json.Unmarshal(rec.Data, &sub); err != nil {
			return err
		}
		return s.putSubject(sub)
	case "profile.remove":
		var p subjPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.removeSubject(p.ID)
	case "authz.add":
		var a authz.Authorization
		if err := json.Unmarshal(rec.Data, &a); err != nil {
			return err
		}
		a.ID = 0 // re-assigned deterministically
		_, err := s.addAuthorization(a)
		return err
	case "authz.resolve":
		var p strategyPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.resolveConflicts(authz.Strategy(p.Strategy))
		return err
	case "authz.revoke":
		var p idPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.revokeAuthorization(p.ID)
		return err
	case "rule.add":
		var spec rules.Spec
		if err := json.Unmarshal(rec.Data, &spec); err != nil {
			return err
		}
		_, err := s.addRule(spec)
		return err
	case "rule.remove":
		var p namePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.removeRule(p.Name)
	case "move.enter":
		var p movePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.enter(p.T, p.S, p.L)
		return err
	case "move.leave":
		var p movePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.leave(p.T, p.S)
	case "tick":
		var p tickPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.tick(p.T)
		return err
	default:
		return fmt.Errorf("core: unknown record type %q", rec.Type)
	}
}

// mutationGate is the admission check every public mutator runs BEFORE
// applying anything in memory. A follower rejects with ErrReadOnly; a
// primary whose group committer has latched a write or fsync failure
// rejects with ErrWALPoisoned — the in-memory state must not advance
// past a log that can no longer record it (fsyncgate: the failed sync is
// never retried). Pure queries are not gated: they serve the published
// view, which reflects only mutations that were still being logged.
func (s *System) mutationGate() error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	if by := s.fencedBy.Load(); by != 0 {
		return fmt.Errorf("%w (term %d fenced by term %d)", ErrFenced, s.term.Load(), by)
	}
	if s.committer != nil && s.committer.Poisoned() {
		return fmt.Errorf("%w: %v", storage.ErrWALPoisoned, s.committer.Err())
	}
	return nil
}

// ErrFenced is returned by every mutator of a primary that has learned —
// through replication-plane term gossip — of a higher promotion term.
// Some follower has been promoted past this node; continuing to accept
// writes would split the brain, so the node flips itself read-only. A
// fenced primary keeps serving queries from its published view and can
// rejoin the fleet only by re-bootstrapping as a follower of the new
// primary.
var ErrFenced = errors.New("core: primary fenced by a higher promotion term")

// Term returns the promotion epoch this System writes at (1 for a
// primary that has never failed over; followers mirror their primary's
// term).
func (s *System) Term() uint64 { return s.term.Load() }

// Fence latches the fenced state if term is strictly higher than this
// System's own promotion term, returning whether the node is now (or
// already was) fenced. Fencing is one-way: there is no unfence — a stale
// primary's only way back is re-bootstrapping as a follower.
func (s *System) Fence(term uint64) bool {
	if term > s.term.Load() {
		storeMax(&s.fencedBy, term)
	}
	return s.fencedBy.Load() != 0
}

// Fenced reports whether a higher promotion term has been observed.
func (s *System) Fenced() bool { return s.fencedBy.Load() != 0 }

// FencedBy returns the higher term that fenced this node (0 = unfenced).
func (s *System) FencedBy() uint64 { return s.fencedBy.Load() }

// Poisoned reports whether the WAL committer has latched a write/fsync
// failure and the System is degraded to read-only (mutations fail with
// ErrWALPoisoned; queries keep serving the published view). Always false
// without group commit.
func (s *System) Poisoned() bool {
	return s.committer != nil && s.committer.Poisoned()
}

// CommitErr returns the committer's latched background failure — the
// root cause behind Poisoned — or nil when healthy (or not durable).
func (s *System) CommitErr() error {
	if s.committer == nil {
		return nil
	}
	return s.committer.Err()
}

// waitNil and waitErr are ready-made commit barriers for the synchronous
// paths.
var waitNil = func() error { return nil }

func waitErr(err error) func() error { return func() error { return err } }

// encodeRecord marshals a typed mutation payload into a WAL record.
func encodeRecord(typ string, v any) (storage.Record, error) {
	data, err := json.Marshal(v)
	if err != nil {
		return storage.Record{}, err
	}
	return storage.Record{Type: typ, Data: data}, nil
}

// logLocked stages one mutation record for durability and publishes the
// post-mutation read view. Callers hold the write lock, which is what
// makes WAL order equal apply order: records are enqueued (or appended)
// in lock-hold order, and the view published here always reflects every
// record staged so far. The returned wait function is the commit barrier
// — call it AFTER releasing the write lock, so the fsync (shared with
// every other mutation in the same group-commit batch) never blocks
// readers or other writers.
//
// With the committer disabled the append happens inline, preserving the
// pre-group-commit syncEvery semantics; the barrier then just reports
// the append's outcome.
func (s *System) logLocked(typ string, v any) func() error {
	s.publishLocked()
	if s.wal == nil || s.replaying {
		return waitNil
	}
	rec, err := encodeRecord(typ, v)
	if err != nil {
		return waitErr(err)
	}
	s.traceStagedOneLocked(&rec)
	if s.committer != nil {
		ch := s.committer.Commit(rec)
		return func() error { return s.notifyAfter(<-ch) }
	}
	return waitErr(s.notifyAfter(s.wal.Append(rec)))
}

// traceStagedLocked assigns each staged record its global sequence
// number and claims its pipeline-trace slot: the carried decode/gather
// stamps plus the apply instant land in the ring here, under the write
// lock — the same serialization that makes WAL order equal apply order
// makes the claims race-free. The committer (or nobody, on the inline
// relaxed-cadence path) stamps the later stages against these sequences.
func (s *System) traceStagedLocked(recs []storage.Record) {
	now := obs.Now()
	for i := range recs {
		s.stagedSeq++
		recs[i].Obs.Seq = s.stagedSeq
		s.trace.Begin(s.stagedSeq, recs[i].Obs.Stamps, now)
	}
}

// traceStagedOneLocked is traceStagedLocked for the single-record path,
// avoiding a slice header on the hot mutation route.
func (s *System) traceStagedOneLocked(rec *storage.Record) {
	s.stagedSeq++
	rec.Obs.Seq = s.stagedSeq
	s.trace.Begin(s.stagedSeq, rec.Obs.Stamps, obs.Now())
}

// notifyAfter forwards a commit outcome, waking durability followers on
// success. A failed barrier is tagged with ErrWALPoisoned when the
// committer has latched: the barrier that carried the ORIGINAL
// write/fsync failure is just as poisoned as every one behind it, and
// callers (the server's 503 mapping in particular) should not have to
// distinguish the first victim from the stragglers.
func (s *System) notifyAfter(err error) error {
	if err == nil {
		s.notifyCommit()
		return nil
	}
	if !errors.Is(err, storage.ErrWALPoisoned) && s.Poisoned() {
		return fmt.Errorf("%w (%w)", storage.ErrWALPoisoned, err)
	}
	return err
}

// logGroupLocked is logLocked for a pre-encoded record group: the whole
// group is enqueued as one unit, costing one fsync.
func (s *System) logGroupLocked(recs []storage.Record) func() error {
	s.publishLocked()
	if s.wal == nil || s.replaying || len(recs) == 0 {
		return waitNil
	}
	s.traceStagedLocked(recs)
	if s.committer != nil {
		ch := s.committer.Commit(recs...)
		return func() error { return s.notifyAfter(<-ch) }
	}
	return waitErr(s.notifyAfter(s.wal.AppendGroup(recs)))
}

// --- Cache warming ------------------------------------------------------

// signalWarm pokes the warmer after a mutation that moved the epoch.
// Non-blocking: a pending poke already covers this mutation.
func (s *System) signalWarm() {
	if s.warmCh == nil || s.replaying {
		return
	}
	select {
	case s.warmCh <- struct{}{}:
	default:
	}
}

// warmLoop is the background warmer: on each poke it re-derives the
// Algorithm-1 result for the most recently queried subjects, under the
// read lock like any other query, so the first post-mutation query for a
// hot subject is a cache hit instead of an inline fixpoint.
func (s *System) warmLoop() {
	defer s.warmWG.Done()
	for {
		select {
		case <-s.warmStop:
			return
		case <-s.warmCh:
			s.WarmNow()
		}
	}
}

// WarmNow synchronously re-derives the default-window Algorithm-1 result
// for the K most recently queried subjects (K = Config.WarmSubjects).
// The background warmer calls it on every epoch-changing mutation; it is
// exported for deterministic tests and for operators who want to pre-heat
// after bulk administration.
func (s *System) WarmNow() {
	k := s.warmK
	if k <= 0 {
		k = DefaultWarmSubjects
	}
	for _, sub := range s.cache.RecentSubjects(k) {
		select {
		case <-s.warmStop:
			return
		default:
		}
		// Re-load the view per subject so a warm pass racing further
		// mutations always heats the freshest generation.
		_ = s.currentView().result(sub, query.Options{})
	}
}

// --- Profile administration -------------------------------------------

// PutSubject inserts or updates a user profile.
func (s *System) PutSubject(sub profile.Subject) error {
	if err := s.mutationGate(); err != nil {
		return err
	}
	return s.putSubject(sub)
}

func (s *System) putSubject(sub profile.Subject) error {
	s.mu.Lock()
	if err := s.profiles.Put(sub); err != nil {
		s.mu.Unlock()
		return err
	}
	wait := s.logLocked("profile.put", sub)
	s.mu.Unlock()
	s.signalWarm()
	return wait()
}

// RemoveSubject deletes a user profile.
func (s *System) RemoveSubject(id profile.SubjectID) error {
	if err := s.mutationGate(); err != nil {
		return err
	}
	return s.removeSubject(id)
}

func (s *System) removeSubject(id profile.SubjectID) error {
	s.mu.Lock()
	if err := s.profiles.Remove(id); err != nil {
		s.mu.Unlock()
		return err
	}
	wait := s.logLocked("profile.remove", subjPayload{ID: id})
	s.mu.Unlock()
	s.signalWarm()
	return wait()
}

// GetSubject returns a user profile. Profile reads go to the live,
// internally-synchronized database — no System lock.
func (s *System) GetSubject(id profile.SubjectID) (profile.Subject, error) {
	return s.profiles.Get(id)
}

// Subjects lists all subject IDs.
func (s *System) Subjects() []profile.SubjectID {
	return s.profiles.Subjects()
}

// --- Authorization administration ---------------------------------------

// AddAuthorization validates that the location is a primitive location of
// the site graph, stores the authorization, and logs it.
func (s *System) AddAuthorization(a authz.Authorization) (authz.Authorization, error) {
	if err := s.mutationGate(); err != nil {
		return authz.Authorization{}, err
	}
	return s.addAuthorization(a)
}

func (s *System) addAuthorization(a authz.Authorization) (authz.Authorization, error) {
	s.mu.Lock()
	if _, ok := s.flat.Index[a.Location]; !ok {
		s.mu.Unlock()
		return authz.Authorization{}, fmt.Errorf("core: %q is not a primitive location of %q", a.Location, s.root.Name())
	}
	stored, err := s.store.Add(a)
	if err != nil {
		s.mu.Unlock()
		return authz.Authorization{}, err
	}
	wait := s.logLocked("authz.add", stored)
	s.mu.Unlock()
	s.signalWarm()
	if err := wait(); err != nil {
		return authz.Authorization{}, err
	}
	return stored, nil
}

// RevokeAuthorization revokes an authorization and everything derived
// from it, returning how many were removed.
func (s *System) RevokeAuthorization(id authz.ID) (int, error) {
	if err := s.mutationGate(); err != nil {
		return 0, err
	}
	return s.revokeAuthorization(id)
}

func (s *System) revokeAuthorization(id authz.ID) (int, error) {
	s.mu.Lock()
	n, err := s.ruleEng.RevokeBase(id)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	wait := s.logLocked("authz.revoke", idPayload{ID: id})
	s.mu.Unlock()
	s.signalWarm()
	return n, wait()
}

// Authorizations lists every stored authorization, as of the published
// read view.
func (s *System) Authorizations() []authz.Authorization {
	return s.currentView().auths.All()
}

// AuthorizationsFor lists the authorizations of subject sub at location l.
func (s *System) AuthorizationsFor(sub profile.SubjectID, l graph.ID) []authz.Authorization {
	return s.currentView().auths.For(sub, l)
}

// Conflicts reports duplicate/overlapping/adjacent authorization pairs,
// scanning one consistent store snapshot.
func (s *System) Conflicts() []authz.Conflict {
	return s.currentView().auths.FindConflicts()
}

// ResolveConflicts applies the strategy to every detected conflict among
// administrator-defined authorizations (the paper's two §4 options:
// combining, or discarding one). The resolution is durably logged.
func (s *System) ResolveConflicts(strategy authz.Strategy) ([]authz.Resolution, error) {
	if err := s.mutationGate(); err != nil {
		return nil, err
	}
	return s.resolveConflicts(strategy)
}

func (s *System) resolveConflicts(strategy authz.Strategy) ([]authz.Resolution, error) {
	s.mu.Lock()
	res, err := s.store.ResolveConflicts(strategy)
	if err != nil || len(res) == 0 {
		s.mu.Unlock()
		return res, err
	}
	wait := s.logLocked("authz.resolve", strategyPayload{Strategy: int(strategy)})
	s.mu.Unlock()
	s.signalWarm()
	return res, wait()
}

// --- Rules ---------------------------------------------------------------

// AddRule compiles, registers and immediately derives the rule.
func (s *System) AddRule(spec rules.Spec) (rules.Report, error) {
	if err := s.mutationGate(); err != nil {
		return rules.Report{}, err
	}
	return s.addRule(spec)
}

func (s *System) addRule(spec rules.Spec) (rules.Report, error) {
	s.mu.Lock()
	r, err := spec.Compile()
	if err != nil {
		s.mu.Unlock()
		return rules.Report{}, err
	}
	rep, err := s.ruleEng.AddRule(r)
	if err != nil {
		s.mu.Unlock()
		return rules.Report{}, err
	}
	wait := s.logLocked("rule.add", spec)
	s.mu.Unlock()
	s.signalWarm()
	return rep, wait()
}

// RemoveRule deletes a rule and revokes its derivations.
func (s *System) RemoveRule(name string) error {
	if err := s.mutationGate(); err != nil {
		return err
	}
	return s.removeRule(name)
}

func (s *System) removeRule(name string) error {
	s.mu.Lock()
	if err := s.ruleEng.RemoveRule(name); err != nil {
		s.mu.Unlock()
		return err
	}
	wait := s.logLocked("rule.remove", namePayload{Name: name})
	s.mu.Unlock()
	s.signalWarm()
	return wait()
}

// Rules lists the registered rules.
func (s *System) Rules() []rules.Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ruleEng.Rules()
}

// RuleEngine exposes the rule engine for programmatic (non-persistent)
// customized operators. Mutations through it bypass the System write
// lock and the WAL: they are epoch-safe (the store bumps its version),
// but are not atomic with respect to concurrent readers — use it for
// setup before serving traffic, or mutate via System methods.
func (s *System) RuleEngine() *rules.Engine { return s.ruleEng }

// --- Enforcement -----------------------------------------------------------

// Request evaluates the access request (t, sub, l) — Definition 6/7.
// Requests are pure reads evaluated against the published view's
// authorization snapshot (plus an atomic monotonic clock advance), so a
// fan-in of concurrent card-reader requests shares no mutex: the only
// lock on any decision path is the movement database's internal read
// lock, and only for entry-count-limited authorizations.
func (s *System) Request(t interval.Time, sub profile.SubjectID, l graph.ID) enforce.Decision {
	return s.engine.RequestIn(s.currentView().auths, t, sub, l)
}

// Query is Request without side effects.
func (s *System) Query(t interval.Time, sub profile.SubjectID, l graph.ID) enforce.Decision {
	return s.engine.QueryIn(s.currentView().auths, t, sub, l)
}

// Enter records subject sub entering location l at time t.
func (s *System) Enter(t interval.Time, sub profile.SubjectID, l graph.ID) (enforce.Decision, error) {
	if err := s.mutationGate(); err != nil {
		return enforce.Decision{}, err
	}
	return s.enter(t, sub, l)
}

func (s *System) enter(t interval.Time, sub profile.SubjectID, l graph.ID) (enforce.Decision, error) {
	s.mu.Lock()
	d, err := s.engine.Enter(t, sub, l)
	if err != nil {
		s.mu.Unlock()
		return d, err
	}
	wait := s.logLocked("move.enter", movePayload{T: t, S: sub, L: l})
	s.mu.Unlock()
	return d, wait()
}

// Leave records subject sub leaving its current location at time t.
func (s *System) Leave(t interval.Time, sub profile.SubjectID) error {
	if err := s.mutationGate(); err != nil {
		return err
	}
	return s.leave(t, sub)
}

func (s *System) leave(t interval.Time, sub profile.SubjectID) error {
	s.mu.Lock()
	// The departed location rides in the record for event-feed consumers
	// (a location filter must see leaves too); replay ignores it.
	from, _ := s.moves.CurrentLocation(sub)
	if err := s.engine.Leave(t, sub); err != nil {
		s.mu.Unlock()
		return err
	}
	wait := s.logLocked("move.leave", movePayload{T: t, S: sub, L: from})
	s.mu.Unlock()
	return wait()
}

// Tick advances the clock and runs the overstay monitor.
func (s *System) Tick(t interval.Time) ([]audit.Alert, error) {
	if err := s.mutationGate(); err != nil {
		return nil, err
	}
	return s.tick(t)
}

func (s *System) tick(t interval.Time) ([]audit.Alert, error) {
	s.mu.Lock()
	raised, err := s.engine.Tick(t)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	wait := s.logLocked("tick", tickPayload{T: t})
	s.mu.Unlock()
	return raised, wait()
}

// Reading is one positioning sample for the ingest path: where subject
// Subject was observed at logical time Time.
type Reading struct {
	Time    interval.Time
	Subject profile.SubjectID
	At      geometry.Point
	// Stamps carries the streaming-ingest trace instants (decode,
	// gather) by value; zero on the request/response paths.
	Stamps obs.FrameStamps
}

// ObserveOutcome reports the application of one Reading from a batch.
type ObserveOutcome struct {
	// Decision is the Def.-7 outcome when the reading produced an entry.
	Decision enforce.Decision
	// Moved reports whether the reading produced a movement (an entry or
	// an exit); a reading that keeps the subject where it was is a no-op.
	Moved bool
	// Entered distinguishes the movement kind: true for an entry (the
	// Decision is that entry's Def.-7 outcome), false for an exit (the
	// Decision is zero — leaving is not an access decision).
	Entered bool
	// Err is the per-reading application error (e.g. a time regression);
	// the rest of the batch is unaffected.
	Err error
}

// ObserveReading ingests one positioning sample: the coordinate is
// resolved to a primitive location (or outside) and converted into the
// corresponding movement, if any. The coordinate itself is discarded —
// the §1 privacy boundary.
//
// The subject's current location is read under the write lock, in the
// same critical section that applies the movement, so concurrent
// positioning feeds cannot derive an Enter/Leave from a stale location.
func (s *System) ObserveReading(t interval.Time, sub profile.SubjectID, at geometry.Point) (enforce.Decision, bool, error) {
	if err := s.mutationGate(); err != nil {
		return enforce.Decision{}, false, err
	}
	if s.resolver == nil {
		return enforce.Decision{}, false, errors.New("core: no boundaries configured")
	}
	s.mu.Lock()
	out, recs := s.applyBatch([]Reading{{Time: t, Subject: sub, At: at}})
	wait := s.logGroupLocked(recs)
	s.mu.Unlock()
	if out[0].Err != nil {
		return out[0].Decision, false, out[0].Err
	}
	return out[0].Decision, out[0].Moved, wait()
}

// ObserveBatch ingests a batch of positioning samples in one critical
// section: the write lock is taken once, each reading is resolved and
// applied in order (reading the subject's current location under the
// lock), and every resulting movement is logged as a single WAL group —
// one fsync for the whole batch instead of one per movement. This is the
// high-rate ingest path for positioning feeds that deliver thousands of
// Enter/Leave readings per second.
//
// Per-reading failures (e.g. a time regression) are reported in the
// corresponding ObserveOutcome.Err and do not abort the batch; only the
// movements that applied are logged. The returned error is the batch
// durability error: if non-nil, the in-memory state includes the batch
// but the WAL group was not acknowledged.
func (s *System) ObserveBatch(readings []Reading) ([]ObserveOutcome, error) {
	if err := s.mutationGate(); err != nil {
		return nil, err
	}
	if s.resolver == nil {
		return nil, errors.New("core: no boundaries configured")
	}
	if len(readings) == 0 {
		return nil, nil
	}
	s.mu.Lock()
	out, recs := s.applyBatch(readings)
	wait := s.logGroupLocked(recs)
	s.mu.Unlock()
	return out, wait()
}

// applyBatch applies each reading against the movement state and returns
// the per-reading outcomes plus the WAL records of the movements that
// were actually applied, in apply order. Callers hold the write lock.
func (s *System) applyBatch(readings []Reading) ([]ObserveOutcome, []storage.Record) {
	out := make([]ObserveOutcome, len(readings))
	recs := make([]storage.Record, 0, len(readings))
	for i, r := range readings {
		loc := graph.ID(s.resolver.Resolve(r.At))
		cur, inside := s.moves.CurrentLocation(r.Subject)
		switch {
		case loc == "" && !inside:
			// Outside and observed outside: nothing to record.
		case loc == "" && inside:
			if err := s.engine.Leave(r.Time, r.Subject); err != nil {
				out[i].Err = err
				continue
			}
			out[i].Moved = true
			if s.wal != nil && !s.replaying {
				// cur is the departed location, for the event feed.
				rec, err := encodeRecord("move.leave", movePayload{T: r.Time, S: r.Subject, L: cur})
				if err != nil {
					out[i].Err = err
					continue
				}
				rec.Obs.Stamps = r.Stamps
				recs = append(recs, rec)
			}
		case inside && loc == cur:
			// Still in the same room: a no-op sample.
		default:
			d, err := s.engine.Enter(r.Time, r.Subject, loc)
			out[i].Decision = d
			if err != nil {
				out[i].Err = err
				continue
			}
			out[i].Moved = true
			out[i].Entered = true
			if s.wal != nil && !s.replaying {
				rec, err := encodeRecord("move.enter", movePayload{T: r.Time, S: r.Subject, L: loc})
				if err != nil {
					out[i].Err = err
					continue
				}
				rec.Obs.Stamps = r.Stamps
				recs = append(recs, rec)
			}
		}
	}
	return out, recs
}

// --- Queries -----------------------------------------------------------------

// Inaccessible runs Algorithm 1 for the subject over the whole site.
// Repeated queries between mutations are served from the view's memo
// table with zero lock acquisitions; the returned slice is shared with
// other callers and must be treated as read-only.
func (s *System) Inaccessible(sub profile.SubjectID) []graph.ID {
	return s.currentView().result(sub, query.Options{}).Inaccessible
}

// InaccessibleTrace runs Algorithm 1 with a Table-2-style trace. Traced
// runs always recompute (the trace is the product, not the answer).
func (s *System) InaccessibleTrace(sub profile.SubjectID) query.Result {
	v := s.currentView()
	return query.FindInaccessible(v.flat, v.auths, sub, query.Options{Trace: true})
}

// InaccessibleDuring restricts Algorithm 1 to visits starting within
// window (§6's access request duration). Like Inaccessible, the
// returned slice is shared with other callers — read-only.
func (s *System) InaccessibleDuring(sub profile.SubjectID, window interval.Interval) []graph.ID {
	return s.currentView().result(sub, query.Options{Window: window}).Inaccessible
}

// Accessible is the complement query of §5. It shares the memoized
// Algorithm-1 run with Inaccessible rather than recomputing it.
func (s *System) Accessible(sub profile.SubjectID) []graph.ID {
	v := s.currentView()
	return query.AccessibleFrom(v.flat, v.result(sub, query.Options{}))
}

// EarliestAccess returns the earliest time sub can be inside l via an
// authorized route, and whether l is reachable at all. It reads the
// memoized Algorithm-1 state: T^g(l) is exactly the set of instants at
// which sub can be granted entry to l along some authorized route.
func (s *System) EarliestAccess(sub profile.SubjectID, l graph.ID) (interval.Time, bool) {
	return s.currentView().earliestAccess(sub, l)
}

func (v *readView) earliestAccess(sub profile.SubjectID, l graph.ID) (interval.Time, bool) {
	if _, known := v.flat.Index[l]; !known {
		return 0, false
	}
	return v.result(sub, query.Options{}).States[l].Grant.Earliest()
}

// WhoCanAccess returns every known subject (profiles plus authorization
// holders) who can reach location l via an authorized route. Each
// subject's reachability comes from its memoized Algorithm-1 run, so on
// a warm cache the inverse query costs one map lookup per subject.
func (s *System) WhoCanAccess(l graph.ID) []profile.SubjectID {
	v := s.currentView()
	if _, known := v.flat.Index[l]; !known {
		return nil
	}
	subjects := append(v.profiles.Subjects(), v.auths.Subjects()...)
	out := query.WhoCanAccessBy(subjects, func(sub profile.SubjectID) bool {
		_, ok := v.earliestAccess(sub, l)
		return ok
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InaccessibleMultilevel runs the Lemma-1 hierarchical solver.
func (s *System) InaccessibleMultilevel(sub profile.SubjectID) query.MultilevelResult {
	v := s.currentView()
	return query.FindInaccessibleMultilevel(v.root, v.auths, sub)
}

// CheckRoute evaluates the §6 authorized-route definition.
func (s *System) CheckRoute(sub profile.SubjectID, r graph.Route, window interval.Interval) query.RouteCheck {
	return query.CheckRoute(s.currentView().auths, sub, r, window)
}

// CheckItinerary validates a concrete visit schedule (explicit arrive and
// depart times per location) against topology and authorizations.
func (s *System) CheckItinerary(sub profile.SubjectID, visits []query.Visit) query.ItineraryCheck {
	v := s.currentView()
	return query.CheckItinerary(v.flat, v.auths, sub, visits)
}

// WhereIs reports a subject's current location. Presence and history
// queries read the live, internally-synchronized movement database — no
// System lock; a query overlapping an in-flight movement linearizes to
// one side of it.
func (s *System) WhereIs(sub profile.SubjectID) (graph.ID, bool) {
	return s.engine.WhereIs(sub)
}

// Occupants reports who is inside a location now.
func (s *System) Occupants(l graph.ID) []profile.SubjectID {
	return s.engine.Occupants(l)
}

// ContactsOf runs the §1 contact-tracing query.
func (s *System) ContactsOf(sub profile.SubjectID, window interval.Interval) []movement.Contact {
	return s.moves.ContactsOf(sub, window)
}

// History returns a subject's stints.
func (s *System) History(sub profile.SubjectID) []movement.Stint {
	return s.moves.History(sub)
}

// WhoWasIn returns the subjects present in l during window.
func (s *System) WhoWasIn(l graph.ID, window interval.Interval) []profile.SubjectID {
	return s.moves.WhoWasIn(l, window)
}

// QueryCacheStats reports the epoch cache's hit/miss/flush counters —
// the observability hook behind the server's /v1/stats endpoint.
func (s *System) QueryCacheStats() query.CacheStats { return s.cache.Stats() }

// CommitStats reports the group committer's batching counters (zero when
// durability or group commit is disabled).
func (s *System) CommitStats() storage.CommitterStats {
	if s.committer == nil {
		return storage.CommitterStats{}
	}
	return s.committer.Stats()
}

// Alerts returns the alert log.
func (s *System) Alerts() *audit.Log { return s.alerts }

// Graph returns the site graph; Flat its expansion.
func (s *System) Graph() *graph.Graph { return s.root }

// Flat returns the expanded primitive-location graph.
func (s *System) Flat() *graph.Flat { return s.flat }

// Movements exposes the movement database (read-side).
func (s *System) Movements() *movement.DB { return s.moves }

// AuthStore exposes the authorization database (read-side and benches).
// Direct mutations are epoch-safe but skip the System write lock and
// the WAL; prefer System methods.
func (s *System) AuthStore() *authz.Store { return s.store }

// Profiles exposes the profile database. Mutate via System methods when
// durability matters; direct mutations also skip the System write lock
// (though they remain epoch-safe).
func (s *System) Profiles() *profile.DB { return s.profiles }

// Clock returns the engine's logical time.
func (s *System) Clock() interval.Time { return s.engine.Now() }

// Snapshot persists the full state and compacts the WAL. It requires
// durability to be enabled.
func (s *System) Snapshot() error {
	if err := s.mutationGate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snaps == nil || s.wal == nil {
		return errors.New("core: durability not enabled")
	}
	snap, err := s.snapshotStateLocked()
	if err != nil {
		return err
	}
	// Number the snapshot with the CUMULATIVE record count, not the
	// current WAL length: the WAL counter resets on every Truncate, so
	// per-compaction numbering would eventually go backwards and make
	// SnapshotStore.Latest pick a stale snapshot. The cumulative base is
	// also the global sequence the replication stream resumes from.
	newBase := s.baseSeq.Load() + s.wal.Len()
	snap.Seq = newBase
	if err := s.snaps.Save(newBase, snap, 2); err != nil {
		return err
	}
	if err := s.wal.Truncate(); err != nil {
		return err
	}
	s.baseSeq.Store(newBase)
	// The base moved: wake followers so they re-resolve their position.
	s.notifyCommit()
	return nil
}

// snapshotStateLocked captures the full state as one consistent cut.
// Callers hold the write lock. It drains the group committer first: the
// captured state already contains every enqueued mutation, so any record
// still in the queue must reach the WAL before the capture's sequence
// number is read (and, for Snapshot, before Truncate). The write lock
// keeps new records from being enqueued behind the flush.
func (s *System) snapshotStateLocked() (snapshotState, error) {
	if s.committer != nil {
		if err := s.committer.Flush(); err != nil {
			return snapshotState{}, err
		}
	}
	auths, next := s.store.Snapshot()
	snap := snapshotState{
		Term:       s.term.Load(),
		Graph:      graph.ToSpec(s.root),
		Profiles:   s.profiles.Snapshot(),
		Auths:      auths,
		NextAuthID: next,
		Events:     s.moves.Snapshot(),
		Clock:      s.engine.Now(),
		Boundaries: s.bounds,
	}
	for _, r := range s.ruleEng.Rules() {
		spec, ok := rules.SpecOf(r)
		if !ok {
			return snapshotState{}, fmt.Errorf("core: rule %q uses customized operators and cannot be persisted", r.Name)
		}
		snap.Rules = append(snap.Rules, spec)
	}
	return snap, nil
}

// --- Replication (primary side) ----------------------------------------

// ReplicationInfo describes the primary's position in the global record
// sequence: BaseSeq is the sequence of the first record in the current
// WAL (everything before it is compacted into the latest snapshot), and
// TotalSeq the sequence after the last FSYNCED record — the stream ships
// only durable records, so a primary crash can never retract a sequence
// number a follower has already applied.
type ReplicationInfo struct {
	Durable  bool   `json:"durable"`
	BaseSeq  uint64 `json:"base_seq"`
	TotalSeq uint64 `json:"total_seq"`
	// Term is the promotion epoch the records are written under.
	Term uint64 `json:"term"`
}

// ReplicationInfo reports the log-shipping coordinates. The read lock
// makes the (BaseSeq, TotalSeq) pair a consistent cut against a
// concurrent Snapshot compaction — and because Snapshot truncates the
// WAL and publishes the new base inside one write critical section, a
// reader that loads an unchanged BaseSeq AFTER reading log bytes knows
// no compaction preceded those reads (the stream handlers rely on this
// to validate each batch before shipping it).
func (s *System) ReplicationInfo() ReplicationInfo {
	if s.wal == nil {
		return ReplicationInfo{}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	base := s.baseSeq.Load()
	return ReplicationInfo{Durable: true, BaseSeq: base, TotalSeq: base + s.wal.DurableLen(), Term: s.term.Load()}
}

// WALPath returns the live log's file path (empty without durability) —
// what a same-host follower or the replication stream endpoint tails.
func (s *System) WALPath() string { return s.walPath }

// CaptureBootstrap captures the full state a follower needs to start
// replicating: the marshaled snapshot state, the global sequence number
// the follower should tail from, and the primary's derivation mode
// (derived authorizations are not logged, so the follower must re-derive
// them exactly like the primary). The capture flushes the group
// committer, so every acknowledged mutation is either inside the state
// or after seq in the WAL — never both, never neither.
func (s *System) CaptureBootstrap() (seq uint64, autoDerive bool, state json.RawMessage, err error) {
	if s.wal == nil {
		return 0, false, nil, errors.New("core: replication requires durability (set Config.DataDir)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, err := s.snapshotStateLocked()
	if err != nil {
		return 0, false, nil, err
	}
	// The captured state includes every applied mutation, so the capture
	// sequence must count all of them — and they must be durable, or a
	// crash could retract records the bootstrap already claims. A
	// relaxed fsync cadence (SyncEvery > 1) can leave an unsynced tail;
	// sync it now.
	if err := s.wal.Sync(); err != nil {
		return 0, false, nil, err
	}
	seq = s.baseSeq.Load() + s.wal.DurableLen()
	snap.Seq = seq
	data, err := json.Marshal(snap)
	if err != nil {
		return 0, false, nil, err
	}
	return seq, s.autoDerive, data, nil
}
