// Package core assembles the LTAM central control station of Fig. 3: the
// authorization database, the location & movements database, the user
// profile database, the access control engine and the query engine behind
// one System facade, with optional durability (write-ahead logging plus
// snapshots) and an optional positioning front-end.
//
// The privacy stance of §1 is enforced structurally: raw coordinates
// entering through ObserveReading are resolved to primitive locations
// inside the System and discarded; only movement events are stored or
// exposed.
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/enforce"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/movement"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/storage"
)

// Config configures a System.
type Config struct {
	// Graph is the site's (multilevel) location graph. It may be nil
	// when DataDir holds a snapshot to recover it from.
	Graph *graph.Graph
	// Boundaries optionally enables the coordinate front-end
	// (ObserveReading); each primitive location used in readings needs a
	// boundary.
	Boundaries []geometry.Boundary
	// DataDir enables durability when non-empty: a WAL and snapshots
	// are kept there and recovered from on Open.
	DataDir string
	// SyncEvery is the WAL fsync cadence (1 = every mutation; 0 uses 1).
	SyncEvery int
	// AlertLimit bounds the in-memory alert log (0 = default).
	AlertLimit int
	// AutoDerive re-runs all rules after profile changes (Example 1's
	// automatic re-derivation). Defaults to true via Open.
	AutoDerive bool
}

// System is the central control station.
//
// Concurrency: mutations take the write lock, which serialises them so
// that WAL order equals apply order. Pure queries take only the read
// lock and execute in parallel with each other — they never see a
// half-applied mutation because every mutation holds the write lock
// across all the stores it touches. Per-subject Algorithm-1 results are
// memoized in an epoch-keyed cache; the epoch is derived from the
// authorization store's and profile database's mutation versions, so
// any change — including rule re-derivations triggered by profile
// watchers — invalidates exactly the stale generation.
type System struct {
	mu sync.RWMutex

	root     *graph.Graph
	flat     *graph.Flat
	profiles *profile.DB
	store    *authz.Store
	moves    *movement.DB
	alerts   *audit.Log
	engine   *enforce.Engine
	ruleEng  *rules.Engine
	resolver *geometry.Resolver
	cache    *query.Cache

	wal       *storage.WAL
	snaps     *storage.SnapshotStore
	replaying bool
}

// epoch is the cache generation: the sum of the two version counters.
// Each mutation bumps at least one of them, and both only grow, so the
// sum strictly increases across any state change that can alter an
// Algorithm-1 result.
func (s *System) epoch() uint64 {
	return s.store.Version() + s.profiles.Version()
}

// result returns the (memoized) Algorithm-1 result for sub under opts.
// Callers must treat the returned Result as read-only — it is shared
// between goroutines.
func (s *System) result(sub profile.SubjectID, opts query.Options) *query.Result {
	return s.cache.Result(s.epoch(), s.flat, s.store, sub, opts)
}

// record payloads.
type (
	idPayload   struct{ ID authz.ID }
	namePayload struct{ Name string }
	subjPayload struct{ ID profile.SubjectID }
	movePayload struct {
		T interval.Time
		S profile.SubjectID
		L graph.ID
	}
	tickPayload     struct{ T interval.Time }
	strategyPayload struct{ Strategy int }
)

// snapshotState is the persisted full state.
type snapshotState struct {
	Graph      graph.Spec            `json:"graph"`
	Profiles   []profile.Subject     `json:"profiles"`
	Auths      []authz.Authorization `json:"auths"`
	NextAuthID authz.ID              `json:"next_auth_id"`
	Rules      []rules.Spec          `json:"rules"`
	Events     []movement.Event      `json:"events"`
	Clock      interval.Time         `json:"clock"`
}

// Open builds a System from cfg, recovering from DataDir when set.
func Open(cfg Config) (*System, error) {
	s := &System{
		profiles: profile.NewDB(),
		store:    authz.NewStore(),
		moves:    movement.NewDB(),
		alerts:   audit.NewLog(cfg.AlertLimit),
		cache:    query.NewCache(0),
	}

	var snap snapshotState
	haveSnap := false
	if cfg.DataDir != "" {
		var err error
		s.snaps, err = storage.NewSnapshotStore(filepath.Join(cfg.DataDir, "snapshots"))
		if err != nil {
			return nil, err
		}
		if _, ok, err := s.snaps.Latest(&snap); err != nil {
			return nil, err
		} else if ok {
			haveSnap = true
		}
	}

	// Resolve the graph: explicit config wins; otherwise the snapshot.
	switch {
	case cfg.Graph != nil:
		s.root = cfg.Graph
	case haveSnap:
		g, err := graph.FromSpec(snap.Graph)
		if err != nil {
			return nil, fmt.Errorf("core: recover graph: %w", err)
		}
		s.root = g
	default:
		return nil, errors.New("core: no location graph (set Config.Graph or recover from a snapshot)")
	}
	if err := s.root.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.flat = graph.Expand(s.root)

	if len(cfg.Boundaries) > 0 {
		r, err := geometry.NewResolver(cfg.Boundaries)
		if err != nil {
			return nil, err
		}
		s.resolver = r
	}

	eng, err := enforce.New(s.root, s.store, s.moves, s.alerts)
	if err != nil {
		return nil, err
	}
	s.engine = eng
	s.ruleEng = rules.NewEngine(s.store, s.profiles, s.root, cfg.AutoDerive)

	// Restore the snapshot state.
	if haveSnap {
		if err := s.profiles.Restore(snap.Profiles); err != nil {
			return nil, fmt.Errorf("core: recover profiles: %w", err)
		}
		if err := s.store.Restore(snap.Auths, snap.NextAuthID); err != nil {
			return nil, fmt.Errorf("core: recover auths: %w", err)
		}
		for _, spec := range snap.Rules {
			r, err := spec.Compile()
			if err != nil {
				return nil, fmt.Errorf("core: recover rule %q: %w", spec.Name, err)
			}
			if err := s.ruleEng.RestoreRule(r); err != nil {
				return nil, err
			}
		}
		if err := s.moves.Restore(snap.Events); err != nil {
			return nil, fmt.Errorf("core: recover movements: %w", err)
		}
		if err := s.engine.SetClock(snap.Clock); err != nil {
			return nil, err
		}
	}

	// Replay the WAL suffix, then open it for appending.
	if cfg.DataDir != "" {
		walPath := filepath.Join(cfg.DataDir, "wal.log")
		s.replaying = true
		_, err := storage.Replay(walPath, s.apply)
		s.replaying = false
		if err != nil {
			return nil, fmt.Errorf("core: replay: %w", err)
		}
		sync := cfg.SyncEvery
		if sync <= 0 {
			sync = 1
		}
		s.wal, err = storage.OpenWAL(walPath, sync)
		if err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Close flushes and closes the WAL.
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}

// apply dispatches one WAL record during recovery.
func (s *System) apply(rec storage.Record) error {
	switch rec.Type {
	case "profile.put":
		var sub profile.Subject
		if err := json.Unmarshal(rec.Data, &sub); err != nil {
			return err
		}
		return s.PutSubject(sub)
	case "profile.remove":
		var p subjPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.RemoveSubject(p.ID)
	case "authz.add":
		var a authz.Authorization
		if err := json.Unmarshal(rec.Data, &a); err != nil {
			return err
		}
		a.ID = 0 // re-assigned deterministically
		_, err := s.AddAuthorization(a)
		return err
	case "authz.resolve":
		var p strategyPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.ResolveConflicts(authz.Strategy(p.Strategy))
		return err
	case "authz.revoke":
		var p idPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.RevokeAuthorization(p.ID)
		return err
	case "rule.add":
		var spec rules.Spec
		if err := json.Unmarshal(rec.Data, &spec); err != nil {
			return err
		}
		_, err := s.AddRule(spec)
		return err
	case "rule.remove":
		var p namePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.RemoveRule(p.Name)
	case "move.enter":
		var p movePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.Enter(p.T, p.S, p.L)
		return err
	case "move.leave":
		var p movePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.Leave(p.T, p.S)
	case "tick":
		var p tickPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.Tick(p.T)
		return err
	default:
		return fmt.Errorf("core: unknown record type %q", rec.Type)
	}
}

// log appends a mutation record unless durability is off or we are
// replaying.
func (s *System) log(typ string, v any) error {
	if s.wal == nil || s.replaying {
		return nil
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return s.wal.Append(storage.Record{Type: typ, Data: data})
}

// --- Profile administration -------------------------------------------

// PutSubject inserts or updates a user profile.
func (s *System) PutSubject(sub profile.Subject) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.profiles.Put(sub); err != nil {
		return err
	}
	return s.log("profile.put", sub)
}

// RemoveSubject deletes a user profile.
func (s *System) RemoveSubject(id profile.SubjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.profiles.Remove(id); err != nil {
		return err
	}
	return s.log("profile.remove", subjPayload{ID: id})
}

// GetSubject returns a user profile.
func (s *System) GetSubject(id profile.SubjectID) (profile.Subject, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.profiles.Get(id)
}

// Subjects lists all subject IDs.
func (s *System) Subjects() []profile.SubjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.profiles.Subjects()
}

// --- Authorization administration ---------------------------------------

// AddAuthorization validates that the location is a primitive location of
// the site graph, stores the authorization, and logs it.
func (s *System) AddAuthorization(a authz.Authorization) (authz.Authorization, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.flat.Index[a.Location]; !ok {
		return authz.Authorization{}, fmt.Errorf("core: %q is not a primitive location of %q", a.Location, s.root.Name())
	}
	stored, err := s.store.Add(a)
	if err != nil {
		return authz.Authorization{}, err
	}
	if err := s.log("authz.add", stored); err != nil {
		return authz.Authorization{}, err
	}
	return stored, nil
}

// RevokeAuthorization revokes an authorization and everything derived
// from it, returning how many were removed.
func (s *System) RevokeAuthorization(id authz.ID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, err := s.ruleEng.RevokeBase(id)
	if err != nil {
		return 0, err
	}
	return n, s.log("authz.revoke", idPayload{ID: id})
}

// Authorizations lists every stored authorization.
func (s *System) Authorizations() []authz.Authorization {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.All()
}

// AuthorizationsFor lists the authorizations of subject sub at location l.
func (s *System) AuthorizationsFor(sub profile.SubjectID, l graph.ID) []authz.Authorization {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.For(sub, l)
}

// Conflicts reports duplicate/overlapping/adjacent authorization pairs.
func (s *System) Conflicts() []authz.Conflict {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.FindConflicts()
}

// ResolveConflicts applies the strategy to every detected conflict among
// administrator-defined authorizations (the paper's two §4 options:
// combining, or discarding one). The resolution is durably logged.
func (s *System) ResolveConflicts(strategy authz.Strategy) ([]authz.Resolution, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	res, err := s.store.ResolveConflicts(strategy)
	if err != nil {
		return res, err
	}
	if len(res) == 0 {
		return res, nil
	}
	return res, s.log("authz.resolve", strategyPayload{Strategy: int(strategy)})
}

// --- Rules ---------------------------------------------------------------

// AddRule compiles, registers and immediately derives the rule.
func (s *System) AddRule(spec rules.Spec) (rules.Report, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, err := spec.Compile()
	if err != nil {
		return rules.Report{}, err
	}
	rep, err := s.ruleEng.AddRule(r)
	if err != nil {
		return rules.Report{}, err
	}
	return rep, s.log("rule.add", spec)
}

// RemoveRule deletes a rule and revokes its derivations.
func (s *System) RemoveRule(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.ruleEng.RemoveRule(name); err != nil {
		return err
	}
	return s.log("rule.remove", namePayload{Name: name})
}

// Rules lists the registered rules.
func (s *System) Rules() []rules.Rule {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ruleEng.Rules()
}

// RuleEngine exposes the rule engine for programmatic (non-persistent)
// customized operators. Mutations through it bypass the System write
// lock and the WAL: they are epoch-safe (the store bumps its version),
// but are not atomic with respect to concurrent readers — use it for
// setup before serving traffic, or mutate via System methods.
func (s *System) RuleEngine() *rules.Engine { return s.ruleEng }

// --- Enforcement -----------------------------------------------------------

// Request evaluates the access request (t, sub, l) — Definition 6/7.
// Requests are pure reads of the authorization and movement databases
// (plus a monotonic clock advance), so they run under the read lock, in
// parallel with each other and with every other query.
func (s *System) Request(t interval.Time, sub profile.SubjectID, l graph.ID) enforce.Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Request(t, sub, l)
}

// Query is Request without side effects.
func (s *System) Query(t interval.Time, sub profile.SubjectID, l graph.ID) enforce.Decision {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Query(t, sub, l)
}

// Enter records subject sub entering location l at time t.
func (s *System) Enter(t interval.Time, sub profile.SubjectID, l graph.ID) (enforce.Decision, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, err := s.engine.Enter(t, sub, l)
	if err != nil {
		return d, err
	}
	return d, s.log("move.enter", movePayload{T: t, S: sub, L: l})
}

// Leave records subject sub leaving its current location at time t.
func (s *System) Leave(t interval.Time, sub profile.SubjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.engine.Leave(t, sub); err != nil {
		return err
	}
	return s.log("move.leave", movePayload{T: t, S: sub})
}

// Tick advances the clock and runs the overstay monitor.
func (s *System) Tick(t interval.Time) ([]audit.Alert, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	raised, err := s.engine.Tick(t)
	if err != nil {
		return nil, err
	}
	return raised, s.log("tick", tickPayload{T: t})
}

// ObserveReading ingests one positioning sample: the coordinate is
// resolved to a primitive location (or outside) and converted into the
// corresponding movement, if any. The coordinate itself is discarded —
// the §1 privacy boundary.
func (s *System) ObserveReading(t interval.Time, sub profile.SubjectID, at geometry.Point) (enforce.Decision, bool, error) {
	if s.resolver == nil {
		return enforce.Decision{}, false, errors.New("core: no boundaries configured")
	}
	loc := graph.ID(s.resolver.Resolve(at))
	cur, inside := s.moves.CurrentLocation(sub)
	switch {
	case loc == "" && !inside:
		return enforce.Decision{}, false, nil
	case loc == "" && inside:
		return enforce.Decision{}, true, s.Leave(t, sub)
	case inside && loc == cur:
		return enforce.Decision{}, false, nil
	default:
		d, err := s.Enter(t, sub, loc)
		return d, err == nil, err
	}
}

// --- Queries -----------------------------------------------------------------

// Inaccessible runs Algorithm 1 for the subject over the whole site.
// Repeated queries between mutations are served from the epoch cache;
// the returned slice is shared with other callers and must be treated
// as read-only.
func (s *System) Inaccessible(sub profile.SubjectID) []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.result(sub, query.Options{}).Inaccessible
}

// InaccessibleTrace runs Algorithm 1 with a Table-2-style trace. Traced
// runs always recompute (the trace is the product, not the answer).
func (s *System) InaccessibleTrace(sub profile.SubjectID) query.Result {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.FindInaccessible(s.flat, s.store, sub, query.Options{Trace: true})
}

// InaccessibleDuring restricts Algorithm 1 to visits starting within
// window (§6's access request duration). Like Inaccessible, the
// returned slice is shared with other callers — read-only.
func (s *System) InaccessibleDuring(sub profile.SubjectID, window interval.Interval) []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.result(sub, query.Options{Window: window}).Inaccessible
}

// Accessible is the complement query of §5. It shares the memoized
// Algorithm-1 run with Inaccessible rather than recomputing it.
func (s *System) Accessible(sub profile.SubjectID) []graph.ID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.AccessibleFrom(s.flat, s.result(sub, query.Options{}))
}

// EarliestAccess returns the earliest time sub can be inside l via an
// authorized route, and whether l is reachable at all. It reads the
// memoized Algorithm-1 state: T^g(l) is exactly the set of instants at
// which sub can be granted entry to l along some authorized route.
func (s *System) EarliestAccess(sub profile.SubjectID, l graph.ID) (interval.Time, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.earliestAccessRLocked(sub, l)
}

func (s *System) earliestAccessRLocked(sub profile.SubjectID, l graph.ID) (interval.Time, bool) {
	if _, known := s.flat.Index[l]; !known {
		return 0, false
	}
	return s.result(sub, query.Options{}).States[l].Grant.Earliest()
}

// WhoCanAccess returns every known subject (profiles plus authorization
// holders) who can reach location l via an authorized route. Each
// subject's reachability comes from its memoized Algorithm-1 run, so on
// a warm cache the inverse query costs one map lookup per subject.
func (s *System) WhoCanAccess(l graph.ID) []profile.SubjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if _, known := s.flat.Index[l]; !known {
		return nil
	}
	subjects := append(s.profiles.Subjects(), s.store.Subjects()...)
	out := query.WhoCanAccessBy(subjects, func(sub profile.SubjectID) bool {
		_, ok := s.earliestAccessRLocked(sub, l)
		return ok
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InaccessibleMultilevel runs the Lemma-1 hierarchical solver.
func (s *System) InaccessibleMultilevel(sub profile.SubjectID) query.MultilevelResult {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.FindInaccessibleMultilevel(s.root, s.store, sub)
}

// CheckRoute evaluates the §6 authorized-route definition.
func (s *System) CheckRoute(sub profile.SubjectID, r graph.Route, window interval.Interval) query.RouteCheck {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.CheckRoute(s.store, sub, r, window)
}

// CheckItinerary validates a concrete visit schedule (explicit arrive and
// depart times per location) against topology and authorizations.
func (s *System) CheckItinerary(sub profile.SubjectID, visits []query.Visit) query.ItineraryCheck {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return query.CheckItinerary(s.flat, s.store, sub, visits)
}

// WhereIs reports a subject's current location.
func (s *System) WhereIs(sub profile.SubjectID) (graph.ID, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.WhereIs(sub)
}

// Occupants reports who is inside a location now.
func (s *System) Occupants(l graph.ID) []profile.SubjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Occupants(l)
}

// ContactsOf runs the §1 contact-tracing query.
func (s *System) ContactsOf(sub profile.SubjectID, window interval.Interval) []movement.Contact {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.moves.ContactsOf(sub, window)
}

// History returns a subject's stints.
func (s *System) History(sub profile.SubjectID) []movement.Stint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.moves.History(sub)
}

// WhoWasIn returns the subjects present in l during window.
func (s *System) WhoWasIn(l graph.ID, window interval.Interval) []profile.SubjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.moves.WhoWasIn(l, window)
}

// QueryCacheStats reports the epoch cache's hit/miss/flush counters —
// the observability hook behind the server's /v1/stats endpoint.
func (s *System) QueryCacheStats() query.CacheStats { return s.cache.Stats() }

// Alerts returns the alert log.
func (s *System) Alerts() *audit.Log { return s.alerts }

// Graph returns the site graph; Flat its expansion.
func (s *System) Graph() *graph.Graph { return s.root }

// Flat returns the expanded primitive-location graph.
func (s *System) Flat() *graph.Flat { return s.flat }

// Movements exposes the movement database (read-side).
func (s *System) Movements() *movement.DB { return s.moves }

// AuthStore exposes the authorization database (read-side and benches).
// Direct mutations are epoch-safe but skip the System write lock and
// the WAL; prefer System methods.
func (s *System) AuthStore() *authz.Store { return s.store }

// Profiles exposes the profile database. Mutate via System methods when
// durability matters; direct mutations also skip the System write lock
// (though they remain epoch-safe).
func (s *System) Profiles() *profile.DB { return s.profiles }

// Clock returns the engine's logical time.
func (s *System) Clock() interval.Time { return s.engine.Now() }

// Snapshot persists the full state and compacts the WAL. It requires
// durability to be enabled.
func (s *System) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.snaps == nil || s.wal == nil {
		return errors.New("core: durability not enabled")
	}
	auths, next := s.store.Snapshot()
	snap := snapshotState{
		Graph:      graph.ToSpec(s.root),
		Profiles:   s.profiles.Snapshot(),
		Auths:      auths,
		NextAuthID: next,
		Events:     s.moves.Snapshot(),
		Clock:      s.engine.Now(),
	}
	for _, r := range s.ruleEng.Rules() {
		spec, ok := rules.SpecOf(r)
		if !ok {
			return fmt.Errorf("core: rule %q uses customized operators and cannot be persisted", r.Name)
		}
		snap.Rules = append(snap.Rules, spec)
	}
	if err := s.snaps.Save(s.wal.Len(), snap, 2); err != nil {
		return err
	}
	return s.wal.Truncate()
}
