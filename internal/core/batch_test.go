package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/storage"
)

// gridSite builds a side×side grid graph with one unit-square boundary
// per room (room (r,c) covers [c,c+1]×[r,r+1]); centers[i] is a point
// strictly inside rooms[i]. The corner room is the entry.
func gridSite(t testing.TB, side int) (*graph.Graph, []graph.ID, []geometry.Boundary, []geometry.Point) {
	t.Helper()
	g := graph.New("grid")
	id := func(r, c int) graph.ID { return graph.ID(fmt.Sprintf("r%02d_%02d", r, c)) }
	bounds, centers := geometry.UnitGrid(side, func(r, c int) string { return string(id(r, c)) })
	var rooms []graph.ID
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			rid := id(r, c)
			rooms = append(rooms, rid)
			if err := g.AddLocation(rid); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				_ = g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < side {
				_ = g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	if err := g.SetEntry(id(0, 0)); err != nil {
		t.Fatal(err)
	}
	return g, rooms, bounds, centers
}

// outsidePoint lies outside every boundary.
var outsidePoint = geometry.Point{X: -50, Y: -50}

// fullGrant authorizes sub for every room over a huge horizon.
func fullGrant(t testing.TB, sys *System, sub profile.SubjectID, rooms []graph.ID) {
	t.Helper()
	for _, room := range rooms {
		if _, err := sys.AddAuthorization(authz.New(
			interval.New(1, 1<<40), interval.New(1, 1<<41), sub, room, authz.Unlimited)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestObserveBatchSemantics checks the four per-reading cases (enter,
// same-room no-op, leave, outside no-op) plus a per-reading error that
// must not abort the batch.
func TestObserveBatchSemantics(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 2)
	sys, err := Open(Config{Graph: g, Boundaries: bounds})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	fullGrant(t, sys, "alice", rooms)

	out, err := sys.ObserveBatch([]Reading{
		{Time: 2, Subject: "alice", At: centers[0]},     // outside -> r00_00: enter
		{Time: 3, Subject: "alice", At: centers[0]},     // same room: no-op
		{Time: 4, Subject: "alice", At: centers[1]},     // r00_00 -> r00_01: enter
		{Time: 5, Subject: "alice", At: outsidePoint},   // leave
		{Time: 6, Subject: "alice", At: outsidePoint},   // outside -> outside: no-op
		{Time: 1, Subject: "alice", At: centers[0]},     // time regression: per-reading error
		{Time: 7, Subject: "alice", At: centers[0]},     // batch continues after the error
		{Time: 8, Subject: "tailgater", At: centers[0]}, // ungranted entry still records
	})
	if err != nil {
		t.Fatal(err)
	}
	wantMoved := []bool{true, false, true, true, false, false, true, true}
	for i, want := range wantMoved {
		if out[i].Moved != want {
			t.Errorf("reading %d: moved = %v, want %v (err=%v)", i, out[i].Moved, want, out[i].Err)
		}
	}
	if out[5].Err == nil {
		t.Error("time regression must surface as a per-reading error")
	}
	if !out[0].Decision.Granted || !out[2].Decision.Granted {
		t.Error("granted entries expected for alice")
	}
	if out[7].Decision.Granted {
		t.Error("tailgater must be denied")
	}
	if loc, inside := sys.WhereIs("alice"); !inside || loc != rooms[0] {
		t.Errorf("alice at %v/%v, want %v", loc, inside, rooms[0])
	}
	if loc, inside := sys.WhereIs("tailgater"); !inside || loc != rooms[0] {
		t.Errorf("tailgater at %v/%v, want %v", loc, inside, rooms[0])
	}
}

func TestObserveBatchWithoutBoundaries(t *testing.T) {
	s := openMem(t)
	defer s.Close()
	if _, err := s.ObserveBatch([]Reading{{Time: 1, Subject: "x"}}); err == nil {
		t.Error("no boundaries configured: must error")
	}
}

// TestObserveBatchEquivalentToSequential: a batch must leave the system
// in exactly the state N sequential ObserveReading calls produce.
func TestObserveBatchEquivalentToSequential(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 3)
	readings := []Reading{
		{Time: 2, Subject: "a", At: centers[0]},
		{Time: 2, Subject: "b", At: centers[0]},
		{Time: 3, Subject: "a", At: centers[1]},
		{Time: 3, Subject: "b", At: centers[3]},
		{Time: 4, Subject: "a", At: outsidePoint},
		{Time: 4, Subject: "b", At: centers[4]},
		{Time: 5, Subject: "a", At: centers[0]},
	}

	build := func() *System {
		sys, err := Open(Config{Graph: g, Boundaries: bounds})
		if err != nil {
			t.Fatal(err)
		}
		fullGrant(t, sys, "a", rooms)
		fullGrant(t, sys, "b", rooms)
		return sys
	}

	batched := build()
	defer batched.Close()
	if _, err := batched.ObserveBatch(readings); err != nil {
		t.Fatal(err)
	}

	sequential := build()
	defer sequential.Close()
	for _, r := range readings {
		if _, _, err := sequential.ObserveReading(r.Time, r.Subject, r.At); err != nil {
			t.Fatal(err)
		}
	}

	for _, sub := range []profile.SubjectID{"a", "b"} {
		bl, bi := batched.WhereIs(sub)
		sl, si := sequential.WhereIs(sub)
		if bl != sl || bi != si {
			t.Errorf("%s: batched at %v/%v, sequential at %v/%v", sub, bl, bi, sl, si)
		}
		if bh, sh := fmt.Sprint(batched.History(sub)), fmt.Sprint(sequential.History(sub)); bh != sh {
			t.Errorf("%s history diverged:\n batched    %s\n sequential %s", sub, bh, sh)
		}
	}
	if b, s := fmt.Sprint(batched.Alerts().Counts()), fmt.Sprint(sequential.Alerts().Counts()); b != s {
		t.Errorf("alert counts diverged: %s vs %s", b, s)
	}
}

// copyWAL stages a (possibly truncated) copy of src's wal.log into a
// fresh data dir and returns that dir.
func copyWAL(t *testing.T, srcDir string, size int64) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(srcDir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if size > int64(len(data)) {
		size = int64(len(data))
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal.log"), data[:size], 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestGroupCommitCrashRecovery is the torn-batch property test: an
// ObserveBatch is acknowledged only after its WAL group is fsynced, and
// a crash that tears the group mid-write recovers an atomic prefix of
// the batch — the state after replay equals applying the first k
// readings for some k, with no divergence, at every possible tear point.
func TestGroupCommitCrashRecovery(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 2)
	subjects := []profile.SubjectID{"s0", "s1", "s2", "s3", "s4", "s5"}

	dir := t.TempDir()
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subjects {
		fullGrant(t, sys, sub, rooms)
	}
	if err := sys.Close(); err != nil { // flush setup records; batch gets its own region
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	preBatch := fi.Size()
	setupRecords, err := storage.Replay(filepath.Join(dir, "wal.log"), func(storage.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}

	sys, err = Open(Config{Graph: g, Boundaries: bounds, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	readings := make([]Reading, len(subjects))
	for i, sub := range subjects {
		readings[i] = Reading{Time: 2, Subject: sub, At: centers[0]}
	}
	out, err := sys.ObserveBatch(readings)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i].Err != nil || !out[i].Moved {
			t.Fatalf("reading %d did not apply: %+v", i, out[i])
		}
	}

	// Acked => durable: WITHOUT closing (the "crash" happens now), a
	// byte-for-byte copy of the log must already contain the whole batch.
	full := copyWAL(t, dir, 1<<40)
	rec, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: full})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range subjects {
		if loc, inside := rec.WhereIs(sub); !inside || loc != rooms[0] {
			t.Fatalf("acked record lost: %s at %v/%v after crash copy", sub, loc, inside)
		}
	}
	_ = rec.Close()
	fi, err = os.Stat(filepath.Join(dir, "wal.log"))
	if err != nil {
		t.Fatal(err)
	}
	postBatch := fi.Size()
	_ = sys.Close()

	// Tear the group at every byte boundary inside the batch region.
	for cut := preBatch; cut <= postBatch; cut++ {
		cutDir := copyWAL(t, dir, cut)
		n, err := storage.Replay(filepath.Join(cutDir, "wal.log"), func(storage.Record) error { return nil })
		if err != nil {
			t.Fatalf("cut=%d: replay: %v", cut, err)
		}
		k := int(n - setupRecords) // whole movement records surviving the tear
		crashed, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: cutDir})
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		// Expected state: the first k readings applied, nothing else —
		// an atomic prefix of the batch.
		for i, sub := range subjects {
			loc, inside := crashed.WhereIs(sub)
			if i < k && (!inside || loc != rooms[0]) {
				t.Fatalf("cut=%d: prefix record %d lost (%s at %v/%v)", cut, i, sub, loc, inside)
			}
			if i >= k && inside {
				t.Fatalf("cut=%d: phantom record %d (%s inside %v)", cut, i, sub, loc)
			}
		}
		if got := crashed.Movements().Len(); got != k {
			t.Fatalf("cut=%d: %d movement events, want %d", cut, got, k)
		}
		_ = crashed.Close()
	}
}

// TestObserveBatchSyncFallback: with the committer disabled, the batched
// path appends synchronously (one AppendGroup per batch) and recovery
// still works.
func TestObserveBatchSyncFallback(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 2)
	dir := t.TempDir()
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir, DisableGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	fullGrant(t, sys, "a", rooms)
	if _, err := sys.ObserveBatch([]Reading{
		{Time: 2, Subject: "a", At: centers[0]},
		{Time: 3, Subject: "a", At: centers[1]},
	}); err != nil {
		t.Fatal(err)
	}
	if st := sys.CommitStats(); st.Batches != 0 {
		t.Errorf("committer disabled but stats = %+v", st)
	}
	_ = sys.Close()

	rec, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir, DisableGroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if loc, inside := rec.WhereIs("a"); !inside || loc != rooms[1] {
		t.Errorf("a at %v/%v, want %v", loc, inside, rooms[1])
	}
}

// TestRelaxedSyncSkipsCommitter: SyncEvery > 1 opted out of durable
// acks, so group commit (which fsyncs every batch) must stay off and
// the old one-fsync-per-N inline semantics apply.
func TestRelaxedSyncSkipsCommitter(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 2)
	dir := t.TempDir()
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir, SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	fullGrant(t, sys, "a", rooms)
	if _, err := sys.ObserveBatch([]Reading{{Time: 2, Subject: "a", At: centers[0]}}); err != nil {
		t.Fatal(err)
	}
	if st := sys.CommitStats(); st.Batches != 0 || st.Records != 0 {
		t.Errorf("SyncEvery=100 must not engage the committer: %+v", st)
	}
	_ = sys.Close() // Close flushes, so the records survive
	rec, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir, SyncEvery: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if loc, inside := rec.WhereIs("a"); !inside || loc != rooms[0] {
		t.Errorf("a at %v/%v, want %v", loc, inside, rooms[0])
	}
}

// TestSnapshotWithMaxDelayIsPrompt: Snapshot flushes the committer while
// holding the write lock; the flush must force an immediate commit, not
// wait out a configured linger window (during which no straggler could
// arrive anyway — the write lock blocks every producer). The single
// setup mutation is an ungranted entry, which is still recorded, so the
// test pays the linger only once.
func TestSnapshotWithMaxDelayIsPrompt(t *testing.T) {
	g, _, bounds, centers := gridSite(t, 2)
	const linger = 800 * time.Millisecond
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: t.TempDir(),
		CommitMaxDelay: linger})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.ObserveBatch([]Reading{{Time: 2, Subject: "a", At: centers[0]}}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := sys.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > linger/2 {
		t.Fatalf("Snapshot stalled %v behind CommitMaxDelay %v", elapsed, linger)
	}
}

// TestSnapshotDrainsCommitter: a snapshot taken right after mutations
// must not lose queued group-commit records nor replay them twice.
func TestSnapshotDrainsCommitter(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 2)
	dir := t.TempDir()
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	fullGrant(t, sys, "a", rooms)
	if _, err := sys.ObserveBatch([]Reading{{Time: 2, Subject: "a", At: centers[0]}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ObserveBatch([]Reading{{Time: 3, Subject: "a", At: centers[1]}}); err != nil {
		t.Fatal(err)
	}
	_ = sys.Close()

	rec, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if loc, inside := rec.WhereIs("a"); !inside || loc != rooms[1] {
		t.Errorf("a at %v/%v, want %v", loc, inside, rooms[1])
	}
	// enter + (implicit exit + enter) = 3 events; more would mean the
	// suffix was replayed on top of a snapshot that already contained it.
	if got := rec.Movements().Len(); got != 3 {
		t.Errorf("movement events = %d, want 3 (snapshot + suffix, no double replay)", got)
	}
}

// TestObserveBatchConcurrentQueries is the -race stress test: batched
// movement ingest runs against concurrent cached queries, and because
// movements never change an Algorithm-1 answer, every cached answer must
// equal a fresh recomputation THROUGHOUT the storm — including bounded
// windows served via interval subsumption.
func TestObserveBatchConcurrentQueries(t *testing.T) {
	g, rooms, bounds, centers := gridSite(t, 4)
	dir := t.TempDir()
	sys, err := Open(Config{Graph: g, Boundaries: bounds, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	subjects := []profile.SubjectID{"u0", "u1", "u2", "u3"}
	for _, sub := range subjects {
		// Half the grid, so answers are non-trivial in both directions.
		for _, room := range rooms[:len(rooms)/2] {
			if _, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<30), interval.New(1, 1<<31), sub, room, authz.Unlimited)); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := make(map[profile.SubjectID]string, len(subjects))
	for _, sub := range subjects {
		want[sub] = fmt.Sprint(freshInaccessible(sys, sub))
	}

	iters := 30
	if testing.Short() {
		iters = 10
	}
	var wg sync.WaitGroup
	// Ingest: each subject's feed batches a bounce between two rooms.
	wg.Add(1)
	go func() {
		defer wg.Done()
		clock := interval.Time(2)
		for i := 0; i < iters; i++ {
			// Movement events must be globally time-ordered: all the
			// entries at clock, then all the exits at clock+1.
			batch := make([]Reading, 0, 2*len(subjects))
			for j, sub := range subjects {
				batch = append(batch, Reading{Time: clock, Subject: sub, At: centers[j%2]})
			}
			for _, sub := range subjects {
				batch = append(batch, Reading{Time: clock + 1, Subject: sub, At: outsidePoint})
			}
			out, err := sys.ObserveBatch(batch)
			if err != nil {
				t.Error(err)
				return
			}
			for k := range out {
				if out[k].Err != nil {
					t.Errorf("reading %d: %v", k, out[k].Err)
					return
				}
			}
			clock += 2
		}
	}()
	// Queries: cached == fresh, live, for both window shapes.
	for _, sub := range subjects {
		wg.Add(1)
		go func(sub profile.SubjectID) {
			defer wg.Done()
			wide := interval.New(0, 1<<35) // subsumes every auth window
			for i := 0; i < iters*4; i++ {
				if got := fmt.Sprint(sys.Inaccessible(sub)); got != want[sub] {
					t.Errorf("%s: cached %s != fresh %s", sub, got, want[sub])
					return
				}
				if got := fmt.Sprint(sys.InaccessibleDuring(sub, wide)); got != want[sub] {
					t.Errorf("%s windowed: cached %s != fresh %s", sub, got, want[sub])
					return
				}
				_, _ = sys.EarliestAccess(sub, rooms[0])
			}
		}(sub)
	}
	wg.Wait()

	for _, sub := range subjects {
		if got := fmt.Sprint(sys.Inaccessible(sub)); got != want[sub] {
			t.Errorf("after storm, %s: cached %s != fresh %s", sub, got, want[sub])
		}
	}
	if st := sys.QueryCacheStats(); st.Subsumed == 0 {
		t.Errorf("expected subsumed hits during the storm: %+v", st)
	}
	if st := sys.CommitStats(); st.Records == 0 {
		t.Errorf("expected group-committed records: %+v", st)
	}
}

// TestCacheWarming: after an epoch-changing mutation, the warmer
// re-derives recently-queried subjects so the next query is a hit.
func TestCacheWarming(t *testing.T) {
	g, rooms, _, _ := gridSite(t, 3)

	t.Run("warm-now", func(t *testing.T) {
		sys, err := Open(Config{Graph: g, DisableCacheWarm: true})
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		fullGrant(t, sys, "hot", rooms[:4])
		_ = sys.Inaccessible("hot") // make "hot" recent; miss #1
		fullGrant(t, sys, "other", rooms[:1])
		base := sys.QueryCacheStats()
		sys.WarmNow() // re-derives "hot" and "other" at the new epoch
		warmed := sys.QueryCacheStats()
		if warmed.Misses <= base.Misses {
			t.Fatalf("WarmNow did not recompute: %+v -> %+v", base, warmed)
		}
		_ = sys.Inaccessible("hot")
		after := sys.QueryCacheStats()
		if after.Misses != warmed.Misses || after.Hits != warmed.Hits+1 {
			t.Errorf("post-warm query should hit: %+v -> %+v", warmed, after)
		}
	})

	t.Run("background", func(t *testing.T) {
		sys, err := Open(Config{Graph: g}) // warming on by default
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		fullGrant(t, sys, "hot", rooms[:4])
		_ = sys.Inaccessible("hot")
		pre := sys.QueryCacheStats()
		fullGrant(t, sys, "other", rooms[:1]) // epoch moves; warmer pokes
		deadline := time.Now().Add(5 * time.Second)
		for sys.QueryCacheStats().Misses <= pre.Misses {
			if time.Now().After(deadline) {
				t.Fatalf("background warmer never recomputed: %+v", sys.QueryCacheStats())
			}
			time.Sleep(time.Millisecond)
		}
	})
}
