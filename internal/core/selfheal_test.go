package core

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/storage"
)

// healSite boots a durable primary with boundaries and one authorized
// subject, and a follower bootstrapped from it.
func healSite(t *testing.T) (*System, *Replica, *LocalSource) {
	t.Helper()
	sys, _, rooms, _ := stressReplicaSite(t, 2)
	_ = rooms
	src := &LocalSource{Primary: sys, Poll: time.Millisecond}
	rep, err := NewReplica(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return sys, rep, src
}

// compactPast moves the primary's compaction base beyond the follower's
// applied position: mutate, snapshot, mutate again.
func compactPast(t *testing.T, sys *System, rep *Replica, round int) {
	t.Helper()
	id := profile.SubjectID(string(rune('A' + round)))
	if err := sys.PutSubject(profile.Subject{ID: "healer-" + id}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := sys.PutSubject(profile.Subject{ID: "post-heal-" + id}); err != nil {
		t.Fatal(err)
	}
	if base := sys.ReplicationInfo().BaseSeq; rep.AppliedSeq() >= base {
		t.Fatalf("setup: follower at %d not behind base %d", rep.AppliedSeq(), base)
	}
}

// TestReplicaRebootstrapInPlace: the deterministic core of self-heal —
// a follower behind the compaction horizon reloads the primary's state
// wholesale into the SAME System, jumps its applied sequence, and
// serves the primary's answers again.
func TestReplicaRebootstrapInPlace(t *testing.T) {
	sys, rep, _ := healSite(t)
	followerSys := rep.System()
	compactPast(t, sys, rep, 0)

	if err := rep.Rebootstrap(); err != nil {
		t.Fatalf("rebootstrap: %v", err)
	}
	if rep.System() != followerSys {
		t.Fatal("rebootstrap replaced the System instead of healing in place")
	}
	if got, want := rep.AppliedSeq(), sys.ReplicationInfo().TotalSeq; got != want {
		t.Fatalf("applied seq %d after heal, primary at %d", got, want)
	}
	if got := rep.Status(nil).Bootstraps; got != 2 {
		t.Fatalf("bootstraps = %d, want 2", got)
	}
	// The healed follower serves the primary's post-compaction state.
	if _, err := rep.System().GetSubject("post-heal-A"); err != nil {
		t.Fatalf("healed follower missing post-compaction subject: %v", err)
	}
	gotSubs, wantSubs := rep.System().Subjects(), sys.Subjects()
	if len(gotSubs) != len(wantSubs) {
		t.Fatalf("subjects after heal: %v vs primary %v", gotSubs, wantSubs)
	}
	// And it keeps following: new primary records apply on top.
	a, err := sys.AddAuthorization(authz.New(interval.New(1, 50), interval.New(1, 60), "healer-A", sys.Flat().Nodes[0], authz.Unlimited))
	if err != nil {
		t.Fatal(err)
	}
	tailFollower(t, sys, rep)
	if got := rep.System().AuthorizationsFor("healer-A", a.Location); len(got) != 1 {
		t.Fatalf("post-heal record did not apply: %v", got)
	}
	// Mutators stay fenced throughout.
	if _, err := rep.System().AddAuthorization(a); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("mutator after heal: %v, want ErrReadOnly", err)
	}
}

// tailFollower pumps the primary's WAL into the follower from its
// applied position until it is caught up (synchronous, like the
// replicatest harness).
func tailFollower(t *testing.T, sys *System, rep *Replica) {
	t.Helper()
	src := &LocalSource{Primary: sys, Poll: time.Millisecond}
	target := sys.ReplicationInfo().TotalSeq
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err := src.Tail(ctx, rep.AppliedSeq(), func(rec storage.Record) error {
		if aerr := rep.ApplyRecord(rec); aerr != nil {
			return aerr
		}
		if rep.AppliedSeq() >= target {
			cancel()
		}
		return nil
	})
	if err != nil && !errors.Is(err, context.Canceled) && rep.AppliedSeq() < target {
		t.Fatalf("tail: %v (applied %d of %d)", err, rep.AppliedSeq(), target)
	}
}

// gateSource simulates a network partition: while the gate is closed,
// new Tail calls park (the follower cannot pull); Bootstrap and
// PrimarySeq keep working, like a control plane that outlives the
// stream.
type gateSource struct {
	inner *LocalSource
	mu    sync.Mutex
	gate  chan struct{} // non-nil while partitioned; closed to reopen
}

func (g *gateSource) Bootstrap() (uint64, bool, json.RawMessage, error) { return g.inner.Bootstrap() }
func (g *gateSource) PrimarySeq(ctx context.Context) (uint64, error)    { return g.inner.PrimarySeq(ctx) }
func (g *gateSource) Tail(ctx context.Context, from uint64, apply func(storage.Record) error) error {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		select {
		case <-gate:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return g.inner.Tail(ctx, from, apply)
}

func (g *gateSource) partition() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate == nil {
		g.gate = make(chan struct{})
	}
}

func (g *gateSource) reconnect() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
}

// TestReplicaRunSelfHeals: the full loop — the follower is partitioned
// while the primary compacts past its position; on reconnect, Run
// re-bootstraps in place and keeps following instead of exiting. Twice
// in a row.
func TestReplicaRunSelfHeals(t *testing.T) {
	sys, _, _, _ := stressReplicaSite(t, 2)
	src := &gateSource{inner: &LocalSource{Primary: sys, Poll: time.Millisecond}}
	rep, err := NewReplica(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() {
		runErr <- rep.Run(ctx, RunConfig{RetryMin: time.Millisecond, RetryMax: 5 * time.Millisecond, Refresh: 5 * time.Millisecond})
	}()

	await := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				st := rep.Status(nil)
				t.Fatalf("timed out waiting for %s (status %+v)", what, st)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	for round := 0; round < 2; round++ {
		id := profile.SubjectID(string(rune('A' + round)))
		// Partition, then compact: any live stream dies at the first
		// snapshot, reconnects park at the gate, and the second mutation +
		// compaction move the base past everything the follower has. A
		// stream that slipped through right at the partition instant just
		// means another attempt (the gate keeps later ones out).
		src.partition()
		for attempt := 0; ; attempt++ {
			if err := sys.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if err := sys.PutSubject(profile.Subject{ID: "healer-" + id}); err != nil {
				t.Fatal(err)
			}
			if err := sys.Snapshot(); err != nil {
				t.Fatal(err)
			}
			if err := sys.PutSubject(profile.Subject{ID: "post-heal-" + id}); err != nil {
				t.Fatal(err)
			}
			if rep.AppliedSeq() < sys.ReplicationInfo().BaseSeq {
				break
			}
			if attempt > 5 {
				t.Fatalf("round %d: could not put the follower behind the base (applied %d, base %d)",
					round, rep.AppliedSeq(), sys.ReplicationInfo().BaseSeq)
			}
		}
		src.reconnect()

		wantBoots := uint64(2 + round)
		await(func() bool { return rep.Status(nil).Bootstraps >= wantBoots }, "self-heal re-bootstrap")
		await(func() bool { return rep.AppliedSeq() >= sys.ReplicationInfo().TotalSeq }, "post-heal catch-up")
	}
	if _, err := rep.System().GetSubject("post-heal-B"); err != nil {
		t.Fatalf("healed follower missing second round's subject: %v", err)
	}

	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("Run after heals: %v", err)
	}

	// With self-heal disabled the same situation is terminal again.
	rep2, err := NewReplica(&LocalSource{Primary: sys, Poll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep2.Close() })
	compactPast(t, sys, rep2, 2)
	ctx2, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := rep2.Run(ctx2, RunConfig{RetryMin: time.Millisecond, DisableSelfHeal: true}); !errors.Is(err, ErrBootstrapRequired) {
		t.Fatalf("Run with DisableSelfHeal = %v, want ErrBootstrapRequired", err)
	}
}

// swapSource lets a test point an existing follower at a different
// primary mid-flight.
type swapSource struct{ ReplicaSource }

// TestRebootstrapMismatchedSite: a re-bootstrap that comes from a
// different site graph must be refused — applying it in place would
// splice two unrelated histories.
func TestRebootstrapMismatchedSite(t *testing.T) {
	sysA, _, _, _ := stressReplicaSite(t, 2)
	sysB, _, _, _ := stressReplicaSite(t, 3) // different grid
	src := &swapSource{&LocalSource{Primary: sysA, Poll: time.Millisecond}}
	rep, err := NewReplica(src)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })

	src.ReplicaSource = &LocalSource{Primary: sysB, Poll: time.Millisecond}
	if err := rep.Rebootstrap(); !errors.Is(err, ErrBootstrapMismatch) {
		t.Fatalf("rebootstrap from a different site = %v, want ErrBootstrapMismatch", err)
	}
	// The follower still serves its original site.
	if got, want := len(rep.System().Flat().Nodes), len(sysA.Flat().Nodes); got != want {
		t.Fatalf("follower site changed: %d nodes, want %d", got, want)
	}
}
