// The RCU-style read path: every mutation publishes an immutable
// readView through an atomic pointer, and every pure query runs entirely
// against the view it loads — no System lock, no store lock, no cache
// lock. See DESIGN.md D9.
package core

import (
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/movement"
	"repro/internal/profile"
	"repro/internal/query"
)

// readView is one published snapshot of everything a pure query needs:
//
//   - auths is an immutable capture of the sharded authorization store —
//     concurrent mutations publish new shard states but never touch the
//     captured ones, so every authorization read inside one query (and
//     every read of a memoized Algorithm-1 run) comes from exactly this
//     cut;
//   - memo is the epoch-pinned Algorithm-1 memo table; because the view
//     IS the epoch, hits need no version re-validation — one atomic load
//     and one lock-free table read;
//   - flat/root are immutable after Open;
//   - profiles/moves point at the live, internally-synchronized
//     databases: presence and profile lookups want current answers, and
//     nothing the epoch cache memoizes depends on them beyond the epoch
//     itself (movement changes do not move the epoch).
//
// Publication ordering: mutations apply under the System write lock and
// publish (via atomic store) before releasing it, so a reader that
// observes a mutation's view also observes every earlier mutation's
// state — WAL order = apply order = publication order.
type readView struct {
	epoch    uint64
	flat     *graph.Flat
	root     *graph.Graph
	auths    *authz.View
	profiles *profile.DB
	moves    *movement.DB
	memo     query.Generation
}

// result returns the (memoized) Algorithm-1 result for sub under opts,
// computed from and cached against this view's authorization snapshot.
// Callers must treat the returned Result as read-only — it is shared
// between goroutines.
func (v *readView) result(sub profile.SubjectID, opts query.Options) *query.Result {
	return v.memo.Result(v.flat, v.auths, sub, opts)
}

// publishLocked builds and publishes a fresh readView. Callers hold the
// write lock, which makes the capture a consistent cut: no System
// mutation can be mid-flight across the store shards. Views are reused
// when the epoch did not move (movement-only mutations), so the memo
// table survives exactly as long as it is valid.
func (s *System) publishLocked() {
	if s.replaying {
		return // Open publishes once after the replay finishes
	}
	epoch := s.epoch()
	if old := s.view.Load(); old != nil && old.epoch == epoch {
		return
	}
	s.view.Store(&readView{
		epoch:    epoch,
		flat:     s.flat,
		root:     s.root,
		auths:    s.store.View(),
		profiles: s.profiles,
		moves:    s.moves,
		memo:     s.cache.Generation(epoch),
	})
	s.publishes.Add(1)
}

// currentView returns the view queries should run against. The fast path
// is one atomic pointer load plus two atomic version loads; no mutex.
//
// A view can be stale in two ways. While a System mutation is between
// its apply and its publish, the pre-mutation view is the correct answer
// (the query linearizes before the mutation) and the writer's publish is
// imminent — TryLock fails and we serve the loaded view. After a direct
// Store/RuleEngine mutation that bypassed the System lock (the
// documented setup-only escape hatch), nobody will publish — TryLock
// succeeds and the reader repairs the view itself, preserving the
// pre-shard visibility of sequential AuthStore().Add-then-query code.
func (s *System) currentView() *readView {
	v := s.view.Load()
	if v.epoch == s.epoch() {
		return v
	}
	if s.mu.TryLock() {
		s.publishLocked()
		v = s.view.Load()
		s.mu.Unlock()
	}
	return v
}

// ViewStats reports the snapshot read path's shape for /v1/stats.
type ViewStats struct {
	// Epoch is the published view's cache generation.
	Epoch uint64 `json:"epoch"`
	// Publishes counts views published since Open (mutations that moved
	// the epoch, plus reader-side repairs after direct store mutations).
	Publishes uint64 `json:"publishes"`
	// AuthShards is the sharded store's stripe count.
	AuthShards int `json:"auth_shards"`
}

// ViewStats reports the published view's epoch, the number of views
// published, and the authorization store's shard count.
func (s *System) ViewStats() ViewStats {
	return ViewStats{
		Epoch:      s.view.Load().epoch,
		Publishes:  s.publishes.Load(),
		AuthShards: s.store.ShardCount(),
	}
}
