// Read-only replica mode: a follower System whose only mutation path is
// the primary's WAL, shipped record by record and applied in log order.
//
// The design is classic primary/follower log shipping: one durable log,
// deterministic replay. A follower bootstraps from a snapshot of the
// primary's state (tagged with the global sequence number of the next
// WAL record), then tails the log from that sequence, applying each
// record through the same dispatch that crash recovery uses. Every
// applied record publishes a fresh readView, so ALL existing lock-free
// query paths work unchanged on the follower — a replica serves exactly
// the snapshots the primary would have served at the same sequence
// number. Public mutators return ErrReadOnly; consistency is therefore
// "a prefix of the primary's history, with bounded staleness" (see
// DESIGN.md D11).
package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/storage"
)

// ErrReadOnly is returned by every public mutator of a replica System.
// The only mutation path on a follower is Replica.ApplyRecord.
var ErrReadOnly = errors.New("core: read-only replica (mutate on the primary)")

// ErrBootstrapRequired reports that the primary compacted its WAL past
// the replica's applied position: the stream cannot be resumed, and the
// follower must be rebuilt from a fresh bootstrap. Run self-heals this
// case in place (Rebootstrap) unless RunConfig.DisableSelfHeal is set,
// in which case it returns this error and the operator restarts the
// daemon.
var ErrBootstrapRequired = errors.New("core: replica fell behind a WAL compaction; fresh bootstrap required")

// ErrStaleTerm reports replication input from a primary whose promotion
// term is lower than the highest one this follower has seen: a
// resurrected stale primary is still shipping its pre-failover history.
// The frames are rejected WITHOUT being applied and without latching a
// divergence — the follower simply drops the stream and re-resolves
// toward the highest-term primary.
var ErrStaleTerm = errors.New("core: replication stream from a stale primary (lower promotion term)")

// ErrBootstrapMismatch reports a re-bootstrap whose state is not a later
// point of the same primary's history — a different site graph or a
// different rule-derivation mode. Applying it in place would splice two
// unrelated histories, so the error is terminal: rebuild the follower.
var ErrBootstrapMismatch = errors.New("core: bootstrap state does not match this replica's site")

// ReplicaSource is where a follower pulls its state and stream from. The
// wire package adapts the HTTP client to it; LocalSource adapts a
// same-process primary (tests, tools).
type ReplicaSource interface {
	// Bootstrap returns the primary's full state (the marshaled snapshot
	// a replica System is built from), the global sequence number the
	// follower should tail from, and the primary's rule-derivation mode.
	Bootstrap() (seq uint64, autoDerive bool, state json.RawMessage, err error)
	// Tail streams records with global sequence numbers >= from, in
	// order, calling apply for each. It returns nil on a benign stream
	// end (the follower reconnects and resumes from its applied
	// sequence), storage.ErrSeqGap when from has been compacted away,
	// ctx.Err() on cancellation, and any error apply returned.
	Tail(ctx context.Context, from uint64, apply func(storage.Record) error) error
	// PrimarySeq reports the primary's current TotalSeq, for lag.
	PrimarySeq(ctx context.Context) (uint64, error)
}

// TermedSource is the optional ReplicaSource extension for fencing: a
// source that knows which promotion term its current stream was shipped
// under implements it, and the Run loop refuses records whose stream
// term is lower than the highest term the follower has ever seen. A
// source that does not implement it (or reports 0) is trusted — the
// pre-failover behavior.
type TermedSource interface {
	// SourceTerm returns the promotion term of the most recently opened
	// Tail stream (0 = unknown). One stream is always shipped under one
	// term — the primary ends the stream if its term changes — so a
	// per-stream term is a per-frame term.
	SourceTerm() uint64
}

// Replica is a read-only follower: a System fed exclusively by the
// primary's WAL stream. Queries on System() are served from published
// readViews exactly as on the primary; ApplyRecord is the apply loop's
// single entry point.
type Replica struct {
	sys *System
	src ReplicaSource

	appliedSeq atomic.Uint64
	primarySeq atomic.Uint64
	connected  atomic.Bool
	applyErr   atomic.Pointer[error]
	// bootstraps counts state loads: 1 after NewReplica, +1 per in-place
	// self-heal (Rebootstrap).
	bootstraps atomic.Uint64
	// freshAt is the wall-clock nanosecond at which the follower last
	// KNEW it was caught up with the primary (applied >= the freshest
	// observed primary seq). Staleness is measured from here whenever the
	// follower cannot currently prove freshness.
	freshAt atomic.Int64

	// termHigh is the highest promotion term this follower has ever
	// seen — from its bootstrap state and from every tailed stream.
	// Records shipped under a lower term are fenced (ErrStaleTerm).
	termHigh atomic.Uint64
	// promoted latches once Promote has converted this follower into a
	// primary in place; the Run loop refuses to (re)start after it.
	promoted atomic.Bool
	// runMu guards the tail loop's cancellation plumbing so Promote can
	// stop a concurrently-running Run and wait for it to exit.
	runMu     sync.Mutex
	runCancel context.CancelFunc
	runDone   chan struct{}

	// applyMu makes {apply, relay append, appliedSeq advance} one atomic
	// step against CaptureBootstrap: a downstream bootstrap captured
	// between the apply and the sequence advance would double-apply that
	// record on the downstream node. Held by ApplyRecord, Rebootstrap and
	// CaptureBootstrap.
	applyMu sync.Mutex
	// relay, when enabled, persists every applied record's frame so this
	// follower can re-serve the replication stream and the committed-
	// event feed to a downstream tier (cascading fan-out). relayDir is
	// where relay.log (and the cursor sidecar) live.
	relay    *storage.RelayLog
	relayDir string
	// notify is the apply wakeup: one token per appliedSeq advance,
	// collapsed (capacity 1) exactly like System.CommitNotify.
	notify chan struct{}
}

// NewReplica bootstraps a follower from src: it fetches the primary's
// state, builds a read-only System from it, and positions the applied
// sequence at the bootstrap point. Call Run to start tailing.
func NewReplica(src ReplicaSource) (*Replica, error) {
	seq, autoDerive, state, err := src.Bootstrap()
	if err != nil {
		return nil, fmt.Errorf("core: replica bootstrap: %w", err)
	}
	sys, err := openReplicaSystem(state, autoDerive)
	if err != nil {
		return nil, err
	}
	r := &Replica{sys: sys, src: src, notify: make(chan struct{}, 1)}
	r.appliedSeq.Store(seq)
	r.primarySeq.Store(seq)
	r.bootstraps.Store(1)
	r.termHigh.Store(sys.Term())
	r.markFresh()
	return r, nil
}

// markFresh records "caught up as of now" for Staleness.
func (r *Replica) markFresh() { r.freshAt.Store(time.Now().UnixNano()) }

// noteObservation records one successful observation of the primary's
// durable sequence: the lag watermark moves, and covering it is proof of
// freshness as of now.
func (r *Replica) noteObservation(seq uint64) {
	storeMax(&r.primarySeq, seq)
	if r.appliedSeq.Load() >= r.primarySeq.Load() {
		r.markFresh()
	}
}

// observePrimary polls the primary's position with a bounded wait and
// feeds a success into noteObservation; failures are silent — freshness
// then simply stops renewing, which is exactly what Staleness measures.
func (r *Replica) observePrimary(ctx context.Context) {
	seqCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	if seq, err := r.src.PrimarySeq(seqCtx); err == nil {
		r.noteObservation(seq)
	}
}

// openReplicaSystem builds the follower System from a marshaled
// bootstrap state: same restore path as crash recovery, but with no
// DataDir (the primary's WAL is the only log) and the read-only gate on.
func openReplicaSystem(state json.RawMessage, autoDerive bool) (*System, error) {
	var snap snapshotState
	if err := json.Unmarshal(state, &snap); err != nil {
		return nil, fmt.Errorf("core: decode bootstrap state: %w", err)
	}
	s := newBareSystem()
	s.readOnly.Store(true)
	s.term.Store(1)
	if snap.Term > 0 {
		s.term.Store(snap.Term)
	}
	g, err := graph.FromSpec(snap.Graph)
	if err != nil {
		return nil, fmt.Errorf("core: bootstrap graph: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	s.root = g
	s.flat = graph.Expand(g)
	if err := s.initEngines(autoDerive); err != nil {
		return nil, err
	}
	if err := s.restoreSnapshot(snap); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.publishLocked()
	s.mu.Unlock()
	s.startWarm(false, 0)
	return s, nil
}

// System returns the query facade. All pure queries (Request, Query,
// Inaccessible*, Accessible, WhoCanAccess, presence, history, ...) work
// exactly as on a primary; mutators return ErrReadOnly.
func (r *Replica) System() *System { return r.sys }

// AppliedSeq is the global sequence number of the next record to apply:
// every record before it is reflected in the published readView.
func (r *Replica) AppliedSeq() uint64 { return r.appliedSeq.Load() }

// ApplyRecord applies one shipped WAL record and publishes the
// post-apply readView. Records MUST be applied in global sequence order
// — the caller (the Run loop, or a test harness) owns that ordering. An
// application error means the follower has diverged from the primary's
// deterministic replay; it is latched and terminal.
func (r *Replica) ApplyRecord(rec storage.Record) error {
	r.applyMu.Lock()
	if err := r.sys.apply(rec); err != nil {
		r.applyMu.Unlock()
		err = fmt.Errorf("core: replica apply (seq %d, %s): %w", r.appliedSeq.Load(), rec.Type, err)
		r.applyErr.Store(&err)
		return err
	}
	applied := r.appliedSeq.Load() + 1
	r.sys.trace.Stamp(applied, obs.StageReplicaApply, obs.Now())
	if r.relay != nil {
		// Re-persist the applied record for the downstream tier. A relay
		// write failure latches inside the RelayLog (this node stops
		// serving downstream) but never fails replication itself: the
		// relay is a cache, the upstream log is the record of truth.
		if body, err := json.Marshal(rec); err == nil {
			_ = r.relay.Append(body)
			r.sys.trace.Stamp(applied, obs.StageRelayAppend, obs.Now())
		}
	}
	seq := r.appliedSeq.Add(1)
	r.applyMu.Unlock()
	r.notifyApply()
	r.noteObservation(seq)
	return nil
}

// notifyApply drops an apply wakeup token; never blocks.
func (r *Replica) notifyApply() {
	select {
	case r.notify <- struct{}{}:
	default:
	}
}

// ApplyNotify returns the apply wakeup channel: a receive means the
// applied frontier may have advanced since the last receive. Sends are
// collapsed (capacity 1) — consumers re-check AppliedSeq, they do not
// count tokens. The follower-side twin of System.CommitNotify.
func (r *Replica) ApplyNotify() <-chan struct{} { return r.notify }

// EnableRelay arms cascading: every record applied from here on is
// re-persisted as a frame in dir/relay.log, positioned at the current
// applied sequence, so this follower can serve the replication stream
// and the committed-event feed to a downstream tier. Call before Run
// starts tailing. maxBytes bounds the file before it self-compacts
// (<= 0 selects storage.DefaultRelayMaxBytes).
func (r *Replica) EnableRelay(dir string, maxBytes int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("core: relay dir: %w", err)
	}
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	if r.relay != nil {
		return errors.New("core: relay already enabled")
	}
	rl, err := storage.OpenRelay(filepath.Join(dir, "relay.log"), r.appliedSeq.Load(), maxBytes)
	if err != nil {
		return err
	}
	r.relay, r.relayDir = rl, dir
	return nil
}

// Relay returns the relay log (nil when cascading is not enabled).
func (r *Replica) Relay() *storage.RelayLog { return r.relay }

// RelayDir returns the relay directory ("" when cascading is not
// enabled) — where per-node sidecar state (subscriber cursors) lives.
func (r *Replica) RelayDir() string { return r.relayDir }

// RelayInfo reports the relay's serving coordinates. ok is false when
// cascading is not enabled or the relay has latched a write failure —
// either way this node cannot serve a downstream tier right now.
func (r *Replica) RelayInfo() (base, total uint64, ok bool) {
	if r.relay == nil || r.relay.Err() != nil {
		return 0, 0, false
	}
	base, total = r.relay.Info()
	return base, total, true
}

// CaptureBootstrap captures the state a DOWNSTREAM follower bootstraps
// from: this node's full state, stamped with its applied sequence. The
// applyMu makes the cut consistent with the relay — the captured seq is
// exactly the relay's frontier, so a downstream node that restores this
// state and tails the relay from seq applies every record exactly once.
// The follower-side twin of System.CaptureBootstrap (which requires a
// WAL and therefore refuses to run on a replica).
func (r *Replica) CaptureBootstrap() (seq uint64, autoDerive bool, state json.RawMessage, err error) {
	r.applyMu.Lock()
	defer r.applyMu.Unlock()
	s := r.sys
	s.mu.Lock()
	snap, serr := s.snapshotStateLocked()
	s.mu.Unlock()
	if serr != nil {
		return 0, false, nil, serr
	}
	seq = r.appliedSeq.Load()
	snap.Seq = seq
	data, merr := json.Marshal(snap)
	if merr != nil {
		return 0, false, nil, merr
	}
	return seq, s.autoDerive, data, nil
}

// ApplyTermRecord is ApplyRecord with the fencing check: a record
// shipped under a promotion term lower than the highest one this
// follower has seen is refused with ErrStaleTerm — nothing is applied
// and no divergence is latched, because a stale primary's stream is an
// expected (and recoverable) fleet condition, not corruption. A record
// from an equal or higher term is applied and advances the highest-seen
// term. term 0 means "source has no term plane" and is trusted.
func (r *Replica) ApplyTermRecord(term uint64, rec storage.Record) error {
	if term > 0 {
		if high := r.termHigh.Load(); term < high {
			return fmt.Errorf("%w: stream term %d < highest seen %d", ErrStaleTerm, term, high)
		}
		storeMax(&r.termHigh, term)
		storeMax(&r.sys.term, term)
	}
	return r.ApplyRecord(rec)
}

// Term returns the highest promotion term this follower has seen.
func (r *Replica) Term() uint64 { return r.termHigh.Load() }

// Promoted reports whether Promote has converted this follower into a
// primary.
func (r *Replica) Promoted() bool { return r.promoted.Load() }

// Err returns the latched apply divergence, if any.
func (r *Replica) Err() error {
	if p := r.applyErr.Load(); p != nil {
		return *p
	}
	return nil
}

// ReplicaStatus is the follower's replication position for /v1/stats.
type ReplicaStatus struct {
	// AppliedSeq is the next global sequence to apply; PrimarySeq the
	// primary's TotalSeq as of the last observation; Lag the difference.
	AppliedSeq uint64 `json:"applied_seq"`
	PrimarySeq uint64 `json:"primary_seq"`
	Lag        uint64 `json:"lag"`
	// Connected reports whether the tail loop currently holds a stream.
	Connected bool `json:"connected"`
	// Bootstraps counts state loads (1 = the initial bootstrap; more
	// means Run self-healed across a primary compaction).
	Bootstraps uint64 `json:"bootstraps"`
	// Staleness is how long the follower has been unable to prove it is
	// caught up (0 when it can) — the quantity a -follow-lag-max read
	// barrier bounds.
	Staleness time.Duration `json:"staleness_ns"`
}

// Status reports the replication position. When ctx is non-nil it
// refreshes PrimarySeq from the source best-effort (errors leave the
// last observation in place), so lag is exact when the primary is
// reachable and bounded-stale otherwise. Pass nil ctx for a purely
// local answer (no round-trip to the primary) — served from the last
// observation maintained by the apply loop.
func (r *Replica) Status(ctx context.Context) ReplicaStatus {
	if ctx != nil && r.src != nil {
		if seq, err := r.src.PrimarySeq(ctx); err == nil {
			r.noteObservation(seq)
		}
	}
	applied := r.appliedSeq.Load()
	primary := r.primarySeq.Load()
	lag := uint64(0)
	if primary > applied {
		lag = primary - applied
	}
	return ReplicaStatus{
		AppliedSeq: applied,
		PrimarySeq: primary,
		Lag:        lag,
		Connected:  r.connected.Load(),
		Bootstraps: r.bootstraps.Load(),
		Staleness:  r.Staleness(),
	}
}

// Staleness reports how long the follower has gone without PROOF that
// it is caught up with its primary. Proof is an actual observation —
// applying a record that covers the newest known primary sequence, or a
// successful PrimarySeq poll the applied position covers — never the
// mere absence of traffic: an open stream with a silent peer looks
// identical to a blackholed one, so an idle connection must not renew
// freshness on its own (the Run loop's Refresh poll does, as long as
// the primary actually answers). This is the quantity the
// -follow-lag-max read barrier compares against its bound; set the
// bound above the refresh cadence.
func (r *Replica) Staleness() time.Duration {
	return time.Duration(time.Now().UnixNano() - r.freshAt.Load())
}

// RunConfig tunes the tail loop.
type RunConfig struct {
	// RetryMin/RetryMax bound the reconnect backoff (defaults 100ms/2s).
	RetryMin, RetryMax time.Duration
	// Refresh is the cadence at which the loop re-observes the primary's
	// TotalSeq while a stream is open (default 1s). The observation is
	// what makes Lag and Staleness honest under a saturated stream: the
	// stream itself only proves how far the follower got, not how far the
	// primary is.
	Refresh time.Duration
	// DisableSelfHeal restores the pre-self-heal contract: when the
	// primary compacts past the follower's position, Run returns
	// ErrBootstrapRequired instead of re-bootstrapping in place.
	DisableSelfHeal bool
	// DisableJitter makes the reconnect backoff exact (tests). By default
	// each wait is equal-jittered — half fixed, half uniform-random — so
	// a fleet of followers cut loose by one primary restart does not
	// reconnect in lockstep and stampede it.
	DisableJitter bool
}

// jitterSleep waits out d with equal jitter (d/2 fixed + uniform [0,d/2])
// unless disabled, honouring ctx. Returns false when ctx ended first.
func jitterSleep(ctx context.Context, d time.Duration, disable bool) bool {
	if !disable && d > 1 {
		d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	}
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// Run is the follower apply loop: tail from the applied sequence, apply
// every record, reconnect with backoff on benign stream ends. When the
// primary compacts past the follower's position it self-heals: a fresh
// bootstrap is fetched and restored IN PLACE (same System, same served
// pointer — queries keep working throughout, serving the last applied
// state until the new one is published). It returns nil when ctx is
// canceled, the apply error on divergence, ErrBootstrapMismatch when a
// re-bootstrap came from a different site, and ErrBootstrapRequired only
// with RunConfig.DisableSelfHeal set.
func (r *Replica) Run(ctx context.Context, cfg ...RunConfig) error {
	if r.promoted.Load() {
		return nil
	}
	// Register the loop's cancellation plumbing so Promote can stop a
	// running tail loop and wait for it to drain before converting the
	// follower in place.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	done := make(chan struct{})
	r.runMu.Lock()
	r.runCancel, r.runDone = cancel, done
	r.runMu.Unlock()
	defer func() {
		r.runMu.Lock()
		if r.runDone == done {
			r.runCancel, r.runDone = nil, nil
		}
		r.runMu.Unlock()
		close(done)
	}()

	retryMin, retryMax, refresh := 100*time.Millisecond, 2*time.Second, time.Second
	disableSelfHeal, disableJitter := false, false
	if len(cfg) > 0 {
		if cfg[0].RetryMin > 0 {
			retryMin = cfg[0].RetryMin
		}
		if cfg[0].RetryMax > 0 {
			retryMax = cfg[0].RetryMax
		}
		if cfg[0].Refresh > 0 {
			refresh = cfg[0].Refresh
		}
		disableSelfHeal = cfg[0].DisableSelfHeal
		disableJitter = cfg[0].DisableJitter
	}

	// Periodic primary-seq observation, independent of the (blocking)
	// Tail call, so lag and staleness stay honest mid-stream.
	refCtx, refCancel := context.WithCancel(ctx)
	defer refCancel()
	go func() {
		ticker := time.NewTicker(refresh)
		defer ticker.Stop()
		for {
			select {
			case <-refCtx.Done():
				return
			case <-ticker.C:
				r.observePrimary(refCtx)
			}
		}
	}()

	// When the source carries the term plane, every record passes the
	// fencing check before it is applied: a stream shipped under a term
	// lower than the highest seen is a resurrected stale primary, and
	// its records must be dropped (ErrStaleTerm ends the stream; the
	// reconnect re-resolves toward the highest-term primary).
	apply := r.ApplyRecord
	if ts, ok := r.src.(TermedSource); ok {
		apply = func(rec storage.Record) error {
			return r.ApplyTermRecord(ts.SourceTerm(), rec)
		}
	}

	backoff := retryMin
	for {
		// Observe the primary's position with a bounded wait: an
		// unreachable primary must cost one timeout, not an unbounded
		// dial hang, before the reconnect backoff takes over.
		r.observePrimary(ctx)
		r.connected.Store(true)
		err := r.src.Tail(ctx, r.appliedSeq.Load(), apply)
		r.connected.Store(false)
		switch {
		case ctx.Err() != nil:
			return nil
		case errors.Is(err, storage.ErrSeqGap):
			if disableSelfHeal {
				return fmt.Errorf("%w (applied %d)", ErrBootstrapRequired, r.appliedSeq.Load())
			}
			// Self-heal: the records between our position and the new
			// base are gone from the log, but their effects are inside
			// the primary's current state — load that state in place and
			// resume tailing from its sequence.
			if herr := r.Rebootstrap(); herr != nil {
				if errors.Is(herr, ErrBootstrapMismatch) {
					return herr
				}
				// Transient (primary unreachable mid-heal): back off and
				// retry the heal on the next pass.
			} else {
				backoff = retryMin
				continue
			}
		case r.Err() != nil:
			return r.Err()
		}
		if err == nil {
			// A clean stream end means the primary rotated or closed the
			// stream; resume promptly.
			backoff = retryMin
		}
		if !jitterSleep(ctx, backoff, disableJitter) {
			return nil
		}
		if backoff *= 2; backoff > retryMax {
			backoff = retryMax
		}
	}
}

// Rebootstrap fetches a fresh bootstrap from the source and restores it
// into the follower IN PLACE: the same System keeps serving (readers see
// the pre-heal view until the restored state is published in one write
// critical section), and the applied sequence jumps to the bootstrap
// point. It is how Run survives the primary compacting past the
// follower's position without a daemon restart. The bootstrap must come
// from the same site (graph and derivation mode); anything else returns
// ErrBootstrapMismatch.
func (r *Replica) Rebootstrap() error {
	seq, autoDerive, state, err := r.src.Bootstrap()
	if err != nil {
		return fmt.Errorf("core: replica re-bootstrap: %w", err)
	}
	if autoDerive != r.sys.autoDerive {
		return fmt.Errorf("%w: derivation mode changed (primary autoDerive=%v)", ErrBootstrapMismatch, autoDerive)
	}
	// Fencing covers bootstraps too: restoring a stale primary's state
	// would rewind the follower past history a higher-term primary has
	// already extended.
	var probe struct {
		Term uint64 `json:"term"`
	}
	_ = json.Unmarshal(state, &probe)
	if high := r.termHigh.Load(); probe.Term > 0 && probe.Term < high {
		return fmt.Errorf("%w: bootstrap term %d < highest seen %d", ErrStaleTerm, probe.Term, high)
	}
	r.applyMu.Lock()
	if err := r.sys.rebootstrap(state); err != nil {
		r.applyMu.Unlock()
		return err
	}
	if probe.Term > 0 {
		storeMax(&r.termHigh, probe.Term)
		storeMax(&r.sys.term, probe.Term)
	}
	r.appliedSeq.Store(seq)
	if r.relay != nil {
		// The relay's history no longer joins up with the new position:
		// restart it empty at the bootstrap point. Downstream followers
		// see the truncation (ErrWALReset/410) and re-bootstrap from this
		// node — the cascade self-heals tier by tier.
		_ = r.relay.Reset(seq)
	}
	r.applyMu.Unlock()
	r.notifyApply()
	storeMax(&r.primarySeq, seq)
	r.bootstraps.Add(1)
	r.markFresh()
	return nil
}

// rebootstrap replaces a follower System's state with a marshaled
// bootstrap snapshot, in place: profiles, authorizations, rules,
// movements and the clock are restored wholesale under the write lock
// and a fresh view is published, exactly like crash recovery — but into
// a System that concurrent readers keep querying throughout.
func (s *System) rebootstrap(state json.RawMessage) error {
	var snap snapshotState
	if err := json.Unmarshal(state, &snap); err != nil {
		return fmt.Errorf("core: decode re-bootstrap state: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The graph is immutable after Open and every engine is wired over
	// it: a bootstrap with a different site cannot be applied in place.
	cur, err := json.Marshal(graph.ToSpec(s.root))
	if err != nil {
		return err
	}
	next, err := json.Marshal(snap.Graph)
	if err != nil {
		return err
	}
	if !bytes.Equal(cur, next) {
		return fmt.Errorf("%w: site graph changed", ErrBootstrapMismatch)
	}
	// Restore replaces every database wholesale (each bumps its version,
	// so the epoch moves and no memoized answer survives); rules are
	// reset first because the restored store already holds their derived
	// rows.
	s.ruleEng.Reset()
	if err := s.restoreSnapshot(snap); err != nil {
		return fmt.Errorf("core: re-bootstrap restore: %w", err)
	}
	s.publishLocked()
	return nil
}

// Close shuts the follower System down.
func (r *Replica) Close() error { return r.sys.Close() }

// storeMax advances a monotonic atomic to at least v.
func storeMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// --- Same-process source -----------------------------------------------

// LocalSource feeds a follower from a primary living in the same
// process, by tailing its WAL file directly — the test harness's and
// tooling's source. Poll is the idle polling cadence (default 2ms).
type LocalSource struct {
	Primary *System
	Poll    time.Duration
}

// Bootstrap captures the primary's live state.
func (l *LocalSource) Bootstrap() (uint64, bool, json.RawMessage, error) {
	return l.Primary.CaptureBootstrap()
}

// SourceTerm reports the primary's live promotion term: a same-process
// source reads it directly, so the fencing check always sees the term
// the next record will be written under.
func (l *LocalSource) SourceTerm() uint64 { return l.Primary.Term() }

// PrimarySeq reports the primary's durable record count.
func (l *LocalSource) PrimarySeq(context.Context) (uint64, error) {
	info := l.Primary.ReplicationInfo()
	if !info.Durable {
		return 0, errors.New("core: primary is not durable")
	}
	return info.TotalSeq, nil
}

// Tail follows the primary's WAL file from global sequence `from`. On a
// compaction underneath the tailer it returns nil — the reconnect
// re-resolves the base and detects a real gap, exactly like the HTTP
// stream ending. Like the HTTP stream handler, it ships only durable
// (fsynced) records, and it validates after reading a batch — before
// applying any of it — that no compaction raced the reads: Truncate
// reuses the inode and frames carry no sequence number, so unvalidated
// reads could hand back new-epoch bytes under old-epoch coordinates.
func (l *LocalSource) Tail(ctx context.Context, from uint64, apply func(storage.Record) error) error {
	info := l.Primary.ReplicationInfo()
	if !info.Durable {
		return errors.New("core: primary is not durable")
	}
	return tailFrames(ctx, from, apply, l.Primary.WALPath(), l.Poll, func() (uint64, uint64, error) {
		cur := l.Primary.ReplicationInfo()
		return cur.BaseSeq, cur.TotalSeq, nil
	})
}

// tailFrames is the shared same-process tail loop: follow a frame log
// (the primary's WAL, or a cascading follower's relay) from global
// sequence `from`, applying each record in order. info reports the
// log's current (base, total); an info error is terminal, a moved base
// ends the stream cleanly (the caller reconnects and re-resolves).
func tailFrames(ctx context.Context, from uint64, apply func(storage.Record) error,
	path string, poll time.Duration, info func() (base, total uint64, err error)) error {
	base0, total0, err := info()
	if err != nil {
		return err
	}
	if from < base0 || from > total0 {
		return storage.ErrSeqGap
	}
	t, err := storage.OpenTailer(path)
	if err != nil {
		return err
	}
	defer t.Close()
	if poll <= 0 {
		poll = 2 * time.Millisecond
	}
	skip := from - base0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		curBase, curTotal, err := info()
		if err != nil {
			return err
		}
		if curBase != base0 {
			return nil // compacted underneath us: reconnect and re-resolve
		}
		limit := curTotal - base0
		for skip > 0 && t.Seq() < limit {
			want := skip
			if rest := limit - t.Seq(); rest < want {
				want = rest
			}
			n, err := t.Skip(want)
			skip -= n
			if err != nil || n == 0 {
				if errors.Is(err, storage.ErrWALReset) {
					return nil
				}
				break
			}
		}
		var batch []storage.Record
		if skip == 0 {
			for t.Seq() < limit {
				rec, err := t.Next()
				if errors.Is(err, storage.ErrNoRecord) {
					break
				}
				if errors.Is(err, storage.ErrWALReset) {
					return nil
				}
				if err != nil {
					return err
				}
				batch = append(batch, rec)
			}
		}
		if cur2Base, _, err := info(); err != nil || cur2Base != base0 {
			if err != nil {
				return err
			}
			return nil // reads raced a compaction: discard unapplied
		}
		for _, rec := range batch {
			if err := apply(rec); err != nil {
				return err
			}
		}
		if len(batch) > 0 {
			continue // drain the backlog without sleeping
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}

// RelaySource feeds a follower from a CASCADING follower in the same
// process: bootstrap from the upstream replica's captured state, then
// tail its relay log — the second tier of a distribution tree, without
// HTTP (tests, tools). The upstream must have EnableRelay armed.
type RelaySource struct {
	Upstream *Replica
	Poll     time.Duration
}

// Bootstrap captures the upstream follower's state at its applied
// sequence (consistent with its relay frontier).
func (rs *RelaySource) Bootstrap() (uint64, bool, json.RawMessage, error) {
	return rs.Upstream.CaptureBootstrap()
}

// SourceTerm reports the upstream follower's highest seen term — the
// term its relay frames were applied under. Fencing survives the extra
// cascade hop because every tier re-stamps the highest term it has
// proof of.
func (rs *RelaySource) SourceTerm() uint64 { return rs.Upstream.Term() }

// PrimarySeq reports the upstream follower's applied frontier — the
// leaf's lag is measured against its immediate upstream, not the root.
func (rs *RelaySource) PrimarySeq(context.Context) (uint64, error) {
	return rs.Upstream.AppliedSeq(), nil
}

// Tail follows the upstream's relay log. A broken or disabled relay is
// a terminal error; a relay self-compaction surfaces as ErrSeqGap on
// the reconnect, which Run self-heals with a fresh bootstrap from the
// upstream — the same protocol as a primary compaction, one tier down.
func (rs *RelaySource) Tail(ctx context.Context, from uint64, apply func(storage.Record) error) error {
	rl := rs.Upstream.Relay()
	if rl == nil {
		return errors.New("core: upstream follower has no relay (EnableRelay not called)")
	}
	return tailFrames(ctx, from, apply, rl.Path(), rs.Poll, func() (uint64, uint64, error) {
		if err := rl.Err(); err != nil {
			return 0, 0, err
		}
		base, total := rl.Info()
		return base, total, nil
	})
}
