package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/storage"
)

// tailRecords reads the next n records of the primary's WAL starting at
// the replica's applied position — the raw frames a stale or current
// stream would deliver.
func tailRecords(t *testing.T, sys *System, from uint64, n int) []storage.Record {
	t.Helper()
	tl, err := storage.OpenTailer(sys.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	base := sys.ReplicationInfo().BaseSeq
	if skip := from - base; skip > 0 {
		if got, err := tl.Skip(skip); err != nil || got != skip {
			t.Fatalf("skip %d: got %d, %v", skip, got, err)
		}
	}
	recs := make([]storage.Record, 0, n)
	for len(recs) < n {
		rec, err := tl.Next()
		if err != nil {
			t.Fatalf("tail record %d: %v", len(recs), err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestFenceRejectsMutationsKeepsQueries: once a primary learns of a
// higher promotion term it must refuse every mutation with ErrFenced
// while its read surface keeps serving — fenced, not dead.
func TestFenceRejectsMutationsKeepsQueries(t *testing.T) {
	sys, subs, _, _ := stressReplicaSite(t, 2)
	defer sys.Close()

	if sys.Term() != 1 {
		t.Fatalf("fresh primary term = %d, want 1", sys.Term())
	}
	// Gossip at or below the current term is not a fence.
	if sys.Fence(1) || sys.Fenced() {
		t.Fatal("Fence(current term) latched")
	}
	if err := sys.PutSubject(profile.Subject{ID: "pre"}); err != nil {
		t.Fatalf("mutation before fencing: %v", err)
	}

	if !sys.Fence(2) || !sys.Fenced() || sys.FencedBy() != 2 {
		t.Fatalf("Fence(2) did not latch: fenced=%v by=%d", sys.Fenced(), sys.FencedBy())
	}
	err := sys.PutSubject(profile.Subject{ID: "post"})
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("mutation on fenced primary: %v, want ErrFenced", err)
	}
	// The fence does not rewrite this node's own term — it records who
	// outranked it.
	if sys.Term() != 1 {
		t.Fatalf("fenced primary term = %d, want 1", sys.Term())
	}
	// Queries still serve.
	if got := sys.Inaccessible(subs[0]); got == nil {
		t.Fatal("fenced primary stopped answering queries")
	}
}

// TestApplyTermRecordFencesStaleStream: a follower that has seen term N
// must reject frames from any stream at a lower term (a resurrected
// stale primary) WITHOUT latching a terminal error — the stream is
// refused, the follower stays healthy and keeps accepting the current
// primary's frames.
func TestApplyTermRecordFencesStaleStream(t *testing.T) {
	sys, _, _, _ := stressReplicaSite(t, 2)
	defer sys.Close()
	rep, err := NewReplica(&LocalSource{Primary: sys})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	for _, id := range []profile.SubjectID{"x1", "x2", "x3"} {
		if err := sys.PutSubject(profile.Subject{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	recs := tailRecords(t, sys, rep.AppliedSeq(), 3)

	if err := rep.ApplyTermRecord(2, recs[0]); err != nil {
		t.Fatalf("apply at term 2: %v", err)
	}
	if rep.Term() != 2 {
		t.Fatalf("replica term = %d, want 2", rep.Term())
	}
	applied := rep.AppliedSeq()
	if err := rep.ApplyTermRecord(1, recs[1]); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("apply from stale term: %v, want ErrStaleTerm", err)
	}
	if rep.AppliedSeq() != applied {
		t.Fatal("stale-term frame was applied")
	}
	if rep.Err() != nil {
		t.Fatalf("stale stream latched a terminal error: %v", rep.Err())
	}
	// Term 0 = a pre-term source (trusted), current and higher terms
	// keep flowing.
	if err := rep.ApplyTermRecord(0, recs[1]); err != nil {
		t.Fatalf("apply from pre-term source: %v", err)
	}
	if err := rep.ApplyTermRecord(3, recs[2]); err != nil {
		t.Fatalf("apply at term 3: %v", err)
	}
	if rep.Term() != 3 || rep.System().Term() != 3 {
		t.Fatalf("terms = replica %d, system %d, want 3", rep.Term(), rep.System().Term())
	}
}

// TestRebootstrapRefusesStaleTerm: self-heal must never load state from
// a primary whose term is below the highest the follower has seen —
// that would silently adopt a stale primary's history.
func TestRebootstrapRefusesStaleTerm(t *testing.T) {
	sys, _, _, _ := stressReplicaSite(t, 2)
	defer sys.Close()
	rep, err := NewReplica(&LocalSource{Primary: sys})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	if err := sys.PutSubject(profile.Subject{ID: "x"}); err != nil {
		t.Fatal(err)
	}
	recs := tailRecords(t, sys, rep.AppliedSeq(), 1)
	if err := rep.ApplyTermRecord(3, recs[0]); err != nil {
		t.Fatal(err)
	}
	// The primary still captures its state under term 1 (< 3).
	if err := rep.Rebootstrap(); !errors.Is(err, ErrStaleTerm) {
		t.Fatalf("Rebootstrap from stale primary: %v, want ErrStaleTerm", err)
	}
}

// TestPromoteConvertsFollowerInPlace: Promote must stop the tail loop,
// establish term 2 with the applied prefix as the new base, lift the
// read-only gate, persist the lineage so a restart recovers it, and be
// idempotent.
func TestPromoteConvertsFollowerInPlace(t *testing.T) {
	sys, _, _, _ := stressReplicaSite(t, 2)
	defer sys.Close()
	rep, err := NewReplica(&LocalSource{Primary: sys, Poll: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	runDone := make(chan error, 1)
	go func() {
		runDone <- rep.Run(context.Background(), RunConfig{RetryMin: time.Millisecond, RetryMax: 5 * time.Millisecond})
	}()

	for _, id := range []profile.SubjectID{"m1", "m2"} {
		if err := sys.PutSubject(profile.Subject{ID: id}); err != nil {
			t.Fatal(err)
		}
	}
	target := sys.ReplicationInfo().TotalSeq
	deadline := time.Now().Add(10 * time.Second)
	for rep.AppliedSeq() < target {
		if time.Now().After(deadline) {
			t.Fatalf("follower stalled at %d of %d", rep.AppliedSeq(), target)
		}
		time.Sleep(time.Millisecond)
	}

	dir := t.TempDir()
	term, err := rep.Promote(dir)
	if err != nil {
		t.Fatal(err)
	}
	if term != 2 {
		t.Fatalf("promotion term = %d, want 2", term)
	}
	// The tail loop must have exited cleanly (promotion, not an error).
	select {
	case err := <-runDone:
		if err != nil {
			t.Fatalf("Run after promote: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit after promotion")
	}
	// Idempotent.
	if again, err := rep.Promote(dir); err != nil || again != 2 {
		t.Fatalf("second Promote = (%d, %v), want (2, nil)", again, err)
	}

	info := rep.System().ReplicationInfo()
	if !info.Durable || info.Term != 2 || info.BaseSeq != target || info.TotalSeq != target {
		t.Fatalf("promoted info = %+v, want durable term 2 base=total=%d", info, target)
	}
	// The gate is lifted: the promoted node extends the history.
	if err := rep.System().PutSubject(profile.Subject{ID: "after"}); err != nil {
		t.Fatalf("mutation on promoted node: %v", err)
	}
	if got := rep.System().ReplicationInfo().TotalSeq; got != target+1 {
		t.Fatalf("post-promotion total = %d, want %d", got, target+1)
	}

	// A second follower must refuse to reuse the same lineage directory.
	rep2, err := NewReplica(&LocalSource{Primary: sys})
	if err != nil {
		t.Fatal(err)
	}
	defer rep2.Close()
	if _, err := rep2.Promote(dir); err == nil {
		t.Fatal("Promote into an occupied data directory succeeded")
	}

	// Restart the promoted lineage from disk: same term, same history.
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("reopen promoted lineage: %v", err)
	}
	defer re.Close()
	if re.Term() != 2 {
		t.Fatalf("reopened term = %d, want 2", re.Term())
	}
	if got := re.ReplicationInfo().TotalSeq; got != target+1 {
		t.Fatalf("reopened total = %d, want %d", got, target+1)
	}
	if _, err := re.GetSubject("after"); err != nil {
		t.Fatalf("post-promotion record lost across restart: %v", err)
	}
}
