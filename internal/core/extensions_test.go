package core

import (
	"testing"

	"repro/internal/authz"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/tracking"
)

func TestWhoCanAccess(t *testing.T) {
	s := openMem(t)
	_ = s.PutSubject(profile.Subject{ID: "a"})
	_ = s.PutSubject(profile.Subject{ID: "b"})
	// "c" has authorizations but no profile — still counted.
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "a", graph.SCEGO, 0))
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "c", graph.SCEGO, 0))
	got := s.WhoCanAccess(graph.SCEGO)
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("who can = %v", got)
	}
	if s.WhoCanAccess("Mars") != nil {
		t.Error("unknown location should be nil")
	}
	if got := s.WhoCanAccess(graph.CAIS); len(got) != 0 {
		t.Errorf("CAIS reachable by %v", got)
	}
}

func TestEarliestAccessThroughFacade(t *testing.T) {
	s := openMem(t)
	_, _ = s.AddAuthorization(authz.New(iv("[7, 100]"), iv("[9, 200]"), "a", graph.SCEGO, 0))
	at, ok := s.EarliestAccess("a", graph.SCEGO)
	if !ok || at != 7 {
		t.Errorf("earliest = %v, %v", at, ok)
	}
	if _, ok := s.EarliestAccess("a", graph.CAIS); ok {
		t.Error("CAIS should be unreachable")
	}
}

func TestInaccessibleMultilevelThroughFacade(t *testing.T) {
	s := openMem(t)
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "a", graph.SCEGO, 0))
	multi := s.InaccessibleMultilevel("a")
	flat := s.Inaccessible("a")
	if len(multi.Inaccessible) != len(flat) {
		t.Errorf("multi %d vs flat %d", len(multi.Inaccessible), len(flat))
	}
}

func TestResolveConflictsDurable(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = s.AddAuthorization(authz.New(iv("[5, 10]"), iv("[5, 20]"), "Alice", graph.CAIS, 1))
	_, _ = s.AddAuthorization(authz.New(iv("[10, 11]"), iv("[10, 30]"), "Alice", graph.CAIS, 1))
	res, err := s.ResolveConflicts(authz.Combine)
	if err != nil || len(res) != 1 {
		t.Fatalf("resolve = %v, %v", res, err)
	}
	mergedID := res[0].Kept.ID
	_ = s.Close()

	s2, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	auths := s2.Authorizations()
	if len(auths) != 1 || auths[0].ID != mergedID {
		t.Fatalf("replayed auths = %v", auths)
	}
	if !auths[0].Entry.Equal(iv("[5, 11]")) {
		t.Errorf("merged entry = %v", auths[0].Entry)
	}
	if len(s2.Conflicts()) != 0 {
		t.Error("conflicts should stay resolved after replay")
	}
}

func TestResolveConflictsNoopNotLogged(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	res, err := s.ResolveConflicts(authz.Combine)
	if err != nil || len(res) != 0 {
		t.Fatalf("resolve = %v, %v", res, err)
	}
	_ = s.Close()
	s2, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
}

// TestPositioningFeedIntegration drives a durable System end to end from
// the synthetic positioning simulator: readings → resolver → movements →
// alerts, then recovery.
func TestPositioningFeedIntegration(t *testing.T) {
	g := graph.New("site")
	for _, l := range []graph.ID{"lobby", "lab"} {
		_ = g.AddLocation(l)
	}
	_ = g.AddEdge("lobby", "lab")
	_ = g.SetEntry("lobby")
	boundaries := []boundarySpec{
		{"lobby", 0, 0, 10, 10},
		{"lab", 10, 0, 20, 10},
	}
	dir := t.TempDir()
	s := openSite(t, g, boundaries, dir)
	_, _ = s.AddAuthorization(authz.New(iv("[1, 1000]"), iv("[1, 2000]"), "alice", "lobby", 0))
	_, _ = s.AddAuthorization(authz.New(iv("[1, 1000]"), iv("[1, 2000]"), "alice", "lab", 0))

	resolver := s.resolver
	w, err := tracking.RouteWalk("alice", 1, 4, resolver, []graph.ID{"lobby", "lab"})
	if err != nil {
		t.Fatal(err)
	}
	sim := tracking.NewSimulator([]tracking.Walk{w})
	moved := 0
	for _, r := range sim.Readings() {
		if _, ok, err := s.ObserveReading(r.Time, r.Tag, r.At); err != nil {
			t.Fatal(err)
		} else if ok {
			moved++
		}
	}
	if moved < 2 {
		t.Fatalf("transitions = %d", moved)
	}
	if loc, inside := s.WhereIs("alice"); !inside || loc != "lab" {
		t.Errorf("alice at %v %v", loc, inside)
	}
	_ = s.Close()

	s2 := openSite(t, g, boundaries, dir)
	defer s2.Close()
	if loc, inside := s2.WhereIs("alice"); !inside || loc != "lab" {
		t.Error("position lost across recovery")
	}
	// The feed keeps working after recovery, deduplicating correctly
	// against the recovered movement state.
	if _, ok, err := s2.ObserveReading(1000, "alice", pointIn(boundaries[1])); err != nil || ok {
		t.Errorf("same-room reading after recovery: %v %v", ok, err)
	}
}

type boundarySpec struct {
	name           graph.ID
	x0, y0, x1, y1 float64
}

func boundaryOf(b boundarySpec) geometry.Boundary {
	return geometry.Boundary{
		Location: string(b.name),
		Shape:    geometry.NewRect(geometry.Point{X: b.x0, Y: b.y0}, geometry.Point{X: b.x1, Y: b.y1}).Polygon(),
	}
}

func pointIn(b boundarySpec) geometry.Point {
	return geometry.Point{X: (b.x0 + b.x1) / 2, Y: (b.y0 + b.y1) / 2}
}

func openSite(t *testing.T, g *graph.Graph, bs []boundarySpec, dir string) *System {
	t.Helper()
	cfg := Config{Graph: g, DataDir: dir}
	for _, b := range bs {
		cfg.Boundaries = append(cfg.Boundaries, boundaryOf(b))
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
