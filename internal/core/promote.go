// Failover: in-place promotion of a follower to a primary.
//
// Promotion is epoch-fenced: every promotion bumps a monotonic term that
// is persisted in the new primary's first snapshot and stamped on the
// replication control plane. Followers refuse streams from a lower term
// (a resurrected stale primary), and the stale primary fences itself
// (ErrFenced) the moment the term gossip reaches it — so at most one
// primary per term can ever extend the acked history, which is the whole
// split-brain argument (DESIGN.md D15).
package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/storage"
)

// PromoteConfig tunes the WAL the new primary opens. The zero value is
// full durability: fsync every mutation, group commit on.
type PromoteConfig struct {
	// SyncEvery is the WAL fsync cadence (0 = 1, every mutation).
	SyncEvery int
	// DisableGroupCommit keeps appends inline on the mutator goroutine.
	DisableGroupCommit bool
}

// Promote converts the follower into a primary IN PLACE, under a new
// promotion term one higher than any it has seen:
//
//  1. the tail loop (Run) is canceled and drained — no record can be
//     applied concurrently with the conversion;
//  2. the follower's entire applied state is persisted as the first
//     snapshot in dataDir, numbered AppliedSeq and stamped with the new
//     term — the acked prefix it replicated IS the new history's base;
//  3. a fresh WAL is opened at that base and a group committer started;
//  4. the ErrReadOnly gate is lifted and a new read view published.
//
// The same System pointer keeps serving throughout: queries never stop,
// existing HTTP handlers (including /v1/replication/*) start serving the
// primary surface simply because the System now has a WAL. dataDir must
// not already hold a snapshot or a non-empty WAL — promotion begins a
// new durable lineage, it does not splice onto an old one. Promote is
// idempotent: a second call returns the already-established term.
func (r *Replica) Promote(dataDir string, cfg ...PromoteConfig) (uint64, error) {
	if dataDir == "" {
		return 0, errors.New("core: promote requires a data directory")
	}
	if !r.promoted.CompareAndSwap(false, true) {
		return r.sys.Term(), nil
	}
	// Stop the tail loop and wait it out. promoted is already latched,
	// so a Run racing this promotion either sees the flag and returns
	// or registered its cancel func first and is stopped here.
	r.runMu.Lock()
	cancel, done := r.runCancel, r.runDone
	r.runMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	newTerm := r.termHigh.Load() + 1
	if t := r.sys.Term(); t >= newTerm {
		newTerm = t + 1
	}
	var c PromoteConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	if err := r.sys.promote(dataDir, newTerm, r.appliedSeq.Load(), c); err != nil {
		r.promoted.Store(false)
		return 0, err
	}
	storeMax(&r.termHigh, newTerm)
	r.connected.Store(false)
	r.markFresh()
	return newTerm, nil
}

// promote is the System half of Replica.Promote: persist the applied
// state as the new lineage's first snapshot, open a fresh WAL at its
// sequence, and lift the read-only gate — all in one write critical
// section, so no reader ever sees a half-converted System.
func (s *System) promote(dataDir string, term, seq uint64, cfg PromoteConfig) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		return errors.New("core: promote: already a primary")
	}
	snaps, err := storage.NewSnapshotStore(filepath.Join(dataDir, "snapshots"))
	if err != nil {
		return err
	}
	var old snapshotState
	if _, ok, err := snaps.Latest(&old); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("core: promote: %s already holds snapshots — promotion starts a new lineage and needs an empty data directory", dataDir)
	}
	walPath := filepath.Join(dataDir, "wal.log")
	if fi, err := os.Stat(walPath); err == nil && fi.Size() > 0 {
		return fmt.Errorf("core: promote: %s already holds a WAL — promotion starts a new lineage and needs an empty data directory", dataDir)
	}
	snap, err := s.snapshotStateLocked() // committer is nil on a follower: a pure state capture
	if err != nil {
		return err
	}
	snap.Seq = seq
	snap.Term = term
	if err := snaps.Save(seq, snap, 2); err != nil {
		return err
	}
	sync := cfg.SyncEvery
	if sync <= 0 {
		sync = 1
	}
	wal, err := storage.OpenWALWith(walPath, sync, nil)
	if err != nil {
		return err
	}
	s.snaps = snaps
	s.wal = wal
	s.walPath = walPath
	if !cfg.DisableGroupCommit && sync == 1 {
		s.committer = storage.NewCommitter(wal, storage.CommitterConfig{Trace: s.trace})
	}
	s.baseSeq.Store(seq)
	s.stagedSeq = seq
	s.term.Store(term)
	s.readOnly.Store(false)
	s.publishLocked()
	s.notifyCommit()
	return nil
}
