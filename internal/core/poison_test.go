package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/authz"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/storage"
)

// TestPoisonGateAfterSyncFault injects an fsync failure under a durable
// System and checks the degraded-primary contract end to end: the first
// mutation whose barrier covered the failed sync reports the underlying
// fault, every LATER mutation is refused with ErrWALPoisoned before
// touching the engines, reads keep serving the pre-fault state, and a
// reopen on a healthy disk recovers exactly the acked prefix.
func TestPoisonGateAfterSyncFault(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{
		Graph:     graph.NTUCampus(),
		DataDir:   dir,
		SyncEvery: 1,
		WALWrap: func(f storage.File) storage.File {
			return fault.NewFile(f, fault.Rule{Op: fault.OpSync, Nth: 3, Err: fault.ErrIO})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	sub := func(i int) profile.SubjectID { return profile.SubjectID(fmt.Sprintf("u%02d", i)) }
	var acked int
	var firstErr error
	for i := 0; i < 20; i++ {
		if err := s.PutSubject(profile.Subject{ID: sub(i)}); err != nil {
			firstErr = err
			break
		}
		acked++
	}
	if firstErr == nil {
		t.Fatal("sync fault never surfaced through a mutation")
	}
	if !errors.Is(firstErr, fault.ErrIO) && !errors.Is(firstErr, storage.ErrWALPoisoned) {
		t.Fatalf("first failure = %v, want the injected EIO (or the poison latch)", firstErr)
	}

	if !s.Poisoned() {
		t.Fatal("System.Poisoned() = false after a failed fsync")
	}
	if s.CommitErr() == nil {
		t.Fatal("System.CommitErr() = nil after a failed fsync")
	}
	// Every mutator is gated from here on — and refused up front, with
	// the sentinel the server layer maps to 503.
	if err := s.PutSubject(profile.Subject{ID: "late"}); !errors.Is(err, storage.ErrWALPoisoned) {
		t.Fatalf("PutSubject on poisoned system = %v, want ErrWALPoisoned", err)
	}
	if _, err := s.AddAuthorization(authz.New(iv("[1, 10]"), iv("[1, 20]"), "x", graph.CAIS, 1)); !errors.Is(err, storage.ErrWALPoisoned) {
		t.Fatalf("AddAuthorization on poisoned system = %v, want ErrWALPoisoned", err)
	}
	if _, err := s.Tick(100); !errors.Is(err, storage.ErrWALPoisoned) {
		t.Fatalf("Tick on poisoned system = %v, want ErrWALPoisoned", err)
	}
	// Reads still serve: the in-memory state is intact, only durability
	// is gone.
	if got := len(s.Subjects()); got < acked {
		t.Fatalf("reads degraded too: %d subjects visible, want >= %d", got, acked)
	}
	for i := 0; i < acked; i++ {
		if _, err := s.GetSubject(sub(i)); err != nil {
			t.Fatalf("read of acked subject %s failed: %v", sub(i), err)
		}
	}

	// Crash-and-recover on a healthy disk: the acked prefix survives.
	_ = s.Close()
	s2, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	if err != nil {
		t.Fatalf("reopen after poison: %v", err)
	}
	defer s2.Close()
	for i := 0; i < acked; i++ {
		if _, err := s2.GetSubject(sub(i)); err != nil {
			t.Fatalf("acked subject %s lost across recovery: %v", sub(i), err)
		}
	}
	if s2.Poisoned() {
		t.Fatal("recovered system still poisoned: the latch must not persist")
	}
	if err := s2.PutSubject(profile.Subject{ID: "post-recovery"}); err != nil {
		t.Fatalf("mutation after recovery: %v", err)
	}
}
