package core

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/rules"
)

func iv(s string) interval.Interval { return interval.MustParse(s) }

func openMem(t *testing.T) *System {
	t.Helper()
	s, err := Open(Config{Graph: graph.NTUCampus(), AutoDerive: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestOpenRequiresGraph(t *testing.T) {
	if _, err := Open(Config{}); err == nil {
		t.Error("no graph, no snapshot: Open must fail")
	}
	bad := graph.New("bad")
	if _, err := Open(Config{Graph: bad}); err == nil {
		t.Error("invalid graph must fail")
	}
}

func TestEndToEndScenario(t *testing.T) {
	// The full §4/§5 story through the facade.
	s := openMem(t)
	defer s.Close()

	if err := s.PutSubject(profile.Subject{ID: "Alice", Supervisor: "Bob"}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSubject(profile.Subject{ID: "Bob"}); err != nil {
		t.Fatal(err)
	}
	a1, err := s.AddAuthorization(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", graph.CAIS, 2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.AddRule(rules.Spec{
		Name: "r1", ValidFrom: 7, Base: a1.ID,
		Subject: "Supervisor_Of", Location: "CAIS", Entries: "2",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 1 || rep.Derived[0].Subject != "Bob" {
		t.Fatalf("derived = %v", rep.Derived)
	}
	// Bob's access request is granted by the derived authorization.
	d := s.Request(10, "Bob", graph.CAIS)
	if !d.Granted {
		t.Errorf("decision = %v", d)
	}
	if len(s.Authorizations()) != 2 || len(s.AuthorizationsFor("Bob", graph.CAIS)) != 1 {
		t.Error("store contents wrong")
	}
	if len(s.Rules()) != 1 {
		t.Error("rules missing")
	}
}

func TestAddAuthorizationRejectsUnknownLocation(t *testing.T) {
	s := openMem(t)
	if _, err := s.AddAuthorization(authz.New(iv("[1, 2]"), iv("[1, 5]"), "x", "Mars", 1)); err == nil {
		t.Error("unknown location must be rejected")
	}
	// Composite locations are not grantable (Def. 3: primitive only).
	if _, err := s.AddAuthorization(authz.New(iv("[1, 2]"), iv("[1, 5]"), "x", graph.SCE, 1)); err == nil {
		t.Error("composite location must be rejected")
	}
}

func TestQueriesThroughFacade(t *testing.T) {
	s := openMem(t)
	for _, loc := range []graph.ID{graph.SCEGO, graph.SCESectionA, graph.SCESectionB, graph.CAIS} {
		if _, err := s.AddAuthorization(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", loc, 2)); err != nil {
			t.Fatal(err)
		}
	}
	inacc := s.Inaccessible("Alice")
	acc := s.Accessible("Alice")
	if len(inacc)+len(acc) != len(s.Flat().Nodes) {
		t.Error("inaccessible + accessible must partition the site")
	}
	if len(acc) != 4 {
		t.Errorf("accessible = %v", acc)
	}
	res := s.InaccessibleTrace("Alice")
	if len(res.Trace) == 0 {
		t.Error("trace missing")
	}
	rc := s.CheckRoute("Alice", graph.Route{graph.SCEGO, graph.SCESectionA}, interval.From(0))
	if !rc.Authorized {
		t.Errorf("route check = %+v", rc)
	}
}

func TestMovementAndContactsThroughFacade(t *testing.T) {
	s := openMem(t)
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "alice", graph.SCEGO, 0))
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "bob", graph.SCEGO, 0))
	if _, err := s.Enter(5, "alice", graph.SCEGO); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Enter(6, "bob", graph.SCEGO); err != nil {
		t.Fatal(err)
	}
	if err := s.Leave(9, "alice"); err != nil {
		t.Fatal(err)
	}
	if loc, in := s.WhereIs("bob"); !in || loc != graph.SCEGO {
		t.Error("bob should be in SCE.GO")
	}
	if occ := s.Occupants(graph.SCEGO); len(occ) != 1 || occ[0] != "bob" {
		t.Errorf("occupants = %v", occ)
	}
	contacts := s.ContactsOf("alice", interval.From(0))
	if len(contacts) != 1 || contacts[0].Other != "bob" || !contacts[0].Overlap.Equal(iv("[6, 9]")) {
		t.Errorf("contacts = %v", contacts)
	}
	if len(s.History("alice")) != 1 {
		t.Error("history missing")
	}
	if got := s.WhoWasIn(graph.SCEGO, iv("[0, 100]")); len(got) != 2 {
		t.Errorf("who was in = %v", got)
	}
	if s.Clock() != 9 {
		t.Errorf("clock = %v", s.Clock())
	}
}

func TestObserveReading(t *testing.T) {
	// One room with a boundary; readings drive enter/leave.
	g := graph.New("site")
	_ = g.AddLocation("room")
	_ = g.SetEntry("room")
	s, err := Open(Config{
		Graph: g,
		Boundaries: []geometry.Boundary{
			{Location: "room", Shape: geometry.NewRect(geometry.Point{X: 0, Y: 0}, geometry.Point{X: 10, Y: 10}).Polygon()},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "alice", "room", 0))

	// Outside -> outside: nothing.
	if _, moved, err := s.ObserveReading(1, "alice", geometry.Point{X: 50, Y: 50}); err != nil || moved {
		t.Errorf("outside reading: %v %v", moved, err)
	}
	// Outside -> room.
	d, moved, err := s.ObserveReading(2, "alice", geometry.Point{X: 5, Y: 5})
	if err != nil || !moved || !d.Granted {
		t.Errorf("enter reading: %v %v %v", d, moved, err)
	}
	// Same room: deduplicated.
	if _, moved, _ := s.ObserveReading(3, "alice", geometry.Point{X: 6, Y: 6}); moved {
		t.Error("same-room reading must not move")
	}
	// Room -> outside.
	if _, moved, err := s.ObserveReading(4, "alice", geometry.Point{X: 99, Y: 99}); err != nil || !moved {
		t.Errorf("leave reading: %v %v", moved, err)
	}
	if _, inside := s.WhereIs("alice"); inside {
		t.Error("alice should be outside")
	}
}

func TestObserveReadingWithoutBoundaries(t *testing.T) {
	s := openMem(t)
	if _, _, err := s.ObserveReading(1, "x", geometry.Point{}); err == nil {
		t.Error("no boundaries configured: must error")
	}
}

func TestDurabilityRecoverFromWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Graph: graph.NTUCampus(), DataDir: dir, AutoDerive: true}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_ = s.PutSubject(profile.Subject{ID: "Alice", Supervisor: "Bob"})
	_ = s.PutSubject(profile.Subject{ID: "Bob"})
	a1, _ := s.AddAuthorization(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", graph.CAIS, 2))
	_, _ = s.AddRule(rules.Spec{Name: "r1", ValidFrom: 7, Base: a1.ID, Subject: "Supervisor_Of"})
	_, _ = s.Enter(6, "Alice", graph.SCEGO) // unauthorized (no auth), still recorded
	_ = s.Close()

	// Reopen: full state reconstructed from the log.
	s2, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir, AutoDerive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.Subjects()) != 2 {
		t.Errorf("subjects = %v", s2.Subjects())
	}
	auths := s2.Authorizations()
	if len(auths) != 2 { // base + derived
		t.Fatalf("auths = %v", auths)
	}
	if auths[0].ID != a1.ID {
		t.Error("IDs must be reassigned deterministically")
	}
	if got := s2.AuthorizationsFor("Bob", graph.CAIS); len(got) != 1 || got[0].DerivedBy != "r1" {
		t.Errorf("derived = %v", got)
	}
	if loc, in := s2.WhereIs("Alice"); !in || loc != graph.SCEGO {
		t.Error("movement state lost")
	}
	if s2.Clock() != 6 {
		t.Errorf("clock = %v", s2.Clock())
	}
	// Replay regenerated the alert for the unauthorized entry.
	if s2.Alerts().ByKind(audit.UnauthorizedEntry) == nil {
		t.Error("alerts should be rebuilt during replay")
	}
}

func TestDurabilitySnapshotAndSuffix(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Graph: graph.Fig4Graph(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	_ = s.PutSubject(profile.Subject{ID: "u"})
	a, _ := s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "u", "A", 0))
	_, _ = s.Enter(5, "u", "A")
	if err := s.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot mutations land in the WAL suffix.
	_, _ = s.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "u", "B", 0))
	_, _ = s.Enter(7, "u", "B")
	_ = s.Close()

	// Recover without passing a graph: it comes from the snapshot.
	s2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Graph().Name() != "Fig4" {
		t.Error("graph should be recovered from snapshot")
	}
	if len(s2.Authorizations()) != 2 {
		t.Errorf("auths = %v", s2.Authorizations())
	}
	if loc, in := s2.WhereIs("u"); !in || loc != "B" {
		t.Errorf("where = %v %v", loc, in)
	}
	if got := s2.Movements().EntryCount("u", "A", iv("[1, 100]")); got != 1 {
		t.Errorf("pre-snapshot count = %d", got)
	}
	// IDs continue beyond the snapshot watermark.
	a3, err := s2.AddAuthorization(authz.New(iv("[1, 100]"), iv("[1, 200]"), "u", "C", 0))
	if err != nil {
		t.Fatal(err)
	}
	if a3.ID <= a.ID+1 {
		t.Errorf("id = %d, must exceed replayed ids", a3.ID)
	}
}

func TestSnapshotRequiresDurability(t *testing.T) {
	s := openMem(t)
	if err := s.Snapshot(); err == nil {
		t.Error("snapshot without DataDir must fail")
	}
}

func TestRevokeCascadesAndLogs(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Graph: graph.NTUCampus(), DataDir: dir, AutoDerive: true})
	_ = s.PutSubject(profile.Subject{ID: "Alice", Supervisor: "Bob"})
	_ = s.PutSubject(profile.Subject{ID: "Bob"})
	a1, _ := s.AddAuthorization(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", graph.CAIS, 2))
	_, _ = s.AddRule(rules.Spec{Name: "r1", ValidFrom: 7, Base: a1.ID, Subject: "Supervisor_Of"})
	n, err := s.RevokeAuthorization(a1.ID)
	if err != nil || n != 2 {
		t.Fatalf("revoked %d, %v", n, err)
	}
	_ = s.Close()
	s2, err := Open(Config{Graph: graph.NTUCampus(), DataDir: dir, AutoDerive: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.Authorizations()) != 0 {
		t.Errorf("auths after replayed revoke = %v", s2.Authorizations())
	}
	// Rule survives (dormant).
	if len(s2.Rules()) != 1 {
		t.Error("rule should survive")
	}
}

func TestRemoveRulePersisted(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Graph: graph.NTUCampus(), DataDir: dir, AutoDerive: true})
	_ = s.PutSubject(profile.Subject{ID: "Alice", Supervisor: "Bob"})
	_ = s.PutSubject(profile.Subject{ID: "Bob"})
	a1, _ := s.AddAuthorization(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", graph.CAIS, 2))
	_, _ = s.AddRule(rules.Spec{Name: "r1", ValidFrom: 7, Base: a1.ID, Subject: "Supervisor_Of"})
	if err := s.RemoveRule("r1"); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	s2, _ := Open(Config{Graph: graph.NTUCampus(), DataDir: dir, AutoDerive: true})
	defer s2.Close()
	if len(s2.Rules()) != 0 {
		t.Error("removed rule resurrected")
	}
	if len(s2.Authorizations()) != 1 {
		t.Errorf("auths = %v", s2.Authorizations())
	}
}

func TestTickPersisted(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Graph: graph.Fig4Graph(), DataDir: dir})
	_, _ = s.AddAuthorization(authz.New(iv("[1, 10]"), iv("[1, 20]"), "u", "A", 0))
	_, _ = s.Enter(5, "u", "A")
	raised, err := s.Tick(30)
	if err != nil || len(raised) != 1 {
		t.Fatalf("tick = %v %v", raised, err)
	}
	_ = s.Close()
	s2, err := Open(Config{Graph: graph.Fig4Graph(), DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Clock() != 30 {
		t.Errorf("clock = %v", s2.Clock())
	}
	if got := s2.Alerts().ByKind(audit.Overstay); len(got) != 1 {
		t.Errorf("overstay alerts after replay = %v", got)
	}
}

func TestConflictsSurface(t *testing.T) {
	s := openMem(t)
	_, _ = s.AddAuthorization(authz.New(iv("[5, 10]"), iv("[5, 20]"), "Alice", graph.CAIS, 1))
	_, _ = s.AddAuthorization(authz.New(iv("[10, 11]"), iv("[10, 30]"), "Alice", graph.CAIS, 1))
	got := s.Conflicts()
	if len(got) != 1 || got[0].Kind != "overlap" {
		t.Errorf("conflicts = %v", got)
	}
}

func TestCustomRuleNotPersistable(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(Config{Graph: graph.NTUCampus(), DataDir: dir})
	_ = s.PutSubject(profile.Subject{ID: "Alice"})
	a1, _ := s.AddAuthorization(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", graph.CAIS, 2))
	// Programmatic custom rule through the engine directly.
	_, err := s.RuleEngine().AddRule(rules.Rule{
		Name: "custom", Base: a1.ID,
		Ops: rules.Ops{Subject: rules.SubjectFunc{Name: "Buddy", Fn: func(b profile.SubjectID, _ *profile.DB) ([]profile.SubjectID, error) {
			return []profile.SubjectID{b + "-buddy"}, nil
		}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(); err == nil || !strings.Contains(err.Error(), "customized operators") {
		t.Errorf("snapshot with custom rule: %v", err)
	}
}
