package graph

// This file builds the paper's two running examples as reusable fixtures:
// the NTU campus multilevel location graph of Fig. 1/Fig. 2, and the
// four-location graph of Fig. 4 used by the FindInaccessible example
// (Tables 1 and 2). They are exported because the rules, query, enforce
// and example packages all reproduce experiments against them.

// Location names of the NTU fixture, as printed in Fig. 2.
const (
	NTU         ID = "NTU"
	SCE         ID = "SCE"
	EEE         ID = "EEE"
	CEE         ID = "CEE"
	SME         ID = "SME"
	NBS         ID = "NBS"
	SCEGO       ID = "SCE.GO"
	SCEDean     ID = "SCE.Dean's Office"
	SCESectionA ID = "SCE.SectionA"
	SCESectionB ID = "SCE.SectionB"
	SCESectionC ID = "SCE.SectionC"
	CAIS        ID = "CAIS"
	CHIPES      ID = "CHIPES"
	EEEGO       ID = "EEE.GO"
	EEEDean     ID = "EEE.Dean's Office"
	EEESectionA ID = "EEE.SectionA"
	EEESectionB ID = "EEE.SectionB"
	EEESectionC ID = "EEE.SectionC"
	Lab1        ID = "Lab1"
	Lab2        ID = "Lab2"
	CEEEntrance ID = "CEE.Entrance"
	SMEEntrance ID = "SME.Entrance"
	NBSEntrance ID = "NBS.Entrance"
)

// NTUCampus builds the multilevel location graph of Fig. 2. SCE and EEE
// are fully detailed per the figure; CEE, SME and NBS appear in the figure
// as opaque schools, so each is modelled as a single-room school (one
// entrance location), which preserves the top-level topology
// SCE–EEE–CEE–SME–NBS.
//
// Within SCE (per Fig. 2): GO–SectionA, SectionA–Dean's Office,
// SectionA–SectionB, SectionB–CAIS, SectionB–SectionC, SectionC–CHIPES,
// CHIPES–CAIS, with entry locations SCE.GO and SCE.SectionC. The
// CHIPES–CAIS edge is required by Example 3, whose all_route_from(SCE.GO)
// → CAIS result includes SectionC and CHIPES — both lie on a simple route
// to CAIS only if CHIPES and CAIS are directly connected. EEE mirrors SCE
// with its labs: GO–SectionA, SectionA–Dean's Office, SectionA–SectionB,
// SectionB–Lab1, SectionB–SectionC, SectionC–Lab2, Lab2–Lab1, entries
// EEE.GO and EEE.SectionC.
func NTUCampus() *Graph {
	sce := New(SCE)
	must(sce.AddLocation(SCEGO))
	must(sce.AddLocation(SCEDean))
	must(sce.AddLocation(SCESectionA))
	must(sce.AddLocation(SCESectionB))
	must(sce.AddLocation(SCESectionC))
	must(sce.AddLocation(CAIS))
	must(sce.AddLocation(CHIPES))
	must(sce.AddEdge(SCEGO, SCESectionA))
	must(sce.AddEdge(SCESectionA, SCEDean))
	must(sce.AddEdge(SCESectionA, SCESectionB))
	must(sce.AddEdge(SCESectionB, CAIS))
	must(sce.AddEdge(SCESectionB, SCESectionC))
	must(sce.AddEdge(SCESectionC, CHIPES))
	must(sce.AddEdge(CHIPES, CAIS))
	must(sce.SetEntry(SCEGO, SCESectionC))

	eee := New(EEE)
	must(eee.AddLocation(EEEGO))
	must(eee.AddLocation(EEEDean))
	must(eee.AddLocation(EEESectionA))
	must(eee.AddLocation(EEESectionB))
	must(eee.AddLocation(EEESectionC))
	must(eee.AddLocation(Lab1))
	must(eee.AddLocation(Lab2))
	must(eee.AddEdge(EEEGO, EEESectionA))
	must(eee.AddEdge(EEESectionA, EEEDean))
	must(eee.AddEdge(EEESectionA, EEESectionB))
	must(eee.AddEdge(EEESectionB, Lab1))
	must(eee.AddEdge(EEESectionB, EEESectionC))
	must(eee.AddEdge(EEESectionC, Lab2))
	must(eee.AddEdge(Lab2, Lab1))
	must(eee.SetEntry(EEEGO, EEESectionC))

	cee := singleRoomSchool(CEE, CEEEntrance)
	sme := singleRoomSchool(SME, SMEEntrance)
	nbs := singleRoomSchool(NBS, NBSEntrance)

	ntu := New(NTU)
	must(ntu.AddComposite(sce))
	must(ntu.AddComposite(eee))
	must(ntu.AddComposite(cee))
	must(ntu.AddComposite(sme))
	must(ntu.AddComposite(nbs))
	must(ntu.AddEdge(SCE, EEE))
	must(ntu.AddEdge(EEE, CEE))
	must(ntu.AddEdge(CEE, SME))
	must(ntu.AddEdge(SME, NBS))
	must(ntu.SetEntry(SCE, EEE))
	return ntu
}

func singleRoomSchool(name, room ID) *Graph {
	g := New(name)
	must(g.AddLocation(room))
	must(g.SetEntry(room))
	return g
}

// Fig4Graph builds the four-location graph of Fig. 4: A–B, A–D, B–C, C–D,
// with A the entry location. Together with the Table 1 authorizations it
// is the fixture for the Table 2 trace.
func Fig4Graph() *Graph {
	g := New("Fig4")
	must(g.AddLocation("A"))
	must(g.AddLocation("B"))
	must(g.AddLocation("C"))
	must(g.AddLocation("D"))
	must(g.AddEdge("A", "B"))
	must(g.AddEdge("A", "D"))
	must(g.AddEdge("B", "C"))
	must(g.AddEdge("C", "D"))
	must(g.SetEntry("A"))
	return g
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
