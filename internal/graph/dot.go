package graph

import (
	"fmt"
	"strings"
)

// ToDOT renders the multilevel location graph in Graphviz DOT form:
// nested graphs become clusters, entry locations are drawn as double
// circles (matching Fig. 2's double-lined entries), enter-only and
// exit-only locations carry arrow glyphs, and the undirected edges of
// Definition 1 render with dir=none. Pipe the output through
// `dot -Tsvg` to get the paper's Fig. 2 layout for any site.
func ToDOT(g *Graph) string {
	var b strings.Builder
	b.WriteString("graph ")
	b.WriteString(quoteDOT(string(g.Name())))
	b.WriteString(" {\n  layout=fdp;\n  node [shape=box, fontname=\"Helvetica\"];\n")
	writeDOTBody(&b, g, "  ")
	// Top-level and cross-cluster edges are emitted per level inside
	// writeDOTBody; nothing else to do.
	b.WriteString("}\n")
	return b.String()
}

func writeDOTBody(b *strings.Builder, g *Graph, indent string) {
	for _, id := range g.Locations() {
		if c := g.Child(id); c != nil {
			fmt.Fprintf(b, "%ssubgraph %s {\n", indent, quoteDOT("cluster_"+string(id)))
			fmt.Fprintf(b, "%s  label=%s;\n", indent, quoteDOT(string(id)))
			if g.IsEntry(id) || g.IsExit(id) {
				fmt.Fprintf(b, "%s  style=bold;\n", indent)
			}
			writeDOTBody(b, c, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
			continue
		}
		attrs := []string{}
		switch {
		case g.IsEntry(id) && g.IsExit(id):
			attrs = append(attrs, "peripheries=2")
		case g.IsEntry(id):
			attrs = append(attrs, "peripheries=2", `xlabel="in"`)
		case g.IsExit(id):
			attrs = append(attrs, "peripheries=2", `xlabel="out"`)
		}
		if len(attrs) > 0 {
			fmt.Fprintf(b, "%s%s [%s];\n", indent, quoteDOT(string(id)), strings.Join(attrs, ", "))
		} else {
			fmt.Fprintf(b, "%s%s;\n", indent, quoteDOT(string(id)))
		}
	}
	for _, e := range g.Edges() {
		a, c := dotEndpoint(g, e[0]), dotEndpoint(g, e[1])
		fmt.Fprintf(b, "%s%s -- %s%s;\n", indent, a.name, c.name, a.attrs(c))
	}
}

// dotEndpoint picks a representative primitive node for composite edge
// endpoints (DOT edges must join nodes; lhead/ltail point at the
// clusters so the rendering shows a cluster-to-cluster connection).
type endpoint struct {
	name    string
	cluster string
}

func dotEndpoint(g *Graph, id ID) endpoint {
	if c := g.Child(id); c != nil {
		eps := c.EntryPrimitives()
		rep := string(id)
		if len(eps) > 0 {
			rep = string(eps[0])
		}
		return endpoint{name: quoteDOT(rep), cluster: "cluster_" + string(id)}
	}
	return endpoint{name: quoteDOT(string(id))}
}

func (e endpoint) attrs(other endpoint) string {
	var parts []string
	if e.cluster != "" {
		parts = append(parts, "ltail="+quoteDOT(e.cluster))
	}
	if other.cluster != "" {
		parts = append(parts, "lhead="+quoteDOT(other.cluster))
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, ", ") + "]"
}

func quoteDOT(s string) string {
	return `"` + strings.ReplaceAll(s, `"`, `\"`) + `"`
}
