package graph

import "fmt"

// Route is an ordered series of primitive locations ⟨l₁, …, l_k⟩ through
// which a subject moves. l₁ is the source and l_k the destination.
type Route []ID

// Source returns the first location of the route.
func (r Route) Source() ID {
	if len(r) == 0 {
		return ""
	}
	return r[0]
}

// Destination returns the last location of the route.
func (r Route) Destination() ID {
	if len(r) == 0 {
		return ""
	}
	return r[len(r)-1]
}

// String renders the route in the paper's angle-bracket notation.
func (r Route) String() string {
	s := "⟨"
	for i, id := range r {
		if i > 0 {
			s += ", "
		}
		s += string(id)
	}
	return s + "⟩"
}

// IsSimpleRoute reports whether r is a simple route of the single location
// graph g (§3.1): every location is a primitive member of g and every
// consecutive pair is an edge of g.
func IsSimpleRoute(g *Graph, r Route) bool {
	if len(r) == 0 {
		return false
	}
	for _, id := range r {
		n, ok := g.nodes[id]
		if !ok || n.child != nil {
			return false
		}
	}
	for i := 0; i+1 < len(r); i++ {
		if !g.HasEdge(r[i], r[i+1]) {
			return false
		}
	}
	return true
}

// IsComplexRoute reports whether r is a complex route of the multilevel
// graph root (§3.1). For every consecutive pair (lᵢ, lᵢ₊₁) either
//   - the pair is an edge in some single location graph, or
//   - lᵢ and lᵢ₊₁ are entry locations of two different location graphs
//     whose composite locations l'ᵢ, l'ᵢ₊₁ are joined by an edge in some
//     graph containing both (entries resolving recursively through
//     nested composites).
func IsComplexRoute(root *Graph, r Route) bool {
	if len(r) == 0 {
		return false
	}
	for _, id := range r {
		if root.FindGraphOf(id) == nil {
			return false
		}
	}
	for i := 0; i+1 < len(r); i++ {
		if !complexStep(root, r[i], r[i+1]) {
			return false
		}
	}
	return true
}

// complexStep checks one hop of the complex-route definition. A hop a→b is
// legal when (a,b) is an edge of the graph directly containing both, or
// when some graph has an edge (x,y) such that a is reachable as an entry
// primitive of x and b as an entry primitive of y (x or y may be the
// primitives themselves).
func complexStep(root *Graph, a, b ID) bool {
	if ga := root.FindGraphOf(a); ga != nil && ga == root.FindGraphOf(b) && ga.HasEdge(a, b) {
		return true
	}
	var walk func(g *Graph) bool
	walk = func(g *Graph) bool {
		for _, e := range g.Edges() {
			xs := entryPrimitivesOrSelf(g, e[0])
			ys := entryPrimitivesOrSelf(g, e[1])
			if (idsContain(xs, a) && idsContain(ys, b)) ||
				(idsContain(xs, b) && idsContain(ys, a)) {
				return true
			}
		}
		for _, id := range g.order {
			if c := g.nodes[id].child; c != nil && walk(c) {
				return true
			}
		}
		return false
	}
	return walk(root)
}

// entryPrimitivesOrSelf returns the primitive locations through which the
// member location id of g can be entered: id itself when primitive, or the
// recursively resolved entry primitives of its child graph.
func entryPrimitivesOrSelf(g *Graph, id ID) []ID {
	n := g.nodes[id]
	if n == nil {
		return nil
	}
	if n.child == nil {
		return []ID{id}
	}
	return n.child.EntryPrimitives()
}

func idsContain(ids []ID, want ID) bool {
	for _, id := range ids {
		if id == want {
			return true
		}
	}
	return false
}

// ShortestRoute returns a minimum-hop route from src to dst in the
// expansion, or nil when either endpoint is unknown.
func (f *Flat) ShortestRoute(src, dst ID) Route {
	s, ok := f.Index[src]
	if !ok {
		return nil
	}
	d, ok := f.Index[dst]
	if !ok {
		return nil
	}
	if s == d {
		return Route{src}
	}
	prev := make([]int, len(f.Nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[s] = s
	queue := []int{s}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range f.Adj[cur] {
			if prev[n] != -1 {
				continue
			}
			prev[n] = cur
			if n == d {
				return f.buildRoute(prev, s, d)
			}
			queue = append(queue, n)
		}
	}
	return nil
}

func (f *Flat) buildRoute(prev []int, s, d int) Route {
	var rev []int
	for cur := d; ; cur = prev[cur] {
		rev = append(rev, cur)
		if cur == s {
			break
		}
	}
	r := make(Route, len(rev))
	for i := range rev {
		r[i] = f.Nodes[rev[len(rev)-1-i]]
	}
	return r
}

// AllRoutes enumerates simple paths (no repeated locations) from src to
// dst, up to limit routes (limit <= 0 means no cap — beware exponential
// blowup; the naive baseline in internal/query uses this deliberately).
func (f *Flat) AllRoutes(src, dst ID, limit int) []Route {
	s, ok := f.Index[src]
	if !ok {
		return nil
	}
	d, ok := f.Index[dst]
	if !ok {
		return nil
	}
	var out []Route
	onPath := make([]bool, len(f.Nodes))
	var path []int
	var dfs func(cur int) bool // reports whether the cap was hit
	dfs = func(cur int) bool {
		onPath[cur] = true
		path = append(path, cur)
		defer func() {
			onPath[cur] = false
			path = path[:len(path)-1]
		}()
		if cur == d {
			r := make(Route, len(path))
			for i, n := range path {
				r[i] = f.Nodes[n]
			}
			out = append(out, r)
			return limit > 0 && len(out) >= limit
		}
		for _, n := range f.Adj[cur] {
			if !onPath[n] && dfs(n) {
				return true
			}
		}
		return false
	}
	dfs(s)
	return out
}

// RouteLocations returns the set of locations appearing on at least one
// simple route from src to dst, in node order. This implements the
// paper's all_route_from location operator (Example 3: all_route_from(
// SCE.GO) applied to base location CAIS returns every location on routes
// from SCE.GO to CAIS).
//
// A vertex v lies on some simple s–d path iff v's biconnected component
// lies on the block-cut-tree path between s and d (a consequence of
// Menger's theorem), so the computation is linear in the graph size
// rather than enumerating the possibly exponential route set.
func (f *Flat) RouteLocations(src, dst ID) []ID {
	s, ok := f.Index[src]
	if !ok {
		return nil
	}
	d, ok := f.Index[dst]
	if !ok {
		return nil
	}
	if s == d {
		return []ID{src}
	}
	include := f.onSomePath(s, d)
	var out []ID
	for i, in := range include {
		if in {
			out = append(out, f.Nodes[i])
		}
	}
	return out
}

// onSomePath marks every node lying on at least one simple s–d path.
func (f *Flat) onSomePath(s, d int) []bool {
	n := len(f.Nodes)
	include := make([]bool, n)
	comps := f.biconnected()
	// Which components contain each vertex (cut vertices appear in >1).
	vertexComps := make([][]int, n)
	for ci, comp := range comps {
		for v := range comp {
			vertexComps[v] = append(vertexComps[v], ci)
		}
	}
	// Components sharing a vertex are adjacent in the block graph; the
	// block graph of a connected graph is acyclic across distinct cut
	// vertices, so the BFS path below visits exactly the blocks on the
	// unique block-tree path.
	compAdj := make(map[int][]int)
	for v := 0; v < n; v++ {
		cs := vertexComps[v]
		for i := 0; i < len(cs); i++ {
			for j := i + 1; j < len(cs); j++ {
				compAdj[cs[i]] = append(compAdj[cs[i]], cs[j])
				compAdj[cs[j]] = append(compAdj[cs[j]], cs[i])
			}
		}
	}
	dstSet := map[int]bool{}
	for _, c := range vertexComps[d] {
		dstSet[c] = true
	}
	prev := map[int]int{}
	var queue []int
	for _, c := range vertexComps[s] {
		prev[c] = c
		queue = append(queue, c)
	}
	hit := -1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if dstSet[cur] {
			hit = cur
			break
		}
		for _, nx := range compAdj[cur] {
			if _, seen := prev[nx]; !seen {
				prev[nx] = cur
				queue = append(queue, nx)
			}
		}
	}
	if hit < 0 {
		return include // s and d disconnected: no route at all
	}
	for cur := hit; ; cur = prev[cur] {
		for v := range comps[cur] {
			include[v] = true
		}
		if prev[cur] == cur {
			break
		}
	}
	include[s], include[d] = true, true
	return include
}

// biconnected returns the biconnected components of the flat graph as
// vertex sets, via an iterative Hopcroft–Tarjan so deep corridor graphs
// cannot overflow the goroutine stack.
func (f *Flat) biconnected() []map[int]bool {
	n := len(f.Nodes)
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var comps []map[int]bool
	type stackEdge struct{ u, v int }
	var edgeStack []stackEdge
	timer := 0

	popComponent := func(u, v int) {
		comp := map[int]bool{}
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			comp[e.u], comp[e.v] = true, true
			if e.u == u && e.v == v {
				break
			}
		}
		if len(comp) > 0 {
			comps = append(comps, comp)
		}
	}

	type frame struct{ v, parent, idx int }
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		if len(f.Adj[root]) == 0 {
			disc[root] = timer
			timer++
			comps = append(comps, map[int]bool{root: true})
			continue
		}
		disc[root], low[root] = timer, timer
		timer++
		stack := []frame{{v: root, parent: -1}}
		for len(stack) > 0 {
			fr := &stack[len(stack)-1]
			if fr.idx < len(f.Adj[fr.v]) {
				w := f.Adj[fr.v][fr.idx]
				fr.idx++
				switch {
				case w == fr.parent:
					// Skip the tree edge back to the parent.
				case disc[w] == -1:
					edgeStack = append(edgeStack, stackEdge{fr.v, w})
					disc[w], low[w] = timer, timer
					timer++
					stack = append(stack, frame{v: w, parent: fr.v})
				case disc[w] < disc[fr.v]:
					edgeStack = append(edgeStack, stackEdge{fr.v, w})
					if disc[w] < low[fr.v] {
						low[fr.v] = disc[w]
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				continue
			}
			parent := &stack[len(stack)-1]
			if low[fr.v] < low[parent.v] {
				low[parent.v] = low[fr.v]
			}
			if low[fr.v] >= disc[parent.v] {
				popComponent(parent.v, fr.v)
			}
		}
	}
	return comps
}

// ValidateRoute returns a descriptive error when r is not a complex route
// of root, and nil when it is.
func ValidateRoute(root *Graph, r Route) error {
	if len(r) == 0 {
		return fmt.Errorf("graph: empty route")
	}
	f := Expand(root)
	for _, id := range r {
		if _, ok := f.Index[id]; !ok {
			return fmt.Errorf("graph: route location %q is not a primitive location of %q", id, root.Name())
		}
	}
	for i := 0; i+1 < len(r); i++ {
		if !f.HasEdge(r[i], r[i+1]) {
			return fmt.Errorf("graph: no direct connection from %q to %q", r[i], r[i+1])
		}
	}
	return nil
}
