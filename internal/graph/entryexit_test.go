package graph

import (
	"strings"
	"testing"
)

// turnstile builds a metro-station-like graph: enter through the
// turnstile (entry-only), leave through the one-way exit gate
// (exit-only), with a platform in between.
func turnstile(t *testing.T) *Graph {
	t.Helper()
	g := New("station")
	for _, l := range []ID{"turnstile", "platform", "exitgate"} {
		if err := g.AddLocation(l); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddEdge("turnstile", "platform")
	_ = g.AddEdge("platform", "exitgate")
	if err := g.SetEntryOnly("turnstile"); err != nil {
		t.Fatal(err)
	}
	if err := g.SetExitOnly("exitgate"); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestEntryExitSplit(t *testing.T) {
	g := turnstile(t)
	if !g.IsEntry("turnstile") || g.IsExit("turnstile") {
		t.Error("turnstile should be enter-only")
	}
	if g.IsEntry("exitgate") || !g.IsExit("exitgate") {
		t.Error("exitgate should be exit-only")
	}
	if got := g.Entries(); len(got) != 1 || got[0] != "turnstile" {
		t.Errorf("entries = %v", got)
	}
	if got := g.Exits(); len(got) != 1 || got[0] != "exitgate" {
		t.Errorf("exits = %v", got)
	}
}

func TestSetEntryMarksBoth(t *testing.T) {
	g := Fig4Graph()
	if !g.IsEntry("A") || !g.IsExit("A") {
		t.Error("SetEntry must mark both directions (paper default)")
	}
	if len(g.Entries()) != len(g.Exits()) {
		t.Error("default graphs have symmetric entries/exits")
	}
}

func TestValidateRequiresBothDirections(t *testing.T) {
	g := New("in-only")
	_ = g.AddLocation("a")
	_ = g.SetEntryOnly("a")
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "exit") {
		t.Errorf("entry-only graph must fail validation: %v", err)
	}
	g2 := New("out-only")
	_ = g2.AddLocation("a")
	_ = g2.SetExitOnly("a")
	if err := g2.Validate(); err == nil || !strings.Contains(err.Error(), "entry") {
		t.Errorf("exit-only graph must fail validation: %v", err)
	}
}

func TestSetEntryOnlyErrors(t *testing.T) {
	g := New("g")
	if err := g.SetEntryOnly("zzz"); err == nil {
		t.Error("unknown location should fail")
	}
	if err := g.SetExitOnly("zzz"); err == nil {
		t.Error("unknown location should fail")
	}
}

func TestExpandCarriesExits(t *testing.T) {
	f := Expand(turnstile(t))
	if !f.IsEntry("turnstile") || f.IsExit("turnstile") {
		t.Error("flat entry flags wrong")
	}
	if f.IsEntry("exitgate") || !f.IsExit("exitgate") {
		t.Error("flat exit flags wrong")
	}
	if got := f.ExitIDs(); len(got) != 1 || got[0] != "exitgate" {
		t.Errorf("exit ids = %v", got)
	}
	if f.IsExit("Mars") {
		t.Error("unknown location cannot be an exit")
	}
}

func TestExitPrimitivesNested(t *testing.T) {
	inner := turnstile(t)
	outer := New("city")
	_ = outer.AddComposite(inner)
	_ = outer.AddLocation("plaza")
	_ = outer.AddEdge("station", "plaza")
	_ = outer.SetEntry("station")
	if err := outer.Validate(); err != nil {
		t.Fatal(err)
	}
	// Entering the city through the station resolves to the turnstile;
	// leaving resolves to the exit gate.
	if got := outer.EntryPrimitives(); len(got) != 1 || got[0] != "turnstile" {
		t.Errorf("entry primitives = %v", got)
	}
	if got := outer.ExitPrimitives(); len(got) != 1 || got[0] != "exitgate" {
		t.Errorf("exit primitives = %v", got)
	}
}

func TestEntryExitSpecRoundTrip(t *testing.T) {
	g := turnstile(t)
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsEntry("turnstile") || back.IsExit("turnstile") {
		t.Error("entry-only flag lost in round trip")
	}
	if back.IsEntry("exitgate") || !back.IsExit("exitgate") {
		t.Error("exit-only flag lost in round trip")
	}
}

func TestStringMarksKinds(t *testing.T) {
	s := turnstile(t).String()
	if !strings.Contains(s, "turnstile+") {
		t.Errorf("enter-only marker missing: %s", s)
	}
	if !strings.Contains(s, "exitgate-") {
		t.Errorf("exit-only marker missing: %s", s)
	}
	if !strings.Contains(Fig4Graph().String(), "A*") {
		t.Error("both-ways marker missing")
	}
}
