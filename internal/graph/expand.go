package graph

import "fmt"

// Flat is the expansion of a multilevel location graph into a graph over
// primitive locations only. Intra-graph edges survive unchanged; an edge
// between two composite locations l'ᵢ and l'ᵢ₊₁ becomes the complete
// bipartite join of the two graphs' entry primitives — exactly the complex
// route condition of §3.1 ("lᵢ and lᵢ₊₁ are entry locations in two
// different location graphs ... such that (l'ᵢ, l'ᵢ₊₁) is an edge").
//
// All route finding and Algorithm 1 run on the Flat form.
type Flat struct {
	// Nodes lists every primitive location in deterministic order.
	Nodes []ID
	// Index maps a location ID to its position in Nodes.
	Index map[ID]int
	// Adj is the adjacency list in node-index space.
	Adj [][]int
	// Entries are the indices of the root graph's entry primitives;
	// Exits the indices of its exit primitives (equal to Entries for
	// graphs built with SetEntry alone).
	Entries []int
	Exits   []int
}

// Expand flattens the multilevel graph. The graph should Validate first;
// Expand itself only panics on impossible internal states.
func Expand(g *Graph) *Flat {
	f := &Flat{Index: make(map[ID]int)}
	for _, id := range g.Primitives() {
		f.Index[id] = len(f.Nodes)
		f.Nodes = append(f.Nodes, id)
	}
	f.Adj = make([][]int, len(f.Nodes))
	addEdges(f, g)
	for _, id := range g.EntryPrimitives() {
		f.Entries = append(f.Entries, f.Index[id])
	}
	for _, id := range g.ExitPrimitives() {
		f.Exits = append(f.Exits, f.Index[id])
	}
	return f
}

func addEdges(f *Flat, g *Graph) {
	for _, e := range g.Edges() {
		a, b := g.nodes[e[0]], g.nodes[e[1]]
		var as, bs []ID
		if a.child == nil {
			as = []ID{a.id}
		} else {
			as = a.child.EntryPrimitives()
		}
		if b.child == nil {
			bs = []ID{b.id}
		} else {
			bs = b.child.EntryPrimitives()
		}
		for _, x := range as {
			for _, y := range bs {
				f.addEdge(f.Index[x], f.Index[y])
			}
		}
	}
	for _, id := range g.order {
		if c := g.nodes[id].child; c != nil {
			addEdges(f, c)
		}
	}
}

func (f *Flat) addEdge(a, b int) {
	for _, n := range f.Adj[a] {
		if n == b {
			return
		}
	}
	f.Adj[a] = append(f.Adj[a], b)
	f.Adj[b] = append(f.Adj[b], a)
}

// NeighborsOf returns the primitive locations adjacent to id in the
// expansion.
func (f *Flat) NeighborsOf(id ID) []ID {
	i, ok := f.Index[id]
	if !ok {
		return nil
	}
	out := make([]ID, len(f.Adj[i]))
	for k, n := range f.Adj[i] {
		out[k] = f.Nodes[n]
	}
	return out
}

// HasEdge reports whether the expansion contains the edge (a, b).
func (f *Flat) HasEdge(a, b ID) bool {
	i, ok := f.Index[a]
	if !ok {
		return false
	}
	j, ok := f.Index[b]
	if !ok {
		return false
	}
	for _, n := range f.Adj[i] {
		if n == j {
			return true
		}
	}
	return false
}

// IsEntry reports whether id is an entry primitive of the root graph.
func (f *Flat) IsEntry(id ID) bool { return f.hasIndex(f.Entries, id) }

// IsExit reports whether id is an exit primitive of the root graph.
func (f *Flat) IsExit(id ID) bool { return f.hasIndex(f.Exits, id) }

func (f *Flat) hasIndex(set []int, id ID) bool {
	i, ok := f.Index[id]
	if !ok {
		return false
	}
	for _, e := range set {
		if e == i {
			return true
		}
	}
	return false
}

// EntryIDs returns the entry primitives by name.
func (f *Flat) EntryIDs() []ID { return f.names(f.Entries) }

// ExitIDs returns the exit primitives by name.
func (f *Flat) ExitIDs() []ID { return f.names(f.Exits) }

func (f *Flat) names(set []int) []ID {
	out := make([]ID, len(set))
	for i, e := range set {
		out[i] = f.Nodes[e]
	}
	return out
}

// MustIndex returns the node index of id, panicking when absent; it is a
// convenience for code paths that have already validated their inputs.
func (f *Flat) MustIndex(id ID) int {
	i, ok := f.Index[id]
	if !ok {
		panic(fmt.Sprintf("graph: location %q not in expansion", id))
	}
	return i
}

// MaxDegree returns the largest number of neighbours of any node — the N_d
// of the paper's complexity bound.
func (f *Flat) MaxDegree() int {
	max := 0
	for _, a := range f.Adj {
		if len(a) > max {
			max = len(a)
		}
	}
	return max
}
