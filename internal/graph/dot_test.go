package graph

import (
	"strings"
	"testing"
)

func TestToDOTNTU(t *testing.T) {
	out := ToDOT(NTUCampus())
	for _, frag := range []string{
		`graph "NTU" {`,
		`subgraph "cluster_SCE"`,
		`subgraph "cluster_EEE"`,
		`"SCE.GO" [peripheries=2]`,  // entry location: double border
		`"CAIS";`,                   // plain room
		`"CAIS" -- "SCE.SectionB";`, // intra-school edge (sorted endpoints)
		`ltail="cluster_EEE"`,       // school-to-school edge
		`lhead="cluster_SCE"`,
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("DOT output missing %q\n%s", frag, out)
		}
	}
	// Every primitive appears exactly once as a node declaration.
	if strings.Count(out, `"CHIPES"`) < 1 {
		t.Error("CHIPES missing")
	}
}

func TestToDOTEntryExitGlyphs(t *testing.T) {
	g := New("station")
	for _, l := range []ID{"turnstile", "platform", "exitgate"} {
		_ = g.AddLocation(l)
	}
	_ = g.AddEdge("turnstile", "platform")
	_ = g.AddEdge("platform", "exitgate")
	_ = g.SetEntryOnly("turnstile")
	_ = g.SetExitOnly("exitgate")
	out := ToDOT(g)
	if !strings.Contains(out, `"turnstile" [peripheries=2, xlabel="in"]`) {
		t.Errorf("enter-only glyph missing:\n%s", out)
	}
	if !strings.Contains(out, `"exitgate" [peripheries=2, xlabel="out"]`) {
		t.Errorf("exit-only glyph missing:\n%s", out)
	}
}

func TestToDOTQuotesSpecialNames(t *testing.T) {
	g := New("g")
	_ = g.AddLocation(`room "A"`)
	_ = g.SetEntry(`room "A"`)
	out := ToDOT(g)
	if !strings.Contains(out, `"room \"A\""`) {
		t.Errorf("quoting broken:\n%s", out)
	}
}
