package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestExpandFig4(t *testing.T) {
	f := Expand(Fig4Graph())
	if len(f.Nodes) != 4 {
		t.Fatalf("nodes = %v", f.Nodes)
	}
	if !f.HasEdge("A", "B") || !f.HasEdge("A", "D") || !f.HasEdge("B", "C") || !f.HasEdge("C", "D") {
		t.Error("Fig4 edges missing in expansion")
	}
	if f.HasEdge("A", "C") {
		t.Error("phantom edge A–C")
	}
	if got := f.EntryIDs(); len(got) != 1 || got[0] != "A" {
		t.Errorf("entries = %v", got)
	}
	if !f.IsEntry("A") || f.IsEntry("B") {
		t.Error("IsEntry broken")
	}
	if f.MaxDegree() != 2 {
		t.Errorf("max degree = %d, want 2", f.MaxDegree())
	}
}

func TestExpandNTUCrossSchoolEdges(t *testing.T) {
	f := Expand(NTUCampus())
	if len(f.Nodes) != 17 {
		t.Fatalf("expanded nodes = %d, want 17", len(f.Nodes))
	}
	// The SCE–EEE campus edge joins every entry of SCE with every entry
	// of EEE: {SCE.GO, SCE.SectionC} × {EEE.GO, EEE.SectionC}.
	for _, a := range []ID{SCEGO, SCESectionC} {
		for _, b := range []ID{EEEGO, EEESectionC} {
			if !f.HasEdge(a, b) {
				t.Errorf("missing cross-school edge %s–%s", a, b)
			}
		}
	}
	// Interior rooms never connect across schools.
	if f.HasEdge(CAIS, Lab1) || f.HasEdge(SCEDean, EEEDean) {
		t.Error("interior rooms must not be joined across schools")
	}
	// NTU's entry composites are SCE and EEE, resolving to four rooms.
	entries := f.EntryIDs()
	if len(entries) != 4 {
		t.Errorf("campus entry primitives = %v", entries)
	}
	// Intra-school edges survive expansion.
	if !f.HasEdge(SCESectionB, CAIS) {
		t.Error("intra-school edge lost")
	}
}

func TestExpandUnknownLookups(t *testing.T) {
	f := Expand(Fig4Graph())
	if f.NeighborsOf("Mars") != nil {
		t.Error("unknown location should have nil neighbours")
	}
	if f.HasEdge("Mars", "A") || f.HasEdge("A", "Mars") {
		t.Error("edges to unknown locations must be false")
	}
	if f.ShortestRoute("Mars", "A") != nil || f.ShortestRoute("A", "Mars") != nil {
		t.Error("routes involving unknown locations must be nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on unknown id")
		}
	}()
	f.MustIndex("Mars")
}

func TestShortestRoute(t *testing.T) {
	f := Expand(NTUCampus())
	r := f.ShortestRoute(SCEDean, CAIS)
	want := Route{SCEDean, SCESectionA, SCESectionB, CAIS}
	if fmt.Sprint(r) != fmt.Sprint(want) {
		t.Errorf("route = %v, want %v", r, want)
	}
	// Cross-school shortest route uses an entry pair.
	r = f.ShortestRoute(EEEDean, SCEDean)
	if len(r) != 6 {
		t.Errorf("cross-school route = %v (len %d), want 6 hops", r, len(r))
	}
	if !IsComplexRoute(NTUCampus(), r) {
		t.Error("shortest route must be a valid complex route")
	}
	if got := f.ShortestRoute(CAIS, CAIS); len(got) != 1 || got[0] != CAIS {
		t.Errorf("self route = %v", got)
	}
}

func TestAllRoutes(t *testing.T) {
	f := Expand(Fig4Graph())
	routes := f.AllRoutes("A", "C", 0)
	if len(routes) != 2 {
		t.Fatalf("A→C simple routes = %v, want 2", routes)
	}
	for _, r := range routes {
		if r.Source() != "A" || r.Destination() != "C" {
			t.Errorf("bad endpoints in %v", r)
		}
	}
	// Cap respected.
	if got := f.AllRoutes("A", "C", 1); len(got) != 1 {
		t.Errorf("limit ignored: %v", got)
	}
	if f.AllRoutes("Mars", "C", 0) != nil || f.AllRoutes("A", "Mars", 0) != nil {
		t.Error("unknown endpoints should yield nil")
	}
}

func TestRouteLocationsExample3(t *testing.T) {
	// Example 3: all_route_from(SCE.GO) with destination CAIS returns
	// {SCE.GO, SCE.SectionA, SCE.SectionB, SCE.SectionC, CHIPES} plus the
	// destination CAIS itself. (The paper's printed set omits CAIS, but
	// every route ends there and rule r3 derives an authorization for
	// each route location, so we include both endpoints.) The paper
	// scopes the operator to the school: on the whole campus there are
	// additional simple routes detouring through EEE's entries.
	f := Expand(NTUCampus().Child(SCE))
	got := map[ID]bool{}
	for _, id := range f.RouteLocations(SCEGO, CAIS) {
		got[id] = true
	}
	if len(got) != 6 {
		t.Errorf("RouteLocations returned %d locations: %v", len(got), got)
	}
	for _, want := range []ID{SCEGO, SCESectionA, SCESectionB, SCESectionC, CHIPES, CAIS} {
		if !got[want] {
			t.Errorf("RouteLocations misses %s (got %v)", want, got)
		}
	}
	if got[SCEDean] {
		t.Error("Dean's Office is on no simple SCE.GO→CAIS route")
	}
}

func TestRouteLocationsSelf(t *testing.T) {
	f := Expand(Fig4Graph())
	if got := f.RouteLocations("B", "B"); len(got) != 1 || got[0] != "B" {
		t.Errorf("self RouteLocations = %v", got)
	}
	if f.RouteLocations("Mars", "B") != nil {
		t.Error("unknown source should be nil")
	}
}

// buildRandomGraph produces a random connected flat(ish) location graph for
// property tests: a spanning tree plus extra random edges.
func buildRandomGraph(rng *rand.Rand, n, extraEdges int) *Graph {
	g := New("R")
	ids := make([]ID, n)
	for i := 0; i < n; i++ {
		ids[i] = ID(fmt.Sprintf("r%02d", i))
		must(g.AddLocation(ids[i]))
	}
	for i := 1; i < n; i++ {
		must(g.AddEdge(ids[i], ids[rng.Intn(i)]))
	}
	for k := 0; k < extraEdges; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !g.HasEdge(ids[a], ids[b]) {
			must(g.AddEdge(ids[a], ids[b]))
		}
	}
	must(g.SetEntry(ids[0]))
	return g
}

// Property: RouteLocations (block-cut-tree based) equals the brute-force
// union of all simple routes, on random small graphs.
func TestPropRouteLocationsMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 3 + rng.Intn(8)
		g := buildRandomGraph(rng, n, rng.Intn(4))
		f := Expand(g)
		src := f.Nodes[rng.Intn(n)]
		dst := f.Nodes[rng.Intn(n)]
		brute := map[ID]bool{}
		for _, r := range f.AllRoutes(src, dst, 0) {
			for _, id := range r {
				brute[id] = true
			}
		}
		got := map[ID]bool{}
		for _, id := range f.RouteLocations(src, dst) {
			got[id] = true
		}
		if len(got) != len(brute) {
			t.Fatalf("trial %d (%s→%s on %s): got %v, brute %v", trial, src, dst, g, got, brute)
		}
		for id := range brute {
			if !got[id] {
				t.Fatalf("trial %d: RouteLocations misses %s", trial, id)
			}
		}
	}
}

// Property: every hop of the expansion corresponds to a legal complex-route
// step and vice versa, on the NTU fixture and nested random graphs.
func TestPropExpansionEdgesAreComplexSteps(t *testing.T) {
	ntu := NTUCampus()
	f := Expand(ntu)
	for i, id := range f.Nodes {
		for _, j := range f.Adj[i] {
			pair := Route{id, f.Nodes[j]}
			if !IsComplexRoute(ntu, pair) {
				t.Errorf("expansion edge %v is not a complex step", pair)
			}
		}
	}
	// Conversely, sample non-edges: they must not be complex steps.
	for _, a := range f.Nodes {
		for _, b := range f.Nodes {
			if a == b || f.HasEdge(a, b) {
				continue
			}
			if IsComplexRoute(ntu, Route{a, b}) {
				t.Errorf("non-edge %s–%s accepted as complex step", a, b)
			}
		}
	}
}
