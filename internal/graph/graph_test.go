package graph

import (
	"strings"
	"testing"
)

func TestAddLocationErrors(t *testing.T) {
	g := New("G")
	if err := g.AddLocation(""); err == nil {
		t.Error("empty id should fail")
	}
	if err := g.AddLocation("a"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddLocation("a"); err == nil {
		t.Error("duplicate id should fail")
	}
}

func TestAddCompositeErrors(t *testing.T) {
	g := New("G")
	if err := g.AddComposite(nil); err == nil {
		t.Error("nil child should fail")
	}
	if err := g.AddComposite(New("")); err == nil {
		t.Error("unnamed child should fail")
	}
	child := New("C")
	if err := g.AddComposite(child); err != nil {
		t.Fatal(err)
	}
	if err := g.AddComposite(New("C")); err == nil {
		t.Error("duplicate composite name should fail")
	}
	if !g.IsComposite("C") || g.Child("C") != child {
		t.Error("composite lookup broken")
	}
	if g.Child("zzz") != nil {
		t.Error("missing child should be nil")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("G")
	_ = g.AddLocation("a")
	_ = g.AddLocation("b")
	if err := g.AddEdge("a", "a"); err == nil {
		t.Error("self edge should fail")
	}
	if err := g.AddEdge("a", "zzz"); err == nil {
		t.Error("unknown endpoint should fail")
	}
	if err := g.AddEdge("a", "b"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge("b", "a"); err == nil {
		t.Error("duplicate (reversed) edge should fail")
	}
	if !g.HasEdge("a", "b") || !g.HasEdge("b", "a") {
		t.Error("edges must be bidirectional (Def. 1)")
	}
}

func TestSetEntryErrors(t *testing.T) {
	g := New("G")
	_ = g.AddLocation("a")
	if err := g.SetEntry("zzz"); err == nil {
		t.Error("unknown entry should fail")
	}
	if err := g.SetEntry("a"); err != nil {
		t.Fatal(err)
	}
	if !g.IsEntry("a") {
		t.Error("entry flag lost")
	}
}

func TestValidate(t *testing.T) {
	g := New("G")
	if err := g.Validate(); err == nil {
		t.Error("empty graph should not validate")
	}
	_ = g.AddLocation("a")
	if err := g.Validate(); err == nil {
		t.Error("graph without entry should not validate")
	}
	_ = g.SetEntry("a")
	if err := g.Validate(); err != nil {
		t.Errorf("single-room graph should validate: %v", err)
	}
	_ = g.AddLocation("b")
	if err := g.Validate(); err == nil {
		t.Error("disconnected graph should not validate")
	}
	_ = g.AddEdge("a", "b")
	if err := g.Validate(); err != nil {
		t.Errorf("connected graph should validate: %v", err)
	}
}

func TestValidateDisjointness(t *testing.T) {
	// The paper requires constituent graphs to have mutually disjoint
	// locations; a primitive name reused inside a nested graph must fail.
	inner := New("Inner")
	_ = inner.AddLocation("dup")
	_ = inner.SetEntry("dup")
	outer := New("Outer")
	_ = outer.AddLocation("dup")
	_ = outer.AddComposite(inner)
	_ = outer.AddEdge("dup", "Inner")
	_ = outer.SetEntry("dup")
	if err := outer.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate primitive across levels should fail, got %v", err)
	}
}

func TestValidateNestedEntryRequired(t *testing.T) {
	inner := New("Inner")
	_ = inner.AddLocation("x")
	// No entry set on inner.
	outer := New("Outer")
	_ = outer.AddComposite(inner)
	_ = outer.SetEntry("Inner")
	if err := outer.Validate(); err == nil {
		t.Error("nested graph without entry should fail validation")
	}
}

func TestNTUCampusStructure(t *testing.T) {
	ntu := NTUCampus()
	if err := ntu.Validate(); err != nil {
		t.Fatalf("NTU fixture should validate: %v", err)
	}
	// Fig. 2: NTU contains five schools.
	locs := ntu.Locations()
	if len(locs) != 5 {
		t.Fatalf("NTU has %d members, want 5", len(locs))
	}
	// SCE's entry locations are SCE.GO and SCE.SectionC (double-lined in
	// the figure).
	sce := ntu.Child(SCE)
	entries := sce.Entries()
	if len(entries) != 2 || entries[0] != SCEGO || entries[1] != SCESectionC {
		t.Errorf("SCE entries = %v", entries)
	}
	// "The edge between SCE.SectionB and CAIS shows one to go from
	// SCE.SectionB to CAIS directly and vice versa."
	if !sce.HasEdge(SCESectionB, CAIS) || !sce.HasEdge(CAIS, SCESectionB) {
		t.Error("SectionB–CAIS edge missing")
	}
	// Part-of relation: CAIS is part of NTU (indirectly).
	if !ntu.Contains(CAIS) || !ntu.Contains(SCE) || ntu.Contains("Mars") {
		t.Error("Contains (part-of) broken")
	}
	// 7 + 7 + 3 singles = 17 primitive locations.
	if got := len(ntu.Primitives()); got != 17 {
		t.Errorf("NTU primitives = %d, want 17", got)
	}
	if g := ntu.FindGraphOf(CAIS); g == nil || g.Name() != SCE {
		t.Errorf("FindGraphOf(CAIS) = %v", g)
	}
	if g := ntu.FindComposite(EEE); g == nil || g.Name() != EEE {
		t.Error("FindComposite(EEE) broken")
	}
	if ntu.FindGraphOf("Mars") != nil || ntu.FindComposite("Mars") != nil {
		t.Error("lookups of unknown ids should be nil")
	}
}

func TestSimpleRoutePaperExample(t *testing.T) {
	// ⟨SCE.Dean's Office, SCE.SectionA, SCE.SectionB, CAIS⟩ is a simple
	// route (§3.1).
	sce := NTUCampus().Child(SCE)
	r := Route{SCEDean, SCESectionA, SCESectionB, CAIS}
	if !IsSimpleRoute(sce, r) {
		t.Error("paper's simple route rejected")
	}
	// Not a route: skips a location.
	if IsSimpleRoute(sce, Route{SCEDean, CAIS}) {
		t.Error("non-adjacent hop accepted")
	}
	// Composite members disqualify a simple route.
	ntu := NTUCampus()
	if IsSimpleRoute(ntu, Route{SCE, EEE}) {
		t.Error("composite locations cannot form a simple route")
	}
	if IsSimpleRoute(sce, Route{}) {
		t.Error("empty route accepted")
	}
}

func TestComplexRoutePaperExample(t *testing.T) {
	// ⟨EEE.Dean's Office, EEE.SectionA, EEE.GO, SCE.GO, SCE.SectionA,
	// SCE.Dean's Office⟩ is a complex route (§3.1).
	ntu := NTUCampus()
	r := Route{EEEDean, EEESectionA, EEEGO, SCEGO, SCESectionA, SCEDean}
	if !IsComplexRoute(ntu, r) {
		t.Error("paper's complex route rejected")
	}
	// Crossing between non-entry locations of two schools is illegal.
	bad := Route{EEEDean, SCEDean}
	if IsComplexRoute(ntu, bad) {
		t.Error("non-entry school crossing accepted")
	}
	// Crossing at entries of non-adjacent schools is illegal.
	bad2 := Route{SCEGO, CEEEntrance}
	if IsComplexRoute(ntu, bad2) {
		t.Error("crossing between non-adjacent schools accepted")
	}
	// Unknown location.
	if IsComplexRoute(ntu, Route{"Mars"}) {
		t.Error("unknown location accepted")
	}
	if IsComplexRoute(ntu, Route{}) {
		t.Error("empty route accepted")
	}
	// SectionC is also an entry, so EEE.SectionC → SCE.SectionC crossing
	// is legal under Def. complex route.
	if !IsComplexRoute(ntu, Route{Lab2, EEESectionC, SCESectionC, CHIPES}) {
		t.Error("entry-to-entry crossing via SectionC rejected")
	}
	if !IsComplexRoute(ntu, Route{EEEGO, SCESectionC}) {
		t.Error("cross-entry pair GO→SectionC rejected")
	}
}

func TestRouteAccessors(t *testing.T) {
	r := Route{SCEGO, SCESectionA, CAIS}
	if r.Source() != SCEGO || r.Destination() != CAIS {
		t.Error("source/destination broken")
	}
	var empty Route
	if empty.Source() != "" || empty.Destination() != "" {
		t.Error("empty route accessors should return empty id")
	}
	want := "⟨SCE.GO, SCE.SectionA, CAIS⟩"
	if r.String() != want {
		t.Errorf("String = %s, want %s", r, want)
	}
}

func TestGraphString(t *testing.T) {
	g := Fig4Graph()
	s := g.String()
	if !strings.Contains(s, "A*") {
		t.Errorf("entry A should be starred in %q", s)
	}
	if !strings.HasPrefix(s, "Fig4{") {
		t.Errorf("String = %q", s)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := Fig4Graph()
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 4 {
		t.Fatalf("Fig4 has %d edges, want 4", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("Edges must be deterministic")
		}
		if e1[i][0] > e1[i][1] {
			t.Fatal("edge endpoints must be ordered")
		}
	}
}

func TestEntryPrimitivesNested(t *testing.T) {
	// A campus whose entry is a composite building: entries resolve
	// recursively to the building's entry rooms.
	building := New("B1")
	_ = building.AddLocation("lobby")
	_ = building.AddLocation("office")
	_ = building.AddEdge("lobby", "office")
	_ = building.SetEntry("lobby")
	campus := New("Campus")
	_ = campus.AddComposite(building)
	_ = campus.AddLocation("yard")
	_ = campus.AddEdge("B1", "yard")
	_ = campus.SetEntry("B1")
	if err := campus.Validate(); err != nil {
		t.Fatal(err)
	}
	eps := campus.EntryPrimitives()
	if len(eps) != 1 || eps[0] != "lobby" {
		t.Errorf("EntryPrimitives = %v, want [lobby]", eps)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	for _, g := range []*Graph{NTUCampus(), Fig4Graph()} {
		data, err := MarshalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalGraph(data)
		if err != nil {
			t.Fatal(err)
		}
		if back.String() != g.String() {
			t.Errorf("round trip changed graph:\n got %s\nwant %s", back, g)
		}
		data2, _ := MarshalGraph(back)
		if string(data) != string(data2) {
			t.Error("second marshal differs: serialisation not canonical")
		}
	}
}

func TestSpecErrors(t *testing.T) {
	if _, err := FromSpec(Spec{}); err == nil {
		t.Error("unnamed spec should fail")
	}
	if _, err := FromSpec(Spec{Name: "g", Primitives: []ID{"a", "a"}}); err == nil {
		t.Error("duplicate primitive should fail")
	}
	if _, err := FromSpec(Spec{Name: "g", Primitives: []ID{"a"}, Entries: []ID{"zzz"}}); err == nil {
		t.Error("unknown entry should fail")
	}
	if _, err := FromSpec(Spec{Name: "g", Primitives: []ID{"a"}, Edges: [][2]ID{{"a", "zzz"}}}); err == nil {
		t.Error("bad edge should fail")
	}
	if _, err := UnmarshalGraph([]byte("{nope")); err == nil {
		t.Error("bad json should fail")
	}
	// Spec that fails validation (no entries).
	if _, err := FromSpec(Spec{Name: "g", Primitives: []ID{"a"}}); err == nil {
		t.Error("entry-less spec should fail validation")
	}
}

func TestLocationsAndNeighborsCopy(t *testing.T) {
	g := Fig4Graph()
	locs := g.Locations()
	locs[0] = "mutated"
	if g.Locations()[0] != "A" {
		t.Error("Locations must return a copy")
	}
	ns := g.Neighbors("A")
	if len(ns) != 2 {
		t.Fatalf("A neighbours = %v", ns)
	}
	ns[0] = "mutated"
	if g.Neighbors("A")[0] != "B" {
		t.Error("Neighbors must return a copy")
	}
	if g.Neighbors("zzz") != nil && len(g.Neighbors("zzz")) != 0 {
		t.Error("unknown location has no neighbours")
	}
}
