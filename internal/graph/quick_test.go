package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// buildRandomCampus nests random buildings under a campus, exercising the
// full recursive structure.
func buildRandomCampus(rng *rand.Rand, trial int) *Graph {
	campus := New(ID(fmt.Sprintf("campus%d", trial)))
	nb := 1 + rng.Intn(4)
	var names []ID
	for b := 0; b < nb; b++ {
		bld := New(ID(fmt.Sprintf("c%d_b%d", trial, b)))
		rooms := 1 + rng.Intn(5)
		var ids []ID
		for r := 0; r < rooms; r++ {
			id := ID(fmt.Sprintf("c%d_b%d_r%d", trial, b, r))
			ids = append(ids, id)
			_ = bld.AddLocation(id)
			if r > 0 {
				_ = bld.AddEdge(ids[rng.Intn(r)], id)
			}
		}
		_ = bld.SetEntry(ids[rng.Intn(rooms)])
		if rng.Intn(3) == 0 && rooms > 1 {
			_ = bld.SetEntryOnly(ids[rng.Intn(rooms)])
			_ = bld.SetExitOnly(ids[rng.Intn(rooms)])
		}
		_ = campus.AddComposite(bld)
		names = append(names, bld.Name())
	}
	for b := 1; b < nb; b++ {
		_ = campus.AddEdge(names[rng.Intn(b)], names[b])
	}
	_ = campus.SetEntry(names[rng.Intn(nb)])
	return campus
}

// Property: Spec round-trips preserve structure, entry kinds and the
// expansion, and the serialisation is canonical (stable under a second
// round trip).
func TestPropSpecRoundTripRandomCampuses(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 150; trial++ {
		g := buildRandomCampus(rng, trial)
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: fixture invalid: %v", trial, err)
		}
		data, err := MarshalGraph(g)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalGraph(data)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if back.String() != g.String() {
			t.Fatalf("trial %d: structure changed\n got %s\nwant %s", trial, back, g)
		}
		data2, _ := MarshalGraph(back)
		if string(data) != string(data2) {
			t.Fatalf("trial %d: serialisation not canonical", trial)
		}
		// Expansions agree node-for-node and edge-for-edge.
		f1, f2 := Expand(g), Expand(back)
		if fmt.Sprint(f1.Nodes) != fmt.Sprint(f2.Nodes) ||
			fmt.Sprint(f1.EntryIDs()) != fmt.Sprint(f2.EntryIDs()) ||
			fmt.Sprint(f1.ExitIDs()) != fmt.Sprint(f2.ExitIDs()) {
			t.Fatalf("trial %d: expansion differs", trial)
		}
		for i, id := range f1.Nodes {
			if fmt.Sprint(f1.NeighborsOf(id)) != fmt.Sprint(f2.NeighborsOf(id)) {
				t.Fatalf("trial %d: adjacency differs at %s (%d)", trial, id, i)
			}
		}
	}
}

// Property: ShortestRoute on a validated campus expansion always exists
// between any two primitives (connectivity), is a valid complex route,
// and has minimal length among AllRoutes on small instances.
func TestPropShortestRouteValidAndMinimal(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 60; trial++ {
		g := buildRandomCampus(rng, 1000+trial)
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		f := Expand(g)
		n := len(f.Nodes)
		src := f.Nodes[rng.Intn(n)]
		dst := f.Nodes[rng.Intn(n)]
		r := f.ShortestRoute(src, dst)
		if r == nil {
			t.Fatalf("trial %d: no route %s→%s in connected graph", trial, src, dst)
		}
		if !IsComplexRoute(g, r) {
			t.Fatalf("trial %d: shortest route %v is not a complex route", trial, r)
		}
		if n <= 10 {
			best := -1
			for _, alt := range f.AllRoutes(src, dst, 0) {
				if best < 0 || len(alt) < best {
					best = len(alt)
				}
			}
			if best > 0 && len(r) != best {
				t.Fatalf("trial %d: shortest %d vs enumerated best %d", trial, len(r), best)
			}
		}
	}
}
