package graph

import (
	"encoding/json"
	"fmt"
)

// Spec is the serialisable description of a (multilevel) location graph,
// used by the storage engine, the wire protocol, and configuration files.
type Spec struct {
	Name       ID      `json:"name"`
	Primitives []ID    `json:"primitives,omitempty"`
	Composites []Spec  `json:"composites,omitempty"`
	Edges      [][2]ID `json:"edges,omitempty"`
	// Entries are the paper-default entry locations (enter and exit);
	// EntryOnly and ExitOnly carry the separate-treatment extension.
	Entries   []ID `json:"entries,omitempty"`
	EntryOnly []ID `json:"entry_only,omitempty"`
	ExitOnly  []ID `json:"exit_only,omitempty"`
}

// ToSpec converts a built graph into its serialisable form.
func ToSpec(g *Graph) Spec {
	s := Spec{Name: g.name}
	for _, id := range g.order {
		n := g.nodes[id]
		if n.child == nil {
			s.Primitives = append(s.Primitives, id)
		} else {
			s.Composites = append(s.Composites, ToSpec(n.child))
		}
	}
	s.Edges = g.Edges()
	s.Entries = g.entriesExact(kindEntry | kindExit)
	s.EntryOnly = g.entriesExact(kindEntry)
	s.ExitOnly = g.entriesExact(kindExit)
	return s
}

// FromSpec rebuilds a graph from its serialisable form and validates it.
func FromSpec(s Spec) (*Graph, error) {
	g, err := fromSpec(s)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func fromSpec(s Spec) (*Graph, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("graph: spec has no name")
	}
	g := New(s.Name)
	for _, p := range s.Primitives {
		if err := g.AddLocation(p); err != nil {
			return nil, err
		}
	}
	for _, cs := range s.Composites {
		child, err := fromSpec(cs)
		if err != nil {
			return nil, err
		}
		if err := g.AddComposite(child); err != nil {
			return nil, err
		}
	}
	for _, e := range s.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	if err := g.SetEntry(s.Entries...); err != nil {
		return nil, err
	}
	if err := g.SetEntryOnly(s.EntryOnly...); err != nil {
		return nil, err
	}
	if err := g.SetExitOnly(s.ExitOnly...); err != nil {
		return nil, err
	}
	return g, nil
}

// MarshalGraph encodes the graph as canonical JSON.
func MarshalGraph(g *Graph) ([]byte, error) {
	return json.Marshal(ToSpec(g))
}

// UnmarshalGraph decodes a graph from JSON produced by MarshalGraph and
// validates it.
func UnmarshalGraph(data []byte) (*Graph, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("graph: decode: %w", err)
	}
	return FromSpec(s)
}
