// Package graph implements LTAM's location model: location graphs
// (Definition 1), multilevel location graphs (Definition 2), entry
// locations, simple and complex routes (§3.1), and the expansion of a
// multilevel graph into a flat primitive-location graph on which route
// finding and the inaccessible-location algorithm operate.
//
// A composite location *is* a (multilevel) location graph, so a single
// recursive Graph type represents both: a Def.-1 location graph is a Graph
// whose nodes are all primitive, and a Def.-2 multilevel graph is a Graph
// some of whose nodes carry child graphs.
package graph

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ID names a location — primitive or composite. IDs must be unique across
// an entire multilevel graph (the paper requires the constituent graphs to
// have mutually disjoint locations).
type ID string

// node is a single vertex of a graph: a primitive location (child == nil)
// or a composite location carrying its own graph.
type node struct {
	id    ID
	child *Graph
}

// Graph is a (multilevel) location graph. The zero value is unusable; use
// New. Graphs are built once and then treated as immutable by the rest of
// the system; none of the methods mutate after Freeze/Validate.
// accessKind is the bitmask of roles an entry/exit location plays.
type accessKind uint8

const (
	kindEntry accessKind = 1 << iota // users may enter the graph here
	kindExit                         // users may leave the graph here
)

type Graph struct {
	name    ID
	nodes   map[ID]*node
	order   []ID // insertion order, for deterministic iteration
	adj     map[ID][]ID
	entries map[ID]accessKind
}

// New creates an empty graph named name (the name doubles as the composite
// location's ID when the graph is nested inside a parent).
func New(name ID) *Graph {
	return &Graph{
		name:    name,
		nodes:   make(map[ID]*node),
		adj:     make(map[ID][]ID),
		entries: make(map[ID]accessKind),
	}
}

// Name returns the graph's (composite location's) name.
func (g *Graph) Name() ID { return g.name }

// AddLocation adds a primitive location to the graph.
func (g *Graph) AddLocation(id ID) error {
	if id == "" {
		return errors.New("graph: empty location id")
	}
	if _, dup := g.nodes[id]; dup {
		return fmt.Errorf("graph: duplicate location %q in %q", id, g.name)
	}
	g.nodes[id] = &node{id: id}
	g.order = append(g.order, id)
	return nil
}

// AddComposite nests child as a composite location of g. The child's name
// becomes the composite location's ID within g.
func (g *Graph) AddComposite(child *Graph) error {
	if child == nil || child.name == "" {
		return errors.New("graph: nil or unnamed child graph")
	}
	if _, dup := g.nodes[child.name]; dup {
		return fmt.Errorf("graph: duplicate location %q in %q", child.name, g.name)
	}
	g.nodes[child.name] = &node{id: child.name, child: child}
	g.order = append(g.order, child.name)
	return nil
}

// AddEdge records the bidirectional edge (a, b): b can be reached from a
// directly without going through other locations, and vice versa (Def. 1).
func (g *Graph) AddEdge(a, b ID) error {
	if a == b {
		return fmt.Errorf("graph: self-edge on %q", a)
	}
	for _, id := range []ID{a, b} {
		if _, ok := g.nodes[id]; !ok {
			return fmt.Errorf("graph: edge endpoint %q not in %q", id, g.name)
		}
	}
	for _, n := range g.adj[a] {
		if n == b {
			return fmt.Errorf("graph: duplicate edge (%q, %q)", a, b)
		}
	}
	g.adj[a] = append(g.adj[a], b)
	g.adj[b] = append(g.adj[b], a)
	return nil
}

// SetEntry designates the given locations of g as entry locations in the
// paper's default sense: the first location a user must visit before
// visiting others in the graph, AND the last before exiting (§3.1).
func (g *Graph) SetEntry(ids ...ID) error { return g.mark(kindEntry|kindExit, ids) }

// SetEntryOnly designates locations through which users may enter the
// graph but not leave it — the separate-entry/exit treatment the paper
// flags as a straightforward extension ("it is possible that the entry
// and exit locations have to be treated separately").
func (g *Graph) SetEntryOnly(ids ...ID) error { return g.mark(kindEntry, ids) }

// SetExitOnly designates locations through which users may leave the
// graph but not enter it (e.g. one-way emergency exits).
func (g *Graph) SetExitOnly(ids ...ID) error { return g.mark(kindExit, ids) }

func (g *Graph) mark(kind accessKind, ids []ID) error {
	for _, id := range ids {
		if _, ok := g.nodes[id]; !ok {
			return fmt.Errorf("graph: entry %q not in %q", id, g.name)
		}
		g.entries[id] |= kind
	}
	return nil
}

// Locations returns the graph's direct member locations (primitive and
// composite) in insertion order.
func (g *Graph) Locations() []ID {
	out := make([]ID, len(g.order))
	copy(out, g.order)
	return out
}

// Neighbors returns the direct neighbours of id within g, in edge
// insertion order.
func (g *Graph) Neighbors(id ID) []ID {
	out := make([]ID, len(g.adj[id]))
	copy(out, g.adj[id])
	return out
}

// HasEdge reports whether (a,b) is an edge of g (in either direction).
func (g *Graph) HasEdge(a, b ID) bool {
	for _, n := range g.adj[a] {
		if n == b {
			return true
		}
	}
	return false
}

// Entries returns the locations users may enter g through, in insertion
// order.
func (g *Graph) Entries() []ID { return g.byKind(kindEntry) }

// Exits returns the locations users may leave g through, in insertion
// order. For graphs built with SetEntry alone, Exits equals Entries.
func (g *Graph) Exits() []ID { return g.byKind(kindExit) }

func (g *Graph) byKind(kind accessKind) []ID {
	var out []ID
	for _, id := range g.order {
		if g.entries[id]&kind != 0 {
			out = append(out, id)
		}
	}
	return out
}

// IsEntry reports whether users may enter g at id.
func (g *Graph) IsEntry(id ID) bool { return g.entries[id]&kindEntry != 0 }

// IsExit reports whether users may leave g at id.
func (g *Graph) IsExit(id ID) bool { return g.entries[id]&kindExit != 0 }

// Child returns the graph nested under the composite location id, or nil
// when id is primitive or absent.
func (g *Graph) Child(id ID) *Graph {
	if n, ok := g.nodes[id]; ok {
		return n.child
	}
	return nil
}

// IsComposite reports whether id names a composite member of g.
func (g *Graph) IsComposite(id ID) bool { return g.Child(id) != nil }

// HasLocation reports whether id is a direct member of g.
func (g *Graph) HasLocation(id ID) bool {
	_, ok := g.nodes[id]
	return ok
}

// Contains reports whether id is "part of" g in the paper's sense: a
// primitive or composite location that directly or indirectly belongs to g.
func (g *Graph) Contains(id ID) bool {
	if _, ok := g.nodes[id]; ok {
		return true
	}
	for _, nid := range g.order {
		if c := g.nodes[nid].child; c != nil && c.Contains(id) {
			return true
		}
	}
	return false
}

// Primitives returns every primitive location that is part of g, in
// depth-first insertion order.
func (g *Graph) Primitives() []ID {
	var out []ID
	for _, id := range g.order {
		n := g.nodes[id]
		if n.child == nil {
			out = append(out, id)
		} else {
			out = append(out, n.child.Primitives()...)
		}
	}
	return out
}

// FindGraphOf returns the graph that directly contains the primitive
// location id (which may be g itself or a descendant), or nil.
func (g *Graph) FindGraphOf(id ID) *Graph {
	if n, ok := g.nodes[id]; ok && n.child == nil {
		return g
	}
	for _, nid := range g.order {
		if c := g.nodes[nid].child; c != nil {
			if found := c.FindGraphOf(id); found != nil {
				return found
			}
		}
	}
	return nil
}

// FindComposite returns the descendant graph named id (possibly g itself),
// or nil.
func (g *Graph) FindComposite(id ID) *Graph {
	if g.name == id {
		return g
	}
	for _, nid := range g.order {
		if c := g.nodes[nid].child; c != nil {
			if found := c.FindComposite(id); found != nil {
				return found
			}
		}
	}
	return nil
}

// EntryPrimitives resolves g's entry locations down to primitive
// locations: a primitive entry stands for itself; a composite entry stands
// for the entry primitives of its child graph. These are exactly the
// locations through which a complex route may enter g.
func (g *Graph) EntryPrimitives() []ID { return g.kindPrimitives(kindEntry) }

// ExitPrimitives resolves g's exit locations down to primitives — the
// locations through which a user may leave g.
func (g *Graph) ExitPrimitives() []ID { return g.kindPrimitives(kindExit) }

func (g *Graph) kindPrimitives(kind accessKind) []ID {
	var out []ID
	for _, id := range g.order {
		if g.entries[id]&kind == 0 {
			continue
		}
		if c := g.nodes[id].child; c != nil {
			out = append(out, c.kindPrimitives(kind)...)
		} else {
			out = append(out, id)
		}
	}
	return out
}

// Validate checks the structural invariants the paper requires:
//   - at least one location;
//   - at least one entry location at every level;
//   - connectivity at every level ("location graphs are connected graphs");
//   - globally unique location IDs ("mutually disjoint locations");
//   - every nested graph validates recursively.
func (g *Graph) Validate() error {
	seen := map[ID]bool{}
	return g.validate(seen, true)
}

func (g *Graph) validate(seen map[ID]bool, root bool) error {
	if len(g.order) == 0 {
		return fmt.Errorf("graph %q: no locations", g.name)
	}
	if len(g.byKind(kindEntry)) == 0 {
		return fmt.Errorf("graph %q: no entry location", g.name)
	}
	if len(g.byKind(kindExit)) == 0 {
		return fmt.Errorf("graph %q: no exit location (mark one with SetEntry or SetExitOnly)", g.name)
	}
	if !root {
		if seen[g.name] {
			return fmt.Errorf("graph: duplicate location id %q", g.name)
		}
		seen[g.name] = true
	}
	for _, id := range g.order {
		n := g.nodes[id]
		if n.child == nil {
			if seen[id] {
				return fmt.Errorf("graph: duplicate location id %q", id)
			}
			seen[id] = true
		} else {
			if n.child.name != id {
				return fmt.Errorf("graph %q: composite node %q does not match child name %q", g.name, id, n.child.name)
			}
			if err := n.child.validate(seen, false); err != nil {
				return err
			}
		}
	}
	// Connectivity at this level.
	if len(g.order) > 1 {
		visited := map[ID]bool{}
		stack := []ID{g.order[0]}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if visited[cur] {
				continue
			}
			visited[cur] = true
			stack = append(stack, g.adj[cur]...)
		}
		for _, id := range g.order {
			if !visited[id] {
				return fmt.Errorf("graph %q: location %q unreachable (graphs must be connected)", g.name, id)
			}
		}
	}
	return nil
}

// String renders a compact textual form for debugging, e.g.
// "NTU{SCE{...}, EEE{...}; edges=...}".
func (g *Graph) String() string {
	var b strings.Builder
	g.write(&b)
	return b.String()
}

func (g *Graph) write(b *strings.Builder) {
	fmt.Fprintf(b, "%s{", g.name)
	for i, id := range g.order {
		if i > 0 {
			b.WriteString(", ")
		}
		if c := g.nodes[id].child; c != nil {
			c.write(b)
		} else {
			b.WriteString(string(id))
			switch g.entries[id] {
			case kindEntry | kindExit:
				b.WriteString("*")
			case kindEntry:
				b.WriteString("+") // enter-only
			case kindExit:
				b.WriteString("-") // exit-only
			}
		}
	}
	b.WriteString("}")
}

// entriesExact returns the locations whose access kind is exactly kind,
// for canonical serialisation.
func (g *Graph) entriesExact(kind accessKind) []ID {
	var out []ID
	for _, id := range g.order {
		if g.entries[id] == kind {
			out = append(out, id)
		}
	}
	return out
}

// Edges returns every edge of this level once, with endpoints ordered
// lexicographically and the list sorted, for deterministic serialisation.
func (g *Graph) Edges() [][2]ID {
	var out [][2]ID
	seen := map[[2]ID]bool{}
	for _, a := range g.order {
		for _, b := range g.adj[a] {
			e := [2]ID{a, b}
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			if !seen[e] {
				seen[e] = true
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}
