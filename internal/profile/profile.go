// Package profile implements LTAM's user profile database (Fig. 3). The
// profile store holds the subjects known to the system together with the
// relationships the rule engine's subject operators query: the supervisor
// relation (Example 1's Supervisor_Of), group membership, and role
// assignment. Changes are observable so that derived authorizations can be
// re-derived when, e.g., a user is assigned a different supervisor — the
// behaviour Example 1 calls out ("the system is able to automatically
// derive the authorizations for the new supervisor while the authorization
// for Bob will be revoked").
package profile

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// SubjectID identifies a user.
type SubjectID string

// Subject is one user profile record.
type Subject struct {
	ID         SubjectID
	Name       string
	Supervisor SubjectID // empty when the subject has no supervisor
	Roles      []string
	Groups     []string
	Attributes map[string]string
}

// clone returns a deep copy so callers can never alias store internals.
func (s *Subject) clone() *Subject {
	cp := *s
	cp.Roles = append([]string(nil), s.Roles...)
	cp.Groups = append([]string(nil), s.Groups...)
	if s.Attributes != nil {
		cp.Attributes = make(map[string]string, len(s.Attributes))
		for k, v := range s.Attributes {
			cp.Attributes[k] = v
		}
	}
	return &cp
}

// ErrNotFound is returned when a subject is unknown.
var ErrNotFound = errors.New("profile: subject not found")

// ChangeKind classifies a profile mutation for observers.
type ChangeKind int

// The change kinds reported to watchers.
const (
	ChangeAdded ChangeKind = iota
	ChangeUpdated
	ChangeRemoved
)

func (k ChangeKind) String() string {
	switch k {
	case ChangeAdded:
		return "added"
	case ChangeUpdated:
		return "updated"
	case ChangeRemoved:
		return "removed"
	default:
		return fmt.Sprintf("ChangeKind(%d)", int(k))
	}
}

// Change describes one profile mutation.
type Change struct {
	Kind    ChangeKind
	Subject SubjectID
}

// Watcher receives profile changes synchronously (in registration order)
// after each successful mutation.
type Watcher func(Change)

// DB is the in-memory user profile database. It is safe for concurrent
// use.
type DB struct {
	mu       sync.RWMutex
	subjects map[SubjectID]*Subject
	watchers []Watcher

	// version counts mutations; query caches key memoized per-subject
	// results on it (profile changes can re-derive authorizations and
	// change the known-subject set).
	version atomic.Uint64
}

// Version returns the database's mutation epoch: it increases on every
// successful Put, Remove or Restore and is stable between changes.
func (db *DB) Version() uint64 { return db.version.Load() }

// NewDB returns an empty profile database.
func NewDB() *DB {
	return &DB{subjects: make(map[SubjectID]*Subject)}
}

// Watch registers w to be called after every mutation. Watch must not be
// called from inside a watcher.
func (db *DB) Watch(w Watcher) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.watchers = append(db.watchers, w)
}

func (db *DB) notify(c Change) {
	for _, w := range db.watchers {
		w(c)
	}
}

// Put inserts or replaces a subject record.
func (db *DB) Put(s Subject) error {
	if s.ID == "" {
		return errors.New("profile: empty subject id")
	}
	db.mu.Lock()
	_, existed := db.subjects[s.ID]
	db.subjects[s.ID] = s.clone()
	watchers := db.watchers
	db.version.Add(1)
	db.mu.Unlock()
	kind := ChangeAdded
	if existed {
		kind = ChangeUpdated
	}
	for _, w := range watchers {
		w(Change{Kind: kind, Subject: s.ID})
	}
	return nil
}

// Remove deletes a subject record; removing an unknown subject is an
// error so that typos in administrative tooling surface.
func (db *DB) Remove(id SubjectID) error {
	db.mu.Lock()
	if _, ok := db.subjects[id]; !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	delete(db.subjects, id)
	watchers := db.watchers
	db.version.Add(1)
	db.mu.Unlock()
	for _, w := range watchers {
		w(Change{Kind: ChangeRemoved, Subject: id})
	}
	return nil
}

// Get returns a copy of the subject record.
func (db *DB) Get(id SubjectID) (Subject, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.subjects[id]
	if !ok {
		return Subject{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *s.clone(), nil
}

// Exists reports whether the subject is known.
func (db *DB) Exists(id SubjectID) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	_, ok := db.subjects[id]
	return ok
}

// SupervisorOf returns the supervisor of id, implementing the paper's
// Supervisor_Of subject operator ("returns the supervisor of a user by
// querying the user profile database"). It returns ErrNotFound for an
// unknown subject and ok=false when the subject has no supervisor.
func (db *DB) SupervisorOf(id SubjectID) (SubjectID, bool, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, okSub := db.subjects[id]
	if !okSub {
		return "", false, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if s.Supervisor == "" {
		return "", false, nil
	}
	return s.Supervisor, true, nil
}

// DirectReports returns the subjects whose supervisor is id, sorted.
func (db *DB) DirectReports(id SubjectID) []SubjectID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []SubjectID
	for _, s := range db.subjects {
		if s.Supervisor == id {
			out = append(out, s.ID)
		}
	}
	sortSubjects(out)
	return out
}

// ManagementChain returns the chain of supervisors of id, nearest first,
// stopping at the top or at a cycle (a cycle is reported as an error so
// that bad data is caught rather than looping).
func (db *DB) ManagementChain(id SubjectID) ([]SubjectID, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if _, ok := db.subjects[id]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	var out []SubjectID
	seen := map[SubjectID]bool{id: true}
	cur := id
	for {
		s := db.subjects[cur]
		if s == nil || s.Supervisor == "" {
			return out, nil
		}
		next := s.Supervisor
		if seen[next] {
			return out, fmt.Errorf("profile: supervisor cycle at %s", next)
		}
		out = append(out, next)
		seen[next] = true
		cur = next
	}
}

// MembersOf returns the subjects belonging to the named group, sorted —
// the membership query behind group-based subject operators.
func (db *DB) MembersOf(group string) []SubjectID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []SubjectID
	for _, s := range db.subjects {
		for _, g := range s.Groups {
			if g == group {
				out = append(out, s.ID)
				break
			}
		}
	}
	sortSubjects(out)
	return out
}

// HoldersOf returns the subjects holding the named role, sorted.
func (db *DB) HoldersOf(role string) []SubjectID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []SubjectID
	for _, s := range db.subjects {
		for _, r := range s.Roles {
			if r == role {
				out = append(out, s.ID)
				break
			}
		}
	}
	sortSubjects(out)
	return out
}

// HasRole reports whether the subject holds the role.
func (db *DB) HasRole(id SubjectID, role string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.subjects[id]
	if !ok {
		return false
	}
	for _, r := range s.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// Subjects returns all subject IDs, sorted.
func (db *DB) Subjects() []SubjectID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]SubjectID, 0, len(db.subjects))
	for id := range db.subjects {
		out = append(out, id)
	}
	sortSubjects(out)
	return out
}

// Len returns the number of subjects.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.subjects)
}

// Snapshot returns a deep copy of every record, sorted by ID, for
// persistence.
func (db *DB) Snapshot() []Subject {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]Subject, 0, len(db.subjects))
	for _, s := range db.subjects {
		out = append(out, *s.clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Restore replaces the database contents with the given records (e.g.
// loaded from a snapshot). Watchers are not invoked.
func (db *DB) Restore(subjects []Subject) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	fresh := make(map[SubjectID]*Subject, len(subjects))
	for i := range subjects {
		s := subjects[i]
		if s.ID == "" {
			return errors.New("profile: restore: empty subject id")
		}
		if _, dup := fresh[s.ID]; dup {
			return fmt.Errorf("profile: restore: duplicate subject %s", s.ID)
		}
		fresh[s.ID] = s.clone()
	}
	db.subjects = fresh
	db.version.Add(1)
	return nil
}

func sortSubjects(ids []SubjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
