package profile

import (
	"errors"
	"testing"
)

func seed(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	for _, s := range []Subject{
		{ID: "alice", Name: "Alice", Supervisor: "bob", Groups: []string{"cais-staff"}, Roles: []string{"researcher"}},
		{ID: "bob", Name: "Bob", Supervisor: "carol", Groups: []string{"cais-staff"}, Roles: []string{"supervisor"}},
		{ID: "carol", Name: "Carol", Roles: []string{"dean", "supervisor"}},
		{ID: "dave", Name: "Dave", Groups: []string{"visitors"}},
	} {
		if err := db.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestPutGet(t *testing.T) {
	db := seed(t)
	s, err := db.Get("alice")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "Alice" || s.Supervisor != "bob" {
		t.Errorf("got %+v", s)
	}
	if err := db.Put(Subject{}); err == nil {
		t.Error("empty id should fail")
	}
	if _, err := db.Get("zzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("want ErrNotFound, got %v", err)
	}
	if !db.Exists("bob") || db.Exists("zzz") {
		t.Error("Exists broken")
	}
	if db.Len() != 4 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := seed(t)
	s, _ := db.Get("alice")
	s.Roles[0] = "mutated"
	s.Groups[0] = "mutated"
	again, _ := db.Get("alice")
	if again.Roles[0] != "researcher" || again.Groups[0] != "cais-staff" {
		t.Error("Get must return a deep copy")
	}
}

func TestPutClonesInput(t *testing.T) {
	db := NewDB()
	roles := []string{"r1"}
	attrs := map[string]string{"k": "v"}
	_ = db.Put(Subject{ID: "x", Roles: roles, Attributes: attrs})
	roles[0] = "mutated"
	attrs["k"] = "mutated"
	s, _ := db.Get("x")
	if s.Roles[0] != "r1" || s.Attributes["k"] != "v" {
		t.Error("Put must deep-copy its input")
	}
}

func TestSupervisorOfPaperExample(t *testing.T) {
	// Example 1: "Suppose Alice's supervisor is Bob" — Supervisor_Of
	// queries the user profile database.
	db := seed(t)
	sup, ok, err := db.SupervisorOf("alice")
	if err != nil || !ok || sup != "bob" {
		t.Errorf("SupervisorOf(alice) = %v %v %v", sup, ok, err)
	}
	// Carol has no supervisor.
	_, ok, err = db.SupervisorOf("carol")
	if err != nil || ok {
		t.Errorf("SupervisorOf(carol) should be absent, got ok=%v err=%v", ok, err)
	}
	if _, _, err = db.SupervisorOf("zzz"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown subject: %v", err)
	}
}

func TestDirectReportsAndChain(t *testing.T) {
	db := seed(t)
	if got := db.DirectReports("bob"); len(got) != 1 || got[0] != "alice" {
		t.Errorf("DirectReports(bob) = %v", got)
	}
	if got := db.DirectReports("dave"); len(got) != 0 {
		t.Errorf("DirectReports(dave) = %v", got)
	}
	chain, err := db.ManagementChain("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2 || chain[0] != "bob" || chain[1] != "carol" {
		t.Errorf("chain = %v", chain)
	}
	if _, err := db.ManagementChain("zzz"); !errors.Is(err, ErrNotFound) {
		t.Error("unknown subject should fail")
	}
}

func TestManagementChainCycle(t *testing.T) {
	db := NewDB()
	_ = db.Put(Subject{ID: "a", Supervisor: "b"})
	_ = db.Put(Subject{ID: "b", Supervisor: "a"})
	if _, err := db.ManagementChain("a"); err == nil {
		t.Error("cycle should be reported")
	}
}

func TestMembersRolesGroups(t *testing.T) {
	db := seed(t)
	if got := db.MembersOf("cais-staff"); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Errorf("MembersOf = %v", got)
	}
	if got := db.MembersOf("nobody"); len(got) != 0 {
		t.Errorf("MembersOf(nobody) = %v", got)
	}
	if got := db.HoldersOf("supervisor"); len(got) != 2 || got[0] != "bob" || got[1] != "carol" {
		t.Errorf("HoldersOf = %v", got)
	}
	if !db.HasRole("carol", "dean") || db.HasRole("alice", "dean") || db.HasRole("zzz", "dean") {
		t.Error("HasRole broken")
	}
}

func TestRemove(t *testing.T) {
	db := seed(t)
	if err := db.Remove("dave"); err != nil {
		t.Fatal(err)
	}
	if db.Exists("dave") {
		t.Error("dave should be gone")
	}
	if err := db.Remove("dave"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove: %v", err)
	}
}

func TestWatchers(t *testing.T) {
	db := NewDB()
	var got []Change
	db.Watch(func(c Change) { got = append(got, c) })
	_ = db.Put(Subject{ID: "x"})
	_ = db.Put(Subject{ID: "x", Name: "X"})
	_ = db.Remove("x")
	if len(got) != 3 {
		t.Fatalf("changes = %v", got)
	}
	if got[0].Kind != ChangeAdded || got[1].Kind != ChangeUpdated || got[2].Kind != ChangeRemoved {
		t.Errorf("kinds = %v", got)
	}
	for _, c := range got {
		if c.Subject != "x" {
			t.Errorf("subject = %v", c.Subject)
		}
	}
	// Failed mutations notify nobody.
	n := len(got)
	_ = db.Put(Subject{})
	_ = db.Remove("zzz")
	if len(got) != n {
		t.Error("failed mutations must not notify")
	}
}

func TestChangeKindString(t *testing.T) {
	if ChangeAdded.String() != "added" || ChangeUpdated.String() != "updated" || ChangeRemoved.String() != "removed" {
		t.Error("ChangeKind strings broken")
	}
	if ChangeKind(99).String() != "ChangeKind(99)" {
		t.Error("unknown kind string broken")
	}
}

func TestSnapshotRestore(t *testing.T) {
	db := seed(t)
	snap := db.Snapshot()
	if len(snap) != 4 || snap[0].ID != "alice" {
		t.Fatalf("snapshot = %v", snap)
	}
	fresh := NewDB()
	if err := fresh.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.Len() != 4 {
		t.Error("restore lost subjects")
	}
	s, _ := fresh.Get("alice")
	if s.Supervisor != "bob" {
		t.Error("restore lost fields")
	}
	// Restore rejects bad data.
	if err := fresh.Restore([]Subject{{ID: ""}}); err == nil {
		t.Error("empty id in restore should fail")
	}
	if err := fresh.Restore([]Subject{{ID: "a"}, {ID: "a"}}); err == nil {
		t.Error("duplicate in restore should fail")
	}
}

func TestSubjectsSorted(t *testing.T) {
	db := seed(t)
	ids := db.Subjects()
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Errorf("unsorted: %v", ids)
		}
	}
}
