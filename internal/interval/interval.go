// Package interval implements the LTAM time model: chronons, closed time
// intervals, and normalised interval sets, together with the temporal
// operators used by authorization rules (WHENEVER, WHENEVERNOT, UNION,
// INTERSECTION).
//
// Time in LTAM (Yu & Lim, SDM 2004, §3.1) is discrete: a time unit is a
// chronon or a fixed number of chronons, and a time interval is a set of
// consecutive time units. All intervals are closed on both ends, exactly as
// written in the paper ([t0, t1] includes both t0 and t1). The right
// endpoint may be Inf, standing for the paper's ∞.
package interval

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Time is a point on the discrete LTAM time line, measured in chronons.
type Time int64

// Inf is the distinguished "∞" time used for unbounded interval ends.
// It compares greater than every finite Time.
const Inf Time = math.MaxInt64

// MinTime is the smallest representable time. It exists so that
// WHENEVERNOT and complement operations have a well-defined left edge when
// no rule-validity time is supplied.
const MinTime Time = math.MinInt64 / 2

// IsInf reports whether t is the infinite time.
func (t Time) IsInf() bool { return t == Inf }

// String renders the time, using "inf" for the infinite time.
func (t Time) String() string {
	if t.IsInf() {
		return "inf"
	}
	return strconv.FormatInt(int64(t), 10)
}

// Add returns t+d, saturating at Inf so that arithmetic on unbounded
// windows never wraps around.
func (t Time) Add(d Time) Time {
	if t.IsInf() || d.IsInf() {
		return Inf
	}
	s := int64(t) + int64(d)
	// Saturate on overflow in either direction.
	if (d > 0 && s < int64(t)) || s >= int64(Inf) {
		return Inf
	}
	if d < 0 && s > int64(t) {
		return MinTime
	}
	return Time(s)
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Interval is a closed interval [Start, End] of chronons. The zero value is
// the empty interval (it has Start > End is false for [0,0]; use Empty for
// an explicitly empty value).
//
// An Interval is valid when Start <= End. End may be Inf for an unbounded
// window; Start must be finite.
type Interval struct {
	Start Time
	End   Time
}

// Empty is the canonical empty ("null" in the paper) interval.
var Empty = Interval{Start: 1, End: 0}

// New returns the interval [start, end]. It panics if start is infinite;
// an inverted pair yields the canonical Empty interval, matching the
// paper's convention that max/min constructions produce "null" when the
// operands do not overlap.
func New(start, end Time) Interval {
	if start.IsInf() {
		panic("interval: start must be finite")
	}
	if start > end {
		return Empty
	}
	return Interval{Start: start, End: end}
}

// From returns the unbounded interval [start, ∞].
func From(start Time) Interval { return New(start, Inf) }

// Point returns the single-chronon interval [t, t].
func Point(t Time) Interval { return New(t, t) }

// IsEmpty reports whether iv denotes the null interval.
func (iv Interval) IsEmpty() bool { return iv.Start > iv.End }

// IsUnbounded reports whether the interval extends to ∞.
func (iv Interval) IsUnbounded() bool { return !iv.IsEmpty() && iv.End.IsInf() }

// Contains reports whether t lies inside the closed interval.
func (iv Interval) Contains(t Time) bool {
	return !iv.IsEmpty() && iv.Start <= t && t <= iv.End
}

// ContainsInterval reports whether other lies entirely within iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.IsEmpty() {
		return true
	}
	return !iv.IsEmpty() && iv.Start <= other.Start && other.End <= iv.End
}

// Overlaps reports whether the two closed intervals share at least one
// chronon.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return false
	}
	return iv.Start <= other.End && other.Start <= iv.End
}

// Adjacent reports whether the two intervals are disjoint but touch, i.e.
// their union is a single run of consecutive chronons.
func (iv Interval) Adjacent(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() || iv.Overlaps(other) {
		return false
	}
	if iv.End < other.Start {
		return !iv.End.IsInf() && iv.End+1 == other.Start
	}
	return !other.End.IsInf() && other.End+1 == iv.Start
}

// Intersect returns the overlap of the two intervals, which is the paper's
// binary INTERSECTION operator: for [t0,t1] and [t2,t3] with t2 <= t1 it
// returns [t2,t1] (generalised to [max(t0,t2), min(t1,t3)]), otherwise the
// null interval.
func (iv Interval) Intersect(other Interval) Interval {
	if !iv.Overlaps(other) {
		return Empty
	}
	return Interval{Start: Max(iv.Start, other.Start), End: Min(iv.End, other.End)}
}

// Hull returns the smallest single interval covering both operands.
func (iv Interval) Hull(other Interval) Interval {
	if iv.IsEmpty() {
		return other
	}
	if other.IsEmpty() {
		return iv
	}
	return Interval{Start: Min(iv.Start, other.Start), End: Max(iv.End, other.End)}
}

// Union implements the paper's binary UNION operator: given [t0,t1] and
// [t2,t3] (with t0 <= t2 after ordering), it returns a single interval
// [t0,t3] when t2 <= t1 (they overlap), and the two original intervals
// otherwise. Touching-but-disjoint intervals are also coalesced, since a
// set of consecutive time units is one interval by the paper's definition.
func (iv Interval) Union(other Interval) []Interval {
	switch {
	case iv.IsEmpty() && other.IsEmpty():
		return nil
	case iv.IsEmpty():
		return []Interval{other}
	case other.IsEmpty():
		return []Interval{iv}
	}
	a, b := iv, other
	if b.Start < a.Start {
		a, b = b, a
	}
	if a.Overlaps(b) || a.Adjacent(b) {
		return []Interval{a.Hull(b)}
	}
	return []Interval{a, b}
}

// Size returns the number of chronons in the interval, or -1 when the
// interval is unbounded. The empty interval has size 0. This is the
// paper's "size of the time interval".
func (iv Interval) Size() int64 {
	if iv.IsEmpty() {
		return 0
	}
	if iv.IsUnbounded() {
		return -1
	}
	return int64(iv.End-iv.Start) + 1
}

// Clamp restricts the interval to the window w, returning the intersection.
func (iv Interval) Clamp(w Interval) Interval { return iv.Intersect(w) }

// Shift translates the interval by d chronons, saturating at Inf.
func (iv Interval) Shift(d Time) Interval {
	if iv.IsEmpty() {
		return Empty
	}
	return Interval{Start: iv.Start.Add(d), End: iv.End.Add(d)}
}

// Equal reports whether the two intervals denote the same set of chronons.
// All empty intervals are equal.
func (iv Interval) Equal(other Interval) bool {
	if iv.IsEmpty() || other.IsEmpty() {
		return iv.IsEmpty() && other.IsEmpty()
	}
	return iv.Start == other.Start && iv.End == other.End
}

// String renders the interval in the paper's notation, e.g. "[5, 40]" or
// "[10, inf]"; the empty interval renders as "null".
func (iv Interval) String() string {
	if iv.IsEmpty() {
		return "null"
	}
	return fmt.Sprintf("[%s, %s]", iv.Start, iv.End)
}

// Parse parses the paper's interval notation: "[a, b]", "[a, inf]", or
// "null". Whitespace around the endpoints is ignored.
func Parse(s string) (Interval, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "null") || s == "" || s == "φ" {
		return Empty, nil
	}
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return Empty, fmt.Errorf("interval: %q is not of the form [a, b]", s)
	}
	body := s[1 : len(s)-1]
	parts := strings.Split(body, ",")
	if len(parts) != 2 {
		return Empty, fmt.Errorf("interval: %q must have exactly two endpoints", s)
	}
	start, err := parseTime(parts[0])
	if err != nil {
		return Empty, fmt.Errorf("interval %q: %w", s, err)
	}
	end, err := parseTime(parts[1])
	if err != nil {
		return Empty, fmt.Errorf("interval %q: %w", s, err)
	}
	if start.IsInf() {
		return Empty, fmt.Errorf("interval %q: start may not be inf", s)
	}
	if start > end {
		return Empty, fmt.Errorf("interval %q: start exceeds end", s)
	}
	return Interval{Start: start, End: end}, nil
}

// MustParse is Parse, panicking on malformed input. It is intended for
// tests and fixtures transcribed from the paper.
func MustParse(s string) Interval {
	iv, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return iv
}

func parseTime(s string) (Time, error) {
	s = strings.TrimSpace(s)
	switch strings.ToLower(s) {
	case "inf", "∞", "+inf":
		return Inf, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return Time(v), nil
}
