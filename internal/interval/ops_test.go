package interval

import "testing"

func TestWhenever(t *testing.T) {
	base := MustParse("[5, 20]")
	got := Whenever{}.Apply(base, 0)
	if !got.Equal(NewSet(base)) {
		t.Errorf("WHENEVER = %v, want %v", got, base)
	}
	if (Whenever{}).String() != "WHENEVER" {
		t.Error("bad name")
	}
}

func TestWheneverNot(t *testing.T) {
	// Paper Def. 5: WHENEVERNOT on [t0, t1] returns [tr, t0-1] and [t1+1, ∞].
	got := WheneverNot{}.Apply(MustParse("[10, 20]"), 3)
	if got.String() != "[3, 9] ∪ [21, inf]" {
		t.Errorf("WHENEVERNOT = %s", got)
	}
	// Rule validity after the interval start: left piece shrinks.
	got = WheneverNot{}.Apply(MustParse("[10, 20]"), 15)
	if got.String() != "[21, inf]" {
		t.Errorf("WHENEVERNOT mid = %s", got)
	}
	// Empty base: everything from tr on.
	got = WheneverNot{}.Apply(Empty, 4)
	if got.String() != "[4, inf]" {
		t.Errorf("WHENEVERNOT empty = %s", got)
	}
	// Unbounded base: only the left piece.
	got = WheneverNot{}.Apply(From(10), 0)
	if got.String() != "[0, 9]" {
		t.Errorf("WHENEVERNOT unbounded = %s", got)
	}
}

func TestUnionOp(t *testing.T) {
	op := UnionOp{With: MustParse("[25, 40]")}
	got := op.Apply(MustParse("[5, 20]"), 0)
	if got.String() != "[5, 20] ∪ [25, 40]" {
		t.Errorf("UNION disjoint = %s", got)
	}
	op = UnionOp{With: MustParse("[15, 40]")}
	got = op.Apply(MustParse("[5, 20]"), 0)
	if got.String() != "[5, 40]" {
		t.Errorf("UNION overlap = %s", got)
	}
	if op.String() != "UNION([15, 40])" {
		t.Errorf("bad string %s", op)
	}
}

func TestIntersectionOpPaperExample2(t *testing.T) {
	// r2 uses INTERSECTION([10, 30]) on entry [5, 20] and derives [10, 20].
	op := IntersectionOp{With: MustParse("[10, 30]")}
	got := op.Apply(MustParse("[5, 20]"), 7)
	if got.String() != "[10, 20]" {
		t.Errorf("INTERSECTION = %s, want [10, 20]", got)
	}
	// Disjoint operands yield NULL.
	got = op.Apply(MustParse("[40, 50]"), 7)
	if !got.IsEmpty() {
		t.Errorf("disjoint INTERSECTION = %s, want null", got)
	}
	if op.String() != "INTERSECTION([10, 30])" {
		t.Errorf("bad string %s", op)
	}
}

func TestTemporalFunc(t *testing.T) {
	shift := TemporalFunc{
		Name: "SHIFT(5)",
		Fn:   func(base Interval, _ Time) Set { return NewSet(base.Shift(5)) },
	}
	got := shift.Apply(MustParse("[0, 10]"), 0)
	if got.String() != "[5, 15]" {
		t.Errorf("custom op = %s", got)
	}
	if shift.String() != "SHIFT(5)" {
		t.Error("custom op name")
	}
	anon := TemporalFunc{Fn: func(base Interval, _ Time) Set { return NewSet(base) }}
	if anon.String() != "CUSTOM" {
		t.Error("anonymous custom op should render as CUSTOM")
	}
}

func TestParseTemporalOp(t *testing.T) {
	cases := map[string]string{
		"WHENEVER":               "WHENEVER",
		"WHENEVERNOT":            "WHENEVERNOT",
		"UNION([1, 2])":          "UNION([1, 2])",
		"INTERSECTION([10, 30])": "INTERSECTION([10, 30])",
	}
	for in, want := range cases {
		op, err := ParseTemporalOp(in)
		if err != nil {
			t.Fatalf("ParseTemporalOp(%q): %v", in, err)
		}
		if op.String() != want {
			t.Errorf("ParseTemporalOp(%q) = %s, want %s", in, op, want)
		}
	}
	for _, bad := range []string{"FOO", "UNION(", "UNION([a,b])", "NOPE([1, 2])", "whenever"} {
		if _, err := ParseTemporalOp(bad); err == nil {
			t.Errorf("ParseTemporalOp(%q) should fail", bad)
		}
	}
}

func TestParsedOpsBehaveLikeConstructed(t *testing.T) {
	base := MustParse("[5, 20]")
	p, _ := ParseTemporalOp("INTERSECTION([10, 30])")
	c := IntersectionOp{With: MustParse("[10, 30]")}
	if !p.Apply(base, 7).Equal(c.Apply(base, 7)) {
		t.Error("parsed and constructed operators disagree")
	}
}
