package interval_test

import (
	"fmt"

	"repro/internal/interval"
)

// ExampleInterval_Intersect shows the paper's INTERSECTION operator
// semantics from Example 2: INTERSECTION([10, 30]) applied to the base
// entry duration [5, 20] yields [10, 20].
func ExampleInterval_Intersect() {
	base := interval.MustParse("[5, 20]")
	with := interval.MustParse("[10, 30]")
	fmt.Println(base.Intersect(with))
	// Output:
	// [10, 20]
}

// ExampleWheneverNot shows the WHENEVERNOT rule operator: for a rule
// valid from tr = 3, the complement of [10, 20] is [3, 9] ∪ [21, ∞].
func ExampleWheneverNot() {
	op := interval.WheneverNot{}
	fmt.Println(op.Apply(interval.MustParse("[10, 20]"), 3))
	// Output:
	// [3, 9] ∪ [21, inf]
}

// ExampleSet_Union shows interval sets staying normalised: overlapping
// and adjacent intervals coalesce into maximal runs of chronons.
func ExampleSet_Union() {
	a := interval.MustParseSet("[1, 5] ∪ [20, 30]")
	b := interval.MustParseSet("[6, 10]")
	fmt.Println(a.Union(b))
	// Output:
	// [1, 10] ∪ [20, 30]
}
