package interval

import "fmt"

// TemporalOp is one of the paper's temporal operators (Def. 5). An operator
// maps the base authorization's entry or exit duration to the duration(s)
// of the derived authorizations. validFrom is the rule's validity time tr,
// which WHENEVERNOT needs as the left edge of the complement.
type TemporalOp interface {
	// Apply maps the base interval to the derived interval set.
	Apply(base Interval, validFrom Time) Set
	// String renders the operator in the paper's notation, e.g.
	// "WHENEVER" or "INTERSECTION([10, 30])".
	String() string
}

// Whenever is the paper's unary WHENEVER operator: it returns the same time
// interval as the input.
type Whenever struct{}

// Apply implements TemporalOp.
func (Whenever) Apply(base Interval, _ Time) Set { return NewSet(base) }

func (Whenever) String() string { return "WHENEVER" }

// WheneverNot is the paper's unary WHENEVERNOT operator: given the input
// interval [t0, t1] and a rule valid from tr, it returns [tr, t0-1] and
// [t1+1, ∞]. When the base interval is empty the whole window [tr, ∞] is
// returned; when the base is unbounded only the left piece can exist.
type WheneverNot struct{}

// Apply implements TemporalOp.
func (WheneverNot) Apply(base Interval, validFrom Time) Set {
	universe := From(validFrom)
	return NewSet(base).Complement(universe)
}

func (WheneverNot) String() string { return "WHENEVERNOT" }

// UnionOp is the paper's binary UNION operator partially applied to its
// second operand: UNION(With) applied to base [t0,t1] returns [t0,t3] when
// the operands overlap or touch, and both intervals otherwise.
type UnionOp struct {
	With Interval
}

// Apply implements TemporalOp.
func (op UnionOp) Apply(base Interval, _ Time) Set {
	return NewSet(base.Union(op.With)...)
}

func (op UnionOp) String() string { return fmt.Sprintf("UNION(%s)", op.With) }

// IntersectionOp is the paper's binary INTERSECTION operator partially
// applied to its second operand: INTERSECTION(With) applied to base
// [t0,t1] returns [t2,t1] when t2 <= t1 and NULL otherwise (Example 2 of
// the paper: INTERSECTION([10,30]) on [5,20] yields [10,20]).
type IntersectionOp struct {
	With Interval
}

// Apply implements TemporalOp.
func (op IntersectionOp) Apply(base Interval, _ Time) Set {
	return NewSet(base.Intersect(op.With))
}

func (op IntersectionOp) String() string { return fmt.Sprintf("INTERSECTION(%s)", op.With) }

// TemporalFunc adapts an ordinary function to the TemporalOp interface,
// enabling the "customized operators" the paper allows beyond the built-in
// four.
type TemporalFunc struct {
	Name string
	Fn   func(base Interval, validFrom Time) Set
}

// Apply implements TemporalOp.
func (f TemporalFunc) Apply(base Interval, validFrom Time) Set { return f.Fn(base, validFrom) }

func (f TemporalFunc) String() string {
	if f.Name == "" {
		return "CUSTOM"
	}
	return f.Name
}

// ParseTemporalOp parses the operator notation used in the paper's rule
// examples: WHENEVER, WHENEVERNOT, UNION([a, b]), INTERSECTION([a, b]).
func ParseTemporalOp(s string) (TemporalOp, error) {
	switch {
	case s == "WHENEVER":
		return Whenever{}, nil
	case s == "WHENEVERNOT":
		return WheneverNot{}, nil
	}
	var name, arg string
	if i := indexByte(s, '('); i >= 0 && s[len(s)-1] == ')' {
		name, arg = s[:i], s[i+1:len(s)-1]
	} else {
		return nil, fmt.Errorf("interval: unknown temporal operator %q", s)
	}
	iv, err := Parse(arg)
	if err != nil {
		return nil, fmt.Errorf("interval: operator %s: %w", name, err)
	}
	switch name {
	case "UNION":
		return UnionOp{With: iv}, nil
	case "INTERSECTION":
		return IntersectionOp{With: iv}, nil
	}
	return nil, fmt.Errorf("interval: unknown temporal operator %q", name)
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
