package interval

import (
	"sort"
	"strings"
)

// Set is a normalised set of time chronons represented as sorted, disjoint,
// non-adjacent closed intervals. The zero value is the empty set (the
// paper's "null"/φ overall grant or departure time).
//
// Algorithm 1 of the paper associates a Set-valued overall grant time T^g
// and overall departure time T^d with every location; the fixpoint
// termination test compares successive values of T^d, which normalisation
// makes a cheap structural comparison.
type Set struct {
	ivs []Interval
}

// NewSet builds a normalised set from any collection of intervals; empty
// intervals are dropped and overlapping or adjacent intervals coalesce.
func NewSet(ivs ...Interval) Set {
	var s Set
	for _, iv := range ivs {
		s = s.Add(iv)
	}
	return s
}

// SetOf is shorthand for NewSet(New(pairs[0], pairs[1]), ...). It panics if
// given an odd number of arguments.
func SetOf(pairs ...Time) Set {
	if len(pairs)%2 != 0 {
		panic("interval: SetOf needs an even number of times")
	}
	var s Set
	for i := 0; i < len(pairs); i += 2 {
		s = s.Add(New(pairs[i], pairs[i+1]))
	}
	return s
}

// IsEmpty reports whether the set contains no chronons.
func (s Set) IsEmpty() bool { return len(s.ivs) == 0 }

// Len returns the number of maximal intervals in the set.
func (s Set) Len() int { return len(s.ivs) }

// Intervals returns the maximal intervals in ascending order. The returned
// slice is a copy and may be mutated freely by the caller.
func (s Set) Intervals() []Interval {
	out := make([]Interval, len(s.ivs))
	copy(out, s.ivs)
	return out
}

// At returns the i-th maximal interval.
func (s Set) At(i int) Interval { return s.ivs[i] }

// Span returns the hull from the earliest to the latest chronon of the set,
// or the empty interval for the empty set.
func (s Set) Span() Interval {
	if s.IsEmpty() {
		return Empty
	}
	return Interval{Start: s.ivs[0].Start, End: s.ivs[len(s.ivs)-1].End}
}

// Contains reports whether t is in the set.
func (s Set) Contains(t Time) bool {
	// Binary search for the first interval with End >= t.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= t })
	return i < len(s.ivs) && s.ivs[i].Contains(t)
}

// ContainsInterval reports whether every chronon of iv is in the set.
// Because the set is normalised, iv must lie within a single maximal
// interval.
func (s Set) ContainsInterval(iv Interval) bool {
	if iv.IsEmpty() {
		return true
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].End >= iv.Start })
	return i < len(s.ivs) && s.ivs[i].ContainsInterval(iv)
}

// Add returns the set extended with iv, preserving normalisation.
func (s Set) Add(iv Interval) Set {
	if iv.IsEmpty() {
		return s
	}
	if len(s.ivs) == 0 {
		return Set{ivs: []Interval{iv}}
	}
	out := make([]Interval, 0, len(s.ivs)+1)
	inserted := false
	for _, cur := range s.ivs {
		switch {
		case inserted:
			out = appendCoalescing(out, cur)
		case cur.End != Inf && iv.Start > cur.End.Add(1):
			// cur is entirely before iv with a gap; keep as is.
			out = append(out, cur)
		case iv.End != Inf && cur.Start > iv.End.Add(1):
			// cur is entirely after iv with a gap; emit iv first.
			out = appendCoalescing(out, iv)
			out = appendCoalescing(out, cur)
			inserted = true
		default:
			// Overlapping or adjacent: merge into iv and keep scanning.
			iv = iv.Hull(cur)
		}
	}
	if !inserted {
		out = appendCoalescing(out, iv)
	}
	return Set{ivs: out}
}

func appendCoalescing(out []Interval, iv Interval) []Interval {
	if n := len(out); n > 0 {
		last := out[n-1]
		if last.Overlaps(iv) || last.Adjacent(iv) {
			out[n-1] = last.Hull(iv)
			return out
		}
	}
	return append(out, iv)
}

// Union returns the set union of s and other.
func (s Set) Union(other Set) Set {
	out := s
	for _, iv := range other.ivs {
		out = out.Add(iv)
	}
	return out
}

// Intersect returns the set of chronons present in both sets.
func (s Set) Intersect(other Set) Set {
	var out Set
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		a, b := s.ivs[i], other.ivs[j]
		if x := a.Intersect(b); !x.IsEmpty() {
			out = out.Add(x)
		}
		if a.End < b.End {
			i++
		} else {
			j++
		}
	}
	return out
}

// IntersectInterval returns the subset of s lying inside iv.
func (s Set) IntersectInterval(iv Interval) Set {
	if iv.IsEmpty() || s.IsEmpty() {
		return Set{}
	}
	var out Set
	for _, cur := range s.ivs {
		if cur.Start > iv.End {
			break
		}
		if x := cur.Intersect(iv); !x.IsEmpty() {
			out = out.Add(x)
		}
	}
	return out
}

// Subtract returns the chronons of s that are not in other.
func (s Set) Subtract(other Set) Set {
	if other.IsEmpty() {
		return s
	}
	var out Set
	for _, iv := range s.ivs {
		rem := []Interval{iv}
		for _, cut := range other.ivs {
			var next []Interval
			for _, r := range rem {
				next = append(next, subtractOne(r, cut)...)
			}
			rem = next
			if len(rem) == 0 {
				break
			}
		}
		for _, r := range rem {
			out = out.Add(r)
		}
	}
	return out
}

func subtractOne(r, cut Interval) []Interval {
	if !r.Overlaps(cut) {
		return []Interval{r}
	}
	var out []Interval
	if r.Start < cut.Start {
		out = append(out, Interval{Start: r.Start, End: cut.Start - 1})
	}
	if !cut.End.IsInf() && r.End > cut.End {
		out = append(out, Interval{Start: cut.End + 1, End: r.End})
	}
	return out
}

// Complement returns the chronons within the universe window that are not
// in s. It is used by the WHENEVERNOT rule operator, whose universe is
// [tr, ∞] for a rule valid from tr.
func (s Set) Complement(universe Interval) Set {
	return NewSet(universe).Subtract(s)
}

// Equal reports whether both sets contain exactly the same chronons.
// Normalisation makes this a structural comparison, which is what makes
// Algorithm 1's "T^d unchanged" test cheap.
func (s Set) Equal(other Set) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i := range s.ivs {
		if s.ivs[i] != other.ivs[i] {
			return false
		}
	}
	return true
}

// Size returns the total number of chronons, or -1 if the set is unbounded.
func (s Set) Size() int64 {
	var total int64
	for _, iv := range s.ivs {
		sz := iv.Size()
		if sz < 0 {
			return -1
		}
		total += sz
	}
	return total
}

// Min returns the earliest chronon of the set; it panics on the empty set.
func (s Set) Min() Time {
	if s.IsEmpty() {
		panic("interval: Min of empty set")
	}
	return s.ivs[0].Start
}

// Earliest returns the earliest chronon and true, or zero and false for the
// empty set.
func (s Set) Earliest() (Time, bool) {
	if s.IsEmpty() {
		return 0, false
	}
	return s.ivs[0].Start, true
}

// String renders the set as "null" or a "∪"-joined list of intervals in
// the paper's notation.
func (s Set) String() string {
	if s.IsEmpty() {
		return "null"
	}
	parts := make([]string, len(s.ivs))
	for i, iv := range s.ivs {
		parts[i] = iv.String()
	}
	return strings.Join(parts, " ∪ ")
}

// ParseSet parses a "∪"- or "u"-joined list of intervals, or "null".
func ParseSet(s string) (Set, error) {
	s = strings.TrimSpace(s)
	if strings.EqualFold(s, "null") || s == "" || s == "φ" {
		return Set{}, nil
	}
	var out Set
	repl := strings.NewReplacer("∪", "|", " u ", "|", " U ", "|")
	for _, part := range strings.Split(repl.Replace(s), "|") {
		iv, err := Parse(part)
		if err != nil {
			return Set{}, err
		}
		out = out.Add(iv)
	}
	return out, nil
}

// MustParseSet is ParseSet, panicking on malformed input.
func MustParseSet(s string) Set {
	out, err := ParseSet(s)
	if err != nil {
		panic(err)
	}
	return out
}
