package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetAddNormalises(t *testing.T) {
	s := NewSet(MustParse("[10, 20]"), MustParse("[0, 5]"), MustParse("[6, 9]"))
	if s.Len() != 1 {
		t.Fatalf("adjacent intervals should coalesce, got %v", s)
	}
	if got := s.String(); got != "[0, 20]" {
		t.Errorf("set = %s, want [0, 20]", got)
	}
}

func TestSetAddDisjoint(t *testing.T) {
	s := NewSet(MustParse("[0, 5]"), MustParse("[10, 15]"), MustParse("[20, 25]"))
	if s.Len() != 3 {
		t.Fatalf("want 3 intervals, got %v", s)
	}
	s = s.Add(MustParse("[4, 21]"))
	if s.Len() != 1 || !s.At(0).Equal(MustParse("[0, 25]")) {
		t.Errorf("bridging add should coalesce all, got %v", s)
	}
}

func TestSetAddMiddle(t *testing.T) {
	s := NewSet(MustParse("[0, 5]"), MustParse("[20, 25]"))
	s = s.Add(MustParse("[10, 12]"))
	want := "[0, 5] ∪ [10, 12] ∪ [20, 25]"
	if s.String() != want {
		t.Errorf("set = %s, want %s", s, want)
	}
}

func TestSetAddEmptyAndUnbounded(t *testing.T) {
	s := NewSet(Empty)
	if !s.IsEmpty() {
		t.Error("set of empty interval should be empty")
	}
	s = NewSet(From(50), MustParse("[0, 10]"))
	if s.Len() != 2 {
		t.Fatalf("got %v", s)
	}
	s = s.Add(MustParse("[5, 60]"))
	if s.Len() != 1 || !s.At(0).Equal(From(0)) {
		t.Errorf("got %v, want [0, inf]", s)
	}
}

func TestSetContains(t *testing.T) {
	s := MustParseSet("[0, 5] ∪ [10, 15]")
	for _, tc := range []struct {
		t    Time
		want bool
	}{{0, true}, {5, true}, {6, false}, {9, false}, {10, true}, {15, true}, {16, false}} {
		if got := s.Contains(tc.t); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestSetContainsInterval(t *testing.T) {
	s := MustParseSet("[0, 5] ∪ [10, 15]")
	if !s.ContainsInterval(MustParse("[1, 4]")) || !s.ContainsInterval(MustParse("[10, 15]")) {
		t.Error("containment broken")
	}
	if s.ContainsInterval(MustParse("[4, 11]")) {
		t.Error("interval spanning a gap must not be contained")
	}
	if !s.ContainsInterval(Empty) {
		t.Error("empty interval is contained in everything")
	}
}

func TestSetUnionIntersect(t *testing.T) {
	a := MustParseSet("[0, 10] ∪ [20, 30]")
	b := MustParseSet("[5, 25] ∪ [40, 50]")
	if got := a.Union(b).String(); got != "[0, 30] ∪ [40, 50]" {
		t.Errorf("union = %s", got)
	}
	if got := a.Intersect(b).String(); got != "[5, 10] ∪ [20, 25]" {
		t.Errorf("intersect = %s", got)
	}
	if got := b.Intersect(a); !got.Equal(a.Intersect(b)) {
		t.Error("intersect not commutative")
	}
}

func TestSetIntersectInterval(t *testing.T) {
	s := MustParseSet("[0, 10] ∪ [20, 30] ∪ [40, inf]")
	if got := s.IntersectInterval(MustParse("[5, 45]")).String(); got != "[5, 10] ∪ [20, 30] ∪ [40, 45]" {
		t.Errorf("got %s", got)
	}
	if !s.IntersectInterval(Empty).IsEmpty() {
		t.Error("intersect with empty interval should be empty")
	}
}

func TestSetSubtract(t *testing.T) {
	s := MustParseSet("[0, 20]")
	cut := MustParseSet("[5, 10] ∪ [15, 16]")
	if got := s.Subtract(cut).String(); got != "[0, 4] ∪ [11, 14] ∪ [17, 20]" {
		t.Errorf("subtract = %s", got)
	}
	// Subtracting an unbounded tail.
	if got := MustParseSet("[0, inf]").Subtract(MustParseSet("[10, inf]")).String(); got != "[0, 9]" {
		t.Errorf("subtract unbounded = %s", got)
	}
	// Subtract everything.
	if got := s.Subtract(MustParseSet("[0, inf]")); !got.IsEmpty() {
		t.Errorf("total subtract = %s", got)
	}
	// Subtract nothing.
	if got := s.Subtract(Set{}); !got.Equal(s) {
		t.Errorf("empty subtract changed the set: %s", got)
	}
}

func TestSetComplementWheneverNotSemantics(t *testing.T) {
	// WHENEVERNOT on [t0, t1] valid from tr returns [tr, t0-1] and [t1+1, inf].
	base := MustParse("[5, 20]")
	got := NewSet(base).Complement(From(0))
	if got.String() != "[0, 4] ∪ [21, inf]" {
		t.Errorf("complement = %s", got)
	}
	// Rule valid only from time 7 (mid-interval): left piece vanishes partially.
	got = NewSet(base).Complement(From(7))
	if got.String() != "[21, inf]" {
		t.Errorf("complement from 7 = %s", got)
	}
}

func TestSetSpanMinSize(t *testing.T) {
	s := MustParseSet("[5, 10] ∪ [20, 25]")
	if !s.Span().Equal(MustParse("[5, 25]")) {
		t.Errorf("span = %v", s.Span())
	}
	if s.Min() != 5 {
		t.Errorf("min = %v", s.Min())
	}
	if got := s.Size(); got != 12 {
		t.Errorf("size = %d, want 12", got)
	}
	if got := MustParseSet("[0, inf]").Size(); got != -1 {
		t.Errorf("unbounded size = %d", got)
	}
	if _, ok := (Set{}).Earliest(); ok {
		t.Error("empty set has no earliest")
	}
	if v, ok := s.Earliest(); !ok || v != 5 {
		t.Errorf("earliest = %v, %v", v, ok)
	}
}

func TestSetMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min of empty set should panic")
		}
	}()
	(Set{}).Min()
}

func TestSetEqual(t *testing.T) {
	a := MustParseSet("[0, 5] ∪ [10, 15]")
	b := NewSet(MustParse("[10, 15]"), MustParse("[0, 5]"))
	if !a.Equal(b) {
		t.Error("order of insertion must not matter")
	}
	if a.Equal(MustParseSet("[0, 5]")) {
		t.Error("different sets must not be equal")
	}
}

func TestParseSetVariants(t *testing.T) {
	for _, s := range []string{"null", "", "φ"} {
		if got := MustParseSet(s); !got.IsEmpty() {
			t.Errorf("ParseSet(%q) = %v, want empty", s, got)
		}
	}
	got := MustParseSet("[0, 5] u [10, 15]")
	if got.Len() != 2 {
		t.Errorf("ascii-u parse failed: %v", got)
	}
	if _, err := ParseSet("[bad"); err == nil {
		t.Error("ParseSet should fail on malformed input")
	}
}

func TestIntervalsReturnsCopy(t *testing.T) {
	s := MustParseSet("[0, 5] ∪ [10, 15]")
	ivs := s.Intervals()
	ivs[0] = MustParse("[100, 200]")
	if !s.At(0).Equal(MustParse("[0, 5]")) {
		t.Error("Intervals must return a defensive copy")
	}
}

// Property: a set built from random intervals contains exactly the chronons
// covered by at least one of them (checked pointwise on a small domain).
func TestPropSetMembershipMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		var ivs []Interval
		naive := map[Time]bool{}
		for k := 0; k < r.Intn(8); k++ {
			a, b := Time(r.Intn(60)), Time(r.Intn(60))
			if a > b {
				a, b = b, a
			}
			ivs = append(ivs, New(a, b))
			for t := a; t <= b; t++ {
				naive[t] = true
			}
		}
		s := NewSet(ivs...)
		for pt := Time(0); pt < 60; pt++ {
			if s.Contains(pt) != naive[pt] {
				t.Fatalf("trial %d: point %v mismatch (set=%v)", trial, pt, s)
			}
		}
	}
}

// Property: normalised invariant — intervals sorted, disjoint, non-adjacent.
func TestPropSetNormalised(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	for trial := 0; trial < 500; trial++ {
		var s Set
		for k := 0; k < 12; k++ {
			s = s.Add(genInterval(r))
		}
		ivs := s.Intervals()
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].End >= ivs[i].Start {
				t.Fatalf("unsorted/overlapping set: %v", s)
			}
			if ivs[i-1].Adjacent(ivs[i]) {
				t.Fatalf("adjacent intervals not coalesced: %v", s)
			}
		}
	}
}

// Property (testing/quick): De Morgan on a bounded universe.
func TestPropQuickDeMorgan(t *testing.T) {
	mk := func(a, b uint8) Set {
		lo, hi := Time(min8(a, b)), Time(max8(a, b))
		return NewSet(New(lo, hi))
	}
	universe := New(0, 255)
	f := func(a0, a1, b0, b1 uint8) bool {
		a, b := mk(a0, a1), mk(b0, b1)
		lhs := a.Union(b).Complement(universe)
		rhs := a.Complement(universe).Intersect(b.Complement(universe))
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): subtract then union restores a superset
// relationship: (A \ B) ∪ (A ∩ B) == A.
func TestPropQuickSubtractPartition(t *testing.T) {
	mk := func(a, b, c, d uint8) Set {
		s := NewSet(New(Time(min8(a, b)), Time(max8(a, b))))
		return s.Add(New(Time(min8(c, d)), Time(max8(c, d))))
	}
	f := func(a0, a1, a2, a3, b0, b1, b2, b3 uint8) bool {
		a, b := mk(a0, a1, a2, a3), mk(b0, b1, b2, b3)
		return a.Subtract(b).Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
