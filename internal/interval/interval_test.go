package interval

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	if got := Time(42).String(); got != "42" {
		t.Errorf("Time(42).String() = %q, want 42", got)
	}
	if got := Inf.String(); got != "inf" {
		t.Errorf("Inf.String() = %q, want inf", got)
	}
	if got := Time(-7).String(); got != "-7" {
		t.Errorf("Time(-7).String() = %q", got)
	}
}

func TestTimeAddSaturation(t *testing.T) {
	if got := Inf.Add(5); got != Inf {
		t.Errorf("Inf.Add(5) = %v, want Inf", got)
	}
	if got := Time(5).Add(Inf); got != Inf {
		t.Errorf("5.Add(Inf) = %v, want Inf", got)
	}
	if got := Time(10).Add(-3); got != 7 {
		t.Errorf("10.Add(-3) = %v, want 7", got)
	}
	if got := Time(Inf - 1).Add(100); got != Inf {
		t.Errorf("near-max add should saturate to Inf, got %v", got)
	}
}

func TestMinMax(t *testing.T) {
	if Max(3, 9) != 9 || Max(9, 3) != 9 {
		t.Error("Max broken")
	}
	if Min(3, 9) != 3 || Min(9, 3) != 3 {
		t.Error("Min broken")
	}
	if Max(5, Inf) != Inf || Min(5, Inf) != 5 {
		t.Error("Min/Max vs Inf broken")
	}
}

func TestNewInverted(t *testing.T) {
	iv := New(10, 5)
	if !iv.IsEmpty() {
		t.Errorf("New(10,5) should be empty, got %v", iv)
	}
}

func TestNewPanicsOnInfStart(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(Inf, Inf) should panic")
		}
	}()
	New(Inf, Inf)
}

func TestContains(t *testing.T) {
	iv := New(5, 40)
	for _, tc := range []struct {
		t    Time
		want bool
	}{{4, false}, {5, true}, {20, true}, {40, true}, {41, false}} {
		if got := iv.Contains(tc.t); got != tc.want {
			t.Errorf("[5,40].Contains(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
	if Empty.Contains(0) {
		t.Error("Empty must contain nothing")
	}
	if !From(10).Contains(Inf) {
		t.Error("[10,inf] should contain Inf")
	}
}

func TestOverlapsAndIntersect(t *testing.T) {
	cases := []struct {
		a, b string
		want string
	}{
		{"[0, 10]", "[5, 15]", "[5, 10]"},
		{"[0, 10]", "[10, 20]", "[10, 10]"},
		{"[0, 10]", "[11, 20]", "null"},
		{"[5, 20]", "[10, 30]", "[10, 20]"}, // paper Example 2
		{"[0, inf]", "[7, 9]", "[7, 9]"},
		{"null", "[1, 2]", "null"},
	}
	for _, tc := range cases {
		a, b := MustParse(tc.a), MustParse(tc.b)
		got := a.Intersect(b)
		if got.String() != tc.want {
			t.Errorf("%s ∩ %s = %s, want %s", tc.a, tc.b, got, tc.want)
		}
		if got2 := b.Intersect(a); !got.Equal(got2) {
			t.Errorf("Intersect not commutative for %s, %s", tc.a, tc.b)
		}
		if a.Overlaps(b) != (tc.want != "null") {
			t.Errorf("Overlaps(%s, %s) inconsistent with Intersect", tc.a, tc.b)
		}
	}
}

func TestUnionPaperSemantics(t *testing.T) {
	// UNION returns [t0,t3] if t2 <= t1; or both intervals if t2 > t1.
	got := MustParse("[0, 10]").Union(MustParse("[5, 20]"))
	if len(got) != 1 || !got[0].Equal(MustParse("[0, 20]")) {
		t.Errorf("overlapping UNION = %v, want [[0,20]]", got)
	}
	got = MustParse("[0, 10]").Union(MustParse("[20, 30]"))
	if len(got) != 2 {
		t.Fatalf("disjoint UNION = %v, want two intervals", got)
	}
	if !got[0].Equal(MustParse("[0, 10]")) || !got[1].Equal(MustParse("[20, 30]")) {
		t.Errorf("disjoint UNION = %v", got)
	}
	// Touching intervals form one run of consecutive chronons.
	got = MustParse("[0, 10]").Union(MustParse("[11, 30]"))
	if len(got) != 1 || !got[0].Equal(MustParse("[0, 30]")) {
		t.Errorf("adjacent UNION = %v, want [[0,30]]", got)
	}
	// Order independence.
	got = MustParse("[20, 30]").Union(MustParse("[0, 10]"))
	if len(got) != 2 || !got[0].Equal(MustParse("[0, 10]")) {
		t.Errorf("UNION should order results, got %v", got)
	}
}

func TestAdjacent(t *testing.T) {
	if !MustParse("[0, 10]").Adjacent(MustParse("[11, 12]")) {
		t.Error("[0,10] and [11,12] are adjacent")
	}
	if MustParse("[0, 10]").Adjacent(MustParse("[12, 13]")) {
		t.Error("[0,10] and [12,13] are not adjacent")
	}
	if MustParse("[0, 10]").Adjacent(MustParse("[5, 13]")) {
		t.Error("overlapping intervals are not adjacent")
	}
	if !MustParse("[11, 12]").Adjacent(MustParse("[0, 10]")) {
		t.Error("Adjacent must be symmetric")
	}
	if From(0).Adjacent(MustParse("[5, 6]")) {
		t.Error("unbounded interval overlapping cannot be adjacent")
	}
}

func TestSize(t *testing.T) {
	if got := MustParse("[5, 40]").Size(); got != 36 {
		t.Errorf("[5,40].Size() = %d, want 36", got)
	}
	if got := Point(9).Size(); got != 1 {
		t.Errorf("point size = %d, want 1", got)
	}
	if got := Empty.Size(); got != 0 {
		t.Errorf("empty size = %d, want 0", got)
	}
	if got := From(0).Size(); got != -1 {
		t.Errorf("unbounded size = %d, want -1", got)
	}
}

func TestHull(t *testing.T) {
	if got := MustParse("[0, 5]").Hull(MustParse("[20, 30]")); !got.Equal(MustParse("[0, 30]")) {
		t.Errorf("hull = %v", got)
	}
	if got := Empty.Hull(MustParse("[1, 2]")); !got.Equal(MustParse("[1, 2]")) {
		t.Errorf("hull with empty = %v", got)
	}
}

func TestShift(t *testing.T) {
	if got := MustParse("[5, 10]").Shift(3); !got.Equal(MustParse("[8, 13]")) {
		t.Errorf("shift = %v", got)
	}
	if got := From(5).Shift(3); !got.Equal(From(8)) {
		t.Errorf("shift unbounded = %v", got)
	}
	if !Empty.Shift(3).IsEmpty() {
		t.Error("shift of empty should stay empty")
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"[5, 40]", "[0, 0]", "[10, inf]", "null"} {
		iv := MustParse(s)
		if iv.String() != s {
			t.Errorf("round trip %q -> %q", s, iv.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"[5]", "5, 40", "[a, b]", "[inf, 5]", "[40, 5]", "[1, 2, 3]"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestContainsInterval(t *testing.T) {
	iv := MustParse("[10, 50]")
	if !iv.ContainsInterval(MustParse("[10, 50]")) || !iv.ContainsInterval(MustParse("[20, 30]")) {
		t.Error("containment of sub-intervals broken")
	}
	if iv.ContainsInterval(MustParse("[5, 20]")) || iv.ContainsInterval(MustParse("[40, 60]")) {
		t.Error("partial overlap must not count as containment")
	}
	if !iv.ContainsInterval(Empty) {
		t.Error("every interval contains the empty interval")
	}
}

// genInterval produces a random small interval (possibly empty or unbounded)
// for property tests.
func genInterval(r *rand.Rand) Interval {
	switch r.Intn(10) {
	case 0:
		return Empty
	case 1:
		return From(Time(r.Intn(100)))
	default:
		a, b := Time(r.Intn(100)), Time(r.Intn(100))
		if a > b {
			a, b = b, a
		}
		return New(a, b)
	}
}

func TestPropIntersectCommutesAndShrinks(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := genInterval(r), genInterval(r)
		x, y := a.Intersect(b), b.Intersect(a)
		if !x.Equal(y) {
			t.Fatalf("intersect not commutative: %v vs %v", x, y)
		}
		if !x.IsEmpty() && (!a.ContainsInterval(x) || !b.ContainsInterval(x)) {
			t.Fatalf("%v ∩ %v = %v escapes operands", a, b, x)
		}
	}
}

func TestPropUnionCoversOperands(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		a, b := genInterval(r), genInterval(r)
		parts := a.Union(b)
		s := NewSet(parts...)
		for _, op := range []Interval{a, b} {
			if !op.IsEmpty() && !s.ContainsInterval(op) {
				t.Fatalf("union %v of %v,%v misses an operand", parts, a, b)
			}
		}
		// Union never produces more than two pieces and never overlapping.
		if len(parts) > 2 {
			t.Fatalf("union produced %d pieces", len(parts))
		}
		if len(parts) == 2 && (parts[0].Overlaps(parts[1]) || parts[0].Adjacent(parts[1])) {
			t.Fatalf("union pieces should be disjoint and separated: %v", parts)
		}
	}
}

func TestPropQuickIntersectAssoc(t *testing.T) {
	f := func(a0, a1, b0, b1, c0, c1 uint8) bool {
		a := New(Time(min8(a0, a1)), Time(max8(a0, a1)))
		b := New(Time(min8(b0, b1)), Time(max8(b0, b1)))
		c := New(Time(min8(c0, c1)), Time(max8(c0, c1)))
		return a.Intersect(b).Intersect(c).Equal(a.Intersect(b.Intersect(c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

func min8(a, b uint8) uint8 {
	if a < b {
		return a
	}
	return b
}

func max8(a, b uint8) uint8 {
	if a > b {
		return a
	}
	return b
}
