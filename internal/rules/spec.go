package rules

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
)

// Spec is the serialisable form of a rule, used by the storage engine,
// the wire protocol and the query language. Operators are written in the
// paper's surface syntax:
//
//	entry/exit : WHENEVER | WHENEVERNOT | UNION([a, b]) | INTERSECTION([a, b])
//	subject    : SAME | Supervisor_Of | Direct_Reports_Of |
//	             Members_Of(group) | Holders_Of(role)
//	location   : SAME | all_route_from(SRC) | neighbors_of |
//	             neighbors_of_self | all_in(COMPOSITE) | a literal
//	             primitive location name
//	entries    : SAME | an integer literal | n+K | n-K | n*K
//
// Empty strings mean "unspecified" and take the paper's copy-from-base
// default. Customized operators (Go functions) are available through the
// Engine API directly but are not serialisable.
type Spec struct {
	Name      string        `json:"name"`
	ValidFrom interval.Time `json:"valid_from"`
	Base      authz.ID      `json:"base"`
	Entry     string        `json:"entry,omitempty"`
	Exit      string        `json:"exit,omitempty"`
	Subject   string        `json:"subject,omitempty"`
	Location  string        `json:"location,omitempty"`
	Entries   string        `json:"entries,omitempty"`
}

// Compile parses the spec into an executable Rule.
func (s Spec) Compile() (Rule, error) {
	r := Rule{Name: s.Name, ValidFrom: s.ValidFrom, Base: s.Base}
	var err error
	if s.Entry != "" {
		if r.Ops.Entry, err = interval.ParseTemporalOp(s.Entry); err != nil {
			return Rule{}, fmt.Errorf("rules: spec %q entry: %w", s.Name, err)
		}
	}
	if s.Exit != "" {
		if r.Ops.Exit, err = interval.ParseTemporalOp(s.Exit); err != nil {
			return Rule{}, fmt.Errorf("rules: spec %q exit: %w", s.Name, err)
		}
	}
	if s.Subject != "" {
		if r.Ops.Subject, err = ParseSubjectOp(s.Subject); err != nil {
			return Rule{}, fmt.Errorf("rules: spec %q subject: %w", s.Name, err)
		}
	}
	if s.Location != "" {
		if r.Ops.Location, err = ParseLocationOp(s.Location); err != nil {
			return Rule{}, fmt.Errorf("rules: spec %q location: %w", s.Name, err)
		}
	}
	if s.Entries != "" {
		if r.Ops.Entries, err = ParseEntryExpr(s.Entries); err != nil {
			return Rule{}, fmt.Errorf("rules: spec %q entries: %w", s.Name, err)
		}
	}
	if err := r.Validate(); err != nil {
		return Rule{}, err
	}
	return r, nil
}

// ParseSubjectOp parses the subject-operator surface syntax.
func ParseSubjectOp(s string) (SubjectOp, error) {
	switch s {
	case "SAME":
		return SameSubject{}, nil
	case "Supervisor_Of":
		return SupervisorOf{}, nil
	case "Direct_Reports_Of":
		return DirectReportsOf{}, nil
	}
	if arg, ok := callArg(s, "Members_Of"); ok {
		return MembersOf{Group: arg}, nil
	}
	if arg, ok := callArg(s, "Holders_Of"); ok {
		return HoldersOf{Role: arg}, nil
	}
	return nil, fmt.Errorf("unknown subject operator %q", s)
}

// ParseLocationOp parses the location-operator surface syntax. Any string
// that is not an operator form is taken as a literal primitive location.
func ParseLocationOp(s string) (LocationOp, error) {
	switch s {
	case "SAME":
		return SameLocation{}, nil
	case "neighbors_of":
		return NeighborsOf{}, nil
	case "neighbors_of_self":
		return NeighborsOf{IncludeSelf: true}, nil
	}
	if arg, ok := callArg(s, "all_route_from"); ok {
		if arg == "" {
			return nil, fmt.Errorf("all_route_from needs a source location")
		}
		return AllRouteFrom{Source: graph.ID(arg)}, nil
	}
	if arg, ok := callArg(s, "all_in"); ok {
		if arg == "" {
			return nil, fmt.Errorf("all_in needs a composite location")
		}
		return AllIn{Composite: graph.ID(arg)}, nil
	}
	if strings.ContainsAny(s, "()") {
		return nil, fmt.Errorf("unknown location operator %q", s)
	}
	return FixedLocation{Location: graph.ID(s)}, nil
}

// ParseEntryExpr parses the entry-count expression syntax.
func ParseEntryExpr(s string) (EntryExpr, error) {
	switch {
	case s == "SAME":
		return SameEntries{}, nil
	case strings.HasPrefix(s, "n+") || strings.HasPrefix(s, "n-"):
		v, err := strconv.ParseInt(s[1:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad entry delta %q", s)
		}
		return AddEntries{Delta: v}, nil
	case strings.HasPrefix(s, "n*"):
		v, err := strconv.ParseInt(s[2:], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad entry factor %q", s)
		}
		return ScaleEntries{Factor: v}, nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return nil, fmt.Errorf("bad entry expression %q", s)
	}
	if v < 0 {
		return nil, fmt.Errorf("entry count %d must be positive (0 = unlimited)", v)
	}
	return ConstEntries{N: v}, nil
}

// SpecOf reverses Compile for rules built from built-in operators; rules
// with customized (function) operators return ok=false and must not be
// persisted.
func SpecOf(r Rule) (Spec, bool) {
	s := Spec{Name: r.Name, ValidFrom: r.ValidFrom, Base: r.Base}
	ops := r.Ops.withDefaults()
	switch ops.Entry.(type) {
	case interval.Whenever, interval.WheneverNot, interval.UnionOp, interval.IntersectionOp:
		s.Entry = ops.Entry.String()
	default:
		return Spec{}, false
	}
	switch ops.Exit.(type) {
	case interval.Whenever, interval.WheneverNot, interval.UnionOp, interval.IntersectionOp:
		s.Exit = ops.Exit.String()
	default:
		return Spec{}, false
	}
	switch ops.Subject.(type) {
	case SameSubject, SupervisorOf, DirectReportsOf, MembersOf, HoldersOf:
		s.Subject = ops.Subject.String()
	default:
		return Spec{}, false
	}
	switch ops.Location.(type) {
	case SameLocation, FixedLocation, AllRouteFrom, NeighborsOf, AllIn:
		s.Location = ops.Location.String()
	default:
		return Spec{}, false
	}
	switch ops.Entries.(type) {
	case SameEntries, ConstEntries, AddEntries, ScaleEntries:
		s.Entries = ops.Entries.String()
	default:
		return Spec{}, false
	}
	return s, true
}

func callArg(s, name string) (string, bool) {
	if !strings.HasPrefix(s, name+"(") || !strings.HasSuffix(s, ")") {
		return "", false
	}
	return strings.TrimSpace(s[len(name)+1 : len(s)-1]), true
}
