package rules

import (
	"errors"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/profile"
)

func profilesFixture(t *testing.T) *profile.DB {
	t.Helper()
	db := profile.NewDB()
	for _, s := range []profile.Subject{
		{ID: "Alice", Supervisor: "Bob", Groups: []string{"staff"}, Roles: []string{"researcher"}},
		{ID: "Bob", Supervisor: "Carol", Groups: []string{"staff"}, Roles: []string{"supervisor"}},
		{ID: "Carol", Roles: []string{"dean"}},
	} {
		if err := db.Put(s); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestSubjectOps(t *testing.T) {
	db := profilesFixture(t)
	if got, err := (SameSubject{}).Apply("Alice", db); err != nil || len(got) != 1 || got[0] != "Alice" {
		t.Errorf("SameSubject = %v, %v", got, err)
	}
	if got, err := (SupervisorOf{}).Apply("Alice", db); err != nil || len(got) != 1 || got[0] != "Bob" {
		t.Errorf("SupervisorOf = %v, %v", got, err)
	}
	// No supervisor: vacuous, no error.
	if got, err := (SupervisorOf{}).Apply("Carol", db); err != nil || len(got) != 0 {
		t.Errorf("SupervisorOf(Carol) = %v, %v", got, err)
	}
	// Unknown subject: error.
	if _, err := (SupervisorOf{}).Apply("Ghost", db); !errors.Is(err, profile.ErrNotFound) {
		t.Errorf("SupervisorOf(Ghost) err = %v", err)
	}
	if got, _ := (DirectReportsOf{}).Apply("Carol", db); len(got) != 1 || got[0] != "Bob" {
		t.Errorf("DirectReportsOf = %v", got)
	}
	if got, _ := (MembersOf{"staff"}).Apply("ignored", db); len(got) != 2 {
		t.Errorf("MembersOf = %v", got)
	}
	if got, _ := (HoldersOf{"dean"}).Apply("ignored", db); len(got) != 1 || got[0] != "Carol" {
		t.Errorf("HoldersOf = %v", got)
	}
	custom := SubjectFunc{Name: "Buddy_Of", Fn: func(base profile.SubjectID, _ *profile.DB) ([]profile.SubjectID, error) {
		return []profile.SubjectID{base + "-buddy"}, nil
	}}
	if got, _ := custom.Apply("Alice", db); got[0] != "Alice-buddy" {
		t.Errorf("custom = %v", got)
	}
}

func TestSubjectOpStrings(t *testing.T) {
	cases := map[string]string{
		(SameSubject{}).String():          "SAME",
		(SupervisorOf{}).String():         "Supervisor_Of",
		(DirectReportsOf{}).String():      "Direct_Reports_Of",
		(MembersOf{"staff"}).String():     "Members_Of(staff)",
		(HoldersOf{"dean"}).String():      "Holders_Of(dean)",
		(SubjectFunc{}).String():          "CUSTOM",
		(SubjectFunc{Name: "X"}).String(): "X",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestLocationOps(t *testing.T) {
	ntu := graph.NTUCampus()
	if got, err := (SameLocation{}).Apply(graph.CAIS, ntu); err != nil || len(got) != 1 || got[0] != graph.CAIS {
		t.Errorf("SameLocation = %v, %v", got, err)
	}
	if got, err := (FixedLocation{graph.Lab1}).Apply(graph.CAIS, ntu); err != nil || got[0] != graph.Lab1 {
		t.Errorf("FixedLocation = %v, %v", got, err)
	}
	if _, err := (FixedLocation{"Mars"}).Apply(graph.CAIS, ntu); err == nil {
		t.Error("unknown fixed location should fail")
	}
	// Composite names are not primitive locations.
	if _, err := (FixedLocation{graph.SCE}).Apply(graph.CAIS, ntu); err == nil {
		t.Error("composite as fixed location should fail")
	}

	got, err := (AllRouteFrom{Source: graph.SCEGO}).Apply(graph.CAIS, ntu)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 {
		t.Errorf("AllRouteFrom = %v", got)
	}
	if _, err := (AllRouteFrom{Source: "Mars"}).Apply(graph.CAIS, ntu); err == nil {
		t.Error("unknown source should fail")
	}

	ns, err := (NeighborsOf{}).Apply(graph.SCESectionB, ntu)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 3 { // SectionA, CAIS, SectionC
		t.Errorf("NeighborsOf = %v", ns)
	}
	ns2, _ := (NeighborsOf{IncludeSelf: true}).Apply(graph.SCESectionB, ntu)
	if len(ns2) != 4 || ns2[0] != graph.SCESectionB {
		t.Errorf("NeighborsOf self = %v", ns2)
	}
	if _, err := (NeighborsOf{}).Apply("Mars", ntu); err == nil {
		t.Error("unknown base should fail")
	}

	all, err := (AllIn{graph.SCE}).Apply("ignored", ntu)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Errorf("AllIn(SCE) = %v", all)
	}
	if _, err := (AllIn{"Mars"}).Apply("x", ntu); err == nil {
		t.Error("unknown composite should fail")
	}

	custom := LocationFunc{Name: "l", Fn: func(base graph.ID, _ *graph.Graph) ([]graph.ID, error) {
		return []graph.ID{base}, nil
	}}
	if got, _ := custom.Apply(graph.CAIS, ntu); got[0] != graph.CAIS {
		t.Errorf("custom = %v", got)
	}
}

func TestAllRouteFromScoping(t *testing.T) {
	// Endpoints in different schools scope to the campus, not a school:
	// the route EEE.GO → CAIS must cross school entries.
	ntu := graph.NTUCampus()
	got, err := (AllRouteFrom{Source: graph.EEEGO}).Apply(graph.CAIS, ntu)
	if err != nil {
		t.Fatal(err)
	}
	asSet := map[graph.ID]bool{}
	for _, id := range got {
		asSet[id] = true
	}
	if !asSet[graph.EEEGO] || !asSet[graph.SCEGO] || !asSet[graph.CAIS] {
		t.Errorf("cross-school route locations = %v", got)
	}
}

func TestLocationOpStrings(t *testing.T) {
	cases := map[string]string{
		(SameLocation{}).String():            "SAME",
		(FixedLocation{graph.CAIS}).String(): "CAIS",
		(AllRouteFrom{graph.SCEGO}).String(): "all_route_from(SCE.GO)",
		(NeighborsOf{}).String():             "neighbors_of",
		(AllIn{graph.SCE}).String():          "all_in(SCE)",
		(LocationFunc{}).String():            "CUSTOM",
		(LocationFunc{Name: "X"}).String():   "X",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("got %q, want %q", got, want)
		}
	}
}

func TestEntryExprs(t *testing.T) {
	if (SameEntries{}).Apply(5) != 5 || (SameEntries{}).Apply(authz.Unlimited) != authz.Unlimited {
		t.Error("SameEntries broken")
	}
	if (ConstEntries{3}).Apply(99) != 3 {
		t.Error("ConstEntries broken")
	}
	if (AddEntries{2}).Apply(3) != 5 {
		t.Error("AddEntries broken")
	}
	if (AddEntries{-10}).Apply(3) != 1 {
		t.Error("AddEntries must clamp at 1")
	}
	if (AddEntries{2}).Apply(authz.Unlimited) != authz.Unlimited {
		t.Error("unlimited + delta must stay unlimited")
	}
	if (ScaleEntries{3}).Apply(4) != 12 {
		t.Error("ScaleEntries broken")
	}
	if (ScaleEntries{0}).Apply(4) != 1 {
		t.Error("ScaleEntries must clamp at 1")
	}
	if (ScaleEntries{3}).Apply(authz.Unlimited) != authz.Unlimited {
		t.Error("unlimited scale must stay unlimited")
	}
	if (SameEntries{}).String() != "SAME" || (ConstEntries{2}).String() != "2" ||
		(AddEntries{1}).String() != "n+1" || (ScaleEntries{2}).String() != "n*2" {
		t.Error("entry expr strings broken")
	}
}

func TestOpsDefaultsAndString(t *testing.T) {
	var o Ops
	d := o.withDefaults()
	if d.Entry == nil || d.Exit == nil || d.Subject == nil || d.Location == nil || d.Entries == nil {
		t.Error("defaults not filled")
	}
	want := "(WHENEVER, WHENEVER, SAME, SAME, SAME)"
	if o.String() != want {
		t.Errorf("Ops string = %q, want %q", o.String(), want)
	}
}
