package rules

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/profile"
)

// Skip records one derivation combination that produced no authorization,
// with the reason (e.g. the entry/exit pairing violated tos >= tis, or the
// base subject has no supervisor). Skips make rule misfires visible
// instead of silently shrinking the derived set — LTAM is explicitly "a
// framework for analyzing the security shortfalls due to human errors in
// specifying authorizations".
type Skip struct {
	Rule   string
	Reason string
}

// Report is the outcome of evaluating one rule.
type Report struct {
	Rule    string
	Derived []authz.Authorization
	Skips   []Skip
}

// Engine owns the rule set and keeps derived authorizations in sync with
// the authorization store and the profile database. It is safe for
// concurrent use.
type Engine struct {
	mu       sync.Mutex
	store    *authz.Store
	profiles *profile.DB
	root     *graph.Graph
	rules    map[string]Rule
	order    []string
	// autoDerive re-runs every rule after a profile change, implementing
	// Example 1's automatic re-derivation.
	autoDerive bool
}

// NewEngine builds a rule engine over the given databases. When
// autoDerive is true the engine watches the profile database and
// re-derives all rules after every profile change.
func NewEngine(store *authz.Store, profiles *profile.DB, root *graph.Graph, autoDerive bool) *Engine {
	e := &Engine{
		store:      store,
		profiles:   profiles,
		root:       root,
		rules:      make(map[string]Rule),
		autoDerive: autoDerive,
	}
	if autoDerive {
		profiles.Watch(func(profile.Change) { _, _ = e.DeriveAll() })
	}
	return e
}

// AddRule registers the rule and immediately derives its authorizations.
func (e *Engine) AddRule(r Rule) (Report, error) {
	if err := r.Validate(); err != nil {
		return Report{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rules[r.Name]; dup {
		return Report{}, fmt.Errorf("rules: duplicate rule %q", r.Name)
	}
	if _, err := e.store.Get(r.Base); err != nil {
		return Report{}, fmt.Errorf("rules: rule %q: base authorization: %w", r.Name, err)
	}
	e.rules[r.Name] = r
	e.order = append(e.order, r.Name)
	return e.deriveLocked(r)
}

// RestoreRule registers a rule without deriving — used by recovery, where
// the derived authorizations are already present in the restored store.
func (e *Engine) RestoreRule(r Rule) error {
	if err := r.Validate(); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.rules[r.Name]; dup {
		return fmt.Errorf("rules: duplicate rule %q", r.Name)
	}
	e.rules[r.Name] = r
	e.order = append(e.order, r.Name)
	return nil
}

// Reset forgets every registered rule WITHOUT revoking derived
// authorizations — the restore primitive: a replica re-bootstrapping in
// place replaces the whole authorization store wholesale, so the derived
// rows are already gone, and the fresh snapshot's rules are re-registered
// with RestoreRule.
func (e *Engine) Reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rules = make(map[string]Rule)
	e.order = nil
}

// RemoveRule deletes the rule and revokes everything it derived.
func (e *Engine) RemoveRule(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.rules[name]; !ok {
		return fmt.Errorf("rules: unknown rule %q", name)
	}
	delete(e.rules, name)
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	e.store.RevokeDerivedBy(name)
	return nil
}

// Rules returns the registered rules in insertion order.
func (e *Engine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Rule, 0, len(e.order))
	for _, name := range e.order {
		out = append(out, e.rules[name])
	}
	return out
}

// Derive re-evaluates one rule: previously derived authorizations are
// revoked and fresh ones derived from the current state of the profile
// database and base authorization.
func (e *Engine) Derive(name string) (Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.rules[name]
	if !ok {
		return Report{}, fmt.Errorf("rules: unknown rule %q", name)
	}
	return e.deriveLocked(r)
}

// DeriveAll re-evaluates every rule in insertion order.
func (e *Engine) DeriveAll() ([]Report, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	var reports []Report
	var firstErr error
	for _, name := range e.order {
		rep, err := e.deriveLocked(e.rules[name])
		if err != nil && firstErr == nil {
			firstErr = err
		}
		reports = append(reports, rep)
	}
	return reports, firstErr
}

// deriveLocked evaluates rule r: it revokes the rule's previous output,
// applies the operator tuple to the base authorization, and stores the
// cartesian product of the derived components, skipping combinations
// whose temporal constraints are unsatisfiable.
func (e *Engine) deriveLocked(r Rule) (Report, error) {
	rep := Report{Rule: r.Name}
	e.store.RevokeDerivedBy(r.Name)

	base, err := e.store.Get(r.Base)
	if err != nil {
		// The base was revoked after rule registration: the rule is
		// dormant, deriving nothing.
		rep.Skips = append(rep.Skips, Skip{Rule: r.Name, Reason: fmt.Sprintf("base authorization a%d revoked", r.Base)})
		return rep, nil
	}
	ops := r.Ops.withDefaults()

	entrySet := ops.Entry.Apply(base.Entry, r.ValidFrom)
	exitSet := ops.Exit.Apply(base.Exit, r.ValidFrom)
	if entrySet.IsEmpty() {
		rep.Skips = append(rep.Skips, Skip{Rule: r.Name, Reason: "entry operator produced no interval"})
		return rep, nil
	}
	if exitSet.IsEmpty() {
		rep.Skips = append(rep.Skips, Skip{Rule: r.Name, Reason: "exit operator produced no interval"})
		return rep, nil
	}
	subjects, err := ops.Subject.Apply(base.Subject, e.profiles)
	if err != nil {
		return rep, fmt.Errorf("rules: rule %q: subject operator: %w", r.Name, err)
	}
	if len(subjects) == 0 {
		rep.Skips = append(rep.Skips, Skip{Rule: r.Name, Reason: fmt.Sprintf("subject operator %s derived no subjects for %s", ops.Subject, base.Subject)})
		return rep, nil
	}
	sortSubjects(subjects)
	locations, err := ops.Location.Apply(base.Location, e.root)
	if err != nil {
		return rep, fmt.Errorf("rules: rule %q: location operator: %w", r.Name, err)
	}
	if len(locations) == 0 {
		rep.Skips = append(rep.Skips, Skip{Rule: r.Name, Reason: "location operator derived no locations"})
		return rep, nil
	}
	sort.Slice(locations, func(i, j int) bool { return locations[i] < locations[j] })
	n := ops.Entries.Apply(base.MaxEntries)

	// Validate-or-skip first, then store the survivors as one batch —
	// the sharded store clones each touched stripe once per batch, so a
	// rule deriving thousands of authorizations stays O(batch), not
	// O(batch × store).
	var pending []authz.Authorization
	for _, s := range subjects {
		for _, l := range locations {
			for _, eIv := range entrySet.Intervals() {
				for _, xIv := range exitSet.Intervals() {
					a := authz.Authorization{
						Subject:    s,
						Location:   l,
						Entry:      eIv,
						Exit:       xIv,
						MaxEntries: n,
						CreatedAt:  r.ValidFrom,
						DerivedBy:  r.Name,
						BaseID:     base.ID,
					}.Normalize()
					if err := a.Validate(); err != nil {
						rep.Skips = append(rep.Skips, Skip{
							Rule:   r.Name,
							Reason: fmt.Sprintf("(%s, %s) entry %s exit %s: %v", s, l, eIv, xIv, err),
						})
						continue
					}
					pending = append(pending, a)
				}
			}
		}
	}
	stored, err := e.store.AddAll(pending)
	if err != nil {
		return rep, fmt.Errorf("rules: rule %q: store: %w", r.Name, err)
	}
	rep.Derived = append(rep.Derived, stored...)
	return rep, nil
}

// RevokeBase revokes the base authorization with the given ID and every
// authorization derived from it, then re-derives the rules so dormant
// rules drop their output. It returns the number of authorizations
// removed (base plus derived).
func (e *Engine) RevokeBase(id authz.ID) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.store.Revoke(id); err != nil {
		return 0, err
	}
	removed := 1
	for _, a := range e.store.All() {
		if a.BaseID == id && a.IsDerived() {
			if err := e.store.Revoke(a.ID); err == nil {
				removed++
			}
		}
	}
	return removed, nil
}
