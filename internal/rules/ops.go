// Package rules implements LTAM authorization rules (Definition 5): rules
// ⟨tr : (a, OP)⟩ that derive new authorizations from a base authorization
// through a tuple of operators OP = (op_entry, op_exit, op_subject,
// op_location, exp_n), together with the derivation engine that keeps
// derived authorizations consistent with the profile database (Example 1:
// when Alice is assigned a different supervisor, the system automatically
// derives the authorization for the new supervisor and revokes Bob's).
package rules

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// SubjectOp derives the subjects of the derived authorizations from the
// base authorization's subject (op_subject of Def. 5), consulting the
// user profile database.
type SubjectOp interface {
	Apply(base profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error)
	String() string
}

// SameSubject copies the base subject (the default when op_subject is
// unspecified — "the default value will be copied from the base
// authorization").
type SameSubject struct{}

// Apply implements SubjectOp.
func (SameSubject) Apply(base profile.SubjectID, _ *profile.DB) ([]profile.SubjectID, error) {
	return []profile.SubjectID{base}, nil
}

func (SameSubject) String() string { return "SAME" }

// SupervisorOf is the paper's Supervisor_Of operator: it "returns the
// supervisor of a user by querying the user profile database". A subject
// without a supervisor derives nothing (not an error — the rule is simply
// vacuous, and becomes productive when a supervisor is later assigned).
type SupervisorOf struct{}

// Apply implements SubjectOp.
func (SupervisorOf) Apply(base profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error) {
	sup, ok, err := profiles.SupervisorOf(base)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return []profile.SubjectID{sup}, nil
}

func (SupervisorOf) String() string { return "Supervisor_Of" }

// DirectReportsOf derives one authorization per direct report of the base
// subject — the inverse of SupervisorOf, useful for escorting rules.
type DirectReportsOf struct{}

// Apply implements SubjectOp.
func (DirectReportsOf) Apply(base profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error) {
	return profiles.DirectReports(base), nil
}

func (DirectReportsOf) String() string { return "Direct_Reports_Of" }

// MembersOf derives one authorization per member of the named group,
// ignoring the base subject.
type MembersOf struct{ Group string }

// Apply implements SubjectOp.
func (op MembersOf) Apply(_ profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error) {
	return profiles.MembersOf(op.Group), nil
}

func (op MembersOf) String() string { return fmt.Sprintf("Members_Of(%s)", op.Group) }

// HoldersOf derives one authorization per holder of the named role.
type HoldersOf struct{ Role string }

// Apply implements SubjectOp.
func (op HoldersOf) Apply(_ profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error) {
	return profiles.HoldersOf(op.Role), nil
}

func (op HoldersOf) String() string { return fmt.Sprintf("Holders_Of(%s)", op.Role) }

// SubjectFunc adapts a function as a customized subject operator (the
// paper: "customized operators can be defined as well").
type SubjectFunc struct {
	Name string
	Fn   func(base profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error)
}

// Apply implements SubjectOp.
func (f SubjectFunc) Apply(base profile.SubjectID, profiles *profile.DB) ([]profile.SubjectID, error) {
	return f.Fn(base, profiles)
}

func (f SubjectFunc) String() string {
	if f.Name == "" {
		return "CUSTOM"
	}
	return f.Name
}

// LocationOp derives the locations of the derived authorizations from the
// base authorization's location (op_location of Def. 5), consulting the
// location graph.
type LocationOp interface {
	Apply(base graph.ID, root *graph.Graph) ([]graph.ID, error)
	String() string
}

// SameLocation copies the base location (the default).
type SameLocation struct{}

// Apply implements LocationOp.
func (SameLocation) Apply(base graph.ID, _ *graph.Graph) ([]graph.ID, error) {
	return []graph.ID{base}, nil
}

func (SameLocation) String() string { return "SAME" }

// FixedLocation derives for an explicitly named primitive location,
// ignoring the base (rule r1 of Example 1 names CAIS explicitly).
type FixedLocation struct{ Location graph.ID }

// Apply implements LocationOp.
func (op FixedLocation) Apply(_ graph.ID, root *graph.Graph) ([]graph.ID, error) {
	if root.FindGraphOf(op.Location) == nil {
		return nil, fmt.Errorf("rules: location %q is not a primitive location", op.Location)
	}
	return []graph.ID{op.Location}, nil
}

func (op FixedLocation) String() string { return string(op.Location) }

// AllRouteFrom is the paper's all_route_from operator (Example 3): given
// source src, it returns "all the locations on the route from source src
// to destination l", l being the base location. The operator is scoped to
// the smallest composite location containing both endpoints, matching the
// paper's example where routes from SCE.GO to CAIS stay within SCE.
type AllRouteFrom struct{ Source graph.ID }

// Apply implements LocationOp.
func (op AllRouteFrom) Apply(base graph.ID, root *graph.Graph) ([]graph.ID, error) {
	scope := smallestCommonComposite(root, op.Source, base)
	if scope == nil {
		return nil, fmt.Errorf("rules: no composite contains both %q and %q", op.Source, base)
	}
	f := graph.Expand(scope)
	locs := f.RouteLocations(op.Source, base)
	if len(locs) == 0 {
		return nil, fmt.Errorf("rules: no route from %q to %q", op.Source, base)
	}
	return locs, nil
}

func (op AllRouteFrom) String() string { return fmt.Sprintf("all_route_from(%s)", op.Source) }

// smallestCommonComposite returns the composite graph with the fewest
// primitive locations that contains both a and b (root when nothing
// smaller qualifies), or nil when either location is unknown.
func smallestCommonComposite(root *graph.Graph, a, b graph.ID) *graph.Graph {
	if root.FindGraphOf(a) == nil || root.FindGraphOf(b) == nil {
		return nil
	}
	best := root
	bestSize := len(root.Primitives())
	var walk func(g *graph.Graph)
	walk = func(g *graph.Graph) {
		for _, id := range g.Locations() {
			if c := g.Child(id); c != nil {
				if c.FindGraphOf(a) != nil && c.FindGraphOf(b) != nil {
					if sz := len(c.Primitives()); sz < bestSize {
						best, bestSize = c, sz
					}
				}
				walk(c)
			}
		}
	}
	walk(root)
	return best
}

// NeighborsOf derives for the base location's direct neighbours in the
// expanded graph (including it or not per IncludeSelf).
type NeighborsOf struct{ IncludeSelf bool }

// Apply implements LocationOp.
func (op NeighborsOf) Apply(base graph.ID, root *graph.Graph) ([]graph.ID, error) {
	f := graph.Expand(root)
	if _, ok := f.Index[base]; !ok {
		return nil, fmt.Errorf("rules: location %q is not a primitive location", base)
	}
	out := f.NeighborsOf(base)
	if op.IncludeSelf {
		out = append([]graph.ID{base}, out...)
	}
	return out, nil
}

func (op NeighborsOf) String() string {
	if op.IncludeSelf {
		return "neighbors_of_self"
	}
	return "neighbors_of"
}

// AllIn derives for every primitive location of the named composite —
// e.g. granting a dean all rooms of the school.
type AllIn struct{ Composite graph.ID }

// Apply implements LocationOp.
func (op AllIn) Apply(_ graph.ID, root *graph.Graph) ([]graph.ID, error) {
	g := root.FindComposite(op.Composite)
	if g == nil {
		return nil, fmt.Errorf("rules: composite %q not found", op.Composite)
	}
	return g.Primitives(), nil
}

func (op AllIn) String() string { return fmt.Sprintf("all_in(%s)", op.Composite) }

// LocationFunc adapts a function as a customized location operator.
type LocationFunc struct {
	Name string
	Fn   func(base graph.ID, root *graph.Graph) ([]graph.ID, error)
}

// Apply implements LocationOp.
func (f LocationFunc) Apply(base graph.ID, root *graph.Graph) ([]graph.ID, error) {
	return f.Fn(base, root)
}

func (f LocationFunc) String() string {
	if f.Name == "" {
		return "CUSTOM"
	}
	return f.Name
}

// EntryExpr is exp_n of Def. 5: "a numeric expression on the number of
// entries" deriving the entry count of derived authorizations from the
// base's.
type EntryExpr interface {
	Apply(base int64) int64
	String() string
}

// SameEntries copies the base count (the default).
type SameEntries struct{}

// Apply implements EntryExpr.
func (SameEntries) Apply(base int64) int64 { return base }

func (SameEntries) String() string { return "SAME" }

// ConstEntries sets a fixed count (rule r1 writes the literal 2).
type ConstEntries struct{ N int64 }

// Apply implements EntryExpr.
func (c ConstEntries) Apply(int64) int64 { return c.N }

func (c ConstEntries) String() string { return fmt.Sprintf("%d", c.N) }

// AddEntries adds a delta to the base count, clamped at 1; an unlimited
// base stays unlimited.
type AddEntries struct{ Delta int64 }

// Apply implements EntryExpr.
func (a AddEntries) Apply(base int64) int64 {
	if base == authz.Unlimited {
		return authz.Unlimited
	}
	n := base + a.Delta
	if n < 1 {
		return 1
	}
	return n
}

func (a AddEntries) String() string { return fmt.Sprintf("n%+d", a.Delta) }

// ScaleEntries multiplies the base count, clamped at 1; an unlimited base
// stays unlimited.
type ScaleEntries struct{ Factor int64 }

// Apply implements EntryExpr.
func (s ScaleEntries) Apply(base int64) int64 {
	if base == authz.Unlimited {
		return authz.Unlimited
	}
	n := base * s.Factor
	if n < 1 {
		return 1
	}
	return n
}

func (s ScaleEntries) String() string { return fmt.Sprintf("n*%d", s.Factor) }

// Ops is the operator tuple OP of Definition 5. Nil fields take the
// paper's default: "if any of the rule elements is not specified in a
// rule, the default value will be copied from the base authorization."
type Ops struct {
	Entry    interval.TemporalOp // op_entry
	Exit     interval.TemporalOp // op_exit
	Subject  SubjectOp           // op_subject
	Location LocationOp          // op_location
	Entries  EntryExpr           // exp_n
}

func (o Ops) withDefaults() Ops {
	if o.Entry == nil {
		o.Entry = interval.Whenever{}
	}
	if o.Exit == nil {
		o.Exit = interval.Whenever{}
	}
	if o.Subject == nil {
		o.Subject = SameSubject{}
	}
	if o.Location == nil {
		o.Location = SameLocation{}
	}
	if o.Entries == nil {
		o.Entries = SameEntries{}
	}
	return o
}

// String renders the tuple in the paper's notation, e.g.
// "(WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2)".
func (o Ops) String() string {
	o = o.withDefaults()
	return fmt.Sprintf("(%s, %s, %s, %s, %s)", o.Entry, o.Exit, o.Subject, o.Location, o.Entries)
}

// Rule is an authorization rule ⟨tr : (a, OP)⟩ — Definition 5. Base
// references the base authorization in the store.
type Rule struct {
	// Name identifies the rule (the paper writes r1, r2, …).
	Name string
	// ValidFrom is tr, the time from when the rule is valid; it anchors
	// WHENEVERNOT complements and the CreatedAt of derived auths.
	ValidFrom interval.Time
	// Base is the base authorization's ID.
	Base authz.ID
	// Ops is the operator tuple.
	Ops Ops
}

// Validate checks the rule's static well-formedness.
func (r Rule) Validate() error {
	if r.Name == "" {
		return errors.New("rules: rule needs a name")
	}
	if r.Base == 0 {
		return errors.New("rules: rule needs a base authorization")
	}
	return nil
}

// String renders the rule in the paper's notation ⟨tr : (a, OP)⟩.
func (r Rule) String() string {
	return fmt.Sprintf("⟨%s: a%d, %s⟩", r.ValidFrom, r.Base, r.Ops)
}

func sortSubjects(ids []profile.SubjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
