package rules

import (
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

func TestSpecCompileExample2(t *testing.T) {
	// Rule r2 of the paper in surface syntax.
	spec := Spec{
		Name:      "r2",
		ValidFrom: 7,
		Base:      1,
		Entry:     "INTERSECTION([10, 30])",
		Exit:      "WHENEVER",
		Subject:   "Supervisor_Of",
		Location:  "CAIS",
		Entries:   "2",
	}
	r, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "r2" || r.ValidFrom != 7 || r.Base != 1 {
		t.Errorf("rule = %+v", r)
	}
	if _, ok := r.Ops.Entry.(interval.IntersectionOp); !ok {
		t.Errorf("entry op = %T", r.Ops.Entry)
	}
	if _, ok := r.Ops.Subject.(SupervisorOf); !ok {
		t.Errorf("subject op = %T", r.Ops.Subject)
	}
	if fl, ok := r.Ops.Location.(FixedLocation); !ok || fl.Location != "CAIS" {
		t.Errorf("location op = %#v", r.Ops.Location)
	}
	if ce, ok := r.Ops.Entries.(ConstEntries); !ok || ce.N != 2 {
		t.Errorf("entries = %#v", r.Ops.Entries)
	}
}

func TestSpecCompileDefaults(t *testing.T) {
	r, err := Spec{Name: "r", Base: 1}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if r.Ops.Entry != nil || r.Ops.Subject != nil {
		t.Error("unspecified fields must stay nil (defaults applied at derivation)")
	}
}

func TestSpecCompileErrors(t *testing.T) {
	bad := []Spec{
		{Name: "x", Base: 1, Entry: "NOPE"},
		{Name: "x", Base: 1, Exit: "UNION(zzz)"},
		{Name: "x", Base: 1, Subject: "Boss_Of"},
		{Name: "x", Base: 1, Location: "all_route_from()"},
		{Name: "x", Base: 1, Location: "weird(arg)"},
		{Name: "x", Base: 1, Entries: "many"},
		{Name: "x", Base: 1, Entries: "-3"},
		{Name: "", Base: 1},
		{Name: "x", Base: 0},
	}
	for _, s := range bad {
		if _, err := s.Compile(); err == nil {
			t.Errorf("spec %+v should fail", s)
		}
	}
}

func TestParseSubjectOpVariants(t *testing.T) {
	for in, want := range map[string]string{
		"SAME":              "SAME",
		"Supervisor_Of":     "Supervisor_Of",
		"Direct_Reports_Of": "Direct_Reports_Of",
		"Members_Of(staff)": "Members_Of(staff)",
		"Holders_Of(dean)":  "Holders_Of(dean)",
	} {
		op, err := ParseSubjectOp(in)
		if err != nil || op.String() != want {
			t.Errorf("ParseSubjectOp(%q) = %v, %v", in, op, err)
		}
	}
}

func TestParseLocationOpVariants(t *testing.T) {
	for in, want := range map[string]string{
		"SAME":                   "SAME",
		"neighbors_of":           "neighbors_of",
		"neighbors_of_self":      "neighbors_of_self",
		"all_route_from(SCE.GO)": "all_route_from(SCE.GO)",
		"all_in(SCE)":            "all_in(SCE)",
		"CAIS":                   "CAIS",
	} {
		op, err := ParseLocationOp(in)
		if err != nil || op.String() != want {
			t.Errorf("ParseLocationOp(%q) = %v, %v", in, op, err)
		}
	}
	if _, err := ParseLocationOp("all_in()"); err == nil {
		t.Error("empty all_in should fail")
	}
}

func TestParseEntryExprVariants(t *testing.T) {
	cases := map[string]int64{"5": 5, "0": 0}
	for in, want := range cases {
		e, err := ParseEntryExpr(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if got := e.Apply(99); got != want {
			t.Errorf("%q applied = %d, want %d", in, got, want)
		}
	}
	e, _ := ParseEntryExpr("n+3")
	if e.Apply(2) != 5 {
		t.Error("n+3 broken")
	}
	e, _ = ParseEntryExpr("n-1")
	if e.Apply(5) != 4 {
		t.Error("n-1 broken")
	}
	e, _ = ParseEntryExpr("n*4")
	if e.Apply(2) != 8 {
		t.Error("n*4 broken")
	}
	for _, bad := range []string{"n+x", "n*y", "SAMEISH"} {
		if _, err := ParseEntryExpr(bad); err == nil {
			t.Errorf("%q should fail", bad)
		}
	}
	e, _ = ParseEntryExpr("SAME")
	if e.Apply(7) != 7 {
		t.Error("SAME broken")
	}
}

func TestSpecOfRoundTrip(t *testing.T) {
	spec := Spec{
		Name: "r2", ValidFrom: 7, Base: 3,
		Entry: "INTERSECTION([10, 30])", Exit: "WHENEVER",
		Subject: "Supervisor_Of", Location: "all_route_from(SCE.GO)", Entries: "n+1",
	}
	r, err := spec.Compile()
	if err != nil {
		t.Fatal(err)
	}
	back, ok := SpecOf(r)
	if !ok {
		t.Fatal("built-in rule should round-trip")
	}
	if back != spec {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, spec)
	}
}

func TestSpecOfDefaultsRoundTrip(t *testing.T) {
	r, _ := Spec{Name: "r", Base: 1}.Compile()
	back, ok := SpecOf(r)
	if !ok {
		t.Fatal("default rule should round-trip")
	}
	// Defaults serialise explicitly.
	if back.Entry != "WHENEVER" || back.Subject != "SAME" || back.Entries != "SAME" {
		t.Errorf("defaults = %+v", back)
	}
	if _, err := back.Compile(); err != nil {
		t.Errorf("re-compile: %v", err)
	}
}

func TestSpecOfRejectsCustomOps(t *testing.T) {
	r := Rule{Name: "c", Base: 1, Ops: Ops{
		Subject: SubjectFunc{Name: "X", Fn: func(profile.SubjectID, *profile.DB) ([]profile.SubjectID, error) { return nil, nil }},
	}}
	if _, ok := SpecOf(r); ok {
		t.Error("custom subject op must not serialise")
	}
	r = Rule{Name: "c", Base: 1, Ops: Ops{
		Location: LocationFunc{Name: "X", Fn: func(graph.ID, *graph.Graph) ([]graph.ID, error) { return nil, nil }},
	}}
	if _, ok := SpecOf(r); ok {
		t.Error("custom location op must not serialise")
	}
	r = Rule{Name: "c", Base: 1, Ops: Ops{
		Entry: interval.TemporalFunc{Name: "X", Fn: func(interval.Interval, interval.Time) interval.Set { return interval.Set{} }},
	}}
	if _, ok := SpecOf(r); ok {
		t.Error("custom temporal op must not serialise")
	}
}

func TestCompiledSpecDerivesLikeHandBuilt(t *testing.T) {
	// The compiled r1 derives the same a2 as the hand-built rule in
	// engine_test.go.
	store := authz.NewStore()
	profiles := profile.NewDB()
	_ = profiles.Put(profile.Subject{ID: "Alice", Supervisor: "Bob"})
	_ = profiles.Put(profile.Subject{ID: "Bob"})
	a1, _ := store.Add(authz.New(interval.MustParse("[5, 20]"), interval.MustParse("[15, 50]"), "Alice", graph.CAIS, 2))
	eng := NewEngine(store, profiles, graph.NTUCampus(), false)

	r, err := Spec{
		Name: "r1", ValidFrom: 7, Base: a1.ID,
		Subject: "Supervisor_Of", Location: "CAIS", Entries: "2",
	}.Compile()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.AddRule(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 1 || rep.Derived[0].String() != "([5, 20], [15, 50], (Bob, CAIS), 2)" {
		t.Errorf("derived = %v", rep.Derived)
	}
}
