package rules

import (
	"strings"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

func iv(s string) interval.Interval { return interval.MustParse(s) }

// fixture builds the paper's §4 environment: the NTU campus, Alice with
// supervisor Bob, and the base authorization
// a1 = ([5, 20], [15, 50], (Alice, CAIS), 2).
func fixture(t *testing.T, autoDerive bool) (*Engine, *authz.Store, *profile.DB, authz.Authorization) {
	t.Helper()
	store := authz.NewStore()
	profiles := profile.NewDB()
	if err := profiles.Put(profile.Subject{ID: "Alice", Supervisor: "Bob"}); err != nil {
		t.Fatal(err)
	}
	if err := profiles.Put(profile.Subject{ID: "Bob"}); err != nil {
		t.Fatal(err)
	}
	a1, err := store.Add(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", graph.CAIS, 2))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(store, profiles, graph.NTUCampus(), autoDerive)
	return eng, store, profiles, a1
}

func TestExperimentRuleExamples(t *testing.T) {
	// E2: regenerate §4 Examples 1–3 exactly.
	eng, store, _, a1 := fixture(t, false)

	// Example 1 — r1: ⟨7: a1, (WHENEVER, WHENEVER, Supervisor_Of, CAIS, 2)⟩
	// derives a2 = ([5, 20], [15, 50], (Bob, CAIS), 2).
	rep, err := eng.AddRule(Rule{
		Name:      "r1",
		ValidFrom: 7,
		Base:      a1.ID,
		Ops: Ops{
			Entry:    interval.Whenever{},
			Exit:     interval.Whenever{},
			Subject:  SupervisorOf{},
			Location: FixedLocation{graph.CAIS},
			Entries:  ConstEntries{2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 1 {
		t.Fatalf("r1 derived %d auths: %v", len(rep.Derived), rep)
	}
	a2 := rep.Derived[0]
	wantA2 := "([5, 20], [15, 50], (Bob, CAIS), 2)"
	if a2.String() != wantA2 {
		t.Errorf("a2 = %s, want %s", a2, wantA2)
	}
	if a2.DerivedBy != "r1" || a2.BaseID != a1.ID {
		t.Errorf("a2 provenance = %q base %d", a2.DerivedBy, a2.BaseID)
	}
	t.Logf("Example 1: rule r1 derived a2 = %s", a2)

	// Example 2 — r2: ⟨7: a1, (INTERSECTION([10, 30]), WHENEVER,
	// Supervisor_Of, CAIS, 2)⟩ derives a3 = ([10, 20], [15, 50], (Bob,
	// CAIS), 2).
	rep, err = eng.AddRule(Rule{
		Name:      "r2",
		ValidFrom: 7,
		Base:      a1.ID,
		Ops: Ops{
			Entry:    interval.IntersectionOp{With: iv("[10, 30]")},
			Exit:     interval.Whenever{},
			Subject:  SupervisorOf{},
			Location: FixedLocation{graph.CAIS},
			Entries:  ConstEntries{2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 1 {
		t.Fatalf("r2 derived %d auths", len(rep.Derived))
	}
	a3 := rep.Derived[0]
	wantA3 := "([10, 20], [15, 50], (Bob, CAIS), 2)"
	if a3.String() != wantA3 {
		t.Errorf("a3 = %s, want %s", a3, wantA3)
	}
	t.Logf("Example 2: rule r2 derived a3 = %s", a3)

	// Example 3 — r3: ⟨7: a1, (WHENEVER, WHENEVER, _, all_route_from(
	// SCE.GO), 2)⟩ derives an authorization for Alice on every location
	// on routes from SCE.GO to CAIS: the paper's set {SCE.GO,
	// SCE.SectionA, SCE.SectionB, SCE.SectionC, CHIPES} plus the
	// destination CAIS.
	rep, err = eng.AddRule(Rule{
		Name:      "r3",
		ValidFrom: 7,
		Base:      a1.ID,
		Ops: Ops{
			Location: AllRouteFrom{Source: graph.SCEGO},
			Entries:  ConstEntries{2},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[graph.ID]bool{
		graph.SCEGO: true, graph.SCESectionA: true, graph.SCESectionB: true,
		graph.SCESectionC: true, graph.CHIPES: true, graph.CAIS: true,
	}
	if len(rep.Derived) != len(want) {
		t.Fatalf("r3 derived %d auths, want %d: %v", len(rep.Derived), len(want), rep.Derived)
	}
	for _, a := range rep.Derived {
		if !want[a.Location] {
			t.Errorf("unexpected derived location %s", a.Location)
		}
		if a.Subject != "Alice" {
			t.Errorf("r3 must keep the base subject, got %s", a.Subject)
		}
		if !a.Entry.Equal(iv("[5, 20]")) || !a.Exit.Equal(iv("[15, 50]")) || a.MaxEntries != 2 {
			t.Errorf("r3 derived wrong windows: %s", a)
		}
		t.Logf("Example 3: derived %s", a)
	}
	// Store now holds a1 + a2 + a3 + 6 route auths.
	if store.Len() != 9 {
		t.Errorf("store len = %d, want 9", store.Len())
	}
}

func TestSupervisorReassignmentRevokesAndRederives(t *testing.T) {
	// Example 1's punchline: "if Alice is assigned a different
	// supervisor ... the system is able to automatically derive the
	// authorizations for the new supervisor while the authorization for
	// Bob will be revoked."
	eng, store, profiles, a1 := fixture(t, true)
	_, err := eng.AddRule(Rule{
		Name: "r1", ValidFrom: 7, Base: a1.ID,
		Ops: Ops{Subject: SupervisorOf{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := store.For("Bob", graph.CAIS); len(got) != 1 {
		t.Fatalf("Bob should hold a derived auth, got %v", got)
	}
	// Reassign Alice to Carol.
	if err := profiles.Put(profile.Subject{ID: "Carol"}); err != nil {
		t.Fatal(err)
	}
	if err := profiles.Put(profile.Subject{ID: "Alice", Supervisor: "Carol"}); err != nil {
		t.Fatal(err)
	}
	if got := store.For("Bob", graph.CAIS); len(got) != 0 {
		t.Errorf("Bob's derived auth should be revoked, got %v", got)
	}
	got := store.For("Carol", graph.CAIS)
	if len(got) != 1 || got[0].DerivedBy != "r1" {
		t.Errorf("Carol should hold the derived auth, got %v", got)
	}
	// The base authorization is untouched throughout.
	if _, err := store.Get(a1.ID); err != nil {
		t.Error("base auth must survive re-derivation")
	}
}

func TestWheneverNotDerivesMultipleAuths(t *testing.T) {
	// WHENEVERNOT splits the complement into [tr, t0-1] and [t1+1, ∞],
	// deriving one authorization per interval (when valid).
	eng, _, _, a1 := fixture(t, false)
	rep, err := eng.AddRule(Rule{
		Name: "guard-offhours", ValidFrom: 0, Base: a1.ID,
		Ops: Ops{
			Entry: interval.WheneverNot{},
			Exit: interval.TemporalFunc{Name: "ALL", Fn: func(interval.Interval, interval.Time) interval.Set {
				return interval.NewSet(interval.From(0))
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Entry complement of [5,20] from 0: [0,4] and [21,inf]. The exit
	// window [0,inf] starts before the second entry window, violating
	// tos >= tis, so that combination is skipped and reported; only the
	// [0,4] authorization is derived.
	if len(rep.Derived) != 1 {
		t.Fatalf("derived = %v", rep.Derived)
	}
	if !rep.Derived[0].Entry.Equal(iv("[0, 4]")) {
		t.Errorf("entry = %v", rep.Derived[0].Entry)
	}
	if len(rep.Skips) != 1 || !strings.Contains(rep.Skips[0].Reason, "tos >= tis") {
		t.Errorf("skips = %v", rep.Skips)
	}
}

func TestDerivationSkipsInvalidCombos(t *testing.T) {
	// An entry/exit pairing violating toe >= tie is skipped and reported,
	// not stored.
	eng, store, _, a1 := fixture(t, false)
	rep, err := eng.AddRule(Rule{
		Name: "bad-exit", ValidFrom: 0, Base: a1.ID,
		Ops: Ops{
			Exit: interval.TemporalFunc{Name: "EARLY", Fn: func(interval.Interval, interval.Time) interval.Set {
				return interval.NewSet(iv("[5, 10]")) // ends before entry [5,20] ends
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 0 {
		t.Errorf("derived = %v, want none", rep.Derived)
	}
	if len(rep.Skips) != 1 || !strings.Contains(rep.Skips[0].Reason, "toe >= tie") {
		t.Errorf("skips = %v", rep.Skips)
	}
	if store.Len() != 1 {
		t.Errorf("store should hold only the base, len = %d", store.Len())
	}
}

func TestRuleValidation(t *testing.T) {
	eng, _, _, a1 := fixture(t, false)
	if _, err := eng.AddRule(Rule{Base: a1.ID}); err == nil {
		t.Error("unnamed rule should fail")
	}
	if _, err := eng.AddRule(Rule{Name: "x"}); err == nil {
		t.Error("rule without base should fail")
	}
	if _, err := eng.AddRule(Rule{Name: "x", Base: 999}); err == nil {
		t.Error("rule with unknown base should fail")
	}
	if _, err := eng.AddRule(Rule{Name: "ok", Base: a1.ID}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddRule(Rule{Name: "ok", Base: a1.ID}); err == nil {
		t.Error("duplicate rule name should fail")
	}
}

func TestRemoveRule(t *testing.T) {
	eng, store, _, a1 := fixture(t, false)
	_, _ = eng.AddRule(Rule{Name: "r1", ValidFrom: 7, Base: a1.ID, Ops: Ops{Subject: SupervisorOf{}}})
	if store.Len() != 2 {
		t.Fatalf("len = %d", store.Len())
	}
	if err := eng.RemoveRule("r1"); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Error("derived auths must be revoked on rule removal")
	}
	if err := eng.RemoveRule("r1"); err == nil {
		t.Error("double remove should fail")
	}
	if len(eng.Rules()) != 0 {
		t.Error("rule list should be empty")
	}
}

func TestDormantRuleAfterBaseRevocation(t *testing.T) {
	eng, store, _, a1 := fixture(t, false)
	_, _ = eng.AddRule(Rule{Name: "r1", ValidFrom: 7, Base: a1.ID, Ops: Ops{Subject: SupervisorOf{}}})
	removed, err := eng.RevokeBase(a1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("removed = %d, want base+derived = 2", removed)
	}
	if store.Len() != 0 {
		t.Errorf("store len = %d", store.Len())
	}
	// Re-deriving the dormant rule yields a skip, not an error.
	rep, err := eng.Derive("r1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Derived) != 0 || len(rep.Skips) != 1 {
		t.Errorf("dormant rule report = %+v", rep)
	}
	if _, err := eng.RevokeBase(999); err == nil {
		t.Error("revoking unknown base should fail")
	}
}

func TestDeriveAllAndUnknownRule(t *testing.T) {
	eng, _, _, a1 := fixture(t, false)
	_, _ = eng.AddRule(Rule{Name: "r1", ValidFrom: 7, Base: a1.ID, Ops: Ops{Subject: SupervisorOf{}}})
	_, _ = eng.AddRule(Rule{Name: "r2", ValidFrom: 7, Base: a1.ID, Ops: Ops{Entries: ConstEntries{5}}})
	reports, err := eng.DeriveAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 || reports[0].Rule != "r1" || reports[1].Rule != "r2" {
		t.Errorf("reports = %v", reports)
	}
	if _, err := eng.Derive("ghost"); err == nil {
		t.Error("unknown rule should fail")
	}
}

func TestDeriveIsIdempotent(t *testing.T) {
	eng, store, _, a1 := fixture(t, false)
	_, _ = eng.AddRule(Rule{Name: "r1", ValidFrom: 7, Base: a1.ID, Ops: Ops{Subject: SupervisorOf{}}})
	before := store.Len()
	for i := 0; i < 3; i++ {
		if _, err := eng.Derive("r1"); err != nil {
			t.Fatal(err)
		}
	}
	if store.Len() != before {
		t.Errorf("re-derivation must not accumulate: %d -> %d", before, store.Len())
	}
}

func TestRuleString(t *testing.T) {
	r := Rule{Name: "r1", ValidFrom: 7, Base: 1, Ops: Ops{
		Subject: SupervisorOf{}, Location: FixedLocation{graph.CAIS}, Entries: ConstEntries{2},
	}}
	s := r.String()
	for _, frag := range []string{"⟨7:", "a1", "WHENEVER", "Supervisor_Of", "CAIS", "2"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rule string %q missing %q", s, frag)
		}
	}
}
