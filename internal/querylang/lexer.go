// Package querylang implements a small administrator query language for
// LTAM. The paper lists "the design of a query language for our proposed
// authorization model" as future work (§5, §7); this package supplies
// one, covering the queries the paper motivates: access checks, the
// inaccessible/accessible analysis, route authorization, presence,
// contact tracing, alerts and conflict detection, plus the administration
// statements needed to drive them (subjects, grants, rules, movements).
//
// Statement survey (keywords are case-insensitive; identifiers may be
// quoted to include spaces, e.g. "SCE.Dean's Office"):
//
//	SUBJECT alice [SUPERVISOR bob] [GROUPS g1,g2] [ROLES r1,r2]
//	GRANT alice AT CAIS ENTRY [5, 40] EXIT [20, 100] [TIMES 1]
//	REVOKE <auth-id>
//	RULE r1 FROM 7 BASE 1 [ENTRY <op>] [EXIT <op>] [SUBJECT <op>]
//	     [LOCATION <op>] [TIMES <expr>]
//	DROPRULE r1
//	REQUEST <t> alice CAIS        ENTER <t> alice CAIS
//	LEAVE <t> alice               TICK <t>
//	INACCESSIBLE FOR alice        ACCESSIBLE FOR alice
//	TRACE FOR alice
//	ROUTE alice VIA A, B, C [DURING [0, inf]]
//	WHO IN CAIS DURING [10, 20]
//	WHERE alice                   OCCUPANTS CAIS
//	CONTACTS alice [DURING [0, inf]]
//	AUTHS alice [AT CAIS]         ALERTS [SINCE n]
//	REACH alice CAIS              WHOCAN CAIS
//	PLAN alice VISIT A [1, 5], B [6, 10]
//	CONFLICTS                     RESOLVE COMBINE|KEEP-FIRST|KEEP-LAST
//	DOT                           SNAPSHOT
//
// INACCESSIBLE/ACCESSIBLE also accept DURING [tp, tq] to bound the visit
// start (the §6 access request duration).
package querylang

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokWord     tokenKind = iota // bare identifier or keyword
	tokInterval                  // [a, b] — kept whole for interval.Parse
	tokComma
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits one statement into tokens. Comments start with '#' or '--'
// and run to end of line.
func lex(src string) ([]token, error) {
	var out []token
	i := 0
	n := len(src)
	for i < n {
		c := src[i]
		switch {
		case c == '#' || (c == '-' && i+1 < n && src[i+1] == '-'):
			return out, nil // comment to end of statement
		case unicode.IsSpace(rune(c)):
			i++
		case c == ',':
			out = append(out, token{kind: tokComma, text: ",", pos: i})
			i++
		case c == '[':
			j := strings.IndexByte(src[i:], ']')
			if j < 0 {
				return nil, fmt.Errorf("querylang: unterminated interval at %d", i)
			}
			out = append(out, token{kind: tokInterval, text: src[i : i+j+1], pos: i})
			i += j + 1
		case c == '"':
			j := strings.IndexByte(src[i+1:], '"')
			if j < 0 {
				return nil, fmt.Errorf("querylang: unterminated string at %d", i)
			}
			out = append(out, token{kind: tokWord, text: src[i+1 : i+1+j], pos: i})
			i += j + 2
		default:
			j := i
			depth := 0
			for j < n {
				cj := src[j]
				if cj == '(' {
					depth++
				}
				if cj == ')' {
					depth--
				}
				if depth == 0 && (unicode.IsSpace(rune(cj)) || cj == ',' || cj == '"') {
					break
				}
				// '[' begins an interval only at word start; inside a
				// word like UNION([1, 2]) it belongs to the operator.
				if cj == '[' && depth == 0 {
					break
				}
				j++
			}
			out = append(out, token{kind: tokWord, text: src[i:j], pos: i})
			i = j
		}
	}
	return out, nil
}

// SplitStatements breaks a script into statements on newlines and
// semicolons, dropping blanks and comment-only lines.
func SplitStatements(script string) []string {
	var out []string
	for _, line := range strings.FieldsFunc(script, func(r rune) bool { return r == '\n' || r == ';' }) {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "--") {
			continue
		}
		out = append(out, line)
	}
	return out
}
