package querylang

import (
	"fmt"
	"strings"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/query"
)

// Eval executes one parsed statement against the system and renders a
// human-readable result.
func Eval(sys *core.System, s Stmt) (string, error) {
	switch s.Kind {
	case StmtSubject:
		sub := profile.Subject{ID: s.Subject, Supervisor: s.Supervisor, Groups: s.Groups, Roles: s.Roles}
		if err := sys.PutSubject(sub); err != nil {
			return "", err
		}
		return fmt.Sprintf("subject %s stored", s.Subject), nil

	case StmtGrant:
		a := authz.Authorization{
			Subject: s.Subject, Location: s.Location,
			Entry: s.Entry, Exit: s.Exit,
			MaxEntries: s.Times, CreatedAt: sys.Clock(),
		}
		stored, err := sys.AddAuthorization(a)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("a%d: %s", stored.ID, stored), nil

	case StmtRevoke:
		n, err := sys.RevokeAuthorization(s.AuthID)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("revoked %d authorization(s)", n), nil

	case StmtRule:
		rep, err := sys.AddRule(s.RuleSpec)
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "rule %s derived %d authorization(s)", s.RuleSpec.Name, len(rep.Derived))
		for _, a := range rep.Derived {
			fmt.Fprintf(&b, "\n  a%d: %s", a.ID, a)
		}
		for _, sk := range rep.Skips {
			fmt.Fprintf(&b, "\n  skipped: %s", sk.Reason)
		}
		return b.String(), nil

	case StmtDropRule:
		if err := sys.RemoveRule(s.RuleSpec.Name); err != nil {
			return "", err
		}
		return fmt.Sprintf("rule %s removed", s.RuleSpec.Name), nil

	case StmtRequest:
		d := sys.Request(s.Time, s.Subject, s.Location)
		return fmt.Sprintf("(%s, %s, %s): %s", s.Time, s.Subject, s.Location, d), nil

	case StmtEnter:
		d, err := sys.Enter(s.Time, s.Subject, s.Location)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s entered %s at %s: %s", s.Subject, s.Location, s.Time, d), nil

	case StmtLeave:
		if err := sys.Leave(s.Time, s.Subject); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s left at %s", s.Subject, s.Time), nil

	case StmtTick:
		raised, err := sys.Tick(s.Time)
		if err != nil {
			return "", err
		}
		if len(raised) == 0 {
			return fmt.Sprintf("tick %s: no alerts", s.Time), nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "tick %s raised %d alert(s)", s.Time, len(raised))
		for _, a := range raised {
			fmt.Fprintf(&b, "\n  %s", a)
		}
		return b.String(), nil

	case StmtInaccessible:
		if windowGiven(s.Window) {
			return fmt.Sprintf("inaccessible to %s during %s: %s",
				s.Subject, s.Window, joinIDs(sys.InaccessibleDuring(s.Subject, s.Window))), nil
		}
		return fmt.Sprintf("inaccessible to %s: %s", s.Subject, joinIDs(sys.Inaccessible(s.Subject))), nil

	case StmtAccessible:
		if windowGiven(s.Window) {
			inacc := map[string]bool{}
			for _, id := range sys.InaccessibleDuring(s.Subject, s.Window) {
				inacc[string(id)] = true
			}
			var acc []string
			for _, id := range sys.Flat().Nodes {
				if !inacc[string(id)] {
					acc = append(acc, string(id))
				}
			}
			return fmt.Sprintf("accessible to %s during %s: %s", s.Subject, s.Window, joinIDs(acc)), nil
		}
		return fmt.Sprintf("accessible to %s: %s", s.Subject, joinIDs(sys.Accessible(s.Subject))), nil

	case StmtTrace:
		res := sys.InaccessibleTrace(s.Subject)
		return query.FormatTrace(sys.Flat(), res) +
			fmt.Sprintf("inaccessible: %s", joinIDs(res.Inaccessible)), nil

	case StmtRoute:
		rc := sys.CheckRoute(s.Subject, s.Route, s.Window)
		if rc.Authorized {
			return fmt.Sprintf("route %s authorized for %s: grant %s, departure %s",
				s.Route, s.Subject, rc.GrantDuration(), rc.DepartureDuration()), nil
		}
		return fmt.Sprintf("route %s NOT authorized for %s: %s", s.Route, s.Subject, rc.Reason), nil

	case StmtWho:
		who := sys.WhoWasIn(s.Location, s.Window)
		return fmt.Sprintf("in %s during %s: %s", s.Location, s.Window, joinSubjects(who)), nil

	case StmtWhere:
		loc, inside := sys.WhereIs(s.Subject)
		if !inside {
			return fmt.Sprintf("%s is outside", s.Subject), nil
		}
		return fmt.Sprintf("%s is in %s", s.Subject, loc), nil

	case StmtOccupants:
		return fmt.Sprintf("occupants of %s: %s", s.Location, joinSubjects(sys.Occupants(s.Location))), nil

	case StmtContacts:
		contacts := sys.ContactsOf(s.Subject, s.Window)
		if len(contacts) == 0 {
			return fmt.Sprintf("no contacts of %s during %s", s.Subject, s.Window), nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "contacts of %s during %s:", s.Subject, s.Window)
		for _, c := range contacts {
			fmt.Fprintf(&b, "\n  %s in %s during %s", c.Other, c.Location, c.Overlap)
		}
		return b.String(), nil

	case StmtAuths:
		var auths []authz.Authorization
		if s.Location != "" {
			auths = sys.AuthorizationsFor(s.Subject, s.Location)
		} else {
			auths = sys.AuthStore().BySubject(s.Subject)
		}
		if len(auths) == 0 {
			return fmt.Sprintf("no authorizations for %s", s.Subject), nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "authorizations for %s:", s.Subject)
		for _, a := range auths {
			fmt.Fprintf(&b, "\n  a%d: %s", a.ID, a)
			if a.IsDerived() {
				fmt.Fprintf(&b, " [derived by %s from a%d]", a.DerivedBy, a.BaseID)
			}
		}
		return b.String(), nil

	case StmtAlerts:
		alerts := sys.Alerts().Since(s.Since)
		if len(alerts) == 0 {
			return "no alerts", nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d alert(s):", len(alerts))
		for _, a := range alerts {
			fmt.Fprintf(&b, "\n  #%d %s", a.Seq, a)
		}
		return b.String(), nil

	case StmtConflicts:
		conflicts := sys.Conflicts()
		if len(conflicts) == 0 {
			return "no conflicts", nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "%d conflict(s):", len(conflicts))
		for _, c := range conflicts {
			fmt.Fprintf(&b, "\n  %s between a%d %s and a%d %s", c.Kind, c.A.ID, c.A, c.B.ID, c.B)
		}
		return b.String(), nil

	case StmtReach:
		at, ok := sys.EarliestAccess(s.Subject, s.Location)
		if !ok {
			return fmt.Sprintf("%s cannot reach %s", s.Subject, s.Location), nil
		}
		return fmt.Sprintf("%s can first be in %s at t=%s", s.Subject, s.Location, at), nil

	case StmtWhoCan:
		return fmt.Sprintf("can access %s: %s", s.Location, joinSubjects(sys.WhoCanAccess(s.Location))), nil

	case StmtResolve:
		res, err := sys.ResolveConflicts(s.Strategy)
		if err != nil {
			return "", err
		}
		if len(res) == 0 {
			return "no conflicts to resolve", nil
		}
		var b strings.Builder
		fmt.Fprintf(&b, "resolved %d conflict(s) with %s:", len(res), s.Strategy)
		for _, r := range res {
			fmt.Fprintf(&b, "\n  kept a%d %s (removed %v)", r.Kept.ID, r.Kept, r.Removed)
		}
		return b.String(), nil

	case StmtSnapshot:
		if err := sys.Snapshot(); err != nil {
			return "", err
		}
		return "snapshot written", nil

	case StmtDot:
		return graph.ToDOT(sys.Graph()), nil

	case StmtPlan:
		ic := sys.CheckItinerary(s.Subject, s.Visits)
		if ic.Feasible {
			var b strings.Builder
			fmt.Fprintf(&b, "itinerary feasible for %s:", s.Subject)
			for i, v := range s.Visits {
				fmt.Fprintf(&b, "\n  %s [%s, %s] under a%d", v.Location, v.Arrive, v.Depart, ic.Grants[i])
			}
			return b.String(), nil
		}
		return fmt.Sprintf("itinerary NOT feasible for %s: visit %d: %s", s.Subject, ic.FailsAt, ic.Reason), nil
	}
	return "", fmt.Errorf("querylang: unhandled statement kind %d", s.Kind)
}

// Run parses and evaluates a whole script, returning one output block per
// statement. Execution stops at the first error, which is returned along
// with the outputs so far.
func Run(sys *core.System, script string) ([]string, error) {
	var out []string
	for _, stmt := range SplitStatements(script) {
		s, err := Parse(stmt)
		if err != nil {
			return out, err
		}
		res, err := Eval(sys, s)
		if err != nil {
			return out, fmt.Errorf("%q: %w", stmt, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// windowGiven distinguishes an explicit DURING window from the zero value
// left by statements without one (the zero Interval denotes the point
// [0, 0], which no DURING clause can produce without being meaningless).
func windowGiven(w interval.Interval) bool {
	return w != (interval.Interval{}) && !w.IsEmpty()
}

func joinIDs[T ~string](ids []T) string {
	if len(ids) == 0 {
		return "(none)"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, ", ")
}

func joinSubjects(ids []profile.SubjectID) string { return joinIDs(ids) }
