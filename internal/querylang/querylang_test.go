package querylang

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func sys(t *testing.T) *core.System {
	t.Helper()
	s, err := core.Open(core.Config{Graph: graph.NTUCampus(), AutoDerive: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLexIntervalAndQuotes(t *testing.T) {
	toks, err := lex(`GRANT alice AT "SCE.Dean's Office" ENTRY [5, 40]`)
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.text)
	}
	want := []string{"GRANT", "alice", "AT", "SCE.Dean's Office", "ENTRY", "[5, 40]"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Errorf("tokens = %v", texts)
	}
	if toks[5].kind != tokInterval {
		t.Error("interval token kind wrong")
	}
}

func TestLexOperatorWithParens(t *testing.T) {
	toks, err := lex(`RULE r2 ENTRY INTERSECTION([10, 30]) SUBJECT Supervisor_Of`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tk := range toks {
		if tk.text == "INTERSECTION([10, 30])" {
			found = true
		}
	}
	if !found {
		t.Errorf("operator token split: %v", toks)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := lex(`GRANT [5, 40`); err == nil {
		t.Error("unterminated interval should fail")
	}
	if _, err := lex(`GRANT "unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex(`TICK 5 # advance the clock`)
	if err != nil || len(toks) != 2 {
		t.Errorf("tokens = %v, %v", toks, err)
	}
	toks, _ = lex(`-- whole line comment`)
	if len(toks) != 0 {
		t.Errorf("comment-only = %v", toks)
	}
}

func TestSplitStatements(t *testing.T) {
	script := `
# header comment
SUBJECT alice; TICK 5
-- another comment

WHERE alice
`
	got := SplitStatements(script)
	if len(got) != 3 || got[0] != "SUBJECT alice" || got[1] != "TICK 5" || got[2] != "WHERE alice" {
		t.Errorf("statements = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"FROBNICATE x",
		"GRANT alice CAIS",            // missing AT
		"GRANT alice AT CAIS TIMES x", // bad number
		"REVOKE xyz",
		"INACCESSIBLE alice",     // missing FOR
		"WHO CAIS DURING [1, 2]", // missing IN
		"ROUTE alice A, B",       // missing VIA
		"TICK",                   // missing time
		"REQUEST ten alice CAIS", // bad time
		"ALERTS SINCE many",      // bad since
		"SUBJECT alice NONSENSE x",
		"GRANT alice AT CAIS WAT",
		"RULE r1 WAT x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestScriptEndToEndPaperScenario(t *testing.T) {
	// The §4 + §5 story written in the query language.
	s := sys(t)
	script := `
SUBJECT Alice SUPERVISOR Bob
SUBJECT Bob
GRANT Alice AT CAIS ENTRY [5, 20] EXIT [15, 50] TIMES 2
RULE r1 FROM 7 BASE 1 ENTRY WHENEVER EXIT WHENEVER SUBJECT Supervisor_Of LOCATION CAIS TIMES 2
AUTHS Bob AT CAIS
REQUEST 10 Bob CAIS
INACCESSIBLE FOR Bob
ACCESSIBLE FOR Bob
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("outputs = %d: %v", len(out), out)
	}
	if !strings.Contains(out[3], "derived 1 authorization") {
		t.Errorf("rule output = %q", out[3])
	}
	if !strings.Contains(out[4], "[derived by r1 from a1]") {
		t.Errorf("auths output = %q", out[4])
	}
	if !strings.Contains(out[5], "granted") {
		t.Errorf("request output = %q", out[5])
	}
	// Bob holds only the derived CAIS authorization; with no grant on any
	// entry location, even CAIS is unreachable (Def. 8).
	if !strings.Contains(out[6], "CAIS") {
		t.Errorf("inaccessible output = %q", out[6])
	}
	if !strings.Contains(out[7], "(none)") {
		t.Errorf("accessible output = %q", out[7])
	}
}

func TestScriptMovementAndMonitoring(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT Alice
GRANT Alice AT SCE.GO ENTRY [1, 5] EXIT [1, 10] TIMES 0
ENTER 5 Alice SCE.GO
WHERE Alice
OCCUPANTS SCE.GO
TICK 50
ALERTS
LEAVE 60 Alice
WHERE Alice
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[3], "Alice is in SCE.GO") {
		t.Errorf("where = %q", out[3])
	}
	if !strings.Contains(out[4], "Alice") {
		t.Errorf("occupants = %q", out[4])
	}
	if !strings.Contains(out[5], "overstay") {
		t.Errorf("tick should raise overstay: %q", out[5])
	}
	if !strings.Contains(out[6], "alert") {
		t.Errorf("alerts = %q", out[6])
	}
	if !strings.Contains(out[8], "outside") {
		t.Errorf("where after leave = %q", out[8])
	}
}

func TestScriptRouteWhoContactsConflicts(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT a
SUBJECT b
GRANT a AT SCE.GO ENTRY [1, 100] EXIT [1, 200] TIMES 0
GRANT a AT SCE.SectionA ENTRY [1, 100] EXIT [1, 200] TIMES 0
GRANT b AT SCE.GO ENTRY [1, 100] EXIT [1, 200] TIMES 0
GRANT b AT SCE.GO ENTRY [50, 150] EXIT [50, 250] TIMES 0
ROUTE a VIA SCE.GO, SCE.SectionA DURING [0, inf]
ROUTE b VIA SCE.GO, SCE.SectionA
ENTER 5 a SCE.GO
ENTER 6 b SCE.GO
LEAVE 9 a
WHO IN SCE.GO DURING [0, 100]
CONTACTS a DURING [0, inf]
CONFLICTS
TRACE FOR a
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[6], "authorized") || strings.Contains(out[6], "NOT") {
		t.Errorf("route a = %q", out[6])
	}
	if !strings.Contains(out[7], "NOT authorized") {
		t.Errorf("route b = %q", out[7])
	}
	if !strings.Contains(out[11], "a, b") {
		t.Errorf("who = %q", out[11])
	}
	if !strings.Contains(out[12], "b in SCE.GO during [6, 9]") {
		t.Errorf("contacts = %q", out[12])
	}
	if !strings.Contains(out[13], "overlap") {
		t.Errorf("conflicts = %q", out[13])
	}
	if !strings.Contains(out[14], "Initiation") {
		t.Errorf("trace = %q", out[14])
	}
}

func TestScriptRevokeAndDropRule(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT Alice SUPERVISOR Bob
SUBJECT Bob
GRANT Alice AT CAIS ENTRY [5, 20] EXIT [15, 50] TIMES 2
RULE r1 FROM 7 BASE 1 SUBJECT Supervisor_Of
DROPRULE r1
REVOKE 1
AUTHS Alice
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[4], "removed") {
		t.Errorf("droprule = %q", out[4])
	}
	if !strings.Contains(out[5], "revoked 1") {
		t.Errorf("revoke = %q", out[5])
	}
	if !strings.Contains(out[6], "no authorizations") {
		t.Errorf("auths = %q", out[6])
	}
}

func TestReachStatement(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT a
GRANT a AT SCE.GO ENTRY [7, 100] EXIT [9, 200] TIMES 0
GRANT a AT SCE.SectionA ENTRY [1, 100] EXIT [1, 200] TIMES 0
REACH a SCE.SectionA
REACH a CAIS
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	// SectionA is reachable only after departing SCE.GO, whose exit
	// window opens at 9.
	if !strings.Contains(out[3], "at t=9") {
		t.Errorf("reach = %q", out[3])
	}
	if !strings.Contains(out[4], "cannot reach") {
		t.Errorf("reach CAIS = %q", out[4])
	}
	if _, err := Parse("REACH a"); err == nil {
		t.Error("REACH needs subject and location")
	}
}

func TestWhoCanAndResolveStatements(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT a
SUBJECT b
GRANT a AT SCE.GO ENTRY [1, 100] EXIT [1, 200] TIMES 0
GRANT a AT SCE.GO ENTRY [90, 150] EXIT [90, 250] TIMES 0
WHOCAN SCE.GO
RESOLVE COMBINE
CONFLICTS
RESOLVE KEEP-FIRST
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[4], "can access SCE.GO: a") {
		t.Errorf("whocan = %q", out[4])
	}
	if !strings.Contains(out[5], "resolved 1 conflict(s) with combine") {
		t.Errorf("resolve = %q", out[5])
	}
	if !strings.Contains(out[6], "no conflicts") {
		t.Errorf("conflicts = %q", out[6])
	}
	if !strings.Contains(out[7], "no conflicts to resolve") {
		t.Errorf("idempotent resolve = %q", out[7])
	}
	if _, err := Parse("RESOLVE COIN-FLIP"); err == nil {
		t.Error("unknown strategy should fail to parse")
	}
	if _, err := Parse("WHOCAN"); err == nil {
		t.Error("WHOCAN needs a location")
	}
}

func TestDotAndWindowedStatements(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT a
GRANT a AT SCE.GO ENTRY [10, 30] EXIT [10, 60] TIMES 0
DOT
INACCESSIBLE FOR a DURING [40, 90]
ACCESSIBLE FOR a DURING [10, 20]
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[2], `graph "NTU"`) || !strings.Contains(out[2], "cluster_SCE") {
		t.Errorf("dot = %q", out[2][:60])
	}
	// The window [40, 90] starts after the entry duration [10, 30]
	// closes: even SCE.GO is inaccessible.
	if !strings.Contains(out[3], "SCE.GO") {
		t.Errorf("windowed inaccessible = %q", out[3])
	}
	if !strings.Contains(out[4], "accessible to a during [10, 20]: SCE.GO") {
		t.Errorf("windowed accessible = %q", out[4])
	}
	if _, err := Parse("TRACE FOR a DURING [1, 2]"); err == nil {
		t.Error("TRACE DURING should be rejected")
	}
}

func TestPlanStatement(t *testing.T) {
	s := sys(t)
	script := `
SUBJECT a
GRANT a AT SCE.GO ENTRY [1, 100] EXIT [1, 200] TIMES 0
GRANT a AT SCE.SectionA ENTRY [1, 100] EXIT [1, 200] TIMES 0
PLAN a VISIT SCE.GO [5, 10], SCE.SectionA [10, 20], SCE.GO [20, 30]
PLAN a VISIT SCE.GO [5, 10], CAIS [11, 20]
`
	out, err := Run(s, script)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[3], "itinerary feasible") || !strings.Contains(out[3], "under a1") {
		t.Errorf("plan = %q", out[3])
	}
	if !strings.Contains(out[4], "NOT feasible") || !strings.Contains(out[4], "no direct connection") {
		t.Errorf("bad plan = %q", out[4])
	}
	for _, bad := range []string{"PLAN a", "PLAN a VISIT", "PLAN a VISIT X", "PLAN a VISIT X null"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestRunStopsAtError(t *testing.T) {
	s := sys(t)
	out, err := Run(s, "SUBJECT a\nGRANT a AT Mars ENTRY [1, 2] EXIT [1, 5]\nWHERE a")
	if err == nil {
		t.Fatal("expected error")
	}
	if len(out) != 1 {
		t.Errorf("outputs before error = %v", out)
	}
	if !strings.Contains(err.Error(), "Mars") {
		t.Errorf("err = %v", err)
	}
}

func TestSnapshotStatementWithoutDurability(t *testing.T) {
	s := sys(t)
	if _, err := Run(s, "SNAPSHOT"); err == nil {
		t.Error("snapshot without durability should fail")
	}
}

func TestQuotedLocationStatement(t *testing.T) {
	s := sys(t)
	out, err := Run(s, `SUBJECT d
GRANT d AT "SCE.Dean's Office" ENTRY [1, 10] EXIT [1, 20] TIMES 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out[1], "SCE.Dean's Office") {
		t.Errorf("grant = %q", out[1])
	}
}
