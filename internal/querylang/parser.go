package querylang

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/rules"
)

// StmtKind enumerates the statement forms.
type StmtKind int

// The statement kinds.
const (
	StmtSubject StmtKind = iota
	StmtGrant
	StmtRevoke
	StmtRule
	StmtDropRule
	StmtRequest
	StmtEnter
	StmtLeave
	StmtTick
	StmtInaccessible
	StmtAccessible
	StmtTrace
	StmtRoute
	StmtWho
	StmtWhere
	StmtOccupants
	StmtContacts
	StmtAuths
	StmtAlerts
	StmtConflicts
	StmtSnapshot
	StmtReach
	StmtWhoCan
	StmtResolve
	StmtDot
	StmtPlan
)

// Stmt is one parsed statement.
type Stmt struct {
	Kind StmtKind

	// Subject administration.
	Subject    profile.SubjectID
	Supervisor profile.SubjectID
	Groups     []string
	Roles      []string

	// Grants.
	Location graph.ID
	Entry    interval.Interval
	Exit     interval.Interval
	Times    int64

	// Rules.
	RuleSpec rules.Spec

	// Enforcement / queries.
	Time     interval.Time
	AuthID   authz.ID
	Route    graph.Route
	Window   interval.Interval
	Since    uint64
	Strategy authz.Strategy
	Visits   []query.Visit
}

// parser walks the token list.
type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) done() bool { return p.i >= len(p.toks) }

func (p *parser) peek() (token, bool) {
	if p.done() {
		return token{}, false
	}
	return p.toks[p.i], true
}

func (p *parser) next() (token, error) {
	if p.done() {
		return token{}, fmt.Errorf("querylang: unexpected end of statement %q", p.src)
	}
	t := p.toks[p.i]
	p.i++
	return t, nil
}

func (p *parser) word() (string, error) {
	t, err := p.next()
	if err != nil {
		return "", err
	}
	if t.kind != tokWord {
		return "", fmt.Errorf("querylang: expected a word, got %q in %q", t.text, p.src)
	}
	return t.text, nil
}

func (p *parser) keyword(k string) bool {
	t, ok := p.peek()
	if ok && t.kind == tokWord && strings.EqualFold(t.text, k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k string) error {
	if !p.keyword(k) {
		t, _ := p.peek()
		return fmt.Errorf("querylang: expected %s, got %q in %q", k, t.text, p.src)
	}
	return nil
}

func (p *parser) intervalTok() (interval.Interval, error) {
	t, err := p.next()
	if err != nil {
		return interval.Empty, err
	}
	if t.kind != tokInterval {
		return interval.Empty, fmt.Errorf("querylang: expected an interval, got %q in %q", t.text, p.src)
	}
	return interval.Parse(t.text)
}

func (p *parser) timeTok() (interval.Time, error) {
	w, err := p.word()
	if err != nil {
		return 0, err
	}
	if strings.EqualFold(w, "inf") {
		return interval.Inf, nil
	}
	v, err := strconv.ParseInt(w, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("querylang: bad time %q in %q", w, p.src)
	}
	return interval.Time(v), nil
}

// list parses comma-separated words.
func (p *parser) list() ([]string, error) {
	var out []string
	for {
		w, err := p.word()
		if err != nil {
			return nil, err
		}
		out = append(out, w)
		if t, ok := p.peek(); !ok || t.kind != tokComma {
			return out, nil
		}
		p.i++ // consume comma
	}
}

// Parse parses one statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return Stmt{}, err
	}
	if len(toks) == 0 {
		return Stmt{}, fmt.Errorf("querylang: empty statement")
	}
	p := &parser{toks: toks, src: src}
	head, _ := p.word()
	var s Stmt
	switch strings.ToUpper(head) {
	case "SUBJECT":
		s.Kind = StmtSubject
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		for !p.done() {
			switch {
			case p.keyword("SUPERVISOR"):
				w, err := p.word()
				if err != nil {
					return s, err
				}
				s.Supervisor = profile.SubjectID(w)
			case p.keyword("GROUPS"):
				if s.Groups, err = p.list(); err != nil {
					return s, err
				}
			case p.keyword("ROLES"):
				if s.Roles, err = p.list(); err != nil {
					return s, err
				}
			default:
				t, _ := p.peek()
				return s, fmt.Errorf("querylang: unexpected %q in SUBJECT", t.text)
			}
		}
	case "GRANT":
		s.Kind = StmtGrant
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		if err := p.expect("AT"); err != nil {
			return s, err
		}
		loc, err := p.word()
		if err != nil {
			return s, err
		}
		s.Location = graph.ID(loc)
		s.Times = authz.Unlimited
		for !p.done() {
			switch {
			case p.keyword("ENTRY"):
				if s.Entry, err = p.intervalTok(); err != nil {
					return s, err
				}
			case p.keyword("EXIT"):
				if s.Exit, err = p.intervalTok(); err != nil {
					return s, err
				}
			case p.keyword("TIMES"):
				w, err := p.word()
				if err != nil {
					return s, err
				}
				if s.Times, err = strconv.ParseInt(w, 10, 64); err != nil {
					return s, fmt.Errorf("querylang: bad TIMES %q", w)
				}
			default:
				t, _ := p.peek()
				return s, fmt.Errorf("querylang: unexpected %q in GRANT", t.text)
			}
		}
	case "REVOKE":
		s.Kind = StmtRevoke
		w, err := p.word()
		if err != nil {
			return s, err
		}
		id, err := strconv.ParseUint(w, 10, 64)
		if err != nil {
			return s, fmt.Errorf("querylang: bad authorization id %q", w)
		}
		s.AuthID = authz.ID(id)
	case "RULE":
		s.Kind = StmtRule
		name, err := p.word()
		if err != nil {
			return s, err
		}
		s.RuleSpec.Name = name
		for !p.done() {
			switch {
			case p.keyword("FROM"):
				t, err := p.timeTok()
				if err != nil {
					return s, err
				}
				s.RuleSpec.ValidFrom = t
			case p.keyword("BASE"):
				w, err := p.word()
				if err != nil {
					return s, err
				}
				id, err := strconv.ParseUint(w, 10, 64)
				if err != nil {
					return s, fmt.Errorf("querylang: bad BASE %q", w)
				}
				s.RuleSpec.Base = authz.ID(id)
			case p.keyword("ENTRY"):
				if s.RuleSpec.Entry, err = p.word(); err != nil {
					return s, err
				}
			case p.keyword("EXIT"):
				if s.RuleSpec.Exit, err = p.word(); err != nil {
					return s, err
				}
			case p.keyword("SUBJECT"):
				if s.RuleSpec.Subject, err = p.word(); err != nil {
					return s, err
				}
			case p.keyword("LOCATION"):
				if s.RuleSpec.Location, err = p.word(); err != nil {
					return s, err
				}
			case p.keyword("TIMES"):
				if s.RuleSpec.Entries, err = p.word(); err != nil {
					return s, err
				}
			default:
				t, _ := p.peek()
				return s, fmt.Errorf("querylang: unexpected %q in RULE", t.text)
			}
		}
	case "DROPRULE":
		s.Kind = StmtDropRule
		name, err := p.word()
		if err != nil {
			return s, err
		}
		s.RuleSpec.Name = name
	case "REQUEST", "ENTER":
		if strings.EqualFold(head, "REQUEST") {
			s.Kind = StmtRequest
		} else {
			s.Kind = StmtEnter
		}
		if s.Time, err = p.timeTok(); err != nil {
			return s, err
		}
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		loc, err := p.word()
		if err != nil {
			return s, err
		}
		s.Location = graph.ID(loc)
	case "LEAVE":
		s.Kind = StmtLeave
		if s.Time, err = p.timeTok(); err != nil {
			return s, err
		}
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
	case "TICK":
		s.Kind = StmtTick
		if s.Time, err = p.timeTok(); err != nil {
			return s, err
		}
	case "INACCESSIBLE", "ACCESSIBLE", "TRACE":
		switch strings.ToUpper(head) {
		case "INACCESSIBLE":
			s.Kind = StmtInaccessible
		case "ACCESSIBLE":
			s.Kind = StmtAccessible
		default:
			s.Kind = StmtTrace
		}
		if err := p.expect("FOR"); err != nil {
			return s, err
		}
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		if p.keyword("DURING") {
			if s.Kind == StmtTrace {
				return s, fmt.Errorf("querylang: TRACE does not take DURING")
			}
			if s.Window, err = p.intervalTok(); err != nil {
				return s, err
			}
		}
	case "ROUTE":
		s.Kind = StmtRoute
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		if err := p.expect("VIA"); err != nil {
			return s, err
		}
		locs, err := p.list()
		if err != nil {
			return s, err
		}
		for _, l := range locs {
			s.Route = append(s.Route, graph.ID(l))
		}
		s.Window = interval.From(0)
		if p.keyword("DURING") {
			if s.Window, err = p.intervalTok(); err != nil {
				return s, err
			}
		}
	case "PLAN":
		// PLAN alice VISIT A [1, 5], B [6, 10]
		s.Kind = StmtPlan
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		if err := p.expect("VISIT"); err != nil {
			return s, err
		}
		for {
			loc, err := p.word()
			if err != nil {
				return s, err
			}
			iv, err := p.intervalTok()
			if err != nil {
				return s, err
			}
			if iv.IsEmpty() {
				return s, fmt.Errorf("querylang: visit window may not be null")
			}
			s.Visits = append(s.Visits, query.Visit{Location: graph.ID(loc), Arrive: iv.Start, Depart: iv.End})
			if t, ok := p.peek(); !ok || t.kind != tokComma {
				break
			}
			p.i++
		}
	case "WHO":
		s.Kind = StmtWho
		if err := p.expect("IN"); err != nil {
			return s, err
		}
		loc, err := p.word()
		if err != nil {
			return s, err
		}
		s.Location = graph.ID(loc)
		if err := p.expect("DURING"); err != nil {
			return s, err
		}
		if s.Window, err = p.intervalTok(); err != nil {
			return s, err
		}
	case "REACH":
		s.Kind = StmtReach
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		loc, err := p.word()
		if err != nil {
			return s, err
		}
		s.Location = graph.ID(loc)
	case "WHERE":
		s.Kind = StmtWhere
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
	case "OCCUPANTS":
		s.Kind = StmtOccupants
		loc, err := p.word()
		if err != nil {
			return s, err
		}
		s.Location = graph.ID(loc)
	case "CONTACTS":
		s.Kind = StmtContacts
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		s.Window = interval.From(0)
		if p.keyword("DURING") {
			if s.Window, err = p.intervalTok(); err != nil {
				return s, err
			}
		}
	case "AUTHS":
		s.Kind = StmtAuths
		id, err := p.word()
		if err != nil {
			return s, err
		}
		s.Subject = profile.SubjectID(id)
		if p.keyword("AT") {
			loc, err := p.word()
			if err != nil {
				return s, err
			}
			s.Location = graph.ID(loc)
		}
	case "ALERTS":
		s.Kind = StmtAlerts
		if p.keyword("SINCE") {
			w, err := p.word()
			if err != nil {
				return s, err
			}
			if s.Since, err = strconv.ParseUint(w, 10, 64); err != nil {
				return s, fmt.Errorf("querylang: bad SINCE %q", w)
			}
		}
	case "WHOCAN":
		s.Kind = StmtWhoCan
		loc, err := p.word()
		if err != nil {
			return s, err
		}
		s.Location = graph.ID(loc)
	case "RESOLVE":
		s.Kind = StmtResolve
		w, err := p.word()
		if err != nil {
			return s, err
		}
		switch strings.ToUpper(w) {
		case "COMBINE":
			s.Strategy = authz.Combine
		case "KEEP-FIRST", "KEEPFIRST":
			s.Strategy = authz.KeepFirst
		case "KEEP-LAST", "KEEPLAST":
			s.Strategy = authz.KeepLast
		default:
			return s, fmt.Errorf("querylang: unknown strategy %q (COMBINE, KEEP-FIRST, KEEP-LAST)", w)
		}
	case "CONFLICTS":
		s.Kind = StmtConflicts
	case "SNAPSHOT":
		s.Kind = StmtSnapshot
	case "DOT":
		s.Kind = StmtDot
	default:
		return s, fmt.Errorf("querylang: unknown statement %q", head)
	}
	if !p.done() {
		t, _ := p.peek()
		return s, fmt.Errorf("querylang: trailing %q in %q", t.text, src)
	}
	return s, nil
}
