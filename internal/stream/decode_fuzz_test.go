package stream

import (
	"testing"

	"repro/internal/storage"
)

// FuzzDecodeEvent: arbitrary record types and payload bytes through the
// feed decoder never panic — the bus tails a durable log, but a decoder
// that crashes the pump on one malformed record would take every
// subscriber down with it.
func FuzzDecodeEvent(f *testing.F) {
	f.Add(uint64(0), "move.enter", []byte(`{"T":2,"S":"alice","L":"r00_00"}`))
	f.Add(uint64(1), "move.leave", []byte(`{"T":3,"S":"alice","L":"r00_00"}`))
	f.Add(uint64(2), "authz.add", []byte(`{"ID":1,"Subject":"alice","Location":"r00_00"}`))
	f.Add(uint64(3), "authz.revoke", []byte(`{"ID":1}`))
	f.Add(uint64(4), "tick", []byte(`{"T":9}`))
	f.Add(uint64(5), "rule.add", []byte(`{"Name":"r"}`))
	f.Add(uint64(6), "profile.put", []byte(`{"ID":"alice"}`))
	f.Add(uint64(7), "move.enter", []byte(`not json`))
	f.Add(uint64(8), "no.such.type", []byte(`{}`))
	f.Add(uint64(9), "", []byte{})
	f.Fuzz(func(t *testing.T, seq uint64, typ string, data []byte) {
		ev, err := DecodeEvent(seq, storage.Record{Type: typ, Data: data})
		if err != nil {
			return
		}
		if ev.Seq != seq {
			t.Fatalf("decoded seq %d, want %d", ev.Seq, seq)
		}
		if ev.Kind == "" {
			t.Fatalf("decode succeeded with no kind: %+v", ev)
		}
	})
}
