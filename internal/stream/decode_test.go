package stream

import (
	"errors"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/rules"
	"repro/internal/storage"
)

// TestDecodeCoversEveryRecordType drives a real System through every
// mutation the WAL vocabulary knows, then decodes the resulting log: a
// record type core adds without a matching decoder — or a payload shape
// drift between the two packages — fails here instead of silently
// yielding empty feed events.
func TestDecodeCoversEveryRecordType(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir())

	if err := sys.PutSubject(profile.Subject{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.PutSubject(profile.Subject{ID: "b", Supervisor: "a"}); err != nil {
		t.Fatal(err)
	}
	a1, err := sys.AddAuthorization(authz.New(interval.New(1, 50), interval.New(1, 60), "a", rooms[0], authz.Unlimited))
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping windows on the same (subject, location): a conflict for
	// the resolve record below.
	if _, err := sys.AddAuthorization(authz.New(interval.New(2, 30), interval.New(2, 60), "a", rooms[0], authz.Unlimited)); err != nil {
		t.Fatal(err)
	}
	victim, err := sys.AddAuthorization(authz.New(interval.New(1, 50), interval.New(1, 60), "b", rooms[1], authz.Unlimited))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddRule(rules.Spec{Name: "r1", Base: a1.ID, ValidFrom: 5, Subject: "Supervisor_Of"}); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveRule("r1"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Enter(3, "a", rooms[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Leave(4, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Tick(5); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.ResolveConflicts(authz.Combine); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RevokeAuthorization(victim.ID); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveSubject("b"); err != nil {
		t.Fatal(err)
	}

	wantKind := map[string]EventKind{
		"profile.put":    KindProfilePut,
		"profile.remove": KindProfileRemove,
		"authz.add":      KindGrant,
		"authz.revoke":   KindRevoke,
		"authz.resolve":  KindResolve,
		"rule.add":       KindRuleAdd,
		"rule.remove":    KindRuleRemove,
		"move.enter":     KindEnter,
		"move.leave":     KindLeave,
		"tick":           KindTick,
	}

	tail, err := storage.OpenTailer(sys.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	defer tail.Close()
	seen := map[string]bool{}
	var seq uint64
	for {
		rec, err := tail.Next()
		if errors.Is(err, storage.ErrNoRecord) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ev, err := DecodeEvent(seq, rec)
		if err != nil {
			t.Fatalf("decode %s at seq %d: %v", rec.Type, seq, err)
		}
		want, ok := wantKind[rec.Type]
		if !ok {
			t.Fatalf("record type %q not in the decode coverage map: extend the test AND the decoder", rec.Type)
		}
		if ev.Kind != want {
			t.Fatalf("decode %s -> kind %q, want %q", rec.Type, ev.Kind, want)
		}
		if ev.Seq != seq || ev.Record == nil || ev.Record.Type != rec.Type {
			t.Fatalf("decode %s: seq/record not threaded through: %+v", rec.Type, ev)
		}
		seen[rec.Type] = true
		seq++
	}
	for typ := range wantKind {
		if !seen[typ] {
			t.Errorf("record type %q never exercised (fix the test setup)", typ)
		}
	}

	// Summary fields: spot-check the kinds subscribers filter on.
	tail2, err := storage.OpenTailer(sys.WALPath())
	if err != nil {
		t.Fatal(err)
	}
	defer tail2.Close()
	seq = 0
	for {
		rec, err := tail2.Next()
		if errors.Is(err, storage.ErrNoRecord) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ev, _ := DecodeEvent(seq, rec)
		seq++
		switch ev.Kind {
		case KindEnter:
			if ev.Subject != "a" || ev.Location != rooms[0] || ev.Time != 3 {
				t.Fatalf("enter summary fields wrong: %+v", ev)
			}
		case KindLeave:
			// The departed location rides in the record so location
			// filters see leaves too.
			if ev.Subject != "a" || ev.Location != rooms[0] || ev.Time != 4 {
				t.Fatalf("leave summary fields wrong: %+v", ev)
			}
		case KindRevoke:
			if ev.Auth != victim.ID {
				t.Fatalf("revoke summary auth = %d, want %d", ev.Auth, victim.ID)
			}
		case KindRuleAdd:
			if ev.Name != "r1" {
				t.Fatalf("rule-add summary name = %q", ev.Name)
			}
		}
	}

	// An unknown record type must be reported, not silently dropped.
	if _, err := DecodeEvent(0, storage.Record{Type: "future.thing", Data: []byte("{}")}); err == nil {
		t.Fatal("unknown record type decoded without error")
	}
}

// TestFilterMatch pins the filter semantics the feed advertises.
func TestFilterMatch(t *testing.T) {
	enter := Event{Kind: KindEnter, Subject: "a", Location: graph.ID("x")}
	tick := Event{Kind: KindTick}
	errEv := Event{Kind: KindError, Error: "boom"}

	if !(Filter{}).Match(enter) || !(Filter{}).Match(tick) {
		t.Fatal("zero filter must match everything")
	}
	if !(Filter{Subject: "a"}).Match(enter) || (Filter{Subject: "b"}).Match(enter) {
		t.Fatal("subject filter wrong")
	}
	if (Filter{Subject: "a"}).Match(tick) {
		t.Fatal("subject filter must drop subject-less events")
	}
	if !(Filter{Location: "x"}).Match(enter) || (Filter{Location: "y"}).Match(enter) {
		t.Fatal("location filter wrong")
	}
	if !(Filter{Kinds: []EventKind{KindEnter}}).Match(enter) || (Filter{Kinds: []EventKind{KindLeave}}).Match(enter) {
		t.Fatal("kind filter wrong")
	}
	// The failure channel always passes.
	for _, f := range []Filter{{}, {Subject: "zzz"}, {Kinds: []EventKind{KindTick}}} {
		if !f.Match(errEv) {
			t.Fatalf("filter %+v dropped the KindError frame", f)
		}
	}
}
