// Streaming ingest: one long-lived connection replaces thousands of
// HTTP round-trips. The client writes NDJSON ObserveFrame lines; the
// server chunks them into ObserveBatch calls — one write-lock
// acquisition and one WAL group (one fsync) per chunk — under a
// MaxChunk/MaxDelay policy mirroring the group committer's knobs, and
// answers with cumulative Ack lines carrying the durable record
// sequence.
//
// Framing is crash-oriented by construction: a line is applied if and
// only if it arrived complete. A connection cut mid-line drops exactly
// the torn suffix (a strict prefix of a JSON object is never valid
// JSON, so it cannot be mistaken for a frame); everything before it is
// flushed, acked and — because ObserveBatch's barrier acks after the
// shared fsync — durable. The torn-stream test asserts this at every
// byte offset.
package stream

import (
	"bufio"
	"encoding/json"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/storage"
)

// Ingest defaults.
const (
	DefaultMaxChunk = 1024
	DefaultQueueLen = 4096
)

// IngestTarget is what the ingestor drives: core.System satisfies it.
type IngestTarget interface {
	// ObserveBatch applies one chunk (one critical section, one WAL
	// group); the returned error is the batch durability/rejection error.
	ObserveBatch(readings []core.Reading) ([]core.ObserveOutcome, error)
	// ReplicationInfo supplies the durable record sequence for acks.
	ReplicationInfo() core.ReplicationInfo
}

// IngestConfig tunes the chunking policy. The zero value selects the
// defaults.
type IngestConfig struct {
	// MaxChunk caps the readings one ObserveBatch call (one fsync) may
	// cover (<= 0 selects DefaultMaxChunk).
	MaxChunk int
	// MaxDelay is how long a non-full chunk lingers for more frames once
	// at least one is pending. Zero (the default) flushes as soon as the
	// decode queue momentarily drains — batching then comes from frames
	// arriving during the previous chunk's fsync, the same natural
	// batching stance as the group committer's commit_delay=0.
	MaxDelay time.Duration
	// QueueLen is the decoded-frame buffer between the connection reader
	// and the chunker (<= 0 selects DefaultQueueLen). A full queue
	// applies backpressure to the connection.
	QueueLen int
}

// IngestStats is a point-in-time snapshot of the ingest counters.
type IngestStats struct {
	// Conns is the number of live ingest connections; TotalConns counts
	// every connection ever accepted.
	Conns      int64  `json:"conns"`
	TotalConns uint64 `json:"total_conns"`
	// Frames counts observation frames applied; Chunks the ObserveBatch
	// calls they were folded into — Frames/Chunks is the round-trip
	// amortization factor.
	Frames uint64 `json:"frames"`
	Chunks uint64 `json:"chunks"`
	// Granted/Denied/Moved/Errors aggregate the per-reading outcomes.
	Granted uint64 `json:"granted"`
	Denied  uint64 `json:"denied"`
	Moved   uint64 `json:"moved"`
	Errors  uint64 `json:"errors,omitempty"`
}

// IngestCounters aggregates ingest activity across connections (the
// server holds one for /v1/stats). All methods are safe for concurrent
// use; a nil receiver is a no-op sink.
type IngestCounters struct {
	conns                        atomic.Int64
	totalConns, frames, chunks   atomic.Uint64
	granted, denied, moved, errs atomic.Uint64
}

// Snapshot returns the current counter values.
func (c *IngestCounters) Snapshot() IngestStats {
	if c == nil {
		return IngestStats{}
	}
	return IngestStats{
		Conns:      c.conns.Load(),
		TotalConns: c.totalConns.Load(),
		Frames:     c.frames.Load(),
		Chunks:     c.chunks.Load(),
		Granted:    c.granted.Load(),
		Denied:     c.denied.Load(),
		Moved:      c.moved.Load(),
		Errors:     c.errs.Load(),
	}
}

// Ingestor runs ingest connections against one target.
type Ingestor struct {
	Target IngestTarget
	Config IngestConfig
	// Counters, when set, aggregates activity across this ingestor's
	// connections.
	Counters *IngestCounters
}

// Run services one ingest connection: decode frames from r, chunk,
// apply, ack to w. It returns when the stream ends — cleanly (an End
// frame), torn (EOF or a partial line: the pending chunk is still
// flushed and acked, so the ack stream always states exactly what
// survived), or on a terminal target error (reported to the client in a
// final Ack and returned). Per-reading application errors are counted
// in the acks and do not end the stream.
func (ing *Ingestor) Run(r io.Reader, w io.Writer) error {
	cfg := ing.Config
	if cfg.MaxChunk <= 0 {
		cfg.MaxChunk = DefaultMaxChunk
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if ing.Counters != nil {
		ing.Counters.conns.Add(1)
		ing.Counters.totalConns.Add(1)
		defer ing.Counters.conns.Add(-1)
	}

	// The reader goroutine owns the connection's read side: it decodes
	// lines into the frame queue and stops at the first torn or End
	// frame. Decoupling decode from apply is what lets frames pile up
	// while a chunk's fsync is in flight — the natural batching.
	frames := make(chan core.Reading, cfg.QueueLen)
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer close(frames)
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 0, 64<<10), int(storage.MaxFrameSize))
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var f ObserveFrame
			if err := json.Unmarshal(line, &f); err != nil {
				return // torn or garbage line: stop reading, keep what we have
			}
			if f.End {
				return
			}
			frames <- core.Reading{Time: f.Time, Subject: f.Subject, At: geometry.Point{X: f.X, Y: f.Y}}
		}
	}()

	bw := bufio.NewWriterSize(w, 32<<10)
	var cum Ack
	chunk := make([]core.Reading, 0, cfg.MaxChunk)
	writeAck := func() error {
		line, err := json.Marshal(cum)
		if err != nil {
			return err
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return err
		}
		return bw.Flush()
	}
	fail := func(err error) error {
		// Terminal: tell the client (best effort) and stop without acking
		// anything further; the deferred join below drains the reader.
		cum.Final, cum.Error = true, err.Error()
		_ = writeAck()
		return err
	}
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		outcomes, err := ing.Target.ObserveBatch(chunk)
		if err != nil {
			return fail(err)
		}
		for _, o := range outcomes {
			switch {
			case o.Err != nil:
				cum.Errors++
				cum.LastError = o.Err.Error()
			case o.Entered && o.Decision.Granted:
				cum.Moved++
				cum.Granted++
			case o.Entered:
				cum.Moved++
				cum.Denied++
			case o.Moved:
				// An exit: a movement, but not an entry decision — it
				// counts in Moved only.
				cum.Moved++
			}
		}
		cum.Acked += uint64(len(chunk))
		cum.Seq = ing.Target.ReplicationInfo().TotalSeq
		if ing.Counters != nil {
			ing.Counters.frames.Add(uint64(len(chunk)))
			ing.Counters.chunks.Add(1)
		}
		chunk = chunk[:0]
		return writeAck()
	}

	defer ing.tally(&cum)
	// Never leave the reader goroutine behind: every exit path unblocks
	// any pending channel send and waits for the reader to let go of the
	// connection, so an HTTP handler returning can never race a leftover
	// body read against the server's connection reuse.
	defer func() {
		go func() {
			for range frames {
			}
		}()
		<-readerDone
	}()
	for {
		rd, ok := <-frames
		if !ok {
			break
		}
		chunk = append(chunk, rd)
		closed := false
		var timer *time.Timer
	collect:
		for len(chunk) < cfg.MaxChunk {
			select {
			case rd, ok := <-frames:
				if !ok {
					closed = true
					break collect
				}
				chunk = append(chunk, rd)
			default:
				if cfg.MaxDelay <= 0 {
					break collect
				}
				if timer == nil {
					timer = time.NewTimer(cfg.MaxDelay)
				}
				select {
				case rd, ok := <-frames:
					if !ok {
						closed = true
						break collect
					}
					chunk = append(chunk, rd)
				case <-timer.C:
					break collect
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}
		if err := flush(); err != nil {
			return err
		}
		if closed {
			break
		}
	}
	if err := flush(); err != nil {
		return err
	}
	// The final ack always states the durable frontier, even for a
	// connection that shipped no frames — "your prefix is durable up to
	// Seq" stays true and gives idle clients a resume coordinate.
	cum.Final, cum.Seq = true, ing.Target.ReplicationInfo().TotalSeq
	_ = writeAck() // the peer of a torn stream is usually gone; best effort
	return nil
}

// tally folds a finished connection's cumulative ack into the shared
// counters.
func (ing *Ingestor) tally(cum *Ack) {
	if ing.Counters == nil {
		return
	}
	ing.Counters.granted.Add(cum.Granted)
	ing.Counters.denied.Add(cum.Denied)
	ing.Counters.moved.Add(cum.Moved)
	ing.Counters.errs.Add(cum.Errors)
}
