// Streaming ingest: one long-lived connection replaces thousands of
// HTTP round-trips, and ONE shared chunker replaces per-connection
// chunkers — N concurrent connections feed a single gather loop that
// folds their queued readings into combined ObserveBatch calls, so the
// write-lock acquisition and the WAL group (one fsync) amortize across
// connections the same way the group committer amortizes fsyncs across
// writers.
//
// Per-connection anatomy:
//
//	FrameReader ──reader goroutine──▶ frames chan ──┐
//	                                                ├─▶ shared chunker ─▶ ObserveBatch
//	AckWriter  ◀──writer goroutine◀── cumulative Ack┘
//
// The chunker gathers round-robin — each gather round starts at the
// next connection, so a firehose connection cannot starve a trickle —
// and records which span of the combined batch belongs to which
// connection. After the batch's commit barrier it folds each span's
// outcomes into that connection's cumulative Ack (carrying the durable
// TotalSeq) and wakes its writer. Acks coalesce: a writer that falls
// behind delivers only the latest cumulative ack, which by construction
// covers every ack it skipped.
//
// Framing is crash-oriented by construction: a frame is applied if and
// only if it arrived complete (see codec.go). A connection cut mid-frame
// drops exactly the torn suffix; everything before it is flushed, acked
// and — because ObserveBatch's barrier acks after the shared fsync —
// durable. The torn-stream tests assert this at every byte offset, in
// both codecs, including two connections sharing one chunker.
package stream

import (
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/obs"
)

// ErrDraining is the terminal ack error of connections ended by a
// graceful drain: everything gathered before the drain is applied,
// acked and durable; the client should reconnect (and, with a session,
// resume from Ack.Resume) once the server is back.
var ErrDraining = errors.New("stream: server draining")

// Ingest defaults.
const (
	DefaultMaxChunk = 1024
	DefaultQueueLen = 4096
)

// IngestTarget is what the ingestor drives: core.System satisfies it.
type IngestTarget interface {
	// ObserveBatch applies one chunk (one critical section, one WAL
	// group); the returned error is the batch durability/rejection error.
	ObserveBatch(readings []core.Reading) ([]core.ObserveOutcome, error)
	// ReplicationInfo supplies the durable record sequence for acks.
	ReplicationInfo() core.ReplicationInfo
}

// IngestConfig tunes the chunking policy. The zero value selects the
// defaults.
type IngestConfig struct {
	// MaxChunk caps the readings one ObserveBatch call (one fsync) may
	// cover (<= 0 selects DefaultMaxChunk).
	MaxChunk int
	// MaxDelay is how long a non-full chunk lingers for more frames once
	// at least one is pending. Zero (the default) flushes as soon as the
	// queues momentarily drain — batching then comes from frames arriving
	// during the previous chunk's fsync, the same natural batching stance
	// as the group committer's commit_delay=0.
	MaxDelay time.Duration
	// QueueLen is the decoded-frame buffer between each connection reader
	// and the shared chunker (<= 0 selects DefaultQueueLen). A full queue
	// applies backpressure to that connection.
	QueueLen int
}

func (c IngestConfig) normalized() IngestConfig {
	if c.MaxChunk <= 0 {
		c.MaxChunk = DefaultMaxChunk
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultQueueLen
	}
	return c
}

// IngestStats is a point-in-time snapshot of the ingest counters.
type IngestStats struct {
	// Conns is the number of live ingest connections; TotalConns counts
	// every connection ever accepted.
	Conns      int64  `json:"conns"`
	TotalConns uint64 `json:"total_conns"`
	// Frames counts observation frames applied; Chunks the ObserveBatch
	// calls they were folded into — Frames/Chunks is the round-trip
	// amortization factor, and with concurrent connections one chunk may
	// span several of them.
	Frames uint64 `json:"frames"`
	Chunks uint64 `json:"chunks"`
	// Granted/Denied/Moved/Errors aggregate the per-reading outcomes.
	Granted uint64 `json:"granted"`
	Denied  uint64 `json:"denied"`
	Moved   uint64 `json:"moved"`
	Errors  uint64 `json:"errors,omitempty"`
	// Sessions is the live resume-session count and SessionEvictions the
	// sessions reclaimed so far (idle-TTL sweeps plus overflow). Filled by
	// the server from its SessionRegistry, not by IngestCounters.
	Sessions         int64  `json:"sessions,omitempty"`
	SessionEvictions uint64 `json:"session_evictions,omitempty"`
}

// IngestCounters aggregates ingest activity across connections (the
// server holds one for /v1/stats). All methods are safe for concurrent
// use; a nil receiver is a no-op sink.
type IngestCounters struct {
	conns                        atomic.Int64
	totalConns, frames, chunks   atomic.Uint64
	granted, denied, moved, errs atomic.Uint64
}

// Snapshot returns the current counter values.
func (c *IngestCounters) Snapshot() IngestStats {
	if c == nil {
		return IngestStats{}
	}
	return IngestStats{
		Conns:      c.conns.Load(),
		TotalConns: c.totalConns.Load(),
		Frames:     c.frames.Load(),
		Chunks:     c.chunks.Load(),
		Granted:    c.granted.Load(),
		Denied:     c.denied.Load(),
		Moved:      c.moved.Load(),
		Errors:     c.errs.Load(),
	}
}

// Ingestor runs ingest connections against one target. The exported
// fields configure it; the rest is the shared chunker's state, built
// lazily when the first connection registers — a struct literal is a
// ready-to-use Ingestor. The server holds ONE ingestor for all of its
// connections; each Run/RunFramed call registers one connection with
// the shared chunker.
type Ingestor struct {
	Target IngestTarget
	Config IngestConfig
	// Counters, when set, aggregates activity across this ingestor's
	// connections.
	Counters *IngestCounters

	mu      sync.Mutex
	conns   []*ingestConn
	rr      int // round-robin gather start, rotated every round
	running bool
	wake    chan struct{} // 1-buffered: frames queued or a reader finished
	// drainDone is closed when the chunker retires while a Drain waits.
	drainDone chan struct{}
	draining  atomic.Bool
}

// connFrame is one decoded reading plus its session frame sequence
// (zero without a session).
type connFrame struct {
	rd  core.Reading
	seq uint64
}

// ingestConn is one registered connection's chunker-facing state.
type ingestConn struct {
	// frames carries decoded readings from the connection's reader
	// goroutine to the shared chunker; the reader closes it at end of
	// input (End frame, clean EOF, or torn tail).
	frames chan connFrame
	// sess is the resume session, nil for sessionless connections.
	sess *IngestSession

	mu   sync.Mutex
	cum  Ack   // cumulative ack, folded by the chunker
	err  error // terminal error (batch failure), set before done closes
	dead bool  // ack delivery failed: discard instead of applying

	ackCh chan struct{} // 1-buffered: cum advanced, deliver it
	done  chan struct{} // closed by the chunker after the final fold

	// Chunker-local (never touched by other goroutines):
	srcClosed bool // frames observed closed and drained
	finalized bool
}

func (c *ingestConn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// signal wakes the chunker (coalescing: a pending token is enough).
func (ing *Ingestor) signal() {
	select {
	case ing.wake <- struct{}{}:
	default:
	}
}

// register adds a connection, booting the shared chunker if idle.
func (ing *Ingestor) register(c *ingestConn) {
	ing.mu.Lock()
	if ing.wake == nil {
		ing.wake = make(chan struct{}, 1)
	}
	ing.conns = append(ing.conns, c)
	if !ing.running {
		ing.running = true
		go ing.chunker(ing.Config.normalized())
	}
	ing.mu.Unlock()
	ing.signal()
}

// Run services one NDJSON ingest connection: decode frames from r,
// hand them to the shared chunker, ack to w. See RunFramed for the
// lifecycle contract.
func (ing *Ingestor) Run(r io.Reader, w io.Writer) error {
	return ing.RunFramed(NewNDJSONFrameReader(r), NewNDJSONAckWriter(w))
}

// RunFramed services one ingest connection over an arbitrary codec. It
// returns when the stream ends — cleanly (an End frame), torn (EOF or a
// partial frame: the pending readings are still applied and acked, so
// the ack stream always states exactly what survived), or on a terminal
// target error (reported to the client in a final Ack and returned).
// Per-reading application errors are counted in the acks and do not end
// the stream.
func (ing *Ingestor) RunFramed(fr FrameReader, aw AckWriter) error {
	return ing.RunFramedSession(fr, aw, nil)
}

// RunFramedSession is RunFramed with an optional resume session. A
// non-nil sess attaches the connection to the session (stealing it from
// a dead predecessor) and writes the hello ack — Resume = the session's
// durable frame high-water — BEFORE reading any frame, so a resuming
// client learns what to re-send first. Frames then carry their session
// sequence and anything the session already gathered is deduplicated.
func (ing *Ingestor) RunFramedSession(fr FrameReader, aw AckWriter, sess *IngestSession) error {
	if ing.draining.Load() {
		a := Ack{Final: true, Error: ErrDraining.Error()}
		if sess != nil {
			a.Resume = sess.Applied()
		}
		_ = aw.WriteAck(&a)
		return ErrDraining
	}
	cfg := ing.Config.normalized()
	if ing.Counters != nil {
		ing.Counters.conns.Add(1)
		ing.Counters.totalConns.Add(1)
		defer ing.Counters.conns.Add(-1)
	}

	c := &ingestConn{
		frames: make(chan connFrame, cfg.QueueLen),
		sess:   sess,
		ackCh:  make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	if sess != nil {
		sess.attach(c)
		defer sess.detach(c)
		hello := Ack{Resume: sess.Applied(), Seq: ing.Target.ReplicationInfo().TotalSeq}
		if err := aw.WriteAck(&hello); err != nil {
			return err
		}
	}
	ing.register(c)

	// The reader goroutine owns the connection's read side: it decodes
	// frames into the connection's queue and stops at the first torn or
	// End frame. Decoupling decode from apply is what lets frames pile
	// up while a chunk's fsync is in flight — the natural batching.
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		defer func() {
			close(c.frames)
			ing.signal()
		}()
		var f ObserveFrame
		for {
			if err := fr.ReadFrame(&f); err != nil {
				return // clean or torn end: the complete prefix stands
			}
			if f.End {
				return
			}
			c.frames <- connFrame{
				rd: core.Reading{
					Time: f.Time, Subject: f.Subject,
					At:     geometry.Point{X: f.X, Y: f.Y},
					Stamps: obs.FrameStamps{Decode: obs.Now()},
				},
				seq: f.Seq,
			}
			ing.signal()
		}
	}()
	// Never leave the reader goroutine behind: every exit path unblocks
	// any pending channel send and waits for the reader to let go of the
	// connection, so an HTTP handler returning can never race a leftover
	// body read against the server's connection reuse. (The chunker may
	// drain concurrently; a closed-and-drained channel satisfies both.)
	defer func() {
		go func() {
			for range c.frames {
			}
		}()
		<-readerDone
	}()

	// The writer loop: deliver each advance of the cumulative ack. The
	// chunker's final fold closes done; the terminal ack is written
	// exactly once, there (best effort — the peer of a torn stream is
	// usually gone).
	var werr error
	for {
		select {
		case <-c.ackCh:
			c.mu.Lock()
			a := c.cum
			c.mu.Unlock()
			if a.Final || werr != nil {
				continue // the done path owns the terminal ack
			}
			if err := aw.WriteAck(&a); err != nil {
				// The client cannot hear us: stop acking and have the
				// chunker discard (not apply) everything still queued.
				werr = err
				c.mu.Lock()
				c.dead = true
				c.mu.Unlock()
			}
		case <-c.done:
			c.mu.Lock()
			a, terr := c.cum, c.err
			c.mu.Unlock()
			if werr == nil {
				_ = aw.WriteAck(&a)
			}
			if terr != nil {
				return terr
			}
			return werr
		}
	}
}

// chunker is the shared gather/apply loop: one per Ingestor, running
// while any connection is registered.
func (ing *Ingestor) chunker(cfg IngestConfig) {
	type span struct {
		c *ingestConn
		n int
		// last is the highest session frame sequence gathered into this
		// span; skip the highest deduplicated (already-gathered) sequence
		// observed while building it. Both zero for sessionless frames.
		last, skip uint64
	}
	batch := make([]core.Reading, 0, cfg.MaxChunk)
	var spans []span

	// gather pulls queued readings into batch, round-robin across the
	// registered connections, recording which span belongs to whom and
	// which connections finished their input. Returns false when no
	// connection remains (the chunker retires). Called with ing.mu NOT
	// held.
	gather := func() bool {
		ing.mu.Lock()
		defer ing.mu.Unlock()
		n := len(ing.conns)
		if n == 0 {
			ing.retireLocked()
			return false
		}
		ing.rr++
		start := ing.rr % n
		for i := 0; i < n && len(batch) < cfg.MaxChunk; i++ {
			c := ing.conns[(start+i)%n]
			if c.srcClosed {
				continue
			}
			cnt, discard := 0, c.isDead()
			var last, skip uint64
		drain:
			for len(batch) < cfg.MaxChunk {
				select {
				case fr, ok := <-c.frames:
					if !ok {
						c.srcClosed = true
						break drain
					}
					if discard {
						continue
					}
					if c.sess != nil && fr.seq != 0 {
						if fr.seq <= c.sess.hw.Load() {
							// A resume overlap: an earlier connection's
							// batch already gathered (and, the chunker
							// being serial, already applied) this frame.
							// Record it so the ack still covers it.
							if fr.seq > skip {
								skip = fr.seq
							}
							continue
						}
						c.sess.hw.Store(fr.seq)
						last = fr.seq
					}
					batch = append(batch, fr.rd)
					cnt++
				default:
					break drain
				}
			}
			if cnt > 0 || skip > 0 {
				if len(spans) > 0 && spans[len(spans)-1].c == c {
					sp := &spans[len(spans)-1]
					sp.n += cnt
					if last > sp.last {
						sp.last = last
					}
					if skip > sp.skip {
						sp.skip = skip
					}
				} else {
					spans = append(spans, span{c, cnt, last, skip})
				}
			}
		}
		return true
	}

	for {
		// Consume a pending wake token before gathering: anything that
		// arrives after this point leaves a fresh token, so the blocking
		// wait below can never miss work.
		select {
		case <-ing.wake:
		default:
		}
		batch, spans = batch[:0], spans[:0]
		if !gather() {
			return
		}
		if cfg.MaxDelay > 0 && len(batch) > 0 && len(batch) < cfg.MaxChunk {
			// Linger for more frames, re-gathering on every wake until
			// the chunk fills or the delay elapses.
			timer := time.NewTimer(cfg.MaxDelay)
		linger:
			for len(batch) < cfg.MaxChunk {
				select {
				case <-ing.wake:
					if !gather() {
						timer.Stop()
						return
					}
				case <-timer.C:
					break linger
				}
			}
			timer.Stop()
		}

		worked := len(batch) > 0 || len(spans) > 0
		if len(batch) > 0 || len(spans) > 0 {
			var outcomes []core.ObserveOutcome
			var err error
			if len(batch) > 0 {
				// One gather stamp covers the chunk: its readings leave
				// their queues for the write lock together.
				now := obs.Now()
				for i := range batch {
					batch[i].Stamps.Gather = now
				}
				outcomes, err = ing.Target.ObserveBatch(batch)
			}
			// A batch may be empty while spans exist: a resume overlap
			// deduplicated every gathered frame. The fold still runs so
			// the ack's Resume advances over the deduplicated suffix —
			// safe because the chunker is serial, so whatever batch first
			// gathered those frames has already committed and folded.
			if err != nil {
				// Terminal: the batch was rejected (or applied in memory
				// but not durably acknowledged). Every connection with a
				// span in it gets the error as its final ack, and every
				// session involved rolls its gather high-water back to the
				// durable mark — the frames gathered into this failed batch
				// were never durably applied, so when the client resumes and
				// re-sends them they must be re-gathered, not deduplicated
				// as already applied. (hw is chunker-local, and this IS the
				// chunker goroutine, so the write is race-free.)
				for _, sp := range spans {
					if sp.c.sess != nil {
						sp.c.sess.hw.Store(sp.c.sess.Applied())
					}
					ing.finalize(sp.c, err)
				}
			} else {
				seq := ing.Target.ReplicationInfo().TotalSeq
				off := 0
				for _, sp := range spans {
					resume := sp.last
					if sp.skip > resume {
						resume = sp.skip
					}
					if resume > 0 && sp.c.sess != nil {
						sp.c.sess.advanceApplied(resume)
					}
					sp.c.mu.Lock()
					foldOutcomes(&sp.c.cum, outcomes[off:off+sp.n])
					sp.c.cum.Acked += uint64(sp.n)
					sp.c.cum.Seq = seq
					if resume > sp.c.cum.Resume {
						sp.c.cum.Resume = resume
					}
					sp.c.mu.Unlock()
					select {
					case sp.c.ackCh <- struct{}{}:
					default:
					}
					off += sp.n
				}
				if ing.Counters != nil && len(batch) > 0 {
					ing.Counters.frames.Add(uint64(len(batch)))
					ing.Counters.chunks.Add(1)
				}
			}
		}

		// Finalize every connection whose input ended and whose last
		// frames (if any) were in the batch just folded.
		ing.mu.Lock()
		var finished []*ingestConn
		live := ing.conns[:0]
		for _, c := range ing.conns {
			if c.srcClosed && !c.finalized {
				c.finalized = true
				finished = append(finished, c)
			} else if !c.finalized {
				live = append(live, c)
			}
		}
		for i := len(live); i < len(ing.conns); i++ {
			ing.conns[i] = nil
		}
		ing.conns = live
		ing.mu.Unlock()
		for _, c := range finished {
			ing.finalize(c, nil)
			worked = true
		}

		if ing.draining.Load() && len(batch) == 0 {
			// Graceful drain: everything queued at drain time has been
			// gathered, applied and folded (the empty gather proves it).
			// Seal every remaining connection with ErrDraining — its
			// terminal ack carries the durable Seq and the session Resume,
			// exactly what a client needs to reconnect later — and retire.
			ing.mu.Lock()
			remaining := ing.conns
			ing.conns = nil
			ing.retireLocked()
			ing.mu.Unlock()
			for _, c := range remaining {
				if !c.finalized {
					c.finalized = true
					ing.finalize(c, ErrDraining)
				}
				// No chunker gathers these queues anymore: drain-and-discard
				// each until its reader closes it, so a reader mid-send on a
				// full queue can never stay blocked behind a retired chunker.
				go func(frames chan connFrame) {
					for range frames {
					}
				}(c.frames)
			}
			return
		}

		if !worked {
			// Nothing queued, nothing finished: sleep until a reader
			// signals. The token protocol above guarantees any frame
			// enqueued since the last gather left a token here.
			<-ing.wake
		}
	}
}

// retireLocked marks the chunker stopped and releases any Drain waiter.
// Caller holds ing.mu.
func (ing *Ingestor) retireLocked() {
	ing.running = false
	if ing.drainDone != nil {
		close(ing.drainDone)
		ing.drainDone = nil
	}
}

// Drain gracefully stops streaming ingest: new connections are refused
// with a terminal ErrDraining ack, everything already queued is
// gathered, applied and folded, every live connection receives a final
// ack (ErrDraining plus its durable Seq and session Resume coordinate),
// and Drain returns once the shared chunker has retired. Idempotent,
// and a no-op when the chunker is idle.
func (ing *Ingestor) Drain() {
	ing.draining.Store(true)
	ing.mu.Lock()
	if !ing.running {
		ing.mu.Unlock()
		return
	}
	if ing.drainDone == nil {
		ing.drainDone = make(chan struct{})
	}
	done := ing.drainDone
	ing.mu.Unlock()
	ing.signal()
	<-done
}

// finalize seals a connection's cumulative ack — the terminal Seq is the
// durable frontier even for a connection that shipped no frames, so an
// idle client still gets a resume coordinate — tallies it into the
// shared counters, and releases the writer. Safe to call twice (batch
// failure then the closed-source sweep): only the first call acts.
func (ing *Ingestor) finalize(c *ingestConn, err error) {
	c.mu.Lock()
	if c.cum.Final {
		c.mu.Unlock()
		return
	}
	c.cum.Final = true
	if c.sess != nil {
		// The terminal ack always states the session's durable frame
		// high-water — even for a connection whose every frame was a
		// deduplicated resend (no fold ever touched its cum), the client
		// must learn where to resume from.
		if r := c.sess.Applied(); r > c.cum.Resume {
			c.cum.Resume = r
		}
	}
	if err != nil {
		c.err = err
		c.cum.Error = err.Error()
		// Anything still queued on a failed connection is discarded,
		// not applied: the client was just told its stream is over.
		c.dead = true
	} else {
		c.cum.Seq = ing.Target.ReplicationInfo().TotalSeq
	}
	cum := c.cum
	c.mu.Unlock()
	if ing.Counters != nil {
		ing.Counters.granted.Add(cum.Granted)
		ing.Counters.denied.Add(cum.Denied)
		ing.Counters.moved.Add(cum.Moved)
		ing.Counters.errs.Add(cum.Errors)
	}
	close(c.done)
}

// foldOutcomes accumulates one span's per-reading outcomes into a
// connection's cumulative ack.
func foldOutcomes(cum *Ack, outcomes []core.ObserveOutcome) {
	for _, o := range outcomes {
		switch {
		case o.Err != nil:
			cum.Errors++
			cum.LastError = o.Err.Error()
		case o.Entered && o.Decision.Granted:
			cum.Moved++
			cum.Granted++
		case o.Entered:
			cum.Moved++
			cum.Denied++
		case o.Moved:
			// An exit: a movement, but not an entry decision — it
			// counts in Moved only.
			cum.Moved++
		}
	}
}
