package stream

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestCursorAckResumePersists: acks advance monotonically, persist
// across an OpenCursors reload (the restarted-server path), and stale
// acks never rewind a cursor.
func TestCursorAckResumePersists(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursors.json")
	r := OpenCursors(path)

	if _, ok := r.Resume("tok"); ok {
		t.Fatal("unknown token resumed")
	}
	if acked, err := r.Ack("tok", 7); err != nil || acked != 7 {
		t.Fatalf("ack 7 = (%d, %v)", acked, err)
	}
	// Stale ack: no-op, reports the standing cursor.
	if acked, err := r.Ack("tok", 3); err != nil || acked != 7 {
		t.Fatalf("stale ack = (%d, %v), want (7, nil)", acked, err)
	}
	if acked, err := r.Ack("tok", 12); err != nil || acked != 12 {
		t.Fatalf("ack 12 = (%d, %v)", acked, err)
	}

	// Reload from disk: the restarted node resumes the same cursor.
	r2 := OpenCursors(path)
	acked, ok := r2.Resume("tok")
	if !ok || acked != 12 {
		t.Fatalf("reloaded cursor = (%d, %v), want (12, true)", acked, ok)
	}
	// The reloaded generation keeps advancing (new acks order after old).
	if _, err := r2.Ack("tok2", 1); err != nil {
		t.Fatal(err)
	}
	if r2.m["tok2"].Gen <= r2.m["tok"].Gen {
		t.Fatalf("reloaded gen did not advance: tok2 gen %d <= tok gen %d",
			r2.m["tok2"].Gen, r2.m["tok"].Gen)
	}
}

// TestCursorAckEmptyToken: an ack without a token is an error, and a
// nil/empty resume is safely unknown.
func TestCursorAckEmptyToken(t *testing.T) {
	r := OpenCursors("")
	if _, err := r.Ack("", 1); err == nil {
		t.Fatal("empty-token ack accepted")
	}
	if _, ok := r.Resume(""); ok {
		t.Fatal("empty token resumed")
	}
	var nilReg *CursorRegistry
	if _, ok := nilReg.Resume("tok"); ok {
		t.Fatal("nil registry resumed")
	}
	if n := nilReg.Len(); n != 0 {
		t.Fatalf("nil registry Len = %d", n)
	}
}

// TestCursorOverflowEvictsOldest: past the cap, the least-recently-acked
// cursor is displaced; fresher cursors survive.
func TestCursorOverflowEvictsOldest(t *testing.T) {
	r := OpenCursors("") // memory-only: same semantics, faster
	for i := 0; i < maxCursors; i++ {
		if _, err := r.Ack(fmt.Sprintf("tok-%04d", i), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Ack("newcomer", 1); err != nil {
		t.Fatal(err)
	}
	if n := r.Len(); n != maxCursors {
		t.Fatalf("Len = %d, want %d (bounded)", n, maxCursors)
	}
	if _, ok := r.Resume("tok-0000"); ok {
		t.Fatal("oldest cursor survived the overflow")
	}
	if acked, ok := r.Resume("tok-0001"); !ok || acked != 2 {
		t.Fatalf("second-oldest cursor = (%d, %v), want (2, true)", acked, ok)
	}
	if _, ok := r.Resume("newcomer"); !ok {
		t.Fatal("newcomer not tracked")
	}
}

// TestCursorCorruptFileStartsEmpty: cursor-file loss or corruption
// degrades to from=0, it never fails the node.
func TestCursorCorruptFileStartsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cursors.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	r := OpenCursors(path)
	if n := r.Len(); n != 0 {
		t.Fatalf("corrupt file loaded %d cursors", n)
	}
	// And the registry still persists over it.
	if _, err := r.Ack("tok", 5); err != nil {
		t.Fatal(err)
	}
	if acked, ok := OpenCursors(path).Resume("tok"); !ok || acked != 5 {
		t.Fatalf("after corrupt recovery: (%d, %v), want (5, true)", acked, ok)
	}
}
