package stream

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/interval"
)

// faultableTarget is an in-memory IngestTarget whose next batch can be
// scripted to fail terminally — the WAL-failure stand-in for resume
// tests.
type faultableTarget struct {
	mu       sync.Mutex
	applied  []interval.Time
	failNext bool
	seq      uint64
}

func (ft *faultableTarget) ObserveBatch(readings []core.Reading) ([]core.ObserveOutcome, error) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	if ft.failNext {
		ft.failNext = false
		return nil, errors.New("injected batch failure")
	}
	for _, r := range readings {
		ft.applied = append(ft.applied, r.Time)
	}
	ft.seq += uint64(len(readings))
	return make([]core.ObserveOutcome, len(readings)), nil
}

func (ft *faultableTarget) ReplicationInfo() core.ReplicationInfo {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return core.ReplicationInfo{Durable: true, TotalSeq: ft.seq}
}

// TestSessionResumeAfterBatchFailureReapplies: a terminal ObserveBatch
// failure must roll the session's gather high-water back to the durable
// mark, so the frames the failed batch swallowed are re-applied when the
// client resumes — not deduplicated as "already applied", which would
// falsely ack data that never became durable.
func TestSessionResumeAfterBatchFailureReapplies(t *testing.T) {
	tgt := &faultableTarget{failNext: true}
	ing := &Ingestor{Target: tgt}
	var reg SessionRegistry
	sess := reg.Get("resume-tok")

	send := func(seqs ...uint64) []Ack {
		t.Helper()
		var in bytes.Buffer
		for _, s := range seqs {
			in.Write(frameLine(t, ObserveFrame{Time: interval.Time(s), Subject: "alice", X: 0.5, Y: 0.5, Seq: s}))
		}
		in.Write(frameLine(t, ObserveFrame{End: true}))
		var out bytes.Buffer
		_ = ing.RunFramedSession(NewNDJSONFrameReader(&in), NewNDJSONAckWriter(&out), sess)
		return parseAcks(t, out.Bytes())
	}

	// Connection 1: the batch holding (a prefix of) these frames fails
	// terminally — however the chunker split them, nothing is durable.
	acks := send(1, 2, 3)
	if final := acks[len(acks)-1]; final.Error == "" {
		t.Fatalf("first connection's final ack carries no error: %+v", acks)
	}
	if got := sess.Applied(); got != 0 {
		t.Fatalf("durable high-water after failed batch = %d, want 0", got)
	}

	// Connection 2 resumes: the hello reports Resume 0, so the client
	// re-sends everything. Without the gather high-water rollback these
	// frames satisfy seq <= hw, get skipped as resume overlap, and the
	// final ack claims Resume 3 with zero readings applied.
	acks = send(1, 2, 3)
	if hello := acks[0]; hello.Resume != 0 {
		t.Fatalf("hello resume = %d, want 0 (nothing durable yet)", hello.Resume)
	}
	final := acks[len(acks)-1]
	if !final.Final || final.Error != "" {
		t.Fatalf("resumed connection did not finish cleanly: %+v", final)
	}
	if final.Resume != 3 || final.Acked != 3 {
		t.Fatalf("final ack = %+v, want resume 3 acked 3", final)
	}
	tgt.mu.Lock()
	applied := append([]interval.Time(nil), tgt.applied...)
	tgt.mu.Unlock()
	if len(applied) != 3 {
		t.Fatalf("applied times %v, want the three resent readings exactly once each", applied)
	}
	for i, tm := range applied {
		if tm != interval.Time(i+1) {
			t.Fatalf("applied times %v, want 1,2,3 in order", applied)
		}
	}
}
