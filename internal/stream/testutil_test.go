package stream

import (
	"fmt"
	"testing"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// gridParts builds the side×side grid site: the graph, unit-square room
// boundaries, rooms in row-major order, and one in-room coordinate per
// room. Each call returns a fresh graph (Open takes ownership).
func gridParts(t testing.TB, side int) (*graph.Graph, []geometry.Boundary, []graph.ID, []geometry.Point) {
	t.Helper()
	g := graph.New("grid")
	id := func(r, c int) graph.ID { return graph.ID(fmt.Sprintf("r%02d_%02d", r, c)) }
	bounds, centers := geometry.UnitGrid(side, func(r, c int) string { return string(id(r, c)) })
	var rooms []graph.ID
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			rooms = append(rooms, id(r, c))
			if err := g.AddLocation(id(r, c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				_ = g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < side {
				_ = g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	if err := g.SetEntry(id(0, 0)); err != nil {
		t.Fatal(err)
	}
	return g, bounds, rooms, centers
}

// gridSystem boots a durable side×side grid site with unit-square room
// boundaries (so the positioning/ingest pipeline works) and full grants
// for the given subjects.
func gridSystem(t testing.TB, side int, dataDir string, subjects ...profile.SubjectID) (*core.System, []graph.ID, []geometry.Point) {
	t.Helper()
	g, bounds, rooms, centers := gridParts(t, side)
	sys, err := core.Open(core.Config{Graph: g, Boundaries: bounds, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	for _, sub := range subjects {
		for _, room := range rooms {
			if _, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<40), interval.New(1, 1<<41), sub, room, authz.Unlimited)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys, rooms, centers
}
