package stream

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/profile"
)

// frameLine marshals one ObserveFrame as its NDJSON wire line.
func frameLine(t testing.TB, f ObserveFrame) []byte {
	t.Helper()
	line, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	return append(line, '\n')
}

// parseAcks decodes every ack line the server wrote.
func parseAcks(t testing.TB, out []byte) []Ack {
	t.Helper()
	var acks []Ack
	for _, line := range bytes.Split(out, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var a Ack
		if err := json.Unmarshal(line, &a); err != nil {
			t.Fatalf("bad ack line %q: %v", line, err)
		}
		acks = append(acks, a)
	}
	if len(acks) == 0 {
		t.Fatal("no acks written")
	}
	return acks
}

// TestIngestAcksAndChunks runs one clean connection end to end: acks are
// cumulative, the final ack is marked, per-reading outcomes are counted,
// and the chunking policy folds multiple frames into few ObserveBatch
// calls.
func TestIngestAcksAndChunks(t *testing.T) {
	sys, _, centers := gridSystem(t, 2, t.TempDir(), "alice")

	var in bytes.Buffer
	in.Write(frameLine(t, ObserveFrame{Time: 2, Subject: "alice", X: centers[0].X, Y: centers[0].Y}))
	in.Write(frameLine(t, ObserveFrame{Time: 3, Subject: "alice", X: centers[1].X, Y: centers[1].Y}))
	in.Write(frameLine(t, ObserveFrame{Time: 1, Subject: "alice", X: centers[0].X, Y: centers[0].Y})) // regression: per-reading error
	in.Write(frameLine(t, ObserveFrame{Time: 4, Subject: "eve", X: centers[1].X, Y: centers[1].Y}))   // tailgater: denied
	in.Write(frameLine(t, ObserveFrame{Time: 5, Subject: "alice", X: -100, Y: -100}))                 // leaves: a movement, not a denial
	in.Write(frameLine(t, ObserveFrame{End: true}))

	var counters IngestCounters
	var out bytes.Buffer
	ing := &Ingestor{Target: sys, Config: IngestConfig{MaxChunk: 2}, Counters: &counters}
	if err := ing.Run(&in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}

	acks := parseAcks(t, out.Bytes())
	final := acks[len(acks)-1]
	if !final.Final {
		t.Fatalf("last ack not final: %+v", final)
	}
	if final.Acked != 5 || final.Granted != 2 || final.Denied != 1 || final.Errors != 1 {
		t.Fatalf("final ack = %+v, want acked 5 granted 2 denied 1 errors 1", final)
	}
	if final.Moved != 4 {
		t.Fatalf("moved = %d, want 4 (2 granted entries + 1 tailgating entry + 1 exit; the exit must NOT count as denied)", final.Moved)
	}
	if final.LastError == "" {
		t.Fatal("per-reading failure not surfaced in LastError")
	}
	if got := sys.ReplicationInfo().TotalSeq; final.Seq != got {
		t.Fatalf("final ack seq %d != durable frontier %d", final.Seq, got)
	}
	// Cumulative: acked never decreases, every non-final ack covers a
	// strict prefix.
	var prev uint64
	for _, a := range acks {
		if a.Acked < prev {
			t.Fatalf("acks not cumulative: %v", acks)
		}
		prev = a.Acked
	}
	st := counters.Snapshot()
	if st.Frames != 5 || st.Chunks < 2 {
		t.Fatalf("counters = %+v, want 5 frames in >= 2 chunks (MaxChunk 2)", st)
	}
	if st.Moved != 4 || st.Denied != 1 {
		t.Fatalf("counters = %+v, want moved 4 denied 1", st)
	}
	if st.TotalConns != 1 || st.Conns != 0 {
		t.Fatalf("connection counters = %+v", st)
	}
}

// TestIngestTornLineStops: a line that does not parse (a torn JSON
// prefix, or garbage) ends the connection, and everything before it is
// still flushed and acked.
func TestIngestTornLineStops(t *testing.T) {
	sys, _, centers := gridSystem(t, 2, t.TempDir(), "alice")

	var in bytes.Buffer
	in.Write(frameLine(t, ObserveFrame{Time: 2, Subject: "alice", X: centers[0].X, Y: centers[0].Y}))
	in.WriteString(`{"time": 3, "subject": "ali`) // torn mid-frame

	var out bytes.Buffer
	ing := &Ingestor{Target: sys, Config: IngestConfig{}}
	if err := ing.Run(&in, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	acks := parseAcks(t, out.Bytes())
	final := acks[len(acks)-1]
	if final.Acked != 1 || !final.Final {
		t.Fatalf("final ack = %+v, want exactly the pre-tear frame acked", final)
	}
	if loc, inside := sys.WhereIs("alice"); !inside || loc != "r00_00" {
		t.Fatalf("pre-tear frame not applied: alice at %q inside=%v", loc, inside)
	}
}

// TestIngestEmptyStream: a connection that ends before any frame still
// gets its final ack.
func TestIngestEmptyStream(t *testing.T) {
	sys, _, _ := gridSystem(t, 2, t.TempDir())
	var out bytes.Buffer
	ing := &Ingestor{Target: sys}
	if err := ing.Run(strings.NewReader(""), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	acks := parseAcks(t, out.Bytes())
	if len(acks) != 1 || !acks[0].Final || acks[0].Acked != 0 {
		t.Fatalf("acks = %+v, want one empty final ack", acks)
	}
}

// TestIngestSharedVocabulary: the ObserveFrame wire names match the
// batched endpoint's wire.Reading names, so the two ingest paths speak
// one dialect.
func TestIngestSharedVocabulary(t *testing.T) {
	line := frameLine(t, ObserveFrame{Time: interval.Time(7), Subject: profile.SubjectID("s"), X: 1.5, Y: 2.5})
	var m map[string]any
	if err := json.Unmarshal(line, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"time", "subject", "x", "y"} {
		if _, ok := m[key]; !ok {
			t.Fatalf("frame JSON missing %q: %s", key, line)
		}
	}
}
