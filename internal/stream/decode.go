// Event decode: one committed WAL record → one Event with the summary
// fields subscribers filter on. The payload shapes mirror core's WAL
// record vocabulary (see core.System.apply); TestDecodeCoversEveryRecordType
// drives a real System through every mutation and decodes its log, so a
// drift between the two packages fails loudly instead of silently
// yielding empty events.
package stream

import (
	"encoding/json"
	"fmt"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/rules"
	"repro/internal/storage"
)

// wire shapes of the core record payloads we summarize.
type (
	movePayload struct {
		T interval.Time
		S profile.SubjectID
		L graph.ID
	}
	idPayload   struct{ ID authz.ID }
	namePayload struct{ Name string }
	subjPayload struct{ ID profile.SubjectID }
	tickPayload struct{ T interval.Time }
)

// DecodeEvent turns the committed record at global sequence seq into its
// feed event. The record rides along verbatim (for replay); decode
// failures of the summary fields are reported, not swallowed — a record
// that cannot be summarized cannot be filtered honestly.
func DecodeEvent(seq uint64, rec storage.Record) (Event, error) {
	ev := Event{Seq: seq, Record: &storage.Record{Type: rec.Type, Data: rec.Data}}
	var err error
	switch rec.Type {
	case "move.enter", "move.leave":
		var p movePayload
		if err = json.Unmarshal(rec.Data, &p); err == nil {
			ev.Kind, ev.Time, ev.Subject, ev.Location = KindEnter, p.T, p.S, p.L
			if rec.Type == "move.leave" {
				ev.Kind = KindLeave
			}
		}
	case "authz.add":
		var a authz.Authorization
		if err = json.Unmarshal(rec.Data, &a); err == nil {
			ev.Kind, ev.Subject, ev.Location, ev.Auth = KindGrant, a.Subject, a.Location, a.ID
		}
	case "authz.revoke":
		var p idPayload
		if err = json.Unmarshal(rec.Data, &p); err == nil {
			ev.Kind, ev.Auth = KindRevoke, p.ID
		}
	case "authz.resolve":
		ev.Kind = KindResolve
	case "rule.add":
		var spec rules.Spec
		if err = json.Unmarshal(rec.Data, &spec); err == nil {
			ev.Kind, ev.Name = KindRuleAdd, spec.Name
		}
	case "rule.remove":
		var p namePayload
		if err = json.Unmarshal(rec.Data, &p); err == nil {
			ev.Kind, ev.Name = KindRuleRemove, p.Name
		}
	case "profile.put":
		var sub profile.Subject
		if err = json.Unmarshal(rec.Data, &sub); err == nil {
			ev.Kind, ev.Subject = KindProfilePut, sub.ID
		}
	case "profile.remove":
		var p subjPayload
		if err = json.Unmarshal(rec.Data, &p); err == nil {
			ev.Kind, ev.Subject = KindProfileRemove, p.ID
		}
	case "tick":
		var p tickPayload
		if err = json.Unmarshal(rec.Data, &p); err == nil {
			ev.Kind, ev.Time = KindTick, p.T
		}
	default:
		return Event{}, fmt.Errorf("stream: unknown record type %q at seq %d", rec.Type, seq)
	}
	if err != nil {
		return Event{}, fmt.Errorf("stream: decode %s at seq %d: %w", rec.Type, seq, err)
	}
	return ev, nil
}
