// Package stream is the continuous-movement face of the control
// station: the paper's model is an ongoing stream of subjects entering
// and leaving locations, and violations matter the moment they happen —
// so both directions of that stream get a long-lived connection instead
// of a request/response round-trip per movement.
//
// Two halves share one NDJSON framing (one JSON object per line):
//
//   - Ingest (ingest.go): a client streams ObserveFrame readings over a
//     single connection; the server chunks them into ObserveBatch calls
//     under a MaxChunk/MaxDelay policy (mirroring the group committer's
//     knobs) and writes back cumulative Ack frames carrying the durable
//     record sequence — the client learns exactly which prefix of its
//     stream survives a crash.
//
//   - Subscribe (bus.go): a Bus tails the primary's WAL — the committed
//     history, in the exact order every replica applies it — decodes
//     each record into an Event, and fans events out to subscribers with
//     per-subscriber buffering, slow-consumer eviction and filter
//     predicates. Denial/overstay alerts from internal/audit ride the
//     same feed. An unfiltered subscriber that replays every event's
//     Record from sequence 0 reconstructs the primary's answers exactly
//     (see the equivalence test).
package stream

import (
	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/storage"
)

// ObserveFrame is one client→server line on the ingest stream: a
// positioning reading, or the end-of-stream marker. Field names match
// the batched-ingest wire.Reading so the two ingest paths share one
// vocabulary.
type ObserveFrame struct {
	Time    interval.Time     `json:"time,omitempty"`
	Subject profile.SubjectID `json:"subject,omitempty"`
	X       float64           `json:"x,omitempty"`
	Y       float64           `json:"y,omitempty"`
	// End marks a clean end of stream: the server flushes the pending
	// chunk, writes a final Ack, and closes. An abruptly cut connection
	// gets the same flush, minus the ack delivery.
	End bool `json:"end,omitempty"`
	// Seq is the frame's 1-based position in its ingest SESSION (not
	// connection): a resuming client re-sends the un-acked suffix with
	// the original sequence numbers and the server deduplicates anything
	// it already applied (see IngestSession). Zero means "no session
	// sequencing" — the pre-resume wire.
	Seq uint64 `json:"fseq,omitempty"`
}

// Ack is one server→client line on the ingest stream, written after
// every applied chunk. All counters are CUMULATIVE over the connection,
// so a client needs only the latest ack to know its position:
// the first Acked frames of its stream are applied, and every WAL
// record they produced is durable up to sequence Seq.
type Ack struct {
	// Acked is how many observation frames have been applied (including
	// frames whose application failed per-reading — see Errors).
	Acked uint64 `json:"acked"`
	// Seq is the primary's durable record sequence
	// (ReplicationInfo.TotalSeq) after the chunk's commit barrier: the
	// prefix of the global history this connection's acked frames are
	// part of. With RelaxedDurability the barrier acks at enqueue, and
	// Seq inherits that weaker meaning.
	Seq uint64 `json:"seq"`
	// Granted/Denied count Def.-7 entry decisions; Moved counts readings
	// that produced a movement; Errors counts per-reading application
	// failures (e.g. time regressions) — those frames are acked but had
	// no effect, exactly like the batch endpoint's per-reading errors.
	Granted uint64 `json:"granted"`
	Denied  uint64 `json:"denied"`
	Moved   uint64 `json:"moved"`
	Errors  uint64 `json:"errors,omitempty"`
	// LastError is the most recent per-reading failure, for operators.
	LastError string `json:"last_error,omitempty"`
	// Final marks the terminal ack: the server is done with this
	// connection (clean End frame, torn stream, or the Error below).
	Final bool `json:"final,omitempty"`
	// Error is a terminal connection failure: the chunk was applied in
	// memory but NOT durably acknowledged (or the system rejected the
	// stream). Without a session the client must not retry the un-acked
	// suffix blindly — it cannot know which of those frames applied. A
	// session (Resume) is exactly the coordinate that makes the retry
	// safe: re-send from Resume+1 and the server dedupes the overlap.
	Error string `json:"error,omitempty"`
	// Resume is the session-scoped durable high-water: every frame of
	// this ingest session with ObserveFrame.Seq <= Resume is applied and
	// durable. The first ack of a session connection (the "hello", sent
	// before any frame is read) carries the resume point a reconnecting
	// client should re-send from. Zero when the connection has no
	// session.
	Resume uint64 `json:"resume,omitempty"`
}

// EventKind classifies a bus event.
type EventKind string

// The event kinds on the subscription feed. The first group mirrors the
// WAL record types one-to-one (every committed record becomes exactly
// one event); KindAlert rides alongside with its own sequence space;
// KindError is a terminal in-band frame on an HTTP feed.
const (
	KindEnter         EventKind = "enter"
	KindLeave         EventKind = "leave"
	KindGrant         EventKind = "grant"
	KindRevoke        EventKind = "revoke"
	KindResolve       EventKind = "resolve"
	KindRuleAdd       EventKind = "rule-add"
	KindRuleRemove    EventKind = "rule-remove"
	KindProfilePut    EventKind = "profile-put"
	KindProfileRemove EventKind = "profile-remove"
	KindTick          EventKind = "tick"
	KindAlert         EventKind = "alert"
	KindError         EventKind = "error"
)

// Event is one line on the subscription feed.
//
// Record events (every kind except KindAlert/KindError) carry the
// committed WAL record itself plus decoded summary fields for
// filtering; Seq is the record's global sequence number, contiguous per
// feed. Replaying Records in Seq order through core.Replica.ApplyRecord
// reconstructs the primary's state exactly.
//
// Alert events carry the audit.Alert and its own AlertSeq (the audit
// log's sequence — a separate space from the record sequence, because
// alerts are observations, not state transitions: they are raised
// during enforcement and never logged to the WAL).
type Event struct {
	Seq      uint64            `json:"seq"`
	Kind     EventKind         `json:"kind"`
	Time     interval.Time     `json:"time,omitempty"`
	Subject  profile.SubjectID `json:"subject,omitempty"`
	Location graph.ID          `json:"location,omitempty"`
	// Auth is the authorization ID a grant assigned or a revoke removed.
	Auth authz.ID `json:"auth,omitempty"`
	// Name is the rule name on rule-add/rule-remove events.
	Name     string          `json:"name,omitempty"`
	Alert    *audit.Alert    `json:"alert,omitempty"`
	AlertSeq uint64          `json:"alert_seq,omitempty"`
	Record   *storage.Record `json:"record,omitempty"`
	// Error is set on KindError: the feed is ending abnormally (slow
	// consumer evicted, or the requested range was compacted — Seq then
	// holds the oldest still-available sequence to resubscribe from).
	Error string `json:"error,omitempty"`
}

// Filter selects which events a subscriber receives. The zero value
// matches everything.
type Filter struct {
	// Subject keeps only events about this subject (events with no
	// subject — ticks, rule changes — are dropped).
	Subject profile.SubjectID
	// Location keeps only events at this location.
	Location graph.ID
	// Kinds keeps only the listed kinds (nil keeps all). KindError
	// frames always pass: they are the feed's failure channel.
	Kinds []EventKind
}

// Match reports whether the filter keeps ev.
func (f Filter) Match(ev Event) bool {
	if ev.Kind == KindError {
		return true
	}
	if f.Subject != "" && ev.Subject != f.Subject {
		return false
	}
	if f.Location != "" && ev.Location != f.Location {
		return false
	}
	if len(f.Kinds) > 0 {
		for _, k := range f.Kinds {
			if ev.Kind == k {
				return true
			}
		}
		return false
	}
	return true
}
