// Ingest sessions: the server-kept resume state that upgrades streaming
// ingest from at-most-once-per-connection to exactly-once-per-session.
//
// A session outlives its connections. The client names one with an
// opaque token, numbers every frame with a session-scoped sequence
// (ObserveFrame.Seq), and keeps the un-acked suffix buffered. On
// reconnect the server's hello ack reports Applied — the session's
// durable frame high-water — and the client re-sends only Seq >
// Applied. The server dedupes the overlap a second time at gather (the
// hello races in-flight folds of the previous connection), so a frame
// is applied exactly once no matter where the connection died:
//
//	client buffer:  [trimmed | un-acked suffix]
//	                         ^ Ack.Resume          (fold-time, durable)
//	server dedupe:                 gather high-water (chunker-local)
//
// Exactly-once holds across connection kills while the server process
// lives. Across a server restart the registry is empty, Applied restarts
// at 0, and delivery degrades to at-least-once for the un-acked window —
// re-applied movement readings are no-op samples unless the clock moved,
// and the WAL's replay equivalence is unaffected (see DESIGN.md D14).
package stream

import (
	"sync"
	"sync/atomic"
)

// IngestSession is one logical ingest stream's resume state. Create via
// SessionRegistry.Get; pass to Ingestor.RunFramedSession.
type IngestSession struct {
	// applied is the durable high-water: the largest ObserveFrame.Seq
	// whose effects are fsynced. Advanced only at fold time, after the
	// chunk's commit barrier.
	applied atomic.Uint64
	// hw is the gather high-water — the largest Seq already pulled into
	// a chunk. It dedupes re-sent frames that race the previous
	// connection's in-flight batch. Chunker-goroutine only: the chunker
	// is the single gather/fold thread, which is what makes the
	// dedupe-then-apply sequence atomic without a lock.
	hw uint64

	mu  sync.Mutex
	cur *ingestConn // the attached live connection, if any
}

// Applied returns the session's durable frame high-water.
func (s *IngestSession) Applied() uint64 { return s.applied.Load() }

// advanceApplied moves the durable high-water monotonically.
func (s *IngestSession) advanceApplied(seq uint64) {
	for {
		cur := s.applied.Load()
		if seq <= cur || s.applied.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// attach makes c the session's live connection, stealing the session
// from any previous connection: the old connection is marked dead so the
// chunker discards (rather than applies) whatever it still has queued —
// the client has moved on and will re-send everything un-acked on the
// new connection.
func (s *IngestSession) attach(c *ingestConn) {
	s.mu.Lock()
	old := s.cur
	s.cur = c
	s.mu.Unlock()
	if old != nil && old != c {
		old.mu.Lock()
		old.dead = true
		old.mu.Unlock()
	}
}

// detach clears the attachment if c still holds it.
func (s *IngestSession) detach(c *ingestConn) {
	s.mu.Lock()
	if s.cur == c {
		s.cur = nil
	}
	s.mu.Unlock()
}

// maxSessions bounds the registry; beyond it, detached sessions are
// evicted (arbitrary order — an evicted session degrades its client to
// a fresh session, i.e. at-least-once for the un-acked window, the same
// contract as a server restart).
const maxSessions = 4096

// SessionRegistry maps resume tokens to sessions. The server holds one
// per Ingestor. In-memory by design: the WAL already persists the data;
// the registry persists only dedupe state, whose loss is a documented
// degradation, not corruption.
type SessionRegistry struct {
	mu sync.Mutex
	m  map[string]*IngestSession
}

// Get returns the session for token, creating it on first use. An empty
// token returns nil (no session).
func (r *SessionRegistry) Get(token string) *IngestSession {
	if token == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]*IngestSession)
	}
	if s, ok := r.m[token]; ok {
		return s
	}
	if len(r.m) >= maxSessions {
		for k, s := range r.m {
			s.mu.Lock()
			detached := s.cur == nil
			s.mu.Unlock()
			if detached {
				delete(r.m, k)
				if len(r.m) < maxSessions {
					break
				}
			}
		}
	}
	s := &IngestSession{}
	r.m[token] = s
	return s
}

// Len reports the number of live sessions (stats).
func (r *SessionRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}
