// Ingest sessions: the server-kept resume state that upgrades streaming
// ingest from at-most-once-per-connection to exactly-once-per-session.
//
// A session outlives its connections. The client names one with an
// opaque token, numbers every frame with a session-scoped sequence
// (ObserveFrame.Seq), and keeps the un-acked suffix buffered. On
// reconnect the server's hello ack reports Applied — the session's
// durable frame high-water — and the client re-sends only Seq >
// Applied. The server dedupes the overlap a second time at gather (the
// hello races in-flight folds of the previous connection), so a frame
// is applied exactly once no matter where the connection died:
//
//	client buffer:  [trimmed | un-acked suffix]
//	                         ^ Ack.Resume          (fold-time, durable)
//	server dedupe:                 gather high-water (chunker-local)
//
// Exactly-once holds across connection kills while the server process
// lives. Across a server restart the registry is empty, Applied restarts
// at 0, and delivery degrades to at-least-once for the un-acked window —
// re-applied movement readings are no-op samples unless the clock moved,
// and the WAL's replay equivalence is unaffected (see DESIGN.md D14).
package stream

import (
	"sync"
	"sync/atomic"
	"time"
)

// IngestSession is one logical ingest stream's resume state. Create via
// SessionRegistry.Get; pass to Ingestor.RunFramedSession.
type IngestSession struct {
	// applied is the durable high-water: the largest ObserveFrame.Seq
	// whose effects are fsynced. Advanced only at fold time, after the
	// chunk's commit barrier.
	applied atomic.Uint64
	// hw is the gather high-water — the largest Seq already pulled into
	// a chunk. It dedupes re-sent frames that race the previous
	// connection's in-flight batch. Written only by the chunker — the
	// single gather/fold thread, which is what makes the
	// dedupe-then-apply sequence atomic without a lock — but atomic so
	// the registry's idle sweep can READ it: an eviction is safe only
	// when hw == applied (nothing gathered but not yet durably acked).
	hw atomic.Uint64

	mu  sync.Mutex
	cur *ingestConn // the attached live connection, if any
	// idleSince is when the last connection detached (zero while one is
	// attached); the registry's TTL sweep measures idleness from it.
	idleSince time.Time
}

// Applied returns the session's durable frame high-water.
func (s *IngestSession) Applied() uint64 { return s.applied.Load() }

// advanceApplied moves the durable high-water monotonically.
func (s *IngestSession) advanceApplied(seq uint64) {
	for {
		cur := s.applied.Load()
		if seq <= cur || s.applied.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// attach makes c the session's live connection, stealing the session
// from any previous connection: the old connection is marked dead so the
// chunker discards (rather than applies) whatever it still has queued —
// the client has moved on and will re-send everything un-acked on the
// new connection.
func (s *IngestSession) attach(c *ingestConn) {
	s.mu.Lock()
	old := s.cur
	s.cur = c
	s.idleSince = time.Time{}
	s.mu.Unlock()
	if old != nil && old != c {
		old.mu.Lock()
		old.dead = true
		old.mu.Unlock()
	}
}

// detach clears the attachment if c still holds it, starting the idle
// clock.
func (s *IngestSession) detach(c *ingestConn) {
	s.mu.Lock()
	if s.cur == c {
		s.cur = nil
		s.idleSince = time.Now()
	}
	s.mu.Unlock()
}

// evictable reports whether the idle-TTL sweep may drop this session:
// no attached connection, idle past the TTL, and a fully-acked buffer
// (gather high-water == durable high-water — evicting a session with
// gathered-but-unacked frames would turn the next reconnect's re-send
// into a double apply).
func (s *IngestSession) evictable(now time.Time, ttl time.Duration) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur == nil && !s.idleSince.IsZero() &&
		now.Sub(s.idleSince) >= ttl && s.hw.Load() == s.applied.Load()
}

// Registry bounds.
const (
	// maxSessions caps the registry; beyond it, detached sessions are
	// evicted (arbitrary order — an evicted session degrades its client
	// to a fresh session, i.e. at-least-once for the un-acked window,
	// the same contract as a server restart).
	maxSessions = 4096
	// DefaultSessionIdleTTL is how long a detached, fully-acked session
	// survives before the idle sweep reclaims it. Long enough to ride
	// out any reconnect backoff; short enough that client churn cannot
	// grow the registry without bound.
	DefaultSessionIdleTTL = 15 * time.Minute
	// sweepInterval rate-limits the idle sweep (it runs inline in Get).
	sweepInterval = time.Second
)

// SessionRegistry maps resume tokens to sessions. The server holds one
// per Ingestor. In-memory by design: the WAL already persists the data;
// the registry persists only dedupe state, whose loss is a documented
// degradation, not corruption. Detached sessions whose buffer is fully
// acked are reclaimed after IdleTTL (swept inline by Get, rate-limited),
// so abandoned tokens do not accumulate for the process lifetime.
type SessionRegistry struct {
	// IdleTTL overrides the idle eviction window (0 selects
	// DefaultSessionIdleTTL). Set before serving traffic.
	IdleTTL time.Duration

	mu        sync.Mutex
	m         map[string]*IngestSession
	lastSweep time.Time
	evictions uint64
}

func (r *SessionRegistry) ttl() time.Duration {
	if r.IdleTTL > 0 {
		return r.IdleTTL
	}
	return DefaultSessionIdleTTL
}

// Get returns the session for token, creating it on first use. An empty
// token returns nil (no session).
func (r *SessionRegistry) Get(token string) *IngestSession {
	if token == "" {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.m == nil {
		r.m = make(map[string]*IngestSession)
	}
	if now := time.Now(); now.Sub(r.lastSweep) >= sweepInterval {
		r.lastSweep = now
		r.sweepLocked(now)
	}
	if s, ok := r.m[token]; ok {
		return s
	}
	if len(r.m) >= maxSessions {
		for k, s := range r.m {
			s.mu.Lock()
			detached := s.cur == nil
			s.mu.Unlock()
			if detached {
				delete(r.m, k)
				r.evictions++
				if len(r.m) < maxSessions {
					break
				}
			}
		}
	}
	s := &IngestSession{}
	r.m[token] = s
	return s
}

// sweepLocked drops every evictable session. Callers hold r.mu.
func (r *SessionRegistry) sweepLocked(now time.Time) {
	ttl := r.ttl()
	for k, s := range r.m {
		if s.evictable(now, ttl) {
			delete(r.m, k)
			r.evictions++
		}
	}
}

// SweepIdle runs one idle sweep immediately (tests; the serving path
// sweeps inline in Get) and reports the live session count after it.
func (r *SessionRegistry) SweepIdle() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sweepLocked(time.Now())
	return len(r.m)
}

// Len reports the number of live sessions (stats).
func (r *SessionRegistry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// Evictions reports how many sessions the registry has dropped — idle
// TTL sweeps and overflow evictions combined.
func (r *SessionRegistry) Evictions() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictions
}
