package stream

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/obs"
)

// collect reads n record events (alerts ride alongside and are returned
// separately), failing on timeout or an in-band error frame.
func collect(t testing.TB, sub *Subscription, n int) (records, alerts []Event) {
	t.Helper()
	timeout := time.After(10 * time.Second)
	done := make(chan struct{})
	go func() {
		<-timeout
		close(done)
	}()
	for len(records) < n {
		ev, err := sub.Next(done)
		if err != nil {
			t.Fatalf("collect: %v after %d records", err, len(records))
		}
		switch ev.Kind {
		case KindAlert:
			alerts = append(alerts, ev)
		case KindError:
			t.Fatalf("collect: in-band error %+v", ev)
		default:
			records = append(records, ev)
		}
	}
	return records, alerts
}

func newTestBus(t testing.TB, sys *core.System, cfg BusConfig) *Bus {
	t.Helper()
	if cfg.Poll == 0 {
		cfg.Poll = time.Millisecond
	}
	b, err := NewBus(sys, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

// TestBusReplayThenLive: a subscriber from sequence 0 receives the full
// retained history in order, gap-free, then splices into live delivery
// without missing the next mutation.
func TestBusReplayThenLive(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir(), "alice")
	if _, err := sys.Enter(2, "alice", rooms[0]); err != nil {
		t.Fatal(err)
	}
	total := sys.ReplicationInfo().TotalSeq

	b := newTestBus(t, sys, BusConfig{})
	sub, err := b.Subscribe(SubscribeOptions{From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	records, _ := collect(t, sub, int(total))
	for i, ev := range records {
		if ev.Seq != uint64(i) {
			t.Fatalf("event %d has seq %d: not contiguous from 0", i, ev.Seq)
		}
	}
	last := records[len(records)-1]
	if last.Kind != KindEnter || last.Subject != "alice" {
		t.Fatalf("last replayed event = %+v, want alice's enter", last)
	}

	// Live: the next mutation must arrive on the already-open feed.
	if _, err := sys.Enter(3, "alice", rooms[1]); err != nil {
		t.Fatal(err)
	}
	live, _ := collect(t, sub, 1)
	if live[0].Seq != total || live[0].Kind != KindEnter || live[0].Location != rooms[1] {
		t.Fatalf("live event = %+v, want the enter at seq %d", live[0], total)
	}

	st := b.Stats()
	if st.Delivered == 0 || st.Published == 0 || st.TotalSubscribers != 1 {
		t.Fatalf("bus stats = %+v", st)
	}
}

// TestBusFilters: subject and kind predicates drop everything else.
func TestBusFilters(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir(), "alice", "bob")
	if _, err := sys.Enter(2, "alice", rooms[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Enter(2, "bob", rooms[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Leave(3, "alice"); err != nil {
		t.Fatal(err)
	}

	b := newTestBus(t, sys, BusConfig{})
	sub, err := b.Subscribe(SubscribeOptions{From: 0, Filter: Filter{Subject: "alice", Kinds: []EventKind{KindEnter}}})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	records, _ := collect(t, sub, 1)
	if records[0].Kind != KindEnter || records[0].Subject != "alice" {
		t.Fatalf("filtered feed delivered %+v", records[0])
	}
	// Nothing else may arrive: bob's enter and alice's leave are filtered.
	done := make(chan struct{})
	go func() { time.Sleep(50 * time.Millisecond); close(done) }()
	if ev, err := sub.Next(done); err == nil {
		t.Fatalf("filter leaked %+v", ev)
	}
}

// TestBusSlowConsumerEvicted: a subscriber that stops draining is
// evicted rather than stalling the pump, and its terminal error names
// the condition.
func TestBusSlowConsumerEvicted(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir(), "alice")
	b := newTestBus(t, sys, BusConfig{})
	sub, err := b.Subscribe(SubscribeOptions{From: sys.ReplicationInfo().TotalSeq, Buffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	// Wait until the subscription is live (it counts as a subscriber).
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Subscribers == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	// Burst more events than the queue holds, draining nothing.
	for i := 0; i < 6; i++ {
		loc := rooms[i%2]
		if _, err := sys.Enter(interval.Time(2+i), "alice", loc); err != nil {
			t.Fatal(err)
		}
	}
	// Eviction latches a terminal error; queued events still drain first.
	deadline = time.Now().Add(5 * time.Second)
	for sub.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := sub.Err(); !errors.Is(err, ErrSlowConsumer) {
		t.Fatalf("terminal err = %v, want ErrSlowConsumer", err)
	}
	// Drain: the queued events come first, then — guaranteed, not
	// best-effort — the in-band KindError frame naming the first
	// UNDELIVERED sequence, then the terminal error.
	var delivered []uint64
	var frame *Event
	for {
		// nil done: the closed quit channel already bounds the wait.
		ev, err := sub.Next(nil)
		if err != nil {
			break
		}
		if ev.Kind == KindError {
			ev := ev
			frame = &ev
			continue
		}
		delivered = append(delivered, ev.Seq)
	}
	if len(delivered) == 0 {
		t.Fatal("queued events discarded on eviction")
	}
	if frame == nil {
		t.Fatal("in-band eviction frame never delivered")
	}
	if want := delivered[len(delivered)-1] + 1; frame.Seq != want {
		t.Fatalf("eviction frame says resubscribe from %d; first undelivered is %d", frame.Seq, want)
	}
	if b.Stats().Evicted != 1 {
		t.Fatalf("evicted = %d, want 1", b.Stats().Evicted)
	}

	// "An evicted client loses nothing": resubscribing from the frame's
	// coordinate yields exactly the missed events, gap-free.
	sub2, err := b.Subscribe(SubscribeOptions{From: frame.Seq})
	if err != nil {
		t.Fatal(err)
	}
	defer sub2.Close()
	missed := int(sys.ReplicationInfo().TotalSeq - frame.Seq)
	records, _ := collect(t, sub2, missed)
	for i, ev := range records {
		if ev.Seq != frame.Seq+uint64(i) {
			t.Fatalf("resubscribe gap: record %d has seq %d, want %d", i, ev.Seq, frame.Seq+uint64(i))
		}
	}
}

// TestBusAlertBacklogAndLive: AlertsSince replays the retained alert
// backlog, live alerts follow exactly once, and the alert cursor
// deduplicates across the splice.
func TestBusAlertBacklogAndLive(t *testing.T) {
	sys, _, centers := gridSystem(t, 2, t.TempDir(), "alice")
	// One retained alert: eve tailgates (unauthorized entry).
	if _, err := sys.ObserveBatch([]core.Reading{{Time: 2, Subject: "eve", At: centers[0]}}); err != nil {
		t.Fatal(err)
	}
	if sys.Alerts().Len() == 0 {
		t.Fatal("setup: no alert raised")
	}

	b := newTestBus(t, sys, BusConfig{})
	zero := uint64(0)
	sub, err := b.Subscribe(SubscribeOptions{
		From:        sys.ReplicationInfo().TotalSeq,
		AlertsSince: &zero,
		Filter:      Filter{Kinds: []EventKind{KindAlert}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	timeout := make(chan struct{})
	go func() { time.Sleep(10 * time.Second); close(timeout) }()
	ev, err := sub.Next(timeout)
	if err != nil {
		t.Fatalf("backlog alert: %v", err)
	}
	if ev.Kind != KindAlert || ev.Alert == nil || ev.Subject != "eve" {
		t.Fatalf("backlog alert = %+v", ev)
	}
	firstSeq := ev.AlertSeq

	// A live alert arrives once, after the backlog.
	if _, err := sys.ObserveBatch([]core.Reading{{Time: 3, Subject: "eve", At: centers[1]}}); err != nil {
		t.Fatal(err)
	}
	ev2, err := sub.Next(timeout)
	if err != nil {
		t.Fatalf("live alert: %v", err)
	}
	if ev2.Kind != KindAlert || ev2.AlertSeq <= firstSeq {
		t.Fatalf("live alert = %+v (backlog seq %d): duplicate or out of order", ev2, firstSeq)
	}
}

// TestBusSubscribeBehindHorizon: a From inside the compacted prefix is
// refused with ErrCompacted and the resume coordinate.
func TestBusSubscribeBehindHorizon(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir(), "alice")
	if _, err := sys.Enter(2, "alice", rooms[0]); err != nil {
		t.Fatal(err)
	}
	if err := sys.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if sys.ReplicationInfo().BaseSeq == 0 {
		t.Fatal("setup: compaction did not move the base")
	}
	b := newTestBus(t, sys, BusConfig{})
	// An explicit position inside the compacted prefix is a real gap.
	if _, err := b.Subscribe(SubscribeOptions{From: 1}); !errors.Is(err, ErrCompacted) {
		t.Fatalf("subscribe behind horizon: %v, want ErrCompacted", err)
	}
	// At the horizon is fine.
	sub, err := b.Subscribe(SubscribeOptions{From: sys.ReplicationInfo().BaseSeq})
	if err != nil {
		t.Fatalf("subscribe at horizon: %v", err)
	}
	sub.Close()
	// From 0 means "everything retained": it clamps to the horizon
	// instead of failing, so the default watch invocation keeps working
	// on a compacted primary.
	sub0, err := b.Subscribe(SubscribeOptions{From: 0})
	if err != nil {
		t.Fatalf("subscribe from 0 after compaction: %v", err)
	}
	defer sub0.Close()
	if _, err := sys.Enter(3, "alice", rooms[1]); err != nil {
		t.Fatal(err)
	}
	records, _ := collect(t, sub0, 1)
	if records[0].Seq < sys.ReplicationInfo().BaseSeq {
		t.Fatalf("clamped subscription delivered compacted seq %d", records[0].Seq)
	}
}

// TestBusCatchUpSplicesGapFree: a subscriber that starts from 0 while
// the primary keeps mutating sees every record event exactly once, in
// order, across the catch-up→live handoff. Run with -race.
func TestBusCatchUpSplicesGapFree(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir(), "alice")
	b := newTestBus(t, sys, BusConfig{})

	const moves = 300
	errc := make(chan error, 1)
	go func() {
		defer close(errc)
		for i := 0; i < moves; i++ {
			if _, err := sys.Enter(interval.Time(2+i), "alice", rooms[i%2]); err != nil {
				errc <- err
				return
			}
		}
	}()

	sub, err := b.Subscribe(SubscribeOptions{From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	grants := len(rooms) // gridSystem's setup records
	records, _ := collect(t, sub, grants+moves)
	for i, ev := range records {
		if ev.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d: gap or duplicate across the splice", i, ev.Seq)
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestBusCloseTerminatesSubscribers: Close fails every subscription
// with ErrBusClosed.
func TestBusCloseTerminatesSubscribers(t *testing.T) {
	sys, _, _ := gridSystem(t, 2, t.TempDir(), "alice")
	b := newTestBus(t, sys, BusConfig{})
	sub, err := b.Subscribe(SubscribeOptions{From: sys.ReplicationInfo().TotalSeq})
	if err != nil {
		t.Fatal(err)
	}
	b.Close()
	done := make(chan struct{})
	go func() { time.Sleep(5 * time.Second); close(done) }()
	for {
		_, err := sub.Next(done)
		if err != nil {
			if !errors.Is(err, ErrBusClosed) {
				t.Fatalf("terminal err = %v, want ErrBusClosed", err)
			}
			break
		}
	}
	if _, err := b.Subscribe(SubscribeOptions{}); !errors.Is(err, ErrBusClosed) {
		t.Fatalf("subscribe after close: %v, want ErrBusClosed", err)
	}
}

// TestBusDeliverStampCorrelation: the deliver stamp must land on the
// record that was delivered. The feed's seq space is 0-based while
// trace sequences are 1-based, so feed seq S is trace seq S+1 —
// stamping S instead would annotate the previous record (regression).
func TestBusDeliverStampCorrelation(t *testing.T) {
	sys, rooms, _ := gridSystem(t, 2, t.TempDir(), "alice")
	b := newTestBus(t, sys, BusConfig{})
	sub, err := b.Subscribe(SubscribeOptions{From: sys.ReplicationInfo().TotalSeq})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// A record committed while the subscriber is still catching up is
	// delivered by the catch-up path, which never stamps deliver — only
	// live fan-out does. Keep mutating until a delivered record carries
	// the stamp (the subscriber has spliced to live by then).
	var e obs.TraceEntry
	for i := 0; ; i++ {
		if _, err := sys.Enter(interval.Time(2+i), "alice", rooms[i%2]); err != nil {
			t.Fatal(err)
		}
		live, _ := collect(t, sub, 1)
		var ok bool
		if e, ok = sys.Trace().Trace(live[0].Seq + 1); !ok {
			t.Fatalf("no trace for delivered seq %d", live[0].Seq)
		}
		if e.Stamps[obs.StageDeliver] != 0 {
			break
		}
		if i >= 500 {
			t.Fatalf("no live delivery stamped after %d mutations: %+v", i+1, e.Stamps)
		}
	}
	// The stamp rides the delivered record itself, after its publish —
	// a stamp keyed on the 0-based feed seq would land one record early.
	if pub := e.Stamps[obs.StagePublish]; e.Stamps[obs.StageDeliver] < pub {
		t.Fatalf("deliver %d precedes publish %d", e.Stamps[obs.StageDeliver], pub)
	}
}
