package stream

import (
	"testing"
	"time"

	"repro/internal/interval"
)

// BenchmarkStreamEventReplay measures feed replay throughput: one
// subscriber draining a retained history of committed movement records
// from sequence 0 (decode + filter + queue hand-off per event). ns/op
// is per delivered event.
func BenchmarkStreamEventReplay(b *testing.B) {
	sys, rooms, _ := gridSystem(b, 2, b.TempDir(), "alice")
	const history = 2048
	for i := 0; i < history; i++ {
		if _, err := sys.Enter(interval.Time(2+i), "alice", rooms[i%2]); err != nil {
			b.Fatal(err)
		}
	}
	total := sys.ReplicationInfo().TotalSeq
	bus, err := NewBus(sys, BusConfig{Poll: time.Millisecond})
	if err != nil {
		b.Fatal(err)
	}
	defer bus.Close()

	b.ResetTimer()
	var delivered uint64
	for i := 0; i < b.N; i++ {
		sub, err := bus.Subscribe(SubscribeOptions{From: 0})
		if err != nil {
			b.Fatal(err)
		}
		var got uint64
		for got < total {
			ev, err := sub.Next(nil)
			if err != nil {
				b.Fatal(err)
			}
			if ev.Kind != KindAlert {
				got++
			}
		}
		delivered += got
		sub.Close()
	}
	b.StopTimer()
	if delivered == 0 {
		b.Fatal("no events delivered")
	}
	// Per-event cost is the honest unit for a replay bench.
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(delivered), "ns/event")
}
