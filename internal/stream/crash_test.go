package stream

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/profile"
)

// TestTornStreamAckedPrefixDurable is the ingest crash contract, proved
// at every byte offset: cut the connection after k bytes and the frames
// that arrived complete — exactly the acked prefix — are durable across
// a restart, and nothing else is.
//
// "Complete" includes a frame whose closing newline was cut but whose
// JSON object arrived whole (a strict prefix of a JSON object can never
// parse, so the boundary is unambiguous).
func TestTornStreamAckedPrefixDurable(t *testing.T) {
	// The canonical stream: six valid readings walking two subjects
	// through the 2x2 grid.
	_, _, centers := gridSystem(t, 2, t.TempDir(), "alice", "bob")
	frames := []ObserveFrame{
		{Time: 2, Subject: "alice", X: centers[0].X, Y: centers[0].Y},
		{Time: 3, Subject: "bob", X: centers[0].X, Y: centers[0].Y},
		{Time: 4, Subject: "alice", X: centers[1].X, Y: centers[1].Y},
		{Time: 5, Subject: "bob", X: centers[2].X, Y: centers[2].Y},
		{Time: 6, Subject: "alice", X: centers[3].X, Y: centers[3].Y},
		{Time: 7, Subject: "bob", X: centers[1].X, Y: centers[1].Y},
	}
	var lines [][]byte
	var input []byte
	for _, f := range frames {
		line := frameLine(t, f)
		lines = append(lines, line)
		input = append(input, line...)
	}

	// completeAt(k): how many frames arrived whole in input[:k].
	completeAt := func(k int) uint64 {
		var n uint64
		pos := 0
		for _, line := range lines {
			end := pos + len(line)
			switch {
			case k >= end, k == end-1: // full line, or full JSON minus its newline
				n++
			default:
				return n
			}
			pos = end
		}
		return n
	}

	step := 1
	if testing.Short() {
		step = 7
	}
	for k := 0; k <= len(input); k += step {
		dir := t.TempDir()
		sys, _, _ := gridSystem(t, 2, dir, "alice", "bob")

		var out bytes.Buffer
		ing := &Ingestor{Target: sys, Config: IngestConfig{MaxChunk: 2}}
		if err := ing.Run(bytes.NewReader(input[:k]), &out); err != nil {
			t.Fatalf("k=%d: run: %v", k, err)
		}
		acks := parseAcks(t, out.Bytes())
		final := acks[len(acks)-1]
		want := completeAt(k)
		if final.Acked != want {
			t.Fatalf("k=%d: acked %d frames, %d arrived complete", k, final.Acked, want)
		}
		if got := sys.ReplicationInfo().TotalSeq; final.Seq != got {
			t.Fatalf("k=%d: final ack seq %d != durable frontier %d", k, final.Seq, got)
		}
		if err := sys.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}

		// Restart from the directory: the durable state must be the acked
		// prefix — no more, no less. (No snapshot was ever taken, so the
		// graph config rides along like a fresh ltamd boot would supply.)
		reGraph, reBounds, _, _ := gridParts(t, 2)
		re, err := core.Open(core.Config{Graph: reGraph, Boundaries: reBounds, DataDir: dir})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		if got := re.ReplicationInfo().TotalSeq; got != final.Seq {
			t.Fatalf("k=%d: reopened frontier %d, acked seq %d", k, got, final.Seq)
		}
		// Reference: the acked prefix applied to a fresh system.
		ref, _, _ := gridSystem(t, 2, t.TempDir(), "alice", "bob")
		if want > 0 {
			readings := make([]core.Reading, 0, want)
			for _, f := range frames[:want] {
				readings = append(readings, core.Reading{Time: f.Time, Subject: f.Subject, At: geometry.Point{X: f.X, Y: f.Y}})
			}
			outcomes, err := ref.ObserveBatch(readings)
			if err != nil {
				t.Fatalf("k=%d: reference apply: %v", k, err)
			}
			for i, o := range outcomes {
				if o.Err != nil {
					t.Fatalf("k=%d: reference reading %d: %v", k, i, o.Err)
				}
			}
		}
		for _, sub := range []profile.SubjectID{"alice", "bob"} {
			gotLoc, gotIn := re.WhereIs(sub)
			wantLoc, wantIn := ref.WhereIs(sub)
			if gotLoc != wantLoc || gotIn != wantIn {
				t.Fatalf("k=%d: %s at %q/%v after restart, reference %q/%v",
					k, sub, gotLoc, gotIn, wantLoc, wantIn)
			}
		}
		if got, want := re.Movements().Len(), ref.Movements().Len(); got != want {
			t.Fatalf("k=%d: %d movements after restart, reference %d", k, got, want)
		}
		_ = re.Close()
	}
}
