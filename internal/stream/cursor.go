// Durable subscriber cursors: server-kept resume state for the
// committed-event feed. A subscriber names its cursor with an opaque
// token (cursor=<token> on /v1/stream/events); after consuming events
// it acks the highest event sequence it has durably processed
// (POST /v1/stream/ack), and a later subscribe with the same token —
// and no explicit from= — resumes at acked+1. The client no longer has
// to remember seq across restarts: kill -9 the watcher, start it again
// with only its token, and delivery stays exactly-once up to the acked
// point (the un-acked suffix is redelivered, the same at-least-once
// window every resume protocol has below its ack).
//
// Cursors persist in a sidecar JSON file next to the node's log
// (cursors.json), rewritten atomically (tmp + rename) on every advance.
// A sidecar rather than a WAL record because cursors are subscriber
// state, not facility state: they must not perturb the replicated
// sequence space (a follower serves cursors too, and followers cannot
// append to the WAL), and replaying the WAL must not resurrect stale
// cursor positions.
package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// maxCursors bounds the registry; beyond it the cursor with the oldest
// update is evicted (its client degrades to an explicit from= resume).
const maxCursors = 4096

// cursorEntry is one persisted cursor.
type cursorEntry struct {
	Acked uint64 `json:"acked"`
	// Gen orders entries by recency of update for bounded eviction —
	// a registry-local logical clock, not wall time.
	Gen uint64 `json:"gen"`
}

// CursorRegistry maps subscriber cursor tokens to acked event
// sequences. Safe for concurrent use. With an empty path it is
// memory-only (tests; ephemeral nodes) — same semantics, no restarts.
type CursorRegistry struct {
	mu   sync.Mutex
	path string
	m    map[string]cursorEntry
	gen  uint64
}

// OpenCursors loads (or initializes) the cursor registry persisted at
// path. A missing or unreadable file starts empty: cursor loss degrades
// a subscriber to from=0, it never corrupts the feed.
func OpenCursors(path string) *CursorRegistry {
	r := &CursorRegistry{path: path, m: make(map[string]cursorEntry)}
	if path == "" {
		return r
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return r
	}
	var m map[string]cursorEntry
	if json.Unmarshal(data, &m) == nil {
		r.m = m
		if r.m == nil {
			r.m = make(map[string]cursorEntry)
		}
		for _, e := range r.m {
			if e.Gen > r.gen {
				r.gen = e.Gen
			}
		}
	}
	return r
}

// Resume returns the acked sequence recorded for token, and whether the
// token is known. A fresh subscribe with a known token starts at
// acked+1.
func (r *CursorRegistry) Resume(token string) (acked uint64, ok bool) {
	if r == nil || token == "" {
		return 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[token]
	return e.Acked, ok
}

// Ack advances token's cursor to seq (monotonic: a stale ack is a
// no-op, not a rewind) and persists the registry. Returns the cursor's
// resulting acked sequence.
func (r *CursorRegistry) Ack(token string, seq uint64) (uint64, error) {
	if token == "" {
		return 0, fmt.Errorf("stream: ack requires a cursor token")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.m[token]
	if ok && seq <= e.Acked {
		return e.Acked, nil
	}
	if !ok && len(r.m) >= maxCursors {
		r.evictOldestLocked()
	}
	r.gen++
	r.m[token] = cursorEntry{Acked: seq, Gen: r.gen}
	if err := r.persistLocked(); err != nil {
		return seq, err
	}
	return seq, nil
}

// Len reports the number of tracked cursors.
func (r *CursorRegistry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.m)
}

// evictOldestLocked drops the least-recently-updated cursor. Callers
// hold r.mu.
func (r *CursorRegistry) evictOldestLocked() {
	var oldest string
	var oldestGen uint64
	first := true
	for k, e := range r.m {
		if first || e.Gen < oldestGen {
			oldest, oldestGen, first = k, e.Gen, false
		}
	}
	if !first {
		delete(r.m, oldest)
	}
}

// persistLocked rewrites the sidecar atomically: marshal with sorted
// keys (encoding/json sorts map keys, keeping the file diffable), write
// a temp file in the same directory, fsync, rename over the old file.
// Callers hold r.mu.
func (r *CursorRegistry) persistLocked() error {
	if r.path == "" {
		return nil
	}
	data, err := json.Marshal(r.m)
	if err != nil {
		return fmt.Errorf("stream: marshal cursors: %w", err)
	}
	dir := filepath.Dir(r.path)
	tmp, err := os.CreateTemp(dir, ".cursors-*.tmp")
	if err != nil {
		return fmt.Errorf("stream: persist cursors: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: persist cursors: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("stream: persist cursors: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("stream: persist cursors: %w", err)
	}
	if err := os.Rename(tmp.Name(), r.path); err != nil {
		return fmt.Errorf("stream: persist cursors: %w", err)
	}
	return nil
}

// Tokens returns the tracked tokens sorted (tests and debugging).
func (r *CursorRegistry) Tokens() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.m))
	for k := range r.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
