package stream

import (
	"testing"
	"time"

	"repro/internal/core"
)

// TestBusAlertOnlyDecodeFastPath: when every live subscriber filters to
// kinds=alert, the pump skips decoding committed records entirely (the
// skipped-decode counter moves), alerts still arrive, and the moment a
// record-hungry subscriber joins, records are decoded and delivered
// again — the skip is an optimization, never a loss.
func TestBusAlertOnlyDecodeFastPath(t *testing.T) {
	sys, rooms, centers := gridSystem(t, 2, t.TempDir(), "alice")
	b := newTestBus(t, sys, BusConfig{})

	alertSub, err := b.Subscribe(SubscribeOptions{
		From:   sys.ReplicationInfo().TotalSeq,
		Filter: Filter{Kinds: []EventKind{KindAlert}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer alertSub.Close()
	deadline := time.Now().Add(5 * time.Second)
	for b.Stats().Subscribers == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Stats().Subscribers == 0 {
		t.Fatal("alert-only subscription never went live")
	}

	// Records land while only the alert-only subscriber watches: their
	// decode must be skipped.
	if _, err := sys.Enter(2, "alice", rooms[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Enter(3, "alice", rooms[1]); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(5 * time.Second)
	for b.Stats().DecodeSkips == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := b.Stats().DecodeSkips; got == 0 {
		t.Fatal("no decodes skipped with an alert-only-subscriber bus")
	}

	// Alerts still flow: eve tailgates, the alert-only feed gets it.
	if _, err := sys.ObserveBatch([]core.Reading{{Time: 4, Subject: "eve", At: centers[0]}}); err != nil {
		t.Fatal(err)
	}
	timeout := make(chan struct{})
	go func() { time.Sleep(10 * time.Second); close(timeout) }()
	ev, err := alertSub.Next(timeout)
	if err != nil {
		t.Fatalf("alert after skipped records: %v", err)
	}
	if ev.Kind != KindAlert || ev.Subject != "eve" {
		t.Fatalf("alert feed delivered %+v", ev)
	}

	// A record-hungry subscriber from 0 replays everything the fast path
	// skipped — the records were never lost, only their live decode.
	total := sys.ReplicationInfo().TotalSeq
	recSub, err := b.Subscribe(SubscribeOptions{From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer recSub.Close()
	records, _ := collect(t, recSub, int(total))
	for i, ev := range records {
		if ev.Seq != uint64(i) {
			t.Fatalf("record %d has seq %d: gap in the replay of skipped records", i, ev.Seq)
		}
		if ev.Record == nil {
			t.Fatalf("record %d delivered without its WAL record: %+v", i, ev)
		}
	}

	// Live delivery with a mixed population: the fast path must stand
	// down (the record-hungry subscriber needs the decode). Wait for the
	// catch-up → live splice first — until then the subscriber drains the
	// log itself and the pump may legitimately keep skipping.
	deadline = time.Now().Add(5 * time.Second)
	for b.Stats().Subscribers < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if b.Stats().Subscribers < 2 {
		t.Fatal("record subscriber never spliced to live")
	}
	skipsBefore := b.Stats().DecodeSkips
	if _, err := sys.Enter(5, "alice", rooms[2]); err != nil {
		t.Fatal(err)
	}
	live, _ := collect(t, recSub, 1)
	if live[0].Kind != KindEnter || live[0].Location != rooms[2] || live[0].Record == nil {
		t.Fatalf("live event after fast path stood down = %+v", live[0])
	}
	if got := b.Stats().DecodeSkips; got != skipsBefore {
		t.Fatalf("decode skipped (%d -> %d) while a record-hungry subscriber was live", skipsBefore, got)
	}
}
