package stream

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/interval"
)

// TestBusAlertBacklogGapNotice is the silent-truncation regression: when
// the bounded audit log has dropped alerts a backlog subscriber asked
// for, the feed must say so IN BAND — a non-terminal KindError frame
// naming the oldest alert seq the replay can resume at — before the
// surviving backlog, instead of skipping the gap silently. The frame
// must not end the stream: the retained backlog and live alerts follow.
func TestBusAlertBacklogGapNotice(t *testing.T) {
	g, bounds, _, centers := gridParts(t, 2)
	sys, err := core.Open(core.Config{
		Graph:      g,
		Boundaries: bounds,
		DataDir:    t.TempDir(),
		AlertLimit: 2, // tiny backlog so a handful of alerts truncates it
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })

	// Unauthorized movement by eve raises alerts until the bounded log
	// provably dropped some (OldestRetained moves past seq 1).
	for i := 0; sys.Alerts().OldestRetained() <= 1; i++ {
		if i >= 16 {
			t.Fatal("setup: alert log never truncated")
		}
		if _, err := sys.ObserveBatch([]core.Reading{
			{Time: interval.Time(2 + i), Subject: "eve", At: centers[i%len(centers)]},
		}); err != nil {
			t.Fatal(err)
		}
	}
	oldest := sys.Alerts().OldestRetained()
	retained := sys.Alerts().All()
	if len(retained) == 0 {
		t.Fatal("setup: no retained alerts")
	}

	b := newTestBus(t, sys, BusConfig{})
	zero := uint64(0)
	sub, err := b.Subscribe(SubscribeOptions{
		From:        sys.ReplicationInfo().TotalSeq,
		AlertsSince: &zero, // asks for alert seq 1.. — provably truncated
		Filter:      Filter{Kinds: []EventKind{KindAlert}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	timeout := make(chan struct{})
	go func() { time.Sleep(10 * time.Second); close(timeout) }()

	// First frame: the gap notice. Seq 0 + AlertSeq distinguish it from
	// the terminal KindError shapes (eviction, shutdown), which carry a
	// record Seq.
	ev, err := sub.Next(timeout)
	if err != nil {
		t.Fatalf("gap notice: %v", err)
	}
	if ev.Kind != KindError || ev.Seq != 0 || ev.AlertSeq != oldest {
		t.Fatalf("first frame = %+v, want KindError with Seq 0, AlertSeq %d", ev, oldest)
	}
	if ev.Error == "" {
		t.Fatal("gap notice carries no explanation")
	}

	// The surviving backlog follows, in order, starting exactly at the
	// seq the notice promised.
	for i, want := range retained {
		got, err := sub.Next(timeout)
		if err != nil {
			t.Fatalf("backlog alert %d: %v", i, err)
		}
		if got.Kind != KindAlert || got.AlertSeq != want.Seq {
			t.Fatalf("backlog alert %d = %+v, want AlertSeq %d", i, got, want.Seq)
		}
	}

	// Non-terminal: a live alert still arrives on the same subscription.
	if _, err := sys.ObserveBatch([]core.Reading{
		{Time: 60, Subject: "eve", At: centers[0]},
	}); err != nil {
		t.Fatal(err)
	}
	live, err := sub.Next(timeout)
	if err != nil {
		t.Fatalf("live alert after gap notice: %v", err)
	}
	if live.Kind != KindAlert || live.AlertSeq <= retained[len(retained)-1].Seq {
		t.Fatalf("live alert = %+v: duplicate or out of order", live)
	}
	if sub.Err() != nil {
		t.Fatalf("gap notice terminated the subscription: %v", sub.Err())
	}
}
