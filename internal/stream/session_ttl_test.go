package stream

import (
	"testing"
	"time"
)

// backdate moves a detached session's idle clock into the past, so TTL
// tests need no sleeps.
func backdate(s *IngestSession, d time.Duration) {
	s.mu.Lock()
	s.idleSince = time.Now().Add(-d)
	s.mu.Unlock()
}

// TestSessionRegistryIdleTTLEviction is the session-leak regression: a
// detached, fully-acked session must be reclaimed once idle past the
// TTL, and a client presenting the evicted token afterwards gets a
// FRESH session — Applied restarts at 0 (the documented at-least-once
// degradation), never a stale high-water that would falsely dedupe its
// re-sent frames.
func TestSessionRegistryIdleTTLEviction(t *testing.T) {
	var reg SessionRegistry
	sess := reg.Get("tok")
	sess.advanceApplied(42)
	sess.hw.Store(42)

	// Attached: never evictable, no matter how stale the registry thinks
	// it is.
	c := &ingestConn{}
	sess.attach(c)
	backdate(sess, 2*DefaultSessionIdleTTL) // no-op: attach zeroes idleSince
	if n := reg.SweepIdle(); n != 1 {
		t.Fatalf("attached session swept: %d live, want 1", n)
	}

	// Detached but inside the TTL: retained.
	sess.detach(c)
	if n := reg.SweepIdle(); n != 1 {
		t.Fatalf("fresh detached session swept: %d live, want 1", n)
	}

	// Idle past the TTL with un-acked gathered frames (hw ahead of
	// applied): retained — evicting it would double-apply the client's
	// re-send.
	sess.hw.Store(50)
	backdate(sess, 2*DefaultSessionIdleTTL)
	if n := reg.SweepIdle(); n != 1 {
		t.Fatalf("session with un-acked frames swept: %d live, want 1", n)
	}

	// Fully acked and idle past the TTL: reclaimed.
	sess.advanceApplied(50)
	if n := reg.SweepIdle(); n != 0 {
		t.Fatalf("idle session not swept: %d live, want 0", n)
	}
	if got := reg.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}

	// The evicted token resumes as a brand-new session.
	again := reg.Get("tok")
	if again == sess {
		t.Fatal("evicted token returned the old session")
	}
	if got := again.Applied(); got != 0 {
		t.Fatalf("fresh session Applied = %d, want 0", got)
	}
}

// TestSessionRegistryInlineSweep: the serving path itself (Get) runs the
// sweep — no background goroutine — so idle sessions are reclaimed by
// ordinary traffic on other tokens.
func TestSessionRegistryInlineSweep(t *testing.T) {
	reg := SessionRegistry{IdleTTL: time.Millisecond}
	sess := reg.Get("stale")
	c := &ingestConn{}
	sess.attach(c)
	sess.detach(c)
	backdate(sess, time.Hour)
	// Rewind the rate limiter so the next Get sweeps immediately.
	reg.mu.Lock()
	reg.lastSweep = time.Time{}
	reg.mu.Unlock()

	reg.Get("other") // unrelated traffic triggers the inline sweep
	if got := reg.Evictions(); got != 1 {
		t.Fatalf("evictions after inline sweep = %d, want 1", got)
	}
	if n := reg.Len(); n != 1 {
		t.Fatalf("live sessions = %d, want 1 (just %q)", n, "other")
	}
}

// TestSessionRegistryOverflowEvictsDetached: at the registry cap, a new
// token displaces a detached session (counted as an eviction) and never
// an attached one.
func TestSessionRegistryOverflowEvictsDetached(t *testing.T) {
	var reg SessionRegistry
	// Fill to the cap: one attached session plus detached filler.
	attached := reg.Get("attached")
	attached.attach(&ingestConn{})
	for i := 0; len(reg.m) < maxSessions; i++ {
		s := reg.Get(string(rune('a')) + time.Duration(i).String())
		c := &ingestConn{}
		s.attach(c)
		s.detach(c)
	}

	newcomer := reg.Get("newcomer")
	if newcomer == nil {
		t.Fatal("registry refused a new session at the cap")
	}
	if reg.Evictions() == 0 {
		t.Fatal("overflow did not count an eviction")
	}
	// The attached session must have survived the displacement.
	if reg.Get("attached") != attached {
		t.Fatal("overflow evicted an attached session")
	}
}
