package stream

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/replicatest"
)

// TestSubscriberReplayReconstructsPrimary is the feed's equivalence
// bar: an unfiltered subscriber that replays every event's Record from
// sequence 0 through core.Replica.ApplyRecord reconstructs a System
// whose query answers byte-match a fresh primary-side recomputation.
// Seeded and randomized: grants, revocations, batched movements, ticks
// and profile churn all ride the feed.
func TestSubscriberReplayReconstructsPrimary(t *testing.T) {
	const seed = 443
	rng := rand.New(rand.NewSource(seed))

	g, bounds, centers := replicatest.GridSite(t, 3)
	sys, err := core.Open(core.Config{Graph: g, Boundaries: bounds, DataDir: t.TempDir(), AutoDerive: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	rooms := sys.Flat().Nodes

	// The follower bootstraps at sequence 0, BEFORE any history exists:
	// its entire state will come off the event feed.
	rep, err := core.NewReplica(&core.LocalSource{Primary: sys})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	if rep.AppliedSeq() != 0 {
		t.Fatalf("follower bootstrapped at seq %d, want 0", rep.AppliedSeq())
	}

	// Randomized history on the primary.
	subs := make([]profile.SubjectID, 6)
	for i := range subs {
		subs[i] = profile.SubjectID(fmt.Sprintf("u%d", i))
		if err := sys.PutSubject(profile.Subject{ID: subs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	var granted []authz.ID
	clock := interval.Time(2)
	for i := 0; i < 200; i++ {
		switch op := rng.Intn(10); {
		case op < 4: // grant
			sub := subs[rng.Intn(len(subs))]
			room := rooms[rng.Intn(len(rooms))]
			start := interval.Time(1 + rng.Intn(5))
			entryLen := interval.Time(20 + rng.Intn(200))
			a, err := sys.AddAuthorization(authz.New(
				interval.New(start, start+entryLen),
				interval.New(start, start+entryLen+interval.Time(rng.Intn(100))),
				sub, room, int64(1+rng.Intn(8))))
			if err != nil {
				t.Fatal(err)
			}
			granted = append(granted, a.ID)
		case op < 5 && len(granted) > 0: // revoke
			j := rng.Intn(len(granted))
			if _, err := sys.RevokeAuthorization(granted[j]); err != nil {
				t.Fatal(err)
			}
			granted = append(granted[:j], granted[j+1:]...)
		case op < 8: // batched movements
			n := 1 + rng.Intn(4)
			readings := make([]core.Reading, 0, n)
			for j := 0; j < n; j++ {
				readings = append(readings, core.Reading{
					Time:    clock,
					Subject: subs[rng.Intn(len(subs))],
					At:      centers[rng.Intn(len(centers))],
				})
			}
			clock++
			outcomes, err := sys.ObserveBatch(readings)
			if err != nil {
				t.Fatal(err)
			}
			_ = outcomes // per-reading errors (regressions) are part of the history
		case op < 9: // tick
			clock += interval.Time(rng.Intn(3))
			if _, err := sys.Tick(clock); err != nil {
				t.Fatal(err)
			}
			clock++
		default: // profile churn
			id := profile.SubjectID(fmt.Sprintf("guest%d", i))
			if err := sys.PutSubject(profile.Subject{ID: id}); err != nil {
				t.Fatal(err)
			}
		}
	}
	total := sys.ReplicationInfo().TotalSeq

	// Subscribe from 0 and replay every record event into the follower.
	b := newTestBus(t, sys, BusConfig{})
	sub, err := b.Subscribe(SubscribeOptions{From: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	done := make(chan struct{})
	go func() { time.Sleep(30 * time.Second); close(done) }()
	for rep.AppliedSeq() < total {
		ev, err := sub.Next(done)
		if err != nil {
			t.Fatalf("feed: %v at applied seq %d of %d", err, rep.AppliedSeq(), total)
		}
		if ev.Kind == KindAlert {
			continue // observations, not state transitions
		}
		if ev.Record == nil {
			t.Fatalf("record event without payload: %+v", ev)
		}
		if ev.Seq != rep.AppliedSeq() {
			t.Fatalf("event seq %d, follower expects %d", ev.Seq, rep.AppliedSeq())
		}
		if err := rep.ApplyRecord(*ev.Record); err != nil {
			t.Fatalf("apply seq %d (%s): %v", ev.Seq, ev.Record.Type, err)
		}
	}

	// The reconstruction serves byte-identical answers to a fresh
	// primary-side recomputation, over the full query battery.
	probe := append([]profile.SubjectID{}, subs...)
	probe = append(probe, "guest3", "nobody")
	want := replicatest.FreshAnswers(sys, probe, rooms, clock)
	got := replicatest.CachedAnswers(rep.System(), probe, rooms, clock)
	if string(got) != string(want) {
		t.Fatalf("replayed follower diverged at seq %d:\nfollower: %s\nprimary:  %s", total, got, want)
	}
}
