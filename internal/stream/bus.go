// The committed-event bus: one shared pump tails the primary's WAL —
// the committed history, in exactly the order every replica applies it —
// decodes each durable record into an Event, and fans it out to
// subscribers. Alerts from the audit log ride the same feed in their own
// sequence space.
//
// Fan-out discipline:
//
//   - One shared storage.Tailer pump serves every subscriber's live
//     phase; it wakes on the System's commit notifications and falls
//     back to polling, so feed latency is bounded by the commit barrier,
//     not a poll interval.
//   - Each subscriber owns a bounded queue. The pump never blocks on a
//     subscriber: a queue that is full when a live event arrives gets
//     the subscriber EVICTED (ErrSlowConsumer, with an in-band KindError
//     frame naming the sequence to resubscribe from). The log is the
//     buffer of record — an evicted client loses nothing by
//     resubscribing from its last seen sequence.
//   - A subscriber behind the live position catches up from the WAL
//     itself on its own goroutine (the log IS the replay buffer), then
//     splices into the live feed under the bus lock with no gap and no
//     duplicate. Only the compaction horizon limits how far back a
//     subscription can start (ErrCompacted → HTTP 410).
package stream

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/storage"
)

// retryJitter sleeps roughly a millisecond, randomized over [0.5ms,
// 1.5ms), before a catch-up retry. The jitter de-synchronizes the many
// catch-up goroutines that all miss the same tail flush at once, so
// they do not re-stampede the log in lockstep.
func retryJitter() {
	time.Sleep(500*time.Microsecond + time.Duration(rand.Int63n(int64(time.Millisecond))))
}

// Bus defaults.
const (
	DefaultSubscriberBuffer = 1024
	DefaultBusPoll          = 25 * time.Millisecond
)

// ErrSlowConsumer reports an eviction: the subscriber's queue was full
// when a live event arrived. Resubscribe from the last seen sequence.
var ErrSlowConsumer = errors.New("stream: slow consumer evicted")

// ErrCompacted reports that the requested range starts before the
// compaction horizon: those records live only inside a snapshot now.
var ErrCompacted = errors.New("stream: requested events compacted into a snapshot")

// ErrBusClosed reports a subscription ended by Bus.Close or
// Subscription.Close.
var ErrBusClosed = errors.New("stream: subscription closed")

// BusConfig tunes the bus. The zero value selects the defaults.
type BusConfig struct {
	// SubscriberBuffer is the per-subscriber queue length (<= 0 selects
	// DefaultSubscriberBuffer). A subscriber whose queue is full when a
	// live event arrives is evicted.
	SubscriberBuffer int
	// Poll is the pump's idle fallback cadence (<= 0 selects
	// DefaultBusPoll); the commit notification channel is the primary
	// wakeup.
	Poll time.Duration
}

// BusStats is a point-in-time snapshot of the bus counters.
type BusStats struct {
	// Subscribers is the live fan-out width; CatchingUp counts
	// subscriptions still replaying history from the log (backpressured,
	// not evictable); TotalSubscribers counts every subscription ever
	// accepted.
	Subscribers      int    `json:"subscribers"`
	CatchingUp       int    `json:"catching_up,omitempty"`
	TotalSubscribers uint64 `json:"total_subscribers"`
	// Published counts committed records the pump decoded onto the feed;
	// Alerts the audit alerts that joined it; Delivered the events
	// actually handed to subscriber queues (catch-up and live).
	Published uint64 `json:"published"`
	Alerts    uint64 `json:"alerts"`
	Delivered uint64 `json:"delivered"`
	// Evicted counts slow-consumer evictions; Lost counts events a
	// compaction removed before the pump could read them.
	Evicted uint64 `json:"evicted"`
	Lost    uint64 `json:"lost,omitempty"`
	// DecodeSkips counts committed records whose event decode was
	// skipped entirely because every consumer at that moment was
	// filtered to alerts only (the monitoring fast path: alert-only
	// watchers cost no record decodes).
	DecodeSkips uint64 `json:"decode_skips,omitempty"`
}

// FeedSource is the log a Bus pumps from: a durable primary's WAL
// (SystemFeed) or a cascading follower's relay log (ReplicaFeed). The
// contract is the WAL's read-then-validate protocol: FeedInfo publishes
// (base, total) under the same lock any truncation holds, the file at
// FeedLogPath holds exactly total-base frames laid out as
// storage.Frame, and a truncation reuses the inode (tailers observe
// ErrWALReset and re-resolve).
type FeedSource interface {
	// FeedInfo reports the log's coordinates: base is the compaction
	// horizon, total the durable/applied frontier. ok is false when the
	// source cannot host a feed right now (no durability, relay broken).
	FeedInfo() (base, total uint64, ok bool)
	// FeedLogPath is the frame log's file path.
	FeedLogPath() string
	// FeedNotify is the frontier wakeup channel (collapsed sends).
	FeedNotify() <-chan struct{}
	// FeedAlerts is the audit log whose alerts ride the feed.
	FeedAlerts() *audit.Log
}

// SystemFeed serves the bus from a durable primary's WAL.
type SystemFeed struct{ Sys *core.System }

func (f SystemFeed) FeedInfo() (uint64, uint64, bool) {
	info := f.Sys.ReplicationInfo()
	return info.BaseSeq, info.TotalSeq, info.Durable
}
func (f SystemFeed) FeedLogPath() string          { return f.Sys.WALPath() }
func (f SystemFeed) FeedNotify() <-chan struct{}  { return f.Sys.CommitNotify() }
func (f SystemFeed) FeedAlerts() *audit.Log       { return f.Sys.Alerts() }
func (f SystemFeed) FeedTrace() *obs.PipelineTrace { return f.Sys.Trace() }

// ReplicaFeed serves the bus from a cascading follower's relay log: the
// follower re-raises every alert deterministically as it applies the
// shipped records (the same dispatch the primary's mutations run), so
// alerts ride the relay-backed feed in the same sequence space as on
// the primary.
type ReplicaFeed struct{ Rep *core.Replica }

func (f ReplicaFeed) FeedInfo() (uint64, uint64, bool) { return f.Rep.RelayInfo() }
func (f ReplicaFeed) FeedLogPath() string {
	if rl := f.Rep.Relay(); rl != nil {
		return rl.Path()
	}
	return ""
}
func (f ReplicaFeed) FeedNotify() <-chan struct{}  { return f.Rep.ApplyNotify() }
func (f ReplicaFeed) FeedAlerts() *audit.Log       { return f.Rep.System().Alerts() }
func (f ReplicaFeed) FeedTrace() *obs.PipelineTrace { return f.Rep.System().Trace() }

// Bus fans the committed-event feed out to subscribers.
type Bus struct {
	src FeedSource
	cfg BusConfig
	// trace receives the deliver stamp for every record fanned out, when
	// the feed source exposes its pipeline trace (see feedTracer).
	trace *obs.PipelineTrace

	mu      sync.Mutex
	subs    map[*Subscription]struct{}
	nextSeq uint64 // the live pump's next record sequence
	pumping bool
	pumpGen uint64
	feeds   int // subscriptions still in their catch-up phase
	closed  bool

	cancelAlerts func()

	totalSubs, published, alertsPub atomic.Uint64
	delivered, evicted, lost        atomic.Uint64
	decodeSkips                     atomic.Uint64
}

// NewBus builds a bus over a durable primary. The WAL is the feed's
// source of truth, so a system without durability cannot host one. (A
// cascading follower hosts a bus over its relay log instead — see
// NewBusFrom and ReplicaFeed.)
func NewBus(sys *core.System, cfg BusConfig) (*Bus, error) {
	if !sys.ReplicationInfo().Durable {
		return nil, errors.New("stream: the event bus requires a durable primary (set Config.DataDir)")
	}
	return NewBusFrom(SystemFeed{Sys: sys}, cfg)
}

// NewBusFrom builds a bus over any frame-log source: the primary's WAL
// or a cascading follower's relay.
func NewBusFrom(src FeedSource, cfg BusConfig) (*Bus, error) {
	if _, _, ok := src.FeedInfo(); !ok {
		return nil, errors.New("stream: the event bus requires a durable feed source (a primary WAL or a follower relay log)")
	}
	if cfg.SubscriberBuffer <= 0 {
		cfg.SubscriberBuffer = DefaultSubscriberBuffer
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultBusPoll
	}
	b := &Bus{src: src, cfg: cfg, subs: make(map[*Subscription]struct{})}
	if ft, ok := src.(feedTracer); ok {
		b.trace = ft.FeedTrace()
	}
	b.cancelAlerts = src.FeedAlerts().Subscribe(b.publishAlert)
	return b, nil
}

// feedTracer is the optional FeedSource face that exposes the node's
// pipeline trace, so bus delivery lands on the same per-sequence stage
// clock as the commit pipeline.
type feedTracer interface {
	FeedTrace() *obs.PipelineTrace
}

// Close detaches the alert feed and terminates every subscription.
func (b *Bus) Close() {
	b.mu.Lock()
	b.closed = true
	b.pumpGen++ // retire the pump
	b.pumping = false
	subs := make([]*Subscription, 0, len(b.subs))
	for s := range b.subs {
		subs = append(subs, s)
	}
	b.subs = make(map[*Subscription]struct{})
	b.mu.Unlock()
	if b.cancelAlerts != nil {
		b.cancelAlerts()
	}
	for _, s := range subs {
		s.fail(ErrBusClosed, Event{Kind: KindError, Seq: s.next, Error: ErrBusClosed.Error()})
	}
}

// Closed reports whether Close has run (readiness: a closed bus serves
// no feeds).
func (b *Bus) Closed() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.closed
}

// Stats reports the bus counters.
func (b *Bus) Stats() BusStats {
	b.mu.Lock()
	live, feeds := len(b.subs), b.feeds
	b.mu.Unlock()
	return BusStats{
		Subscribers:      live,
		CatchingUp:       feeds,
		TotalSubscribers: b.totalSubs.Load(),
		Published:        b.published.Load(),
		Alerts:           b.alertsPub.Load(),
		Delivered:        b.delivered.Load(),
		Evicted:          b.evicted.Load(),
		Lost:             b.lost.Load(),
		DecodeSkips:      b.decodeSkips.Load(),
	}
}

// alertOnly reports a filter that can never match a record event: an
// explicit kind list containing only KindAlert. (KindError frames are
// not pump events, and alerts ride publishAlert — so a subscriber
// behind such a filter needs no record decodes at all.)
func alertOnly(f Filter) bool {
	if len(f.Kinds) == 0 {
		return false
	}
	for _, k := range f.Kinds {
		if k != KindAlert {
			return false
		}
	}
	return true
}

// SubscribeOptions positions and filters one subscription.
type SubscribeOptions struct {
	// From is the first record sequence to deliver. 0 is the
	// start-of-retained-history sentinel: it subscribes from the
	// compaction horizon, wherever it is (never ErrCompacted). An
	// explicit nonzero From below the horizon IS refused — that client
	// tracked a position, and silently skipping the compacted gap would
	// hide real loss from it. The current TotalSeq delivers only new
	// events.
	From uint64
	// Filter drops events the subscriber does not want.
	Filter Filter
	// AlertsSince, when non-nil, additionally delivers the audit log's
	// retained alerts with AlertSeq > *AlertsSince at attach time (the
	// log is bounded, so this is best effort). Nil delivers live alerts
	// only. Either way, alert delivery still requires the filter to
	// admit KindAlert.
	AlertsSince *uint64
	// Buffer overrides the per-subscriber queue length (0 = bus default).
	Buffer int
}

// Subscribe attaches a subscriber. An explicit From before the
// compaction horizon fails with ErrCompacted (the state up to the
// horizon lives in snapshots; bootstrap a replica instead); From 0
// means "everything retained" and clamps to the horizon.
func (b *Bus) Subscribe(opts SubscribeOptions) (*Subscription, error) {
	base, total, _ := b.src.FeedInfo()
	if opts.From == 0 {
		opts.From = base
	}
	if opts.From < base {
		return nil, fmt.Errorf("%w: seq %d precedes the horizon %d; resubscribe from %d",
			ErrCompacted, opts.From, base, base)
	}
	buf := opts.Buffer
	if buf <= 0 {
		buf = b.cfg.SubscriberBuffer
	}
	s := &Subscription{
		bus:    b,
		filter: opts.Filter,
		q:      make(chan Event, buf),
		quit:   make(chan struct{}),
		next:   opts.From,
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrBusClosed
	}
	b.feeds++
	b.totalSubs.Add(1)
	if !b.pumping {
		// The pump serves only the LIVE edge: it resumes at the durable
		// head, and a subscriber behind it catches up from the log itself
		// (blocking sends — backpressure), so a long replay can never
		// flood the live queues and evict its own subscriber.
		b.startPumpLocked(total)
	}
	b.mu.Unlock()
	go s.feed(opts.AlertsSince)
	return s, nil
}

// resolveTailer opens the live log positioned at global sequence next,
// given the base the caller observed. It validates AFTER the skip — the
// same read-then-validate stance as the replication stream handler —
// that no compaction raced the positioning: `Truncate` reuses the inode
// and frames carry no sequence numbers, so only an unchanged BaseSeq
// proves the skipped frames were the intended ones (a short skip is the
// same interference seen from the other side: every frame below the
// durable frontier is fully on disk, so an honest file never runs out).
// Returns nil on any interference; the caller retries after re-reading
// ReplicationInfo.
func (b *Bus) resolveTailer(next, base uint64) *storage.Tailer {
	nt, err := storage.OpenTailer(b.src.FeedLogPath())
	if err != nil {
		return nil
	}
	want := next - base
	n, err := nt.Skip(want)
	curBase, _, ok := b.src.FeedInfo()
	if err != nil || n != want || !ok || curBase != base {
		nt.Close()
		return nil
	}
	return nt
}

// startPumpLocked boots the shared live pump at record sequence `at`.
// Callers hold b.mu.
func (b *Bus) startPumpLocked(at uint64) {
	b.pumping = true
	b.nextSeq = at
	b.pumpGen++
	go b.pump(b.pumpGen)
}

// pump is the shared live loop: follow the durable frontier of the WAL,
// decode each record once, fan it out. It exits when the bus goes idle
// (no subscribers, no catch-ups) or a newer generation replaces it.
func (b *Bus) pump(gen uint64) {
	var t *storage.Tailer
	var base uint64
	defer func() {
		if t != nil {
			t.Close()
		}
	}()
	notify := b.src.FeedNotify()
	for {
		b.mu.Lock()
		if b.pumpGen != gen {
			b.mu.Unlock()
			return
		}
		if len(b.subs) == 0 && b.feeds == 0 {
			b.pumping = false
			b.mu.Unlock()
			return
		}
		next := b.nextSeq
		b.mu.Unlock()

		srcBase, srcTotal, ok := b.src.FeedInfo()
		if !ok {
			// The source cannot serve right now (a follower relay latched
			// a write failure): stall rather than publish wrong data.
			select {
			case <-notify:
			case <-time.After(b.cfg.Poll):
			}
			continue
		}
		if t == nil || base != srcBase {
			if t != nil {
				t.Close()
				t = nil
			}
			if next < srcBase {
				// A compaction consumed records the pump had not read yet:
				// those events are gone from the feed (the state they
				// built is in the snapshot). Count and move on.
				b.lost.Add(srcBase - next)
				b.mu.Lock()
				if b.pumpGen == gen && b.nextSeq < srcBase {
					b.nextSeq = srcBase
				}
				b.mu.Unlock()
				next = srcBase
			}
			if nt := b.resolveTailer(next, srcBase); nt != nil {
				t, base = nt, srcBase
			}
		}

		progressed := false
		if t != nil {
			limit := srcTotal - base // ship only durable records
			for t.Seq() < limit {
				body, err := t.NextBody()
				if err != nil {
					// ErrNoRecord: the durable frontier outran the visible
					// file for a moment; ErrWALReset (or anything else):
					// re-resolve the base next round.
					if !errors.Is(err, storage.ErrNoRecord) {
						t.Close()
						t = nil
					}
					break
				}
				seq := base + t.Seq() - 1
				if b.publishSkipped(gen, seq) {
					// Alert-only fast path: nobody live can match a record
					// event, so neither the record nor the event was decoded.
					progressed = true
					continue
				}
				var rec storage.Record
				var ev Event
				derr := json.Unmarshal(body, &rec)
				if derr == nil {
					ev, derr = DecodeEvent(seq, rec)
				}
				if derr != nil {
					// Undecodable records still occupy their sequence slot;
					// skip it rather than stalling the feed.
					b.lost.Add(1)
					ev = Event{}
				}
				b.publishRecord(gen, seq, ev, derr == nil)
				progressed = true
			}
		}
		if !progressed {
			select {
			case <-notify:
			case <-time.After(b.cfg.Poll):
			}
		}
	}
}

// publishSkipped is the alert-only fast path: when every live
// subscriber is filtered to alerts only, a record event can match no
// one — so the pump advances past seq WITHOUT decoding the record at
// all. The check and the advance happen under one lock acquisition
// (publishAlert and Subscribe take the same lock), so a record-hungry
// subscriber can never register between them; it returns false when
// such a subscriber exists and the caller must decode and publish
// normally.
func (b *Bus) publishSkipped(gen, seq uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pumpGen != gen {
		return true // retired pump: the replacement re-reads this record
	}
	for sub := range b.subs {
		if !alertOnly(sub.filter) {
			return false
		}
	}
	b.nextSeq = seq + 1
	for sub := range b.subs {
		if seq >= sub.next {
			sub.next = seq + 1
		}
	}
	b.decodeSkips.Add(1)
	return true
}

// publishRecord advances the live position past seq and fans ev out to
// every live subscriber (when ok). Delivery never blocks: a full queue
// evicts its subscriber.
func (b *Bus) publishRecord(gen, seq uint64, ev Event, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.pumpGen != gen {
		return
	}
	b.nextSeq = seq + 1
	if !ok {
		return
	}
	b.published.Add(1)
	// The feed's seq space is 0-based; trace sequences are 1-based
	// (seq 0 is the untraced sentinel), so feed seq N is trace seq N+1.
	b.trace.Stamp(seq+1, obs.StageDeliver, obs.Now())
	for sub := range b.subs {
		if seq < sub.next {
			continue // its catch-up already delivered this one
		}
		if !sub.filter.Match(ev) {
			sub.next = seq + 1
			continue
		}
		select {
		case sub.q <- ev:
			sub.next = seq + 1
			b.delivered.Add(1)
		default:
			// The cursor must NOT advance past the dropped event: the
			// eviction notice names sub.next as the resume point, and seq
			// is the first sequence this subscriber never received.
			sub.next = seq
			b.evictLocked(sub)
		}
	}
}

// publishAlert fans one audit alert out to the live subscribers. It runs
// synchronously on the raising goroutine (inside the mutation), so an
// alert always precedes the record event of the movement that raised it.
func (b *Bus) publishAlert(a audit.Alert) {
	ev := alertEvent(a)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.alertsPub.Add(1)
	for sub := range b.subs {
		if sub.alertGate || a.Seq <= sub.lastAlert {
			// Gated: the subscription is still delivering its retained
			// backlog; this alert is in the log and the backlog loop will
			// pick it up in order.
			continue
		}
		sub.lastAlert = a.Seq
		if !sub.filter.Match(ev) {
			continue
		}
		select {
		case sub.q <- ev:
			b.delivered.Add(1)
		default:
			b.evictLocked(sub)
		}
	}
}

// alertEvent is the feed shape of one audit alert.
func alertEvent(a audit.Alert) Event {
	return Event{
		Kind:     KindAlert,
		Time:     a.Time,
		Subject:  a.Subject,
		Location: a.Location,
		AlertSeq: a.Seq,
		Alert:    &a,
	}
}

// evictLocked removes a slow consumer. Callers hold b.mu and must have
// left sub.next at the first UNDELIVERED sequence — it is the resume
// coordinate the terminal frame promises.
func (b *Bus) evictLocked(sub *Subscription) {
	delete(b.subs, sub)
	b.evicted.Add(1)
	err := fmt.Errorf("%w at seq %d; resubscribe from there", ErrSlowConsumer, sub.next)
	go sub.fail(err, Event{Kind: KindError, Seq: sub.next, Error: err.Error()})
}

// remove detaches sub (Subscription.Close).
func (b *Bus) remove(sub *Subscription) {
	b.mu.Lock()
	delete(b.subs, sub)
	b.mu.Unlock()
}

// --- Subscription --------------------------------------------------------

// Subscription is one subscriber's end of the feed.
type Subscription struct {
	bus    *Bus
	filter Filter
	q      chan Event
	quit   chan struct{}

	failOnce sync.Once
	err      atomic.Pointer[error]
	// terminal holds the latched in-band closing frame (eviction notice,
	// bus shutdown); Next hands it out after the queue drains, so it can
	// never be lost to a full queue.
	terminal atomic.Pointer[Event]

	// next is the next record sequence this subscriber needs. Owned by
	// the feed goroutine during catch-up, by the pump (under bus.mu)
	// once live. lastAlert is the same cursor for the alert space;
	// alertGate suppresses live alert delivery while the retained
	// backlog is still being replayed (both under bus.mu).
	next      uint64
	lastAlert uint64
	alertGate bool
}

// fail terminates the subscription: latch the error and the in-band
// terminal frame, wake every reader. The frame is handed out by Next
// after the queued events drain — NOT enqueued, because the queue being
// full is exactly how evictions happen.
func (s *Subscription) fail(err error, terminal Event) {
	s.failOnce.Do(func() {
		s.err.Store(&err)
		if terminal.Kind != "" {
			s.terminal.Store(&terminal)
		}
		close(s.quit)
	})
}

// Err returns the terminal error once the subscription has ended.
func (s *Subscription) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Close detaches the subscription. Pending events are discarded; a
// Close during catch-up stops the feed goroutine via quit, which also
// releases its pending-feed count.
func (s *Subscription) Close() {
	s.bus.remove(s)
	s.fail(ErrBusClosed, Event{})
}

// Next returns the next event. Queued events are always drained before a
// terminal error is reported, so an evicted subscriber still sees its
// in-band KindError frame. done, when non-nil, aborts the wait (e.g. an
// HTTP request's Context().Done()).
func (s *Subscription) Next(done <-chan struct{}) (Event, error) {
	// Drain before reporting termination.
	select {
	case ev := <-s.q:
		return ev, nil
	default:
	}
	select {
	case ev := <-s.q:
		return ev, nil
	case <-s.quit:
		// Raced delivery: drain once more.
		select {
		case ev := <-s.q:
			return ev, nil
		default:
		}
		// The queue is dry: hand out the latched terminal frame (once),
		// then the terminal error.
		if t := s.terminal.Swap(nil); t != nil {
			return *t, nil
		}
		if err := s.Err(); err != nil {
			return Event{}, err
		}
		return Event{}, ErrBusClosed
	case <-done:
		return Event{}, errors.New("stream: subscriber canceled")
	}
}

// Pending reports how many events are queued — the HTTP handler flushes
// its response when the queue drains.
func (s *Subscription) Pending() int { return len(s.q) }

// closedNow reports whether the subscription already terminated.
func (s *Subscription) closedNow() bool {
	select {
	case <-s.quit:
		return true
	default:
		return false
	}
}

// feed is the catch-up goroutine: read [next, live) straight from the
// WAL — the log is the replay buffer — then splice into the live feed
// under the bus lock with no gap and no duplicate.
func (s *Subscription) feed(alertsSince *uint64) {
	b := s.bus
	var t *storage.Tailer
	var base uint64
	defer func() {
		if t != nil {
			t.Close()
		}
		b.mu.Lock()
		b.feeds--
		b.mu.Unlock()
	}()

	send := func(ev Event) bool {
		select {
		case s.q <- ev:
			b.delivered.Add(1)
			return true
		case <-s.quit:
			return false
		}
	}

	for {
		if s.closedNow() {
			return
		}
		// Try to go live: if the shared pump's position is at (or before)
		// ours, registration is gap-free — the pump skips below s.next.
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			s.fail(ErrBusClosed, Event{})
			return
		}
		if s.next >= b.nextSeq {
			// Position the alert cursor: explicit resume point (backlog
			// replay, gated below), or "live only" = everything already
			// retained is old news.
			alerts := b.src.FeedAlerts()
			var cursor uint64
			if alertsSince != nil {
				cursor = *alertsSince
				s.alertGate = true
			} else {
				s.lastAlert = alerts.LastSeq()
			}
			b.subs[s] = struct{}{}
			b.mu.Unlock()
			if alertsSince == nil {
				return
			}
			// Replay the retained-alert backlog in order. The gate makes
			// live alerts wait their turn: while it is up, publishAlert
			// skips this subscription, and anything raised meanwhile is in
			// the log for the next round. The gate drops only in a round
			// that proved (under the bus lock, where publishAlert runs)
			// that the log holds nothing past the cursor — so the splice
			// to live delivery has no gap, no duplicate, and no reordering.
			for {
				// The audit log is bounded: a cursor behind its retention
				// horizon has provably lost alerts. Unlike the record
				// path — where ErrCompacted/410 refuses the subscription —
				// the alert backlog is documented as best-effort, so the
				// loss is reported IN BAND: a non-terminal KindError frame
				// (Seq 0, AlertSeq = the oldest seq the replay can resume
				// at) precedes the surviving backlog instead of the gap
				// being skipped silently.
				if oldest := alerts.OldestRetained(); cursor+1 < oldest {
					err := fmt.Errorf("stream: alert backlog truncated: alerts %d..%d dropped by the bounded audit log; replay resumes at alert seq %d",
						cursor+1, oldest-1, oldest)
					if !send(Event{Kind: KindError, AlertSeq: oldest, Error: err.Error()}) {
						return
					}
					cursor = oldest - 1
				}
				for _, a := range alerts.Since(cursor) {
					cursor = a.Seq
					if ev := alertEvent(a); s.filter.Match(ev) && !send(ev) {
						return
					}
				}
				b.mu.Lock()
				if alerts.LastSeq() <= cursor {
					s.lastAlert = cursor
					s.alertGate = false
					b.mu.Unlock()
					return
				}
				b.mu.Unlock()
			}
		}
		target := b.nextSeq
		b.mu.Unlock()

		// Catch up from the log: every record below target is durable and
		// on disk (the pump read it from this same file), unless a
		// compaction truncated it away — then re-resolve.
		srcBase, _, ok := b.src.FeedInfo()
		if !ok {
			retryJitter()
			continue
		}
		if t == nil || base != srcBase {
			if t != nil {
				t.Close()
				t = nil
			}
			if s.next < srcBase {
				err := fmt.Errorf("%w: seq %d precedes the horizon %d; resubscribe from %d",
					ErrCompacted, s.next, srcBase, srcBase)
				s.fail(err, Event{Kind: KindError, Seq: srcBase, Error: err.Error()})
				return
			}
			nt := b.resolveTailer(s.next, srcBase)
			if nt == nil {
				retryJitter()
				continue
			}
			t, base = nt, srcBase
		}
		skipDecodes := alertOnly(s.filter)
		for s.next < target {
			if skipDecodes {
				// Alert-only subscriber: no record event below target can
				// match its filter, so the catch-up consumes the frames
				// without decoding records or events at all.
				if _, err := t.NextBody(); err != nil {
					t.Close()
					t = nil
					retryJitter()
					break
				}
				s.next++
				b.decodeSkips.Add(1)
				continue
			}
			rec, err := t.Next()
			if err != nil {
				// Any miss — including ErrNoRecord, which an uninterfered
				// file cannot produce here (every record below target is
				// durable and on disk) — means the log changed underneath
				// us. Re-resolve from the top of the loop, which also
				// re-checks closedNow, instead of spinning on this fd.
				t.Close()
				t = nil
				retryJitter()
				break
			}
			ev, derr := DecodeEvent(s.next, rec)
			s.next++
			if derr != nil {
				continue // same stance as the pump: skip the slot
			}
			if !s.filter.Match(ev) {
				continue
			}
			if !send(ev) {
				return
			}
		}
	}
}
