// Ingest codecs: the framing of one ingest connection, abstracted so
// the chunker never knows what bytes look like on the wire. NDJSON is
// the default and the debugging surface (one JSON object per line, the
// format this package launched with); the negotiated binary framing
// lives in internal/wire/frame and plugs into the same two interfaces.
//
// Both codecs share one crash contract: a frame is applied if and only
// if it arrived complete. A torn tail — a cut line, a cut binary frame,
// a checksum mismatch — ends the input exactly at the last complete
// frame; it is an end of stream, not an error, and the acked prefix
// stands. The torn-stream tests assert this at every byte offset for
// both framings.
package stream

import (
	"bufio"
	"encoding/json"
	"io"

	"repro/internal/storage"
)

// FrameReader decodes the client→server side of an ingest connection.
// Implementations are driven by one goroutine.
type FrameReader interface {
	// ReadFrame decodes the next observe frame into f. Any error ends
	// the input: io.EOF for a clean end, anything else for a torn or
	// garbage tail — in every case the complete prefix before the error
	// is what the connection delivered, and it will be applied and
	// acked.
	ReadFrame(f *ObserveFrame) error
}

// AckWriter encodes the server→client side: cumulative Ack frames.
// WriteAck must deliver (flush) the ack — the client uses each one as a
// durable-position statement, so buffering an ack indefinitely would
// lie about the frontier. Implementations are driven by one goroutine.
type AckWriter interface {
	WriteAck(a *Ack) error
}

// NDJSONFrameReader reads ObserveFrame lines (one JSON object per
// line). A line that does not parse is a torn tail: a strict prefix of
// a JSON object is never valid JSON, so an incomplete line cannot be
// mistaken for a frame.
type NDJSONFrameReader struct {
	sc *bufio.Scanner
}

// NewNDJSONFrameReader wraps r in the line decoder.
func NewNDJSONFrameReader(r io.Reader) *NDJSONFrameReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), int(storage.MaxFrameSize))
	return &NDJSONFrameReader{sc: sc}
}

// ReadFrame decodes the next line into f.
func (r *NDJSONFrameReader) ReadFrame(f *ObserveFrame) error {
	for r.sc.Scan() {
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		*f = ObserveFrame{}
		if err := json.Unmarshal(line, f); err != nil {
			return err // torn or garbage line: the prefix stands
		}
		return nil
	}
	if err := r.sc.Err(); err != nil {
		return err
	}
	return io.EOF
}

// NDJSONAckWriter writes Ack lines, flushing each one.
type NDJSONAckWriter struct {
	bw *bufio.Writer
}

// NewNDJSONAckWriter wraps w in the line encoder.
func NewNDJSONAckWriter(w io.Writer) *NDJSONAckWriter {
	return &NDJSONAckWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

// WriteAck encodes and flushes one cumulative ack.
func (w *NDJSONAckWriter) WriteAck(a *Ack) error {
	line, err := json.Marshal(a)
	if err != nil {
		return err
	}
	if _, err := w.bw.Write(line); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	return w.bw.Flush()
}
