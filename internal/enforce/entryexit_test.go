package enforce

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/graph"
)

// station builds the enter-only/exit-only fixture and an engine over it.
func station(t *testing.T) (*Engine, *audit.Log) {
	t.Helper()
	g := graph.New("station")
	for _, l := range []graph.ID{"turnstile", "platform", "exitgate"} {
		if err := g.AddLocation(l); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddEdge("turnstile", "platform")
	_ = g.AddEdge("platform", "exitgate")
	_ = g.SetEntryOnly("turnstile")
	_ = g.SetExitOnly("exitgate")
	eng, store, alerts, _ := newEngine(t, g)
	for _, l := range []graph.ID{"turnstile", "platform", "exitgate"} {
		if _, err := store.Add(authz.New(iv("[1, 1000]"), iv("[1, 2000]"), "rider", l, authz.Unlimited)); err != nil {
			t.Fatal(err)
		}
	}
	_ = eng
	return eng, alerts
}

func TestEnterExitDirectionality(t *testing.T) {
	eng, alerts := station(t)
	// Correct flow: in at the turnstile, out at the exit gate.
	if _, err := eng.Enter(1, "rider", "turnstile"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MoveTo(2, "rider", "platform"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.MoveTo(3, "rider", "exitgate"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Leave(4, "rider"); err != nil {
		t.Fatal(err)
	}
	if got := alerts.ByKind(audit.IllegalMovement); len(got) != 0 {
		t.Fatalf("correct flow raised: %v", got)
	}

	// Entering through the exit gate is illegal.
	if _, err := eng.Enter(5, "rider", "exitgate"); err != nil {
		t.Fatal(err)
	}
	got := alerts.ByKind(audit.IllegalMovement)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "not an entry location") {
		t.Fatalf("alerts = %v", got)
	}

	// Leaving through the turnstile is illegal.
	_, _ = eng.MoveTo(6, "rider", "platform")
	_, _ = eng.MoveTo(7, "rider", "turnstile")
	if err := eng.Leave(8, "rider"); err != nil {
		t.Fatal(err)
	}
	got = alerts.ByKind(audit.IllegalMovement)
	if len(got) != 2 || !strings.Contains(got[1].Detail, "not an exit location") {
		t.Fatalf("alerts = %v", got)
	}
}
