// Package enforce implements LTAM's access control engine (Fig. 3, §5):
// it evaluates access requests against the authorization database
// (Definitions 6 and 7), monitors user movement at all times — not only at
// card readers — and raises alerts for the violations the paper calls out:
// entering without an authorization (tailgating on a group entry),
// overstaying past the exit duration ("a warning signal to the security
// guards will be generated"), leaving early, and movements that are
// impossible under the location graph's topology.
package enforce

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/movement"
	"repro/internal/profile"
)

// Outside is the pseudo-location of subjects not inside any primitive
// location.
const Outside graph.ID = ""

// Decision is the outcome of an access request.
type Decision struct {
	// Granted reports whether the request is authorized (Def. 7).
	Granted bool
	// Auth is the granting authorization's ID when granted.
	Auth authz.ID
	// Reason explains a denial.
	Reason string
	// Exhausted distinguishes denial-by-entry-count from
	// denial-by-absence-of-authorization.
	Exhausted bool
}

// String renders the decision for logs.
func (d Decision) String() string {
	if d.Granted {
		return fmt.Sprintf("granted (a%d)", d.Auth)
	}
	return "denied: " + d.Reason
}

// AuthSource supplies the authorizations of (s, l) for Def.-7
// evaluation; *authz.Store and *authz.View satisfy it. The engine's
// decision paths take it explicitly so the core read path can evaluate
// against an immutable store snapshot instead of the live database.
type AuthSource interface {
	For(s profile.SubjectID, l graph.ID) []authz.Authorization
}

// Engine is the access control engine. It owns a logical clock that only
// moves forward; all enforcement is deterministic in the event sequence.
// Engine is safe for concurrent use.
//
// Concurrency: movements (Enter, Leave, Tick, SetClock) take the engine
// lock — they must be atomic with respect to each other because a
// movement is a read-modify-write of the movement database. Pure
// decisions (Request, Query, RequestIn, QueryIn) acquire no engine lock
// at all: the logical clock they advance is an atomic monotonic maximum,
// the authorization source is lock-free (a sharded store read or an
// immutable view), the alert log is internally synchronized, and the
// only remaining shared read — the movement database's entry counter,
// consulted just for entry-count-limited authorizations — takes that
// database's internal read lock. A decision that overlaps an in-flight
// movement linearizes to one side of it or the other, exactly as a
// request arriving a moment earlier or later would.
type Engine struct {
	mu     sync.RWMutex
	root   *graph.Graph
	flat   *graph.Flat
	store  *authz.Store
	moves  *movement.DB
	alerts *audit.Log
	now    atomic.Int64 // interval.Time, advanced by CAS; never moves back
	// overstayAlerted remembers stints already flagged so the periodic
	// monitor raises one alert per violation, keyed by subject and stint
	// entry time. Guarded by mu (write side only).
	overstayAlerted map[stintKey]bool
}

type stintKey struct {
	s profile.SubjectID
	t interval.Time
}

// New builds an engine over a validated location graph and the three
// databases.
func New(root *graph.Graph, store *authz.Store, moves *movement.DB, alerts *audit.Log) (*Engine, error) {
	if err := root.Validate(); err != nil {
		return nil, fmt.Errorf("enforce: %w", err)
	}
	return &Engine{
		root:            root,
		flat:            graph.Expand(root),
		store:           store,
		moves:           moves,
		alerts:          alerts,
		overstayAlerted: make(map[stintKey]bool),
	}, nil
}

// Now returns the engine's logical clock (the latest time it has seen).
func (e *Engine) Now() interval.Time {
	return interval.Time(e.now.Load())
}

// SetClock fast-forwards the logical clock without running the monitor —
// used by recovery to resume at the persisted time. It cannot move the
// clock backwards.
func (e *Engine) SetClock(t interval.Time) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.advance(t)
}

// advance moves the clock forward to t, rejecting regressions. It is a
// CAS loop so that read-locked decision paths can share it.
func (e *Engine) advance(t interval.Time) error {
	for {
		cur := e.now.Load()
		if int64(t) < cur {
			return fmt.Errorf("enforce: time %s precedes engine clock %s", t, interval.Time(cur))
		}
		if int64(t) == cur {
			// Steady state under concurrent readers: the clock is already
			// there; skip the CAS to avoid cacheline ping-pong.
			return nil
		}
		if e.now.CompareAndSwap(cur, int64(t)) {
			return nil
		}
	}
}

// Request evaluates the access request (t, s, l) — Definition 6 — against
// the authorization database and the movement history, without moving the
// subject. Per Definition 7 the request is authorized when some
// authorization for (s, l) has tis <= t <= tie and s has entered l during
// [tis, tie] fewer than n times. Denials are recorded in the alert log.
func (e *Engine) Request(t interval.Time, s profile.SubjectID, l graph.ID) Decision {
	return e.RequestIn(e.store, t, s, l)
}

// RequestIn is Request evaluated against an explicit authorization
// source — the zero-lock decision path. The core System passes the
// current read view's store snapshot here, so a card-reader fan-in of
// concurrent requests shares no mutex at all.
func (e *Engine) RequestIn(src AuthSource, t interval.Time, s profile.SubjectID, l graph.ID) Decision {
	if err := e.advance(t); err != nil {
		return e.deny(t, s, l, err.Error(), false)
	}
	return e.evaluate(src, t, s, l, true)
}

// evaluate applies Def. 7 against src. When raiseAlerts is false the
// evaluation is a pure query (used by what-if tooling). Everything it
// reads is immutable, atomic, or internally synchronized, so it needs no
// engine lock on any path.
func (e *Engine) evaluate(src AuthSource, t interval.Time, s profile.SubjectID, l graph.ID, raiseAlerts bool) Decision {
	auths := src.For(s, l)
	if len(auths) == 0 {
		return e.maybeDeny(t, s, l, fmt.Sprintf("no authorization specifies %s's access to %s", s, l), false, raiseAlerts)
	}
	exhausted := false
	for _, a := range auths {
		if !a.PermitsEntryAt(t) {
			continue
		}
		if a.MaxEntries != authz.Unlimited {
			used := e.moves.EntryCount(s, l, a.Entry)
			if int64(used) >= a.MaxEntries {
				exhausted = true
				continue
			}
		}
		return Decision{Granted: true, Auth: a.ID}
	}
	if exhausted {
		return e.maybeDeny(t, s, l, fmt.Sprintf("%s has used all permitted entries to %s", s, l), true, raiseAlerts)
	}
	return e.maybeDeny(t, s, l, fmt.Sprintf("no authorization for %s at %s covers time %s", s, l, t), false, raiseAlerts)
}

func (e *Engine) maybeDeny(t interval.Time, s profile.SubjectID, l graph.ID, reason string, exhausted, raise bool) Decision {
	if raise {
		return e.deny(t, s, l, reason, exhausted)
	}
	return Decision{Reason: reason, Exhausted: exhausted}
}

func (e *Engine) deny(t interval.Time, s profile.SubjectID, l graph.ID, reason string, exhausted bool) Decision {
	kind := audit.DeniedRequest
	if exhausted {
		kind = audit.EntryExhausted
	}
	e.alerts.Raise(audit.Alert{Time: t, Kind: kind, Subject: s, Location: l, Detail: reason})
	return Decision{Reason: reason, Exhausted: exhausted}
}

// Query evaluates Def. 7 without side effects: no clock movement, no
// alerts. It answers "would (t, s, l) be authorized right now?".
func (e *Engine) Query(t interval.Time, s profile.SubjectID, l graph.ID) Decision {
	return e.QueryIn(e.store, t, s, l)
}

// QueryIn is Query against an explicit authorization source — see
// RequestIn.
func (e *Engine) QueryIn(src AuthSource, t interval.Time, s profile.SubjectID, l graph.ID) Decision {
	return e.evaluate(src, t, s, l, false)
}

// Enter records subject s physically entering location l at time t. LTAM
// monitors movement continuously, so the movement is recorded even when it
// is a violation — with the appropriate alert raised:
//
//   - topology: entering from Outside is legal only at an entry primitive
//     of the (multilevel) graph; entering from another room requires a
//     direct connection (an expansion edge);
//   - authorization: an un-granted entry (tailgating) raises
//     UnauthorizedEntry — this is how LTAM eliminates "a group of users
//     enter[ing] a restricted location based on a single user
//     authorization": every body in the room needs its own grant;
//   - when moving room-to-room, the implicit exit of the previous room is
//     checked against the granting authorization's exit duration.
func (e *Engine) Enter(t interval.Time, s profile.SubjectID, l graph.ID) (Decision, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.advance(t); err != nil {
		return Decision{}, err
	}
	if _, ok := e.flat.Index[l]; !ok {
		return Decision{}, fmt.Errorf("enforce: unknown location %q", l)
	}

	from, inside := e.moves.CurrentLocation(s)

	// Topology checks.
	switch {
	case !inside && !e.flat.IsEntry(l):
		e.alerts.Raise(audit.Alert{Time: t, Kind: audit.IllegalMovement, Subject: s, Location: l,
			Detail: fmt.Sprintf("entered the facility at %s, which is not an entry location", l)})
	case inside && !e.flat.HasEdge(from, l):
		e.alerts.Raise(audit.Alert{Time: t, Kind: audit.IllegalMovement, Subject: s, Location: l,
			Detail: fmt.Sprintf("moved from %s to %s with no direct connection", from, l)})
	}

	// Implicit exit from the previous room.
	if inside {
		if err := e.exitLocked(t, s); err != nil {
			return Decision{}, err
		}
	}

	// Authorization check (Def. 7) — against the live store: movements
	// must see their own write-path state.
	d := e.evaluate(e.store, t, s, l, false)
	if !d.Granted {
		kind := audit.UnauthorizedEntry
		e.alerts.Raise(audit.Alert{Time: t, Kind: kind, Subject: s, Location: l,
			Detail: fmt.Sprintf("entered without authorization: %s", d.Reason)})
	}
	if _, err := e.moves.RecordEnter(t, s, l, d.Auth); err != nil {
		return Decision{}, err
	}
	return d, nil
}

// Leave records subject s leaving its current location at time t to the
// outside. Leaving the facility from a non-entry location raises an
// IllegalMovement alert; leaving outside the granting authorization's exit
// duration raises EarlyExit or Overstay.
func (e *Engine) Leave(t interval.Time, s profile.SubjectID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.advance(t); err != nil {
		return err
	}
	from, inside := e.moves.CurrentLocation(s)
	if !inside {
		return fmt.Errorf("enforce: %s is not inside any location", s)
	}
	if !e.flat.IsExit(from) {
		e.alerts.Raise(audit.Alert{Time: t, Kind: audit.IllegalMovement, Subject: s, Location: from,
			Detail: fmt.Sprintf("left the facility from %s, which is not an exit location", from)})
	}
	return e.exitLocked(t, s)
}

// exitLocked closes the subject's stint, checking the exit window of the
// granting authorization.
func (e *Engine) exitLocked(t interval.Time, s profile.SubjectID) error {
	_, st, err := e.moves.RecordExit(t, s)
	if err != nil {
		return err
	}
	if st.Auth == 0 {
		return nil // ungranted stint: the entry alert already fired
	}
	a, err := e.store.Get(st.Auth)
	if err != nil {
		return nil // authorization revoked mid-stay; nothing to check against
	}
	switch {
	case t < a.Exit.Start:
		e.alerts.Raise(audit.Alert{Time: t, Kind: audit.EarlyExit, Subject: s, Location: st.Location,
			Detail: fmt.Sprintf("left %s at %s before exit duration %s began", st.Location, t, a.Exit)})
	case t > a.Exit.End:
		e.alerts.Raise(audit.Alert{Time: t, Kind: audit.Overstay, Subject: s, Location: st.Location,
			Detail: fmt.Sprintf("left %s at %s after exit duration %s ended", st.Location, t, a.Exit)})
	}
	return nil
}

// MoveTo is the room-to-room transition: an implicit exit from the current
// room followed by an entry into l, with all checks of both.
func (e *Engine) MoveTo(t interval.Time, s profile.SubjectID, l graph.ID) (Decision, error) {
	return e.Enter(t, s, l)
}

// Tick advances the clock to t and runs the continuous monitor: every
// subject still inside a location whose granting authorization's exit
// duration has ended is flagged with an Overstay alert — the paper's "if
// she does not exit CAIS during the exit duration, a warning signal to the
// security guards will be generated". Each violation is reported once.
func (e *Engine) Tick(t interval.Time) ([]audit.Alert, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.advance(t); err != nil {
		return nil, err
	}
	var raised []audit.Alert
	for _, st := range e.moves.OpenStints() {
		if st.Auth == 0 {
			continue
		}
		a, err := e.store.Get(st.Auth)
		if err != nil {
			continue
		}
		if t <= a.Exit.End {
			continue
		}
		key := stintKey{st.Subject, st.Enter}
		if e.overstayAlerted[key] {
			continue
		}
		e.overstayAlerted[key] = true
		raised = append(raised, e.alerts.Raise(audit.Alert{
			Time: t, Kind: audit.Overstay, Subject: st.Subject, Location: st.Location,
			Detail: fmt.Sprintf("still inside %s at %s; exit duration %s has ended", st.Location, t, a.Exit),
		}))
	}
	return raised, nil
}

// WhereIs reports the subject's current location (Outside, false when not
// inside).
func (e *Engine) WhereIs(s profile.SubjectID) (graph.ID, bool) {
	return e.moves.CurrentLocation(s)
}

// Occupants returns who is currently inside l.
func (e *Engine) Occupants(l graph.ID) []profile.SubjectID {
	return e.moves.Occupants(l)
}

// ErrUnknownSubject is returned by presence helpers for subjects with no
// movement history. (Presence queries return ok=false instead; the error
// form is used by the wire layer.)
var ErrUnknownSubject = errors.New("enforce: unknown subject")
