package enforce

import (
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/movement"
)

func iv(s string) interval.Interval { return interval.MustParse(s) }

func newEngine(t *testing.T, g *graph.Graph) (*Engine, *authz.Store, *audit.Log, *movement.DB) {
	t.Helper()
	store := authz.NewStore()
	moves := movement.NewDB()
	alerts := audit.NewLog(0)
	eng, err := New(g, store, moves, alerts)
	if err != nil {
		t.Fatal(err)
	}
	return eng, store, alerts, moves
}

func TestNewRejectsInvalidGraph(t *testing.T) {
	g := graph.New("bad") // no locations
	if _, err := New(g, authz.NewStore(), movement.NewDB(), audit.NewLog(0)); err == nil {
		t.Error("invalid graph must be rejected")
	}
}

func TestExperimentSection5Trace(t *testing.T) {
	// E3: the paper's §5 worked enforcement trace with
	//   A1: ([10, 20], [10, 50], (Alice, CAIS), 2)
	//   A2: ([5, 35], [20, 100], (Bob, CHIPES), 1)
	eng, store, _, _ := newEngine(t, graph.NTUCampus())
	a1, err := store.Add(authz.New(iv("[10, 20]"), iv("[10, 50]"), "Alice", graph.CAIS, 2))
	if err != nil {
		t.Fatal(err)
	}
	a2, err := store.Add(authz.New(iv("[5, 35]"), iv("[20, 100]"), "Bob", graph.CHIPES, 1))
	if err != nil {
		t.Fatal(err)
	}

	// "At time 10, access request (10, Alice, CAIS) is granted according
	// to A1."
	d := eng.Request(10, "Alice", graph.CAIS)
	if !d.Granted || d.Auth != a1.ID {
		t.Errorf("step 1: %v", d)
	}
	t.Logf("t=10 (Alice, CAIS): %s", d)

	// "At time 15, access request (15, Bob, CAIS) is not authorized
	// because there is no authorization specifies Bob's access to CAIS."
	d = eng.Request(15, "Bob", graph.CAIS)
	if d.Granted || d.Exhausted {
		t.Errorf("step 2: %v", d)
	}
	if !strings.Contains(d.Reason, "no authorization specifies") {
		t.Errorf("step 2 reason: %s", d.Reason)
	}
	t.Logf("t=15 (Bob, CAIS): %s", d)

	// "At time 16, access request (Bob, CHIPES) is authorized based on
	// A2." Bob enters on the grant.
	d = eng.Request(16, "Bob", graph.CHIPES)
	if !d.Granted || d.Auth != a2.ID {
		t.Errorf("step 3: %v", d)
	}
	t.Logf("t=16 (Bob, CHIPES): %s", d)
	if _, err := eng.Enter(16, "Bob", graph.CHIPES); err != nil {
		t.Fatal(err)
	}

	// "At time 20, Bob leaves CHIPES." — within exit duration [20, 100].
	if err := eng.Leave(20, "Bob"); err != nil {
		t.Fatal(err)
	}
	t.Log("t=20 Bob leaves CHIPES")

	// "At time 30, access request (30, Bob, CHIPES) is not authorized
	// because Bob has only one entry to CHIPES."
	d = eng.Request(30, "Bob", graph.CHIPES)
	if d.Granted || !d.Exhausted {
		t.Errorf("step 5: %v", d)
	}
	t.Logf("t=30 (Bob, CHIPES): %s", d)
}

func TestEntryCountingAcrossWindows(t *testing.T) {
	// Two authorizations with different windows count independently.
	eng, store, _, _ := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[0, 10]"), iv("[0, 20]"), "u", "A", 1))
	_, _ = store.Add(authz.New(iv("[30, 40]"), iv("[30, 60]"), "u", "A", 1))

	if d, _ := eng.Enter(5, "u", "A"); !d.Granted {
		t.Fatalf("first entry: %v", d)
	}
	_ = eng.Leave(6, "u")
	// First window exhausted.
	if d := eng.Request(7, "u", "A"); d.Granted || !d.Exhausted {
		t.Errorf("second request in window 1: %v", d)
	}
	// Second window unaffected.
	if d := eng.Request(33, "u", "A"); !d.Granted {
		t.Errorf("request in window 2: %v", d)
	}
}

func TestUnlimitedEntriesNeverExhaust(t *testing.T) {
	eng, store, _, _ := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "A", authz.Unlimited))
	for i := 0; i < 5; i++ {
		tm := interval.Time(i * 2)
		if d, err := eng.Enter(tm, "u", "A"); err != nil || !d.Granted {
			t.Fatalf("entry %d: %v %v", i, d, err)
		}
		if err := eng.Leave(tm+1, "u"); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTailgatingRaisesUnauthorizedEntry(t *testing.T) {
	// Mallory follows an authorized user in: the movement is recorded
	// (LTAM tracks everyone) and an alert is raised.
	eng, store, alerts, moves := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "alice", "A", authz.Unlimited))
	if d, _ := eng.Enter(1, "alice", "A"); !d.Granted {
		t.Fatal("alice should get in")
	}
	d, err := eng.Enter(1, "mallory", "A")
	if err != nil {
		t.Fatal(err)
	}
	if d.Granted {
		t.Error("mallory must not be granted")
	}
	got := alerts.ByKind(audit.UnauthorizedEntry)
	if len(got) != 1 || got[0].Subject != "mallory" || got[0].Location != "A" {
		t.Errorf("alerts = %v", got)
	}
	// The movement is still recorded, with no granting auth.
	if loc, inside := moves.CurrentLocation("mallory"); !inside || loc != "A" {
		t.Error("mallory's movement must be recorded")
	}
	if moves.History("mallory")[0].Auth != 0 {
		t.Error("ungranted stint must have zero auth")
	}
}

func TestTopologyViolations(t *testing.T) {
	eng, store, alerts, _ := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "A", authz.Unlimited))
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "B", authz.Unlimited))
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "C", authz.Unlimited))

	// Entering the facility at B (not an entry location).
	if _, err := eng.Enter(1, "u", "B"); err != nil {
		t.Fatal(err)
	}
	ill := alerts.ByKind(audit.IllegalMovement)
	if len(ill) != 1 || !strings.Contains(ill[0].Detail, "not an entry location") {
		t.Fatalf("alerts = %v", ill)
	}
	// Teleporting B -> D (no edge).
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "D", authz.Unlimited))
	if _, err := eng.MoveTo(2, "u", "D"); err != nil {
		t.Fatal(err)
	}
	ill = alerts.ByKind(audit.IllegalMovement)
	if len(ill) != 2 || !strings.Contains(ill[1].Detail, "no direct connection") {
		t.Fatalf("alerts = %v", ill)
	}
	// Leaving the facility from D (not an entry location).
	if err := eng.Leave(3, "u"); err != nil {
		t.Fatal(err)
	}
	ill = alerts.ByKind(audit.IllegalMovement)
	if len(ill) != 3 || !strings.Contains(ill[2].Detail, "left the facility") {
		t.Fatalf("alerts = %v", ill)
	}
	// Legal walk raises nothing new: enter A, move to B, back to A, leave.
	n := alerts.Len()
	_, _ = eng.Enter(4, "u", "A")
	_, _ = eng.MoveTo(5, "u", "B")
	_, _ = eng.MoveTo(6, "u", "A")
	_ = eng.Leave(7, "u")
	if alerts.Len() != n {
		t.Errorf("legal walk raised alerts: %v", alerts.All()[n:])
	}
}

func TestUnknownLocationEnter(t *testing.T) {
	eng, _, _, _ := newEngine(t, graph.Fig4Graph())
	if _, err := eng.Enter(1, "u", "Mars"); err == nil {
		t.Error("entering an unknown location must error")
	}
}

func TestLeaveWhileOutside(t *testing.T) {
	eng, _, _, _ := newEngine(t, graph.Fig4Graph())
	if err := eng.Leave(1, "ghost"); err == nil {
		t.Error("leaving while outside must error")
	}
}

func TestExperimentOverstayAlert(t *testing.T) {
	// E9: §3.2 — "If she does not exit CAIS during the exit duration, a
	// warning signal to the security guards will be generated."
	// Authorization: ([5, 40], [20, 100], (Alice, CAIS), 1).
	eng, store, alerts, _ := newEngine(t, graph.NTUCampus())
	_, _ = store.Add(authz.New(iv("[5, 40]"), iv("[20, 100]"), "Alice", graph.CAIS, 1))
	if _, err := eng.Enter(10, "Alice", graph.CAIS); err != nil {
		t.Fatal(err)
	}
	// Within the exit window: no alert.
	raised, err := eng.Tick(100)
	if err != nil || len(raised) != 0 {
		t.Fatalf("tick at 100: %v %v", raised, err)
	}
	// Past the exit window: one overstay alert.
	raised, _ = eng.Tick(101)
	if len(raised) != 1 || raised[0].Kind != audit.Overstay || raised[0].Subject != "Alice" {
		t.Fatalf("tick at 101: %v", raised)
	}
	t.Logf("overstay warning: %s", raised[0])
	// The same violation is not re-raised.
	raised, _ = eng.Tick(150)
	if len(raised) != 0 {
		t.Errorf("duplicate overstay alert: %v", raised)
	}
	if got := alerts.ByKind(audit.Overstay); len(got) != 1 {
		t.Errorf("overstay alerts = %v", got)
	}
	// Leaving now also flags the late exit.
	_ = eng.Leave(160, "Alice")
	if got := alerts.ByKind(audit.Overstay); len(got) != 2 {
		t.Errorf("late leave should add an overstay alert, got %v", got)
	}
}

func TestEarlyExitAlert(t *testing.T) {
	eng, store, alerts, _ := newEngine(t, graph.NTUCampus())
	_, _ = store.Add(authz.New(iv("[5, 40]"), iv("[20, 100]"), "Alice", graph.CAIS, 1))
	_, _ = eng.Enter(10, "Alice", graph.CAIS)
	_ = eng.Leave(15, "Alice") // before exit window [20, 100] begins
	got := alerts.ByKind(audit.EarlyExit)
	if len(got) != 1 || !strings.Contains(got[0].Detail, "before exit duration") {
		t.Errorf("early exit alerts = %v", got)
	}
}

func TestTickSkipsUngrantedAndUnboundedStints(t *testing.T) {
	eng, store, _, _ := newEngine(t, graph.Fig4Graph())
	// Tailgater: no granting auth, never flagged by the overstay monitor
	// (the unauthorized-entry alert already fired).
	_, _ = eng.Enter(1, "mallory", "A")
	// Unbounded exit window: can stay forever.
	_, _ = store.Add(authz.New(iv("[0, 10]"), interval.From(0), "u", "A", authz.Unlimited))
	_, _ = eng.Enter(2, "u", "A")
	raised, err := eng.Tick(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(raised) != 0 {
		t.Errorf("raised = %v", raised)
	}
}

func TestClockMonotonicity(t *testing.T) {
	eng, store, alerts, _ := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "A", authz.Unlimited))
	_, _ = eng.Enter(10, "u", "A")
	if eng.Now() != 10 {
		t.Errorf("now = %v", eng.Now())
	}
	// A request in the past is denied and logged, not silently evaluated.
	d := eng.Request(5, "u", "A")
	if d.Granted {
		t.Error("past request must not be granted")
	}
	if _, err := eng.Enter(5, "u", "A"); err == nil {
		t.Error("past enter must error")
	}
	if err := eng.Leave(5, "u"); err == nil {
		t.Error("past leave must error")
	}
	if _, err := eng.Tick(5); err == nil {
		t.Error("past tick must error")
	}
	_ = alerts
}

func TestQueryHasNoSideEffects(t *testing.T) {
	eng, store, alerts, _ := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[10, 20]"), iv("[10, 50]"), "u", "A", 1))
	d := eng.Query(15, "u", "A")
	if !d.Granted {
		t.Errorf("query = %v", d)
	}
	// Denied queries raise no alerts and do not advance the clock.
	d = eng.Query(99, "u", "A")
	if d.Granted {
		t.Error("out-of-window query granted")
	}
	if alerts.Len() != 0 {
		t.Error("query must not raise alerts")
	}
	if eng.Now() != 0 {
		t.Error("query must not advance the clock")
	}
}

func TestWhereIsAndOccupants(t *testing.T) {
	eng, store, _, _ := newEngine(t, graph.Fig4Graph())
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "A", authz.Unlimited))
	_, _ = store.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "v", "A", authz.Unlimited))
	if _, inside := eng.WhereIs("u"); inside {
		t.Error("u starts outside")
	}
	_, _ = eng.Enter(1, "u", "A")
	_, _ = eng.Enter(2, "v", "A")
	if loc, inside := eng.WhereIs("u"); !inside || loc != "A" {
		t.Errorf("WhereIs = %v %v", loc, inside)
	}
	occ := eng.Occupants("A")
	if len(occ) != 2 || occ[0] != "u" || occ[1] != "v" {
		t.Errorf("occupants = %v", occ)
	}
}

func TestDecisionString(t *testing.T) {
	d := Decision{Granted: true, Auth: 7}
	if d.String() != "granted (a7)" {
		t.Errorf("granted string = %q", d)
	}
	d = Decision{Reason: "nope"}
	if d.String() != "denied: nope" {
		t.Errorf("denied string = %q", d)
	}
}

func TestRevokedAuthMidStay(t *testing.T) {
	// If the granting authorization is revoked while the subject is
	// inside, the exit check is skipped gracefully.
	eng, store, alerts, _ := newEngine(t, graph.Fig4Graph())
	a, _ := store.Add(authz.New(iv("[0, 100]"), iv("[50, 60]"), "u", "A", authz.Unlimited))
	_, _ = eng.Enter(1, "u", "A")
	_ = store.Revoke(a.ID)
	if err := eng.Leave(2, "u"); err != nil {
		t.Fatal(err)
	}
	if alerts.ByKind(audit.EarlyExit) != nil {
		t.Error("no exit-window alert after revocation")
	}
	// Tick also skips the revoked auth.
	if raised, _ := eng.Tick(1000); len(raised) != 0 {
		t.Errorf("raised = %v", raised)
	}
}
