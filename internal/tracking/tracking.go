// Package tracking is the positioning substrate LTAM assumes: "the
// ability of user tracking is also assumed in this research" (§1). Real
// deployments feed the control station from RFID readers or indoor
// positioning; this package substitutes a synthetic but behaviourally
// equivalent feed — coordinate readings per tag, resolved against the
// geometry layer into primitive-location transitions, which drive the
// enforcement engine exactly as hardware readings would.
//
// The privacy boundary of §1 is kept here: raw coordinates never leave
// the tracker; only location transitions are emitted.
package tracking

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// Reading is one positioning sample for a tag.
type Reading struct {
	Tag  profile.SubjectID
	At   geometry.Point
	Time interval.Time
}

// Transition is a resolved location change. From or To is Outside ("")
// when the tag enters from or leaves to somewhere with no boundary
// (outdoors).
type Transition struct {
	Tag      profile.SubjectID
	From, To graph.ID
	Time     interval.Time
}

// Outside is the unresolved pseudo-location.
const Outside graph.ID = ""

// String renders the transition for logs.
func (tr Transition) String() string {
	from, to := string(tr.From), string(tr.To)
	if from == "" {
		from = "<outside>"
	}
	if to == "" {
		to = "<outside>"
	}
	return fmt.Sprintf("t=%s %s: %s -> %s", tr.Time, tr.Tag, from, to)
}

// Tracker turns raw readings into transitions. It is safe for concurrent
// use.
type Tracker struct {
	mu       sync.Mutex
	resolver *geometry.Resolver
	current  map[profile.SubjectID]graph.ID
	lastSeen map[profile.SubjectID]interval.Time
}

// NewTracker builds a tracker over the given boundary resolver.
func NewTracker(resolver *geometry.Resolver) *Tracker {
	return &Tracker{
		resolver: resolver,
		current:  make(map[profile.SubjectID]graph.ID),
		lastSeen: make(map[profile.SubjectID]interval.Time),
	}
}

// Observe ingests one reading. When the reading moves the tag into a
// different primitive location (or in/out of the facility) the transition
// is returned with ok=true; readings within the current location are
// deduplicated. Readings must be non-decreasing in time per tag.
func (t *Tracker) Observe(r Reading) (Transition, bool, error) {
	if r.Tag == "" {
		return Transition{}, false, errors.New("tracking: reading without tag")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if last, seen := t.lastSeen[r.Tag]; seen && r.Time < last {
		return Transition{}, false, fmt.Errorf("tracking: reading for %s at %s precedes %s", r.Tag, r.Time, last)
	}
	t.lastSeen[r.Tag] = r.Time
	loc := graph.ID(t.resolver.Resolve(r.At))
	cur := t.current[r.Tag]
	if loc == cur {
		return Transition{}, false, nil
	}
	t.current[r.Tag] = loc
	return Transition{Tag: r.Tag, From: cur, To: loc, Time: r.Time}, true, nil
}

// Where returns the tracker's belief of the tag's location.
func (t *Tracker) Where(tag profile.SubjectID) graph.ID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.current[tag]
}

// Tags returns all tags ever observed, sorted.
func (t *Tracker) Tags() []profile.SubjectID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]profile.SubjectID, 0, len(t.lastSeen))
	for tag := range t.lastSeen {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// --- Synthetic walkers -------------------------------------------------

// Walk is a scripted movement for one tag: a sequence of waypoints with a
// start time and a speed in distance units per chronon.
type Walk struct {
	Tag      profile.SubjectID
	Start    interval.Time
	Speed    float64
	Waypoint []geometry.Point
}

// Simulator generates deterministic readings from a set of walks: each
// tag moves along its waypoint polyline at its speed, sampled once per
// chronon. The merged reading stream is time-ordered (ties broken by
// tag), which is what the tracker and engine require.
type Simulator struct {
	walks []Walk
}

// NewSimulator builds a simulator for the given walks.
func NewSimulator(walks []Walk) *Simulator {
	return &Simulator{walks: walks}
}

// Readings materialises the full reading stream.
func (s *Simulator) Readings() []Reading {
	var out []Reading
	for _, w := range s.walks {
		out = append(out, walkReadings(w)...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Tag < out[j].Tag
	})
	return out
}

func walkReadings(w Walk) []Reading {
	if len(w.Waypoint) == 0 || w.Speed <= 0 {
		return nil
	}
	var out []Reading
	tm := w.Start
	out = append(out, Reading{Tag: w.Tag, At: w.Waypoint[0], Time: tm})
	for i := 1; i < len(w.Waypoint); i++ {
		from, to := w.Waypoint[i-1], w.Waypoint[i]
		dist := from.Dist(to)
		steps := int(dist / w.Speed)
		if steps < 1 {
			steps = 1
		}
		for k := 1; k <= steps; k++ {
			tm++
			out = append(out, Reading{
				Tag:  w.Tag,
				At:   from.Lerp(to, float64(k)/float64(steps)),
				Time: tm,
			})
		}
	}
	return out
}

// RouteWalk builds a Walk visiting the centroid of each location of a
// route in order — the standard way examples and benches script a user
// moving through the building.
func RouteWalk(tag profile.SubjectID, start interval.Time, speed float64, resolver *geometry.Resolver, route []graph.ID) (Walk, error) {
	w := Walk{Tag: tag, Start: start, Speed: speed}
	for _, loc := range route {
		c, ok := resolver.CenterOf(string(loc))
		if !ok {
			return Walk{}, fmt.Errorf("tracking: no boundary for %q", loc)
		}
		w.Waypoint = append(w.Waypoint, c)
	}
	return w, nil
}
