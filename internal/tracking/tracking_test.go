package tracking

import (
	"strings"
	"testing"

	"repro/internal/geometry"
	"repro/internal/graph"
)

// threeRooms builds roomA (0..10), roomB (10..20), each 10x10, with a
// hall above both.
func threeRooms(t *testing.T) *geometry.Resolver {
	t.Helper()
	r, err := geometry.NewResolver([]geometry.Boundary{
		{Location: "roomA", Shape: geometry.NewRect(geometry.Point{X: 0, Y: 0}, geometry.Point{X: 10, Y: 10}).Polygon()},
		{Location: "roomB", Shape: geometry.NewRect(geometry.Point{X: 10.5, Y: 0}, geometry.Point{X: 20, Y: 10}).Polygon()},
		{Location: "hall", Shape: geometry.NewRect(geometry.Point{X: 0, Y: 10.5}, geometry.Point{X: 20, Y: 20}).Polygon()},
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestObserveTransitions(t *testing.T) {
	tr := NewTracker(threeRooms(t))
	// Outside -> roomA.
	tran, ok, err := tr.Observe(Reading{Tag: "alice", At: geometry.Point{X: 5, Y: 5}, Time: 1})
	if err != nil || !ok {
		t.Fatalf("first reading: %v %v", ok, err)
	}
	if tran.From != Outside || tran.To != "roomA" || tran.Time != 1 {
		t.Errorf("transition = %+v", tran)
	}
	// Same room: deduplicated.
	_, ok, err = tr.Observe(Reading{Tag: "alice", At: geometry.Point{X: 6, Y: 6}, Time: 2})
	if err != nil || ok {
		t.Errorf("same-room reading should not transition: %v %v", ok, err)
	}
	// roomA -> roomB.
	tran, ok, _ = tr.Observe(Reading{Tag: "alice", At: geometry.Point{X: 15, Y: 5}, Time: 3})
	if !ok || tran.From != "roomA" || tran.To != "roomB" {
		t.Errorf("transition = %+v", tran)
	}
	// roomB -> outside.
	tran, ok, _ = tr.Observe(Reading{Tag: "alice", At: geometry.Point{X: 100, Y: 100}, Time: 4})
	if !ok || tran.From != "roomB" || tran.To != Outside {
		t.Errorf("transition = %+v", tran)
	}
	if got := tr.Where("alice"); got != Outside {
		t.Errorf("where = %q", got)
	}
}

func TestObserveErrors(t *testing.T) {
	tr := NewTracker(threeRooms(t))
	if _, _, err := tr.Observe(Reading{At: geometry.Point{X: 5, Y: 5}, Time: 1}); err == nil {
		t.Error("missing tag should fail")
	}
	_, _, _ = tr.Observe(Reading{Tag: "a", At: geometry.Point{X: 5, Y: 5}, Time: 10})
	if _, _, err := tr.Observe(Reading{Tag: "a", At: geometry.Point{X: 6, Y: 6}, Time: 5}); err == nil {
		t.Error("time regression per tag should fail")
	}
	// Other tags have independent clocks.
	if _, _, err := tr.Observe(Reading{Tag: "b", At: geometry.Point{X: 5, Y: 5}, Time: 5}); err != nil {
		t.Errorf("independent tag clock: %v", err)
	}
}

func TestTags(t *testing.T) {
	tr := NewTracker(threeRooms(t))
	_, _, _ = tr.Observe(Reading{Tag: "zed", At: geometry.Point{X: 5, Y: 5}, Time: 1})
	_, _, _ = tr.Observe(Reading{Tag: "amy", At: geometry.Point{X: 15, Y: 5}, Time: 1})
	tags := tr.Tags()
	if len(tags) != 2 || tags[0] != "amy" || tags[1] != "zed" {
		t.Errorf("tags = %v", tags)
	}
}

func TestTransitionString(t *testing.T) {
	s := Transition{Tag: "alice", From: Outside, To: "roomA", Time: 3}.String()
	if !strings.Contains(s, "<outside>") || !strings.Contains(s, "roomA") {
		t.Errorf("string = %q", s)
	}
	s = Transition{Tag: "alice", From: "roomA", To: Outside, Time: 9}.String()
	if !strings.Contains(s, "-> <outside>") {
		t.Errorf("string = %q", s)
	}
}

func TestSimulatorDeterministicAndOrdered(t *testing.T) {
	sim := NewSimulator([]Walk{
		{Tag: "alice", Start: 0, Speed: 2, Waypoint: []geometry.Point{{X: 5, Y: 5}, {X: 15, Y: 5}}},
		{Tag: "bob", Start: 1, Speed: 1, Waypoint: []geometry.Point{{X: 15, Y: 5}, {X: 5, Y: 5}}},
	})
	r1 := sim.Readings()
	r2 := sim.Readings()
	if len(r1) == 0 || len(r1) != len(r2) {
		t.Fatalf("readings = %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatal("simulator must be deterministic")
		}
	}
	for i := 1; i < len(r1); i++ {
		if r1[i].Time < r1[i-1].Time {
			t.Fatal("readings must be time-ordered")
		}
		if r1[i].Time == r1[i-1].Time && r1[i].Tag < r1[i-1].Tag {
			t.Fatal("ties must be tag-ordered")
		}
	}
}

func TestSimulatorWalksThroughRooms(t *testing.T) {
	res := threeRooms(t)
	tr := NewTracker(res)
	sim := NewSimulator([]Walk{
		{Tag: "alice", Start: 0, Speed: 1, Waypoint: []geometry.Point{{X: 5, Y: 5}, {X: 15, Y: 5}, {X: 15, Y: 15}}},
	})
	var seq []string
	for _, r := range sim.Readings() {
		if tran, ok, err := tr.Observe(r); err != nil {
			t.Fatal(err)
		} else if ok {
			seq = append(seq, string(tran.To))
		}
	}
	want := []string{"roomA", "roomB", "hall"}
	if len(seq) < 3 {
		t.Fatalf("transitions = %v", seq)
	}
	// The walk may clip a corner, but the subsequence of distinct rooms
	// must contain A then B then hall in order.
	idx := 0
	for _, s := range seq {
		if idx < len(want) && s == want[idx] {
			idx++
		}
	}
	if idx != len(want) {
		t.Errorf("room sequence %v does not contain %v in order", seq, want)
	}
}

func TestWalkEdgeCases(t *testing.T) {
	if got := walkReadings(Walk{Tag: "a", Speed: 1}); got != nil {
		t.Error("no waypoints should yield no readings")
	}
	if got := walkReadings(Walk{Tag: "a", Speed: 0, Waypoint: []geometry.Point{{X: 1, Y: 1}}}); got != nil {
		t.Error("zero speed should yield no readings")
	}
	// Single waypoint: one reading.
	got := walkReadings(Walk{Tag: "a", Speed: 1, Waypoint: []geometry.Point{{X: 1, Y: 1}}, Start: 5})
	if len(got) != 1 || got[0].Time != 5 {
		t.Errorf("readings = %v", got)
	}
	// Very short hop still produces at least one step.
	got = walkReadings(Walk{Tag: "a", Speed: 10, Waypoint: []geometry.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}})
	if len(got) != 2 {
		t.Errorf("readings = %v", got)
	}
}

func TestRouteWalk(t *testing.T) {
	res := threeRooms(t)
	w, err := RouteWalk("alice", 3, 2, res, []graph.ID{"roomA", "roomB", "hall"})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Waypoint) != 3 || w.Start != 3 || w.Speed != 2 {
		t.Errorf("walk = %+v", w)
	}
	if w.Waypoint[0] != (geometry.Point{X: 5, Y: 5}) {
		t.Errorf("first waypoint = %v", w.Waypoint[0])
	}
	if _, err := RouteWalk("alice", 0, 1, res, []graph.ID{"nowhere"}); err == nil {
		t.Error("unknown room should fail")
	}
}
