// Package audit implements LTAM's alerting channel: the "warning signal to
// the security guards" the paper raises when, e.g., a subject fails to
// leave a location within its exit duration (§3.2), plus the audit trail
// of denied requests and unauthorized movements that makes security
// shortfalls visible.
package audit

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// Kind classifies an alert.
type Kind int

// The alert kinds raised by the enforcement engine.
const (
	// Overstay: the subject is still inside after its exit duration
	// ended (§3.2's warning-signal example).
	Overstay Kind = iota
	// UnauthorizedEntry: a movement into a location with no granting
	// authorization — e.g. tailgating behind an authorized user, the
	// situation LTAM's continuous monitoring is designed to catch
	// ("a group of users enters a restricted location based on a
	// single user authorization").
	UnauthorizedEntry
	// EarlyExit: the subject left before its exit duration began
	// (the exit window is a constraint on when leaving is allowed).
	EarlyExit
	// DeniedRequest: an access request was rejected.
	DeniedRequest
	// EntryExhausted: a request was rejected specifically because the
	// entry count reached n.
	EntryExhausted
	// IllegalMovement: a movement that violates the location graph's
	// topology — entering the facility anywhere but an entry location,
	// teleporting between non-adjacent rooms, or leaving the facility
	// from a non-entry location ("an entry location also serves as the
	// last location where the user may visit before his/her exit").
	IllegalMovement
)

func (k Kind) String() string {
	switch k {
	case Overstay:
		return "overstay"
	case UnauthorizedEntry:
		return "unauthorized-entry"
	case EarlyExit:
		return "early-exit"
	case DeniedRequest:
		return "denied-request"
	case EntryExhausted:
		return "entry-exhausted"
	case IllegalMovement:
		return "illegal-movement"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Alert is one security event.
type Alert struct {
	Seq      uint64
	Time     interval.Time
	Kind     Kind
	Subject  profile.SubjectID
	Location graph.ID
	Detail   string
}

// String renders the alert as a log line.
func (a Alert) String() string {
	return fmt.Sprintf("t=%s %s subject=%s location=%s: %s",
		a.Time, a.Kind, a.Subject, a.Location, a.Detail)
}

// Subscriber receives alerts synchronously as they are raised.
type Subscriber func(Alert)

// Log is a bounded in-memory alert log with subscriptions. It is safe for
// concurrent use.
type Log struct {
	mu      sync.RWMutex
	alerts  []Alert
	nextSeq uint64
	limit   int
	subs    map[uint64]Subscriber
	nextSub uint64
}

// DefaultLimit bounds the retained alerts when NewLog is given a
// non-positive limit.
const DefaultLimit = 4096

// NewLog returns an alert log retaining at most limit alerts (oldest
// evicted first).
func NewLog(limit int) *Log {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Log{limit: limit, nextSeq: 1}
}

// Subscribe registers a subscriber for future alerts and returns a
// cancel function that removes it again (e.g. when an event-bus feed
// detaches). Subscribers run synchronously on the raising goroutine.
func (l *Log) Subscribe(s Subscriber) (cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.subs == nil {
		l.subs = make(map[uint64]Subscriber)
	}
	id := l.nextSub
	l.nextSub++
	l.subs[id] = s
	return func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		delete(l.subs, id)
	}
}

// Raise appends an alert and notifies subscribers, returning the stored
// alert with its sequence number.
func (l *Log) Raise(a Alert) Alert {
	l.mu.Lock()
	a.Seq = l.nextSeq
	l.nextSeq++
	l.alerts = append(l.alerts, a)
	if len(l.alerts) > l.limit {
		l.alerts = l.alerts[len(l.alerts)-l.limit:]
	}
	subs := make([]Subscriber, 0, len(l.subs))
	for _, s := range l.subs {
		subs = append(subs, s)
	}
	l.mu.Unlock()
	for _, s := range subs {
		s(a)
	}
	return a
}

// All returns the retained alerts in order.
func (l *Log) All() []Alert {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Alert, len(l.alerts))
	copy(out, l.alerts)
	return out
}

// ByKind returns retained alerts of the given kind.
func (l *Log) ByKind(k Kind) []Alert {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Alert
	for _, a := range l.alerts {
		if a.Kind == k {
			out = append(out, a)
		}
	}
	return out
}

// BySubject returns retained alerts concerning the given subject.
func (l *Log) BySubject(s profile.SubjectID) []Alert {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Alert
	for _, a := range l.alerts {
		if a.Subject == s {
			out = append(out, a)
		}
	}
	return out
}

// Since returns retained alerts with Seq > seq.
func (l *Log) Since(seq uint64) []Alert {
	l.mu.RLock()
	defer l.mu.RUnlock()
	i := sort.Search(len(l.alerts), func(i int) bool { return l.alerts[i].Seq > seq })
	out := make([]Alert, len(l.alerts)-i)
	copy(out, l.alerts[i:])
	return out
}

// LastSeq returns the sequence number of the most recently raised alert
// (0 when none has been raised). It is the "live only" resume point for
// a subscriber that wants no backlog.
func (l *Log) LastSeq() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.nextSeq - 1
}

// OldestRetained returns the sequence number of the oldest alert still
// in the bounded log — the alert-space retention horizon. When the log
// is empty it returns nextSeq (the sequence the NEXT alert will get):
// either way, every alert with Seq < OldestRetained is gone, and a
// replay cursor behind OldestRetained-1 has provably lost alerts.
func (l *Log) OldestRetained() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.alerts) > 0 {
		return l.alerts[0].Seq
	}
	return l.nextSeq
}

// Len returns the number of retained alerts.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.alerts)
}

// Counts returns the number of retained alerts per kind.
func (l *Log) Counts() map[Kind]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make(map[Kind]int)
	for _, a := range l.alerts {
		out[a.Kind]++
	}
	return out
}
