package audit

import (
	"strings"
	"testing"
)

func TestRaiseAssignsSeq(t *testing.T) {
	l := NewLog(10)
	a1 := l.Raise(Alert{Time: 5, Kind: Overstay, Subject: "alice", Location: "CAIS", Detail: "exit window [20, 100] passed"})
	a2 := l.Raise(Alert{Time: 6, Kind: DeniedRequest, Subject: "bob", Location: "CAIS"})
	if a1.Seq != 1 || a2.Seq != 2 {
		t.Errorf("seqs = %d, %d", a1.Seq, a2.Seq)
	}
	if l.Len() != 2 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestEviction(t *testing.T) {
	l := NewLog(3)
	for i := 0; i < 5; i++ {
		l.Raise(Alert{Kind: DeniedRequest})
	}
	all := l.All()
	if len(all) != 3 || all[0].Seq != 3 || all[2].Seq != 5 {
		t.Errorf("retained = %v", all)
	}
}

func TestDefaultLimit(t *testing.T) {
	l := NewLog(0)
	if l.limit != DefaultLimit {
		t.Errorf("limit = %d", l.limit)
	}
	l = NewLog(-5)
	if l.limit != DefaultLimit {
		t.Errorf("limit = %d", l.limit)
	}
}

func TestFilters(t *testing.T) {
	l := NewLog(10)
	l.Raise(Alert{Kind: Overstay, Subject: "alice"})
	l.Raise(Alert{Kind: DeniedRequest, Subject: "bob"})
	l.Raise(Alert{Kind: Overstay, Subject: "bob"})
	if got := l.ByKind(Overstay); len(got) != 2 {
		t.Errorf("ByKind = %v", got)
	}
	if got := l.BySubject("bob"); len(got) != 2 {
		t.Errorf("BySubject = %v", got)
	}
	if got := l.BySubject("ghost"); len(got) != 0 {
		t.Errorf("ghost = %v", got)
	}
	counts := l.Counts()
	if counts[Overstay] != 2 || counts[DeniedRequest] != 1 {
		t.Errorf("counts = %v", counts)
	}
}

func TestSince(t *testing.T) {
	l := NewLog(10)
	for i := 0; i < 4; i++ {
		l.Raise(Alert{Kind: DeniedRequest})
	}
	got := l.Since(2)
	if len(got) != 2 || got[0].Seq != 3 {
		t.Errorf("since = %v", got)
	}
	if len(l.Since(100)) != 0 {
		t.Error("future since should be empty")
	}
}

func TestSubscribe(t *testing.T) {
	l := NewLog(10)
	var seen []Alert
	l.Subscribe(func(a Alert) { seen = append(seen, a) })
	l.Raise(Alert{Kind: Overstay, Subject: "alice"})
	l.Raise(Alert{Kind: EarlyExit, Subject: "bob"})
	if len(seen) != 2 || seen[0].Kind != Overstay || seen[1].Kind != EarlyExit {
		t.Errorf("seen = %v", seen)
	}
	if seen[0].Seq != 1 {
		t.Error("subscriber should see assigned seq")
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		Overstay:          "overstay",
		UnauthorizedEntry: "unauthorized-entry",
		EarlyExit:         "early-exit",
		DeniedRequest:     "denied-request",
		EntryExhausted:    "entry-exhausted",
		Kind(42):          "Kind(42)",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k, want)
		}
	}
}

func TestAlertString(t *testing.T) {
	a := Alert{Time: 101, Kind: Overstay, Subject: "alice", Location: "CAIS", Detail: "exit window passed"}
	s := a.String()
	for _, frag := range []string{"t=101", "overstay", "alice", "CAIS", "exit window passed"} {
		if !strings.Contains(s, frag) {
			t.Errorf("alert string %q missing %q", s, frag)
		}
	}
}

func TestAllReturnsCopy(t *testing.T) {
	l := NewLog(10)
	l.Raise(Alert{Subject: "alice"})
	all := l.All()
	all[0].Subject = "mutated"
	if l.All()[0].Subject != "alice" {
		t.Error("All must return a copy")
	}
}
