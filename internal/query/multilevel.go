package query

import (
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/profile"
)

// MultilevelResult is the output of the Lemma-1 hierarchical solver.
type MultilevelResult struct {
	// Inaccessible lists the inaccessible primitive locations in node
	// order of the full expansion — the same answer FindInaccessible
	// gives on the flat expansion.
	Inaccessible []graph.ID
	// PrunedBy maps a location that Lemma 1 settled locally to the name
	// of the composite whose local solve proved it inaccessible; such
	// locations are excluded from the global propagation.
	PrunedBy map[graph.ID]graph.ID
	// LocalUpdates and GlobalUpdates count location processings in the
	// per-composite and global phases, for the E10 ablation bench.
	LocalUpdates, GlobalUpdates int
}

// FindInaccessibleMultilevel solves the inaccessible location finding
// problem on a multilevel graph using Lemma 1: "if a location l′ in L is
// inaccessible to a subject s considering only the entry locations in L,
// then l′ is also inaccessible to s from every entry location in the
// multilevel location graph containing l."
//
// Phase 1 runs Algorithm 1 locally inside every composite (deepest first),
// with the composite's own entry primitives as entries and the full access
// request duration [0, ∞). Anything locally inaccessible is globally
// inaccessible (Lemma 1 — the global arrival window at an entry is always
// a subset of [0, ∞), and grant durations shrink monotonically with the
// window). Phase 2 runs Algorithm 1 on the full expansion with the settled
// locations' authorizations masked out, so their states never propagate.
//
// The result set equals the flat solve exactly; the hierarchical form does
// less propagation work when composites are internally blocked, which the
// E10 bench measures.
func FindInaccessibleMultilevel(root *graph.Graph, src AuthSource, s profile.SubjectID) MultilevelResult {
	res := MultilevelResult{PrunedBy: make(map[graph.ID]graph.ID)}

	var walk func(g *graph.Graph)
	walk = func(g *graph.Graph) {
		for _, id := range g.Locations() {
			if c := g.Child(id); c != nil {
				walk(c)
				local := FindInaccessible(graph.Expand(c), src, s, Options{})
				res.LocalUpdates += local.Updates
				for _, l := range local.Inaccessible {
					if _, settled := res.PrunedBy[l]; !settled {
						res.PrunedBy[l] = c.Name()
					}
				}
			}
		}
	}
	walk(root)

	f := graph.Expand(root)
	masked := maskedSource{src: src, masked: res.PrunedBy}
	global := FindInaccessible(f, masked, s, Options{})
	res.GlobalUpdates = global.Updates
	res.Inaccessible = global.Inaccessible
	return res
}

// maskedSource hides the authorizations of locations Lemma 1 already
// settled as inaccessible, so the global solve neither grants them nor
// propagates through them (an inaccessible location cannot be transited:
// passing through requires entering).
type maskedSource struct {
	src    AuthSource
	masked map[graph.ID]graph.ID
}

// For implements AuthSource.
func (m maskedSource) For(s profile.SubjectID, l graph.ID) []authz.Authorization {
	if _, settled := m.masked[l]; settled {
		return nil
	}
	return m.src.For(s, l)
}
