package query

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// cacheKey identifies one memoized FindInaccessible run: the subject and
// the §6 access request window (the zero window is the Def.-8 default
// [0, ∞)). The epoch is not part of the key — the whole cache is flushed
// when the epoch moves, so stale generations never accumulate.
type cacheKey struct {
	subject profile.SubjectID
	window  interval.Interval
}

// Cache memoizes Algorithm-1 results per (subject, window) at a given
// epoch. The epoch is supplied by the caller — typically the sum of the
// authorization store's and profile database's mutation versions — and any
// lookup with a different epoch flushes the memo table first, so a cached
// Result is always equal to a fresh recomputation at the current state.
//
// Cached Results are shared between goroutines and must be treated as
// read-only by callers (Algorithm 1 never mutates a returned Result, so
// this falls out naturally for the System query path).
//
// The zero Cache is not usable; call NewCache.
type Cache struct {
	mu      sync.RWMutex
	epoch   uint64
	entries map[cacheKey]*Result
	limit   int

	hits, misses, flushes atomic.Uint64
}

// DefaultCacheLimit bounds the number of memoized (subject, window) pairs
// per epoch when NewCache is given a non-positive limit. One entry holds
// O(N_L) state, so the bound keeps worst-case memory proportional to the
// site size times a constant roster of hot subjects.
const DefaultCacheLimit = 4096

// NewCache returns an empty cache holding at most limit entries per epoch
// (limit <= 0 selects DefaultCacheLimit).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	return &Cache{entries: make(map[cacheKey]*Result), limit: limit}
}

// Result returns the memoized FindInaccessible result for (s, opts.Window)
// at the given epoch, computing and storing it on a miss. Traced runs are
// never cached (the trace is a debugging artifact whose cost dwarfs the
// fixpoint); they always recompute.
func (c *Cache) Result(epoch uint64, f *graph.Flat, src AuthSource, s profile.SubjectID, opts Options) *Result {
	if opts.Trace {
		res := FindInaccessible(f, src, s, opts)
		return &res
	}
	key := cacheKey{subject: s, window: opts.window()}

	c.mu.RLock()
	if c.epoch == epoch {
		if res, ok := c.entries[key]; ok {
			c.mu.RUnlock()
			c.hits.Add(1)
			return res
		}
	}
	c.mu.RUnlock()

	c.misses.Add(1)
	res := FindInaccessible(f, src, s, opts)

	c.mu.Lock()
	if c.epoch != epoch {
		if epoch < c.epoch {
			// A newer epoch already owns the table; our result is
			// stale and must not be stored.
			c.mu.Unlock()
			return &res
		}
		c.flushes.Add(1)
		c.entries = make(map[cacheKey]*Result)
		c.epoch = epoch
	}
	if len(c.entries) < c.limit {
		c.entries[key] = &res
	}
	c.mu.Unlock()
	return &res
}

// Invalidate drops every memoized entry regardless of epoch. The System
// does not need it (every state change it serves is covered by a
// version counter); it exists for callers embedding Cache over an
// AuthSource without one.
func (c *Cache) Invalidate() {
	c.mu.Lock()
	c.entries = make(map[cacheKey]*Result)
	c.flushes.Add(1)
	c.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Flushes uint64 `json:"flushes"`
	Entries int    `json:"entries"`
	Epoch   uint64 `json:"epoch"`
}

// Stats reports hit/miss/flush counters and the current table size.
func (c *Cache) Stats() CacheStats {
	c.mu.RLock()
	entries, epoch := len(c.entries), c.epoch
	c.mu.RUnlock()
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Flushes: c.flushes.Load(),
		Entries: entries,
		Epoch:   epoch,
	}
}
