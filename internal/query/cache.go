package query

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// cacheKey identifies one memoized FindInaccessible run: the subject and
// the §6 access request window (the zero window is the Def.-8 default
// [0, ∞)). The epoch is not part of the key — each epoch owns its own
// generation table, so stale generations never mix with fresh ones.
type cacheKey struct {
	subject profile.SubjectID
	window  interval.Interval
}

// generation is one epoch's memo table. Lookups and inserts go through a
// sync.Map so the hit path is lock-free: a hot query costs one atomic
// generation load plus one sync.Map read, with no mutex to bounce between
// cores. count bounds the table (it may overshoot the limit by a few
// entries under concurrent misses, which only wastes a little memory).
type generation struct {
	epoch   uint64
	entries sync.Map // cacheKey -> *Result
	count   atomic.Int64
}

func (g *generation) store(key cacheKey, res *Result, limit int) {
	if int(g.count.Load()) >= limit {
		return
	}
	if _, loaded := g.entries.LoadOrStore(key, res); !loaded {
		g.count.Add(1)
	}
}

// Cache memoizes Algorithm-1 results per (subject, window) at a given
// epoch. The epoch is supplied by the caller — typically the sum of the
// authorization store's and profile database's mutation versions — and
// each epoch owns an immutable-once-superseded generation table, so a
// cached Result is always equal to a fresh recomputation at the state it
// was keyed to.
//
// The hit path acquires no mutex: the current generation hangs off an
// atomic pointer and its table is a sync.Map. Epoch moves install a new
// generation by compare-and-swap; lookups at an older epoch run against a
// detached table and never pollute the current one.
//
// Cached Results are shared between goroutines and must be treated as
// read-only by callers (Algorithm 1 never mutates a returned Result, so
// this falls out naturally for the System query path).
//
// Bounded windows that cannot change the answer are served from the
// default-window entry (interval subsumption, see Result), and the cache
// tracks which subjects were queried most recently so a post-mutation
// warmer can re-derive them before the first inline query pays the
// fixpoint (RecentSubjects).
//
// The zero Cache is not usable; call NewCache.
type Cache struct {
	cur   atomic.Pointer[generation]
	limit int

	// Recency survives epoch flushes by design: it answers "who is hot",
	// not "what is the answer", and the warmer needs it exactly when the
	// table was just flushed.
	recMu  sync.Mutex
	recSeq uint64
	recent map[profile.SubjectID]uint64

	hits, misses, flushes, subsumed atomic.Uint64
}

// DefaultCacheLimit bounds the number of memoized (subject, window) pairs
// per epoch when NewCache is given a non-positive limit. One entry holds
// O(N_L) state, so the bound keeps worst-case memory proportional to the
// site size times a constant roster of hot subjects.
const DefaultCacheLimit = 4096

// NewCache returns an empty cache holding at most limit entries per epoch
// (limit <= 0 selects DefaultCacheLimit).
func NewCache(limit int) *Cache {
	if limit <= 0 {
		limit = DefaultCacheLimit
	}
	c := &Cache{
		recent: make(map[profile.SubjectID]uint64),
		limit:  limit,
	}
	c.cur.Store(&generation{})
	return c
}

// Generation pins the memo table of one epoch. The core read path stores
// a Generation in each published readView so that cache hits skip even
// the epoch comparison: the view is the epoch.
type Generation struct {
	c *Cache
	g *generation
}

// Generation returns the memo table for the given epoch, installing a
// fresh one if epoch is newer than the current generation. An epoch older
// than the current one gets a detached table: its results are computed
// and memoized for the caller that holds the handle, but never published
// — a stale generation cannot overwrite a newer one.
func (c *Cache) Generation(epoch uint64) Generation {
	for {
		g := c.cur.Load()
		switch {
		case g.epoch == epoch:
			return Generation{c: c, g: g}
		case epoch < g.epoch:
			return Generation{c: c, g: &generation{epoch: epoch}}
		}
		ng := &generation{epoch: epoch}
		if c.cur.CompareAndSwap(g, ng) {
			c.flushes.Add(1)
			return Generation{c: c, g: ng}
		}
	}
}

// Epoch returns the generation's epoch.
func (gen Generation) Epoch() uint64 { return gen.g.epoch }

// Result returns the memoized FindInaccessible result for (s, opts.Window)
// in this generation, computing and storing it on a miss. Traced runs are
// never cached (the trace is a debugging artifact whose cost dwarfs the
// fixpoint); they always recompute.
//
// A bounded-window miss first tries interval subsumption: the window only
// enters Algorithm 1 through the §6 clamping of entry-location
// authorizations (GrantDuring/DepartureDuring at initiation), so when that
// clamping is a no-op for every authorization s holds on an entry
// location, the run is step-for-step identical to the default-window
// [0, ∞) run and the cached default entry answers the bounded query.
// Subsumed lookups count as hits (and in CacheStats.Subsumed).
func (gen Generation) Result(f *graph.Flat, src AuthSource, s profile.SubjectID, opts Options) *Result {
	c, g := gen.c, gen.g
	if opts.Trace {
		res := FindInaccessible(f, src, s, opts)
		return &res
	}
	window := opts.window()
	key := cacheKey{subject: s, window: window}
	if v, ok := g.entries.Load(key); ok {
		c.hits.Add(1)
		return v.(*Result)
	}

	// Recency is recorded only on the slow paths (miss or subsumption),
	// never on plain hits: every epoch flush makes a hot subject's next
	// query a miss, so the recency map still tracks who is hot per
	// generation, and the parallel hit path stays free of the exclusive
	// recMu lock.
	if defWindow := (Options{}).window(); window != defWindow {
		if v, ok := g.entries.Load(cacheKey{subject: s, window: defWindow}); ok && windowSubsumed(f, src, s, window) {
			defRes := v.(*Result)
			c.touch(s)
			c.hits.Add(1)
			c.subsumed.Add(1)
			g.store(key, defRes, c.limit) // future bounded lookups are plain hits
			return defRes
		}
	}

	c.touch(s)
	c.misses.Add(1)
	res := FindInaccessible(f, src, s, opts)
	g.store(key, &res, c.limit)
	return &res
}

// Result returns the memoized FindInaccessible result for (s, opts.Window)
// at the given epoch — Generation(epoch).Result. Callers that query the
// same epoch repeatedly (the core System) hold the Generation instead and
// skip the epoch resolution.
func (c *Cache) Result(epoch uint64, f *graph.Flat, src AuthSource, s profile.SubjectID, opts Options) *Result {
	return c.Generation(epoch).Result(f, src, s, opts)
}

// windowSubsumed reports whether the bounded window would produce exactly
// the default-window result for subject s: clamping every authorization s
// holds on an entry location by the window must equal clamping by [0, ∞).
// The window appears nowhere else in Algorithm 1 (the fixpoint loop clamps
// by neighbours' departure times, not the window), so this condition makes
// the two runs identical. The check costs O(entries × N_a) — far below the
// O(N_L²·N_d·N_a) fixpoint it avoids.
func windowSubsumed(f *graph.Flat, src AuthSource, s profile.SubjectID, window interval.Interval) bool {
	def := Options{}.window()
	for _, e := range f.Entries {
		for _, a := range src.For(s, f.Nodes[e]) {
			if a.GrantDuring(window) != a.GrantDuring(def) ||
				a.DepartureDuring(window) != a.DepartureDuring(def) {
				return false
			}
		}
	}
	return true
}

// touch records s as recently queried.
func (c *Cache) touch(s profile.SubjectID) {
	c.recMu.Lock()
	c.recSeq++
	c.recent[s] = c.recSeq
	if len(c.recent) > c.limit {
		// Rare: halve by recency so the map stays bounded by the roster
		// of hot subjects, not the lifetime subject population.
		c.pruneRecentLocked()
	}
	c.recMu.Unlock()
}

func (c *Cache) pruneRecentLocked() {
	seqs := make([]uint64, 0, len(c.recent))
	for _, seq := range c.recent {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	floor := seqs[len(seqs)/2]
	for s, seq := range c.recent {
		if seq < floor {
			delete(c.recent, s)
		}
	}
}

// RecentSubjects returns up to k subjects ordered from most to least
// recently computed-for (a miss or a subsumption; plain hits don't
// refresh recency) — the warm set for post-mutation re-derivation.
func (c *Cache) RecentSubjects(k int) []profile.SubjectID {
	if k <= 0 {
		return nil
	}
	type entry struct {
		s   profile.SubjectID
		seq uint64
	}
	c.recMu.Lock()
	all := make([]entry, 0, len(c.recent))
	for s, seq := range c.recent {
		all = append(all, entry{s, seq})
	}
	c.recMu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]profile.SubjectID, len(all))
	for i, e := range all {
		out[i] = e.s
	}
	return out
}

// Invalidate drops every memoized entry regardless of epoch by installing
// a fresh generation at the current epoch. The System does not need it
// (every state change it serves is covered by a version counter); it
// exists for callers embedding Cache over an AuthSource without one.
// Callers still holding a Generation handle keep their pinned table.
func (c *Cache) Invalidate() {
	for {
		g := c.cur.Load()
		if c.cur.CompareAndSwap(g, &generation{epoch: g.epoch}) {
			c.flushes.Add(1)
			return
		}
	}
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Flushes uint64 `json:"flushes"`
	// Subsumed counts the hits served to bounded windows from the
	// default-window entry; they are included in Hits.
	Subsumed uint64 `json:"subsumed"`
	Entries  int    `json:"entries"`
	Epoch    uint64 `json:"epoch"`
}

// Stats reports hit/miss/flush counters and the current table size.
func (c *Cache) Stats() CacheStats {
	g := c.cur.Load()
	return CacheStats{
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Flushes:  c.flushes.Load(),
		Subsumed: c.subsumed.Load(),
		Entries:  int(g.count.Load()),
		Epoch:    g.epoch,
	}
}
