package query

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
)

// randomFlatGraph builds a random connected location graph: a spanning
// tree plus extra edges, entry at a random location.
func randomFlatGraph(rng *rand.Rand, n, extraEdges, entries int) *graph.Graph {
	g := graph.New("R")
	ids := make([]graph.ID, n)
	for i := 0; i < n; i++ {
		ids[i] = graph.ID(fmt.Sprintf("r%02d", i))
		if err := g.AddLocation(ids[i]); err != nil {
			panic(err)
		}
	}
	for i := 1; i < n; i++ {
		if err := g.AddEdge(ids[i], ids[rng.Intn(i)]); err != nil {
			panic(err)
		}
	}
	for k := 0; k < extraEdges; k++ {
		a, b := rng.Intn(n), rng.Intn(n)
		if a != b && !g.HasEdge(ids[a], ids[b]) {
			_ = g.AddEdge(ids[a], ids[b])
		}
	}
	if entries < 1 {
		entries = 1
	}
	for k := 0; k < entries; k++ {
		_ = g.SetEntry(ids[rng.Intn(n)])
	}
	return g
}

// randomAuths populates a store with 0–3 random authorizations per
// location for subject u, with small random windows so that temporal
// blockades actually occur.
func randomAuths(rng *rand.Rand, st *authz.Store, locs []graph.ID) {
	for _, l := range locs {
		for k := 0; k < rng.Intn(4); k++ {
			// Positive times: the zero-value interval [0, 0] means
			// "unspecified" to authz.Normalize.
			es := interval.Time(1 + rng.Intn(40))
			ee := es + interval.Time(rng.Intn(30))
			xs := es + interval.Time(rng.Intn(20))
			xe := ee + interval.Time(rng.Intn(30))
			if xe < xs {
				xe = xs
			}
			a := authz.New(interval.New(es, ee), interval.New(xs, xe), "u", l, 1)
			if _, err := st.Add(a); err != nil {
				panic(err)
			}
		}
	}
}

// TestPropFixpointMatchesNaiveFlat: Algorithm 1 and the Def.-8
// route-enumeration baseline agree on random flat graphs.
func TestPropFixpointMatchesNaiveFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 250; trial++ {
		n := 3 + rng.Intn(7)
		g := randomFlatGraph(rng, n, rng.Intn(4), 1+rng.Intn(2))
		f := graph.Expand(g)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)

		fix := FindInaccessible(f, st, "u", Options{}).Inaccessible
		naive := NaiveFindInaccessible(f, st, "u", 0)
		if fmt.Sprint(fix) != fmt.Sprint(naive) {
			t.Fatalf("trial %d: fixpoint %v != naive %v\ngraph: %s\nauths: %v",
				trial, fix, naive, g, st.All())
		}
	}
}

// TestPropWindowedFixpointMatchesNaive: the windowed generalisation and
// the windowed baseline agree on random graphs and random windows.
func TestPropWindowedFixpointMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for trial := 0; trial < 200; trial++ {
		n := 3 + rng.Intn(6)
		g := randomFlatGraph(rng, n, rng.Intn(3), 1+rng.Intn(2))
		f := graph.Expand(g)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)
		lo := interval.Time(rng.Intn(60))
		hi := lo + interval.Time(rng.Intn(80))
		window := interval.New(lo, hi)

		fix := FindInaccessible(f, st, "u", Options{Window: window}).Inaccessible
		naive := NaiveFindInaccessibleDuring(f, st, "u", window, 0)
		if fmt.Sprint(fix) != fmt.Sprint(naive) {
			t.Fatalf("trial %d window %s: fixpoint %v != naive %v\ngraph: %s",
				trial, window, fix, naive, g)
		}
	}
}

func TestWindowedInaccessibleTable1(t *testing.T) {
	// Per §6 the access request duration bounds when the visit may
	// START: the grant of the first location is clamped to
	// [max(tp,tis), min(tq,tie)], but departures — and hence later
	// grants — extend beyond tq. So [0, 30] still reaches B (enter A by
	// 30, depart during [40, 50], B's window [40, 60] is open).
	f := graph.Expand(graph.Fig4Graph())
	st := table1Store(t)
	res := FindInaccessible(f, st, "Alice", Options{Window: iv("[0, 30]")})
	if fmt.Sprint(res.Inaccessible) != "[C]" {
		t.Errorf("inaccessible in [0,30] = %v", res.Inaccessible)
	}
	// A window beginning after A's entry duration ends ([2, 35]) makes
	// the entry — and therefore everything — unreachable.
	res = FindInaccessible(f, st, "Alice", Options{Window: iv("[36, 300]")})
	if len(res.Inaccessible) != 4 {
		t.Errorf("inaccessible in [36,300] = %v", res.Inaccessible)
	}
	// The zero window means the Def.-8 default [0, ∞).
	res = FindInaccessible(f, st, "Alice", Options{})
	if fmt.Sprint(res.Inaccessible) != "[C]" {
		t.Errorf("default window = %v", res.Inaccessible)
	}
}

// TestPropMultilevelMatchesFlat: the Lemma-1 hierarchical solver returns
// exactly the flat answer on random two-level campuses.
func TestPropMultilevelMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 120; trial++ {
		// Campus of 2–4 buildings, each 3–6 rooms.
		campus := graph.New("campus")
		nb := 2 + rng.Intn(3)
		var names []graph.ID
		for b := 0; b < nb; b++ {
			bld := graph.New(graph.ID(fmt.Sprintf("b%d", b)))
			rooms := 3 + rng.Intn(4)
			var ids []graph.ID
			for r := 0; r < rooms; r++ {
				id := graph.ID(fmt.Sprintf("b%d.r%d", b, r))
				ids = append(ids, id)
				_ = bld.AddLocation(id)
			}
			for r := 1; r < rooms; r++ {
				_ = bld.AddEdge(ids[r], ids[rng.Intn(r)])
			}
			_ = bld.SetEntry(ids[rng.Intn(rooms)])
			if rng.Intn(2) == 0 {
				_ = bld.SetEntry(ids[rng.Intn(rooms)])
			}
			_ = campus.AddComposite(bld)
			names = append(names, bld.Name())
		}
		for b := 1; b < nb; b++ {
			_ = campus.AddEdge(names[b], names[rng.Intn(b)])
		}
		_ = campus.SetEntry(names[rng.Intn(nb)])
		if err := campus.Validate(); err != nil {
			t.Fatalf("trial %d: fixture invalid: %v", trial, err)
		}

		f := graph.Expand(campus)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)

		flat := FindInaccessible(f, st, "u", Options{}).Inaccessible
		multi := FindInaccessibleMultilevel(campus, st, "u").Inaccessible
		if fmt.Sprint(flat) != fmt.Sprint(multi) {
			t.Fatalf("trial %d: flat %v != multilevel %v\ncampus: %s",
				trial, flat, multi, campus)
		}
	}
}

// TestPropRouteCheckConsistentWithAlgorithm: if CheckRoute authorizes any
// entry→l route, Algorithm 1 must mark l accessible, and vice versa.
func TestPropRouteCheckConsistentWithAlgorithm(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < 150; trial++ {
		n := 3 + rng.Intn(6)
		g := randomFlatGraph(rng, n, rng.Intn(3), 1)
		f := graph.Expand(g)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)
		res := FindInaccessible(f, st, "u", Options{})
		inacc := map[graph.ID]bool{}
		for _, id := range res.Inaccessible {
			inacc[id] = true
		}
		for _, target := range f.Nodes {
			anyRoute := false
			for _, e := range f.EntryIDs() {
				if e == target {
					if CheckRoute(st, "u", graph.Route{e}, interval.From(0)).Authorized {
						anyRoute = true
					}
					continue
				}
				for _, r := range f.AllRoutes(e, target, 0) {
					if CheckRoute(st, "u", r, interval.From(0)).Authorized {
						anyRoute = true
						break
					}
				}
			}
			if anyRoute == inacc[target] {
				t.Fatalf("trial %d: %s anyRoute=%v but inaccessible=%v",
					trial, target, anyRoute, inacc[target])
			}
		}
	}
}

func TestLemma1Pruning(t *testing.T) {
	// E10: a building whose inner rooms are temporally blocked from its
	// own entrance is settled locally; the global phase then does less
	// work than the flat solve, and the answers agree.
	campus := graph.New("campus")
	main := graph.New("main")
	for _, l := range []graph.ID{"main.lobby", "main.lab", "main.vault"} {
		_ = main.AddLocation(l)
	}
	_ = main.AddEdge("main.lobby", "main.lab")
	_ = main.AddEdge("main.lab", "main.vault")
	_ = main.SetEntry("main.lobby")

	annex := graph.New("annex")
	for _, l := range []graph.ID{"annex.lobby", "annex.store"} {
		_ = annex.AddLocation(l)
	}
	_ = annex.AddEdge("annex.lobby", "annex.store")
	_ = annex.SetEntry("annex.lobby")

	_ = campus.AddComposite(main)
	_ = campus.AddComposite(annex)
	_ = campus.AddEdge("main", "annex")
	_ = campus.SetEntry("main")

	st := authz.NewStore()
	// main.lobby open; main.lab's entry window closes before the lobby
	// can be departed, blocking lab and vault locally.
	_, _ = st.Add(authz.New(iv("[0, 10]"), iv("[20, 30]"), "u", "main.lobby", 1))
	_, _ = st.Add(authz.New(iv("[0, 15]"), iv("[5, 40]"), "u", "main.lab", 1))
	_, _ = st.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "main.vault", 1))
	// annex fully open.
	_, _ = st.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "annex.lobby", 1))
	_, _ = st.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "u", "annex.store", 1))

	multi := FindInaccessibleMultilevel(campus, st, "u")
	flat := FindInaccessible(graph.Expand(campus), st, "u", Options{})
	if fmt.Sprint(multi.Inaccessible) != fmt.Sprint(flat.Inaccessible) {
		t.Fatalf("multi %v != flat %v", multi.Inaccessible, flat.Inaccessible)
	}
	if fmt.Sprint(multi.Inaccessible) != "[main.lab main.vault]" {
		t.Errorf("inaccessible = %v", multi.Inaccessible)
	}
	// Lemma 1 settled both blocked rooms in the local phase.
	if multi.PrunedBy["main.lab"] != "main" || multi.PrunedBy["main.vault"] != "main" {
		t.Errorf("pruned = %v", multi.PrunedBy)
	}
	// The global phase therefore did not have to propagate into them
	// beyond visiting: its update count is at most the flat solve's.
	if multi.GlobalUpdates > flat.Updates {
		t.Errorf("global updates %d > flat %d", multi.GlobalUpdates, flat.Updates)
	}
}

func TestNaiveRouteCapGuards(t *testing.T) {
	// With a tiny route cap the baseline may wrongly call a location
	// inaccessible (documented behaviour: the cap is a harness guard).
	f := graph.Expand(graph.Fig4Graph())
	st := table1Store(t)
	uncapped := NaiveFindInaccessible(f, st, "Alice", 0)
	if fmt.Sprint(uncapped) != "[C]" {
		t.Errorf("uncapped = %v", uncapped)
	}
}
