package query

import (
	"strings"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
)

func TestItineraryFeasibleTable1(t *testing.T) {
	// Table 1 timings: enter A in [2,35] / leave in [20,50]; B in
	// [40,60] / [55,80]. A(10→40 is too late for A's exit? no: exit
	// window [20,50] contains 45) — plan: A 10..45, B 45..60... B's exit
	// [55,80] contains 60. Then back is not needed: B is not an exit, so
	// a feasible itinerary must end at A.
	f := graph.Expand(graph.Fig4Graph())
	st := table1Store(t)
	ic := CheckItinerary(f, st, "Alice", []Visit{
		{Location: "A", Arrive: 10, Depart: 45},
		{Location: "B", Arrive: 45, Depart: 60},
	})
	if ic.Feasible {
		t.Error("itinerary ending at non-exit B must be infeasible")
	}
	if !strings.Contains(ic.Reason, "not an exit location") {
		t.Errorf("reason = %q", ic.Reason)
	}
	// D's windows are [5,25]/[10,30]: A 3..20, D 20..25, A 25..40 works
	// only if A's auth admits a second entry — Table 1 grants 1 entry,
	// so the return leg fails.
	ic = CheckItinerary(f, st, "Alice", []Visit{
		{Location: "A", Arrive: 3, Depart: 20},
		{Location: "D", Arrive: 20, Depart: 25},
		{Location: "A", Arrive: 25, Depart: 40},
	})
	if ic.Feasible {
		t.Error("single-entry A cannot be entered twice in one itinerary")
	}
	if ic.FailsAt != 2 {
		t.Errorf("fails at %d: %s", ic.FailsAt, ic.Reason)
	}
}

func TestItineraryFeasibleWithGenerousAuths(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	st := authz.NewStore()
	for _, l := range []graph.ID{"A", "B"} {
		_, _ = st.Add(authz.New(iv("[1, 100]"), iv("[1, 200]"), "u", l, authz.Unlimited))
	}
	ic := CheckItinerary(f, st, "u", []Visit{
		{Location: "A", Arrive: 5, Depart: 10},
		{Location: "B", Arrive: 10, Depart: 20},
		{Location: "A", Arrive: 20, Depart: 30},
	})
	if !ic.Feasible || ic.FailsAt != -1 {
		t.Fatalf("ic = %+v", ic)
	}
	if len(ic.Grants) != 3 {
		t.Errorf("grants = %v", ic.Grants)
	}
}

func TestItineraryRejections(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	st := authz.NewStore()
	for _, l := range []graph.ID{"A", "B", "C", "D"} {
		_, _ = st.Add(authz.New(iv("[1, 100]"), iv("[1, 200]"), "u", l, authz.Unlimited))
	}
	cases := []struct {
		name   string
		visits []Visit
		reason string
	}{
		{"empty", nil, "empty itinerary"},
		{"unknown location", []Visit{{Location: "Mars", Arrive: 1, Depart: 2}}, "unknown location"},
		{"time reversal", []Visit{{Location: "A", Arrive: 5, Depart: 2}}, "departs before"},
		{"starts inside", []Visit{{Location: "B", Arrive: 1, Depart: 2}}, "not an entry location"},
		{"teleport", []Visit{{Location: "A", Arrive: 1, Depart: 2}, {Location: "C", Arrive: 3, Depart: 4}}, "no direct connection"},
		{"overlap", []Visit{{Location: "A", Arrive: 1, Depart: 5}, {Location: "B", Arrive: 4, Depart: 6}}, "before leaving"},
		{"out of window", []Visit{{Location: "A", Arrive: 500, Depart: 600}}, "no authorization admits"},
	}
	for _, tc := range cases {
		ic := CheckItinerary(f, st, "u", tc.visits)
		if ic.Feasible {
			t.Errorf("%s: should be infeasible", tc.name)
			continue
		}
		if !strings.Contains(ic.Reason, tc.reason) {
			t.Errorf("%s: reason = %q, want %q", tc.name, ic.Reason, tc.reason)
		}
	}
}

func TestItineraryPicksAuthCoveringBothWindows(t *testing.T) {
	// Two authorizations on A: one admits early arrivals but requires an
	// early departure; the other admits the late departure. A visit
	// arriving early and departing late needs a single authorization
	// covering both — neither does, so it fails; shifting the arrival
	// into the second window succeeds.
	g := graph.New("solo")
	_ = g.AddLocation("A")
	_ = g.SetEntry("A")
	f := graph.Expand(g)
	st := authz.NewStore()
	_, _ = st.Add(authz.New(iv("[1, 10]"), iv("[1, 20]"), "u", "A", authz.Unlimited))
	a2, _ := st.Add(authz.New(iv("[15, 40]"), iv("[15, 90]"), "u", "A", authz.Unlimited))

	ic := CheckItinerary(f, st, "u", []Visit{{Location: "A", Arrive: 5, Depart: 60}})
	if ic.Feasible {
		t.Error("no single authorization covers arrive=5, depart=60")
	}
	ic = CheckItinerary(f, st, "u", []Visit{{Location: "A", Arrive: 20, Depart: 60}})
	if !ic.Feasible || ic.Grants[0] != a2.ID {
		t.Errorf("ic = %+v", ic)
	}
}
