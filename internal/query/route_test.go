package query

import (
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
)

func TestCheckRouteAuthorized(t *testing.T) {
	// Route ⟨A, B⟩ with Table 1: grant(A) = [2, 35], departure(A) =
	// [20, 50]; grant(B) in [20, 50] = [40, 50] — authorized.
	st := table1Store(t)
	rc := CheckRoute(st, "Alice", graph.Route{"A", "B"}, interval.From(0))
	if !rc.Authorized || rc.FailsAt != -1 {
		t.Fatalf("rc = %+v", rc)
	}
	if rc.GrantDuration().String() != "[2, 35]" {
		t.Errorf("route grant = %s", rc.GrantDuration())
	}
	if rc.Grants[1].String() != "[40, 50]" {
		t.Errorf("B grant = %s", rc.Grants[1])
	}
	if rc.DepartureDuration().String() != "[55, 80]" {
		t.Errorf("route departure = %s", rc.DepartureDuration())
	}
}

func TestCheckRouteFailsAtTimedOutLocation(t *testing.T) {
	// ⟨A, B, C⟩: C's grant in B's departure [55, 80] is [55, 45] = null.
	st := table1Store(t)
	rc := CheckRoute(st, "Alice", graph.Route{"A", "B", "C"}, interval.From(0))
	if rc.Authorized || rc.FailsAt != 2 {
		t.Fatalf("rc = %+v", rc)
	}
	if rc.Reason == "" {
		t.Error("failure needs a reason")
	}
	// ⟨A, D, C⟩ fails too: C's grant in D's departure [20, 30] is null.
	rc = CheckRoute(st, "Alice", graph.Route{"A", "D", "C"}, interval.From(0))
	if rc.Authorized || rc.FailsAt != 2 {
		t.Fatalf("rc = %+v", rc)
	}
}

func TestCheckRouteNoAuthAtSource(t *testing.T) {
	st := table1Store(t)
	rc := CheckRoute(st, "Bob", graph.Route{"A", "B"}, interval.From(0))
	if rc.Authorized || rc.FailsAt != 0 {
		t.Fatalf("rc = %+v", rc)
	}
}

func TestCheckRouteWindowedRequest(t *testing.T) {
	// A request duration starting after A's entry window closes.
	st := table1Store(t)
	rc := CheckRoute(st, "Alice", graph.Route{"A"}, iv("[36, 100]"))
	if rc.Authorized {
		t.Errorf("rc = %+v", rc)
	}
	// A request duration inside the window.
	rc = CheckRoute(st, "Alice", graph.Route{"A"}, iv("[10, 30]"))
	if !rc.Authorized || rc.GrantDuration().String() != "[10, 30]" {
		t.Errorf("rc = %+v", rc)
	}
}

func TestCheckRouteEmptyRoute(t *testing.T) {
	rc := CheckRoute(table1Store(t), "Alice", nil, interval.From(0))
	if rc.Authorized || rc.Reason != "empty route" {
		t.Errorf("rc = %+v", rc)
	}
	if !rc.GrantDuration().IsEmpty() || !rc.DepartureDuration().IsEmpty() {
		t.Error("empty route has no durations")
	}
}

func TestCheckRouteMultipleAuthsWidenWindows(t *testing.T) {
	// Two authorizations on the middle room, each covering a different
	// window; the union lets the route succeed where either alone fails.
	g := graph.New("line")
	for _, l := range []graph.ID{"A", "B", "C"} {
		_ = g.AddLocation(l)
	}
	_ = g.AddEdge("A", "B")
	_ = g.AddEdge("B", "C")
	_ = g.SetEntry("A")

	st := authz.NewStore()
	_, _ = st.Add(authz.New(iv("[0, 10]"), iv("[5, 20]"), "u", "A", 1))
	// B reachable via window [5, 20]; departure early.
	_, _ = st.Add(authz.New(iv("[5, 8]"), iv("[6, 9]"), "u", "B", 1))
	// Second B auth departs late, enabling C.
	_, _ = st.Add(authz.New(iv("[10, 15]"), iv("[30, 40]"), "u", "B", 1))
	_, _ = st.Add(authz.New(iv("[35, 50]"), iv("[40, 60]"), "u", "C", 1))

	rc := CheckRoute(st, "u", graph.Route{"A", "B", "C"}, interval.From(0))
	if !rc.Authorized {
		t.Fatalf("rc = %+v", rc)
	}
	// B's departure must be the union of both auths' departures.
	if rc.Departs[1].String() != "[6, 9] ∪ [30, 40]" {
		t.Errorf("B departures = %s", rc.Departs[1])
	}
	// And the algorithm agrees C is accessible.
	res := FindInaccessible(graph.Expand(g), st, "u", Options{})
	if len(res.Inaccessible) != 0 {
		t.Errorf("algorithm disagrees: %v", res.Inaccessible)
	}
}
