package query

import (
	"fmt"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// Visit is one leg of a planned itinerary: be inside Location from Arrive
// until Depart (both inclusive chronons).
type Visit struct {
	Location graph.ID
	Arrive   interval.Time
	Depart   interval.Time
}

// ItineraryCheck is the outcome of CheckItinerary.
type ItineraryCheck struct {
	Feasible bool
	// FailsAt is the index of the first infeasible visit (-1 when
	// feasible); Reason explains it.
	FailsAt int
	Reason  string
	// Grants[i] is the authorization selected for visit i (valid only up
	// to FailsAt).
	Grants []authz.ID
}

// CheckItinerary verifies a concrete schedule against the authorization
// database and the location graph: every consecutive pair of visits must
// be directly connected (an expansion edge), the first and last visits
// must use entry/exit locations, each arrival must fall inside some
// authorization's entry duration, and each departure inside the *same*
// authorization's exit duration (Definition 4 binds the two windows
// together). Where CheckRoute reasons about windows ("is there any
// feasible timing"), CheckItinerary validates one specific timing — the
// question a visitor-management front desk actually asks.
//
// Entry counts are not consumed (this is a what-if query), but a visit
// is rejected when its authorization's MaxEntries is zero-capped by
// earlier visits of the same itinerary using the same authorization
// window more than n times.
func CheckItinerary(f *graph.Flat, src AuthSource, s profile.SubjectID, visits []Visit) ItineraryCheck {
	ic := ItineraryCheck{FailsAt: -1}
	if len(visits) == 0 {
		return ItineraryCheck{FailsAt: 0, Reason: "empty itinerary"}
	}
	used := map[authz.ID]int64{}
	var prev *Visit
	for i := range visits {
		v := visits[i]
		if _, ok := f.Index[v.Location]; !ok {
			return ic.fail(i, fmt.Sprintf("unknown location %q", v.Location))
		}
		if v.Depart < v.Arrive {
			return ic.fail(i, fmt.Sprintf("visit %d departs before it arrives", i))
		}
		switch {
		case prev == nil:
			if !f.IsEntry(v.Location) {
				return ic.fail(i, fmt.Sprintf("%s is not an entry location", v.Location))
			}
		default:
			if !f.HasEdge(prev.Location, v.Location) {
				return ic.fail(i, fmt.Sprintf("no direct connection from %s to %s", prev.Location, v.Location))
			}
			if v.Arrive < prev.Depart {
				return ic.fail(i, fmt.Sprintf("visit %d arrives at %s before leaving %s at %s", i, v.Arrive, prev.Location, prev.Depart))
			}
		}
		// Find an authorization whose entry window covers the arrival
		// AND whose exit window covers the departure, with entries left.
		var chosen *authz.Authorization
		for _, a := range src.For(s, v.Location) {
			a := a
			if !a.PermitsEntryAt(v.Arrive) || !a.PermitsExitAt(v.Depart) {
				continue
			}
			if a.MaxEntries != authz.Unlimited && used[a.ID] >= a.MaxEntries {
				continue
			}
			chosen = &a
			break
		}
		if chosen == nil {
			return ic.fail(i, fmt.Sprintf("no authorization admits %s to %s at %s and out at %s",
				s, v.Location, v.Arrive, v.Depart))
		}
		used[chosen.ID]++
		ic.Grants = append(ic.Grants, chosen.ID)
		prev = &visits[i]
	}
	if last := visits[len(visits)-1]; !f.IsExit(last.Location) {
		return ic.fail(len(visits)-1, fmt.Sprintf("%s is not an exit location", last.Location))
	}
	ic.Feasible = true
	return ic
}

func (ic ItineraryCheck) fail(at int, reason string) ItineraryCheck {
	ic.Feasible = false
	ic.FailsAt = at
	ic.Reason = reason
	return ic
}
