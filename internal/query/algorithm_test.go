package query

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
)

func iv(s string) interval.Interval { return interval.MustParse(s) }

// table1Store builds the Table 1 authorization database for Alice over
// the Fig. 4 graph:
//
//	A ([2, 35],  [20, 50], (Alice, A), 1)
//	B ([40, 60], [55, 80], (Alice, B), 1)
//	C ([38, 45], [70, 90], (Alice, C), 1)
//	D ([5, 25],  [10, 30], (Alice, D), 1)
func table1Store(t testing.TB) *authz.Store {
	t.Helper()
	st := authz.NewStore()
	for _, row := range []struct {
		loc         graph.ID
		entry, exit string
	}{
		{"A", "[2, 35]", "[20, 50]"},
		{"B", "[40, 60]", "[55, 80]"},
		{"C", "[38, 45]", "[70, 90]"},
		{"D", "[5, 25]", "[10, 30]"},
	} {
		if _, err := st.Add(authz.New(iv(row.entry), iv(row.exit), "Alice", row.loc, 1)); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestExperimentTable2Trace(t *testing.T) {
	// E4: reproduce Table 2 — the step-by-step run of Algorithm 1 on the
	// Fig. 4 graph with the Table 1 authorizations, ending with C
	// inaccessible.
	f := graph.Expand(graph.Fig4Graph())
	st := table1Store(t)
	res := FindInaccessible(f, st, "Alice", Options{Trace: true})

	// Final answer: "Return {l | l.T^g = null}" = {C}.
	if len(res.Inaccessible) != 1 || res.Inaccessible[0] != "C" {
		t.Fatalf("inaccessible = %v, want [C]", res.Inaccessible)
	}

	// Final states must equal the last row of Table 2.
	finals := map[graph.ID][2]string{
		"A": {"[2, 35]", "[20, 50]"},
		"B": {"[40, 50]", "[55, 80]"},
		"C": {"null", "null"},
		"D": {"[20, 25]", "[20, 30]"},
	}
	for loc, want := range finals {
		st := res.States[loc]
		if setStr(st.Grant) != want[0] || setStr(st.Depart) != want[1] {
			t.Errorf("%s: T^g=%s T^d=%s, want %s %s", loc, setStr(st.Grant), setStr(st.Depart), want[0], want[1])
		}
	}

	// The trace row labels: Initiation, Update A (entry), round 1 =
	// {B, D}, round 2 = {A, C}. (The paper prints round 2 as Update C
	// then Update A; the two are independent, so only the label order
	// differs — the per-row states below are Table 2's.)
	var labels []string
	for _, ts := range res.Trace {
		labels = append(labels, ts.Label())
	}
	want := []string{"Initiation", "Update A", "Update B", "Update D", "Update A", "Update C"}
	if fmt.Sprint(labels) != fmt.Sprint(want) {
		t.Fatalf("trace labels = %v, want %v", labels, want)
	}

	// Row "Initiation": everything false/null.
	for loc, st := range res.Trace[0].States {
		if st.Flag || !st.Grant.IsEmpty() || !st.Depart.IsEmpty() {
			t.Errorf("initiation row: %s = %+v", loc, st)
		}
	}

	// Row "Update A" (Table 2 row 2): A F [2,35] [20,50]; B T φ φ;
	// C F φ φ; D T φ φ.
	assertRow(t, res.Trace[1], map[graph.ID][3]string{
		"A": {"F", "[2, 35]", "[20, 50]"},
		"B": {"T", "null", "null"},
		"C": {"F", "null", "null"},
		"D": {"T", "null", "null"},
	})

	// Row "Update B" (Table 2 row 3): A T [2,35] [20,50]; B F [40,50]
	// [55,80]; C T φ φ; D T φ φ.
	assertRow(t, res.Trace[2], map[graph.ID][3]string{
		"A": {"T", "[2, 35]", "[20, 50]"},
		"B": {"F", "[40, 50]", "[55, 80]"},
		"C": {"T", "null", "null"},
		"D": {"T", "null", "null"},
	})

	// Row "Update D" (Table 2 row 4): A T; B F; C T; D F [20,25] [20,30].
	assertRow(t, res.Trace[3], map[graph.ID][3]string{
		"A": {"T", "[2, 35]", "[20, 50]"},
		"B": {"F", "[40, 50]", "[55, 80]"},
		"C": {"T", "null", "null"},
		"D": {"F", "[20, 25]", "[20, 30]"},
	})

	// After processing A and C in round 2, A's durations are unchanged
	// ("Since there is no change to both durations, A will not update
	// its neighbors") and C remains null, so the loop terminates.
	last := res.Trace[len(res.Trace)-1]
	for loc, st := range last.States {
		if st.Flag {
			t.Errorf("final row: %s still flagged", loc)
		}
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", res.Rounds)
	}

	t.Logf("Table 2 reproduction:\n%s", FormatTrace(f, res))
}

func assertRow(t *testing.T, ts TraceStep, want map[graph.ID][3]string) {
	t.Helper()
	for loc, w := range want {
		st := ts.States[loc]
		flag := "F"
		if st.Flag {
			flag = "T"
		}
		if flag != w[0] || setStr(st.Grant) != w[1] || setStr(st.Depart) != w[2] {
			t.Errorf("row %s, %s: got %s %s %s, want %s %s %s",
				ts.Label(), loc, flag, setStr(st.Grant), setStr(st.Depart), w[0], w[1], w[2])
		}
	}
}

func setStr(s interval.Set) string { return s.String() }

func TestNoAuthorizationsEverythingInaccessible(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	res := FindInaccessible(f, authz.NewStore(), "Alice", Options{})
	if len(res.Inaccessible) != 4 {
		t.Errorf("inaccessible = %v", res.Inaccessible)
	}
	if res.Rounds != 0 {
		t.Errorf("no propagation expected, rounds = %d", res.Rounds)
	}
}

func TestOtherSubjectSeesNothing(t *testing.T) {
	// Authorizations are per subject: Bob has none, so everything is
	// inaccessible to him even though Alice's Table 1 auths exist.
	f := graph.Expand(graph.Fig4Graph())
	res := FindInaccessible(f, table1Store(t), "Bob", Options{})
	if len(res.Inaccessible) != 4 {
		t.Errorf("Bob's inaccessible = %v", res.Inaccessible)
	}
}

func TestBlockedEntryBlocksEverything(t *testing.T) {
	// Def. 8's corollary: making the entry inaccessible blocks the whole
	// graph ("a location can be made inaccessible ... by blocking all
	// routes to the location").
	f := graph.Expand(graph.Fig4Graph())
	st := authz.NewStore()
	// Everyone except the entry A has generous windows.
	for _, loc := range []graph.ID{"B", "C", "D"} {
		_, _ = st.Add(authz.New(iv("[0, 100]"), iv("[0, 200]"), "Alice", loc, 1))
	}
	res := FindInaccessible(f, st, "Alice", Options{})
	if len(res.Inaccessible) != 4 {
		t.Errorf("inaccessible = %v, want all four", res.Inaccessible)
	}
}

func TestTimingBlockade(t *testing.T) {
	// B is reachable topologically but not temporally: its entry window
	// closes before A's departure window opens.
	g := graph.New("line")
	_ = g.AddLocation("A")
	_ = g.AddLocation("B")
	_ = g.AddEdge("A", "B")
	_ = g.SetEntry("A")
	f := graph.Expand(g)
	st := authz.NewStore()
	_, _ = st.Add(authz.New(iv("[0, 10]"), iv("[20, 30]"), "u", "A", 1))
	_, _ = st.Add(authz.New(iv("[5, 15]"), iv("[15, 40]"), "u", "B", 1)) // closes at 15 < 20
	res := FindInaccessible(f, st, "u", Options{})
	if len(res.Inaccessible) != 1 || res.Inaccessible[0] != "B" {
		t.Errorf("inaccessible = %v, want [B]", res.Inaccessible)
	}
}

func TestAccessibleComplement(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	got := Accessible(f, table1Store(t), "Alice")
	if fmt.Sprint(got) != "[A B D]" {
		t.Errorf("accessible = %v", got)
	}
}

func TestExperimentFig2NTUGraph(t *testing.T) {
	// E1: the Fig. 1/2 campus end to end — Alice holds authorizations
	// only along SCE.GO → CAIS (as rule r3 of Example 3 would derive);
	// every other campus location is inaccessible, including all of EEE.
	ntu := graph.NTUCampus()
	f := graph.Expand(ntu)
	st := authz.NewStore()
	for _, loc := range []graph.ID{graph.SCEGO, graph.SCESectionA, graph.SCESectionB, graph.SCESectionC, graph.CHIPES, graph.CAIS} {
		_, _ = st.Add(authz.New(iv("[5, 20]"), iv("[15, 50]"), "Alice", loc, 2))
	}
	res := FindInaccessible(f, st, "Alice", Options{})
	inacc := map[graph.ID]bool{}
	for _, id := range res.Inaccessible {
		inacc[id] = true
	}
	for _, id := range []graph.ID{graph.SCEGO, graph.SCESectionA, graph.SCESectionB, graph.CAIS} {
		if inacc[id] {
			t.Errorf("%s should be accessible", id)
		}
	}
	for _, id := range []graph.ID{graph.EEEGO, graph.Lab1, graph.SCEDean, graph.CEEEntrance} {
		if !inacc[id] {
			t.Errorf("%s should be inaccessible", id)
		}
	}
	t.Logf("NTU campus: %d of %d locations inaccessible to Alice", len(res.Inaccessible), len(f.Nodes))
}

func TestFormatTraceRendersPhi(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	res := FindInaccessible(f, table1Store(t), "Alice", Options{Trace: true})
	out := FormatTrace(f, res)
	for _, frag := range []string{"Initiation", "Update A", "Update B", "φ", "[2, 35]", "[55, 80]"} {
		if !strings.Contains(out, frag) {
			t.Errorf("trace output missing %q", frag)
		}
	}
}

func TestUpdatesCountedForComplexity(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	res := FindInaccessible(f, table1Store(t), "Alice", Options{})
	// 1 entry init + round 1 (B, D) + round 2 (A, C) = 5 updates.
	if res.Updates != 5 {
		t.Errorf("updates = %d, want 5", res.Updates)
	}
}
