package query

import (
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// NaiveFindInaccessible solves the inaccessible location finding problem
// by brute force, straight from Definition 8: a location l is accessible
// when some entry location has an authorized simple route to l with access
// request duration [0, ∞); otherwise it is inaccessible. Every simple
// route from every entry is enumerated and checked with CheckRoute.
//
// This is the comparison baseline for Algorithm 1 (experiment E6): it is
// exponential in the graph's cycle structure, where the fixpoint algorithm
// is polynomial — but on small graphs the two must agree exactly, which
// the equivalence property tests exploit. The routeCap guards the test
// harness against pathological blowup; 0 means unlimited.
func NaiveFindInaccessible(f *graph.Flat, src AuthSource, s profile.SubjectID, routeCap int) []graph.ID {
	return NaiveFindInaccessibleDuring(f, src, s, interval.From(0), routeCap)
}

// NaiveFindInaccessibleDuring is the brute-force solver for an arbitrary
// access request duration, mirroring Options.Window on FindInaccessible.
func NaiveFindInaccessibleDuring(f *graph.Flat, src AuthSource, s profile.SubjectID, window interval.Interval, routeCap int) []graph.ID {
	var out []graph.ID
	for _, target := range f.Nodes {
		if !naiveAccessible(f, src, s, target, window, routeCap) {
			out = append(out, target)
		}
	}
	return out
}

func naiveAccessible(f *graph.Flat, src AuthSource, s profile.SubjectID, target graph.ID, window interval.Interval, routeCap int) bool {
	for _, e := range f.EntryIDs() {
		if e == target {
			// Zero-length route: the entry's own grant must be non-null.
			if !CheckRoute(src, s, graph.Route{e}, window).Authorized {
				continue
			}
			return true
		}
		for _, r := range f.AllRoutes(e, target, routeCap) {
			if CheckRoute(src, s, r, window).Authorized {
				return true
			}
		}
	}
	return false
}
