// Package query implements LTAM's query engine (Fig. 3), centred on the
// paper's flagship analysis: the inaccessible location finding problem
// (Definitions 8 and 9) and its solution, Algorithm 1 — a fixpoint
// propagation of overall grant times T^g and overall departure times T^d
// over the location graph. It also provides the §6 authorized-route check,
// a Lemma-1-based hierarchical solver for multilevel graphs, and a naive
// route-enumeration baseline used to validate the algorithm and to
// benchmark against.
package query

import (
	"fmt"
	"strings"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// AuthSource supplies the authorizations of a subject on a location;
// *authz.Store and *authz.View satisfy it.
type AuthSource interface {
	For(s profile.SubjectID, l graph.ID) []authz.Authorization
}

// appendSource is the allocation-free gather an AuthSource may optionally
// provide (both *authz.Store and *authz.View do): FindInaccessible batches
// its per-location lookups into one backing slice instead of one
// allocation per location.
type appendSource interface {
	AppendFor(dst []authz.Authorization, s profile.SubjectID, l graph.ID) []authz.Authorization
}

// gatherAuths collects src.For(s, l) for every node of f. With an
// appendSource the N_L per-location slices share one backing array
// (sub-sliced by offset after the gather, since appends may reallocate).
func gatherAuths(f *graph.Flat, src AuthSource, s profile.SubjectID) [][]authz.Authorization {
	n := len(f.Nodes)
	auths := make([][]authz.Authorization, n)
	as, ok := src.(appendSource)
	if !ok {
		for i, id := range f.Nodes {
			auths[i] = src.For(s, id)
		}
		return auths
	}
	var flat []authz.Authorization
	offs := make([]int, n+1)
	for i, id := range f.Nodes {
		flat = as.AppendFor(flat, s, id)
		offs[i+1] = len(flat)
	}
	for i := range auths {
		auths[i] = flat[offs[i]:offs[i+1]:offs[i+1]]
	}
	return auths
}

// State is the Algorithm-1 per-location state: the boolean flag, the
// overall grant time T^g and the overall departure time T^d.
type State struct {
	Flag   bool
	Grant  interval.Set // T^g
	Depart interval.Set // T^d
}

// TraceStep is one row of a Table-2-style trace: the location that was
// just processed ("Initiation" for the starting row) and every location's
// state after the update.
type TraceStep struct {
	Updated graph.ID // "" for the initiation row
	States  map[graph.ID]State
}

// Label renders the row label as in Table 2.
func (ts TraceStep) Label() string {
	if ts.Updated == "" {
		return "Initiation"
	}
	return "Update " + string(ts.Updated)
}

// Result is the output of FindInaccessible.
type Result struct {
	// Inaccessible lists the locations with null overall grant time, in
	// node order (Algorithm 1 line 35).
	Inaccessible []graph.ID
	// States holds the final per-location state.
	States map[graph.ID]State
	// Trace holds the per-update rows when tracing was requested.
	Trace []TraceStep
	// Rounds is the number of while-loop sweeps; Updates the number of
	// location processings — the work measure behind the paper's
	// O(N_L²·N_d·N_a) bound.
	Rounds, Updates int
}

// Options tunes FindInaccessible.
type Options struct {
	// Trace records a TraceStep after the initiation of each entry
	// location and after every location update, reproducing Table 2.
	Trace bool
	// Window is the access request duration. Definition 8 fixes it to
	// [0, ∞); leaving Window zero keeps that default. A bounded window
	// generalises the query to "which locations are inaccessible to s
	// when the visit must happen within [tp, tq]" — the entry
	// locations' grant and departure durations are clamped per §6's
	// GrantDuring/DepartureDuring instead of taken whole.
	Window interval.Interval
}

func (o Options) window() interval.Interval {
	if o.Window == (interval.Interval{}) || o.Window.IsEmpty() {
		return interval.From(0)
	}
	return o.Window
}

// FindInaccessible runs Algorithm 1 for subject s over the expanded
// location graph f, reading authorizations from src. It follows the
// paper's pseudocode line by line, with two documented corrections of
// obvious typos, both confirmed by the paper's own Table 2 narrative:
//
//   - line 8 reads "if lentry.T^d = null then [flag neighbours]"; it must
//     be ≠ null (neighbours become reachable when the entry CAN be
//     departed — after "Update A" with T^d=[20,50], B and D are flagged);
//   - line 28 reads "if l.T^d = l.T^old_d then [flag neighbours]"; it
//     must be ≠ ("Since there is no change to both durations, A will not
//     update its neighbors").
func FindInaccessible(f *graph.Flat, src AuthSource, s profile.SubjectID, opts Options) Result {
	n := len(f.Nodes)
	states := make([]State, n) // line 1: T^g = T^d = null, flag = false

	res := Result{States: make(map[graph.ID]State, n)}
	auths := gatherAuths(f, src, s)

	if opts.Trace {
		res.Trace = append(res.Trace, snapshot("", f, states))
	}

	// Lines 2–13: initiation of entry locations. With the default
	// window [0, ∞), GrantDuring/DepartureDuring reduce to the raw
	// entry/exit durations of lines 4–5; a bounded window clamps them
	// per §6.
	window := opts.window()
	for _, e := range f.Entries {
		for _, a := range auths[e] {
			g := a.GrantDuring(window)
			if g.IsEmpty() {
				continue
			}
			states[e].Grant = states[e].Grant.Add(g)                           // line 4
			states[e].Depart = states[e].Depart.Add(a.DepartureDuring(window)) // line 5
		}
		states[e].Flag = false           // line 7: will not change further... except via the loop
		if !states[e].Depart.IsEmpty() { // line 8 (corrected to ≠ null)
			for _, nb := range f.Adj[e] {
				states[nb].Flag = true // line 10
			}
		}
		res.Updates++
		if opts.Trace {
			res.Trace = append(res.Trace, snapshot(f.Nodes[e], f, states))
		}
	}

	// Lines 14–34: fixpoint loop. Each sweep snapshots the flagged set
	// and processes it in node order, which keeps the run deterministic.
	// One flagged buffer is reused across sweeps.
	flagged := make([]int, 0, n)
	for {
		flagged = flagged[:0]
		for i := range states {
			if states[i].Flag {
				flagged = append(flagged, i)
			}
		}
		if len(flagged) == 0 {
			break // line 14
		}
		res.Rounds++
		for _, li := range flagged {
			st := &states[li]
			st.Flag = false        // line 16
			oldDepart := st.Depart // line 17
			var t interval.Set     // line 18: T := ∪ neighbours' T^d
			for _, nb := range f.Adj[li] {
				t = t.Union(states[nb].Depart)
			}
			for wi := 0; wi < t.Len(); wi++ { // line 19 (At avoids Intervals' copy)
				w := t.At(wi)
				for _, a := range auths[li] { // line 20
					g := a.GrantDuring(w) // line 21
					if !g.IsEmpty() {     // line 22
						st.Grant = st.Grant.Add(g)                      // line 23
						st.Depart = st.Depart.Add(a.DepartureDuring(w)) // line 24
					}
				}
			}
			if !st.Depart.Equal(oldDepart) { // line 28 (corrected to ≠)
				for _, nb := range f.Adj[li] {
					states[nb].Flag = true // line 30
				}
			}
			res.Updates++
			if opts.Trace {
				res.Trace = append(res.Trace, snapshot(f.Nodes[li], f, states))
			}
		}
	}

	// Line 35: return {l | l.T^g = null}.
	for i, id := range f.Nodes {
		res.States[id] = states[i]
		if states[i].Grant.IsEmpty() {
			res.Inaccessible = append(res.Inaccessible, id)
		}
	}
	return res
}

func snapshot(updated graph.ID, f *graph.Flat, states []State) TraceStep {
	ts := TraceStep{Updated: updated, States: make(map[graph.ID]State, len(states))}
	for i, id := range f.Nodes {
		ts.States[id] = states[i]
	}
	return ts
}

// Accessible returns the locations NOT inaccessible to s — the complement
// query mentioned in §5 ("a query that find all locations inaccessible
// (or accessible) to a given subject").
func Accessible(f *graph.Flat, src AuthSource, s profile.SubjectID) []graph.ID {
	res := FindInaccessible(f, src, s, Options{})
	return AccessibleFrom(f, &res)
}

// AccessibleFrom derives the §5 complement from an already-computed
// Algorithm-1 result, in node order. The System's cached query path and
// Accessible share it.
func AccessibleFrom(f *graph.Flat, res *Result) []graph.ID {
	inacc := make(map[graph.ID]bool, len(res.Inaccessible))
	for _, id := range res.Inaccessible {
		inacc[id] = true
	}
	var out []graph.ID
	for _, id := range f.Nodes {
		if !inacc[id] {
			out = append(out, id)
		}
	}
	return out
}

// EarliestAccess returns the earliest chronon at which subject s can be
// standing inside location l having entered through an authorized route
// from an entry location — the minimum of l's overall grant time T^g.
// ok is false when l is inaccessible (or unknown). This is a direct
// corollary of Algorithm 1: T^g is exactly the set of instants at which
// s can be granted entry to l along some authorized route.
func EarliestAccess(f *graph.Flat, src AuthSource, s profile.SubjectID, l graph.ID) (interval.Time, bool) {
	if _, known := f.Index[l]; !known {
		return 0, false
	}
	res := FindInaccessible(f, src, s, Options{})
	return res.States[l].Grant.Earliest()
}

// WhoCanAccess is the inverse analysis: of the given subjects, which can
// reach location l through an authorized route (Def. 8's accessibility,
// per subject). Results keep the input order, de-duplicated.
func WhoCanAccess(f *graph.Flat, src AuthSource, subjects []profile.SubjectID, l graph.ID) []profile.SubjectID {
	if _, known := f.Index[l]; !known {
		return nil
	}
	return WhoCanAccessBy(subjects, func(s profile.SubjectID) bool {
		_, ok := EarliestAccess(f, src, s, l)
		return ok
	})
}

// WhoCanAccessBy runs the inverse analysis over an arbitrary
// reachability predicate, keeping input order and de-duplicating.
// WhoCanAccess and the System's cached path share it.
func WhoCanAccessBy(subjects []profile.SubjectID, canReach func(profile.SubjectID) bool) []profile.SubjectID {
	var out []profile.SubjectID
	seen := map[profile.SubjectID]bool{}
	for _, s := range subjects {
		if seen[s] {
			continue
		}
		seen[s] = true
		if canReach(s) {
			out = append(out, s)
		}
	}
	return out
}

// FormatTrace renders a Result's trace as a Table-2-style text table, one
// row per update, with per-location flag / T^g / T^d columns.
func FormatTrace(f *graph.Flat, res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", "")
	for _, id := range f.Nodes {
		fmt.Fprintf(&b, "| %-34s", id)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-12s", "")
	for range f.Nodes {
		fmt.Fprintf(&b, "| %-4s %-14s %-14s", "flag", "T^g", "T^d")
	}
	b.WriteString("\n")
	for _, ts := range res.Trace {
		fmt.Fprintf(&b, "%-12s", ts.Label())
		for _, id := range f.Nodes {
			st := ts.States[id]
			flag := "F"
			if st.Flag {
				flag = "T"
			}
			fmt.Fprintf(&b, "| %-4s %-14s %-14s", flag, setOrPhi(st.Grant), setOrPhi(st.Depart))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func setOrPhi(s interval.Set) string {
	if s.IsEmpty() {
		return "φ"
	}
	return s.String()
}
