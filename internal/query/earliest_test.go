package query

import (
	"testing"

	"repro/internal/graph"
)

func TestEarliestAccessTable1(t *testing.T) {
	f := graph.Expand(graph.Fig4Graph())
	st := table1Store(t)
	cases := []struct {
		loc  graph.ID
		want int64
		ok   bool
	}{
		{"A", 2, true},  // entry: T^g = [2, 35]
		{"B", 40, true}, // T^g = [40, 50]
		{"D", 20, true}, // T^g = [20, 25]
		{"C", 0, false}, // inaccessible
	}
	for _, tc := range cases {
		at, ok := EarliestAccess(f, st, "Alice", tc.loc)
		if ok != tc.ok || (ok && int64(at) != tc.want) {
			t.Errorf("EarliestAccess(%s) = %v, %v; want %v, %v", tc.loc, at, ok, tc.want, tc.ok)
		}
	}
	if _, ok := EarliestAccess(f, st, "Alice", "Mars"); ok {
		t.Error("unknown location must be unreachable")
	}
	if _, ok := EarliestAccess(f, st, "Bob", "A"); ok {
		t.Error("subject with no auths reaches nothing")
	}
}
