package query

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// TestCacheMatchesDirect: at every epoch, the cached result equals a
// direct FindInaccessible run — over random graphs, random windows, and
// mutations between epochs (reusing the equivalence-test fixtures).
func TestCacheMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		g := randomFlatGraph(rng, 3+rng.Intn(7), rng.Intn(4), 1+rng.Intn(2))
		f := graph.Expand(g)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)
		c := NewCache(0)

		for epoch := 0; epoch < 4; epoch++ {
			opts := Options{}
			if rng.Intn(2) == 0 {
				lo := interval.Time(rng.Intn(40))
				opts.Window = interval.New(lo, lo+interval.Time(rng.Intn(60)))
			}
			direct := FindInaccessible(f, st, "u", opts).Inaccessible
			for rep := 0; rep < 3; rep++ {
				cached := c.Result(st.Version(), f, st, "u", opts).Inaccessible
				if fmt.Sprint(cached) != fmt.Sprint(direct) {
					t.Fatalf("trial %d epoch %d rep %d: cached %v != direct %v",
						trial, epoch, rep, cached, direct)
				}
			}
			// Mutate for the next epoch.
			randomAuths(rng, st, f.Nodes[:1+rng.Intn(len(f.Nodes))])
		}
	}
}

// TestCacheStaleEpochNotStored: a result computed under an old epoch
// must not overwrite the newer generation.
func TestCacheStaleEpochNotStored(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(5)), 5, 2, 1))
	st := authz.NewStore()
	randomAuths(rand.New(rand.NewSource(6)), st, f.Nodes)
	c := NewCache(0)

	_ = c.Result(10, f, st, "u", Options{}) // newer generation owns the table
	_ = c.Result(3, f, st, "u", Options{})  // stale: computed but not stored
	stats := c.Stats()
	if stats.Epoch != 10 {
		t.Errorf("epoch = %d, want 10", stats.Epoch)
	}
	if stats.Entries != 1 {
		t.Errorf("entries = %d, want 1 (stale result must not be stored)", stats.Entries)
	}
}

// TestCacheConcurrentEpochRace: concurrent lookups at mixed epochs are
// race-free and every returned result is correct for the store state it
// was computed from (the store is not mutated during the race).
func TestCacheConcurrentEpochRace(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(7)), 8, 3, 2))
	st := authz.NewStore()
	randomAuths(rand.New(rand.NewSource(8)), st, f.Nodes)
	want := fmt.Sprint(FindInaccessible(f, st, "u", Options{}).Inaccessible)

	c := NewCache(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				epoch := uint64(i % 5) // deliberately contend on flushes
				got := c.Result(epoch, f, st, "u", Options{}).Inaccessible
				if fmt.Sprint(got) != want {
					t.Errorf("worker %d: %v != %v", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if stats := c.Stats(); stats.Hits == 0 {
		t.Errorf("expected cache hits under contention, got %+v", stats)
	}
}

// TestCacheWindowSubsumption: a bounded window whose §6 clamp is a no-op
// on every entry-location authorization is answered by the cached
// default-window entry — counted as a (subsumed) hit, not a miss — while
// a window that does clamp recomputes.
func TestCacheWindowSubsumption(t *testing.T) {
	// Corridor e -> m -> far; entry auths live in [10, 30] / exit [15, 40].
	g := graph.New("corridor")
	for _, id := range []graph.ID{"e", "m", "far"} {
		if err := g.AddLocation(id); err != nil {
			t.Fatal(err)
		}
	}
	_ = g.AddEdge("e", "m")
	_ = g.AddEdge("m", "far")
	_ = g.SetEntry("e")
	f := graph.Expand(g)
	st := authz.NewStore()
	for _, id := range []graph.ID{"e", "m", "far"} {
		if _, err := st.Add(authz.New(interval.New(10, 30), interval.New(15, 40), "u", id, authz.Unlimited)); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(0)
	epoch := st.Version()

	def := c.Result(epoch, f, st, "u", Options{})
	if got := c.Stats(); got.Misses != 1 {
		t.Fatalf("priming stats = %+v", got)
	}

	// [1, 100] contains every entry auth's entry and exit duration: the
	// clamp is a no-op, so the default entry must answer it.
	sub := c.Result(epoch, f, st, "u", Options{Window: interval.New(1, 100)})
	if sub != def {
		t.Error("subsumable window did not share the default-window result")
	}
	st1 := c.Stats()
	if st1.Misses != 1 || st1.Subsumed != 1 || st1.Hits != 1 {
		t.Errorf("after subsumable window: %+v", st1)
	}
	// The subsumed answer is now stored under the bounded key: a repeat
	// is a plain hit.
	_ = c.Result(epoch, f, st, "u", Options{Window: interval.New(1, 100)})
	st2 := c.Stats()
	if st2.Hits != 2 || st2.Subsumed != 1 || st2.Misses != 1 {
		t.Errorf("after repeat: %+v", st2)
	}

	// [20, 100] clamps the entry duration ([10,30] -> [20,30]): must
	// recompute, and the answers must equal direct runs.
	bounded := c.Result(epoch, f, st, "u", Options{Window: interval.New(20, 100)})
	if c.Stats().Misses != 2 {
		t.Errorf("clamping window must miss: %+v", c.Stats())
	}
	direct := FindInaccessible(f, st, "u", Options{Window: interval.New(20, 100)})
	if fmt.Sprint(bounded.Inaccessible) != fmt.Sprint(direct.Inaccessible) {
		t.Errorf("bounded: cached %v != direct %v", bounded.Inaccessible, direct.Inaccessible)
	}
}

// TestCacheSubsumptionMatchesDirect is the property form: for random
// stores and random windows, the cache (with subsumption in play) always
// equals a direct computation.
func TestCacheSubsumptionMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 80; trial++ {
		g := randomFlatGraph(rng, 3+rng.Intn(6), rng.Intn(4), 1+rng.Intn(2))
		f := graph.Expand(g)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)
		c := NewCache(0)
		_ = c.Result(st.Version(), f, st, "u", Options{}) // prime the default entry
		for rep := 0; rep < 6; rep++ {
			lo := interval.Time(rng.Intn(60))
			opts := Options{Window: interval.New(lo, lo+interval.Time(rng.Intn(80)))}
			direct := FindInaccessible(f, st, "u", opts).Inaccessible
			cached := c.Result(st.Version(), f, st, "u", opts).Inaccessible
			if fmt.Sprint(cached) != fmt.Sprint(direct) {
				t.Fatalf("trial %d rep %d window %v: cached %v != direct %v",
					trial, rep, opts.Window, cached, direct)
			}
		}
	}
}

// TestCacheRecentSubjects: recency order is most-recent-first, k-bounded,
// refreshed on misses (plain hits leave it untouched, keeping the hit
// path lock-free), and survives epoch flushes (the warmer needs it right
// after one).
func TestCacheRecentSubjects(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(11)), 4, 1, 1))
	st := authz.NewStore()
	c := NewCache(0)
	for _, s := range []profile.SubjectID{"a", "b", "c", "a"} {
		_ = c.Result(1, f, st, s, Options{}) // final "a" is a hit: no refresh
	}
	if got := fmt.Sprint(c.RecentSubjects(2)); got != "[c b]" {
		t.Errorf("RecentSubjects(2) = %s, want [c b]", got)
	}
	// Epoch flush must not erase recency; the new-epoch miss lands first.
	_ = c.Result(2, f, st, "d", Options{})
	if got := fmt.Sprint(c.RecentSubjects(3)); got != "[d c b]" {
		t.Errorf("after flush: %s, want [d c b]", got)
	}
	if got := c.RecentSubjects(0); got != nil {
		t.Errorf("RecentSubjects(0) = %v, want nil", got)
	}
}

// TestCacheLimit: the per-epoch table is bounded; overflow entries are
// computed but not retained.
func TestCacheLimit(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(9)), 4, 1, 1))
	st := authz.NewStore()
	c := NewCache(2)
	for i := 0; i < 10; i++ {
		sub := fmt.Sprintf("u%d", i)
		_ = c.Result(1, f, st, profile.SubjectID(sub), Options{})
	}
	if stats := c.Stats(); stats.Entries > 2 {
		t.Errorf("entries = %d, want <= 2", stats.Entries)
	}
}
