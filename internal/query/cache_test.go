package query

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// TestCacheMatchesDirect: at every epoch, the cached result equals a
// direct FindInaccessible run — over random graphs, random windows, and
// mutations between epochs (reusing the equivalence-test fixtures).
func TestCacheMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 60; trial++ {
		g := randomFlatGraph(rng, 3+rng.Intn(7), rng.Intn(4), 1+rng.Intn(2))
		f := graph.Expand(g)
		st := authz.NewStore()
		randomAuths(rng, st, f.Nodes)
		c := NewCache(0)

		for epoch := 0; epoch < 4; epoch++ {
			opts := Options{}
			if rng.Intn(2) == 0 {
				lo := interval.Time(rng.Intn(40))
				opts.Window = interval.New(lo, lo+interval.Time(rng.Intn(60)))
			}
			direct := FindInaccessible(f, st, "u", opts).Inaccessible
			for rep := 0; rep < 3; rep++ {
				cached := c.Result(st.Version(), f, st, "u", opts).Inaccessible
				if fmt.Sprint(cached) != fmt.Sprint(direct) {
					t.Fatalf("trial %d epoch %d rep %d: cached %v != direct %v",
						trial, epoch, rep, cached, direct)
				}
			}
			// Mutate for the next epoch.
			randomAuths(rng, st, f.Nodes[:1+rng.Intn(len(f.Nodes))])
		}
	}
}

// TestCacheStaleEpochNotStored: a result computed under an old epoch
// must not overwrite the newer generation.
func TestCacheStaleEpochNotStored(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(5)), 5, 2, 1))
	st := authz.NewStore()
	randomAuths(rand.New(rand.NewSource(6)), st, f.Nodes)
	c := NewCache(0)

	_ = c.Result(10, f, st, "u", Options{}) // newer generation owns the table
	_ = c.Result(3, f, st, "u", Options{})  // stale: computed but not stored
	stats := c.Stats()
	if stats.Epoch != 10 {
		t.Errorf("epoch = %d, want 10", stats.Epoch)
	}
	if stats.Entries != 1 {
		t.Errorf("entries = %d, want 1 (stale result must not be stored)", stats.Entries)
	}
}

// TestCacheConcurrentEpochRace: concurrent lookups at mixed epochs are
// race-free and every returned result is correct for the store state it
// was computed from (the store is not mutated during the race).
func TestCacheConcurrentEpochRace(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(7)), 8, 3, 2))
	st := authz.NewStore()
	randomAuths(rand.New(rand.NewSource(8)), st, f.Nodes)
	want := fmt.Sprint(FindInaccessible(f, st, "u", Options{}).Inaccessible)

	c := NewCache(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				epoch := uint64(i % 5) // deliberately contend on flushes
				got := c.Result(epoch, f, st, "u", Options{}).Inaccessible
				if fmt.Sprint(got) != want {
					t.Errorf("worker %d: %v != %v", w, got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if stats := c.Stats(); stats.Hits == 0 {
		t.Errorf("expected cache hits under contention, got %+v", stats)
	}
}

// TestCacheLimit: the per-epoch table is bounded; overflow entries are
// computed but not retained.
func TestCacheLimit(t *testing.T) {
	f := graph.Expand(randomFlatGraph(rand.New(rand.NewSource(9)), 4, 1, 1))
	st := authz.NewStore()
	c := NewCache(2)
	for i := 0; i < 10; i++ {
		sub := fmt.Sprintf("u%d", i)
		_ = c.Result(1, f, st, profile.SubjectID(sub), Options{})
	}
	if stats := c.Stats(); stats.Entries > 2 {
		t.Errorf("entries = %d, want <= 2", stats.Entries)
	}
}
