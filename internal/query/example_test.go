package query_test

import (
	"fmt"

	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/query"
)

// ExampleFindInaccessible reproduces the paper's §6 example: the Fig. 4
// graph with the Table 1 authorizations leaves location C inaccessible
// to Alice.
func ExampleFindInaccessible() {
	f := graph.Expand(graph.Fig4Graph())
	st := authz.NewStore()
	add := func(loc graph.ID, entry, exit string) {
		a := authz.New(interval.MustParse(entry), interval.MustParse(exit), "Alice", loc, 1)
		if _, err := st.Add(a); err != nil {
			panic(err)
		}
	}
	add("A", "[2, 35]", "[20, 50]")
	add("B", "[40, 60]", "[55, 80]")
	add("C", "[38, 45]", "[70, 90]")
	add("D", "[5, 25]", "[10, 30]")

	res := query.FindInaccessible(f, st, "Alice", query.Options{})
	fmt.Println("inaccessible:", res.Inaccessible)
	fmt.Println("T^g(B):", res.States["B"].Grant)
	fmt.Println("T^d(D):", res.States["D"].Depart)
	// Output:
	// inaccessible: [C]
	// T^g(B): [40, 50]
	// T^d(D): [20, 30]
}

// ExampleCheckRoute shows the §6 authorized-route check: the route
// ⟨A, B⟩ is authorized, and its grant duration is A's clamped entry
// window.
func ExampleCheckRoute() {
	st := authz.NewStore()
	mk := func(loc graph.ID, entry, exit string) {
		a := authz.New(interval.MustParse(entry), interval.MustParse(exit), "Alice", loc, 1)
		if _, err := st.Add(a); err != nil {
			panic(err)
		}
	}
	mk("A", "[2, 35]", "[20, 50]")
	mk("B", "[40, 60]", "[55, 80]")

	rc := query.CheckRoute(st, "Alice", graph.Route{"A", "B"}, interval.From(0))
	fmt.Println("authorized:", rc.Authorized)
	fmt.Println("grant:", rc.GrantDuration())
	fmt.Println("departure:", rc.DepartureDuration())
	// Output:
	// authorized: true
	// grant: [2, 35]
	// departure: [55, 80]
}

// ExampleEarliestAccess answers a scheduling question: the earliest time
// Alice can be inside D, entering through A.
func ExampleEarliestAccess() {
	f := graph.Expand(graph.Fig4Graph())
	st := authz.NewStore()
	mk := func(loc graph.ID, entry, exit string) {
		a := authz.New(interval.MustParse(entry), interval.MustParse(exit), "Alice", loc, 1)
		if _, err := st.Add(a); err != nil {
			panic(err)
		}
	}
	mk("A", "[2, 35]", "[20, 50]")
	mk("D", "[5, 25]", "[10, 30]")

	at, ok := query.EarliestAccess(f, st, "Alice", "D")
	fmt.Println(at, ok)
	// Output:
	// 20 true
}
