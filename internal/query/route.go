package query

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
)

// RouteCheck is the outcome of the §6 authorized-route test for a route
// ⟨l₁, …, l_k⟩ and an access request duration [tp, tq].
type RouteCheck struct {
	// Authorized reports whether the route satisfies every §6 condition.
	Authorized bool
	// Grants[i] and Departs[i] are the grant and departure duration sets
	// of l_{i+1} computed step by step (Departs of the destination is
	// whatever remains permitted, though §6 does not require it to be
	// non-null).
	Grants, Departs []interval.Set
	// FailsAt is the index of the first location whose grant (or, for a
	// non-final location, departure) duration is null; -1 when
	// authorized.
	FailsAt int
	// Reason explains a failure.
	Reason string
}

// GrantDuration returns the route's grant duration — the grant duration
// of its first location (§6).
func (rc RouteCheck) GrantDuration() interval.Set {
	if len(rc.Grants) == 0 {
		return interval.Set{}
	}
	return rc.Grants[0]
}

// DepartureDuration returns the route's departure duration — the
// departure duration of its last location (§6).
func (rc RouteCheck) DepartureDuration() interval.Set {
	if len(rc.Departs) == 0 {
		return interval.Set{}
	}
	return rc.Departs[len(rc.Departs)-1]
}

// CheckRoute evaluates the §6 definition: a route r = ⟨l₁, …, l_k⟩ is
// authorized for subject s with access request duration window when
//
//   - the grant duration of s for l₁ in window is not null,
//   - the departure duration of s for l₁ in window is not null,
//   - for each 2 <= i < k, the grant and departure durations of l_i in
//     the departure duration of l_{i-1} are not null, and
//   - the grant duration of l_k in the departure duration of l_{k-1} is
//     not null.
//
// The paper defines the durations per single authorization; with several
// authorizations per location the windows become interval sets, each
// authorization contributing its grant/departure only when its own grant
// is non-null in the incoming window — exactly the pairing Algorithm 1
// lines 19–25 use.
func CheckRoute(src AuthSource, s profile.SubjectID, r graph.Route, window interval.Interval) RouteCheck {
	rc := RouteCheck{FailsAt: -1}
	if len(r) == 0 {
		rc.Reason = "empty route"
		rc.FailsAt = 0
		return rc
	}
	in := interval.NewSet(window)
	for i, loc := range r {
		var grant, depart interval.Set
		for _, w := range in.Intervals() {
			for _, a := range src.For(s, loc) {
				g := a.GrantDuring(w)
				if g.IsEmpty() {
					continue
				}
				grant = grant.Add(g)
				depart = depart.Add(a.DepartureDuring(w))
			}
		}
		rc.Grants = append(rc.Grants, grant)
		rc.Departs = append(rc.Departs, depart)
		if grant.IsEmpty() {
			rc.FailsAt = i
			rc.Reason = fmt.Sprintf("no grant duration for %s", loc)
			return rc
		}
		if i < len(r)-1 && depart.IsEmpty() {
			rc.FailsAt = i
			rc.Reason = fmt.Sprintf("no departure duration for %s", loc)
			return rc
		}
		in = depart
	}
	rc.Authorized = true
	return rc
}
