// Observability wire types: the /v1/stats trace section and the
// GET /v1/trace per-record stage clocks.
package wire

import "strconv"

// TraceStageStats is one pipeline stage's transition-latency summary:
// the time from the nearest earlier traced stage to this one, over every
// record that crossed it.
type TraceStageStats struct {
	Stage string `json:"stage"`
	EndpointStats
}

// TraceStats is the /v1/stats pipeline-tracing section: per-stage
// transition latencies in pipeline order, plus the highest traced
// sequence (= the node's latest staged record).
type TraceStats struct {
	MaxSeq uint64            `json:"max_seq"`
	Ring   int               `json:"ring"`
	Stages []TraceStageStats `json:"stages"`
}

// TraceStamp is one stage crossing of one record, in nanoseconds on the
// serving node's monotonic trace clock (comparable only within one
// response).
type TraceStamp struct {
	Stage string `json:"stage"`
	Nanos int64  `json:"nanos"`
}

// TraceEntry is one record's stage clock: every stage it crossed, in
// pipeline order.
type TraceEntry struct {
	Seq    uint64       `json:"seq"`
	Stamps []TraceStamp `json:"stamps"`
}

// TraceResponse answers GET /v1/trace: the requested per-record stage
// clocks, ascending by sequence.
type TraceResponse struct {
	MaxSeq  uint64       `json:"max_seq"`
	Entries []TraceEntry `json:"entries"`
}

// SLOReport is the output of `ltamsim -sustain`: a sustained-load run's
// client-side throughput plus the server's per-stage pipeline latency
// summaries. Committed baselines under bench/baselines/ use this shape,
// and tools/benchgate compares a fresh run against them.
type SLOReport struct {
	Kind          string            `json:"kind"` // always "slo"
	Wire          string            `json:"wire"`
	Side          int               `json:"side"`
	Users         int               `json:"users"`
	DurationSec   float64           `json:"duration_sec"`
	Frames        uint64            `json:"frames"`
	ThroughputFPS float64           `json:"throughput_fps"`
	Stages        []TraceStageStats `json:"stages"`
}

// Trace fetches one record's stage clock by global sequence number.
func (c *Client) Trace(seq uint64) (TraceResponse, error) {
	var out TraceResponse
	err := c.do("GET", "/v1/trace?seq="+strconv.FormatUint(seq, 10), nil, &out)
	return out, err
}

// TraceLast fetches the stage clocks of the n most recent records.
func (c *Client) TraceLast(n int) (TraceResponse, error) {
	var out TraceResponse
	err := c.do("GET", "/v1/trace?last="+strconv.Itoa(n), nil, &out)
	return out, err
}
