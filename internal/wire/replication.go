// Replication over the wire: the follower side of the log-shipping
// protocol. A ReplicationSource adapts the HTTP client to the
// core.ReplicaSource contract — bootstrap from GET
// /v1/replication/snapshot, then tail GET /v1/replication/wal?from=N, a
// long-lived chunked stream of length-prefixed frames in exactly the
// WAL's on-disk layout (4-byte little-endian length, 4-byte CRC32,
// JSON body).
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/wire/frame"
)

// TermHeader carries the promotion term on the replication plane: as a
// response header it stamps the term a status answer or WAL stream was
// served under; as a request header it gossips the highest term the
// caller has seen, which is how a resurrected stale primary learns it
// has been fenced.
const TermHeader = "X-Ltam-Term"

// RoleHeader mirrors the role field of /v1/readyz and
// /v1/replication/status ("primary", "replica" or "fenced") so
// orchestration can pick a promotion target from headers alone.
const RoleHeader = "X-Ltam-Role"

// BootstrapResponse carries the primary's full state for a follower:
// the marshaled core snapshot, the global sequence number to tail from,
// and the primary's rule-derivation mode (the follower must re-derive
// exactly like the primary, since derived authorizations are not
// logged).
type BootstrapResponse struct {
	Seq        uint64          `json:"seq"`
	AutoDerive bool            `json:"auto_derive"`
	State      json.RawMessage `json:"state"`
	// Term is the promotion epoch the state was captured under (also
	// embedded in State; surfaced here for the failover machinery).
	Term uint64 `json:"term,omitempty"`
}

// ReplicationStatus reports a node's position in the replication
// stream. Role is "primary" (BaseSeq/TotalSeq populated) or "replica"
// (AppliedSeq/PrimarySeq/Lag/Connected populated).
type ReplicationStatus struct {
	Role string `json:"role"`
	// Term is the node's promotion epoch: the term a primary writes at
	// (or was fenced out of), the highest term a replica has seen.
	Term       uint64 `json:"term,omitempty"`
	Durable    bool   `json:"durable,omitempty"`
	BaseSeq    uint64 `json:"base_seq,omitempty"`
	TotalSeq   uint64 `json:"total_seq,omitempty"`
	AppliedSeq uint64 `json:"applied_seq,omitempty"`
	PrimarySeq uint64 `json:"primary_seq,omitempty"`
	Lag        uint64 `json:"lag,omitempty"`
	Connected  bool   `json:"connected,omitempty"`
	// Bootstraps counts a replica's state loads (>1 = it self-healed in
	// place across a primary compaction); Staleness is how long it has
	// been unable to prove it is caught up — the quantity the
	// -follow-lag-max read barrier bounds.
	Bootstraps  uint64        `json:"bootstraps,omitempty"`
	StalenessNS time.Duration `json:"staleness_ns,omitempty"`
	// Relay reports a cascading follower: it re-serves the replication
	// stream and the event feed from its relay log, whose servable window
	// rides in BaseSeq/TotalSeq. WalConns/WalBytes count the live
	// downstream WAL streams this node serves and the frame bytes shipped
	// over them — the fan-out measurement (leaf traffic lands on the
	// follower's counters; the primary's stay flat).
	Relay    bool   `json:"relay,omitempty"`
	WalConns int64  `json:"wal_conns,omitempty"`
	WalBytes uint64 `json:"wal_bytes,omitempty"`
}

// ReplicationStatus fetches a node's replication position.
func (c *Client) ReplicationStatus() (ReplicationStatus, error) {
	var out ReplicationStatus
	err := c.do("GET", "/v1/replication/status", nil, &out)
	return out, err
}

// ReplicationSource adapts the client to the follower's pull contract
// (core.ReplicaSource). Build one with Client.ReplicationSource.
type ReplicationSource struct {
	c *Client
	// high is the highest promotion term this source has observed. It
	// rides every replication request as the TermHeader gossip: probing
	// a resurrected stale primary with a higher term is what fences it.
	// MultiSource shares one cell across its whole endpoint list.
	high *atomic.Uint64
	// streamTerm is the term of the most recently opened Tail stream —
	// the fencing input (core.TermedSource).
	streamTerm atomic.Uint64
}

// ReplicationSource returns the follower-side adapter for this client.
func (c *Client) ReplicationSource() *ReplicationSource {
	return &ReplicationSource{c: c, high: new(atomic.Uint64)}
}

// SourceTerm reports the term of the last opened WAL stream (0 before
// the first stream, or against a pre-term primary).
func (s *ReplicationSource) SourceTerm() uint64 { return s.streamTerm.Load() }

// noteTerm advances the gossip cell.
func (s *ReplicationSource) noteTerm(term uint64) {
	for {
		cur := s.high.Load()
		if term <= cur || s.high.CompareAndSwap(cur, term) {
			return
		}
	}
}

// headerTerm parses a TermHeader value (0 when absent or malformed).
func headerTerm(h http.Header) uint64 {
	t, _ := strconv.ParseUint(h.Get(TermHeader), 10, 64)
	return t
}

// Bootstrap fetches the primary's full state.
func (s *ReplicationSource) Bootstrap() (uint64, bool, json.RawMessage, error) {
	var out BootstrapResponse
	if err := s.c.do("GET", "/v1/replication/snapshot", nil, &out); err != nil {
		return 0, false, nil, err
	}
	s.noteTerm(out.Term)
	return out.Seq, out.AutoDerive, out.State, nil
}

// Status fetches the node's replication status with the term gossip
// attached, recording any higher term it reports.
func (s *ReplicationSource) Status(ctx context.Context) (ReplicationStatus, error) {
	var st ReplicationStatus
	req, err := http.NewRequestWithContext(ctx, "GET", s.c.BaseURL+"/v1/replication/status", nil)
	if err != nil {
		return st, err
	}
	if t := s.high.Load(); t > 0 {
		req.Header.Set(TermHeader, strconv.FormatUint(t, 10))
	}
	resp, err := s.c.HTTP.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("wire: replication status: HTTP %d", resp.StatusCode)
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return st, err
	}
	s.noteTerm(st.Term)
	return st, nil
}

// PrimarySeq reports the upstream node's shippable frontier: a
// primary's durable record count, or — when the upstream is itself a
// cascading follower — its applied sequence (a leaf's lag is measured
// against its immediate upstream, not the root).
func (s *ReplicationSource) PrimarySeq(ctx context.Context) (uint64, error) {
	st, err := s.Status(ctx)
	if err != nil {
		return 0, err
	}
	if st.Role == "replica" {
		return st.AppliedSeq, nil
	}
	return st.TotalSeq, nil
}

// Tail opens the long-lived WAL stream at global sequence `from` and
// applies each frame's record in order. It returns nil when the server
// ends the stream (the caller reconnects and resumes from its applied
// sequence), storage.ErrSeqGap when the requested sequence has been
// compacted into a snapshot (HTTP 410), ctx.Err() on cancellation, and
// any error apply returned. A frame that fails its checksum aborts the
// stream with an error — the reconnect re-reads it from the log.
func (s *ReplicationSource) Tail(ctx context.Context, from uint64, apply func(storage.Record) error) error {
	url := s.c.BaseURL + "/v1/replication/wal?from=" + strconv.FormatUint(from, 10)
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		return err
	}
	if t := s.high.Load(); t > 0 {
		req.Header.Set(TermHeader, strconv.FormatUint(t, 10))
	}
	resp, err := s.c.HTTP.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	defer resp.Body.Close()
	// One stream is shipped entirely under one term (the handler ends
	// the stream if its term changes), so the header term covers every
	// frame that follows.
	if t := headerTerm(resp.Header); t > 0 {
		s.streamTerm.Store(t)
		s.noteTerm(t)
	} else {
		s.streamTerm.Store(0)
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		return storage.ErrSeqGap
	default:
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		var e Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("wire: replication stream: %s", e.Error)
		}
		return fmt.Errorf("wire: replication stream: HTTP %d", resp.StatusCode)
	}

	// The stream is the WAL's own binary framing, so it is read with the
	// shared frame reader — one reused body buffer for the life of the
	// connection (the record decode copies what it keeps, so aliasing the
	// buffer across frames is safe).
	br := bufio.NewReader(resp.Body)
	fr := frame.NewRawReader(br)
	for {
		body, err := fr.Next()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				// EOF (clean or torn mid-frame): benign stream end; the
				// reconnect resumes from the applied sequence, so a torn
				// HTTP read can never skip or double-apply a record.
				return nil
			}
			return fmt.Errorf("wire: replication stream: %w", err)
		}
		var rec storage.Record
		if err := json.Unmarshal(body, &rec); err != nil {
			return fmt.Errorf("wire: replication stream: decode record: %w", err)
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
}
