// Package wire defines the JSON API types shared by the ltamd server and
// its clients, plus a typed HTTP client. The protocol is a thin, faithful
// projection of the core.System API: administration (subjects,
// authorizations, rules), enforcement (request/enter/leave/tick) and the
// query engine (inaccessible, contacts, alerts).
package wire

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/movement"
	"repro/internal/profile"
	"repro/internal/query"
	"repro/internal/rules"
	"repro/internal/storage"
	"repro/internal/stream"
)

// Error is the wire form of a failure.
type Error struct {
	Error string `json:"error"`
}

// MoveRequest drives Request, Enter, Leave and Tick.
type MoveRequest struct {
	Time     interval.Time     `json:"time"`
	Subject  profile.SubjectID `json:"subject,omitempty"`
	Location graph.ID          `json:"location,omitempty"`
}

// DecisionResponse mirrors enforce.Decision.
type DecisionResponse struct {
	Granted   bool     `json:"granted"`
	Auth      authz.ID `json:"auth,omitempty"`
	Reason    string   `json:"reason,omitempty"`
	Exhausted bool     `json:"exhausted,omitempty"`
}

// TickResponse carries the alerts a monitor tick raised.
type TickResponse struct {
	Raised []audit.Alert `json:"raised"`
}

// RevokeResponse reports the cascade size of a revocation.
type RevokeResponse struct {
	Removed int `json:"removed"`
}

// RuleResponse is the derivation report for an added rule.
type RuleResponse struct {
	Derived []authz.Authorization `json:"derived"`
	Skips   []rules.Skip          `json:"skips,omitempty"`
}

// InaccessibleResponse lists the Algorithm-1 answer.
type InaccessibleResponse struct {
	Subject      profile.SubjectID `json:"subject"`
	Inaccessible []graph.ID        `json:"inaccessible"`
	Accessible   []graph.ID        `json:"accessible"`
}

// ContactsResponse lists co-locations.
type ContactsResponse struct {
	Contacts []movement.Contact `json:"contacts"`
}

// WhereResponse reports presence.
type WhereResponse struct {
	Inside   bool     `json:"inside"`
	Location graph.ID `json:"location,omitempty"`
}

// OccupantsResponse lists who is in a location.
type OccupantsResponse struct {
	Occupants []profile.SubjectID `json:"occupants"`
}

// ReachResponse answers the earliest-access query.
type ReachResponse struct {
	Reachable bool          `json:"reachable"`
	Earliest  interval.Time `json:"earliest,omitempty"`
}

// ResolveRequest selects a conflict-resolution strategy: "combine",
// "keep-first" or "keep-last".
type ResolveRequest struct {
	Strategy string `json:"strategy"`
}

// EndpointStats is one route's latency distribution: request count, mean,
// and p50/p95/p99 in microseconds (percentiles are power-of-two bucket
// upper bounds).
type EndpointStats struct {
	Count     uint64 `json:"count"`
	MeanMicro int64  `json:"mean_us"`
	P50Micro  int64  `json:"p50_us"`
	P95Micro  int64  `json:"p95_us"`
	P99Micro  int64  `json:"p99_us"`
}

// ViewStats reports the server's snapshot read path: the published view's
// epoch, how many views have been published, and the authorization
// store's shard count.
type ViewStats struct {
	Epoch      uint64 `json:"epoch"`
	Publishes  uint64 `json:"publishes"`
	AuthShards int    `json:"auth_shards"`
}

// StatsResponse reports server-side statistics: the engine clock, the
// epoch cache's effectiveness counters, the WAL group committer's
// batching counters, the sharded authorization store's shape, the
// snapshot read path's view counters, and per-endpoint latency
// histograms.
type StatsResponse struct {
	Clock     interval.Time            `json:"clock"`
	Cache     query.CacheStats         `json:"cache"`
	Commit    storage.CommitterStats   `json:"commit"`
	Authz     authz.StoreStats         `json:"authz"`
	View      ViewStats                `json:"view"`
	Endpoints map[string]EndpointStats `json:"endpoints,omitempty"`
	// Replication is present on durable primaries (role "primary",
	// log-shipping coordinates) and on replicas (role "replica",
	// applied sequence and lag).
	Replication *ReplicationStatus `json:"replication,omitempty"`
	// Stream reports the streaming-ingest counters and (once a
	// subscriber exists) the committed-event bus counters. Absent on
	// replicas, which serve neither half.
	Stream *StreamStats `json:"stream,omitempty"`
	// Trace reports the pipeline-tracing stage latencies (absent until
	// the first record is traced).
	Trace *TraceStats `json:"trace,omitempty"`
}

// StreamStats is the /v1/stats streaming section: the long-lived ingest
// connections' aggregate counters and the event bus's fan-out counters.
type StreamStats struct {
	Ingest stream.IngestStats `json:"ingest"`
	Bus    *stream.BusStats   `json:"bus,omitempty"`
}

// Reading is one positioning sample for the batched ingest endpoint
// (POST /v1/observe/batch): subject Subject observed at site coordinate
// (X, Y) at logical time Time. The server resolves the coordinate to a
// primitive location and discards it — the §1 privacy boundary.
type Reading struct {
	Time    interval.Time     `json:"time"`
	Subject profile.SubjectID `json:"subject"`
	X       float64           `json:"x"`
	Y       float64           `json:"y"`
}

// ObserveBatchRequest carries one ingest batch.
type ObserveBatchRequest struct {
	Readings []Reading `json:"readings"`
}

// ObserveOutcome is the per-reading result of a batch: the Def.-7
// decision when the reading produced an entry, whether a movement was
// recorded at all, and the per-reading application error, if any.
type ObserveOutcome struct {
	Granted bool     `json:"granted"`
	Auth    authz.ID `json:"auth,omitempty"`
	Reason  string   `json:"reason,omitempty"`
	Moved   bool     `json:"moved"`
	Error   string   `json:"error,omitempty"`
}

// ObserveBatchResponse lists one outcome per submitted reading, in
// order.
type ObserveBatchResponse struct {
	Results []ObserveOutcome `json:"results"`
}

// Client is a typed HTTP client for ltamd.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient builds a client for the given base URL (e.g.
// "http://localhost:8525").
func NewClient(base string) *Client {
	return &Client{BaseURL: base, HTTP: http.DefaultClient}
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var e Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("wire: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("wire: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("wire: decode %s %s: %w", method, path, err)
		}
	}
	return nil
}

// PutSubject upserts a profile.
func (c *Client) PutSubject(s profile.Subject) error {
	return c.do("POST", "/v1/subjects", s, nil)
}

// RemoveSubject deletes a profile.
func (c *Client) RemoveSubject(id profile.SubjectID) error {
	return c.do("DELETE", "/v1/subjects/"+url.PathEscape(string(id)), nil, nil)
}

// GetSubject fetches a profile.
func (c *Client) GetSubject(id profile.SubjectID) (profile.Subject, error) {
	var out profile.Subject
	err := c.do("GET", "/v1/subjects/"+url.PathEscape(string(id)), nil, &out)
	return out, err
}

// Subjects lists subject IDs.
func (c *Client) Subjects() ([]profile.SubjectID, error) {
	var out []profile.SubjectID
	err := c.do("GET", "/v1/subjects", nil, &out)
	return out, err
}

// AddAuthorization stores an authorization and returns it with its ID.
func (c *Client) AddAuthorization(a authz.Authorization) (authz.Authorization, error) {
	var out authz.Authorization
	err := c.do("POST", "/v1/authorizations", a, &out)
	return out, err
}

// RevokeAuthorization revokes an authorization (and its derivations).
func (c *Client) RevokeAuthorization(id authz.ID) (int, error) {
	var out RevokeResponse
	err := c.do("DELETE", fmt.Sprintf("/v1/authorizations/%d", id), nil, &out)
	return out.Removed, err
}

// Authorizations lists authorizations, optionally filtered.
func (c *Client) Authorizations(subject profile.SubjectID, location graph.ID) ([]authz.Authorization, error) {
	q := url.Values{}
	if subject != "" {
		q.Set("subject", string(subject))
	}
	if location != "" {
		q.Set("location", string(location))
	}
	path := "/v1/authorizations"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var out []authz.Authorization
	err := c.do("GET", path, nil, &out)
	return out, err
}

// AddRule registers a rule and returns its derivation report.
func (c *Client) AddRule(spec rules.Spec) (RuleResponse, error) {
	var out RuleResponse
	err := c.do("POST", "/v1/rules", spec, &out)
	return out, err
}

// RemoveRule deletes a rule.
func (c *Client) RemoveRule(name string) error {
	return c.do("DELETE", "/v1/rules/"+url.PathEscape(name), nil, nil)
}

// Request evaluates an access request.
func (c *Client) Request(t interval.Time, s profile.SubjectID, l graph.ID) (DecisionResponse, error) {
	var out DecisionResponse
	err := c.do("POST", "/v1/request", MoveRequest{Time: t, Subject: s, Location: l}, &out)
	return out, err
}

// Enter records a movement into a location.
func (c *Client) Enter(t interval.Time, s profile.SubjectID, l graph.ID) (DecisionResponse, error) {
	var out DecisionResponse
	err := c.do("POST", "/v1/enter", MoveRequest{Time: t, Subject: s, Location: l}, &out)
	return out, err
}

// Leave records a movement out of the facility.
func (c *Client) Leave(t interval.Time, s profile.SubjectID) error {
	return c.do("POST", "/v1/leave", MoveRequest{Time: t, Subject: s}, nil)
}

// Tick advances the monitor clock.
func (c *Client) Tick(t interval.Time) ([]audit.Alert, error) {
	var out TickResponse
	err := c.do("POST", "/v1/tick", MoveRequest{Time: t}, &out)
	return out.Raised, err
}

// ObserveBatch submits a batch of positioning readings to the high-rate
// ingest endpoint; the server applies them in one critical section and
// logs them as a single WAL group. One outcome is returned per reading.
func (c *Client) ObserveBatch(readings []Reading) ([]ObserveOutcome, error) {
	var out ObserveBatchResponse
	err := c.do("POST", "/v1/observe/batch", ObserveBatchRequest{Readings: readings}, &out)
	return out.Results, err
}

// Inaccessible runs the Algorithm-1 query.
func (c *Client) Inaccessible(s profile.SubjectID) (InaccessibleResponse, error) {
	var out InaccessibleResponse
	err := c.do("GET", "/v1/queries/inaccessible?subject="+url.QueryEscape(string(s)), nil, &out)
	return out, err
}

// Contacts runs the contact-tracing query.
func (c *Client) Contacts(s profile.SubjectID, window interval.Interval) ([]movement.Contact, error) {
	q := url.Values{}
	q.Set("subject", string(s))
	q.Set("from", strconv.FormatInt(int64(window.Start), 10))
	q.Set("to", strconv.FormatInt(int64(window.End), 10))
	var out ContactsResponse
	err := c.do("GET", "/v1/queries/contacts?"+q.Encode(), nil, &out)
	return out.Contacts, err
}

// Where reports a subject's current location.
func (c *Client) Where(s profile.SubjectID) (WhereResponse, error) {
	var out WhereResponse
	err := c.do("GET", "/v1/where?subject="+url.QueryEscape(string(s)), nil, &out)
	return out, err
}

// Occupants lists who is in a location.
func (c *Client) Occupants(l graph.ID) ([]profile.SubjectID, error) {
	var out OccupantsResponse
	err := c.do("GET", "/v1/occupants?location="+url.QueryEscape(string(l)), nil, &out)
	return out.Occupants, err
}

// Alerts fetches alerts after the given sequence number.
func (c *Client) Alerts(since uint64) ([]audit.Alert, error) {
	var out []audit.Alert
	err := c.do("GET", fmt.Sprintf("/v1/alerts?since=%d", since), nil, &out)
	return out, err
}

// Reach asks for the earliest time s can be inside l.
func (c *Client) Reach(s profile.SubjectID, l graph.ID) (ReachResponse, error) {
	q := url.Values{}
	q.Set("subject", string(s))
	q.Set("location", string(l))
	var out ReachResponse
	err := c.do("GET", "/v1/queries/reach?"+q.Encode(), nil, &out)
	return out, err
}

// WhoCan lists the subjects who can reach l.
func (c *Client) WhoCan(l graph.ID) ([]profile.SubjectID, error) {
	var out OccupantsResponse
	err := c.do("GET", "/v1/queries/whocan?location="+url.QueryEscape(string(l)), nil, &out)
	return out.Occupants, err
}

// Conflicts lists detected authorization conflicts.
func (c *Client) Conflicts() ([]authz.Conflict, error) {
	var out []authz.Conflict
	err := c.do("GET", "/v1/conflicts", nil, &out)
	return out, err
}

// ResolveConflicts applies a resolution strategy server-side.
func (c *Client) ResolveConflicts(strategy string) ([]authz.Resolution, error) {
	var out []authz.Resolution
	err := c.do("POST", "/v1/conflicts/resolve", ResolveRequest{Strategy: strategy}, &out)
	return out, err
}

// GraphSpec fetches the site graph.
func (c *Client) GraphSpec() (graph.Spec, error) {
	var out graph.Spec
	err := c.do("GET", "/v1/graph", nil, &out)
	return out, err
}

// Snapshot asks the server to persist and compact.
func (c *Client) Snapshot() error {
	return c.do("POST", "/v1/snapshot", nil, nil)
}

// PromoteResponse reports a completed promotion: the new primary's term
// and the global sequence its new WAL lineage starts at.
type PromoteResponse struct {
	Role string `json:"role"`
	Term uint64 `json:"term"`
	Seq  uint64 `json:"seq"`
}

// Promote converts a follower into a primary in place (POST
// /v1/admin/promote). Idempotent: promoting a promoted node returns its
// established term.
func (c *Client) Promote() (PromoteResponse, error) {
	var out PromoteResponse
	err := c.do("POST", "/v1/admin/promote", nil, &out)
	return out, err
}

// Stats fetches server-side query-engine statistics.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do("GET", "/v1/stats", nil, &out)
	return out, err
}
