package frame

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/profile"
	"repro/internal/stream"
)

// TestTornBinaryStreamAckedPrefixDurable is the ingest crash contract
// under the binary framing, proved at every byte offset: cut the
// connection after k bytes and the frames that arrived complete —
// exactly the acked prefix — are durable across a restart, and nothing
// else is. The binary boundary is sharper than NDJSON's: a frame counts
// if and only if its last byte arrived (length, CRC and body all
// present), so completeAt has no newline special case.
func TestTornBinaryStreamAckedPrefixDurable(t *testing.T) {
	_, _, centers := gridSystem(t, 2, t.TempDir(), "alice", "bob")
	frames := []stream.ObserveFrame{
		{Time: 2, Subject: "alice", X: centers[0].X, Y: centers[0].Y},
		{Time: 3, Subject: "bob", X: centers[0].X, Y: centers[0].Y},
		{Time: 4, Subject: "alice", X: centers[1].X, Y: centers[1].Y},
		{Time: 5, Subject: "bob", X: centers[2].X, Y: centers[2].Y},
		{Time: 6, Subject: "alice", X: centers[3].X, Y: centers[3].Y},
		{Time: 7, Subject: "bob", X: centers[1].X, Y: centers[1].Y},
	}
	input, ends := encodeObserveStream(t, frames)

	completeAt := func(k int) uint64 {
		var n uint64
		for _, end := range ends {
			if k >= end {
				n++
			}
		}
		return n
	}

	step := 1
	if testing.Short() {
		step = 13
	}
	for k := 0; k <= len(input); k += step {
		dir := t.TempDir()
		sys, _, _ := gridSystem(t, 2, dir, "alice", "bob")

		var out bytes.Buffer
		ing := &stream.Ingestor{Target: sys, Config: stream.IngestConfig{MaxChunk: 2}}
		or := NewObserveReader(bytes.NewReader(input[:k]))
		aw := NewAckWriter(&out)
		if err := ing.RunFramed(or, aw); err != nil {
			t.Fatalf("k=%d: run: %v", k, err)
		}
		or.Release()
		aw.Release()
		acks := parseBinaryAcks(t, out.Bytes())
		final := acks[len(acks)-1]
		if !final.Final {
			t.Fatalf("k=%d: last ack not final: %+v", k, final)
		}
		want := completeAt(k)
		if final.Acked != want {
			t.Fatalf("k=%d: acked %d frames, %d arrived complete", k, final.Acked, want)
		}
		if got := sys.ReplicationInfo().TotalSeq; final.Seq != got {
			t.Fatalf("k=%d: final ack seq %d != durable frontier %d", k, final.Seq, got)
		}
		if err := sys.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}

		// Restart from the directory: the durable state must be the acked
		// prefix — no more, no less.
		reGraph, reBounds, _, _ := gridParts(t, 2)
		re, err := core.Open(core.Config{Graph: reGraph, Boundaries: reBounds, DataDir: dir})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		if got := re.ReplicationInfo().TotalSeq; got != final.Seq {
			t.Fatalf("k=%d: reopened frontier %d, acked seq %d", k, got, final.Seq)
		}
		ref, _, _ := gridSystem(t, 2, t.TempDir(), "alice", "bob")
		if want > 0 {
			readings := make([]core.Reading, 0, want)
			for _, f := range frames[:want] {
				readings = append(readings, core.Reading{Time: f.Time, Subject: f.Subject, At: geometry.Point{X: f.X, Y: f.Y}})
			}
			outcomes, err := ref.ObserveBatch(readings)
			if err != nil {
				t.Fatalf("k=%d: reference apply: %v", k, err)
			}
			for i, o := range outcomes {
				if o.Err != nil {
					t.Fatalf("k=%d: reference reading %d: %v", k, i, o.Err)
				}
			}
		}
		for _, sub := range []profile.SubjectID{"alice", "bob"} {
			gotLoc, gotIn := re.WhereIs(sub)
			wantLoc, wantIn := ref.WhereIs(sub)
			if gotLoc != wantLoc || gotIn != wantIn {
				t.Fatalf("k=%d: %s at %q/%v after restart, reference %q/%v",
					k, sub, gotLoc, gotIn, wantLoc, wantIn)
			}
		}
		if got, want := re.Movements().Len(), ref.Movements().Len(); got != want {
			t.Fatalf("k=%d: %d movements after restart, reference %d", k, got, want)
		}
		_ = re.Close()
	}
}

// TestSharedChunkerTornConnection: two concurrent binary connections
// feed ONE ingestor (one shared chunker), one is cut at every frame
// boundary and mid-frame offset while the other completes cleanly. The
// torn connection's final ack covers exactly its complete frames, the
// clean connection acks everything, and the durable state across a
// restart is the union of both acked prefixes. The two connections move
// disjoint subjects at one shared timestamp, so the interleaving the
// chunker picks cannot change the outcome.
func TestSharedChunkerTornConnection(t *testing.T) {
	_, _, centers := gridSystem(t, 2, t.TempDir(), "alice", "bob")
	mkFrames := func(sub profile.SubjectID) []stream.ObserveFrame {
		return []stream.ObserveFrame{
			{Time: 2, Subject: sub, X: centers[0].X, Y: centers[0].Y},
			{Time: 2, Subject: sub, X: centers[1].X, Y: centers[1].Y},
			{Time: 2, Subject: sub, X: centers[3].X, Y: centers[3].Y},
			{Time: 2, Subject: sub, X: centers[2].X, Y: centers[2].Y},
		}
	}
	tornFrames := mkFrames("alice")
	cleanFrames := append(mkFrames("bob"), stream.ObserveFrame{End: true})
	tornInput, tornEnds := encodeObserveStream(t, tornFrames)
	cleanInput, _ := encodeObserveStream(t, cleanFrames)

	completeAt := func(k int) uint64 {
		var n uint64
		for _, end := range tornEnds {
			if k >= end {
				n++
			}
		}
		return n
	}

	// Every frame boundary plus one mid-frame offset per frame.
	var cuts []int
	prev := 0
	for _, end := range tornEnds {
		cuts = append(cuts, prev+(end-prev)/2, end)
		prev = end
	}
	cuts = append([]int{0}, cuts...)

	for _, k := range cuts {
		dir := t.TempDir()
		sys, _, _ := gridSystem(t, 2, dir, "alice", "bob")
		ing := &stream.Ingestor{Target: sys, Config: stream.IngestConfig{MaxChunk: 3}}

		run := func(in []byte, out *bytes.Buffer) error {
			or := NewObserveReader(bytes.NewReader(in))
			defer or.Release()
			aw := NewAckWriter(out)
			defer aw.Release()
			return ing.RunFramed(or, aw)
		}
		var tornOut, cleanOut bytes.Buffer
		var wg sync.WaitGroup
		var tornErr, cleanErr error
		wg.Add(2)
		go func() { defer wg.Done(); tornErr = run(tornInput[:k], &tornOut) }()
		go func() { defer wg.Done(); cleanErr = run(cleanInput, &cleanOut) }()
		wg.Wait()
		if tornErr != nil || cleanErr != nil {
			t.Fatalf("k=%d: run: torn=%v clean=%v", k, tornErr, cleanErr)
		}

		tornAcks := parseBinaryAcks(t, tornOut.Bytes())
		cleanAcks := parseBinaryAcks(t, cleanOut.Bytes())
		tornFinal := tornAcks[len(tornAcks)-1]
		cleanFinal := cleanAcks[len(cleanAcks)-1]
		if !tornFinal.Final || !cleanFinal.Final {
			t.Fatalf("k=%d: finals not marked: torn=%+v clean=%+v", k, tornFinal, cleanFinal)
		}
		if want := completeAt(k); tornFinal.Acked != want {
			t.Fatalf("k=%d: torn conn acked %d frames, %d arrived complete", k, tornFinal.Acked, want)
		}
		// The clean connection's End frame is consumed, not counted.
		if want := uint64(len(cleanFrames) - 1); cleanFinal.Acked != want {
			t.Fatalf("k=%d: clean conn acked %d frames, want %d", k, cleanFinal.Acked, want)
		}
		if cleanFinal.Error != "" || tornFinal.Error != "" {
			t.Fatalf("k=%d: terminal errors: torn=%q clean=%q", k, tornFinal.Error, cleanFinal.Error)
		}
		total := sys.ReplicationInfo().TotalSeq
		if tornFinal.Seq > total || cleanFinal.Seq > total {
			t.Fatalf("k=%d: ack seqs %d/%d beyond durable frontier %d", k, tornFinal.Seq, cleanFinal.Seq, total)
		}
		if err := sys.Close(); err != nil {
			t.Fatalf("k=%d: close: %v", k, err)
		}

		// Restart: the union of both acked prefixes, nothing else. Disjoint
		// subjects make the reference order-independent.
		reGraph, reBounds, _, _ := gridParts(t, 2)
		re, err := core.Open(core.Config{Graph: reGraph, Boundaries: reBounds, DataDir: dir})
		if err != nil {
			t.Fatalf("k=%d: reopen: %v", k, err)
		}
		if got := re.ReplicationInfo().TotalSeq; got != total {
			t.Fatalf("k=%d: reopened frontier %d, want %d", k, got, total)
		}
		ref, _, _ := gridSystem(t, 2, t.TempDir(), "alice", "bob")
		var readings []core.Reading
		for _, f := range tornFrames[:tornFinal.Acked] {
			readings = append(readings, core.Reading{Time: f.Time, Subject: f.Subject, At: geometry.Point{X: f.X, Y: f.Y}})
		}
		for _, f := range cleanFrames[:cleanFinal.Acked] {
			readings = append(readings, core.Reading{Time: f.Time, Subject: f.Subject, At: geometry.Point{X: f.X, Y: f.Y}})
		}
		if len(readings) > 0 {
			outcomes, err := ref.ObserveBatch(readings)
			if err != nil {
				t.Fatalf("k=%d: reference apply: %v", k, err)
			}
			for i, o := range outcomes {
				if o.Err != nil {
					t.Fatalf("k=%d: reference reading %d: %v", k, i, o.Err)
				}
			}
		}
		for _, sub := range []profile.SubjectID{"alice", "bob"} {
			gotLoc, gotIn := re.WhereIs(sub)
			wantLoc, wantIn := ref.WhereIs(sub)
			if gotLoc != wantLoc || gotIn != wantIn {
				t.Fatalf("k=%d: %s at %q/%v after restart, reference %q/%v",
					k, sub, gotLoc, gotIn, wantLoc, wantIn)
			}
		}
		if got, want := re.Movements().Len(), ref.Movements().Len(); got != want {
			t.Fatalf("k=%d: %d movements after restart, reference %d", k, got, want)
		}
		_ = re.Close()
	}
}
