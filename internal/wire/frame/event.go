// Binary event codec: the committed-event feed's framing. Record
// payloads ride VERBATIM — the event frame embeds the WAL record's type
// string and raw JSON data bytes unmodified — so a binary subscriber
// replaying Records through core.Replica.ApplyRecord reconstructs
// exactly the same state as an NDJSON one (the equivalence test holds
// both to that).
//
// Event body: tag=3 | kind u8 | flags u8 (bit0 alert, bit1 record)
//             | seq u64 | time i64 | auth u64 | alertSeq u64
//             | subject str16 | location str16 | name str16 | error str16
//             | [record type str16 + data blob32]  (flag bit1)
//             | [alert JSON blob32]                (flag bit0)
package frame

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/audit"
	"repro/internal/authz"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/storage"
	"repro/internal/stream"
)

const (
	eventFlagAlert  byte = 1 << 0
	eventFlagRecord byte = 1 << 1
)

// eventKinds maps the wire byte to the EventKind. Byte 0 is reserved
// (an absent/invalid kind); the order is frozen — append only.
var eventKinds = []stream.EventKind{
	1:  stream.KindEnter,
	2:  stream.KindLeave,
	3:  stream.KindGrant,
	4:  stream.KindRevoke,
	5:  stream.KindResolve,
	6:  stream.KindRuleAdd,
	7:  stream.KindRuleRemove,
	8:  stream.KindProfilePut,
	9:  stream.KindProfileRemove,
	10: stream.KindTick,
	11: stream.KindAlert,
	12: stream.KindError,
}

// kindBytes is the inverse of eventKinds.
var kindBytes = func() map[stream.EventKind]byte {
	m := make(map[stream.EventKind]byte, len(eventKinds))
	for b, k := range eventKinds {
		if k != "" {
			m[k] = byte(b)
		}
	}
	return m
}()

// AppendEvent appends one framed feed event to dst.
func AppendEvent(dst []byte, ev *stream.Event) ([]byte, error) {
	kb, ok := kindBytes[ev.Kind]
	if !ok {
		return dst, fmt.Errorf("frame: unknown event kind %q", ev.Kind)
	}
	dst, base := begin(dst)
	var flags byte
	if ev.Alert != nil {
		flags |= eventFlagAlert
	}
	if ev.Record != nil {
		flags |= eventFlagRecord
	}
	dst = append(dst, tagEvent, kb, flags)
	dst = appendU64(dst, ev.Seq)
	dst = appendI64(dst, int64(ev.Time))
	dst = appendU64(dst, uint64(ev.Auth))
	dst = appendU64(dst, ev.AlertSeq)
	var err error
	if dst, err = appendStr16(dst, string(ev.Subject)); err != nil {
		return dst[:base], err
	}
	if dst, err = appendStr16(dst, string(ev.Location)); err != nil {
		return dst[:base], err
	}
	if dst, err = appendStr16(dst, ev.Name); err != nil {
		return dst[:base], err
	}
	if dst, err = appendStr16(dst, ev.Error); err != nil {
		return dst[:base], err
	}
	if ev.Record != nil {
		if dst, err = appendStr16(dst, ev.Record.Type); err != nil {
			return dst[:base], err
		}
		if dst, err = appendBlob32(dst, ev.Record.Data); err != nil {
			return dst[:base], err
		}
	}
	if ev.Alert != nil {
		blob, merr := json.Marshal(ev.Alert)
		if merr != nil {
			return dst[:base], merr
		}
		if dst, err = appendBlob32(dst, blob); err != nil {
			return dst[:base], err
		}
	}
	return end(dst, base)
}

// DecodeEvent decodes one event body (as returned by RawReader.Next)
// into ev. The decoded event owns its memory — record data and strings
// are copied out of the frame buffer.
func DecodeEvent(body []byte, ev *stream.Event) error {
	if len(body) == 0 || body[0] != tagEvent {
		return fmt.Errorf("frame: expected event frame, got tag %d", bodyTag(body))
	}
	c := cursor{b: body}
	c.u8() // tag
	kb := c.u8()
	flags := c.u8()
	if int(kb) >= len(eventKinds) || eventKinds[kb] == "" {
		return fmt.Errorf("frame: unknown event kind byte %d", kb)
	}
	*ev = stream.Event{
		Kind:     eventKinds[kb],
		Seq:      c.u64(),
		Time:     interval.Time(c.i64()),
		Auth:     authz.ID(c.u64()),
		AlertSeq: c.u64(),
	}
	ev.Subject = profile.SubjectID(c.str16())
	ev.Location = graph.ID(c.str16())
	ev.Name = string(c.str16())
	ev.Error = string(c.str16())
	if flags&eventFlagRecord != 0 {
		typ := string(c.str16())
		data := c.blob32()
		if c.err == nil {
			ev.Record = &storage.Record{Type: typ, Data: append(json.RawMessage(nil), data...)}
		}
	}
	if flags&eventFlagAlert != 0 {
		blob := c.blob32()
		if c.err == nil {
			var a audit.Alert
			if err := json.Unmarshal(blob, &a); err != nil {
				return fmt.Errorf("frame: bad alert payload: %w", err)
			}
			ev.Alert = &a
		}
	}
	return c.err
}

// EventWriter encodes feed events onto one subscriber connection,
// reusing a pooled buffer. The caller owns flushing (the HTTP handler
// batches while the subscriber queue has backlog, exactly as it does
// for NDJSON).
type EventWriter struct {
	w   io.Writer
	buf *[]byte
}

// NewEventWriter wraps w. Call Release when the subscription ends.
func NewEventWriter(w io.Writer) *EventWriter {
	return &EventWriter{w: w, buf: getBuf()}
}

// Release recycles the writer's encode buffer.
func (ew *EventWriter) Release() {
	if ew.buf != nil {
		putBuf(ew.buf)
		ew.buf = nil
	}
}

// WriteEvent encodes one event onto the stream.
func (ew *EventWriter) WriteEvent(ev *stream.Event) error {
	out, err := AppendEvent((*ew.buf)[:0], ev)
	if err != nil {
		return err
	}
	*ew.buf = out[:0]
	_, err = ew.w.Write(out)
	return err
}

// EventReader decodes one subscription's framed feed (the client
// half). Next returns events that own their memory.
type EventReader struct {
	rr *RawReader
}

// NewEventReader wraps r. Call Release when the subscription ends.
func NewEventReader(r io.Reader) *EventReader {
	return &EventReader{rr: NewRawReader(r)}
}

// Release recycles the reader's frame buffer.
func (er *EventReader) Release() { er.rr.Release() }

// Next returns the next event; io.EOF at the clean end of the feed.
func (er *EventReader) Next(ev *stream.Event) error {
	body, err := er.rr.Next()
	if err != nil {
		return err
	}
	return DecodeEvent(body, ev)
}
