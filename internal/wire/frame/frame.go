// Package frame is the negotiated binary framing of the streaming
// plane: length-prefixed, checksummed frames for observe/ack ingest,
// the committed-event feed, and (by construction) WAL replication —
// every frame is the WAL's own wire form,
//
//	u32 LE body length | u32 LE CRC32-IEEE(body) | body
//
// so the replication stream needs no re-framing at all and the other
// streams inherit the log's crash contract: a frame is delivered if and
// only if it arrived complete and checksum-valid. A cut mid-frame
// (header, body, or a checksum that does not match) ends the input at
// the last complete frame — the same torn-tail stance storage.Tailer
// takes on the log file itself.
//
// Stream frames (observe, ack, event) put a one-byte type tag first in
// the body; payloads are fixed-width little-endian scalars plus
// length-prefixed strings, chosen so the steady-state decode loop
// allocates nothing: the reader reuses one body buffer, and repeated
// subject IDs come out of a per-connection intern table.
//
// Negotiation: NDJSON remains the default and the debugging surface.
// A client opts into this framing per connection with
// Content-Type: application/x-ltam-frame on POST /v1/stream/observe
// (acks come back framed too) and Accept: application/x-ltam-frame on
// GET /v1/stream/events.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"repro/internal/storage"
)

// ContentType is the negotiated media type of the binary framing.
const ContentType = "application/x-ltam-frame"

// header is the frame header size: u32 length + u32 CRC32.
const header = 8

// Frame body type tags (first body byte on the observe and event
// streams; replication frames carry raw WAL records and no tag).
const (
	tagObserve byte = 1
	tagAck     byte = 2
	tagEvent   byte = 3
)

// ErrChecksum reports a frame whose body does not match its CRC32 — on
// a live stream, a torn write; the input ends at the previous frame.
var ErrChecksum = errors.New("frame: checksum mismatch")

// ErrFrameLength reports a frame header with an impossible length.
var ErrFrameLength = errors.New("frame: bad frame length")

// bufPool recycles frame buffers across connections: encode buffers
// and reader body buffers both come from here, so a churn of short
// streaming connections reaches steady state without per-connection
// allocations.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4<<10)
		return &b
	},
}

func getBuf() *[]byte  { return bufPool.Get().(*[]byte) }
func putBuf(b *[]byte) { bufPool.Put(b) }

// RawReader reads length+CRC frames from a stream into one reused body
// buffer. The slice Next returns aliases that buffer and is valid only
// until the next call. Driven by one goroutine.
type RawReader struct {
	r    io.Reader
	body *[]byte
	hdr  [header]byte
}

// NewRawReader wraps r. Call Release when done with the reader to
// recycle its buffer.
func NewRawReader(r io.Reader) *RawReader {
	return &RawReader{r: r, body: getBuf()}
}

// Release returns the reader's buffer to the shared pool. The reader
// must not be used afterwards.
func (rr *RawReader) Release() {
	if rr.body != nil {
		putBuf(rr.body)
		rr.body = nil
	}
}

// Next returns the next frame's body. io.EOF reports a clean end (cut
// exactly on a frame boundary); io.ErrUnexpectedEOF a cut mid-frame;
// ErrChecksum/ErrFrameLength a torn or garbage tail. In every case the
// frames already returned are exactly the stream's complete prefix.
func (rr *RawReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(rr.r, rr.hdr[:]); err != nil {
		return nil, err // io.EOF clean, io.ErrUnexpectedEOF torn
	}
	length := binary.LittleEndian.Uint32(rr.hdr[0:4])
	sum := binary.LittleEndian.Uint32(rr.hdr[4:8])
	if length == 0 || length > storage.MaxFrameSize {
		return nil, fmt.Errorf("%w: %d", ErrFrameLength, length)
	}
	if cap(*rr.body) < int(length) {
		*rr.body = make([]byte, length)
	}
	body := (*rr.body)[:length]
	if _, err := io.ReadFull(rr.r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.ChecksumIEEE(body) != sum {
		return nil, ErrChecksum
	}
	return body, nil
}

// begin reserves a frame header on dst, returning the extended slice
// and the header's offset for end.
func begin(dst []byte) ([]byte, int) {
	base := len(dst)
	return append(dst, make([]byte, header)...), base
}

// end seals the frame begun at base: length and CRC over everything
// appended since. It fails only on an over-large body.
func end(dst []byte, base int) ([]byte, error) {
	body := dst[base+header:]
	if len(body) == 0 || len(body) > storage.MaxFrameSize {
		return dst, fmt.Errorf("%w: %d", ErrFrameLength, len(body))
	}
	binary.LittleEndian.PutUint32(dst[base:base+4], uint32(len(body)))
	binary.LittleEndian.PutUint32(dst[base+4:base+8], crc32.ChecksumIEEE(body))
	return dst, nil
}

// --- append primitives ---------------------------------------------------

func appendU64(dst []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(dst, v)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func appendF64(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}

// appendStr16 appends a 16-bit length-prefixed string (the frame
// formats cap identifiers and error strings at 64 KiB; longer ones are
// a caller bug surfaced by the sealing check below).
func appendStr16(dst []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return dst, fmt.Errorf("frame: string field too long (%d bytes)", len(s))
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// appendBlob32 appends a 32-bit length-prefixed byte blob.
func appendBlob32(dst []byte, b []byte) ([]byte, error) {
	if len(b) > storage.MaxFrameSize {
		return dst, fmt.Errorf("frame: blob field too long (%d bytes)", len(b))
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b)))
	return append(dst, b...), nil
}

// --- decode cursor -------------------------------------------------------

// errShort reports a payload that ended before its declared fields —
// inside a checksum-valid frame this is a codec bug or a hostile peer,
// never a torn write.
var errShort = errors.New("frame: truncated payload")

// cursor is a bounds-checked little-endian payload reader: every read
// after an overrun yields zero values, and the first error latches. It
// can never read past the body it was given, so arbitrary bytes decode
// to an error, not a panic — the fuzz tests hold it to that.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) take(n int) []byte {
	if c.err != nil {
		return nil
	}
	if c.off+n > len(c.b) || c.off+n < c.off {
		c.err = errShort
		return nil
	}
	out := c.b[c.off : c.off+n]
	c.off += n
	return out
}

// rem reports whether un-decoded bytes remain. Trailing fields appended
// by newer writers decode behind a rem() check, so a body produced by an
// older writer (or a hand-crafted test frame) still parses — the new
// fields just stay zero.
func (c *cursor) rem() bool { return c.err == nil && c.off < len(c.b) }

func (c *cursor) u8() byte {
	if b := c.take(1); b != nil {
		return b[0]
	}
	return 0
}

func (c *cursor) u64() uint64 {
	if b := c.take(8); b != nil {
		return binary.LittleEndian.Uint64(b)
	}
	return 0
}

func (c *cursor) i64() int64 { return int64(c.u64()) }

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// str16 returns the raw bytes of a 16-bit length-prefixed string,
// aliasing the body.
func (c *cursor) str16() []byte {
	b := c.take(2)
	if b == nil {
		return nil
	}
	return c.take(int(binary.LittleEndian.Uint16(b)))
}

// blob32 returns the raw bytes of a 32-bit length-prefixed blob,
// aliasing the body.
func (c *cursor) blob32() []byte {
	b := c.take(4)
	if b == nil {
		return nil
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(n) > uint64(len(c.b)) {
		c.err = errShort
		return nil
	}
	return c.take(int(n))
}
