package frame

import (
	"io"
	"testing"

	"repro/internal/storage"
	"repro/internal/stream"
)

// BenchmarkFrameObserveEncode: one observe frame appended to a reused
// buffer — the client's per-reading encode cost.
func BenchmarkFrameObserveEncode(b *testing.B) {
	f := stream.ObserveFrame{Time: 2, Subject: "u42", X: 0.5, Y: 1.5}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := AppendObserve(buf[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
		buf = out
	}
	b.SetBytes(int64(len(buf)))
}

// BenchmarkFrameObserveDecode: the server's per-frame decode cost at
// steady state (body buffer grown, subject intern table warm).
func BenchmarkFrameObserveDecode(b *testing.B) {
	frames := make([]stream.ObserveFrame, 64)
	for i := range frames {
		frames[i] = stream.ObserveFrame{Time: 2, Subject: "u42", X: 0.5, Y: 1.5}
	}
	input, ends := encodeObserveStream(b, frames)
	or := NewObserveReader(&loopReader{data: input})
	defer or.Release()
	var f stream.ObserveFrame
	b.SetBytes(int64(ends[0]))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := or.ReadFrame(&f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameAckEncode: one cumulative ack through the pooled
// writer — the server's per-ack cost.
func BenchmarkFrameAckEncode(b *testing.B) {
	aw := NewAckWriter(io.Discard)
	defer aw.Release()
	a := stream.Ack{Acked: 41, Seq: 97, Granted: 30, Denied: 7, Moved: 37}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Acked++
		if err := aw.WriteAck(&a); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameEventEncode: one record event through the pooled
// writer — the feed's per-subscriber per-event cost.
func BenchmarkFrameEventEncode(b *testing.B) {
	ew := NewEventWriter(io.Discard)
	defer ew.Release()
	ev := stream.Event{
		Seq: 12, Kind: stream.KindEnter, Time: 2, Subject: "alice", Location: "r00_00",
		Record: &storage.Record{Type: "move.enter", Data: []byte(`{"T":2,"S":"alice","L":"r00_00"}`)},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Seq++
		if err := ew.WriteEvent(&ev); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrameEventDecode: one record event decoded on the client,
// including the defensive copies the decoded event owns.
func BenchmarkFrameEventDecode(b *testing.B) {
	ev := stream.Event{
		Seq: 12, Kind: stream.KindEnter, Time: 2, Subject: "alice", Location: "r00_00",
		Record: &storage.Record{Type: "move.enter", Data: []byte(`{"T":2,"S":"alice","L":"r00_00"}`)},
	}
	framed, err := AppendEvent(nil, &ev)
	if err != nil {
		b.Fatal(err)
	}
	er := NewEventReader(&loopReader{data: framed})
	defer er.Release()
	var got stream.Event
	b.SetBytes(int64(len(framed)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := er.Next(&got); err != nil {
			b.Fatal(err)
		}
	}
}
