package frame

import (
	"io"
	"testing"

	"repro/internal/storage"
	"repro/internal/stream"
)

// loopReader replays one byte slice forever: an endless stream of valid
// frames for steady-state measurements.
type loopReader struct {
	data []byte
	off  int
}

func (lr *loopReader) Read(p []byte) (int, error) {
	if lr.off == len(lr.data) {
		lr.off = 0
	}
	n := copy(p, lr.data[lr.off:])
	lr.off += n
	return n, nil
}

// TestObserveDecodeZeroAlloc holds the binary ingest read loop to zero
// steady-state allocations: with the body buffer grown and the subject
// intern table warm, decoding a frame allocates nothing.
func TestObserveDecodeZeroAlloc(t *testing.T) {
	frames := []stream.ObserveFrame{
		{Time: 2, Subject: "alice", X: 0.5, Y: 0.5},
		{Time: 3, Subject: "bob", X: 1.5, Y: 0.5},
		{Time: 4, Subject: "carol", X: 0.5, Y: 1.5},
		{Time: 5, Subject: "alice", X: 1.5, Y: 1.5},
	}
	input, _ := encodeObserveStream(t, frames)
	or := NewObserveReader(&loopReader{data: input})
	defer or.Release()
	var f stream.ObserveFrame
	for i := 0; i < 2*len(frames); i++ { // warm: buffer growth + intern misses
		if err := or.ReadFrame(&f); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := or.ReadFrame(&f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("binary observe decode allocates %.1f times per frame, want 0", allocs)
	}
}

// TestAckEncodeZeroAlloc holds the pooled ack encode path to zero
// steady-state allocations.
func TestAckEncodeZeroAlloc(t *testing.T) {
	aw := NewAckWriter(io.Discard)
	defer aw.Release()
	a := stream.Ack{Acked: 41, Seq: 97, Granted: 30, Denied: 7, Moved: 37, Errors: 4, LastError: "time 3 precedes engine clock 9"}
	if err := aw.WriteAck(&a); err != nil { // warm: buffer growth
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		a.Acked++
		a.Seq++
		if err := aw.WriteAck(&a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ack encode allocates %.1f times per ack, want 0", allocs)
	}
}

// TestEventEncodeZeroAlloc holds the pooled event encode path to zero
// steady-state allocations for record events (alert events marshal
// their payload and are allowed to allocate).
func TestEventEncodeZeroAlloc(t *testing.T) {
	ew := NewEventWriter(io.Discard)
	defer ew.Release()
	ev := stream.Event{
		Seq: 12, Kind: stream.KindEnter, Time: 2, Subject: "alice", Location: "r00_00",
		Record: &storage.Record{Type: "move.enter", Data: []byte(`{"T":2,"S":"alice","L":"r00_00"}`)},
	}
	if err := ew.WriteEvent(&ev); err != nil { // warm: buffer growth
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		ev.Seq++
		if err := ew.WriteEvent(&ev); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("event encode allocates %.1f times per event, want 0", allocs)
	}
}
