package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"

	"repro/internal/audit"
	"repro/internal/storage"
	"repro/internal/stream"
)

// TestObserveRoundTrip: every field of every frame survives the encode →
// RawReader → decode path, including the End flag, empty subjects,
// non-ASCII subjects and negative times.
func TestObserveRoundTrip(t *testing.T) {
	frames := []stream.ObserveFrame{
		{Time: 2, Subject: "alice", X: 0.5, Y: 1.5},
		{Time: -7, Subject: "badge-404", X: -3.25, Y: 0},
		{Time: 1 << 40, Subject: "ünïcode→subject", X: 1e300, Y: -1e-300},
		{Time: 9, Subject: "alice", X: 2.5, Y: 2.5}, // repeat: exercises the intern table
		{Subject: ""},
		{End: true},
	}
	var buf []byte
	for i := range frames {
		out, err := AppendObserve(buf, &frames[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		buf = out
	}
	or := NewObserveReader(bytes.NewReader(buf))
	defer or.Release()
	for i := range frames {
		var got stream.ObserveFrame
		if err := or.ReadFrame(&got); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got != frames[i] {
			t.Fatalf("frame %d = %+v, want %+v", i, got, frames[i])
		}
	}
	var extra stream.ObserveFrame
	if err := or.ReadFrame(&extra); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// TestAckRoundTrip: all counters, both flag bits and both error strings
// survive the wire.
func TestAckRoundTrip(t *testing.T) {
	acks := []stream.Ack{
		{},
		{Acked: 1, Seq: 2, Granted: 3, Denied: 4, Moved: 5, Errors: 6, LastError: "time 1 precedes clock 3"},
		{Acked: 1 << 60, Seq: ^uint64(0), Final: true, Error: "system closed"},
	}
	var buf []byte
	for i := range acks {
		out, err := AppendAck(buf, &acks[i])
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		buf = out
	}
	rr := NewRawReader(bytes.NewReader(buf))
	defer rr.Release()
	for i := range acks {
		body, err := rr.Next()
		if err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		var got stream.Ack
		if err := DecodeAck(body, &got); err != nil {
			t.Fatalf("ack %d: %v", i, err)
		}
		if got != acks[i] {
			t.Fatalf("ack %d = %+v, want %+v", i, got, acks[i])
		}
	}
}

// TestEventRoundTrip: one event of every kind — including one carrying a
// verbatim WAL record and one carrying an alert payload — round-trips
// through EventWriter/EventReader with every field intact.
func TestEventRoundTrip(t *testing.T) {
	events := []stream.Event{
		{Seq: 0, Kind: stream.KindEnter, Time: 2, Subject: "alice", Location: "r00_00",
			Record: &storage.Record{Type: "move.enter", Data: []byte(`{"T":2,"S":"alice","L":"r00_00"}`)}},
		{Seq: 1, Kind: stream.KindLeave, Time: 3, Subject: "alice", Location: "r00_00"},
		{Seq: 2, Kind: stream.KindGrant, Subject: "bob", Location: "r00_01", Auth: 7},
		{Seq: 3, Kind: stream.KindRevoke, Auth: 7},
		{Seq: 4, Kind: stream.KindResolve, Auth: 9},
		{Seq: 5, Kind: stream.KindRuleAdd, Name: "no-tailgate"},
		{Seq: 6, Kind: stream.KindRuleRemove, Name: "no-tailgate"},
		{Seq: 7, Kind: stream.KindProfilePut, Subject: "carol"},
		{Seq: 8, Kind: stream.KindProfileRemove, Subject: "carol"},
		{Seq: 9, Kind: stream.KindTick, Time: 11},
		{Seq: 10, Kind: stream.KindAlert, AlertSeq: 3,
			Alert: &audit.Alert{Seq: 3, Time: 5, Kind: audit.UnauthorizedEntry, Subject: "eve", Location: "r00_01", Detail: "no authorization"}},
		{Seq: 11, Kind: stream.KindError, Error: "slow consumer evicted"},
	}
	if len(events) != len(eventKinds)-1 {
		t.Fatalf("test covers %d kinds, wire table has %d", len(events), len(eventKinds)-1)
	}
	var buf bytes.Buffer
	ew := NewEventWriter(&buf)
	defer ew.Release()
	for i := range events {
		if err := ew.WriteEvent(&events[i]); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	er := NewEventReader(bytes.NewReader(buf.Bytes()))
	defer er.Release()
	for i := range events {
		var got stream.Event
		if err := er.Next(&got); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, events[i]) {
			t.Fatalf("event %d = %+v, want %+v", i, got, events[i])
		}
	}
	var extra stream.Event
	if err := er.Next(&extra); err != io.EOF {
		t.Fatalf("after last event: %v, want io.EOF", err)
	}

	var unknown stream.Event
	unknown.Kind = "made-up"
	if _, err := AppendEvent(nil, &unknown); err == nil {
		t.Fatal("encoding an unknown kind succeeded")
	}
}

// TestRawReaderTornEveryOffset proves the frame-boundary contract at
// every byte offset: cutting a valid stream after k bytes yields exactly
// the frames that arrived complete, then io.EOF on a frame boundary and
// io.ErrUnexpectedEOF anywhere else.
func TestRawReaderTornEveryOffset(t *testing.T) {
	var input []byte
	var ends []int // cumulative end offset of each frame
	for i, f := range []stream.ObserveFrame{
		{Time: 2, Subject: "alice", X: 0.5, Y: 0.5},
		{Time: 3, Subject: "bob", X: 1.5, Y: 0.5},
		{Time: 4, Subject: "carol", X: 0.5, Y: 1.5},
	} {
		out, err := AppendObserve(input, &f)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		input = out
		ends = append(ends, len(input))
	}
	completeAt := func(k int) int {
		n := 0
		for _, end := range ends {
			if k >= end {
				n++
			}
		}
		return n
	}
	for k := 0; k <= len(input); k++ {
		rr := NewRawReader(bytes.NewReader(input[:k]))
		n := 0
		var err error
		for {
			if _, err = rr.Next(); err != nil {
				break
			}
			n++
		}
		rr.Release()
		if want := completeAt(k); n != want {
			t.Fatalf("k=%d: %d frames decoded, %d arrived complete", k, n, want)
		}
		onBoundary := k == 0
		for _, end := range ends {
			if k == end {
				onBoundary = true
			}
		}
		if onBoundary && err != io.EOF {
			t.Fatalf("k=%d (boundary): err = %v, want io.EOF", k, err)
		}
		if !onBoundary && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("k=%d (mid-frame): err = %v, want io.ErrUnexpectedEOF", k, err)
		}
	}
}

// TestRawReaderRejectsGarbage: a corrupted body fails the checksum, and
// impossible length headers fail without allocating the claimed size.
func TestRawReaderRejectsGarbage(t *testing.T) {
	f := stream.ObserveFrame{Time: 2, Subject: "alice", X: 1, Y: 1}
	good, err := AppendObserve(nil, &f)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := append([]byte(nil), good...)
	corrupt[len(corrupt)-1] ^= 0x40
	rr := NewRawReader(bytes.NewReader(corrupt))
	if _, err := rr.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupted body: %v, want ErrChecksum", err)
	}
	rr.Release()

	for _, length := range []uint32{0, storage.MaxFrameSize + 1, ^uint32(0)} {
		hdr := make([]byte, header)
		binary.LittleEndian.PutUint32(hdr[0:4], length)
		rr := NewRawReader(bytes.NewReader(hdr))
		if _, err := rr.Next(); !errors.Is(err, ErrFrameLength) {
			t.Fatalf("length %d: %v, want ErrFrameLength", length, err)
		}
		rr.Release()
	}
}

// TestDecodeRejectsWrongTag: each decoder refuses the other stream's
// frames instead of misreading them.
func TestDecodeRejectsWrongTag(t *testing.T) {
	a := stream.Ack{Acked: 1}
	ackBody, err := AppendAck(nil, &a)
	if err != nil {
		t.Fatal(err)
	}
	ackBody = ackBody[header:] // strip the frame header: decoders take bodies

	var f stream.ObserveFrame
	obsBody, err := AppendObserve(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	obsBody = obsBody[header:]

	var ev stream.Event
	if err := DecodeEvent(ackBody, &ev); err == nil {
		t.Fatal("DecodeEvent accepted an ack body")
	}
	if err := DecodeAck(obsBody, &a); err == nil {
		t.Fatal("DecodeAck accepted an observe body")
	}
	// The observe tag check lives in ReadFrame: feed it a full ack frame.
	full, err := AppendAck(nil, &stream.Ack{Acked: 1})
	if err != nil {
		t.Fatal(err)
	}
	or := NewObserveReader(bytes.NewReader(full))
	defer or.Release()
	if err := or.ReadFrame(&f); err == nil {
		t.Fatal("ObserveReader accepted an ack frame")
	}
}

// TestAppendRejectsOversizeFields: string fields beyond the u16 length
// prefix fail cleanly and leave dst unchanged.
func TestAppendRejectsOversizeFields(t *testing.T) {
	long := strings.Repeat("x", 1<<16)
	f := stream.ObserveFrame{Subject: "ok"}
	a := stream.Ack{Error: long}
	if out, err := AppendAck(nil, &a); err == nil {
		t.Fatal("oversize ack error string encoded")
	} else if len(out) != 0 {
		t.Fatalf("failed encode left %d bytes on dst", len(out))
	}
	ev := stream.Event{Kind: stream.KindError, Error: long}
	if _, err := AppendEvent(nil, &ev); err == nil {
		t.Fatal("oversize event error string encoded")
	}
	f.Subject = "ok"
	if _, err := AppendObserve(nil, &f); err != nil {
		t.Fatalf("control frame failed: %v", err)
	}
}
