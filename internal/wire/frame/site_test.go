package frame

// Grid-site test helpers, mirroring internal/stream's (those are
// in-package test code and cannot be imported from here).

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/authz"
	"repro/internal/core"
	"repro/internal/geometry"
	"repro/internal/graph"
	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/stream"
)

// gridParts builds the side×side grid site: graph, unit-square room
// boundaries, rooms in row-major order, one in-room coordinate per room.
func gridParts(t testing.TB, side int) (*graph.Graph, []geometry.Boundary, []graph.ID, []geometry.Point) {
	t.Helper()
	g := graph.New("grid")
	id := func(r, c int) graph.ID { return graph.ID(fmt.Sprintf("r%02d_%02d", r, c)) }
	bounds, centers := geometry.UnitGrid(side, func(r, c int) string { return string(id(r, c)) })
	var rooms []graph.ID
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			rooms = append(rooms, id(r, c))
			if err := g.AddLocation(id(r, c)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			if r+1 < side {
				_ = g.AddEdge(id(r, c), id(r+1, c))
			}
			if c+1 < side {
				_ = g.AddEdge(id(r, c), id(r, c+1))
			}
		}
	}
	if err := g.SetEntry(id(0, 0)); err != nil {
		t.Fatal(err)
	}
	return g, bounds, rooms, centers
}

// gridSystem boots a durable side×side grid site with full grants for
// the given subjects.
func gridSystem(t testing.TB, side int, dataDir string, subjects ...profile.SubjectID) (*core.System, []graph.ID, []geometry.Point) {
	t.Helper()
	g, bounds, rooms, centers := gridParts(t, side)
	sys, err := core.Open(core.Config{Graph: g, Boundaries: bounds, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sys.Close() })
	for _, sub := range subjects {
		for _, room := range rooms {
			if _, err := sys.AddAuthorization(authz.New(
				interval.New(1, 1<<40), interval.New(1, 1<<41), sub, room, authz.Unlimited)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sys, rooms, centers
}

// encodeObserveStream encodes frames back to back, returning the stream
// and each frame's cumulative end offset.
func encodeObserveStream(t testing.TB, frames []stream.ObserveFrame) ([]byte, []int) {
	t.Helper()
	var input []byte
	var ends []int
	for i := range frames {
		out, err := AppendObserve(input, &frames[i])
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		input = out
		ends = append(ends, len(input))
	}
	return input, ends
}

// parseBinaryAcks decodes every framed ack the server wrote.
func parseBinaryAcks(t testing.TB, out []byte) []stream.Ack {
	t.Helper()
	rr := NewRawReader(bytes.NewReader(out))
	defer rr.Release()
	var acks []stream.Ack
	for {
		body, err := rr.Next()
		if err != nil {
			break
		}
		var a stream.Ack
		if err := DecodeAck(body, &a); err != nil {
			t.Fatalf("bad ack frame: %v", err)
		}
		acks = append(acks, a)
	}
	if len(acks) == 0 {
		t.Fatal("no acks written")
	}
	return acks
}
