// Binary observe/ack codec: the ingest stream's two directions. The
// server-side ObserveReader and AckWriter satisfy stream.FrameReader
// and stream.AckWriter, so the shared chunker runs unchanged over
// either framing; ObserveWriter and AckReader are the client halves.
//
// Observe body:  tag=1 | flags u8 (bit0 End) | time i64 | x f64 | y f64
//                | subject str16 | fseq u64
// Ack body:      tag=2 | flags u8 (bit0 Final) | acked u64 | seq u64
//                | granted u64 | denied u64 | moved u64 | errors u64
//                | lastError str16 | error str16 | resume u64
//
// The trailing fseq/resume fields carry the resume-session coordinates
// (stream.ObserveFrame.Seq / stream.Ack.Resume). They sit at the body
// END and decode only when present, so pre-session bodies still parse.
package frame

import (
	"fmt"
	"io"

	"repro/internal/interval"
	"repro/internal/profile"
	"repro/internal/stream"
)

const (
	observeFlagEnd byte = 1 << 0
	ackFlagFinal   byte = 1 << 0
)

// AppendObserve appends one framed observe frame to dst.
func AppendObserve(dst []byte, f *stream.ObserveFrame) ([]byte, error) {
	dst, base := begin(dst)
	var flags byte
	if f.End {
		flags |= observeFlagEnd
	}
	dst = append(dst, tagObserve, flags)
	dst = appendI64(dst, int64(f.Time))
	dst = appendF64(dst, f.X)
	dst = appendF64(dst, f.Y)
	var err error
	if dst, err = appendStr16(dst, string(f.Subject)); err != nil {
		return dst[:base], err
	}
	dst = appendU64(dst, f.Seq)
	return end(dst, base)
}

// decodeObserve decodes an observe body (tag already verified). intern
// maps the subject bytes to a (shared) string without allocating on
// repeats; nil falls back to plain string conversion.
func decodeObserve(body []byte, f *stream.ObserveFrame, intern func([]byte) profile.SubjectID) error {
	c := cursor{b: body}
	c.u8() // tag
	flags := c.u8()
	f.End = flags&observeFlagEnd != 0
	f.Time = interval.Time(c.i64())
	f.X = c.f64()
	f.Y = c.f64()
	subj := c.str16()
	f.Seq = 0
	if c.rem() {
		f.Seq = c.u64()
	}
	if c.err != nil {
		return c.err
	}
	if intern != nil {
		f.Subject = intern(subj)
	} else {
		f.Subject = profile.SubjectID(subj)
	}
	return nil
}

// ObserveReader is the server's read side of one binary ingest
// connection: length+CRC frames in, stream.ObserveFrame out, with a
// per-connection subject intern table so the steady-state loop — the
// same subjects moving again and again — allocates nothing.
type ObserveReader struct {
	rr       *RawReader
	subjects map[string]profile.SubjectID
}

// NewObserveReader wraps r. Call Release when the connection ends.
func NewObserveReader(r io.Reader) *ObserveReader {
	return &ObserveReader{rr: NewRawReader(r), subjects: make(map[string]profile.SubjectID)}
}

// Release recycles the reader's frame buffer.
func (o *ObserveReader) Release() { o.rr.Release() }

// intern returns the shared SubjectID for b. The map lookup keyed by
// string(b) does not allocate on a hit (the compiler elides the
// conversion), so only the FIRST sighting of a subject costs a string.
func (o *ObserveReader) intern(b []byte) profile.SubjectID {
	if s, ok := o.subjects[string(b)]; ok {
		return s
	}
	s := profile.SubjectID(b)
	o.subjects[string(s)] = s
	return s
}

// ReadFrame decodes the next observe frame (stream.FrameReader).
func (o *ObserveReader) ReadFrame(f *stream.ObserveFrame) error {
	body, err := o.rr.Next()
	if err != nil {
		return err
	}
	if len(body) == 0 || body[0] != tagObserve {
		return fmt.Errorf("frame: expected observe frame, got tag %d", bodyTag(body))
	}
	return decodeObserve(body, f, o.intern)
}

// AppendAck appends one framed cumulative ack to dst.
func AppendAck(dst []byte, a *stream.Ack) ([]byte, error) {
	dst, base := begin(dst)
	var flags byte
	if a.Final {
		flags |= ackFlagFinal
	}
	dst = append(dst, tagAck, flags)
	dst = appendU64(dst, a.Acked)
	dst = appendU64(dst, a.Seq)
	dst = appendU64(dst, a.Granted)
	dst = appendU64(dst, a.Denied)
	dst = appendU64(dst, a.Moved)
	dst = appendU64(dst, a.Errors)
	var err error
	if dst, err = appendStr16(dst, a.LastError); err != nil {
		return dst[:base], err
	}
	if dst, err = appendStr16(dst, a.Error); err != nil {
		return dst[:base], err
	}
	dst = appendU64(dst, a.Resume)
	return end(dst, base)
}

// DecodeAck decodes one ack body (as returned by RawReader.Next).
func DecodeAck(body []byte, a *stream.Ack) error {
	if len(body) == 0 || body[0] != tagAck {
		return fmt.Errorf("frame: expected ack frame, got tag %d", bodyTag(body))
	}
	c := cursor{b: body}
	c.u8() // tag
	flags := c.u8()
	*a = stream.Ack{
		Final:   flags&ackFlagFinal != 0,
		Acked:   c.u64(),
		Seq:     c.u64(),
		Granted: c.u64(),
		Denied:  c.u64(),
		Moved:   c.u64(),
		Errors:  c.u64(),
	}
	a.LastError = string(c.str16())
	a.Error = string(c.str16())
	if c.rem() {
		a.Resume = c.u64()
	}
	return c.err
}

// AckWriter is the server's write side of one binary ingest connection
// (stream.AckWriter). Each WriteAck is one buffered encode — into a
// pooled buffer reused for the connection's lifetime — and one Write on
// the underlying stream, which the HTTP handler wraps to flush.
type AckWriter struct {
	w   io.Writer
	buf *[]byte
}

// NewAckWriter wraps w. Call Release when the connection ends.
func NewAckWriter(w io.Writer) *AckWriter {
	return &AckWriter{w: w, buf: getBuf()}
}

// Release recycles the writer's encode buffer.
func (aw *AckWriter) Release() {
	if aw.buf != nil {
		putBuf(aw.buf)
		aw.buf = nil
	}
}

// WriteAck encodes and delivers one cumulative ack.
func (aw *AckWriter) WriteAck(a *stream.Ack) error {
	out, err := AppendAck((*aw.buf)[:0], a)
	if err != nil {
		return err
	}
	*aw.buf = out[:0]
	_, err = aw.w.Write(out)
	return err
}

// bodyTag reports a body's tag byte for error messages.
func bodyTag(body []byte) int {
	if len(body) == 0 {
		return -1
	}
	return int(body[0])
}
