package frame

import (
	"bytes"
	"testing"

	"repro/internal/audit"
	"repro/internal/storage"
	"repro/internal/stream"
)

// fuzzSeeds returns a valid frame of each stream type — full wire form,
// header included — for seeding the corpora.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	obs, err := AppendObserve(nil, &stream.ObserveFrame{Time: 2, Subject: "alice", X: 0.5, Y: 1.5})
	if err != nil {
		f.Fatal(err)
	}
	ack, err := AppendAck(nil, &stream.Ack{Acked: 3, Seq: 9, Granted: 2, Denied: 1, Final: true, LastError: "e"})
	if err != nil {
		f.Fatal(err)
	}
	ev, err := AppendEvent(nil, &stream.Event{
		Seq: 4, Kind: stream.KindAlert, AlertSeq: 1,
		Alert: &audit.Alert{Seq: 1, Kind: audit.UnauthorizedEntry, Subject: "eve", Detail: "no grant"},
	})
	if err != nil {
		f.Fatal(err)
	}
	rec, err := AppendEvent(nil, &stream.Event{
		Seq: 5, Kind: stream.KindEnter, Subject: "alice", Location: "r00_00",
		Record: &storage.Record{Type: "move.enter", Data: []byte(`{"T":2,"S":"alice","L":"r00_00"}`)},
	})
	if err != nil {
		f.Fatal(err)
	}
	return [][]byte{obs, ack, ev, rec}
}

// FuzzRawReader: arbitrary bytes through the frame reader never panic,
// never yield an over-long body, and always terminate — every input is a
// finite stream, so the loop ends at its torn tail.
func FuzzRawReader(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
		f.Add(seed[:len(seed)-3]) // torn body
		f.Add(seed[:5])           // torn header
	}
	corrupt := append([]byte(nil), fuzzSeeds(f)[0]...)
	corrupt[len(corrupt)-1] ^= 0xff
	f.Add(corrupt)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRawReader(bytes.NewReader(data))
		defer rr.Release()
		for {
			body, err := rr.Next()
			if err != nil {
				return
			}
			if len(body) == 0 || len(body) > storage.MaxFrameSize {
				t.Fatalf("frame body of %d bytes escaped the length check", len(body))
			}
		}
	})
}

// FuzzDecoders: arbitrary bodies through every payload decoder never
// panic — a checksum-valid frame from a hostile peer decodes to an
// error, not a crash. Successful observe/ack decodes must re-encode
// (the decoded fields are within the format's own limits).
func FuzzDecoders(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed[header:]) // decoders take bodies, not framed bytes
	}
	f.Add([]byte{tagObserve})
	f.Add([]byte{tagAck})
	f.Add([]byte{tagEvent, 1})
	f.Fuzz(func(t *testing.T, body []byte) {
		var obs stream.ObserveFrame
		or := NewObserveReader(bytes.NewReader(nil))
		defer or.Release()
		if err := decodeObserve(body, &obs, or.intern); err == nil {
			if _, err := AppendObserve(nil, &obs); err != nil {
				t.Fatalf("decoded observe frame does not re-encode: %v", err)
			}
		}
		var ack stream.Ack
		if err := DecodeAck(body, &ack); err == nil {
			if _, err := AppendAck(nil, &ack); err != nil {
				t.Fatalf("decoded ack does not re-encode: %v", err)
			}
		}
		var ev stream.Event
		_ = DecodeEvent(body, &ev)
	})
}
