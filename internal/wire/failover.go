// Client-side failover: the endpoint-list layer over the typed client
// and the follower source.
//
// MultiSource makes a follower failover-aware: `-replica-of` takes a
// comma-separated fleet list, and every (re)connect re-resolves which
// endpoint is the highest-term live primary. The probe itself carries
// the term gossip, so merely looking for the new primary is what fences
// the old one.
//
// FailoverClient does the same for API clients: it probes /v1/readyz
// across the fleet (role and term ride the X-Ltam-Role / X-Ltam-Term
// headers), points writes and streams at the current primary, retries
// idempotent reads on any reachable secondary, and re-points the
// resumable ingest/subscribe machinery at the new primary after a
// promotion.
package wire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/storage"
)

// probeTimeout bounds one per-endpoint probe; a dead endpoint must cost
// one timeout, not a hung failover.
const probeTimeout = 2 * time.Second

// SplitEndpoints parses a comma-separated endpoint list, trimming
// whitespace and dropping empties.
func SplitEndpoints(list string) []string {
	var out []string
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// MultiSource is a core.ReplicaSource over a fleet of candidate
// primaries. Every Bootstrap and Tail re-resolves the target: each
// endpoint's replication status is probed (with the term gossip
// attached), and the live primary with the highest term wins. A stale
// primary that answers the probe is fenced by it; a stream that ends in
// a term change or a 410 lands back here and re-resolves.
type MultiSource struct {
	srcs []*ReplicationSource
	urls []string
	high *atomic.Uint64 // term gossip, shared by every per-endpoint source
	cur  atomic.Int32
}

// NewMultiSource builds the failover-aware source. The list order only
// matters as a tiebreak before the first successful probe.
func NewMultiSource(urls []string) (*MultiSource, error) {
	if len(urls) == 0 {
		return nil, errors.New("wire: failover source needs at least one endpoint")
	}
	high := new(atomic.Uint64)
	m := &MultiSource{urls: urls, high: high}
	for _, u := range urls {
		m.srcs = append(m.srcs, &ReplicationSource{c: NewClient(u), high: high})
	}
	return m, nil
}

// Endpoints returns the configured endpoint list.
func (m *MultiSource) Endpoints() []string { return m.urls }

// PrimaryURL returns the endpoint currently believed to be the primary.
func (m *MultiSource) PrimaryURL() string { return m.urls[m.cur.Load()] }

// pick probes the fleet and selects the live primary with the highest
// term, falling back to the current choice when nothing answers as a
// primary (the caller's retry loop will come back). Probing every
// endpoint — including ones believed dead or stale — is deliberate:
// the probe carries the term gossip that fences a resurrected stale
// primary.
func (m *MultiSource) pick(ctx context.Context) *ReplicationSource {
	if len(m.srcs) == 1 {
		return m.srcs[0]
	}
	best, bestTerm := -1, uint64(0)
	for i, src := range m.srcs {
		pctx, cancel := context.WithTimeout(ctx, probeTimeout)
		st, err := src.Status(pctx)
		cancel()
		if err != nil || st.Role != "primary" {
			continue
		}
		if best < 0 || st.Term > bestTerm {
			best, bestTerm = i, st.Term
		}
	}
	if best >= 0 {
		m.cur.Store(int32(best))
	}
	return m.srcs[m.cur.Load()]
}

// Bootstrap resolves the current primary and fetches its full state.
func (m *MultiSource) Bootstrap() (uint64, bool, json.RawMessage, error) {
	ctx, cancel := context.WithTimeout(context.Background(), probeTimeout*time.Duration(len(m.srcs)))
	src := m.pick(ctx)
	cancel()
	return src.Bootstrap()
}

// PrimarySeq polls the current choice (no re-probe: this is the cheap
// per-second lag observation, and a failure just leaves staleness
// growing until the next Tail re-resolves).
func (m *MultiSource) PrimarySeq(ctx context.Context) (uint64, error) {
	return m.srcs[m.cur.Load()].PrimarySeq(ctx)
}

// Tail re-resolves the primary, then delegates. Any stream end returns
// to the Run loop, whose reconnect lands here again — so a term change
// or a compaction gap re-resolves within one backoff step.
func (m *MultiSource) Tail(ctx context.Context, from uint64, apply func(rec storage.Record) error) error {
	return m.pick(ctx).Tail(ctx, from, apply)
}

// SourceTerm reports the term of the current endpoint's last stream
// (core.TermedSource).
func (m *MultiSource) SourceTerm() uint64 {
	return m.srcs[m.cur.Load()].SourceTerm()
}

// FailoverClient is a typed client over a fleet of endpoints: writes and
// streams follow the current primary, idempotent reads fall back to any
// reachable endpoint, and the resumable ingest/subscribe clients it
// hands out re-probe the fleet on every repair — so an application
// rides through a promotion without re-wiring anything.
type FailoverClient struct {
	clients []*Client
	urls    []string
	cur     atomic.Int32
	term    atomic.Uint64 // highest term seen; gossiped on every probe
}

// NewFailoverClient builds a failover client over the endpoint list
// (first endpoint is the initial primary guess).
func NewFailoverClient(urls ...string) (*FailoverClient, error) {
	if len(urls) == 0 {
		return nil, errors.New("wire: failover client needs at least one endpoint")
	}
	f := &FailoverClient{urls: urls}
	for _, u := range urls {
		f.clients = append(f.clients, NewClient(u))
	}
	return f, nil
}

// Endpoints returns the configured endpoint list.
func (f *FailoverClient) Endpoints() []string { return f.urls }

// Current returns the client for the endpoint currently believed to be
// the primary (no probe).
func (f *FailoverClient) Current() *Client { return f.clients[f.cur.Load()] }

// probeOne checks one endpoint's /v1/readyz, returning its role and
// term. The request carries the fleet's highest seen term — the gossip
// that fences a stale primary.
func (f *FailoverClient) probeOne(ctx context.Context, c *Client) (role string, term uint64, err error) {
	pctx, cancel := context.WithTimeout(ctx, probeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, "GET", c.BaseURL+"/v1/readyz", nil)
	if err != nil {
		return "", 0, err
	}
	if t := f.term.Load(); t > 0 {
		req.Header.Set(TermHeader, strconv.FormatUint(t, 10))
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return "", 0, err
	}
	resp.Body.Close()
	role = resp.Header.Get(RoleHeader)
	term = headerTerm(resp.Header)
	for {
		cur := f.term.Load()
		if term <= cur || f.term.CompareAndSwap(cur, term) {
			break
		}
	}
	if resp.StatusCode != http.StatusOK {
		return role, term, fmt.Errorf("wire: readyz %s: HTTP %d", c.BaseURL, resp.StatusCode)
	}
	return role, term, nil
}

// Probe re-resolves the current primary: every endpoint's readiness is
// checked and the READY primary with the highest term becomes current.
// It returns an error when no endpoint currently answers as a ready
// primary (mid-failover: retry after promoting).
func (f *FailoverClient) Probe(ctx context.Context) (*Client, error) {
	best, bestTerm := -1, uint64(0)
	var lastErr error
	for i, c := range f.clients {
		role, term, err := f.probeOne(ctx, c)
		if err != nil {
			lastErr = err
			continue
		}
		if role != "primary" {
			lastErr = fmt.Errorf("wire: %s is %s, not primary", c.BaseURL, role)
			continue
		}
		if best < 0 || term > bestTerm {
			best, bestTerm = i, term
		}
	}
	if best < 0 {
		if lastErr == nil {
			lastErr = errors.New("wire: no endpoint answered")
		}
		return nil, fmt.Errorf("wire: no ready primary among %d endpoints: %w", len(f.clients), lastErr)
	}
	f.cur.Store(int32(best))
	return f.clients[best], nil
}

// Read runs one idempotent read against the current endpoint, falling
// back to every other endpoint on failure — a query rides out a dead
// primary on a caught-up secondary. Do NOT use it for mutations: a
// timed-out write may have been applied, and replaying it elsewhere
// would double-apply.
func (f *FailoverClient) Read(fn func(*Client) error) error {
	cur := int(f.cur.Load())
	err := fn(f.clients[cur])
	if err == nil {
		return nil
	}
	for i, c := range f.clients {
		if i == cur {
			continue
		}
		if ferr := fn(c); ferr == nil {
			return nil
		}
	}
	return err
}

// Write runs one mutation against the current primary; on failure it
// re-probes the fleet once and retries on the (possibly new) primary.
// The caller owns idempotency across the retry (e.g. the resumable
// session dedupe, or naturally idempotent upserts).
func (f *FailoverClient) Write(ctx context.Context, fn func(*Client) error) error {
	err := fn(f.Current())
	if err == nil {
		return nil
	}
	c, perr := f.Probe(ctx)
	if perr != nil {
		return err
	}
	return fn(c)
}

// picker is the redial hook handed to the resumable clients: re-probe
// the fleet, return the new primary (nil = keep the previous endpoint
// and let the backoff retry).
func (f *FailoverClient) picker(ctx context.Context) func() *Client {
	return func() *Client {
		c, err := f.Probe(ctx)
		if err != nil {
			return nil
		}
		return c
	}
}

// StreamObserveResumable opens an exactly-once ingest session that
// follows the fleet's primary across failovers. Exactly-once degrades
// to at-least-once for the un-acked window when the failover loses the
// session state (DESIGN.md D15).
func (f *FailoverClient) StreamObserveResumable(ctx context.Context, wf WireFormat) (*ResumableObserver, error) {
	ro := &ResumableObserver{
		c:        f.Current(),
		wf:       wf,
		ctx:      ctx,
		session:  newSessionToken(),
		Patience: DefaultResumePatience,
		pick:     f.picker(ctx),
	}
	if err := ro.redial(); err != nil {
		return nil, err
	}
	return ro, nil
}

// SubscribeResume opens a gapless committed-event subscription that
// follows the fleet's primary across failovers.
func (f *FailoverClient) SubscribeResume(ctx context.Context, opts StreamSubscribeOptions) (*ResumableEventStream, error) {
	rs := &ResumableEventStream{
		c:        f.Current(),
		ctx:      ctx,
		opts:     opts,
		Patience: DefaultResumePatience,
		next:     opts.From,
		pick:     f.picker(ctx),
	}
	if opts.AlertsSince != nil {
		rs.alertsSeen = *opts.AlertsSince
	}
	es, err := rs.c.Subscribe(ctx, opts)
	if err != nil {
		// The configured first endpoint may be the dead one: re-probe
		// and retry once before giving up.
		c, perr := f.Probe(ctx)
		if perr != nil {
			return nil, err
		}
		rs.c = c
		if es, err = rs.c.Subscribe(ctx, opts); err != nil {
			return nil, err
		}
	}
	rs.es = es
	return rs, nil
}
