package wire

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/interval"
	"repro/internal/profile"
)

func TestClientSurfacesWireErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"that was bad"}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	err := c.PutSubject(profile.Subject{ID: "x"})
	if err == nil || !strings.Contains(err.Error(), "that was bad") {
		t.Errorf("err = %v", err)
	}
}

func TestClientHandlesNonJSONErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "plain text panic page", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.Subjects(); err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Errorf("err = %v", err)
	}
}

func TestClientDecodesSuccess(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`["a","b"]`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	subs, err := c.Subjects()
	if err != nil || len(subs) != 2 || subs[0] != "a" {
		t.Errorf("subs = %v, %v", subs, err)
	}
}

func TestClientRejectsMalformedSuccessBody(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{nope`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	if _, err := c.Subjects(); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("err = %v", err)
	}
}

func TestClientConnectionFailure(t *testing.T) {
	c := NewClient("http://127.0.0.1:1") // nothing listens there
	if _, err := c.Subjects(); err == nil {
		t.Error("connection failure must surface")
	}
}

func TestIntervalJSONRoundTripsInf(t *testing.T) {
	// The wire protocol carries intervals as {Start, End}; the ∞ sentinel
	// (MaxInt64) must survive JSON both ways.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"reachable":true,"earliest":9223372036854775807}`))
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	resp, err := c.Reach("a", "l")
	if err != nil || !resp.Reachable || resp.Earliest != interval.Inf {
		t.Errorf("resp = %+v, %v", resp, err)
	}
}
