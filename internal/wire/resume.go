// Resumable streaming: the client half of exactly-once ingest and
// gapless subscription across connection failures.
//
// ResumableObserver wraps StreamObserver with a resume session: every
// frame gets a session-scoped sequence number and stays buffered until
// an ack's Resume covers it. When the connection dies — mid-send, or
// silently while idle — the observer redials with the same session
// token, reads the server's hello (Resume = the durable frame
// high-water), re-sends only the un-acked suffix, and the server
// deduplicates whatever of that overlap it had in fact applied. The
// caller sees one uninterrupted stream with exactly-once application.
//
// ResumableEventStream does the mirror image for the committed-event
// feed: it tracks the last delivered record sequence and redials
// From=last+1 on any transport failure or in-band KindError frame
// (eviction, compaction), so the caller iterates a gapless, duplicate-
// free feed across server restarts. The WAL is the replay buffer that
// makes this exact.
package wire

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	mrand "math/rand"
	"time"

	"repro/internal/stream"
)

// Resume-dial defaults: how long a resumable connection keeps retrying
// (long enough to ride out a server restart) and the backoff bounds.
const (
	DefaultResumePatience = 45 * time.Second
	resumeBackoffMin      = 50 * time.Millisecond
	resumeBackoffMax      = 2 * time.Second
)

// backoffJitter returns d randomized over [d/2, d] (equal jitter), so a
// fleet of clients cut by the same failure does not redial in lockstep.
func backoffJitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	return d/2 + time.Duration(mrand.Int63n(int64(d/2)+1))
}

// newSessionToken returns a fresh random session token.
func newSessionToken() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Fall back to the math/rand stream — the token only needs to be
		// unique among this server's live sessions, not unguessable.
		return fmt.Sprintf("sess-%016x", mrand.Uint64())
	}
	return hex.EncodeToString(b[:])
}

// ResumableObserver is a self-healing ingest stream. All methods must
// be called from ONE goroutine (Ack repairs a dead connection, so even
// it mutates). It presents the same surface as StreamObserver, plus the
// exactly-once resume machinery underneath.
type ResumableObserver struct {
	c       *Client
	wf      WireFormat
	ctx     context.Context
	session string
	// pick, when set (FailoverClient), re-resolves the endpoint before
	// every redial: after a failover the repair lands on the promoted
	// primary instead of hammering the dead one. The session token is
	// kept — but a new primary has no memory of it, so its hello resumes
	// at 0 and the whole un-acked suffix is re-sent: the un-acked window
	// degrades to at-least-once across promotion (DESIGN.md D15).
	pick func() *Client

	// Patience bounds how long one repair (redial + hello + re-send)
	// may keep retrying before the observer gives up and surfaces the
	// error. Set before the first Send.
	Patience time.Duration

	obs     *StreamObserver
	nextSeq uint64               // last assigned frame sequence
	buf     []stream.ObserveFrame // un-acked suffix, ascending Seq
	durable uint64               // session durable high-water (max of hellos and acks)
	base    stream.Ack           // counters folded from finished connections

	reconnects uint64
	closed     bool
	err        error
}

// StreamObserveResumable opens an exactly-once ingest stream: a fresh
// resume session over the given framing. Canceling ctx tears the
// current connection and stops any repair in progress.
func (c *Client) StreamObserveResumable(ctx context.Context, wf WireFormat) (*ResumableObserver, error) {
	ro := &ResumableObserver{
		c:        c,
		wf:       wf,
		ctx:      ctx,
		session:  newSessionToken(),
		Patience: DefaultResumePatience,
	}
	if err := ro.redial(); err != nil {
		return nil, err
	}
	return ro, nil
}

// Session returns the resume token (diagnostics).
func (ro *ResumableObserver) Session() string { return ro.session }

// Reconnects returns how many times the observer has repaired its
// connection.
func (ro *ResumableObserver) Reconnects() uint64 { return ro.reconnects }

// redial opens one connection for the session, waits for the hello, and
// re-sends the buffered frames the hello's Resume does not cover. One
// attempt — repair() wraps it in the backoff loop.
func (ro *ResumableObserver) redial() error {
	if ro.pick != nil {
		if c := ro.pick(); c != nil {
			ro.c = c
		}
	}
	obs, err := ro.c.streamObserveSession(ro.ctx, ro.wf, ro.session)
	if err != nil {
		return err
	}
	var hello stream.Ack
	select {
	case hello = <-obs.hello:
	case <-obs.done:
		obs.Abort()
		if obs.err != nil {
			return obs.err
		}
		return errors.New("wire: resumable observe: connection ended before hello")
	case <-ro.ctx.Done():
		obs.Abort()
		return ro.ctx.Err()
	}
	if hello.Final {
		// Refused (draining, poisoned): terminal for this connection,
		// retryable for the session.
		obs.Abort()
		if hello.Error != "" {
			return fmt.Errorf("wire: resumable observe: refused: %s", hello.Error)
		}
		return errors.New("wire: resumable observe: refused before any frame")
	}
	ro.noteDurable(hello.Resume)
	ro.trim()
	for i := range ro.buf {
		if err := obs.sendSeq(&ro.buf[i]); err != nil {
			obs.Abort()
			return err
		}
	}
	if err := obs.Flush(); err != nil {
		obs.Abort()
		return err
	}
	ro.obs = obs
	return nil
}

// repair replaces a dead connection, retrying with jittered exponential
// backoff until Patience runs out. Called with a nil (or abandoned)
// ro.obs.
func (ro *ResumableObserver) repair() error {
	if ro.obs != nil {
		ro.foldFinished()
		ro.obs = nil
	}
	ro.reconnects++
	deadline := time.Now().Add(ro.Patience)
	backoff := resumeBackoffMin
	for {
		err := ro.redial()
		if err == nil {
			return nil
		}
		if ro.ctx.Err() != nil {
			return err
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("wire: resumable observe: gave up after %v: %w", ro.Patience, err)
		}
		select {
		case <-time.After(backoffJitter(backoff)):
		case <-ro.ctx.Done():
			return ro.ctx.Err()
		}
		if backoff *= 2; backoff > resumeBackoffMax {
			backoff = resumeBackoffMax
		}
	}
}

// foldFinished accumulates a finished connection's outcome counters into
// base, so Ack() stays roughly cumulative across reconnects. (Counters
// for frames applied but never acked before a cut are lost — Acked,
// Resume and Seq are the exact fields; the outcome tallies are
// best-effort across failures.)
func (ro *ResumableObserver) foldFinished() {
	if ro.obs == nil {
		return
	}
	a := ro.obs.Ack()
	ro.noteDurable(a.Resume)
	ro.base.Granted += a.Granted
	ro.base.Denied += a.Denied
	ro.base.Moved += a.Moved
	ro.base.Errors += a.Errors
	if a.LastError != "" {
		ro.base.LastError = a.LastError
	}
	if a.Seq > ro.base.Seq {
		ro.base.Seq = a.Seq
	}
}

func (ro *ResumableObserver) noteDurable(r uint64) {
	if r > ro.durable {
		ro.durable = r
	}
}

// trim drops buffered frames the durable high-water covers.
func (ro *ResumableObserver) trim() {
	if ro.obs != nil {
		ro.noteDurable(ro.obs.Ack().Resume)
	}
	i := 0
	for i < len(ro.buf) && ro.buf[i].Seq <= ro.durable {
		i++
	}
	if i > 0 {
		ro.buf = append(ro.buf[:0], ro.buf[i:]...)
	}
}

// live reports whether the current connection is still usable.
func (ro *ResumableObserver) live() bool {
	if ro.obs == nil {
		return false
	}
	select {
	case <-ro.obs.done:
		return false
	default:
		return true
	}
}

// Send numbers and buffers one reading, then streams it. A transport
// failure triggers a transparent repair: the frame is already buffered,
// so the redial re-sends it (and the server dedupes any overlap).
func (ro *ResumableObserver) Send(r Reading) error {
	if ro.closed {
		return errors.New("wire: resumable observe: send after Close")
	}
	ro.nextSeq++
	f := stream.ObserveFrame{Time: r.Time, Subject: r.Subject, X: r.X, Y: r.Y, Seq: ro.nextSeq}
	ro.buf = append(ro.buf, f)
	ro.trim()
	if ro.live() {
		if err := ro.obs.sendSeq(&f); err == nil {
			return nil
		}
	}
	return ro.repair()
}

// Flush pushes buffered frames to the server, repairing a dead
// connection first (the repair itself re-sends and flushes).
func (ro *ResumableObserver) Flush() error {
	if !ro.live() {
		if ro.closed {
			return errors.New("wire: resumable observe: flush after Close")
		}
		return ro.repair()
	}
	if err := ro.obs.Flush(); err != nil {
		return ro.repair()
	}
	return nil
}

// Ack returns the latest cumulative position. Acked is the number of
// this session's frames durably applied (== the resume high-water,
// since sequences are dense from 1); Seq is the primary's durable
// record sequence; the outcome counters aggregate across connections.
// A connection found dead while polling is repaired in place (the
// redial re-sends the un-acked suffix), so an idle wait-for-ack loop
// makes progress across kills too.
func (ro *ResumableObserver) Ack() stream.Ack {
	if !ro.closed && !ro.live() {
		_ = ro.repair() // best effort; the next poll retries
	}
	var cur stream.Ack
	if ro.obs != nil {
		cur = ro.obs.Ack()
	}
	ro.noteDurable(cur.Resume)
	a := ro.base
	a.Granted += cur.Granted
	a.Denied += cur.Denied
	a.Moved += cur.Moved
	a.Errors += cur.Errors
	if cur.LastError != "" {
		a.LastError = cur.LastError
	}
	if cur.Seq > a.Seq {
		a.Seq = cur.Seq
	}
	a.Acked = ro.durable
	a.Resume = ro.durable
	return a
}

// Err returns the terminal error (set by a failed Close or an exhausted
// repair).
func (ro *ResumableObserver) Err() error { return ro.err }

// Close finishes the session: End frame, final ack, and — if the
// connection dies before the final ack covers every sent frame —
// repair-and-retry until it does or Patience runs out. On success every
// frame ever Sent is durably applied exactly once.
func (ro *ResumableObserver) Close() (stream.Ack, error) {
	if ro.closed {
		return ro.Ack(), ro.err
	}
	ro.closed = true
	deadline := time.Now().Add(ro.Patience)
	for {
		if !ro.live() {
			if err := ro.repair(); err != nil {
				ro.err = err
				return ro.Ack(), err
			}
		}
		a, err := ro.obs.Close()
		ro.noteDurable(a.Resume)
		if err == nil {
			ro.foldFinished()
			ro.obs = nil
			if ro.durable >= ro.nextSeq {
				ro.trim()
				fin := ro.Ack()
				fin.Final = true
				return fin, nil
			}
			err = fmt.Errorf("wire: resumable observe: final ack covers %d of %d frames", ro.durable, ro.nextSeq)
		}
		ro.foldFinished()
		ro.obs = nil
		if time.Now().After(deadline) {
			ro.err = err
			return ro.Ack(), err
		}
		select {
		case <-time.After(backoffJitter(resumeBackoffMin)):
		case <-ro.ctx.Done():
			ro.err = ro.ctx.Err()
			return ro.Ack(), ro.err
		}
	}
}

// ResumableEventStream is a self-healing subscription: EventStream's
// Next, but any transport failure or in-band KindError frame triggers a
// redial from the exact next sequence, so the caller sees a gapless,
// duplicate-free feed. Safe for one goroutine.
type ResumableEventStream struct {
	c    *Client
	ctx  context.Context
	opts StreamSubscribeOptions
	// pick, when set (FailoverClient), re-resolves the endpoint before
	// every redial attempt, so the feed resumes from the new primary
	// after a failover — gapless, because the redial position is the
	// client-tracked next sequence, not server state.
	pick func() *Client

	// Patience bounds how long one repair may keep retrying.
	Patience time.Duration

	es         *EventStream
	next       uint64 // next record sequence to request
	alertsSeen uint64 // highest AlertSeq delivered
	reconnects uint64
	// stalledSince is when repairs started making no progress (no event
	// delivered, no resume coordinate advanced); zero while progressing.
	// It bounds the otherwise-unbounded repair loop in Next: each redial
	// gets a fresh Patience, so a server that accepts subscriptions but
	// fails every delivery would spin forever without it.
	stalledSince time.Time
}

// SubscribeResume opens a self-healing subscription. opts.From seeds
// the position; after that the stream tracks its own.
func (c *Client) SubscribeResume(ctx context.Context, opts StreamSubscribeOptions) (*ResumableEventStream, error) {
	rs := &ResumableEventStream{
		c:        c,
		ctx:      ctx,
		opts:     opts,
		Patience: DefaultResumePatience,
		next:     opts.From,
	}
	if opts.AlertsSince != nil {
		rs.alertsSeen = *opts.AlertsSince
	}
	es, err := c.Subscribe(ctx, opts)
	if err != nil {
		return nil, err
	}
	rs.es = es
	return rs, nil
}

// Reconnects returns how many times the stream has repaired itself.
func (rs *ResumableEventStream) Reconnects() uint64 { return rs.reconnects }

// redial resubscribes from the tracked position, with backoff, until it
// succeeds or Patience runs out.
func (rs *ResumableEventStream) redial() error {
	rs.reconnects++
	opts := rs.opts
	opts.From = rs.next
	if rs.opts.AlertsSince != nil {
		since := rs.alertsSeen
		opts.AlertsSince = &since
	}
	deadline := time.Now().Add(rs.Patience)
	backoff := resumeBackoffMin
	for {
		if rs.pick != nil {
			if c := rs.pick(); c != nil {
				rs.c = c
			}
		}
		es, err := rs.c.Subscribe(rs.ctx, opts)
		if err == nil {
			rs.es = es
			return nil
		}
		if rs.ctx.Err() != nil || time.Now().After(deadline) {
			return err
		}
		select {
		case <-time.After(backoffJitter(backoff)):
		case <-rs.ctx.Done():
			return rs.ctx.Err()
		}
		if backoff *= 2; backoff > resumeBackoffMax {
			backoff = resumeBackoffMax
		}
	}
}

// noteStall records one repair with nothing delivered since the last
// progress and reports whether the no-progress window has exhausted
// Patience (at which point Next surfaces the failure instead of
// spinning forever).
func (rs *ResumableEventStream) noteStall() bool {
	if rs.stalledSince.IsZero() {
		rs.stalledSince = time.Now()
		return false
	}
	return time.Since(rs.stalledSince) > rs.Patience
}

// Next returns the next event, transparently repairing the feed on
// failure. Terminal KindError frames (eviction, compaction) are
// consumed — they carry the resume coordinate, which Next honors —
// and never surface to the caller. The one KindError that DOES
// surface is the alert-gap notice (Seq 0, AlertSeq > 0): it is
// informational, the subscription stays open, and hiding it would
// reintroduce the silent alert loss it reports. Repairs that make no
// progress — no event delivered, no resume coordinate advanced — stop
// after a Patience-long window and return the underlying failure.
func (rs *ResumableEventStream) Next() (stream.Event, error) {
	for {
		if rs.es == nil {
			if err := rs.redial(); err != nil {
				return stream.Event{}, err
			}
		}
		ev, err := rs.es.Next()
		if err != nil {
			// Transport failure or server-side end of feed (drain,
			// restart): resubscribe from the exact next sequence.
			rs.es.Close()
			rs.es = nil
			if rs.noteStall() {
				return stream.Event{}, fmt.Errorf("wire: resumable subscribe: no progress after %v: %w", rs.Patience, err)
			}
			continue
		}
		switch {
		case ev.Kind == stream.KindError && ev.Seq == 0 && ev.AlertSeq > 0:
			// Alert-gap notice (NOT a stream end): the bounded audit log
			// dropped alerts behind the replay cursor, and AlertSeq is the
			// oldest alert still retained. The subscription stays open —
			// redialing here would loop forever, because the redial's
			// unchanged alerts_since re-detects the same gap. Advance the
			// alert cursor to just before the oldest retained (replay
			// resumes there) and surface the notice so the caller KNOWS
			// alerts were lost — silent truncation is the bug this frame
			// exists to fix.
			if ev.AlertSeq-1 > rs.alertsSeen {
				rs.alertsSeen = ev.AlertSeq - 1
			}
			rs.stalledSince = time.Time{}
			return ev, nil
		case ev.Kind == stream.KindError:
			// In-band failure frame: eviction or compaction. Its Seq is
			// the sequence to resubscribe from (for compaction, the
			// oldest retained — skipping ahead is the documented
			// contract; for eviction, the next undelivered).
			rs.es.Close()
			rs.es = nil
			if ev.Seq > rs.next {
				rs.next = ev.Seq
				rs.stalledSince = time.Time{} // the coordinate moved: progress
			} else if rs.noteStall() {
				return stream.Event{}, fmt.Errorf("wire: resumable subscribe: no progress after %v: %s", rs.Patience, ev.Error)
			}
			continue
		case ev.Kind == stream.KindAlert:
			if ev.AlertSeq > rs.alertsSeen {
				rs.alertsSeen = ev.AlertSeq
			}
		default:
			// A record event: the next subscription starts just past it.
			if ev.Seq >= rs.next {
				rs.next = ev.Seq + 1
			}
		}
		rs.stalledSince = time.Time{}
		return ev, nil
	}
}

// Close detaches the subscription.
func (rs *ResumableEventStream) Close() error {
	if rs.es == nil {
		return nil
	}
	err := rs.es.Close()
	rs.es = nil
	return err
}
