// Streaming client: the two long-lived connections of internal/stream.
//
// StreamObserver drives POST /v1/stream/observe — frames are PIPELINED:
// Send buffers and never waits for an ack, so the per-reading cost is a
// JSON encode, not an HTTP round-trip; acks are tracked on a background
// goroutine and the latest cumulative position is always available via
// Ack. EventStream iterates GET /v1/stream/events line by line.
package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"

	"repro/internal/graph"
	"repro/internal/profile"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/wire/frame"
)

// WireFormat selects a streaming connection's framing: NDJSON (the
// default and the debugging surface) or the negotiated binary framing
// of internal/wire/frame.
type WireFormat string

const (
	WireNDJSON WireFormat = "ndjson"
	WireBinary WireFormat = "binary"
)

// ParseWireFormat maps a -wire flag value to a WireFormat ("" selects
// NDJSON).
func ParseWireFormat(s string) (WireFormat, error) {
	switch s {
	case "", string(WireNDJSON):
		return WireNDJSON, nil
	case string(WireBinary):
		return WireBinary, nil
	default:
		return "", fmt.Errorf("wire: unknown wire format %q (want %q or %q)", s, WireNDJSON, WireBinary)
	}
}

// StreamObserver is one live ingest connection. Send/Flush/Close are
// safe for one goroutine (the writer); Ack and Err may be called from
// any goroutine.
type StreamObserver struct {
	pw *io.PipeWriter
	bw *bufio.Writer

	mu     sync.Mutex // guards bw/pw, enc and closed
	closed bool
	binary bool
	enc    []byte // reused binary encode buffer (under mu)

	ackMu sync.Mutex
	last  stream.Ack

	// hello receives the FIRST ack of a session connection — the server's
	// resume coordinate, written before it reads any frame. Nil on
	// sessionless connections.
	hello chan stream.Ack

	err  error // terminal error, set before done closes
	done chan struct{}
}

// SessionHeader carries the ingest resume-session token on the stream
// observe request: connections presenting the same token share one
// server-side IngestSession (hello ack + frame dedupe — exactly-once
// across reconnects).
const SessionHeader = "X-Ltam-Session"

// StreamObserve opens the long-lived ingest stream over NDJSON. The
// returned observer buffers frames (32 KiB) — call Flush to push a
// partial buffer, Close to finish cleanly and collect the final ack.
// Canceling ctx tears the connection (the server still flushes and
// durably acks every complete frame it received).
func (c *Client) StreamObserve(ctx context.Context) (*StreamObserver, error) {
	return c.StreamObserveWire(ctx, WireNDJSON)
}

// StreamObserveWire opens the ingest stream with an explicit framing:
// WireBinary negotiates the length-prefixed binary codec for both
// directions (observe frames out, acks back), WireNDJSON the default
// line framing. Everything else matches StreamObserve.
func (c *Client) StreamObserveWire(ctx context.Context, wf WireFormat) (*StreamObserver, error) {
	return c.streamObserveSession(ctx, wf, "")
}

// streamObserveSession opens the ingest stream, optionally naming a
// resume session. With a session token the server writes a hello ack
// (its Resume is the re-send coordinate) before reading any frame, and
// the observer delivers it on o.hello.
func (c *Client) streamObserveSession(ctx context.Context, wf WireFormat, session string) (*StreamObserver, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(ctx, "POST", c.BaseURL+"/v1/stream/observe", pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	binary := wf == WireBinary
	if binary {
		req.Header.Set("Content-Type", frame.ContentType)
	} else {
		req.Header.Set("Content-Type", "application/x-ndjson")
	}
	if session != "" {
		req.Header.Set(SessionHeader, session)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		pw.Close()
		var e Error
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("wire: stream observe: %s", e.Error)
		}
		return nil, fmt.Errorf("wire: stream observe: HTTP %d", resp.StatusCode)
	}
	if binary && !strings.HasPrefix(resp.Header.Get("Content-Type"), frame.ContentType) {
		resp.Body.Close()
		pw.Close()
		return nil, fmt.Errorf("wire: stream observe: server does not speak %s", frame.ContentType)
	}
	o := &StreamObserver{pw: pw, bw: bufio.NewWriterSize(pw, 32<<10), binary: binary, done: make(chan struct{})}
	if session != "" {
		o.hello = make(chan stream.Ack, 1)
	}
	go o.readAcks(resp.Body)
	return o, nil
}

// readAcks owns the response side: track the latest cumulative ack,
// terminate on the final one (or a cut stream).
func (o *StreamObserver) readAcks(body io.ReadCloser) {
	defer close(o.done)
	defer body.Close()
	// note stores each decoded ack; it reports whether to keep reading.
	first := true
	note := func(a stream.Ack) bool {
		o.ackMu.Lock()
		o.last = a
		o.ackMu.Unlock()
		if first {
			first = false
			if o.hello != nil {
				o.hello <- a
			}
		}
		if a.Final {
			if a.Error != "" {
				o.err = fmt.Errorf("wire: stream observe: %s", a.Error)
			}
			return false
		}
		return true
	}
	if o.binary {
		fr := frame.NewRawReader(bufio.NewReader(body))
		defer fr.Release()
		for {
			raw, err := fr.Next()
			if err != nil {
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					o.err = fmt.Errorf("wire: stream observe: ack stream ended without final ack")
				} else {
					o.err = fmt.Errorf("wire: stream observe: ack stream: %w", err)
				}
				return
			}
			var a stream.Ack
			if err := frame.DecodeAck(raw, &a); err != nil {
				o.err = fmt.Errorf("wire: stream observe: bad ack: %w", err)
				return
			}
			if !note(a) {
				return
			}
		}
	}
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 4<<10), 1<<20)
	for sc.Scan() {
		var a stream.Ack
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			o.err = fmt.Errorf("wire: stream observe: bad ack: %w", err)
			return
		}
		if !note(a) {
			return
		}
	}
	// The ack stream ended without a final frame: server or network
	// failure. The last ack still states exactly what is durable.
	if err := sc.Err(); err != nil {
		o.err = fmt.Errorf("wire: stream observe: ack stream: %w", err)
	} else {
		o.err = fmt.Errorf("wire: stream observe: ack stream ended without final ack")
	}
}

// writeFrame encodes one observe frame onto the buffered stream.
// Callers hold o.mu.
func (o *StreamObserver) writeFrame(f *stream.ObserveFrame) error {
	if o.binary {
		out, err := frame.AppendObserve(o.enc[:0], f)
		if err != nil {
			return err
		}
		o.enc = out[:0]
		_, err = o.bw.Write(out)
		return err
	}
	line, err := json.Marshal(f)
	if err != nil {
		return err
	}
	if _, err := o.bw.Write(line); err != nil {
		return err
	}
	return o.bw.WriteByte('\n')
}

// Send encodes one reading onto the stream. It does not wait for an ack
// and may buffer; an error reports a terminated stream (see Err) or a
// transport failure.
func (o *StreamObserver) Send(r Reading) error {
	select {
	case <-o.done:
		if o.err != nil {
			return o.err
		}
		return errors.New("wire: stream observe: stream already finished")
	default:
	}
	f := stream.ObserveFrame{Time: r.Time, Subject: r.Subject, X: r.X, Y: r.Y}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return errors.New("wire: stream observe: send after Close")
	}
	return o.writeFrame(&f)
}

// sendSeq encodes one session-numbered frame onto the stream (the
// resumable observer's send path; Seq rides the frame to the server's
// dedupe).
func (o *StreamObserver) sendSeq(f *stream.ObserveFrame) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return errors.New("wire: stream observe: send after Close")
	}
	return o.writeFrame(f)
}

// Flush pushes buffered frames to the server.
func (o *StreamObserver) Flush() error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.closed {
		return nil
	}
	return o.bw.Flush()
}

// Ack returns the latest cumulative ack: the first Ack.Acked frames of
// this stream are applied and durable up to record sequence Ack.Seq.
func (o *StreamObserver) Ack() stream.Ack {
	o.ackMu.Lock()
	defer o.ackMu.Unlock()
	return o.last
}

// Err returns the terminal error once the stream has ended (nil on a
// clean finish).
func (o *StreamObserver) Err() error {
	select {
	case <-o.done:
		return o.err
	default:
		return nil
	}
}

// Close finishes the stream cleanly: flush, send the End frame, wait
// for the server's final ack, and return it. The returned ack is the
// connection's complete durable outcome.
func (o *StreamObserver) Close() (stream.Ack, error) {
	o.mu.Lock()
	if !o.closed {
		o.closed = true
		werr := o.writeFrame(&stream.ObserveFrame{End: true})
		if ferr := o.bw.Flush(); werr == nil {
			werr = ferr
		}
		if werr != nil {
			o.pw.CloseWithError(werr)
		} else {
			o.pw.Close()
		}
	}
	o.mu.Unlock()
	<-o.done
	return o.Ack(), o.err
}

// Abort cuts the connection without an End frame — a simulated client
// crash. The server flushes and acks the complete frames it received;
// the final ack (if the read side survived long enough to see one)
// states the durable prefix.
func (o *StreamObserver) Abort() {
	o.mu.Lock()
	if !o.closed {
		o.closed = true
		_ = o.bw.Flush()
		o.pw.CloseWithError(errors.New("wire: stream observe: aborted"))
	}
	o.mu.Unlock()
	<-o.done
}

// StreamSubscribeOptions positions and filters an event subscription.
type StreamSubscribeOptions struct {
	// From is the first record sequence to deliver. 0 = everything the
	// server retains (from the compaction horizon, wherever it is); an
	// explicit nonzero From behind the horizon is refused with
	// storage.ErrSeqGap.
	From uint64
	// Subject/Location/Kinds filter the feed server-side.
	Subject  profile.SubjectID
	Location graph.ID
	Kinds    []stream.EventKind
	// AlertsSince, when non-nil, also delivers the retained alert backlog
	// with AlertSeq > the value.
	AlertsSince *uint64
	// Cursor names a server-kept durable cursor: when From is 0, the
	// subscription resumes at the cursor's acked sequence + 1 (everything
	// retained, for an unknown token). Advance it with Client.AckCursor.
	// An explicit From wins over the cursor.
	Cursor string
	// Buffer overrides the server-side per-subscriber queue length.
	Buffer int
	// Wire selects the feed framing: WireNDJSON (the default) or
	// WireBinary (negotiated via Accept: application/x-ltam-frame).
	Wire WireFormat
}

// CursorAckRequest advances a durable subscriber cursor: the client has
// durably processed every event up to and including Seq.
type CursorAckRequest struct {
	Cursor string `json:"cursor"`
	Seq    uint64 `json:"seq"`
}

// CursorAckResponse reports the cursor's resulting acked sequence
// (acks are monotonic: a stale ack is a no-op, not a rewind).
type CursorAckResponse struct {
	Cursor string `json:"cursor"`
	Acked  uint64 `json:"acked"`
}

// AckCursor advances the named durable cursor to seq on the node this
// client points at. Ack against the same node the subscription reads
// from — cursors are per-node sidecar state, not replicated.
func (c *Client) AckCursor(cursor string, seq uint64) (CursorAckResponse, error) {
	var out CursorAckResponse
	err := c.do("POST", "/v1/stream/ack", CursorAckRequest{Cursor: cursor, Seq: seq}, &out)
	return out, err
}

// EventStream iterates one subscription's feed (NDJSON lines or binary
// frames, fixed at Subscribe time).
type EventStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner // NDJSON mode
	fr   *frame.EventReader
}

// Subscribe opens the committed-event feed. A From behind the
// compaction horizon returns storage.ErrSeqGap (the server's HTTP 410);
// bootstrap a replica instead. Cancel ctx or Close the stream to
// detach.
func (c *Client) Subscribe(ctx context.Context, opts StreamSubscribeOptions) (*EventStream, error) {
	q := url.Values{}
	if opts.From > 0 {
		q.Set("from", strconv.FormatUint(opts.From, 10))
	}
	if opts.Subject != "" {
		q.Set("subject", string(opts.Subject))
	}
	if opts.Location != "" {
		q.Set("location", string(opts.Location))
	}
	if len(opts.Kinds) > 0 {
		kinds := make([]string, len(opts.Kinds))
		for i, k := range opts.Kinds {
			kinds[i] = string(k)
		}
		q.Set("kinds", strings.Join(kinds, ","))
	}
	if opts.AlertsSince != nil {
		q.Set("alerts_since", strconv.FormatUint(*opts.AlertsSince, 10))
	}
	if opts.Cursor != "" {
		q.Set("cursor", opts.Cursor)
	}
	if opts.Buffer > 0 {
		q.Set("buffer", strconv.Itoa(opts.Buffer))
	}
	u := c.BaseURL + "/v1/stream/events"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, "GET", u, nil)
	if err != nil {
		return nil, err
	}
	binary := opts.Wire == WireBinary
	if binary {
		req.Header.Set("Accept", frame.ContentType)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		var e Error
		msg := fmt.Sprintf("HTTP %d", resp.StatusCode)
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		if resp.StatusCode == http.StatusGone {
			return nil, fmt.Errorf("wire: subscribe: %w: %s", storage.ErrSeqGap, msg)
		}
		return nil, fmt.Errorf("wire: subscribe: %s", msg)
	}
	if binary {
		if !strings.HasPrefix(resp.Header.Get("Content-Type"), frame.ContentType) {
			resp.Body.Close()
			return nil, fmt.Errorf("wire: subscribe: server does not speak %s", frame.ContentType)
		}
		return &EventStream{body: resp.Body, fr: frame.NewEventReader(bufio.NewReaderSize(resp.Body, 16<<10))}, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 16<<10), int(storage.MaxFrameSize))
	return &EventStream{body: resp.Body, sc: sc}, nil
}

// Next returns the next event. io.EOF reports a server-side end of
// feed; a stream.KindError event (delivered before the close) carries
// the reason — slow-consumer eviction or compaction — and the sequence
// to resubscribe from.
func (es *EventStream) Next() (stream.Event, error) {
	if es.fr != nil {
		var ev stream.Event
		if err := es.fr.Next(&ev); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return stream.Event{}, io.EOF
			}
			return stream.Event{}, fmt.Errorf("wire: subscribe: bad event: %w", err)
		}
		return ev, nil
	}
	if !es.sc.Scan() {
		if err := es.sc.Err(); err != nil {
			return stream.Event{}, err
		}
		return stream.Event{}, io.EOF
	}
	var ev stream.Event
	if err := json.Unmarshal(es.sc.Bytes(), &ev); err != nil {
		return stream.Event{}, fmt.Errorf("wire: subscribe: bad event: %w", err)
	}
	return ev, nil
}

// Close detaches the subscription.
func (es *EventStream) Close() error {
	if es.fr != nil {
		es.fr.Release()
		es.fr = nil
	}
	return es.body.Close()
}
