// Pipeline tracing: a per-sequence stage clock over a lock-free ring.
//
// Every committed record flows decode → gather → apply → append → fsync
// → publish → deliver (and replica-apply → relay-append on followers).
// Each stage stamps the record's slot in a fixed ring keyed by the
// record's global sequence number; the ring holds the last N records, so
// an operator can ask "where did seq 123456 spend its 5.1µs?" while the
// per-stage histograms aggregate the same stamps into p50/p95/p99
// transition latencies.
//
// Stamping is a handful of atomic stores against a preallocated slot —
// no lock, no allocation — and every stamp uses the process-monotonic
// clock (Now), so a trace's stage ordering can never be inverted by a
// wall-clock step.
package obs

import (
	"sync/atomic"
	"time"
)

// Stage identifies one pipeline stage. The declaration order IS the
// pipeline order: a record's stamps are non-decreasing along it.
type Stage int

const (
	// StageDecode: the ingest reader decoded the frame off the wire.
	StageDecode Stage = iota
	// StageGather: the shared chunker folded the frame into a batch.
	StageGather
	// StageApply: the record was produced under the write lock (the
	// engine applied the mutation and the post-mutation view was
	// published to readers).
	StageApply
	// StageAppend: the group committer began writing the record's batch
	// to the WAL. Apply→append is the commit-queue wait.
	StageAppend
	// StageFsync: the batch's fsync returned — the record is durable.
	StageFsync
	// StagePublish: the durable commit was released to its barrier
	// waiters (acks and the commit notification follow immediately).
	// The RCU read view itself is published earlier, under the write
	// lock — this stage marks when that view becomes durably backed.
	StagePublish
	// StageDeliver: the event bus fanned the record's event out to its
	// subscribers.
	StageDeliver
	// StageReplicaApply: a follower applied the shipped record.
	StageReplicaApply
	// StageRelayAppend: a cascading follower re-persisted the record
	// into its relay log for the downstream tier.
	StageRelayAppend

	NumStages
)

// stageNames is indexed by Stage.
var stageNames = [NumStages]string{
	"decode", "gather", "apply", "append", "fsync", "publish", "deliver",
	"replica-apply", "relay-append",
}

func (st Stage) String() string {
	if st < 0 || st >= NumStages {
		return "unknown"
	}
	return stageNames[st]
}

// StageNames returns the stage names in pipeline order.
func StageNames() []string {
	out := make([]string, NumStages)
	for i := range stageNames {
		out[i] = stageNames[i]
	}
	return out
}

// traceEpoch anchors the process-monotonic trace clock.
var traceEpoch = time.Now()

// Now returns the trace clock: nanoseconds since the process started
// tracing. It reads the runtime's monotonic clock, so stamps taken in
// happens-before order are non-decreasing even across an NTP step.
func Now() int64 { return int64(time.Since(traceEpoch)) }

// FrameStamps carries the pre-sequence trace stamps of one reading: the
// instants it was decoded off the wire and gathered into a batch, on the
// trace clock. It rides the hot-path structs (stream frame, reading, WAL
// record) by value — zero allocations. Zero fields mean "not traced on
// that stage" (e.g. the request/response ingest paths never decode
// frames).
type FrameStamps struct {
	Decode int64
	Gather int64
}

// DefaultTraceRing is the ring size NewPipelineTrace(0) selects.
const DefaultTraceRing = 4096

// traceSlot is one record's stage clock. seq guards the stamps: readers
// load seq, copy the stamps, and re-check seq to discard torn slots.
type traceSlot struct {
	seq    atomic.Uint64
	stamps [NumStages]atomic.Int64
}

// TraceEntry is a consistent copy of one record's stage clock. Stamps
// are trace-clock nanoseconds (see Now); zero means the stage never ran
// for this record.
type TraceEntry struct {
	Seq    uint64
	Stamps [NumStages]int64
}

// PipelineTrace is the per-sequence stage clock: a ring of the last N
// records plus one latency histogram per stage transition. A nil
// PipelineTrace is a valid no-op sink, so untraced paths need no checks.
type PipelineTrace struct {
	slots  []traceSlot
	mask   uint64
	maxSeq atomic.Uint64
	// hist[st] is the latency from the nearest earlier stamped stage to
	// st, fed as each stamp lands. hist[StageDecode] never fills (decode
	// has no predecessor).
	hist [NumStages]Hist
}

// NewPipelineTrace builds a trace ring of at least size slots (rounded
// up to a power of two; <= 0 selects DefaultTraceRing).
func NewPipelineTrace(size int) *PipelineTrace {
	if size <= 0 {
		size = DefaultTraceRing
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &PipelineTrace{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// Ring returns the ring capacity (0 on a nil trace).
func (t *PipelineTrace) Ring() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// MaxSeq returns the highest sequence ever claimed.
func (t *PipelineTrace) MaxSeq() uint64 {
	if t == nil {
		return 0
	}
	return t.maxSeq.Load()
}

func (t *PipelineTrace) noteMax(seq uint64) {
	for {
		cur := t.maxSeq.Load()
		if seq <= cur || t.maxSeq.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// stampSlot writes one stage stamp and feeds the stage histogram with
// the delta from the nearest earlier stamped stage.
func (t *PipelineTrace) stampSlot(s *traceSlot, st Stage, now int64) {
	s.stamps[st].Store(now)
	for i := int(st) - 1; i >= 0; i-- {
		if prev := s.stamps[i].Load(); prev > 0 {
			if d := now - prev; d >= 0 {
				t.hist[st].ObserveMicros(d / 1000)
			}
			return
		}
	}
}

// Begin claims seq's ring slot and records its pre-commit stamps: the
// carried decode/gather instants plus the apply instant. The primary
// calls it under the write lock — the same serialization that makes WAL
// order equal apply order makes claims race-free.
func (t *PipelineTrace) Begin(seq uint64, fs FrameStamps, applyNano int64) {
	if t == nil || seq == 0 {
		return
	}
	s := &t.slots[seq&t.mask]
	for i := range s.stamps {
		s.stamps[i].Store(0)
	}
	s.seq.Store(seq)
	t.noteMax(seq)
	if fs.Decode > 0 {
		s.stamps[StageDecode].Store(fs.Decode)
	}
	if fs.Gather > 0 {
		t.stampSlot(s, StageGather, fs.Gather)
	}
	t.stampSlot(s, StageApply, applyNano)
}

// Stamp records stage st for seq at now (trace-clock nanoseconds). A
// slot already recycled by a newer record drops the stamp; a stamp for a
// sequence never Begun (the follower path) claims the slot itself.
func (t *PipelineTrace) Stamp(seq uint64, st Stage, now int64) {
	if t == nil || seq == 0 {
		return
	}
	s := &t.slots[seq&t.mask]
	if cur := s.seq.Load(); cur != seq {
		if cur > seq {
			return
		}
		for i := range s.stamps {
			s.stamps[i].Store(0)
		}
		s.seq.Store(seq)
		t.noteMax(seq)
	}
	t.stampSlot(s, st, now)
}

// Trace returns a consistent copy of seq's stage clock, ok=false when
// the ring no longer (or never) holds it.
func (t *PipelineTrace) Trace(seq uint64) (TraceEntry, bool) {
	if t == nil || seq == 0 {
		return TraceEntry{}, false
	}
	s := &t.slots[seq&t.mask]
	if s.seq.Load() != seq {
		return TraceEntry{}, false
	}
	e := TraceEntry{Seq: seq}
	for i := range s.stamps {
		e.Stamps[i] = s.stamps[i].Load()
	}
	if s.seq.Load() != seq {
		return TraceEntry{}, false // recycled mid-copy
	}
	return e, true
}

// Last returns up to n of the most recent traces, in ascending sequence
// order.
func (t *PipelineTrace) Last(n int) []TraceEntry {
	if t == nil || n <= 0 {
		return nil
	}
	high := t.maxSeq.Load()
	if high == 0 {
		return nil
	}
	low := uint64(1)
	if span := uint64(len(t.slots)); high > span {
		low = high - span + 1
	}
	out := make([]TraceEntry, 0, n)
	for seq := high; seq >= low && len(out) < n; seq-- {
		if e, ok := t.Trace(seq); ok {
			out = append(out, e)
		}
	}
	// Collected newest-first; present oldest-first.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// StageStats summarizes the per-stage transition histograms. Index by
// Stage; stages that never recorded a transition have Count 0.
func (t *PipelineTrace) StageStats() [NumStages]HistStats {
	var out [NumStages]HistStats
	if t == nil {
		return out
	}
	for i := range t.hist {
		out[i] = t.hist[i].Stats()
	}
	return out
}
