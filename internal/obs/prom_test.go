package obs

import (
	"bufio"
	"fmt"
	"math"
	"regexp"
	"strings"
	"testing"
)

// TestWriterCounterGauge pins the exposition shape of the scalar
// families.
func TestWriterCounterGauge(t *testing.T) {
	w := &MetricWriter{}
	w.Counter("ltam_frames_total", "Frames applied.", 42)
	w.Gauge("ltam_conns", "Live connections.", 3, Label{Name: "kind", Value: "ingest"})
	want := "# HELP ltam_frames_total Frames applied.\n" +
		"# TYPE ltam_frames_total counter\n" +
		"ltam_frames_total 42\n" +
		"# HELP ltam_conns Live connections.\n" +
		"# TYPE ltam_conns gauge\n" +
		`ltam_conns{kind="ingest"} 3` + "\n"
	if got := w.buf.String(); got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

// TestWriterEscaping: label values with quotes, backslashes and
// newlines must escape per the format.
func TestWriterEscaping(t *testing.T) {
	w := &MetricWriter{}
	w.Gauge("m", "help with\nnewline", 1, Label{Name: "route", Value: `GET "x\y"` + "\n"})
	got := w.buf.String()
	if !strings.Contains(got, `# HELP m help with\nnewline`) {
		t.Errorf("HELP not escaped: %q", got)
	}
	if !strings.Contains(got, `m{route="GET \"x\\y\"\n"} 1`) {
		t.Errorf("label not escaped: %q", got)
	}
}

// TestWriterSummary: one HistStats becomes three quantile samples plus
// _sum (seconds) and _count.
func TestWriterSummary(t *testing.T) {
	w := &MetricWriter{}
	w.Summary("ltam_lat_seconds", "Latency.", func(sample func(st HistStats, labels ...Label)) {
		sample(HistStats{Count: 10, MeanMicro: 100, P50Micro: 90, P95Micro: 200, P99Micro: 300},
			Label{Name: "stage", Value: "fsync"})
	})
	got := w.buf.String()
	for _, want := range []string{
		"# TYPE ltam_lat_seconds summary",
		`ltam_lat_seconds{stage="fsync",quantile="0.5"} 9e-05`,
		`ltam_lat_seconds{stage="fsync",quantile="0.95"} 0.0002`,
		`ltam_lat_seconds{stage="fsync",quantile="0.99"} 0.0003`,
		`ltam_lat_seconds_sum{stage="fsync"} 0.001`,
		`ltam_lat_seconds_count{stage="fsync"} 10`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

// TestWriterInf: non-finite values render as the format's literals.
func TestWriterInf(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		math.NaN():   "NaN",
		2.5:          "2.5",
	} {
		if got := formatValue(v); got != want {
			t.Errorf("formatValue(%v) = %q, want %q", v, got, want)
		}
	}
}

// TestRegistryOrder: collectors run in registration order (stable
// scrape layout), re-registering replaces in place, Names sorts.
func TestRegistryOrder(t *testing.T) {
	r := NewRegistry()
	r.Register("b", func(w *MetricWriter) { w.Gauge("b_metric", "b", 1) })
	r.Register("a", func(w *MetricWriter) { w.Gauge("a_metric", "a", 2) })
	r.Register("b", func(w *MetricWriter) { w.Gauge("b_metric", "b", 3) })
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if strings.Index(got, "b_metric 3") > strings.Index(got, "a_metric 2") {
		t.Errorf("registration order not preserved:\n%s", got)
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names() = %v", names)
	}
}

// sampleLine matches one exposition sample: name, optional label block,
// value.
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|[+-]Inf|NaN)$`)

// parseExposition validates a scrape against the text format: every
// line must be a comment or a well-formed sample, every sample's family
// must have been declared by a preceding TYPE line. Returns the sample
// count.
func parseExposition(t *testing.T, text string) int {
	t.Helper()
	declared := map[string]bool{}
	samples := 0
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch fields[3] {
			case "counter", "gauge", "summary", "histogram", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			declared[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")
		if !declared[name] && !declared[family] {
			t.Fatalf("sample %q precedes its TYPE declaration", line)
		}
		samples++
	}
	return samples
}

// TestRegistryScrapeParses: a registry exercising every writer shape
// produces a parseable scrape.
func TestRegistryScrapeParses(t *testing.T) {
	r := NewRegistry()
	r.Register("all", func(w *MetricWriter) {
		w.Counter("c_total", "counter", 1)
		w.Gauge("g", "gauge", -2.5)
		w.GaugeVec("gv", "gauge vec", func(sample func(v float64, labels ...Label)) {
			sample(1, Label{Name: "role", Value: "primary"})
			sample(0, Label{Name: "role", Value: `weird"value`})
		})
		w.Summary("s_seconds", "summary", func(sample func(st HistStats, labels ...Label)) {
			sample(HistStats{Count: 3, MeanMicro: 5, P50Micro: 4, P95Micro: 9, P99Micro: 9})
		})
	})
	var sb strings.Builder
	if _, err := r.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if n := parseExposition(t, sb.String()); n != 9 {
		t.Errorf("sample count = %d, want 9:\n%s", n, sb.String())
	}
}

// TestStageNamesDistinct guards the /metrics stage label space: names
// must be distinct and non-empty.
func TestStageNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range StageNames() {
		if n == "" || seen[n] {
			t.Fatalf("bad stage name set: %v", StageNames())
		}
		seen[n] = true
	}
	if fmt.Sprint(Stage(-1)) != "unknown" || fmt.Sprint(NumStages) != "unknown" {
		t.Error("out-of-range stages must print unknown")
	}
}
