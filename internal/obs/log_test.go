package obs

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// logLine pins the output shape: timestamp, padded level, component
// tag, message.
var logLine = regexp.MustCompile(`^\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}\.\d{3}Z (debug|info |warn |error) [a-z-]+: .+\n$`)

func captureLog(t *testing.T) *strings.Builder {
	t.Helper()
	var sb strings.Builder
	SetOutput(&sb)
	old := CurrentLevel()
	t.Cleanup(func() { SetOutput(os.Stderr); SetLevel(old) })
	return &sb
}

func TestLoggerFormatAndLevels(t *testing.T) {
	sb := captureLog(t)
	SetLevel(LevelInfo)
	l := NewLogger("wal")
	l.Debugf("suppressed %d", 1)
	l.Infof("opened %s", "wal.log")
	l.Warnf("slow fsync")
	l.Errorf("poisoned")
	lines := strings.SplitAfter(sb.String(), "\n")
	lines = lines[:len(lines)-1]
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3 (debug suppressed):\n%s", len(lines), sb.String())
	}
	for _, line := range lines {
		if !logLine.MatchString(line) {
			t.Errorf("malformed line: %q", line)
		}
	}
	if !strings.Contains(lines[0], "info  wal: opened wal.log") {
		t.Errorf("line = %q", lines[0])
	}
	SetLevel(LevelError)
	sb.Reset()
	l.Warnf("hidden")
	l.Errorf("shown")
	if got := sb.String(); strings.Contains(got, "hidden") || !strings.Contains(got, "shown") {
		t.Errorf("error-level filter broken: %q", got)
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "WARNING": LevelWarn, " error ": LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel must reject unknown names")
	}
}

func TestFatalfExits(t *testing.T) {
	sb := captureLog(t)
	SetLevel(LevelInfo)
	code := -1
	oldExit := exit
	exit = func(c int) { code = c }
	defer func() { exit = oldExit }()
	NewLogger("main").Fatalf("boom %d", 7)
	if code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
	if !strings.Contains(sb.String(), "error main: boom 7") {
		t.Errorf("fatal line = %q", sb.String())
	}
}
