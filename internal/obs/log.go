// A small leveled, component-tagged logger for the daemons and CLIs:
// chaos-run output is filterable by level, and every line names the
// component that wrote it. One package-level minimum level (the ltamd
// -log-level flag) gates every logger; output defaults to stderr.
package obs

import (
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	default:
		return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
	}
}

var (
	minLevel atomic.Int32 // holds a Level; init sets LevelInfo

	outMu sync.Mutex
	out   io.Writer = os.Stderr

	// exit is swapped by tests so Fatalf is assertable.
	exit = os.Exit
)

func init() { minLevel.Store(int32(LevelInfo)) }

// SetLevel sets the global minimum level.
func SetLevel(l Level) { minLevel.Store(int32(l)) }

// CurrentLevel returns the global minimum level.
func CurrentLevel() Level { return Level(minLevel.Load()) }

// SetOutput redirects all loggers (tests; defaults to stderr).
func SetOutput(w io.Writer) {
	outMu.Lock()
	defer outMu.Unlock()
	out = w
}

// Logger tags every line with a component name. The zero value logs
// untagged; copies share the global level and output.
type Logger struct {
	component string
}

// NewLogger returns a logger tagged with component.
func NewLogger(component string) Logger { return Logger{component: component} }

// write renders one line: RFC3339(ms) level component: message.
func (l Logger) write(lv Level, format string, args ...any) {
	if lv < CurrentLevel() {
		return
	}
	msg := fmt.Sprintf(format, args...)
	ts := time.Now().UTC().Format("2006-01-02T15:04:05.000Z")
	tag := l.component
	if tag != "" {
		tag += ": "
	}
	line := fmt.Sprintf("%s %-5s %s%s\n", ts, lv, tag, msg)
	outMu.Lock()
	_, _ = io.WriteString(out, line)
	outMu.Unlock()
}

// Debugf logs at debug level.
func (l Logger) Debugf(format string, args ...any) { l.write(LevelDebug, format, args...) }

// Infof logs at info level.
func (l Logger) Infof(format string, args ...any) { l.write(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l Logger) Warnf(format string, args ...any) { l.write(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l Logger) Errorf(format string, args ...any) { l.write(LevelError, format, args...) }

// Fatalf logs at error level and exits with status 1.
func (l Logger) Fatalf(format string, args ...any) {
	l.write(LevelError, format, args...)
	exit(1)
}
