package obs

import (
	"sync"
	"testing"
)

// TestTraceBeginStamp: the primary path — Begin under the write lock,
// later stages stamped by seq — yields a monotone stage clock.
func TestTraceBeginStamp(t *testing.T) {
	tr := NewPipelineTrace(64)
	base := Now()
	tr.Begin(1, FrameStamps{Decode: base, Gather: base + 10}, base+20)
	tr.Stamp(1, StageAppend, base+30)
	tr.Stamp(1, StageFsync, base+40)
	tr.Stamp(1, StagePublish, base+41)
	tr.Stamp(1, StageDeliver, base+50)

	e, ok := tr.Trace(1)
	if !ok {
		t.Fatal("trace for seq 1 missing")
	}
	var last int64
	for st := StageDecode; st <= StageDeliver; st++ {
		ns := e.Stamps[st]
		if ns == 0 {
			t.Fatalf("stage %s never stamped", st)
		}
		if ns < last {
			t.Fatalf("stage %s at %d precedes previous stage at %d", st, ns, last)
		}
		last = ns
	}
	if e.Stamps[StageReplicaApply] != 0 || e.Stamps[StageRelayAppend] != 0 {
		t.Error("follower stages stamped on a primary trace")
	}
	if tr.MaxSeq() != 1 {
		t.Errorf("maxSeq = %d", tr.MaxSeq())
	}
}

// TestTraceRecycle: when a newer sequence claims a slot, the old trace
// disappears and late stamps for the old sequence are dropped — never
// written into the new record's clock.
func TestTraceRecycle(t *testing.T) {
	tr := NewPipelineTrace(4) // seqs 1 and 5 share a slot
	tr.Begin(1, FrameStamps{}, Now())
	tr.Begin(5, FrameStamps{}, Now())
	if _, ok := tr.Trace(1); ok {
		t.Fatal("recycled trace still readable")
	}
	tr.Stamp(1, StageFsync, Now()) // late stamp for the evicted record
	e, ok := tr.Trace(5)
	if !ok {
		t.Fatal("trace for seq 5 missing")
	}
	if e.Stamps[StageFsync] != 0 {
		t.Error("late stamp for an evicted sequence landed on its successor")
	}
}

// TestTraceAutoClaim: the follower path has no Begin — the first Stamp
// for an unseen sequence claims the slot itself.
func TestTraceAutoClaim(t *testing.T) {
	tr := NewPipelineTrace(16)
	tr.Stamp(7, StageReplicaApply, Now())
	tr.Stamp(7, StageRelayAppend, Now())
	e, ok := tr.Trace(7)
	if !ok {
		t.Fatal("auto-claimed trace missing")
	}
	if e.Stamps[StageReplicaApply] == 0 || e.Stamps[StageRelayAppend] == 0 {
		t.Errorf("follower stamps = %+v", e.Stamps)
	}
	if e.Stamps[StageRelayAppend] < e.Stamps[StageReplicaApply] {
		t.Error("relay-append precedes replica-apply")
	}
}

// TestTraceLast: ascending order, bounded by n and by what the ring
// still holds.
func TestTraceLast(t *testing.T) {
	tr := NewPipelineTrace(8)
	for seq := uint64(1); seq <= 20; seq++ {
		tr.Begin(seq, FrameStamps{}, Now())
	}
	got := tr.Last(100)
	if len(got) != 8 {
		t.Fatalf("len = %d, want 8 (ring capacity)", len(got))
	}
	for i, e := range got {
		if want := uint64(13 + i); e.Seq != want {
			t.Errorf("entry %d seq = %d, want %d", i, e.Seq, want)
		}
	}
	if got := tr.Last(3); len(got) != 3 || got[2].Seq != 20 {
		t.Errorf("Last(3) = %+v", got)
	}
}

// TestTraceStageStats: each stamp feeds the stage's transition
// histogram with the delta from the nearest earlier stage.
func TestTraceStageStats(t *testing.T) {
	tr := NewPipelineTrace(16)
	base := Now()
	tr.Begin(1, FrameStamps{Decode: base}, base+1_000_000) // 1ms decode→apply
	tr.Stamp(1, StageFsync, base+3_000_000)                // 2ms apply→fsync
	st := tr.StageStats()
	if st[StageApply].Count != 1 || st[StageApply].P50Micro > 1250 || st[StageApply].P50Micro < 1000 {
		t.Errorf("apply stats = %+v", st[StageApply])
	}
	if st[StageFsync].Count != 1 || st[StageFsync].P50Micro < 2000 {
		t.Errorf("fsync stats = %+v", st[StageFsync])
	}
	if st[StageDecode].Count != 0 {
		t.Error("decode has no predecessor and must not record")
	}
}

// TestTraceNil: a nil trace is a valid no-op sink, so untraced paths
// need no checks.
func TestTraceNil(t *testing.T) {
	var tr *PipelineTrace
	tr.Begin(1, FrameStamps{}, Now())
	tr.Stamp(1, StageFsync, Now())
	if _, ok := tr.Trace(1); ok {
		t.Error("nil trace returned a trace")
	}
	if tr.Last(5) != nil || tr.MaxSeq() != 0 || tr.Ring() != 0 {
		t.Error("nil trace not inert")
	}
	_ = tr.StageStats()
}

// TestTraceConcurrent: stampers and readers race freely (CI runs this
// package under -race); every surviving trace must be internally
// consistent (monotone stages).
func TestTraceConcurrent(t *testing.T) {
	tr := NewPipelineTrace(64)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := uint64(1); seq <= 500; seq++ {
				tr.Stamp(seq, StageReplicaApply, Now())
				tr.Stamp(seq, StageRelayAppend, Now())
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			for _, e := range tr.Last(16) {
				a, r := e.Stamps[StageReplicaApply], e.Stamps[StageRelayAppend]
				if a != 0 && r != 0 && r < a {
					t.Error("relay-append precedes replica-apply in a consistent copy")
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
}

// TestTraceStampAllocs: stamping rides the commit and delivery hot
// paths and must be allocation-free.
func TestTraceStampAllocs(t *testing.T) {
	tr := NewPipelineTrace(64)
	tr.Begin(1, FrameStamps{}, Now())
	if n := testing.AllocsPerRun(1000, func() { tr.Stamp(1, StageFsync, Now()) }); n != 0 {
		t.Errorf("Stamp allocates %.1f per op, want 0", n)
	}
	var seq uint64
	if n := testing.AllocsPerRun(1000, func() {
		seq++
		tr.Begin(seq, FrameStamps{Decode: 1, Gather: 2}, Now())
	}); n != 0 {
		t.Errorf("Begin allocates %.1f per op, want 0", n)
	}
}
