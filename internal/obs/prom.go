// Prometheus text exposition (format version 0.0.4), hand-rolled so the
// fleet is scrapeable with zero dependencies. A Registry holds named
// collector functions; each scrape runs them against a MetricWriter that
// enforces the format's family discipline (one HELP/TYPE header per
// family, samples grouped under it) and escapes label values.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ContentTypeProm is the scrape response content type.
const ContentTypeProm = "text/plain; version=0.0.4; charset=utf-8"

// Label is one metric label pair.
type Label struct {
	Name  string
	Value string
}

// MetricWriter accumulates one scrape's families. Collectors declare a
// family (name, help, type) once and then emit its samples; the writer
// renders everything in declaration order.
type MetricWriter struct {
	buf strings.Builder
	err error
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// family emits the HELP/TYPE header for one metric family.
func (w *MetricWriter) family(name, help, typ string) {
	fmt.Fprintf(&w.buf, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// sample emits one sample line.
func (w *MetricWriter) sample(name string, labels []Label, value float64) {
	w.buf.WriteString(name)
	if len(labels) > 0 {
		w.buf.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				w.buf.WriteByte(',')
			}
			fmt.Fprintf(&w.buf, `%s="%s"`, l.Name, escapeLabel(l.Value))
		}
		w.buf.WriteByte('}')
	}
	w.buf.WriteByte(' ')
	w.buf.WriteString(formatValue(value))
	w.buf.WriteByte('\n')
}

// formatValue renders a sample value (exposition floats, +Inf/-Inf/NaN).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	default:
		return strconv.FormatFloat(v, 'g', -1, 64)
	}
}

// Counter emits a single-sample counter family.
func (w *MetricWriter) Counter(name, help string, value float64, labels ...Label) {
	w.family(name, help, "counter")
	w.sample(name, labels, value)
}

// Gauge emits a single-sample gauge family.
func (w *MetricWriter) Gauge(name, help string, value float64, labels ...Label) {
	w.family(name, help, "gauge")
	w.sample(name, labels, value)
}

// GaugeVec emits a gauge family with one sample per label set.
func (w *MetricWriter) GaugeVec(name, help string, emit func(sample func(value float64, labels ...Label))) {
	w.family(name, help, "gauge")
	emit(func(value float64, labels ...Label) { w.sample(name, labels, value) })
}

// CounterVec emits a counter family with one sample per label set.
func (w *MetricWriter) CounterVec(name, help string, emit func(sample func(value float64, labels ...Label))) {
	w.family(name, help, "counter")
	emit(func(value float64, labels ...Label) { w.sample(name, labels, value) })
}

// Summary emits one HistStats as a summary family: the three quantiles
// plus _sum (seconds) and _count, under the shared labels.
func (w *MetricWriter) Summary(name, help string, emit func(sample func(st HistStats, labels ...Label))) {
	w.family(name, help, "summary")
	emit(func(st HistStats, labels ...Label) {
		q := func(quantile string, us int64) {
			ls := make([]Label, 0, len(labels)+1)
			ls = append(ls, labels...)
			ls = append(ls, Label{"quantile", quantile})
			w.sample(name, ls, float64(us)/1e6)
		}
		q("0.5", st.P50Micro)
		q("0.95", st.P95Micro)
		q("0.99", st.P99Micro)
		w.sample(name+"_sum", labels, float64(st.MeanMicro)*float64(st.Count)/1e6)
		w.sample(name+"_count", labels, float64(st.Count))
	})
}

// Registry is a named set of collectors — one per stats struct the
// server adapts. Scrapes run every collector in registration order.
type Registry struct {
	mu    sync.Mutex
	names []string
	by    map[string]func(*MetricWriter)
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{by: make(map[string]func(*MetricWriter))}
}

// Register adds (or replaces) the named collector.
func (r *Registry) Register(name string, collect func(*MetricWriter)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.by[name]; !ok {
		r.names = append(r.names, name)
	}
	r.by[name] = collect
}

// Names returns the registered collector names, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.names...)
	sort.Strings(out)
	return out
}

// WriteTo runs every collector and writes one scrape to w.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	by := make(map[string]func(*MetricWriter), len(r.by))
	for k, v := range r.by {
		by[k] = v
	}
	r.mu.Unlock()
	mw := &MetricWriter{}
	for _, name := range names {
		by[name](mw)
	}
	n, err := io.WriteString(w, mw.buf.String())
	return int64(n), err
}
