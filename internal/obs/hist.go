// Package obs is the observability substrate of the control station: a
// zero-dependency latency histogram (HDR-style log-linear buckets), the
// end-to-end pipeline trace (per-sequence stage clocks over a lock-free
// ring), a Prometheus text-exposition writer, and a small leveled
// logger. Everything here is allocation-free on the record path — the
// instruments ride the hot structs they measure and must never perturb
// them.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Bucket layout: HDR-style log-linear sub-bucketing. Values 0..7 µs get
// exact buckets; every octave [2^o, 2^(o+1)) above that is split into 4
// sub-buckets of width 2^(o-2), so the relative quantile error is
// bounded by ~12.5% at every scale instead of the factor-of-two a pure
// power-of-two layout gives. The top octave (o = 3+histOctaves-1)
// absorbs everything from ~134s up — far beyond any sane latency.
const (
	histExact   = 8  // values 0..7 µs, one bucket each
	histOctaves = 24 // octaves o = 3..26 (8µs .. ~134s), 4 sub-buckets each
	HistBuckets = histExact + 4*histOctaves
)

// histBucket maps a microsecond value to its bucket index.
func histBucket(us uint64) int {
	if us < histExact {
		return int(us)
	}
	o := bits.Len64(us) - 1 // >= 3
	idx := histExact + 4*(o-3) + int((us>>(o-2))&3)
	if idx >= HistBuckets {
		return HistBuckets - 1
	}
	return idx
}

// histUpper is the inclusive upper bound, in microseconds, of bucket idx.
func histUpper(idx int) int64 {
	if idx < histExact {
		return int64(idx)
	}
	k := idx - histExact
	o := uint(3 + k/4)
	sub := int64(k%4) + 1
	return int64(1)<<o + sub<<(o-2) - 1
}

// HistStats is a point-in-time summary of a histogram.
type HistStats struct {
	Count     uint64
	MeanMicro int64
	P50Micro  int64
	P95Micro  int64
	P99Micro  int64
}

// Hist is a concurrent latency histogram. Recording is three atomic adds
// — no lock, no allocation — so it can sit on any hot path. The zero
// value is ready to use.
type Hist struct {
	count    atomic.Uint64
	sumMicro atomic.Uint64
	buckets  [HistBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Hist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.ObserveMicros(int64(d / time.Microsecond))
}

// ObserveMicros records one microsecond value.
func (h *Hist) ObserveMicros(us int64) {
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sumMicro.Add(uint64(us))
	h.buckets[histBucket(uint64(us))].Add(1)
}

// Quantile returns the upper bound, in microseconds, of the bucket
// containing the p-th percentile (p in (0, 1]). Nearest-rank with a
// ceiling: at 10 samples, p99 is the 10th-slowest, not the 9th — a floor
// would hide a single slow outlier exactly on the low-traffic routes
// where it matters.
func (h *Hist) Quantile(p float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := 0; i < HistBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			return histUpper(i)
		}
	}
	return histUpper(HistBuckets - 1)
}

// Stats summarizes the histogram.
func (h *Hist) Stats() HistStats {
	n := h.count.Load()
	st := HistStats{
		Count:    n,
		P50Micro: h.Quantile(0.50),
		P95Micro: h.Quantile(0.95),
		P99Micro: h.Quantile(0.99),
	}
	if n > 0 {
		st.MeanMicro = int64(h.sumMicro.Load() / n)
	}
	return st
}

// Count returns the number of recorded values.
func (h *Hist) Count() uint64 { return h.count.Load() }

// SumMicros returns the sum of recorded values in microseconds.
func (h *Hist) SumMicros() uint64 { return h.sumMicro.Load() }
