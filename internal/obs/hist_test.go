package obs

import (
	"testing"
	"time"
)

// TestHistBucketExact: values below the sub-bucketed range get one
// bucket each, so small latencies report exactly.
func TestHistBucketExact(t *testing.T) {
	for us := uint64(0); us < histExact; us++ {
		if got := histBucket(us); got != int(us) {
			t.Errorf("histBucket(%d) = %d, want %d", us, got, us)
		}
		if got := histUpper(int(us)); got != int64(us) {
			t.Errorf("histUpper(%d) = %d, want %d", us, got, us)
		}
	}
}

// TestHistBucketMonotone sweeps the value range and pins the layout
// invariants: bucket indexes never decrease, every value is <= its
// bucket's upper bound, and the upper bound maps back into the same
// bucket (it really is the bucket's last value).
func TestHistBucketMonotone(t *testing.T) {
	prev := -1
	for us := uint64(0); us < 1<<28; us = us + 1 + us/7 {
		b := histBucket(us)
		if b < prev {
			t.Fatalf("histBucket(%d) = %d went backwards (prev %d)", us, b, prev)
		}
		prev = b
		if b < 0 || b >= HistBuckets {
			t.Fatalf("histBucket(%d) = %d out of range", us, b)
		}
		upper := histUpper(b)
		if b < HistBuckets-1 {
			if int64(us) > upper {
				t.Fatalf("value %d above its bucket %d upper bound %d", us, b, upper)
			}
			if histBucket(uint64(upper)) != b {
				t.Fatalf("upper bound %d of bucket %d maps to bucket %d", upper, b, histBucket(uint64(upper)))
			}
			if histBucket(uint64(upper)+1) != b+1 {
				t.Fatalf("upper+1 (%d) of bucket %d maps to bucket %d, want %d", upper+1, b, histBucket(uint64(upper)+1), b+1)
			}
		}
	}
}

// TestHistQuantileError: for any single recorded value in the
// sub-bucketed range, the reported quantile overshoots by at most 1/4
// of the value's octave base — the HDR guarantee the 4-way sub-split
// buys (a pure power-of-two layout can overshoot by nearly 2x).
func TestHistQuantileError(t *testing.T) {
	for us := int64(histExact); us < 1<<22; us = us*5/4 + 1 {
		var h Hist
		h.ObserveMicros(us)
		got := h.Quantile(0.99)
		if got < us {
			t.Fatalf("quantile(%dµs) = %d undershoots", us, got)
		}
		if float64(got) > float64(us)*1.25 {
			t.Fatalf("quantile(%dµs) = %d overshoots by more than 25%%", us, got)
		}
	}
}

// TestHistClamp: negative and absurd values clamp instead of panicking
// or wrapping.
func TestHistClamp(t *testing.T) {
	var h Hist
	h.Observe(-time.Second)
	h.ObserveMicros(1 << 62)
	if h.Count() != 2 {
		t.Fatalf("count = %d, want 2", h.Count())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("p50 = %d, want 0 (negative clamps to zero bucket)", got)
	}
	if got := h.Quantile(0.99); got != histUpper(HistBuckets-1) {
		t.Errorf("p99 = %d, want top bucket bound %d", got, histUpper(HistBuckets-1))
	}
}

// TestHistStats: count, mean and the quantile ceiling (one sample's p99
// is that sample).
func TestHistStats(t *testing.T) {
	var h Hist
	if st := h.Stats(); st != (HistStats{}) {
		t.Fatalf("empty stats = %+v", st)
	}
	for i := 0; i < 95; i++ {
		h.Observe(10 * time.Microsecond)
	}
	for i := 0; i < 5; i++ {
		h.Observe(100 * time.Millisecond)
	}
	st := h.Stats()
	if st.Count != 100 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.P50Micro > 12 {
		t.Errorf("p50 = %d, want ~10", st.P50Micro)
	}
	// Rank ceil(.95*100)=95 is the last fast sample; ceil(.99*100)=99 is
	// an outlier — the ceiling rule surfaces the tail.
	if st.P95Micro > 12 {
		t.Errorf("p95 = %d, want ~10", st.P95Micro)
	}
	if st.P99Micro < 100000 || float64(st.P99Micro) > 100000*1.25 {
		t.Errorf("p99 = %d, want within 25%% above 100000", st.P99Micro)
	}
	if st.MeanMicro < 5000 || st.MeanMicro > 5020 {
		t.Errorf("mean = %d, want ~5009", st.MeanMicro)
	}
}

// TestHistObserveAllocs: recording must be allocation-free — it rides
// the ingest and commit hot paths.
func TestHistObserveAllocs(t *testing.T) {
	var h Hist
	if n := testing.AllocsPerRun(1000, func() { h.Observe(42 * time.Microsecond) }); n != 0 {
		t.Errorf("Observe allocates %.1f per op, want 0", n)
	}
}
