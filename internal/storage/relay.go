// Relay log: the follower-side frame log that turns a replica into a
// distribution-tree node. A follower has no WAL of its own — its only
// mutation path is the primary's shipped frame stream — so to re-serve
// GET /v1/replication/wal and the committed-event feed to a downstream
// tier it persists each applied record's frame into a RelayLog, in the
// exact on-disk layout the WAL uses (Frame). Downstream consumers then
// tail the relay file with the ordinary Tailer, and every
// read-then-validate protocol built for the WAL works unchanged: Reset
// truncates in place (reusing the inode, so open tailers observe
// ErrWALReset), and Info publishes base/total under the same lock the
// truncation holds.
//
// The relay is a CACHE of the upstream durable log, not a durability
// root: appends are not fsynced, and on process restart the follower
// re-bootstraps from upstream anyway, starting a fresh relay at its new
// applied sequence. Loss of the file costs downstream consumers a
// re-bootstrap (410), never data.
package storage

import (
	"fmt"
	"os"
	"sync"
)

// DefaultRelayMaxBytes bounds the relay file before it self-compacts
// (Reset to the current applied sequence). Downstream followers behind
// the compaction get ErrSeqGap/410 and re-bootstrap from this node —
// the same self-heal path a primary compaction triggers.
const DefaultRelayMaxBytes = 256 << 20

// RelayLog is an append-only frame log positioned in the global
// replication sequence space. Safe for concurrent use; readers open
// their own Tailer on Path().
type RelayLog struct {
	mu   sync.Mutex
	f    *os.File
	path string
	// base is the global sequence of the file's first frame; count the
	// frames currently in it. Info publishes base+count as the total —
	// the downstream durable frontier.
	base  uint64
	count uint64
	size  int64
	// maxBytes triggers self-compaction; err latches the first write
	// failure (a broken relay stops serving downstream, it does not
	// fail replication itself).
	maxBytes int64
	err      error
}

// OpenRelay creates (or truncates) the relay file at path, positioned
// at global sequence base. maxBytes <= 0 selects DefaultRelayMaxBytes.
func OpenRelay(path string, base uint64, maxBytes int64) (*RelayLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open relay: %w", err)
	}
	if maxBytes <= 0 {
		maxBytes = DefaultRelayMaxBytes
	}
	return &RelayLog{f: f, path: path, base: base, maxBytes: maxBytes}, nil
}

// Path returns the relay file's path — what downstream tailers open.
func (r *RelayLog) Path() string { return r.path }

// Info reports the relay's coordinates: base (the compaction horizon —
// records below it require a bootstrap from this node) and total (the
// frontier: base + frames in the file). Published under the same lock
// Reset holds, so an unchanged base observed after a batch of reads
// proves no truncation raced them — the WAL's read-then-validate
// contract, verbatim.
func (r *RelayLog) Info() (base, total uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base, r.base + r.count
}

// Err returns the latched write failure, if any.
func (r *RelayLog) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Append writes one record body as a frame at the next sequence. When
// the file would exceed maxBytes it first self-compacts: truncate in
// place and advance base past every frame written so far (their effects
// are inside this node's state, which is what a downstream bootstrap
// captures). Append failures latch into Err and poison the relay.
func (r *RelayLog) Append(body []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return r.err
	}
	fr := Frame(body)
	if r.size+int64(len(fr)) > r.maxBytes && r.count > 0 {
		if err := r.resetLocked(r.base + r.count); err != nil {
			return err
		}
	}
	if _, err := r.f.Write(fr); err != nil {
		r.err = fmt.Errorf("storage: relay append: %w", err)
		return r.err
	}
	r.count++
	r.size += int64(len(fr))
	return nil
}

// Reset truncates the relay in place and repositions it at global
// sequence base — the follower re-bootstrapped (or self-compacted), so
// the file restarts empty at the new applied position. The inode is
// reused: open tailers see the shrink as ErrWALReset and re-resolve.
func (r *RelayLog) Reset(base uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.resetLocked(base)
}

func (r *RelayLog) resetLocked(base uint64) error {
	if r.err != nil {
		return r.err
	}
	if err := r.f.Truncate(0); err != nil {
		r.err = fmt.Errorf("storage: relay reset: %w", err)
		return r.err
	}
	if _, err := r.f.Seek(0, 0); err != nil {
		r.err = fmt.Errorf("storage: relay reset: %w", err)
		return r.err
	}
	r.base = base
	r.count = 0
	r.size = 0
	return nil
}

// Close releases the file. The relay refuses further appends.
func (r *RelayLog) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err == nil {
		r.err = fmt.Errorf("storage: relay closed")
	}
	return r.f.Close()
}
