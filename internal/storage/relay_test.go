package storage

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
)

// TestRelayAppendTailRoundTrip: appended bodies come back verbatim
// through an ordinary Tailer — the relay file IS a WAL-layout frame log.
func TestRelayAppendTailRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relay.log")
	rl, err := OpenRelay(path, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	var bodies [][]byte
	for i := 0; i < 5; i++ {
		bodies = append(bodies, []byte(fmt.Sprintf(`{"seq": %d}`, 11+i)))
		if err := rl.Append(bodies[i]); err != nil {
			t.Fatal(err)
		}
	}
	if base, total := rl.Info(); base != 10 || total != 15 {
		t.Fatalf("Info = (%d, %d), want (10, 15)", base, total)
	}

	tl, err := OpenTailer(rl.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	for i, want := range bodies {
		got, err := tl.NextBody()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if string(got) != string(want) {
			t.Fatalf("frame %d = %q, want %q", i, got, want)
		}
	}
	if _, err := tl.NextBody(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("past the frontier: %v, want ErrNoRecord", err)
	}
}

// TestRelayResetReusesInode: Reset truncates in place, so an open
// downstream tailer observes ErrWALReset (not a silent re-read of new
// frames under old sequence numbers).
func TestRelayResetReusesInode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relay.log")
	rl, err := OpenRelay(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()
	for i := 0; i < 3; i++ {
		if err := rl.Append([]byte("abc")); err != nil {
			t.Fatal(err)
		}
	}
	tl, err := OpenTailer(rl.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if _, err := tl.NextBody(); err != nil {
		t.Fatal(err)
	}

	if err := rl.Reset(7); err != nil {
		t.Fatal(err)
	}
	if base, total := rl.Info(); base != 7 || total != 7 {
		t.Fatalf("Info after reset = (%d, %d), want (7, 7)", base, total)
	}
	// A poll that observes the shrink reports ErrWALReset. (If the file
	// regrows past the old offset before the next poll the shrink itself
	// is invisible — that window is why every consumer re-validates
	// Info's base after its reads, per the read-then-validate contract.)
	if _, err := tl.NextBody(); !errors.Is(err, ErrWALReset) {
		t.Fatalf("tailer across reset: %v, want ErrWALReset", err)
	}
}

// TestRelaySelfCompacts: an append that would exceed maxBytes first
// truncates the file and advances base past everything written — the
// bounded-cache behavior that keeps a long-lived cascading follower's
// disk use flat.
func TestRelaySelfCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relay.log")
	body := []byte("0123456789")
	frameLen := int64(len(Frame(body)))
	rl, err := OpenRelay(path, 0, 3*frameLen)
	if err != nil {
		t.Fatal(err)
	}
	defer rl.Close()

	for i := 0; i < 3; i++ {
		if err := rl.Append(body); err != nil {
			t.Fatal(err)
		}
	}
	if base, total := rl.Info(); base != 0 || total != 3 {
		t.Fatalf("Info before compaction = (%d, %d), want (0, 3)", base, total)
	}
	// The fourth frame does not fit: the relay compacts to base 3 first.
	if err := rl.Append(body); err != nil {
		t.Fatal(err)
	}
	if base, total := rl.Info(); base != 3 || total != 4 {
		t.Fatalf("Info after compaction = (%d, %d), want (3, 4)", base, total)
	}

	// The file now holds exactly one frame.
	tl, err := OpenTailer(rl.Path())
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	if _, err := tl.NextBody(); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.NextBody(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("second frame after compaction: %v, want ErrNoRecord", err)
	}
}

// TestRelayLatchesWriteFailure: after Close (or any write failure) every
// further operation reports the latched error — a broken relay stops
// serving downstream, it does not limp along with gaps.
func TestRelayLatchesWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "relay.log")
	rl, err := OpenRelay(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := rl.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := rl.Close(); err != nil {
		t.Fatal(err)
	}
	if rl.Err() == nil {
		t.Fatal("closed relay reports no error")
	}
	if err := rl.Append([]byte("y")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := rl.Reset(5); err == nil {
		t.Fatal("reset after close succeeded")
	}
	// The coordinates stay frozen at the pre-failure frontier.
	if base, total := rl.Info(); base != 0 || total != 1 {
		t.Fatalf("Info after close = (%d, %d), want (0, 1)", base, total)
	}
}
