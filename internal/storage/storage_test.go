package storage

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func rec(t *testing.T, typ string, v any) Record {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return Record{Type: typ, Data: data}
}

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := w.Append(rec(t, "test", i)); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 10 {
		t.Errorf("len = %d", w.Len())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []int
	n, err := Replay(path, func(r Record) error {
		if r.Type != "test" {
			t.Errorf("type = %q", r.Type)
		}
		var v int
		if err := json.Unmarshal(r.Data, &v); err != nil {
			return err
		}
		got = append(got, v)
		return nil
	})
	if err != nil || n != 10 {
		t.Fatalf("replayed %d, %v", n, err)
	}
	for i, v := range got {
		if v != i {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
}

func TestWALReopenContinues(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _ := OpenWAL(path, 1)
	_ = w.Append(rec(t, "a", 1))
	_ = w.Close()
	w, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Errorf("recovered len = %d", w.Len())
	}
	_ = w.Append(rec(t, "a", 2))
	_ = w.Close()
	n, _ := Replay(path, func(Record) error { return nil })
	if n != 2 {
		t.Errorf("total = %d", n)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _ := OpenWAL(path, 1)
	_ = w.Append(rec(t, "a", 1))
	_ = w.Append(rec(t, "a", 2))
	_ = w.Close()
	// Simulate a crash mid-append: chop the last 3 bytes.
	data, _ := os.ReadFile(path)
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Replay sees only the intact record.
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("replay after tear: %d, %v", n, err)
	}
	// Reopen truncates the tear and appends cleanly after it.
	w, err = OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 {
		t.Errorf("len after tear = %d", w.Len())
	}
	_ = w.Append(rec(t, "a", 3))
	_ = w.Close()
	var vals []int
	_, _ = Replay(path, func(r Record) error {
		var v int
		_ = json.Unmarshal(r.Data, &v)
		vals = append(vals, v)
		return nil
	})
	if len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Errorf("vals = %v", vals)
	}
}

func TestWALGarbageTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _ := OpenWAL(path, 1)
	_ = w.Append(rec(t, "a", 1))
	_ = w.Close()
	// Append garbage bytes (e.g. a corrupt header with a huge length).
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	_, _ = f.Write([]byte{0xff, 0xff, 0xff, 0x7f, 1, 2, 3, 4, 9, 9})
	_ = f.Close()
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("replay = %d, %v", n, err)
	}
	w, err = OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Len() != 1 {
		t.Errorf("len = %d", w.Len())
	}
}

func TestWALCorruptChecksumStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _ := OpenWAL(path, 1)
	_ = w.Append(rec(t, "a", 1))
	_ = w.Append(rec(t, "a", 2))
	_ = w.Close()
	// Flip a byte inside the FIRST record's body.
	data, _ := os.ReadFile(path)
	data[10] ^= 0xff
	_ = os.WriteFile(path, data, 0o644)
	n, err := Replay(path, func(Record) error { return nil })
	if err != nil {
		t.Fatalf("replay err = %v", err)
	}
	if n != 0 {
		t.Errorf("replayed %d records past corruption", n)
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _ := OpenWAL(path, 1)
	_ = w.Append(rec(t, "a", 1))
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Len() != 0 {
		t.Errorf("len = %d", w.Len())
	}
	_ = w.Append(rec(t, "a", 2))
	_ = w.Close()
	var vals []int
	_, _ = Replay(path, func(r Record) error {
		var v int
		_ = json.Unmarshal(r.Data, &v)
		vals = append(vals, v)
		return nil
	})
	if len(vals) != 1 || vals[0] != 2 {
		t.Errorf("vals = %v", vals)
	}
}

func TestWALBatchedSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	w, _ := OpenWAL(path, 100) // batch
	for i := 0; i < 5; i++ {
		_ = w.Append(rec(t, "a", i))
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	_ = w.Close()
	n, _ := Replay(path, func(Record) error { return nil })
	if n != 5 {
		t.Errorf("n = %d", n)
	}
}

func TestReplayMissingFile(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nope"), func(Record) error { return nil })
	if err != nil || n != 0 {
		t.Errorf("missing file: %d, %v", n, err)
	}
}

func TestSnapshotSaveLatest(t *testing.T) {
	dir := t.TempDir()
	ss, err := NewSnapshotStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	type state struct{ X int }
	var got state
	if _, ok, _ := ss.Latest(&got); ok {
		t.Error("empty store should have no snapshot")
	}
	if err := ss.Save(5, state{X: 42}, 3); err != nil {
		t.Fatal(err)
	}
	if err := ss.Save(9, state{X: 99}, 3); err != nil {
		t.Fatal(err)
	}
	seq, ok, err := ss.Latest(&got)
	if err != nil || !ok || seq != 9 || got.X != 99 {
		t.Errorf("latest = %d %v %v %+v", seq, ok, err, got)
	}
}

func TestSnapshotPruning(t *testing.T) {
	dir := t.TempDir()
	ss, _ := NewSnapshotStore(dir)
	type state struct{ X int }
	for i := 1; i <= 5; i++ {
		_ = ss.Save(uint64(i), state{X: i}, 2)
	}
	ents, _ := os.ReadDir(dir)
	count := 0
	for _, e := range ents {
		if e.Name() != "snap.tmp" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("kept %d snapshots, want 2", count)
	}
	var got state
	seq, ok, _ := ss.Latest(&got)
	if !ok || seq != 5 || got.X != 5 {
		t.Errorf("latest after prune = %d %v", seq, got)
	}
}

func TestSnapshotIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	ss, _ := NewSnapshotStore(dir)
	_ = os.WriteFile(filepath.Join(dir, "README"), []byte("hi"), 0o644)
	_ = os.WriteFile(filepath.Join(dir, "snap-zzz.json"), []byte("{}"), 0o644)
	type state struct{ X int }
	_ = ss.Save(3, state{X: 7}, 2)
	var got state
	seq, ok, err := ss.Latest(&got)
	if err != nil || !ok || seq != 3 || got.X != 7 {
		t.Errorf("latest = %d %v %v", seq, ok, err)
	}
}

func TestSnapshotCorruptLatest(t *testing.T) {
	dir := t.TempDir()
	ss, _ := NewSnapshotStore(dir)
	_ = os.WriteFile(filepath.Join(dir, "snap-0000000000000001.json"), []byte("{corrupt"), 0o644)
	var v struct{}
	if _, _, err := ss.Latest(&v); err == nil {
		t.Error("corrupt snapshot should error")
	}
}
