package storage

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// mkRecords builds n distinct records.
func mkRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		data, _ := json.Marshal(map[string]int{"i": i})
		recs[i] = Record{Type: fmt.Sprintf("t%d", i), Data: data}
	}
	return recs
}

// walBytes appends recs to a fresh WAL and returns the file's raw bytes
// plus each frame's end offset.
func walBytes(t *testing.T, recs []Record) ([]byte, []int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	var ends []int64
	for _, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		ends = append(ends, fi.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, ends
}

// TestTailerFollowsLiveLog: records appended after the tailer attached
// are observed in order, and a drained tailer reports ErrNoRecord with a
// clean (non-partial) state.
func TestTailerFollowsLiveLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	tl, err := OpenTailer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	if _, err := tl.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("empty log: err = %v, want ErrNoRecord", err)
	}
	recs := mkRecords(20)
	for i, rec := range recs {
		if err := w.Append(rec); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		got, err := tl.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Type != rec.Type {
			t.Fatalf("record %d: type %q, want %q", i, got.Type, rec.Type)
		}
		if tl.Seq() != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, tl.Seq())
		}
	}
	if _, err := tl.Next(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("drained log: err = %v, want ErrNoRecord", err)
	}
	if st := tl.State(); st.Partial || st.NextSeq != 20 {
		t.Fatalf("drained state = %+v", st)
	}
}

// TestTailerTornTailEveryByte cuts a finished log at every byte offset:
// the tailer must yield exactly the complete frames before the cut,
// report the partial frame's start offset, and — once the remaining
// bytes are appended — resume at that offset and deliver every remaining
// record exactly once. This is the frame-level crash-resume guarantee
// the replica apply loop builds on.
func TestTailerTornTailEveryByte(t *testing.T) {
	recs := mkRecords(8)
	data, ends := walBytes(t, recs)

	frameAt := func(off int64) int {
		// number of complete frames within [0, off)
		n := 0
		for _, e := range ends {
			if e <= off {
				n++
			}
		}
		return n
	}
	frameStart := func(i int) int64 {
		if i == 0 {
			return 0
		}
		return ends[i-1]
	}

	for cut := int64(0); cut <= int64(len(data)); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		tl, err := OpenTailer(path)
		if err != nil {
			t.Fatal(err)
		}
		wantComplete := frameAt(cut)
		for i := 0; i < wantComplete; i++ {
			got, err := tl.Next()
			if err != nil {
				t.Fatalf("cut %d: record %d: %v", cut, i, err)
			}
			if got.Type != recs[i].Type {
				t.Fatalf("cut %d: record %d type %q, want %q", cut, i, got.Type, recs[i].Type)
			}
		}
		if _, err := tl.Next(); !errors.Is(err, ErrNoRecord) {
			t.Fatalf("cut %d: err = %v, want ErrNoRecord", cut, err)
		}
		st := tl.State()
		if st.Offset != frameStart(wantComplete) {
			t.Fatalf("cut %d: offset %d, want %d", cut, st.Offset, frameStart(wantComplete))
		}
		wantPartial := cut > frameStart(wantComplete)
		if st.Partial != wantPartial || st.PartialBytes != cut-frameStart(wantComplete) {
			t.Fatalf("cut %d: state %+v, want partial=%v bytes=%d",
				cut, st, wantPartial, cut-frameStart(wantComplete))
		}

		// The writer finishes: the same tailer re-reads the once-torn
		// offset and sees the rest exactly once.
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data[cut:]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		for i := wantComplete; i < len(recs); i++ {
			got, err := tl.Next()
			if err != nil {
				t.Fatalf("cut %d: resumed record %d: %v", cut, i, err)
			}
			if got.Type != recs[i].Type {
				t.Fatalf("cut %d: resumed record %d type %q, want %q", cut, i, got.Type, recs[i].Type)
			}
		}
		if _, err := tl.Next(); !errors.Is(err, ErrNoRecord) {
			t.Fatalf("cut %d: after resume err = %v, want ErrNoRecord", cut, err)
		}
		tl.Close()
	}
}

// TestTailerSkipResumesAtSeq: Skip seeks a fresh tailer to an arbitrary
// resume sequence, stopping early (without error) at the tail.
func TestTailerSkipResumesAtSeq(t *testing.T) {
	recs := mkRecords(10)
	data, _ := walBytes(t, recs)
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for resume := uint64(0); resume <= 10; resume++ {
		tl, err := OpenTailer(path)
		if err != nil {
			t.Fatal(err)
		}
		n, err := tl.Skip(resume)
		if err != nil || n != resume {
			t.Fatalf("skip(%d) = %d, %v", resume, n, err)
		}
		for i := int(resume); i < len(recs); i++ {
			got, err := tl.Next()
			if err != nil || got.Type != recs[i].Type {
				t.Fatalf("resume %d: record %d = %v, %v", resume, i, got.Type, err)
			}
		}
		// Skipping past the end stops early with a nil error.
		if n, err := tl.Skip(5); err != nil || n != 0 {
			t.Fatalf("skip past end = %d, %v", n, err)
		}
		tl.Close()
	}
}

// TestTailerDetectsReset: truncating the file below the tailer's
// position (snapshot compaction) surfaces ErrWALReset, not a silent
// re-read of unrelated frames.
func TestTailerDetectsReset(t *testing.T) {
	recs := mkRecords(4)
	data, _ := walBytes(t, recs)
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	for i := 0; i < len(recs); i++ {
		if _, err := tl.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Truncate(path, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := tl.Next(); !errors.Is(err, ErrWALReset) {
		t.Fatalf("after truncate: err = %v, want ErrWALReset", err)
	}
}

// TestReplayTailReportsPartialFrame is the regression test for the
// latent gap: Replay used to swallow a trailing partial frame without
// reporting where it starts, so a tailer could not re-read it once the
// writer finished. ReplayTail must report the exact byte offset and
// size of the torn tail (and none when the log ends cleanly).
func TestReplayTailReportsPartialFrame(t *testing.T) {
	recs := mkRecords(3)
	data, ends := walBytes(t, recs)

	// Clean end: no partial tail.
	dir := t.TempDir()
	clean := filepath.Join(dir, "clean.log")
	if err := os.WriteFile(clean, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ReplayTail(clean, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Partial || st.NextSeq != 3 || st.Offset != int64(len(data)) {
		t.Fatalf("clean log state = %+v", st)
	}

	// Torn mid-last-frame: partial reported with the frame's offset.
	cut := ends[1] + (ends[2]-ends[1])/2
	torn := filepath.Join(dir, "torn.log")
	if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	var n int
	st, err = ReplayTail(torn, func(Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || st.NextSeq != 2 {
		t.Fatalf("replayed %d records (state %+v), want 2", n, st)
	}
	if !st.Partial || st.Offset != ends[1] || st.PartialBytes != cut-ends[1] {
		t.Fatalf("torn log state = %+v, want partial at %d (%d bytes)", st, ends[1], cut-ends[1])
	}

	// The legacy Replay signature still reports the same record count.
	if got, err := Replay(torn, func(Record) error { return nil }); err != nil || got != 2 {
		t.Fatalf("Replay = %d, %v", got, err)
	}
}

// TestFrameRoundTrips: the exported Frame helper produces exactly the
// on-disk layout the tailer consumes.
func TestFrameRoundTrips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	rec := Record{Type: "x", Data: json.RawMessage(`{"a":1}`)}
	body, err := encodeFrame(rec)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, Frame(body), 0o644); err != nil {
		t.Fatal(err)
	}
	tl, err := OpenTailer(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	got, err := tl.Next()
	if err != nil || got.Type != "x" {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
}

// TestDurableLenTracksFsyncBoundary: DurableLen (the replication
// stream's upper bound) counts only fsynced records, so a relaxed sync
// cadence keeps unsynced appends out of the shipped history.
func TestDurableLenTracksFsyncBoundary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, err := OpenWAL(path, 3) // fsync every 3 appends
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	recs := mkRecords(5)
	for i := 0; i < 2; i++ {
		if err := w.Append(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.DurableLen(); got != 0 {
		t.Fatalf("DurableLen after 2 unsynced appends = %d, want 0", got)
	}
	if err := w.Append(recs[2]); err != nil { // third append triggers fsync
		t.Fatal(err)
	}
	if got := w.DurableLen(); got != 3 {
		t.Fatalf("DurableLen after sync cadence hit = %d, want 3", got)
	}
	if err := w.Append(recs[3]); err != nil {
		t.Fatal(err)
	}
	if got, n := w.DurableLen(), w.Len(); got != 3 || n != 4 {
		t.Fatalf("DurableLen = %d (Len %d), want 3 (4)", got, n)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := w.DurableLen(); got != 4 {
		t.Fatalf("DurableLen after explicit Sync = %d, want 4", got)
	}
}
