package storage

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestPropCrashAtEveryByte simulates a crash after every possible byte of
// a small log: for each truncation point, recovery must succeed and yield
// exactly the longest prefix of whole records — never an error, never a
// phantom record, and the reopened log must accept new appends.
func TestPropCrashAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full")
	w, err := OpenWAL(full, 1)
	if err != nil {
		t.Fatal(err)
	}
	const records = 6
	var offsets []int64 // byte size after each record
	for i := 0; i < records; i++ {
		if err := w.Append(rec(t, "r", i)); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
		fi, err := os.Stat(full)
		if err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, fi.Size())
	}
	_ = w.Close()
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	wholeRecordsAt := func(size int64) uint64 {
		var n uint64
		for _, off := range offsets {
			if off <= size {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		want := wholeRecordsAt(int64(cut))

		var got []int
		n, err := Replay(path, func(r Record) error {
			var v int
			if err := json.Unmarshal(r.Data, &v); err != nil {
				return err
			}
			got = append(got, v)
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: replay error: %v", cut, err)
		}
		if n != want {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, n, want)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("cut=%d: record %d = %d (not a prefix)", cut, i, v)
			}
		}

		// Reopen, append, and verify the log is healthy.
		w2, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if w2.Len() != want {
			t.Fatalf("cut=%d: reopened len %d, want %d", cut, w2.Len(), want)
		}
		if err := w2.Append(rec(t, "r", 999)); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		n2, err := Replay(path, func(Record) error { return nil })
		if err != nil || n2 != want+1 {
			t.Fatalf("cut=%d: after append replay = %d, %v", cut, n2, err)
		}
	}
}

// TestPropRandomCorruption flips random bytes mid-log: recovery must stop
// at or before the corruption, never panic, and never return an error for
// framing damage.
func TestPropRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	dir := t.TempDir()
	base := filepath.Join(dir, "base")
	w, _ := OpenWAL(base, 1)
	for i := 0; i < 20; i++ {
		_ = w.Append(rec(t, "r", i))
	}
	_ = w.Close()
	data, _ := os.ReadFile(base)

	for trial := 0; trial < 300; trial++ {
		corrupted := append([]byte(nil), data...)
		pos := rng.Intn(len(corrupted))
		corrupted[pos] ^= byte(1 + rng.Intn(255))
		path := filepath.Join(dir, "c")
		if err := os.WriteFile(path, corrupted, 0o644); err != nil {
			t.Fatal(err)
		}
		var prev = -1
		n, err := Replay(path, func(r Record) error {
			var v int
			if err := json.Unmarshal(r.Data, &v); err != nil {
				return err
			}
			if v != prev+1 {
				t.Fatalf("trial %d: out-of-order record %d after %d", trial, v, prev)
			}
			prev = v
			return nil
		})
		// A flipped byte inside JSON that still checksums is impossible
		// (CRC covers the body), so the only acceptable outcome is a
		// clean stop.
		if err != nil {
			t.Fatalf("trial %d: replay error %v", trial, err)
		}
		if n > 20 {
			t.Fatalf("trial %d: phantom records: %d", trial, n)
		}
	}
}
