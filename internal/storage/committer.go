// Group commit: an asynchronous committer that turns many small WAL
// appends into few large fsyncs.
//
// Callers enqueue records with Commit and receive a barrier channel that
// delivers exactly one error (nil on success) once their records are
// durably on disk. A dedicated committer goroutine drains the queue,
// writes everything it collected as one AppendGroup — one frame sequence,
// one fsync — and then releases every waiter of the batch.
//
// Batching arises naturally from concurrency: while one fsync is in
// flight, new Commit calls pile up in the queue and are absorbed by the
// next batch. MaxDelay therefore defaults to zero (no artificial latency,
// the same stance as PostgreSQL's commit_delay=0); setting it positive
// makes the committer linger for stragglers when an ingest-heavy
// deployment prefers bigger batches over lowest latency. MaxBatch bounds
// how many records a single fsync may cover.
package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrCommitterClosed is returned to Commit calls issued after Close.
var ErrCommitterClosed = errors.New("storage: committer closed")

// ErrWALPoisoned is delivered to every commit barrier after a write or
// fsync failure has poisoned the committer. The failed batch itself gets
// the underlying error; everything after it gets this. The poisoning is
// permanent for the life of the committer: a failed fsync means the
// kernel may have dropped dirty pages while clearing the error state, so
// retrying the sync and seeing it "succeed" proves nothing about the
// earlier write (the fsyncgate lesson). The only safe recovery is to
// stop, scan the log from disk, and start over from what actually
// survived.
var ErrWALPoisoned = errors.New("storage: WAL poisoned by failed write or fsync")

// Committer defaults.
const (
	DefaultMaxBatch = 1024
	DefaultQueueLen = 4096
)

// CommitterConfig tunes a Committer. The zero value selects the defaults.
type CommitterConfig struct {
	// MaxBatch caps the records covered by one fsync (<= 0 selects
	// DefaultMaxBatch).
	MaxBatch int
	// MaxDelay is how long the committer lingers for more records once it
	// holds a non-full batch. Zero (the default) commits as soon as the
	// queue is drained — batching then comes only from arrivals during
	// the previous fsync, which keeps solo-writer latency at one fsync.
	MaxDelay time.Duration
	// QueueLen is the enqueue buffer in groups (<= 0 selects
	// DefaultQueueLen). A full queue applies backpressure to Commit.
	QueueLen int
	// AckOnEnqueue is the relaxed-durability mode: Commit's barrier is
	// released as soon as the records are accepted into the queue, not
	// after their fsync. The records still reach the WAL in enqueue
	// order on the committer goroutine, so a crash loses at most the
	// queued-but-unsynced suffix — what survives is always a prefix of
	// the acknowledged records, never a reordering. The loss window is
	// bounded by QueueLen groups plus one in-flight batch. Flush (and
	// therefore Close) remains fully durable: its barrier is released
	// only after the fsync covering everything enqueued before it.
	// Background fsync failures are counted in Stats().SyncFailures and
	// retained in Err.
	AckOnEnqueue bool
	// Trace, when set, receives the append/fsync/publish stage stamps
	// for every record carrying a traced sequence (Record.Obs.Seq).
	Trace *obs.PipelineTrace
}

// group is one Commit call: its records plus its commit barrier. A
// flush group is an empty sentinel that must commit immediately rather
// than linger for stragglers — Flush callers (e.g. a snapshot holding
// the System write lock) are often the reason no straggler can arrive.
type group struct {
	recs  []Record
	done  chan error
	flush bool
}

// CommitterStats is a point-in-time snapshot of batching effectiveness.
type CommitterStats struct {
	// Batches is the number of fsync batches written; Records the total
	// records they covered. Records/Batches is the mean batch size — the
	// fsync amortization factor.
	Batches uint64 `json:"batches"`
	Records uint64 `json:"records"`
	// Relaxed reports whether AckOnEnqueue is on; SyncFailures counts
	// batches whose background write failed — in relaxed mode those
	// records were acknowledged but are not durable, so a non-zero count
	// demands operator attention (see Err for the most recent failure).
	Relaxed      bool   `json:"relaxed,omitempty"`
	SyncFailures uint64 `json:"sync_failures,omitempty"`
	// Poisoned reports that a write or fsync failed and the committer has
	// permanently stopped writing (see ErrWALPoisoned).
	Poisoned bool `json:"poisoned,omitempty"`
}

// Committer is the asynchronous group-commit front of a WAL. It is safe
// for concurrent use. Close drains the queue before returning.
type Committer struct {
	wal          *WAL
	maxBatch     int
	maxDelay     time.Duration
	ackOnEnqueue bool
	trace        *obs.PipelineTrace

	ch     chan group
	loopWG sync.WaitGroup

	closeMu   sync.RWMutex
	closed    bool
	closeOnce sync.Once

	batches  atomic.Uint64
	records  atomic.Uint64
	syncErrs atomic.Uint64
	lastErr  atomic.Pointer[error]
}

// NewCommitter starts the committer goroutine over w.
func NewCommitter(w *WAL, cfg CommitterConfig) *Committer {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	c := &Committer{
		wal:          w,
		maxBatch:     cfg.MaxBatch,
		maxDelay:     cfg.MaxDelay,
		ackOnEnqueue: cfg.AckOnEnqueue,
		trace:        cfg.Trace,
		ch:           make(chan group, cfg.QueueLen),
	}
	c.loopWG.Add(1)
	go c.run()
	return c
}

// Commit enqueues recs for the next batch and returns the commit barrier:
// the channel delivers one error once the records are durably written
// (nil) or the batch failed. With AckOnEnqueue the barrier is released
// as soon as the records are queued — durability follows asynchronously
// in enqueue order. An empty recs commits immediately. After Close, the
// barrier delivers ErrCommitterClosed.
//
// Callers that need WAL order to equal apply order must serialise their
// Commit calls themselves (core.System enqueues under its write lock).
func (c *Committer) Commit(recs ...Record) <-chan error {
	done := make(chan error, 1)
	if len(recs) == 0 {
		done <- nil
		return done
	}
	if c.ackOnEnqueue {
		// The group carries no barrier; the committer reports its write
		// outcome through the failure counters instead.
		done <- c.enqueue(group{recs: recs})
		return done
	}
	c.enqueue(group{recs: recs, done: done})
	return done
}

// Flush blocks until every group enqueued before the call is committed.
// It never waits out MaxDelay: the sentinel forces the in-flight batch
// to commit as soon as it is collected.
func (c *Committer) Flush() error {
	done := make(chan error, 1)
	c.enqueue(group{done: done, flush: true}) // empty sentinel rides the FIFO
	return <-done
}

// enqueue queues g, reporting ErrCommitterClosed (to the caller and, when
// present, the group's barrier) after Close.
func (c *Committer) enqueue(g group) error {
	c.closeMu.RLock()
	if c.closed {
		c.closeMu.RUnlock()
		if g.done != nil {
			g.done <- ErrCommitterClosed
		}
		return ErrCommitterClosed
	}
	c.ch <- g
	c.closeMu.RUnlock()
	return nil
}

// Close stops accepting new commits, drains and commits everything
// already enqueued, and waits for the committer goroutine to exit. It is
// idempotent. It does not close the underlying WAL. It returns the
// latched background write error, if any — in relaxed mode the one
// channel through which an acknowledged-but-lost write can still reach
// the caller at shutdown, and in durable mode the poison that already
// failed every barrier since.
func (c *Committer) Close() error {
	c.closeOnce.Do(func() {
		c.closeMu.Lock()
		c.closed = true
		close(c.ch)
		c.closeMu.Unlock()
	})
	c.loopWG.Wait()
	return c.Err()
}

// Stats reports batching counters.
func (c *Committer) Stats() CommitterStats {
	return CommitterStats{
		Batches:      c.batches.Load(),
		Records:      c.records.Load(),
		Relaxed:      c.ackOnEnqueue,
		SyncFailures: c.syncErrs.Load(),
		Poisoned:     c.Poisoned(),
	}
}

// Poisoned reports whether a write or fsync failure has permanently
// stopped the committer (see ErrWALPoisoned).
func (c *Committer) Poisoned() bool {
	return c.lastErr.Load() != nil
}

// Err returns the most recent background write failure (nil when every
// batch so far has been written). In relaxed mode this is the only place
// a lost write surfaces, since the commit barrier acked at enqueue.
func (c *Committer) Err() error {
	if p := c.lastErr.Load(); p != nil {
		return *p
	}
	return nil
}

// stamp records one pipeline stage for every traced record of a batch,
// all at the same instant (the batch shares one fsync, so its records
// share the stage clock).
func (c *Committer) stamp(recs []Record, st obs.Stage) {
	if c.trace == nil {
		return
	}
	now := obs.Now()
	for i := range recs {
		c.trace.Stamp(recs[i].Obs.Seq, st, now)
	}
}

// run is the committer goroutine: collect a batch, write it with one
// AppendGroup (one fsync), release the batch's waiters, repeat.
func (c *Committer) run() {
	defer c.loopWG.Done()
	for g := range c.ch {
		batch := []group{g}
		n := len(g.recs)
		urgent := g.flush

		var timer *time.Timer
		var lingering <-chan time.Time
	collect:
		for !urgent && n < c.maxBatch {
			select {
			case g2, ok := <-c.ch:
				if !ok {
					break collect
				}
				batch = append(batch, g2)
				n += len(g2.recs)
				urgent = g2.flush
			default:
				if c.maxDelay <= 0 {
					break collect
				}
				if timer == nil {
					timer = time.NewTimer(c.maxDelay)
					lingering = timer.C
				}
				select {
				case g2, ok := <-c.ch:
					if !ok {
						break collect
					}
					batch = append(batch, g2)
					n += len(g2.recs)
					urgent = g2.flush
				case <-lingering:
					break collect
				}
			}
		}
		if timer != nil {
			timer.Stop()
		}

		recs := make([]Record, 0, n)
		for _, b := range batch {
			recs = append(recs, b.recs...)
		}
		// The first write failure latches and the committer stops writing
		// — in BOTH durability modes. Appending after a dropped batch
		// would leave the WAL with a hole, so once a batch is lost
		// everything behind it is dropped too: the survivors on disk are
		// always a PREFIX of the sequence handed to the committer. And a
		// failed fsync is never retried (fsyncgate): the kernel may have
		// discarded the dirty pages while clearing its error bit, so a
		// "successful" retry proves nothing. Relaxed mode surfaces the
		// original failure through Flush/Close/Err; durable mode fails
		// the in-flight barrier with the underlying error and every
		// later barrier with ErrWALPoisoned.
		var err error
		if p := c.lastErr.Load(); p != nil {
			if c.ackOnEnqueue {
				err = *p
			} else {
				err = fmt.Errorf("%w: %v", ErrWALPoisoned, *p)
			}
		}
		if err == nil {
			c.stamp(recs, obs.StageAppend)
			err = c.wal.AppendGroup(recs)
		}
		if err == nil && n > 0 {
			c.batches.Add(1)
			c.records.Add(uint64(n))
		} else if err != nil {
			c.syncErrs.Add(1)
			c.lastErr.Store(&err)
		}
		if err == nil {
			// Fsync first, then publish: the publish stamp marks the
			// instant the durable commit is about to be released to its
			// barrier waiters, so it always precedes the bus delivery the
			// waiters' commit notification triggers.
			c.stamp(recs, obs.StageFsync)
			c.stamp(recs, obs.StagePublish)
		}
		for _, b := range batch {
			if b.done != nil {
				b.done <- err
			}
		}
	}
}
